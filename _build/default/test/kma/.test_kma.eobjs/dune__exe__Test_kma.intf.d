test/kma/test_kma.mli:
