test/kma/test_params.ml: Alcotest Array Kma Params QCheck QCheck_alcotest
