test/kma/test_kma.ml: Alcotest Test_debug Test_freelist Test_global Test_kmem Test_layout Test_objcache Test_pagepool Test_params Test_percpu Test_vmblk
