test/kma/util.ml: Array Kma Sim
