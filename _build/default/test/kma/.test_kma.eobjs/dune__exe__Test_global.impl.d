test/kma/test_global.ml: Alcotest Array Global Kma Kmem Kstats List Pagepool QCheck QCheck_alcotest Util
