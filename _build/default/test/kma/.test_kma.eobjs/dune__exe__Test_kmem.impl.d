test/kma/test_kmem.ml: Alcotest Array Cookie Kma Kmem Kstats Layout List Option Params QCheck QCheck_alcotest Sim Util
