test/kma/test_objcache.ml: Alcotest Array Kma Option Sim Util
