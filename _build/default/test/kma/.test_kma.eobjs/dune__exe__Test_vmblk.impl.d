test/kma/test_vmblk.ml: Alcotest Kma Kmem Kstats Layout List QCheck QCheck_alcotest Sim Util Vmblk
