test/kma/test_freelist.ml: Alcotest Freelist Kma List QCheck QCheck_alcotest Sim Util
