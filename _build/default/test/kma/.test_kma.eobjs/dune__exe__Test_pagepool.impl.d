test/kma/test_pagepool.ml: Alcotest Array Freelist Kma Kmem Kstats Layout List Pagepool Params QCheck QCheck_alcotest Sim Util
