test/kma/test_layout.ml: Alcotest Fun Kma Layout List QCheck QCheck_alcotest Sim Util
