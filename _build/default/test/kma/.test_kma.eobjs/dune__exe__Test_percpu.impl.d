test/kma/test_percpu.ml: Alcotest Array Global Hashtbl Kma Kmem Kstats List Params Percpu QCheck QCheck_alcotest Sim Util
