test/kma/test_debug.ml: Alcotest Kma List Sim String Util
