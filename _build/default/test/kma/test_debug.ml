(* The debug kernel: poison-on-free with use-after-free and double-free
   detection, plus kmem_zalloc. *)

let debug_kmem () =
  let m = Util.machine () in
  let params = Kma.Params.make ~vmblk_pages:16 ~debug:true () in
  (m, Kma.Kmem.create m ~params ())

let test_debug_roundtrip () =
  (* Normal traffic is unaffected by the checks. *)
  let m, k = debug_kmem () in
  Util.on_cpu m (fun () ->
      let live = List.init 50 (fun i -> (Kma.Kmem.alloc k ~bytes:(16 + i), 16 + i)) in
      List.iter
        (fun (a, bytes) ->
          (* Legitimate use: scribble, then restore nothing — the user
             owns the block until free, and free re-poisons. *)
          Sim.Machine.write a 123;
          Kma.Kmem.free k ~addr:a ~bytes)
        live;
      let again = List.init 50 (fun i -> (Kma.Kmem.alloc k ~bytes:(16 + i), 16 + i)) in
      List.iter (fun (a, bytes) -> Kma.Kmem.free k ~addr:a ~bytes) again)

let test_use_after_free_detected () =
  let m, k = debug_kmem () in
  Util.on_cpu m (fun () ->
      let a = Kma.Kmem.alloc k ~bytes:256 in
      Kma.Kmem.free k ~addr:a ~bytes:256;
      (* Dangling write into the freed block's body. *)
      Sim.Machine.write (a + 5) 0xBAD;
      (* The block comes back LIFO; the poison check must fire. *)
      match Kma.Kmem.alloc k ~bytes:256 with
      | _ -> Alcotest.fail "use-after-free write not detected"
      | exception Kma.Kmem.Corruption msg ->
          Alcotest.(check bool) "names the block" true
            (String.length msg > 0))

let test_double_free_detected () =
  let m, k = debug_kmem () in
  Util.on_cpu m (fun () ->
      let a = Kma.Kmem.alloc k ~bytes:128 in
      Kma.Kmem.free k ~addr:a ~bytes:128;
      match Kma.Kmem.free k ~addr:a ~bytes:128 with
      | () -> Alcotest.fail "double free not detected"
      | exception Kma.Kmem.Corruption _ -> ())

let test_fresh_page_blocks_pass_check () =
  (* Blocks straight from a split page must satisfy the alloc-side
     poison check (they are poisoned at split time). *)
  let m, k = debug_kmem () in
  Util.on_cpu m (fun () ->
      (* More allocations than one refill: forces several fresh pages. *)
      let live = List.init 300 (fun _ -> Kma.Kmem.alloc k ~bytes:64) in
      Alcotest.(check int) "all succeed" 300
        (List.length (List.filter (fun a -> a <> 0) live));
      List.iter (fun a -> Kma.Kmem.free k ~addr:a ~bytes:64) live)

let test_release_kernel_pays_no_cost () =
  (* With debug off, the fast path still retires exactly 13
     instructions (the E2 criterion). *)
  let m, k = Util.kmem () in
  Util.on_cpu m (fun () ->
      let c = Kma.Cookie.of_bytes_host k ~bytes:256 in
      let a = Kma.Cookie.alloc k c in
      Kma.Cookie.free k c a;
      let r0 = Sim.Machine.retired m ~cpu:0 in
      let a = Kma.Cookie.alloc k c in
      Alcotest.(check int) "13 insns without debug" 13
        (Sim.Machine.retired m ~cpu:0 - r0);
      Kma.Cookie.free k c a)

let test_alloc_zeroed () =
  let m, k = Util.kmem () in
  Util.on_cpu m (fun () ->
      (* Dirty a block, free it, then kmem_zalloc must hand back zeroed
         memory (same block, LIFO). *)
      let a = Kma.Kmem.alloc k ~bytes:128 in
      for w = 0 to 31 do
        Sim.Machine.write (a + w) 0xFF
      done;
      Kma.Kmem.free k ~addr:a ~bytes:128;
      let b = Kma.Kmem.alloc_zeroed k ~bytes:128 in
      Alcotest.(check int) "same block" a b;
      for w = 0 to 31 do
        Alcotest.(check int) "zeroed" 0 (Sim.Machine.read (b + w))
      done;
      Kma.Kmem.free k ~addr:b ~bytes:128)

let test_alloc_zeroed_large () =
  let m, k = Util.kmem () in
  Util.on_cpu m (fun () ->
      let a = Kma.Kmem.alloc_zeroed k ~bytes:8192 in
      Alcotest.(check int) "first word" 0 (Sim.Machine.read a);
      Alcotest.(check int) "last word" 0 (Sim.Machine.read (a + 2047));
      Kma.Kmem.free k ~addr:a ~bytes:8192)

let suite =
  [
    Alcotest.test_case "debug kernel: clean traffic passes" `Quick
      test_debug_roundtrip;
    Alcotest.test_case "debug kernel: use-after-free detected" `Quick
      test_use_after_free_detected;
    Alcotest.test_case "debug kernel: double free detected" `Quick
      test_double_free_detected;
    Alcotest.test_case "debug kernel: fresh pages pre-poisoned" `Quick
      test_fresh_page_blocks_pass_check;
    Alcotest.test_case "release kernel: no debug overhead" `Quick
      test_release_kernel_pays_no_cost;
    Alcotest.test_case "kmem_zalloc zeroes the block" `Quick
      test_alloc_zeroed;
    Alcotest.test_case "kmem_zalloc for large blocks" `Quick
      test_alloc_zeroed_large;
  ]
