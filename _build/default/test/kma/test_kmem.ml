open Kma

let test_alloc_free_roundtrip () =
  let m, k = Util.kmem () in
  Util.on_cpu m (fun () ->
      let a = Kmem.alloc k ~bytes:100 in
      Alcotest.(check bool) "allocated" true (a <> 0);
      (* The block is usable memory: scribble over all 128 bytes. *)
      for w = 0 to 31 do
        Sim.Machine.write (a + w) (w * 7)
      done;
      Kmem.free k ~addr:a ~bytes:100)

let test_invalid_sizes () =
  let _, k = Util.kmem () in
  let expect_invalid f =
    match f () with
    | _ -> Alcotest.fail "expected Invalid_argument"
    | exception Invalid_argument _ -> ()
  in
  expect_invalid (fun () -> Kmem.alloc k ~bytes:0);
  expect_invalid (fun () -> Kmem.alloc k ~bytes:(-5));
  expect_invalid (fun () -> Kmem.free k ~addr:64 ~bytes:0)

let test_size_class_routing () =
  let m, k = Util.kmem () in
  Util.on_cpu m (fun () ->
      (* 50 bytes routes to the 64-byte class (index 2). *)
      Alcotest.(check (option int)) "50B -> class 2" (Some 2)
        (Kmem.size_index k ~bytes:50);
      Alcotest.(check (option int)) "4096B -> class 8" (Some 8)
        (Kmem.size_index k ~bytes:4096);
      Alcotest.(check (option int)) "4097B -> large" None
        (Kmem.size_index k ~bytes:4097))

let test_large_requests () =
  let m, k = Util.kmem () in
  Util.on_cpu m (fun () ->
      let a = Kmem.alloc k ~bytes:20000 in
      Alcotest.(check bool) "large allocated" true (a <> 0);
      Kmem.free k ~addr:a ~bytes:20000);
  Alcotest.(check int) "large accounted" 1 (Kmem.stats k).Kstats.large_allocs;
  Alcotest.(check int) "physical returned" 0 (Kmem.granted_pages_oracle k)

(* Experiment E2: the paper's instruction counts.  Warm fast paths:
   cookie interface 13 instructions for alloc and for free; standard
   interface 35 and 32. *)
let test_instruction_counts () =
  let m, k = Util.kmem () in
  let counts = ref [] in
  let measure name f =
    let before = Sim.Machine.retired m ~cpu:0 in
    let r = f () in
    counts := (name, Sim.Machine.retired m ~cpu:0 - before) :: !counts;
    r
  in
  Util.on_cpu m (fun () ->
      let c = Cookie.of_bytes_host k ~bytes:256 in
      (* Warm up: prime the per-CPU cache. *)
      let a = Cookie.alloc k c in
      Cookie.free k c a;
      let a = Cookie.alloc k c in
      Cookie.free k c a;
      let a = measure "cookie alloc" (fun () -> Cookie.alloc k c) in
      measure "cookie free" (fun () -> Cookie.free k c a);
      let a = measure "standard alloc" (fun () -> Kmem.alloc k ~bytes:256) in
      measure "standard free" (fun () -> Kmem.free k ~addr:a ~bytes:256));
  let get name = List.assoc name !counts in
  Alcotest.(check int) "cookie alloc = 13" 13 (get "cookie alloc");
  Alcotest.(check int) "cookie free = 13" 13 (get "cookie free");
  Alcotest.(check int) "standard alloc = 35" 35 (get "standard alloc");
  Alcotest.(check int) "standard free = 32" 32 (get "standard free")

let test_fast_path_needs_no_atomics () =
  let m, k = Util.kmem () in
  Util.on_cpu m (fun () ->
      let c = Cookie.of_bytes_host k ~bytes:128 in
      let a = Cookie.alloc k c in
      Cookie.free k c a;
      let cache = Sim.Machine.cache m in
      let rmws_before = (Sim.Cache.stats cache ~cpu:0).Sim.Cache.rmws in
      for _ = 1 to 50 do
        let a = Cookie.alloc k c in
        Cookie.free k c a
      done;
      let rmws_after = (Sim.Cache.stats cache ~cpu:0).Sim.Cache.rmws in
      Alcotest.(check int) "zero atomic operations on the fast path" 0
        (rmws_after - rmws_before))

let test_try_alloc_exhaustion () =
  (* Tiny physical budget; try_alloc must return None, alloc must
     raise. *)
  let m, k = Util.kmem ~phys_pages:2 () in
  Util.on_cpu m (fun () ->
      let rec fill acc =
        match Kmem.try_alloc k ~bytes:4096 with
        | Some a -> fill (a :: acc)
        | None -> acc
      in
      let live = fill [] in
      Alcotest.(check int) "both pages allocated" 2 (List.length live);
      match Kmem.alloc k ~bytes:4096 with
      | _ -> Alcotest.fail "expected Kmem_exhausted"
      | exception Kmem.Kmem_exhausted -> ())

let test_last_buffer_any_cpu () =
  (* Goal 5: any CPU can allocate the last remaining buffer, even when
     the free memory sits in the global layer after another CPU fed it
     back. *)
  let m, k = Util.kmem ~ncpus:2 ~phys_pages:1 () in
  Sim.Machine.run m
    [|
      (fun _ ->
        (* CPU 0 drains the single page (16 x 256B blocks) then frees
           everything back and drains its cache. *)
        let live = List.init 16 (fun _ -> Kmem.alloc k ~bytes:256) in
        List.iter (fun a -> Kmem.free k ~addr:a ~bytes:256) live;
        Kmem.reap_local k;
        Sim.Machine.write 8 1);
      (fun _ ->
        while Sim.Machine.read 8 = 0 do
          Sim.Machine.spin_pause ()
        done;
        (* CPU 1 must be able to get all 16 blocks. *)
        let live = List.init 16 (fun _ -> Kmem.alloc k ~bytes:256) in
        Alcotest.(check int) "all blocks allocatable from CPU 1" 16
          (List.length (List.filter (fun a -> a <> 0) live)));
    |]

let test_reap_returns_physical () =
  let m, k = Util.kmem () in
  Util.on_cpu m (fun () ->
      let live = List.init 100 (fun _ -> Kmem.alloc k ~bytes:256) in
      List.iter (fun a -> Kmem.free k ~addr:a ~bytes:256) live;
      Kmem.reap_local k;
      Kmem.reap_global k);
  Alcotest.(check int) "all physical pages returned" 0
    (Kmem.granted_pages_oracle k)

(* The worst-case benchmark's correctness core: allocate blocks of one
   size until exhaustion, free them all, then move to the next size.
   An allocator without coalescing would wedge after the first size;
   ours must complete every size with a fresh full arena. *)
let test_worst_case_sweep_completes () =
  let m, k = Util.kmem ~memory_words:65536 () in
  let p = Kmem.params k in
  let counts =
    Util.on_cpu m (fun () ->
        Array.map
          (fun bytes ->
            let rec fill acc =
              match Kmem.try_alloc k ~bytes with
              | Some a -> fill (a :: acc)
              | None -> acc
            in
            let live = fill [] in
            List.iter (fun a -> Kmem.free k ~addr:a ~bytes) live;
            Kmem.reap_local k;
            Kmem.reap_global k;
            List.length live)
          p.Params.sizes_bytes)
  in
  Alcotest.(check int) "fully reusable at the end" 0
    (Kmem.granted_pages_oracle k);
  let ly = Kmem.layout k in
  let data_pages = Layout.total_data_pages ly in
  Array.iteri
    (fun si n ->
      let bpp = Params.blocks_per_page p si in
      (* Every size must have filled nearly the whole arena: at least
         the page capacity minus what per-CPU caches and the global
         layer can strand. *)
      let slack =
        (2 * p.Params.targets.(si))
        + (2 * p.Params.gbltargets.(si) * p.Params.targets.(si))
      in
      let expected_min = (data_pages * bpp) - slack - bpp in
      if n < expected_min then
        Alcotest.failf "size %d: only %d blocks (expected >= %d)"
          p.Params.sizes_bytes.(si) n expected_min)
    counts

(* Property: random mixed-size traffic never produces overlapping live
   blocks, and every address stays inside the arena. *)
let prop_live_blocks_disjoint =
  let gen =
    QCheck.(
      small_list (pair bool (int_range 1 4096)))
  in
  QCheck.Test.make ~name:"live blocks disjoint, in arena" ~count:40 gen
    (fun ops ->
      let m, k = Util.kmem () in
      let ly = Kmem.layout k in
      let ok = ref true in
      Util.on_cpu m (fun () ->
          let live = ref [] in
          let p = Kmem.params k in
          List.iter
            (fun (is_alloc, bytes) ->
              if is_alloc then begin
                match Kmem.try_alloc k ~bytes with
                | None -> ()
                | Some a ->
                    let words =
                      match Params.size_index_of_bytes p bytes with
                      | Some si -> Params.size_words p si
                      | None -> assert false
                    in
                    let lo = a and hi = a + words in
                    if
                      lo < ly.Layout.vmblk_base
                      || hi
                         > ly.Layout.vmblk_base
                           + (ly.Layout.arena_vmblks * ly.Layout.vmblk_words)
                    then ok := false;
                    List.iter
                      (fun (lo', hi', _) ->
                        if not (hi <= lo' || hi' <= lo) then ok := false)
                      !live;
                    live := (lo, hi, bytes) :: !live
              end
              else
                match !live with
                | (lo, _, bytes) :: rest ->
                    live := rest;
                    Kmem.free k ~addr:lo ~bytes
                | [] -> ())
            ops);
      !ok)

(* Property: after any traffic, freeing everything and reaping returns
   every physical page. *)
let prop_full_reap =
  QCheck.Test.make ~name:"free-all + reap returns all physical pages"
    ~count:25
    QCheck.(small_list (int_range 1 2048))
    (fun sizes ->
      let m, k = Util.kmem () in
      Util.on_cpu m (fun () ->
          let live =
            List.filter_map
              (fun bytes ->
                Option.map
                  (fun a -> (a, bytes))
                  (Kmem.try_alloc k ~bytes))
              sizes
          in
          List.iter (fun (a, bytes) -> Kmem.free k ~addr:a ~bytes) live;
          Kmem.reap_local k;
          Kmem.reap_global k);
      Kmem.granted_pages_oracle k = 0)

let suite =
  [
    Alcotest.test_case "alloc/free roundtrip" `Quick test_alloc_free_roundtrip;
    Alcotest.test_case "invalid sizes rejected" `Quick test_invalid_sizes;
    Alcotest.test_case "size-class routing" `Quick test_size_class_routing;
    Alcotest.test_case "large requests bypass layers 1-3" `Quick
      test_large_requests;
    Alcotest.test_case "E2: paper instruction counts (13/13, 35/32)" `Quick
      test_instruction_counts;
    Alcotest.test_case "fast path uses no atomics" `Quick
      test_fast_path_needs_no_atomics;
    Alcotest.test_case "exhaustion: try_alloc None, alloc raises" `Quick
      test_try_alloc_exhaustion;
    Alcotest.test_case "goal 5: last buffer from any CPU" `Quick
      test_last_buffer_any_cpu;
    Alcotest.test_case "reap returns physical pages" `Quick
      test_reap_returns_physical;
    Alcotest.test_case "worst-case sweep completes (coalescing)" `Slow
      test_worst_case_sweep_completes;
    QCheck_alcotest.to_alcotest prop_live_blocks_disjoint;
    QCheck_alcotest.to_alcotest prop_full_reap;
  ]
