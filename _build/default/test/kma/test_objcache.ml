(* Constructed-object caches: ctor runs only on cold allocations,
   constructed state survives the free/alloc cycle, overflow runs the
   dtor and returns memory to kmem. *)

let magic = 0xC0457
let field = 2 (* word 0 is the cache's link; use a later word *)

let make ?(target = 4) m k =
  Util.on_cpu m (fun () ->
      Kma.Objcache.create k ~bytes:256
        ~ctor:(fun a -> Sim.Machine.write (a + field) magic)
        ~dtor:(fun a -> Sim.Machine.write (a + field) 0)
        ~target ())
  |> Option.get

let test_ctor_once_then_reuse () =
  let m, k = Util.kmem () in
  let c = make m k in
  Util.on_cpu m (fun () ->
      let a = Kma.Objcache.alloc c in
      Alcotest.(check int) "constructed" magic
        (Sim.Machine.read (a + field));
      Kma.Objcache.release c a;
      let b = Kma.Objcache.alloc c in
      Alcotest.(check int) "same object back" a b;
      Alcotest.(check int) "still constructed, ctor skipped" magic
        (Sim.Machine.read (b + field));
      Kma.Objcache.release c b);
  Alcotest.(check int) "one construction" 1 (Kma.Objcache.ctor_calls c);
  Alcotest.(check int) "one reuse" 1 (Kma.Objcache.reuses c)

let test_overflow_destructs () =
  let m, k = Util.kmem () in
  let c = make ~target:2 m k in
  Util.on_cpu m (fun () ->
      let objs = Array.init 5 (fun _ -> Kma.Objcache.alloc c) in
      (* Releasing 5 with a 2-object cache: 3 go through the dtor back
         to kmem. *)
      Array.iter (fun a -> Kma.Objcache.release c a) objs);
  Alcotest.(check int) "five constructions" 5 (Kma.Objcache.ctor_calls c)

let test_per_cpu_isolation () =
  let m, k = Util.kmem ~ncpus:2 () in
  let c = make m k in
  (* CPU 0 fills its cache; CPU 1 must construct its own objects. *)
  Sim.Machine.run m
    [|
      (fun _ ->
        let a = Kma.Objcache.alloc c in
        Kma.Objcache.release c a;
        Sim.Machine.write 16 1);
      (fun _ ->
        while Sim.Machine.read 16 = 0 do
          Sim.Machine.spin_pause ()
        done;
        let b = Kma.Objcache.alloc c in
        Alcotest.(check int) "constructed for cpu1" magic
          (Sim.Machine.read (b + field));
        Kma.Objcache.release c b);
    |];
  Alcotest.(check int) "two constructions (one per CPU)" 2
    (Kma.Objcache.ctor_calls c)

let test_destroy_returns_memory () =
  let m, k = Util.kmem () in
  let baseline = Kma.Kmem.granted_pages_oracle k in
  let c = make m k in
  Util.on_cpu m (fun () ->
      let objs = Array.init 8 (fun _ -> Kma.Objcache.alloc c) in
      Array.iter (fun a -> Kma.Objcache.release c a) objs;
      Kma.Objcache.destroy c;
      Kma.Kmem.reap_local k;
      Kma.Kmem.reap_global k);
  Alcotest.(check bool) "memory back at kmem" true
    (Kma.Kmem.granted_pages_oracle k <= baseline)

let test_works_under_debug_kernel () =
  (* The object cache's constructed objects are live from kmem's point
     of view, so the debug kernel's poison discipline must not fire. *)
  let m = Util.machine () in
  let params = Kma.Params.make ~vmblk_pages:16 ~debug:true () in
  let k = Kma.Kmem.create m ~params () in
  let c = make m k in
  Util.on_cpu m (fun () ->
      for _ = 1 to 20 do
        let a = Kma.Objcache.alloc c in
        Kma.Objcache.release c a
      done;
      Kma.Objcache.destroy c)

let suite =
  [
    Alcotest.test_case "ctor once, constructed state reused" `Quick
      test_ctor_once_then_reuse;
    Alcotest.test_case "overflow destructs back to kmem" `Quick
      test_overflow_destructs;
    Alcotest.test_case "per-CPU caches are private" `Quick
      test_per_cpu_isolation;
    Alcotest.test_case "destroy returns all memory" `Quick
      test_destroy_returns_memory;
    Alcotest.test_case "compatible with the debug kernel" `Quick
      test_works_under_debug_kernel;
  ]
