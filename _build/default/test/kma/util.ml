(* Shared fixtures for the allocator tests: a small machine and
   allocator so individual cases stay fast, plus helpers for running
   host-visible computations on simulated CPUs. *)

let small_params ?targets ?gbltargets ?phys_pages () =
  Kma.Params.make ~vmblk_pages:16 ?targets ?gbltargets ?phys_pages ()

let machine ?(ncpus = 4) ?(memory_words = 131072) ?(cache_lines = 0) () =
  Sim.Machine.create (Sim.Config.make ~ncpus ~memory_words ~cache_lines ())

let kmem ?ncpus ?memory_words ?cache_lines ?targets ?gbltargets ?phys_pages
    () =
  let m = machine ?ncpus ?memory_words ?cache_lines () in
  let k =
    Kma.Kmem.create m
      ~params:(small_params ?targets ?gbltargets ?phys_pages ())
      ()
  in
  (m, k)

(* Run [f] on simulated CPU 0 and return its result. *)
let on_cpu m f =
  let r = ref None in
  Sim.Machine.run m [| (fun _ -> r := Some (f ())) |];
  match !r with Some v -> v | None -> assert false

(* Run one function per CPU, collecting results. *)
let on_cpus m n f =
  let rs = Array.make n None in
  Sim.Machine.run m (Array.init n (fun _ cpu -> rs.(cpu) <- Some (f cpu)));
  Array.map (function Some v -> v | None -> assert false) rs

let ctx_of (k : Kma.Kmem.t) : Kma.Ctx.t = k
