open Kma

let layout ?(ncpus = 4) ?(memory_words = 131072) () =
  Layout.make
    (Sim.Config.make ~ncpus ~memory_words ())
    (Util.small_params ())

let test_regions_ordered () =
  let ly = layout () in
  Alcotest.(check bool) "table after reserved" true
    (ly.Layout.size_table_base >= 16);
  Alcotest.(check bool) "percpu after table" true
    (ly.Layout.percpu_base
    >= ly.Layout.size_table_base + ly.Layout.size_table_len);
  Alcotest.(check bool) "control before arena" true
    (ly.Layout.control_words <= ly.Layout.vmblk_base);
  Alcotest.(check bool) "arena fits" true
    (ly.Layout.vmblk_base
     + (ly.Layout.arena_vmblks * ly.Layout.vmblk_words)
    <= 131072)

let test_vmblk_alignment () =
  let ly = layout () in
  Alcotest.(check int) "vmblk base aligned" 0
    (ly.Layout.vmblk_base mod ly.Layout.vmblk_words);
  for i = 0 to ly.Layout.arena_vmblks - 1 do
    let vb = Layout.vmblk_addr ly ~index:i in
    Alcotest.(check int) "each vmblk aligned" 0 (vb mod ly.Layout.vmblk_words);
    Alcotest.(check int) "mask recovers base" vb (Layout.vmblk_of_addr ly vb);
    Alcotest.(check int) "mask inside data" vb
      (Layout.vmblk_of_addr ly (vb + ly.Layout.vmblk_words - 1))
  done

let test_pcc_isolation () =
  let ly = layout () in
  (* Distinct (cpu, size) pairs must live on distinct cache lines. *)
  let line = 8 in
  let all =
    List.concat_map
      (fun cpu ->
        List.map
          (fun si -> Layout.pcc_addr ly ~cpu ~si / line)
          (List.init ly.Layout.nsizes Fun.id))
      (List.init ly.Layout.ncpus Fun.id)
  in
  let sorted = List.sort_uniq compare all in
  Alcotest.(check int) "no shared lines" (List.length all)
    (List.length sorted)

let test_pd_roundtrip () =
  let ly = layout () in
  for i = 0 to ly.Layout.arena_vmblks - 1 do
    let vb = Layout.vmblk_addr ly ~index:i in
    for dp = 0 to ly.Layout.data_pages - 1 do
      let page = Layout.data_page_addr ly ~vmblk:vb ~data_page:dp in
      let pd = Layout.pd_of_page ly ~page_addr:page in
      Alcotest.(check int) "pd in header" vb (Layout.vmblk_of_addr ly pd);
      Alcotest.(check int) "page_of_pd inverts" page (Layout.page_of_pd ly ~pd);
      (* Any block inside the page maps to the same descriptor. *)
      let pd' = Layout.pd_of_page ly ~page_addr:page in
      Alcotest.(check int) "stable" pd pd'
    done
  done

let test_header_capacity () =
  let ly = layout () in
  Alcotest.(check bool) "descriptors fit in header" true
    (ly.Layout.data_pages * ly.Layout.pd_words
    <= ly.Layout.hdr_pages * ly.Layout.page_words);
  Alcotest.(check int) "pages partitioned"
    ly.Layout.vmblk_pages
    (ly.Layout.hdr_pages + ly.Layout.data_pages)

let test_dope_covers_arena () =
  let ly = layout () in
  let last =
    Layout.vmblk_addr ly ~index:(ly.Layout.arena_vmblks - 1)
    + ly.Layout.vmblk_words - 1
  in
  Alcotest.(check bool) "last arena address indexable" true
    (Layout.dope_entry ly last < ly.Layout.dope_base + ly.Layout.dope_len)

let test_too_small_memory () =
  match
    Layout.make
      (Sim.Config.make ~memory_words:8192 ())
      (Util.small_params ())
  with
  | _ -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument _ -> ()

let prop_pd_of_block_constant_within_page =
  QCheck.Test.make ~name:"all blocks of a page share a descriptor" ~count:100
    QCheck.(pair (int_bound 6) (int_bound 1023))
    (fun (dp_mod, offset) ->
      let ly = layout () in
      let dp = dp_mod mod ly.Layout.data_pages in
      let vb = Layout.vmblk_addr ly ~index:0 in
      let page = Layout.data_page_addr ly ~vmblk:vb ~data_page:dp in
      Layout.pd_of_page ly ~page_addr:(page + offset - (offset mod 4))
      = Layout.pd_of_page ly ~page_addr:page
      || offset >= ly.Layout.page_words)

let suite =
  [
    Alcotest.test_case "regions ordered and in bounds" `Quick
      test_regions_ordered;
    Alcotest.test_case "vmblks aligned for dope masking" `Quick
      test_vmblk_alignment;
    Alcotest.test_case "per-CPU caches cache-line isolated" `Quick
      test_pcc_isolation;
    Alcotest.test_case "pd <-> page roundtrip" `Quick test_pd_roundtrip;
    Alcotest.test_case "descriptor header capacity" `Quick
      test_header_capacity;
    Alcotest.test_case "dope vector covers arena" `Quick
      test_dope_covers_arena;
    Alcotest.test_case "tiny memory rejected" `Quick test_too_small_memory;
    QCheck_alcotest.to_alcotest prop_pd_of_block_constant_within_page;
  ]
