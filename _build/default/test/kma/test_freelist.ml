open Kma

(* Freelist operations run on the simulated machine; use a bare machine
   and pick arbitrary scratch addresses. *)

let head = 8
let blk i = 64 + (8 * i)

let test_push_pop () =
  let m = Util.machine () in
  let out =
    Util.on_cpu m (fun () ->
        Freelist.push ~head (blk 0);
        Freelist.push ~head (blk 1);
        Freelist.push ~head (blk 2);
        let p1 = Freelist.pop ~head in
        let p2 = Freelist.pop ~head in
        let p3 = Freelist.pop ~head in
        let p4 = Freelist.pop ~head in
        [ p1; p2; p3; p4 ])
  in
  Alcotest.(check (list int)) "LIFO order" [ blk 2; blk 1; blk 0; 0 ] out

let test_take_n () =
  let m = Util.machine () in
  let taken, rest =
    Util.on_cpu m (fun () ->
        for i = 0 to 4 do
          Freelist.push ~head (blk i)
        done;
        let h, n = Freelist.take_n ~head ~n:3 in
        let rec collect a acc =
          if a = 0 then List.rev acc
          else collect (Sim.Machine.read (a + Freelist.link)) (a :: acc)
        in
        ((h, n, collect h []), Sim.Machine.read head))
  in
  let h, n, chain = taken in
  Alcotest.(check int) "count" 3 n;
  (* take_n pops 4,3,2 and re-chains them; the last popped heads the
     result. *)
  Alcotest.(check (list int)) "chain" [ blk 2; blk 3; blk 4 ] chain;
  Alcotest.(check bool) "head nonzero" true (h <> 0);
  Alcotest.(check int) "remainder" (blk 1) rest

let test_take_n_short () =
  let m = Util.machine () in
  let n =
    Util.on_cpu m (fun () ->
        Freelist.push ~head (blk 0);
        snd (Freelist.take_n ~head ~n:5))
  in
  Alcotest.(check int) "takes what exists" 1 n

let test_iter_chain_allows_relink () =
  let m = Util.machine () in
  let visited =
    Util.on_cpu m (fun () ->
        for i = 0 to 2 do
          Freelist.push ~head (blk i)
        done;
        let acc = ref [] in
        Freelist.iter_chain (Sim.Machine.read head) (fun a ~next:_ ->
            (* Clobber the link word, as the page layer does. *)
            Sim.Machine.write (a + Freelist.link) 999;
            acc := a :: !acc);
        List.rev !acc)
  in
  Alcotest.(check (list int)) "visits all despite clobbering"
    [ blk 2; blk 1; blk 0 ] visited

let test_length_oracle () =
  let m = Util.machine () in
  Util.on_cpu m (fun () ->
      for i = 0 to 9 do
        Freelist.push ~head (blk i)
      done);
  let mem = Sim.Machine.memory m in
  Alcotest.(check int) "ten nodes" 10
    (Freelist.length_oracle mem (Sim.Memory.get mem head))

let prop_push_pop_roundtrip =
  QCheck.Test.make ~name:"n pushes then n pops drain the list" ~count:100
    QCheck.(int_range 0 50)
    (fun n ->
      let m = Util.machine () in
      Util.on_cpu m (fun () ->
          for i = 0 to n - 1 do
            Freelist.push ~head (blk i)
          done;
          let rec drain k = if Freelist.pop ~head = 0 then k else drain (k + 1) in
          drain 0 = n))

let suite =
  [
    Alcotest.test_case "push/pop LIFO" `Quick test_push_pop;
    Alcotest.test_case "take_n" `Quick test_take_n;
    Alcotest.test_case "take_n short list" `Quick test_take_n_short;
    Alcotest.test_case "iter_chain tolerates relinking" `Quick
      test_iter_chain_allows_relink;
    Alcotest.test_case "length_oracle" `Quick test_length_oracle;
    QCheck_alcotest.to_alcotest prop_push_pop_roundtrip;
  ]
