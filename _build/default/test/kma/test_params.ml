open Kma

let expect_invalid f =
  match f () with
  | _ -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument _ -> ()

let test_default_valid () = Params.validate Params.default

let test_target_heuristic () =
  (* The paper: target ranges from 10 for 16-byte blocks to 2 for
     4096-byte blocks. *)
  Alcotest.(check int) "16B" 10 (Params.default_target ~bytes:16);
  Alcotest.(check int) "256B" 10 (Params.default_target ~bytes:256);
  Alcotest.(check int) "512B" 8 (Params.default_target ~bytes:512);
  Alcotest.(check int) "1024B" 4 (Params.default_target ~bytes:1024);
  Alcotest.(check int) "2048B" 2 (Params.default_target ~bytes:2048);
  Alcotest.(check int) "4096B" 2 (Params.default_target ~bytes:4096)

let test_gbltarget_heuristic () =
  (* The paper: gbltarget of 15 for small blocks (target 10). *)
  Alcotest.(check int) "target 10" 15 (Params.default_gbltarget ~target:10);
  Alcotest.(check int) "target 2" 3 (Params.default_gbltarget ~target:2)

let test_default_sizes () =
  let p = Params.default in
  Alcotest.(check (array int))
    "nine power-of-two classes"
    [| 16; 32; 64; 128; 256; 512; 1024; 2048; 4096 |]
    p.Params.sizes_bytes;
  Alcotest.(check int) "nsizes" 9 (Params.nsizes p)

let test_size_words () =
  let p = Params.default in
  Alcotest.(check int) "16B = 4 words" 4 (Params.size_words p 0);
  Alcotest.(check int) "4096B = 1024 words" 1024 (Params.size_words p 8)

let test_blocks_per_page () =
  let p = Params.default in
  Alcotest.(check int) "16B" 256 (Params.blocks_per_page p 0);
  Alcotest.(check int) "4096B" 1 (Params.blocks_per_page p 8)

let test_size_index_of_bytes () =
  let p = Params.default in
  Alcotest.(check (option int)) "1 byte" (Some 0)
    (Params.size_index_of_bytes p 1);
  Alcotest.(check (option int)) "16" (Some 0) (Params.size_index_of_bytes p 16);
  Alcotest.(check (option int)) "17" (Some 1) (Params.size_index_of_bytes p 17);
  Alcotest.(check (option int)) "50" (Some 2) (Params.size_index_of_bytes p 50);
  Alcotest.(check (option int)) "4096" (Some 8)
    (Params.size_index_of_bytes p 4096);
  Alcotest.(check (option int)) "4097" None
    (Params.size_index_of_bytes p 4097);
  Alcotest.(check (option int)) "0" None (Params.size_index_of_bytes p 0)

let test_validation_rejects () =
  expect_invalid (fun () -> Params.make ~sizes_bytes:[| 16; 16 |] ());
  expect_invalid (fun () -> Params.make ~sizes_bytes:[| 24; 4096 |] ());
  expect_invalid (fun () -> Params.make ~vmblk_pages:5 ());
  expect_invalid (fun () -> Params.make ~page_bytes:2048 ());
  expect_invalid (fun () -> Params.make ~targets:(Array.make 9 0) ());
  expect_invalid (fun () -> Params.make ~targets:[| 1; 2 |] ());
  expect_invalid (fun () -> Params.make ~phys_pages:0 ())

let prop_size_index_minimal =
  QCheck.Test.make ~name:"size_index picks the smallest fitting class"
    ~count:200
    QCheck.(int_range 1 4096)
    (fun bytes ->
      let p = Params.default in
      match Params.size_index_of_bytes p bytes with
      | None -> false
      | Some si ->
          p.Params.sizes_bytes.(si) >= bytes
          && (si = 0 || p.Params.sizes_bytes.(si - 1) < bytes))

let suite =
  [
    Alcotest.test_case "default validates" `Quick test_default_valid;
    Alcotest.test_case "target heuristic matches paper" `Quick
      test_target_heuristic;
    Alcotest.test_case "gbltarget heuristic matches paper" `Quick
      test_gbltarget_heuristic;
    Alcotest.test_case "default size classes" `Quick test_default_sizes;
    Alcotest.test_case "size_words" `Quick test_size_words;
    Alcotest.test_case "blocks_per_page" `Quick test_blocks_per_page;
    Alcotest.test_case "size_index_of_bytes" `Quick test_size_index_of_bytes;
    Alcotest.test_case "validation rejects bad configs" `Quick
      test_validation_rejects;
    QCheck_alcotest.to_alcotest prop_size_index_minimal;
  ]
