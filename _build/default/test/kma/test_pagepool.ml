open Kma

(* Drive the coalesce-to-page layer directly.  Size class 4 is 256-byte
   blocks: 16 blocks per page in the default configuration. *)

let si = 4
let bpp = 16

let fixture () = Util.kmem ()

let collect_chain mem head =
  let rec go a acc =
    if a = 0 then List.rev acc
    else go (Sim.Memory.get mem (a + Freelist.link)) (a :: acc)
  in
  go head []

let test_get_splits_fresh_page () =
  let m, k = fixture () in
  let ctx = Util.ctx_of k in
  let head, got = Util.on_cpu m (fun () -> Pagepool.get_blocks ctx ~si ~want:4) in
  Alcotest.(check int) "got 4" 4 got;
  Alcotest.(check bool) "chain nonempty" true (head <> 0);
  Alcotest.(check int) "one page grabbed" 1
    (Kmem.stats k).Kstats.sizes.(si).Kstats.pages_grabbed;
  (* 16 - 4 = 12 blocks remain free in the page. *)
  Alcotest.(check int) "free blocks" 12 (Pagepool.free_blocks_oracle ctx ~si)

let test_blocks_disjoint_and_sized () =
  let m, k = fixture () in
  let ctx = Util.ctx_of k in
  let head, got =
    Util.on_cpu m (fun () -> Pagepool.get_blocks ctx ~si ~want:bpp)
  in
  Alcotest.(check int) "full page" bpp got;
  let blocks = collect_chain (Sim.Machine.memory m) head in
  let sorted = List.sort compare blocks in
  let words = Params.size_words (Kmem.params k) si in
  List.iteri
    (fun i a ->
      if i > 0 then
        Alcotest.(check int) "spacing" words (a - List.nth sorted (i - 1)))
    sorted;
  Alcotest.(check int) "unique" bpp (List.length (List.sort_uniq compare blocks))

let test_put_returns_full_page () =
  let m, k = fixture () in
  let ctx = Util.ctx_of k in
  Util.on_cpu m (fun () ->
      let head, got = Pagepool.get_blocks ctx ~si ~want:bpp in
      Alcotest.(check int) "full page out" bpp got;
      Pagepool.put_blocks ctx ~si ~head ~count:got);
  Alcotest.(check int) "page returned to VM" 0 (Kmem.granted_pages_oracle k);
  Alcotest.(check int) "pages_returned" 1
    (Kmem.stats k).Kstats.sizes.(si).Kstats.pages_returned;
  Alcotest.(check (list (pair int (list int)))) "no buckets" []
    (Pagepool.bucket_pages_oracle ctx ~si)

let test_radix_prefers_fullest () =
  let m, k = fixture () in
  let ctx = Util.ctx_of k in
  Util.on_cpu m (fun () ->
      (* Create two partially-free pages: page A with 2 free blocks,
         page B with 10 free blocks. *)
      let a_head, _ = Pagepool.get_blocks ctx ~si ~want:bpp in
      let b_head, _ = Pagepool.get_blocks ctx ~si ~want:bpp in
      let a_blocks = ref [] and b_blocks = ref [] in
      Freelist.iter_chain a_head (fun blk ~next:_ -> a_blocks := blk :: !a_blocks);
      Freelist.iter_chain b_head (fun blk ~next:_ -> b_blocks := blk :: !b_blocks);
      let free_back blocks n =
        List.iteri
          (fun i blk -> if i < n then Pagepool.put_block ctx ~si blk)
          blocks
      in
      free_back !a_blocks 2;
      free_back !b_blocks 10;
      (* The next carve must come from page A (fewest free blocks). *)
      let head, got = Pagepool.get_blocks ctx ~si ~want:2 in
      Alcotest.(check int) "got 2" 2 got;
      let page_of blk = blk land lnot ((Kmem.layout k).Layout.page_words - 1) in
      let a_page = page_of (List.hd !a_blocks) in
      Freelist.iter_chain head (fun blk ~next:_ ->
          Alcotest.(check int) "carved from fullest page" a_page (page_of blk)))

let test_bucket_migration () =
  let m, k = fixture () in
  let ctx = Util.ctx_of k in
  Util.on_cpu m (fun () ->
      let head, _ = Pagepool.get_blocks ctx ~si ~want:bpp in
      (* Free three blocks one at a time: the page's descriptor should
         march through buckets 1, 2, 3. *)
      let blocks = ref [] in
      Freelist.iter_chain head (fun blk ~next:_ -> blocks := blk :: !blocks);
      match !blocks with
      | b1 :: b2 :: b3 :: _ ->
          Pagepool.put_block ctx ~si b1;
          Alcotest.(check (list (pair int int)))
            "bucket 1"
            [ (1, 1) ]
            (List.map
               (fun (n, ps) -> (n, List.length ps))
               (Pagepool.bucket_pages_oracle ctx ~si));
          Pagepool.put_block ctx ~si b2;
          Pagepool.put_block ctx ~si b3;
          Alcotest.(check (list (pair int int)))
            "bucket 3"
            [ (3, 1) ]
            (List.map
               (fun (n, ps) -> (n, List.length ps))
               (Pagepool.bucket_pages_oracle ctx ~si))
      | _ -> Alcotest.fail "expected blocks")

let test_exhaustion_returns_short () =
  (* Physical budget of 1 page: a request for two pages' worth of blocks
     comes back short, not wedged. *)
  let m, k = Util.kmem ~phys_pages:1 () in
  let ctx = Util.ctx_of k in
  let _, got =
    Util.on_cpu m (fun () -> Pagepool.get_blocks ctx ~si ~want:(2 * bpp))
  in
  Alcotest.(check int) "one page's worth" bpp got

let prop_conservation =
  (* Random get/put traffic conserves blocks: what was taken and put
     back always reappears in the oracles; full pages leave the pool. *)
  QCheck.Test.make ~name:"pagepool conserves blocks" ~count:50
    QCheck.(small_list (int_range 1 24))
    (fun wants ->
      let m, k = fixture () in
      let ctx = Util.ctx_of k in
      let balanced = ref true in
      Util.on_cpu m (fun () ->
          let live = ref [] in
          List.iter
            (fun want ->
              let head, got = Pagepool.get_blocks ctx ~si ~want in
              Freelist.iter_chain head (fun blk ~next:_ ->
                  live := blk :: !live);
              if got > want then balanced := false)
            wants;
          (* Put everything back. *)
          List.iter (fun blk -> Pagepool.put_block ctx ~si blk) !live);
      !balanced
      && Kmem.granted_pages_oracle k = 0
      && Pagepool.free_blocks_oracle ctx ~si = 0)

let suite =
  [
    Alcotest.test_case "get splits a fresh page" `Quick
      test_get_splits_fresh_page;
    Alcotest.test_case "carved blocks disjoint and spaced" `Quick
      test_blocks_disjoint_and_sized;
    Alcotest.test_case "fully-freed page returns to VM" `Quick
      test_put_returns_full_page;
    Alcotest.test_case "radix order prefers fullest page" `Quick
      test_radix_prefers_fullest;
    Alcotest.test_case "descriptor migrates across buckets" `Quick
      test_bucket_migration;
    Alcotest.test_case "physical exhaustion returns short" `Quick
      test_exhaustion_returns_short;
    QCheck_alcotest.to_alcotest prop_conservation;
  ]
