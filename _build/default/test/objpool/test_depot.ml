open Objpool

let test_get_put () =
  let d = Depot.create ~target:2 ~max_batches:2 in
  Alcotest.(check bool) "empty" true (Depot.get d = None);
  Alcotest.(check bool) "kept" true (Depot.put d [ 1; 2 ] = `Kept);
  Alcotest.(check bool) "kept2" true (Depot.put d [ 3; 4 ] = `Kept);
  Alcotest.(check bool) "dropped at bound" true (Depot.put d [ 5 ] = `Dropped);
  Alcotest.(check int) "stock" 2 (Depot.batches d);
  Alcotest.(check bool) "LIFO batch" true (Depot.get d = Some [ 3; 4 ]);
  Alcotest.(check int) "stock down" 1 (Depot.batches d)

let test_put_partial_feeds_get () =
  let d = Depot.create ~target:4 ~max_batches:4 in
  Depot.put_partial d [ 1; 2; 3 ];
  (match Depot.get d with
  | Some items -> Alcotest.(check int) "loose served" 3 (List.length items)
  | None -> Alcotest.fail "expected loose items");
  Alcotest.(check bool) "then empty" true (Depot.get d = None)

let test_drain () =
  let d = Depot.create ~target:4 ~max_batches:4 in
  ignore (Depot.put d [ 1; 2 ]);
  Depot.put_partial d [ 3 ];
  Alcotest.(check int) "all out" 3 (List.length (Depot.drain d));
  Alcotest.(check int) "empty" 0 (Depot.batches d)

(* Concurrent hammering from 4 domains: every batch put is either
   dropped (counted) or eventually gettable; nothing is duplicated. *)
let test_concurrent_integrity () =
  let d = Depot.create ~target:1 ~max_batches:8 in
  let per_domain = 500 in
  let ndomains = 4 in
  let dropped = Atomic.make 0 in
  let gotten = Atomic.make 0 in
  let domains =
    List.init ndomains (fun di ->
        Domain.spawn (fun () ->
            for i = 0 to per_domain - 1 do
              let v = (di * per_domain) + i in
              (match Depot.put d [ v ] with
              | `Kept -> ()
              | `Dropped -> Atomic.incr dropped);
              match Depot.get d with
              | Some b -> Atomic.fetch_and_add gotten (List.length b) |> ignore
              | None -> ()
            done))
  in
  List.iter Domain.join domains;
  let leftover = List.length (Depot.drain d) in
  Alcotest.(check int) "puts = drops + gets + leftover"
    (ndomains * per_domain)
    (Atomic.get dropped + Atomic.get gotten + leftover)

let suite =
  [
    Alcotest.test_case "get/put with bound" `Quick test_get_put;
    Alcotest.test_case "put_partial feeds get" `Quick
      test_put_partial_feeds_get;
    Alcotest.test_case "drain" `Quick test_drain;
    Alcotest.test_case "4-domain integrity" `Quick test_concurrent_integrity;
  ]
