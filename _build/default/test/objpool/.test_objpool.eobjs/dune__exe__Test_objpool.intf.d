test/objpool/test_objpool.mli:
