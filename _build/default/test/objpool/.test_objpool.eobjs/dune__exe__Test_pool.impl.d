test/objpool/test_pool.ml: Alcotest Atomic Domain List Objpool Pool Pstats QCheck QCheck_alcotest Queue
