test/objpool/test_objpool.ml: Alcotest Test_depot Test_magazine Test_pool
