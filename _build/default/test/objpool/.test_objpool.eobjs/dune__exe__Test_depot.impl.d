test/objpool/test_depot.ml: Alcotest Atomic Depot Domain List Objpool
