test/objpool/test_magazine.ml: Alcotest List Magazine Objpool QCheck QCheck_alcotest
