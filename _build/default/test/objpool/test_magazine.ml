open Objpool

let test_empty_get () =
  let m = Magazine.create ~target:3 in
  Alcotest.(check (option int)) "empty" None (Magazine.get m);
  Alcotest.(check int) "size" 0 (Magazine.size m)

let test_put_get_lifo () =
  let m = Magazine.create ~target:3 in
  List.iter (fun i -> ignore (Magazine.put m i)) [ 1; 2; 3 ];
  Alcotest.(check (option int)) "lifo" (Some 3) (Magazine.get m);
  Alcotest.(check (option int)) "lifo" (Some 2) (Magazine.get m);
  Alcotest.(check bool) "invariant" true (Magazine.check m)

let test_overflow_slides_then_flushes () =
  let m = Magazine.create ~target:2 in
  Alcotest.(check bool) "p1" true (Magazine.put m 1 = `Ok);
  Alcotest.(check bool) "p2" true (Magazine.put m 2 = `Ok);
  (* main full, aux empty: slide, no flush. *)
  Alcotest.(check bool) "p3 slides" true (Magazine.put m 3 = `Ok);
  Alcotest.(check bool) "p4" true (Magazine.put m 4 = `Ok);
  (* main full again, aux full: flush aux. *)
  (match Magazine.put m 5 with
  | `Flush batch ->
      Alcotest.(check (list int)) "target-sized batch" [ 2; 1 ] batch
  | `Ok -> Alcotest.fail "expected flush");
  Alcotest.(check int) "occupancy bounded" 3 (Magazine.size m);
  Alcotest.(check bool) "invariant" true (Magazine.check m)

let test_get_slides_aux () =
  let m = Magazine.create ~target:2 in
  List.iter (fun i -> ignore (Magazine.put m i)) [ 1; 2; 3 ];
  (* main = [3], aux = [2;1] *)
  Alcotest.(check (option int)) "main first" (Some 3) (Magazine.get m);
  Alcotest.(check (option int)) "aux slides" (Some 2) (Magazine.get m);
  Alcotest.(check (option int)) "aux tail" (Some 1) (Magazine.get m);
  Alcotest.(check (option int)) "empty" None (Magazine.get m)

let test_install () =
  let m = Magazine.create ~target:3 in
  Magazine.install m [ 7; 8 ];
  Alcotest.(check (option int)) "installed" (Some 7) (Magazine.get m);
  (match Magazine.install m [ 9 ] with
  | () -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument _ -> ());
  let m2 = Magazine.create ~target:2 in
  match Magazine.install m2 [ 1; 2; 3 ] with
  | () -> Alcotest.fail "expected Invalid_argument (too long)"
  | exception Invalid_argument _ -> ()

let test_drain () =
  let m = Magazine.create ~target:2 in
  List.iter (fun i -> ignore (Magazine.put m i)) [ 1; 2; 3 ];
  Alcotest.(check int) "drained all" 3 (List.length (Magazine.drain m));
  Alcotest.(check int) "empty after" 0 (Magazine.size m)

let prop_bounded_and_conserving =
  QCheck.Test.make ~name:"magazine bounded; puts - gets = size" ~count:300
    QCheck.(pair (int_range 1 8) (small_list bool))
    (fun (target, ops) ->
      let m = Magazine.create ~target in
      let puts = ref 0 and gets = ref 0 and flushed = ref 0 in
      List.iteri
        (fun i is_put ->
          if is_put then begin
            incr puts;
            match Magazine.put m i with
            | `Ok -> ()
            | `Flush b -> flushed := !flushed + List.length b
          end
          else
            match Magazine.get m with
            | Some _ -> incr gets
            | None -> ())
        ops;
      Magazine.check m
      && Magazine.size m <= 2 * target
      && Magazine.size m = !puts - !gets - !flushed)

let suite =
  [
    Alcotest.test_case "get on empty" `Quick test_empty_get;
    Alcotest.test_case "put/get LIFO" `Quick test_put_get_lifo;
    Alcotest.test_case "overflow slides then flushes" `Quick
      test_overflow_slides_then_flushes;
    Alcotest.test_case "get slides aux into main" `Quick test_get_slides_aux;
    Alcotest.test_case "install constraints" `Quick test_install;
    Alcotest.test_case "drain" `Quick test_drain;
    QCheck_alcotest.to_alcotest prop_bounded_and_conserving;
  ]
