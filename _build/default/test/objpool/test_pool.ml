open Objpool

(* Pooled object carrying a checked-out flag so tests can detect a
   double hand-out, plus an id. *)
type obj = { id : int; checked_out : bool Atomic.t; mutable dirty : bool }

let make_pool ?(target = 4) ?(depot_batches = 8) () =
  let next = Atomic.make 0 in
  Pool.create
    ~ctor:(fun () ->
      {
        id = Atomic.fetch_and_add next 1;
        checked_out = Atomic.make false;
        dirty = false;
      })
    ~reset:(fun o -> o.dirty <- false)
    ~target ~depot_batches ()

let checkout o =
  Alcotest.(check bool) "not already out" true
    (Atomic.compare_and_set o.checked_out false true)

let checkin o = Atomic.set o.checked_out false

let test_reuse () =
  let p = make_pool () in
  let a = Pool.alloc p in
  Pool.release p a;
  let b = Pool.alloc p in
  Alcotest.(check int) "hot object reused" a.id b.id;
  Pool.release p b;
  Alcotest.(check int) "one construction" 1 (Pstats.creates (Pool.stats p))

let test_reset_applied () =
  let p = make_pool () in
  let a = Pool.alloc p in
  a.dirty <- true;
  Pool.release p a;
  let b = Pool.alloc p in
  Alcotest.(check bool) "reset on release" false b.dirty;
  Pool.release p b

let test_with_obj_releases_on_exception () =
  let p = make_pool () in
  (match Pool.with_obj p (fun _ -> failwith "boom") with
  | _ -> Alcotest.fail "expected exception"
  | exception Failure _ -> ());
  Alcotest.(check int) "released" 1 (Pstats.frees (Pool.stats p))

let test_never_hands_out_twice_single_domain () =
  let p = make_pool () in
  let live = ref [] in
  for i = 1 to 500 do
    if i mod 3 = 0 then (
      match !live with
      | o :: rest ->
          live := rest;
          checkin o;
          Pool.release p o
      | [] -> ())
    else begin
      let o = Pool.alloc p in
      checkout o;
      live := o :: !live
    end
  done;
  List.iter
    (fun o ->
      checkin o;
      Pool.release p o)
    !live

let test_flush_local_shares_stock () =
  let p = make_pool ~target:4 () in
  (* Fill this domain's magazine. *)
  let objs = List.init 8 (fun _ -> Pool.alloc p) in
  List.iter (fun o -> Pool.release p o) objs;
  Alcotest.(check int) "depot still empty" 0 (Pool.depot_batches p);
  Pool.flush_local p;
  (* Another domain can now allocate without constructing. *)
  let creates_before = Pstats.creates (Pool.stats p) in
  let d =
    Domain.spawn (fun () ->
        let o = Pool.alloc p in
        Pool.release p o;
        ())
  in
  Domain.join d;
  Alcotest.(check int) "no new constructions" creates_before
    (Pstats.creates (Pool.stats p))

let test_multidomain_stress () =
  let p = make_pool ~target:8 ~depot_batches:16 () in
  let ndomains = 4 and per_domain = 2000 in
  let domains =
    List.init ndomains (fun _ ->
        Domain.spawn (fun () ->
            let live = Queue.create () in
            for i = 1 to per_domain do
              if i mod 2 = 0 && Queue.length live > 0 then begin
                let o = Queue.pop live in
                checkin o;
                Pool.release p o
              end
              else begin
                let o = Pool.alloc p in
                checkout o;
                Queue.add o live
              end
            done;
            while Queue.length live > 0 do
              let o = Queue.pop live in
              checkin o;
              Pool.release p o
            done;
            Pool.flush_local p))
  in
  List.iter Domain.join domains;
  let st = Pool.stats p in
  Alcotest.(check int) "allocs = frees" (Pstats.allocs st) (Pstats.frees st);
  Alcotest.(check bool) "magazines absorb most traffic" true
    (Pstats.magazine_hit_rate st > 0.5)

let test_depot_overflow_drops () =
  let p = make_pool ~target:2 ~depot_batches:1 () in
  let objs = List.init 20 (fun _ -> Pool.alloc p) in
  List.iter (fun o -> Pool.release p o) objs;
  (* 20 releases with a 2-target magazine (holds 4) and a 1-batch depot:
     something must have been dropped to the GC. *)
  Alcotest.(check bool) "drops counted" true (Pstats.drops (Pool.stats p) > 0)

let prop_single_domain_traffic =
  QCheck.Test.make ~name:"random traffic keeps stats consistent" ~count:100
    QCheck.(small_list bool)
    (fun ops ->
      let p = make_pool ~target:3 ~depot_batches:4 () in
      let live = ref [] in
      List.iter
        (fun is_alloc ->
          if is_alloc then live := Pool.alloc p :: !live
          else
            match !live with
            | o :: rest ->
                live := rest;
                Pool.release p o
            | [] -> ())
        ops;
      let st = Pool.stats p in
      Pstats.allocs st - Pstats.frees st = List.length !live)

let suite =
  [
    Alcotest.test_case "hot object reused, ctor once" `Quick test_reuse;
    Alcotest.test_case "reset applied on release" `Quick test_reset_applied;
    Alcotest.test_case "with_obj releases on exception" `Quick
      test_with_obj_releases_on_exception;
    Alcotest.test_case "never hands out twice (single domain)" `Quick
      test_never_hands_out_twice_single_domain;
    Alcotest.test_case "flush_local shares stock across domains" `Quick
      test_flush_local_shares_stock;
    Alcotest.test_case "4-domain stress: exact accounting" `Quick
      test_multidomain_stress;
    Alcotest.test_case "depot overflow drops to GC" `Quick
      test_depot_overflow_drops;
    QCheck_alcotest.to_alcotest prop_single_domain_traffic;
  ]
