test/dlm/test_dlm.ml: Alcotest Test_lockmgr Test_oltp
