test/dlm/test_dlm.mli:
