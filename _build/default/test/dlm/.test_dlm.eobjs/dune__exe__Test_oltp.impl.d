test/dlm/test_oltp.ml: Alcotest Dlm Kma Option Sim
