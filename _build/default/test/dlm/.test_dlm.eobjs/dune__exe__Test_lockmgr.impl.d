test/dlm/test_lockmgr.ml: Alcotest Array Baseline Dlm Hashtbl List Lockmgr Option QCheck QCheck_alcotest Sim
