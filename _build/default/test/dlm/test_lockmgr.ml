open Dlm

let fixture ?(ncpus = 2) () =
  let m =
    Sim.Machine.create
      (Sim.Config.make ~ncpus ~memory_words:131072 ~cache_lines:0 ())
  in
  let a = Baseline.Allocator.create Baseline.Allocator.Newkma m in
  (m, a)

let on_cpu m f =
  let r = ref None in
  Sim.Machine.run m [| (fun _ -> r := Some (f ())) |];
  Option.get !r

let test_compat_matrix () =
  (* Spot-check the canonical entries. *)
  Alcotest.(check bool) "NL vs EX" true (Lockmgr.compatible Lockmgr.NL Lockmgr.EX);
  Alcotest.(check bool) "CR vs PW" true (Lockmgr.compatible Lockmgr.CR Lockmgr.PW);
  Alcotest.(check bool) "CR vs EX" false (Lockmgr.compatible Lockmgr.CR Lockmgr.EX);
  Alcotest.(check bool) "PR vs PR" true (Lockmgr.compatible Lockmgr.PR Lockmgr.PR);
  Alcotest.(check bool) "PR vs PW" false (Lockmgr.compatible Lockmgr.PR Lockmgr.PW);
  Alcotest.(check bool) "EX vs EX" false (Lockmgr.compatible Lockmgr.EX Lockmgr.EX);
  (* Symmetry. *)
  Array.iter
    (fun a ->
      Array.iter
        (fun b ->
          Alcotest.(check bool) "symmetric"
            (Lockmgr.compatible a b)
            (Lockmgr.compatible b a))
        Lockmgr.all_modes)
    Lockmgr.all_modes

let test_grant_and_release () =
  let m, a = fixture () in
  on_cpu m (fun () ->
      let d = Option.get (Lockmgr.create a) in
      let l1 = Lockmgr.lock d ~resource:7 ~mode:Lockmgr.PR ~client:0 in
      Alcotest.(check bool) "granted" true
        (l1 <> 0 && Lockmgr.status d l1 = Lockmgr.Granted);
      Alcotest.(check int) "one resource" 1 (Lockmgr.resources_oracle d);
      let l2 = Lockmgr.lock d ~resource:7 ~mode:Lockmgr.PR ~client:1 in
      Alcotest.(check bool) "shared read granted" true
        (Lockmgr.status d l2 = Lockmgr.Granted);
      Lockmgr.unlock d l1;
      Lockmgr.unlock d l2;
      Alcotest.(check int) "resource reclaimed" 0
        (Lockmgr.resources_oracle d);
      Alcotest.(check int) "no locks" 0 (Lockmgr.locks_oracle d))

let test_conflict_waits_then_grants () =
  let m, a = fixture () in
  on_cpu m (fun () ->
      let d = Option.get (Lockmgr.create a) in
      let ex = Lockmgr.lock d ~resource:1 ~mode:Lockmgr.EX ~client:0 in
      let pr = Lockmgr.lock d ~resource:1 ~mode:Lockmgr.PR ~client:1 in
      Alcotest.(check bool) "conflicting request waits" true
        (Lockmgr.status d pr = Lockmgr.Waiting);
      Lockmgr.unlock d ex;
      Alcotest.(check bool) "granted on release" true
        (Lockmgr.status d pr = Lockmgr.Granted);
      Lockmgr.unlock d pr)

let test_fifo_grant_order () =
  let m, a = fixture () in
  on_cpu m (fun () ->
      let d = Option.get (Lockmgr.create a) in
      let ex = Lockmgr.lock d ~resource:1 ~mode:Lockmgr.EX ~client:0 in
      let w1 = Lockmgr.lock d ~resource:1 ~mode:Lockmgr.EX ~client:1 in
      let w2 = Lockmgr.lock d ~resource:1 ~mode:Lockmgr.EX ~client:2 in
      Lockmgr.unlock d ex;
      (* Only the first waiter gets the exclusive lock. *)
      Alcotest.(check bool) "first granted" true
        (Lockmgr.status d w1 = Lockmgr.Granted);
      Alcotest.(check bool) "second still waits" true
        (Lockmgr.status d w2 = Lockmgr.Waiting);
      Lockmgr.unlock d w1;
      Alcotest.(check bool) "then the second" true
        (Lockmgr.status d w2 = Lockmgr.Granted);
      Lockmgr.unlock d w2)

let test_try_lock_never_waits () =
  let m, a = fixture () in
  on_cpu m (fun () ->
      let d = Option.get (Lockmgr.create a) in
      let ex = Lockmgr.lock d ~resource:3 ~mode:Lockmgr.EX ~client:0 in
      let p = Lockmgr.try_lock d ~resource:3 ~mode:Lockmgr.PR ~client:1 in
      Alcotest.(check int) "rejected immediately" 0 p;
      Alcotest.(check int) "only the EX lock exists" 1
        (Lockmgr.locks_oracle d);
      Lockmgr.unlock d ex;
      (* A failed probe against a fresh resource id must not leave a
         stray resource block behind. *)
      Alcotest.(check int) "no resources" 0 (Lockmgr.resources_oracle d))

let test_cancel_waiting () =
  let m, a = fixture () in
  on_cpu m (fun () ->
      let d = Option.get (Lockmgr.create a) in
      let ex = Lockmgr.lock d ~resource:9 ~mode:Lockmgr.EX ~client:0 in
      let w = Lockmgr.lock d ~resource:9 ~mode:Lockmgr.EX ~client:1 in
      Alcotest.(check bool) "waiting" true (Lockmgr.status d w = Lockmgr.Waiting);
      Lockmgr.cancel d w;
      Alcotest.(check int) "one lock left" 1 (Lockmgr.locks_oracle d);
      Lockmgr.unlock d ex;
      Alcotest.(check int) "all gone" 0 (Lockmgr.locks_oracle d))

let test_convert () =
  let m, a = fixture () in
  on_cpu m (fun () ->
      let d = Option.get (Lockmgr.create a) in
      let l1 = Lockmgr.lock d ~resource:4 ~mode:Lockmgr.PR ~client:0 in
      let l2 = Lockmgr.lock d ~resource:4 ~mode:Lockmgr.PR ~client:1 in
      (* Upconvert blocked by the other reader. *)
      Alcotest.(check bool) "upconvert denied" false
        (Lockmgr.convert d l1 ~mode:Lockmgr.EX);
      Lockmgr.unlock d l2;
      Alcotest.(check bool) "upconvert after release" true
        (Lockmgr.convert d l1 ~mode:Lockmgr.EX);
      (* Downconvert unblocks a waiter. *)
      let w = Lockmgr.lock d ~resource:4 ~mode:Lockmgr.CR ~client:2 in
      Alcotest.(check bool) "waits behind EX" true
        (Lockmgr.status d w = Lockmgr.Waiting);
      Alcotest.(check bool) "downconvert" true
        (Lockmgr.convert d l1 ~mode:Lockmgr.CW);
      Alcotest.(check bool) "waiter granted by downconvert" true
        (Lockmgr.status d w = Lockmgr.Granted);
      Lockmgr.unlock d l1;
      Lockmgr.unlock d w)

let test_multicpu_exclusive_counts () =
  (* Four CPUs fight over a handful of resources with EX locks; the
     bucket spinlocks must keep the grant counts coherent: at the end
     everything unlocks and the table is empty. *)
  let m, a = fixture ~ncpus:4 () in
  let d_cell = ref None in
  Sim.Machine.run m
    (Array.init 4 (fun _ cpu ->
         if cpu = 0 then begin
           d_cell := Lockmgr.create a;
           Sim.Machine.write 16 1
         end
         else
           while Sim.Machine.read 16 = 0 do
             Sim.Machine.spin_pause ()
           done;
         let d = Option.get !d_cell in
         for i = 1 to 100 do
           let r = i mod 5 in
           match Lockmgr.try_lock d ~resource:r ~mode:Lockmgr.EX ~client:cpu with
           | 0 -> ()
           | lkb -> Lockmgr.unlock d lkb
         done));
  let d = Option.get !d_cell in
  Alcotest.(check int) "no locks leak" 0 (Lockmgr.locks_oracle d);
  Alcotest.(check int) "no resources leak" 0 (Lockmgr.resources_oracle d)

(* Property: any sequence of grant/unlock on a single CPU leaves the
   manager empty, and granted sets are always mutually compatible. *)
let prop_granted_always_compatible =
  QCheck.Test.make ~name:"granted locks pairwise compatible" ~count:30
    QCheck.(small_list (pair (int_bound 3) (int_bound 5)))
    (fun ops ->
      let m, a = fixture () in
      on_cpu m (fun () ->
          let d = Option.get (Lockmgr.create a) in
          let granted = Hashtbl.create 16 in
          let ok = ref true in
          List.iteri
            (fun i (resource, mode_i) ->
              let mode = Lockmgr.all_modes.(mode_i) in
              match Lockmgr.try_lock d ~resource ~mode ~client:0 with
              | 0 ->
                  (* Rejection must mean a real incompatibility. *)
                  let conflicts =
                    Hashtbl.fold
                      (fun _ (r, m', _) acc ->
                        acc
                        || (r = resource && not (Lockmgr.compatible mode m')))
                      granted false
                  in
                  if not conflicts then ok := false
              | lkb ->
                  Hashtbl.iter
                    (fun _ (r, m', _) ->
                      if r = resource && not (Lockmgr.compatible mode m')
                      then ok := false)
                    granted;
                  Hashtbl.add granted i (resource, mode, lkb))
            ops;
          (* Everything we hold is accounted for; unlocking drains. *)
          if Lockmgr.locks_oracle d <> Hashtbl.length granted then ok := false;
          Hashtbl.iter (fun _ (_, _, lkb) -> Lockmgr.unlock d lkb) granted;
          !ok && Lockmgr.locks_oracle d = 0 && Lockmgr.resources_oracle d = 0))

let suite =
  [
    Alcotest.test_case "compatibility matrix" `Quick test_compat_matrix;
    Alcotest.test_case "grant and release" `Quick test_grant_and_release;
    Alcotest.test_case "conflict waits, grant on release" `Quick
      test_conflict_waits_then_grants;
    Alcotest.test_case "FIFO grant order" `Quick test_fifo_grant_order;
    Alcotest.test_case "try_lock never waits nor leaks" `Quick
      test_try_lock_never_waits;
    Alcotest.test_case "cancel a waiting request" `Quick test_cancel_waiting;
    Alcotest.test_case "convert up and down" `Quick test_convert;
    Alcotest.test_case "multi-CPU EX storm stays coherent" `Quick
      test_multicpu_exclusive_counts;
    QCheck_alcotest.to_alcotest prop_granted_always_compatible;
  ]
