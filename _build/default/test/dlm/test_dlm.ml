let () =
  Alcotest.run "dlm"
    [ ("lockmgr", Test_lockmgr.suite); ("oltp", Test_oltp.suite) ]
