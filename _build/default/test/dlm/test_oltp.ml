(* The OLTP driver: completes without exhausting memory, produces the
   allocator traffic the miss-rate experiment needs, and leaks
   nothing. *)

let build ?(ncpus = 2) () =
  let cfg =
    Sim.Config.make ~ncpus ~memory_words:(512 * 1024) ~cache_lines:0 ()
  in
  let m = Sim.Machine.create cfg in
  let kmem =
    Kma.Kmem.create m
      ~params:(Kma.Params.auto ~memory_words:cfg.Sim.Config.memory_words)
      ()
  in
  (m, kmem)

let test_runs_to_completion () =
  let _m, kmem = build () in
  let r = Dlm.Oltp.run ~kmem ~ncpus:2 ~transactions_per_cpu:300 () in
  Alcotest.(check int) "all transactions" 600 r.Dlm.Oltp.transactions;
  Alcotest.(check bool) "some grants" true (r.Dlm.Oltp.grants > 1000);
  Alcotest.(check bool) "cycles advanced" true (r.Dlm.Oltp.cycles > 0)

let test_deterministic () =
  let run () =
    let _m, kmem = build () in
    let r = Dlm.Oltp.run ~kmem ~ncpus:2 ~transactions_per_cpu:200 ~seed:5 () in
    (r.Dlm.Oltp.grants, r.Dlm.Oltp.rejects, r.Dlm.Oltp.cycles)
  in
  Alcotest.(check bool) "identical reruns" true (run () = run ())

let test_produces_layer_traffic () =
  let _m, kmem = build ~ncpus:4 () in
  ignore (Dlm.Oltp.run ~kmem ~ncpus:4 ~transactions_per_cpu:500 ());
  let stats = Kma.Kmem.stats kmem in
  let p = Kma.Kmem.params kmem in
  (* The 512-byte transaction records and the 256-byte messages must
     generate both per-CPU and global-layer activity. *)
  let si512 = Option.get (Kma.Params.size_index_of_bytes p 512) in
  let si256 = Option.get (Kma.Params.size_index_of_bytes p 256) in
  let s512 = Kma.Kstats.size stats si512 in
  let s256 = Kma.Kstats.size stats si256 in
  Alcotest.(check bool) "512B allocs" true (s512.Kma.Kstats.allocs > 1000);
  Alcotest.(check bool) "512B per-CPU misses" true
    (s512.Kma.Kstats.alloc_misses > 0);
  Alcotest.(check bool) "256B cross-CPU frees flush" true
    (s256.Kma.Kstats.free_misses > 0);
  Alcotest.(check bool) "global layer used" true
    (s256.Kma.Kstats.gbl_gets > 0 && s256.Kma.Kstats.gbl_puts > 0)

let test_no_leaks_after_run () =
  let m, kmem = build ~ncpus:2 () in
  ignore (Dlm.Oltp.run ~kmem ~ncpus:2 ~transactions_per_cpu:300 ());
  (* Everything the workload allocated was freed; after draining the
     caches, all physical pages return except the lock-manager table
     (one 4096-byte block, never freed by design). *)
  Sim.Machine.run m
    [|
      (fun _ ->
        Kma.Kmem.reap_local kmem;
        Kma.Kmem.reap_global kmem);
      (fun _ -> Kma.Kmem.reap_local kmem);
    |];
  Sim.Machine.run m
    [| (fun _ -> Kma.Kmem.reap_global kmem) |];
  Alcotest.(check int) "only the resource table page remains" 1
    (Kma.Kmem.granted_pages_oracle kmem)

let suite =
  [
    Alcotest.test_case "runs to completion" `Quick test_runs_to_completion;
    Alcotest.test_case "deterministic for a seed" `Quick test_deterministic;
    Alcotest.test_case "produces per-layer traffic" `Quick
      test_produces_layer_traffic;
    Alcotest.test_case "no leaks beyond the table" `Quick
      test_no_leaks_after_run;
  ]
