let expect_invalid f =
  match f () with
  | _ -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument _ -> ()

let test_default_validates () = Sim.Config.validate Sim.Config.default

let test_make_overrides () =
  let c = Sim.Config.make ~ncpus:8 ~miss_cost:99 () in
  Alcotest.(check int) "ncpus" 8 c.Sim.Config.ncpus;
  Alcotest.(check int) "miss" 99 c.Sim.Config.miss_cost;
  Alcotest.(check int)
    "others keep defaults" Sim.Config.default.Sim.Config.c2c_cost
    c.Sim.Config.c2c_cost

let test_bad_ncpus () = expect_invalid (fun () -> Sim.Config.make ~ncpus:0 ())

let test_bad_line_words () =
  expect_invalid (fun () -> Sim.Config.make ~line_words:3 ())

let test_bad_memory_alignment () =
  expect_invalid (fun () ->
      Sim.Config.make ~memory_words:1001 ~line_words:8 ())

let test_negative_cost () =
  expect_invalid (fun () -> Sim.Config.make ~miss_cost:(-1) ())

let test_seconds_of_cycles () =
  let c = Sim.Config.make ~mhz:50 () in
  Alcotest.(check (float 1e-12))
    "1M cycles at 50MHz" 0.02
    (Sim.Config.seconds_of_cycles c 1_000_000)

let suite =
  [
    Alcotest.test_case "default validates" `Quick test_default_validates;
    Alcotest.test_case "make overrides fields" `Quick test_make_overrides;
    Alcotest.test_case "rejects ncpus=0" `Quick test_bad_ncpus;
    Alcotest.test_case "rejects non-power-of-two line" `Quick
      test_bad_line_words;
    Alcotest.test_case "rejects unaligned memory size" `Quick
      test_bad_memory_alignment;
    Alcotest.test_case "rejects negative cost" `Quick test_negative_cost;
    Alcotest.test_case "cycles to seconds" `Quick test_seconds_of_cycles;
  ]
