(* Classic multiprocessor litmus tests.  The simulated machine executes
   memory operations atomically in global virtual-time order, so it is
   sequentially consistent: the relaxed outcomes hardware memory models
   permit must never appear.  These tests document (and pin) the memory
   model the allocator code is written against — the paper's 80486s
   were likewise strongly ordered. *)

open Sim

let machine () =
  Machine.create (Config.make ~ncpus:2 ~memory_words:4096 ~cache_lines:0 ())

(* Store buffering (SB): x = y = 0; P0: x:=1; r0:=y | P1: y:=1; r1:=x.
   Under SC, r0 = r1 = 0 is forbidden.  Sweep relative timings by
   varying pre-work so both interleavings are explored. *)
let test_store_buffering () =
  for skew = 0 to 20 do
    let m = machine () in
    let r0 = ref (-1) and r1 = ref (-1) in
    Machine.run m
      [|
        (fun _ ->
          Machine.work skew;
          Machine.write 100 1;
          r0 := Machine.read 200);
        (fun _ ->
          Machine.work (20 - skew);
          Machine.write 200 1;
          r1 := Machine.read 100);
      |];
    if !r0 = 0 && !r1 = 0 then
      Alcotest.failf "SB relaxed outcome at skew %d: r0=r1=0" skew
  done

(* Message passing (MP): P0: data:=42; flag:=1 | P1: if flag=1 then
   read data.  Under SC the data must be visible once the flag is. *)
let test_message_passing () =
  for skew = 0 to 20 do
    let m = machine () in
    let seen = ref (-1) in
    Machine.run m
      [|
        (fun _ ->
          Machine.work skew;
          Machine.write 100 42;
          Machine.write 101 1);
        (fun _ ->
          Machine.work (20 - skew);
          if Machine.read 101 = 1 then seen := Machine.read 100);
      |];
    if !seen <> -1 && !seen <> 42 then
      Alcotest.failf "MP violation at skew %d: flag set but data %d" skew
        !seen
  done

(* Coherence (CoWW/CoRR): all CPUs agree on the order of writes to one
   location — the final value is one of the written values and reads
   never go backwards in a single observer. *)
let test_coherence_single_location () =
  let m = machine () in
  let readings = ref [] in
  Machine.run m
    [|
      (fun _ ->
        for v = 1 to 50 do
          Machine.write 100 v
        done);
      (fun _ ->
        for _ = 1 to 100 do
          readings := Machine.read 100 :: !readings
        done);
    |];
  let rec monotone = function
    | a :: (b :: _ as rest) ->
        if a < b then Alcotest.failf "read went backwards: %d after %d" b a
        else monotone rest
    | _ -> ()
  in
  (* !readings is newest-first, so monotone non-increasing = reads never
     go backwards in program order. *)
  monotone !readings

(* Atomicity: a CAS that succeeds observed the value it replaced; two
   CPUs CASing 0->id on the same word elect exactly one winner. *)
let test_cas_election () =
  for skew = 0 to 10 do
    let m = machine () in
    let winners = ref [] in
    Machine.run m
      (Array.init 2 (fun _ cpu ->
           Machine.work (if cpu = 0 then skew else 10 - skew);
           if Machine.cas 100 ~expected:0 ~desired:(cpu + 1) then
             winners := cpu :: !winners));
    Alcotest.(check int)
      (Printf.sprintf "one winner at skew %d" skew)
      1
      (List.length !winners);
    let v = Memory.get (Machine.memory m) 100 in
    Alcotest.(check int) "winner's value stored" (List.hd !winners + 1) v
  done

let suite =
  [
    Alcotest.test_case "SB: store buffering forbidden" `Quick
      test_store_buffering;
    Alcotest.test_case "MP: message passing ordered" `Quick
      test_message_passing;
    Alcotest.test_case "coherence on one location" `Quick
      test_coherence_single_location;
    Alcotest.test_case "CAS elects exactly one winner" `Quick
      test_cas_election;
  ]
