let expect_invalid f =
  match f () with
  | _ -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument _ -> ()

let test_zero_filled () =
  let m = Sim.Memory.create ~words:64 in
  for a = 0 to 63 do
    Alcotest.(check int) "zero" 0 (Sim.Memory.get m a)
  done

let test_roundtrip () =
  let m = Sim.Memory.create ~words:64 in
  Sim.Memory.set m 7 12345;
  Sim.Memory.set m 0 (-9);
  Alcotest.(check int) "word 7" 12345 (Sim.Memory.get m 7);
  Alcotest.(check int) "word 0" (-9) (Sim.Memory.get m 0);
  Alcotest.(check int) "untouched" 0 (Sim.Memory.get m 8)

let test_bounds () =
  let m = Sim.Memory.create ~words:16 in
  expect_invalid (fun () -> Sim.Memory.get m 16);
  expect_invalid (fun () -> Sim.Memory.get m (-1));
  expect_invalid (fun () -> Sim.Memory.set m 16 0);
  expect_invalid (fun () -> Sim.Memory.create ~words:0)

let test_fill_and_blit () =
  let m = Sim.Memory.create ~words:32 in
  Sim.Memory.fill m 4 ~len:8 7;
  let region = Sim.Memory.blit_to_host m 3 ~len:10 in
  Alcotest.(check (array int))
    "fill region"
    [| 0; 7; 7; 7; 7; 7; 7; 7; 7; 0 |]
    region;
  expect_invalid (fun () -> Sim.Memory.fill m 30 ~len:4 1)

let prop_random_writes =
  QCheck.Test.make ~name:"random writes read back" ~count:100
    QCheck.(small_list (pair (int_bound 255) int))
    (fun writes ->
      let m = Sim.Memory.create ~words:256 in
      let oracle = Array.make 256 0 in
      List.iter
        (fun (a, v) ->
          Sim.Memory.set m a v;
          oracle.(a) <- v)
        writes;
      Array.for_all Fun.id
        (Array.init 256 (fun a -> Sim.Memory.get m a = oracle.(a))))

let suite =
  [
    Alcotest.test_case "created zero-filled" `Quick test_zero_filled;
    Alcotest.test_case "set/get roundtrip" `Quick test_roundtrip;
    Alcotest.test_case "bounds checked" `Quick test_bounds;
    Alcotest.test_case "fill and blit_to_host" `Quick test_fill_and_blit;
    QCheck_alcotest.to_alcotest prop_random_writes;
  ]
