test/sim/test_sim.mli:
