test/sim/test_litmus.ml: Alcotest Array Config List Machine Memory Printf Sim
