test/sim/test_config.ml: Alcotest Sim
