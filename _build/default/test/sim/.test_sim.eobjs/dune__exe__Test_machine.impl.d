test/sim/test_machine.ml: Alcotest Array Config List Machine Memory Printf QCheck QCheck_alcotest Sim Spinlock Vmsys
