test/sim/test_memory.ml: Alcotest Array Fun List QCheck QCheck_alcotest Sim
