test/sim/test_cache.ml: Alcotest Cache Config List QCheck QCheck_alcotest Sim
