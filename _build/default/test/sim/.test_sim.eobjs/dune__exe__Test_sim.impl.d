test/sim/test_sim.ml: Alcotest Test_cache Test_config Test_litmus Test_machine Test_memory
