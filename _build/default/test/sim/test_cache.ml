open Sim

let cfg ?(ncpus = 4) ?(cache_lines = 0) () =
  Config.make ~ncpus ~cache_lines ~memory_words:4096 ()

let test_cold_miss_then_hit () =
  let c = cfg () in
  let cache = Cache.create c in
  let cost1 = Cache.access cache ~cpu:0 100 Cache.Load in
  let cost2 = Cache.access cache ~cpu:0 100 Cache.Load in
  Alcotest.(check int) "cold miss" c.Config.miss_cost cost1;
  Alcotest.(check int) "hit" 0 cost2;
  let st = Cache.stats cache ~cpu:0 in
  Alcotest.(check int) "one miss" 1 st.Cache.misses;
  Alcotest.(check int) "one hit" 1 st.Cache.hits

let test_same_line_hits () =
  let c = cfg () in
  let cache = Cache.create c in
  ignore (Cache.access cache ~cpu:0 64 Cache.Load);
  (* words 64..71 share the 8-word line *)
  let cost = Cache.access cache ~cpu:0 71 Cache.Load in
  Alcotest.(check int) "same line is a hit" 0 cost;
  let cost' = Cache.access cache ~cpu:0 72 Cache.Load in
  Alcotest.(check int) "next line misses" c.Config.miss_cost cost'

let test_c2c_transfer () =
  let c = cfg () in
  let cache = Cache.create c in
  ignore (Cache.access cache ~cpu:0 200 Cache.Store);
  Alcotest.(check (option int)) "cpu0 dirty" (Some 0)
    (Cache.dirty_owner cache 200);
  let cost = Cache.access cache ~cpu:1 200 Cache.Load in
  Alcotest.(check int) "dirty line costs c2c" c.Config.c2c_cost cost;
  Alcotest.(check (option int)) "clean after transfer" None
    (Cache.dirty_owner cache 200);
  Alcotest.(check (list int)) "both hold it" [ 0; 1 ] (Cache.holders cache 200)

let test_silent_exclusive_upgrade () =
  let c = cfg () in
  let cache = Cache.create c in
  ignore (Cache.access cache ~cpu:0 300 Cache.Load);
  let cost = Cache.access cache ~cpu:0 300 Cache.Store in
  Alcotest.(check int) "private store is free" 0 cost

let test_shared_store_upgrades () =
  let c = cfg () in
  let cache = Cache.create c in
  ignore (Cache.access cache ~cpu:0 300 Cache.Load);
  ignore (Cache.access cache ~cpu:1 300 Cache.Load);
  ignore (Cache.access cache ~cpu:2 300 Cache.Load);
  let cost = Cache.access cache ~cpu:0 300 Cache.Store in
  Alcotest.(check int) "upgrade round" c.Config.upgrade_cost cost;
  Alcotest.(check (list int)) "others invalidated" [ 0 ]
    (Cache.holders cache 300);
  let st = Cache.stats cache ~cpu:0 in
  Alcotest.(check int) "two copies invalidated" 2 st.Cache.invalidations

let test_store_to_dirty_elsewhere () =
  let c = cfg () in
  let cache = Cache.create c in
  ignore (Cache.access cache ~cpu:0 300 Cache.Store);
  let cost = Cache.access cache ~cpu:1 300 Cache.Store in
  Alcotest.(check int) "steal dirty line" c.Config.c2c_cost cost;
  Alcotest.(check (option int)) "cpu1 owns" (Some 1)
    (Cache.dirty_owner cache 300);
  Alcotest.(check (list int)) "only cpu1" [ 1 ] (Cache.holders cache 300)

let test_rmw_counts () =
  let c = cfg () in
  let cache = Cache.create c in
  ignore (Cache.access cache ~cpu:0 10 Cache.Rmw);
  let st = Cache.stats cache ~cpu:0 in
  Alcotest.(check int) "rmw counted" 1 st.Cache.rmws;
  Alcotest.(check (option int)) "rmw dirties" (Some 0)
    (Cache.dirty_owner cache 10)

let test_bounded_eviction () =
  let c = cfg ~cache_lines:4 () in
  let cache = Cache.create c in
  (* Touch 5 distinct lines; the first must be evicted FIFO. *)
  for i = 0 to 4 do
    ignore (Cache.access cache ~cpu:0 (i * 8) Cache.Load)
  done;
  Alcotest.(check int) "resident capped" 4 (Cache.resident cache ~cpu:0);
  Alcotest.(check (list int)) "line 0 evicted" [] (Cache.holders cache 0);
  let cost = Cache.access cache ~cpu:0 0 Cache.Load in
  Alcotest.(check int) "re-fetch misses" c.Config.miss_cost cost;
  let st = Cache.stats cache ~cpu:0 in
  Alcotest.(check int) "evictions counted" 2 st.Cache.evictions

let test_trace_hook () =
  let c = cfg () in
  let cache = Cache.create c in
  let seen = ref [] in
  Cache.set_trace cache
    (Some (fun ~cpu ~addr _kind ~cost -> seen := (cpu, addr, cost) :: !seen));
  ignore (Cache.access cache ~cpu:2 40 Cache.Load);
  ignore (Cache.access cache ~cpu:2 40 Cache.Load);
  Cache.set_trace cache None;
  ignore (Cache.access cache ~cpu:2 48 Cache.Load);
  Alcotest.(check (list (triple int int int)))
    "trace captured"
    [ (2, 40, 0); (2, 40, c.Config.miss_cost) ]
    !seen

let test_uncached_region () =
  let c =
    Config.make ~memory_words:4096 ~uncached_words:512 ~uncached_cost:40 ()
  in
  let cache = Cache.create c in
  (* Below the threshold: normal caching. *)
  ignore (Cache.access cache ~cpu:0 100 Cache.Load);
  Alcotest.(check int) "cached hit" 0 (Cache.access cache ~cpu:0 100 Cache.Load);
  (* At and above the threshold: every access pays the bus. *)
  let a = 4096 - 512 in
  Alcotest.(check int) "uncached read" 40 (Cache.access cache ~cpu:0 a Cache.Load);
  Alcotest.(check int) "uncached again" 40
    (Cache.access cache ~cpu:0 a Cache.Load);
  Alcotest.(check int) "uncached write" 40
    (Cache.access cache ~cpu:0 (4095) Cache.Store);
  Alcotest.(check (list int)) "never cached" [] (Cache.holders cache a)

let test_reset_stats () =
  let cache = Cache.create (cfg ()) in
  ignore (Cache.access cache ~cpu:0 0 Cache.Store);
  Cache.reset_stats cache;
  let st = Cache.stats cache ~cpu:0 in
  Alcotest.(check int) "stores zeroed" 0 st.Cache.stores;
  Alcotest.(check int) "stalls zeroed" 0 st.Cache.stall_cycles

(* Property: at most one dirty owner per line, and the dirty owner always
   holds a copy; resident counts never exceed a bounded capacity. *)
let prop_coherence_invariants =
  let gen =
    QCheck.(
      small_list (triple (int_bound 3) (int_bound 511) (int_bound 2)))
  in
  QCheck.Test.make ~name:"MESI invariants under random traffic" ~count:300 gen
    (fun ops ->
      let c = cfg ~cache_lines:8 () in
      let cache = Cache.create c in
      List.iter
        (fun (cpu, addr, k) ->
          let kind =
            match k with 0 -> Cache.Load | 1 -> Cache.Store | _ -> Cache.Rmw
          in
          ignore (Cache.access cache ~cpu addr kind))
        ops;
      (* Check invariants over every line touched. *)
      List.for_all
        (fun (_, addr, _) ->
          let hs = Cache.holders cache addr in
          (match Cache.dirty_owner cache addr with
          | Some o -> hs = [ o ]
          | None -> true)
          && List.for_all (fun cpu -> Cache.resident cache ~cpu <= 8) hs)
        ops)

(* Property: total stall cycles recorded equal the sum of returned costs. *)
let prop_stall_accounting =
  let gen =
    QCheck.(small_list (triple (int_bound 3) (int_bound 511) (int_bound 2)))
  in
  QCheck.Test.make ~name:"stall cycles equal sum of access costs" ~count:200
    gen (fun ops ->
      let cache = Cache.create (cfg ()) in
      let total = ref 0 in
      List.iter
        (fun (cpu, addr, k) ->
          let kind =
            match k with 0 -> Cache.Load | 1 -> Cache.Store | _ -> Cache.Rmw
          in
          total := !total + Cache.access cache ~cpu addr kind)
        ops;
      (Cache.total_stats cache).Cache.stall_cycles = !total)

let suite =
  [
    Alcotest.test_case "cold miss then hit" `Quick test_cold_miss_then_hit;
    Alcotest.test_case "same line hits, next line misses" `Quick
      test_same_line_hits;
    Alcotest.test_case "cache-to-cache transfer" `Quick test_c2c_transfer;
    Alcotest.test_case "silent exclusive upgrade" `Quick
      test_silent_exclusive_upgrade;
    Alcotest.test_case "shared store pays upgrade" `Quick
      test_shared_store_upgrades;
    Alcotest.test_case "store steals dirty line" `Quick
      test_store_to_dirty_elsewhere;
    Alcotest.test_case "rmw counted and dirties" `Quick test_rmw_counts;
    Alcotest.test_case "bounded cache evicts FIFO" `Quick
      test_bounded_eviction;
    Alcotest.test_case "trace hook sees accesses" `Quick test_trace_hook;
    Alcotest.test_case "uncached region bypasses cache" `Quick
      test_uncached_region;
    Alcotest.test_case "reset_stats" `Quick test_reset_stats;
    QCheck_alcotest.to_alcotest prop_coherence_invariants;
    QCheck_alcotest.to_alcotest prop_stall_accounting;
  ]
