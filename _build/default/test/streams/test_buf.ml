open Streams

let fixture ?(ncpus = 2) () =
  let m =
    Sim.Machine.create
      (Sim.Config.make ~ncpus ~memory_words:131072 ~cache_lines:0 ())
  in
  let a = Baseline.Allocator.create Baseline.Allocator.Newkma m in
  (m, Buf.create a)

let on_cpu m f =
  let r = ref None in
  Sim.Machine.run m [| (fun _ -> r := Some (f ())) |];
  Option.get !r

let test_allocb_structure () =
  let m, buf = fixture () in
  on_cpu m (fun () ->
      let mb = Buf.allocb buf ~bytes:100 in
      Alcotest.(check bool) "allocated" true (mb <> 0);
      let dblk = Sim.Machine.read (mb + Msg.b_datap) in
      let base = Sim.Machine.read (dblk + Msg.db_base) in
      let lim = Sim.Machine.read (dblk + Msg.db_lim) in
      Alcotest.(check int) "rptr at base" base
        (Sim.Machine.read (mb + Msg.b_rptr));
      Alcotest.(check int) "wptr at base" base
        (Sim.Machine.read (mb + Msg.b_wptr));
      Alcotest.(check int) "capacity rounded to words" 25 (lim - base);
      Alcotest.(check int) "refcount 1" 1
        (Sim.Machine.read (dblk + Msg.db_ref));
      Alcotest.(check int) "type M_DATA" Msg.m_data
        (Sim.Machine.read (dblk + Msg.db_type));
      Buf.freeb buf mb)

let test_alloc_free_balances () =
  let m, buf = fixture () in
  on_cpu m (fun () ->
      let msgs = List.init 50 (fun i -> Buf.allocb buf ~bytes:(64 + i)) in
      List.iter (fun mb -> Buf.freeb buf mb) msgs)
  (* Nothing to assert beyond no crash: the allocator's own suites
     check conservation; here we check freeb accepts every shape. *)

let test_data_roundtrip () =
  let m, buf = fixture () in
  let values =
    on_cpu m (fun () ->
        let mb = Buf.allocb buf ~bytes:64 in
        for i = 1 to 10 do
          Buf.put_byte_word buf mb (i * 3)
        done;
        let out = List.init 10 (fun _ -> Buf.get_byte_word buf mb) in
        Buf.freeb buf mb;
        out)
  in
  Alcotest.(check (list int)) "FIFO data" (List.init 10 (fun i -> (i + 1) * 3))
    values

let test_msgdsize () =
  let m, buf = fixture () in
  let size =
    on_cpu m (fun () ->
        let a = Buf.allocb buf ~bytes:64 in
        let b = Buf.allocb buf ~bytes:64 in
        for _ = 1 to 5 do
          Buf.put_byte_word buf a 0
        done;
        for _ = 1 to 3 do
          Buf.put_byte_word buf b 0
        done;
        Buf.linkb buf a b;
        let s = Buf.msgdsize buf a in
        Buf.freemsg buf a;
        s)
  in
  Alcotest.(check int) "8 words of data" 32 size

let test_dupb_refcounting () =
  let m, buf = fixture () in
  on_cpu m (fun () ->
      let a = Buf.allocb buf ~bytes:64 in
      Buf.put_byte_word buf a 42;
      let b = Buf.dupb buf a in
      Alcotest.(check bool) "dup ok" true (b <> 0);
      let dblk = Sim.Machine.read (a + Msg.b_datap) in
      Alcotest.(check int) "shared dblk" dblk
        (Sim.Machine.read (b + Msg.b_datap));
      Alcotest.(check int) "ref 2" 2 (Sim.Machine.read (dblk + Msg.db_ref));
      (* Free the original; the duplicate still reads the data. *)
      Buf.freeb buf a;
      Alcotest.(check int) "ref 1" 1 (Sim.Machine.read (dblk + Msg.db_ref));
      Alcotest.(check int) "data intact" 42 (Buf.get_byte_word buf b);
      Buf.freeb buf b)

let test_unlinkb () =
  let m, buf = fixture () in
  on_cpu m (fun () ->
      let a = Buf.allocb buf ~bytes:32 in
      let b = Buf.allocb buf ~bytes:32 in
      Buf.linkb buf a b;
      let rest = Buf.unlinkb buf a in
      Alcotest.(check int) "detached continuation" b rest;
      Alcotest.(check int) "chain cut" 0 (Sim.Machine.read (a + Msg.b_cont));
      Buf.freeb buf a;
      Buf.freeb buf b)

let test_copymsg_is_deep () =
  let m, buf = fixture () in
  on_cpu m (fun () ->
      let a = Buf.allocb buf ~bytes:64 in
      Buf.put_byte_word buf a 7;
      Buf.put_byte_word buf a 8;
      let b = Buf.allocb buf ~bytes:64 in
      Buf.put_byte_word buf b 9;
      Buf.linkb buf a b;
      let c = Buf.copymsg buf a in
      Alcotest.(check bool) "copied" true (c <> 0);
      Alcotest.(check int) "same size" (Buf.msgdsize buf a)
        (Buf.msgdsize buf c);
      (* Mutate the original; the copy must not change. *)
      let orig_buf = Sim.Machine.read (a + Msg.b_rptr) in
      Sim.Machine.write orig_buf 999;
      Alcotest.(check int) "deep copy" 7 (Buf.get_byte_word buf c);
      Buf.freemsg buf a;
      Buf.freemsg buf c)

let test_pullupmsg () =
  let m, buf = fixture () in
  on_cpu m (fun () ->
      let a = Buf.allocb buf ~bytes:32 in
      let b = Buf.allocb buf ~bytes:32 in
      let c = Buf.allocb buf ~bytes:32 in
      Buf.put_byte_word buf a 1;
      Buf.put_byte_word buf b 2;
      Buf.put_byte_word buf b 3;
      Buf.put_byte_word buf c 4;
      Buf.linkb buf a b;
      Buf.linkb buf a c;
      let flat = Buf.pullupmsg buf a in
      Alcotest.(check bool) "pulled" true (flat <> 0);
      Alcotest.(check int) "single block" 0
        (Sim.Machine.read (flat + Msg.b_cont));
      let out = List.init 4 (fun _ -> Buf.get_byte_word buf flat) in
      Alcotest.(check (list int)) "order preserved" [ 1; 2; 3; 4 ] out;
      Buf.freeb buf flat)

let test_allocb_failure_releases_partials () =
  (* A machine with almost no physical memory: allocb fails without
     leaking the partially-assembled message. *)
  let m =
    Sim.Machine.create
      (Sim.Config.make ~ncpus:1 ~memory_words:131072 ~cache_lines:0 ())
  in
  let params =
    Kma.Params.make ~vmblk_pages:16 ~phys_pages:1 ()
  in
  let kmem = Kma.Kmem.create m ~params () in
  let a =
    {
      Baseline.Allocator.name = "newkma";
      alloc =
        (fun ~bytes ->
          match Kma.Kmem.try_alloc kmem ~bytes with
          | Some x -> x
          | None -> 0);
      free = (fun ~addr ~bytes -> Kma.Kmem.free kmem ~addr ~bytes);
    }
  in
  let buf = Buf.create a in
  on_cpu m (fun () ->
      (* Allocate 2 KiB messages until the one physical page budget is
         gone: some succeed, then allocb fails cleanly (releasing its
         partial mblk/dblk) and everything frees back. *)
      let rec fill acc =
        let mb = Buf.allocb buf ~bytes:2048 in
        if mb = 0 then acc else fill (mb :: acc)
      in
      let msgs = fill [] in
      Alcotest.(check bool) "eventually fails" true (List.length msgs < 100);
      List.iter (fun mb -> Buf.freeb buf mb) msgs)

let prop_alloc_free_any_size =
  QCheck.Test.make ~name:"allocb/freeb across sizes" ~count:30
    QCheck.(small_list (int_range 1 2048))
    (fun sizes ->
      let m, buf = fixture () in
      on_cpu m (fun () ->
          List.for_all
            (fun bytes ->
              let mb = Buf.allocb buf ~bytes in
              if mb = 0 then false
              else begin
                Buf.freeb buf mb;
                true
              end)
            sizes))

let suite =
  [
    Alcotest.test_case "allocb builds the three structures" `Quick
      test_allocb_structure;
    Alcotest.test_case "freeb accepts every shape" `Quick
      test_alloc_free_balances;
    Alcotest.test_case "data roundtrip" `Quick test_data_roundtrip;
    Alcotest.test_case "msgdsize over chains" `Quick test_msgdsize;
    Alcotest.test_case "dupb reference counting" `Quick
      test_dupb_refcounting;
    Alcotest.test_case "unlinkb" `Quick test_unlinkb;
    Alcotest.test_case "copymsg is deep" `Quick test_copymsg_is_deep;
    Alcotest.test_case "pullupmsg flattens in order" `Quick test_pullupmsg;
    Alcotest.test_case "allocb failure releases partials" `Quick
      test_allocb_failure_releases_partials;
    QCheck_alcotest.to_alcotest prop_alloc_free_any_size;
  ]
