open Streams

let fixture ?(ncpus = 2) () =
  let m =
    Sim.Machine.create
      (Sim.Config.make ~ncpus ~memory_words:131072 ~cache_lines:0 ())
  in
  let a = Baseline.Allocator.create Baseline.Allocator.Newkma m in
  (m, Buf.create a)

let on_cpu m f =
  let r = ref None in
  Sim.Machine.run m [| (fun _ -> r := Some (f ())) |];
  Option.get !r

let test_fifo_order () =
  let m, buf = fixture () in
  let order =
    on_cpu m (fun () ->
        let q = Option.get (Squeue.create buf) in
        let tagged =
          List.init 5 (fun i ->
              let mb = Buf.allocb buf ~bytes:32 in
              Buf.put_byte_word buf mb i;
              mb)
        in
        List.iter (fun mb -> Squeue.putq q mb) tagged;
        Alcotest.(check int) "length" 5 (Squeue.length q);
        let out =
          List.init 5 (fun _ ->
              let mb = Squeue.getq q in
              let v = Buf.get_byte_word buf mb in
              Buf.freeb buf mb;
              v)
        in
        Alcotest.(check int) "empty" 0 (Squeue.length q);
        Alcotest.(check int) "getq on empty" 0 (Squeue.getq q);
        Squeue.destroy q;
        out)
  in
  Alcotest.(check (list int)) "FIFO" [ 0; 1; 2; 3; 4 ] order

let test_destroy_frees_queued () =
  let m, buf = fixture () in
  on_cpu m (fun () ->
      let q = Option.get (Squeue.create buf) in
      for _ = 1 to 10 do
        let mb = Buf.allocb buf ~bytes:128 in
        Squeue.putq q mb
      done;
      Squeue.destroy q)
  (* Conservation is covered by the allocator suites; the point is that
     destroy drains without crashing or double-freeing. *)

let test_cross_cpu_pipeline () =
  let m, buf = fixture ~ncpus:2 () in
  let n = 200 in
  let q = ref None in
  let received = ref 0 in
  Sim.Machine.run m
    [|
      (fun _ ->
        (* Producer: build the queue, signal, stream messages, then a
           zero-length terminator. *)
        q := Squeue.create buf;
        Sim.Machine.write 16 1;
        let q = Option.get !q in
        for i = 1 to n do
          let mb = Buf.allocb buf ~bytes:64 in
          Buf.put_byte_word buf mb i;
          Squeue.putq q mb
        done);
      (fun _ ->
        while Sim.Machine.read 16 = 0 do
          Sim.Machine.spin_pause ()
        done;
        let q = Option.get !q in
        while !received < n do
          let mb = Squeue.getq q in
          if mb = 0 then Sim.Machine.spin_pause ()
          else begin
            incr received;
            Buf.freeb buf mb
          end
        done);
    |];
  Alcotest.(check int) "all messages crossed CPUs" n !received

let suite =
  [
    Alcotest.test_case "putq/getq FIFO" `Quick test_fifo_order;
    Alcotest.test_case "destroy frees queued messages" `Quick
      test_destroy_frees_queued;
    Alcotest.test_case "cross-CPU pipeline" `Quick test_cross_cpu_pipeline;
  ]
