test/streams/test_streams.mli:
