test/streams/test_squeue.ml: Alcotest Baseline Buf List Option Sim Squeue Streams
