test/streams/test_streams.ml: Alcotest Test_buf Test_squeue
