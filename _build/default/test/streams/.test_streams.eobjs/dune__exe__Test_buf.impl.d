test/streams/test_buf.ml: Alcotest Baseline Buf Kma List Msg Option QCheck QCheck_alcotest Sim Streams
