let () =
  Alcotest.run "streams"
    [ ("buf", Test_buf.suite); ("squeue", Test_squeue.suite) ]
