(* The experiment harness at miniature scale: each paper artifact's
   *shape* criterion, checked in CI.  EXPERIMENTS.md records the
   full-scale numbers. *)

let points =
  (* One small sweep shared by the Figure 7/8 cases. *)
  lazy (Experiments.Fig7.run ~cpus:[ 1; 4 ] ~iters:300 ())

let at which ncpus =
  let points = Lazy.force points in
  match
    List.find_opt
      (fun p ->
        p.Experiments.Fig7.which = which && p.Experiments.Fig7.ncpus = ncpus)
      points
  with
  | Some p -> p.Experiments.Fig7.pairs_per_sec
  | None -> Alcotest.fail "missing point"

let test_fig7_new_scales () =
  let open Baseline.Allocator in
  Alcotest.(check bool) "cookie near-linear 1->4" true
    (at Cookie 4 > 3.5 *. at Cookie 1);
  Alcotest.(check bool) "newkma near-linear 1->4" true
    (at Newkma 4 > 3.5 *. at Newkma 1)

let test_fig7_baselines_decline () =
  let open Baseline.Allocator in
  Alcotest.(check bool) "mk declines" true (at Mk 4 < at Mk 1);
  Alcotest.(check bool) "oldkma declines" true (at Oldkma 4 < at Oldkma 1)

let test_fig7_cookie_doubles_newkma () =
  let open Baseline.Allocator in
  let ratio = at Cookie 1 /. at Newkma 1 in
  Alcotest.(check bool)
    (Printf.sprintf "cookie %.2fx newkma (paper ~2x)" ratio)
    true
    (ratio > 1.4 && ratio < 2.6)

let test_fig7_headline_ratio () =
  let open Baseline.Allocator in
  let ratio = at Cookie 1 /. at Oldkma 1 in
  Alcotest.(check bool)
    (Printf.sprintf "cookie %.1fx oldkma at 1 CPU (paper 15x)" ratio)
    true
    (ratio > 10. && ratio < 25.)

let test_fig9_shape () =
  let results =
    Experiments.Fig9.run ~memory_words:(128 * 1024) ()
  in
  Alcotest.(check bool) "completes" true (Experiments.Fig9.completed results);
  Alcotest.(check int) "all nine sizes" 9 (List.length results)

let test_fig9_mk_wedges () =
  let results =
    Experiments.Fig9.run ~which:Baseline.Allocator.Mk
      ~memory_words:(128 * 1024) ()
  in
  Alcotest.(check bool) "mk cannot complete" false
    (Experiments.Fig9.completed results)

let test_opcounts_match_paper () =
  let rows = Experiments.Opcounts.run () in
  let find name =
    List.find (fun r -> r.Experiments.Opcounts.interface = name) rows
  in
  let c = find "cookie macros" in
  Alcotest.(check int) "cookie alloc" 13 c.Experiments.Opcounts.alloc_insns;
  Alcotest.(check int) "cookie free" 13 c.Experiments.Opcounts.free_insns;
  let s = find "standard kmem_alloc" in
  Alcotest.(check int) "standard alloc" 35 s.Experiments.Opcounts.alloc_insns;
  Alcotest.(check int) "standard free" 32 s.Experiments.Opcounts.free_insns

let test_analysis_shape () =
  let profiles = Experiments.Analysis.run ~samples:40 () in
  Alcotest.(check int) "two ops" 2 (List.length profiles);
  List.iter
    (fun p ->
      let open Experiments.Analysis in
      Alcotest.(check bool)
        (p.op ^ ": stalls inflate the fixed sequence")
        true
        (p.mean_cycles > 1.5 *. float_of_int p.fixed_cycles);
      Alcotest.(check bool)
        (p.op ^ ": a minority of accesses dominates stalls")
        true
        (p.worst_share_accesses < 0.4))
    profiles

let test_missrates_within_bounds () =
  let r = Experiments.Missrates.run ~ncpus:2 ~transactions_per_cpu:800 () in
  Alcotest.(check bool) "within analytic bounds" true
    (Experiments.Missrates.within_bounds r);
  Alcotest.(check bool) "some rows measured" true (List.length r.rows >= 2)

let test_speedup_helper () =
  let open Baseline.Allocator in
  let sp = Experiments.Fig7.speedup (Lazy.force points) ~which:Cookie in
  Alcotest.(check int) "two entries" 2 (List.length sp);
  Alcotest.(check bool) "1-CPU speedup is 1" true
    (match List.assoc_opt 1 sp with
    | Some s -> abs_float (s -. 1.) < 1e-9
    | None -> false)

let suite =
  [
    Alcotest.test_case "fig7: new allocator scales" `Slow
      test_fig7_new_scales;
    Alcotest.test_case "fig7: baselines decline" `Slow
      test_fig7_baselines_decline;
    Alcotest.test_case "fig7: cookie ~2x newkma" `Slow
      test_fig7_cookie_doubles_newkma;
    Alcotest.test_case "fig7: headline 15x ratio band" `Slow
      test_fig7_headline_ratio;
    Alcotest.test_case "fig9: new allocator completes" `Slow test_fig9_shape;
    Alcotest.test_case "fig9: mk wedges" `Slow test_fig9_mk_wedges;
    Alcotest.test_case "E2: instruction counts" `Quick
      test_opcounts_match_paper;
    Alcotest.test_case "E1: analysis profile shape" `Slow
      test_analysis_shape;
    Alcotest.test_case "E6: miss rates within bounds" `Slow
      test_missrates_within_bounds;
    Alcotest.test_case "speedup helper" `Slow test_speedup_helper;
  ]
