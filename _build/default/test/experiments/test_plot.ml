(* Gnuplot emission: files exist, headers and columns line up. *)

let contains haystack needle =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i =
    i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1))
  in
  go 0

let test_fig7_files () =
  let points =
    [
      { Experiments.Fig7.which = Baseline.Allocator.Cookie; ncpus = 1;
        pairs_per_sec = 100. };
      { Experiments.Fig7.which = Baseline.Allocator.Cookie; ncpus = 2;
        pairs_per_sec = 200. };
      { Experiments.Fig7.which = Baseline.Allocator.Mk; ncpus = 1;
        pairs_per_sec = 50. };
      { Experiments.Fig7.which = Baseline.Allocator.Mk; ncpus = 2;
        pairs_per_sec = 25. };
    ]
  in
  let prefix = Filename.temp_file "fig7" "" in
  Experiments.Plot.write_fig7 points ~prefix;
  let dat = In_channel.with_open_text (prefix ^ ".dat") In_channel.input_all in
  (match String.split_on_char '\n' dat with
  | header :: row1 :: row2 :: _ ->
      Alcotest.(check string) "header" "# cpus\tcookie\tmk" header;
      Alcotest.(check bool) "row 1" true (contains row1 "1\t100");
      Alcotest.(check bool) "row 2" true (contains row2 "2\t200")
  | _ -> Alcotest.fail "missing rows");
  let gp = In_channel.with_open_text (prefix ^ ".gp") In_channel.input_all in
  Alcotest.(check bool) "script references data" true
    (contains gp (prefix ^ ".dat"));
  Sys.remove (prefix ^ ".dat");
  Sys.remove (prefix ^ ".gp");
  Sys.remove prefix

let test_fig9_files () =
  let results =
    [
      { Workload.Worstcase.bytes = 16; blocks = 10; alloc_cycles = 1;
        free_cycles = 1; allocs_per_sec = 3.; frees_per_sec = 2.;
        pairs_per_sec = 1. };
    ]
  in
  let prefix = Filename.temp_file "fig9" "" in
  Experiments.Plot.write_fig9 results ~prefix;
  let dat = In_channel.with_open_text (prefix ^ ".dat") In_channel.input_all in
  Alcotest.(check bool) "row present" true (contains dat "16\t3\t2\t1");
  Sys.remove (prefix ^ ".dat");
  Sys.remove (prefix ^ ".gp");
  Sys.remove prefix

let suite =
  [
    Alcotest.test_case "fig7/fig8 gnuplot files" `Quick test_fig7_files;
    Alcotest.test_case "fig9 gnuplot files" `Quick test_fig9_files;
  ]
