(* Workload generators: determinism, completion, and the invariants the
   experiment harness relies on. *)

let test_prng_determinism () =
  let seq seed =
    let r = Workload.Prng.create ~seed in
    List.init 20 (fun _ -> Workload.Prng.int r ~bound:1000)
  in
  Alcotest.(check (list int)) "same seed same stream" (seq 7) (seq 7);
  Alcotest.(check bool) "different seeds differ" true (seq 7 <> seq 8)

let test_prng_bounds () =
  let r = Workload.Prng.create ~seed:1 in
  for _ = 1 to 1000 do
    let v = Workload.Prng.int r ~bound:17 in
    if v < 0 || v >= 17 then Alcotest.failf "out of range: %d" v
  done

let test_prng_split_independent () =
  let a = Workload.Prng.create ~seed:5 in
  let b = Workload.Prng.split a in
  let xs = List.init 10 (fun _ -> Workload.Prng.int a ~bound:1000) in
  let ys = List.init 10 (fun _ -> Workload.Prng.int b ~bound:1000) in
  Alcotest.(check bool) "streams differ" true (xs <> ys)

let test_prng_weighted () =
  let r = Workload.Prng.create ~seed:2 in
  let counts = Hashtbl.create 3 in
  for _ = 1 to 3000 do
    let v = Workload.Prng.weighted r [| (90, `A); (10, `B); (0, `C) |] in
    Hashtbl.replace counts v (1 + Option.value ~default:0 (Hashtbl.find_opt counts v))
  done;
  let get k = Option.value ~default:0 (Hashtbl.find_opt counts k) in
  Alcotest.(check int) "zero weight never picked" 0 (get `C);
  Alcotest.(check bool) "ratio respected" true (get `A > 5 * get `B)

let test_bestcase_deterministic () =
  let run () =
    Workload.Bestcase.run ~which:Baseline.Allocator.Cookie ~ncpus:2
      ~iters:200 ~bytes:256 ()
  in
  let a = run () and b = run () in
  Alcotest.(check int) "cycles equal" a.Workload.Bestcase.cycles
    b.Workload.Bestcase.cycles;
  Alcotest.(check int) "pairs" 400 a.Workload.Bestcase.pairs

let test_bestcase_scales () =
  let rate n =
    (Workload.Bestcase.run ~which:Baseline.Allocator.Cookie ~ncpus:n
       ~iters:200 ~bytes:256 ())
      .Workload.Bestcase.pairs_per_sec
  in
  let r1 = rate 1 and r4 = rate 4 in
  Alcotest.(check bool)
    (Printf.sprintf "4 CPUs ~4x of 1 (%.2e vs %.2e)" r4 r1)
    true
    (r4 > 3.5 *. r1 && r4 < 4.5 *. r1)

let test_bestcase_timed_methodology () =
  (* The duration-based variant stops near the deadline and agrees with
     the iteration-based variant on throughput. *)
  let timed =
    Workload.Bestcase.run_timed ~which:Baseline.Allocator.Cookie ~ncpus:2
      ~duration_cycles:50_000 ~bytes:256 ()
  in
  Alcotest.(check bool) "did work" true (timed.Workload.Bestcase.pairs > 100);
  Alcotest.(check bool) "stops near the deadline" true
    (timed.Workload.Bestcase.cycles < 55_000);
  let iter =
    Workload.Bestcase.run ~which:Baseline.Allocator.Cookie ~ncpus:2
      ~iters:500 ~bytes:256 ()
  in
  let ratio =
    timed.Workload.Bestcase.pairs_per_sec
    /. iter.Workload.Bestcase.pairs_per_sec
  in
  Alcotest.(check bool)
    (Printf.sprintf "rates agree (ratio %.2f)" ratio)
    true
    (ratio > 0.9 && ratio < 1.1)

let test_worstcase_all_layers () =
  let results =
    Workload.Worstcase.run ~which:Baseline.Allocator.Newkma
      ~config:(Workload.Rig.paper_config ~ncpus:1 ~memory_words:(128 * 1024) ())
      ~sizes:[| 16; 256; 4096 |] ()
  in
  Alcotest.(check int) "three sizes" 3 (List.length results);
  List.iter
    (fun r ->
      let open Workload.Worstcase in
      if r.blocks < 20 then
        Alcotest.failf "size %d wedged with %d blocks" r.bytes r.blocks;
      if r.allocs_per_sec <= 0. || r.frees_per_sec <= 0. then
        Alcotest.failf "size %d has zero rate" r.bytes)
    results

let test_worstcase_throughput_falls_with_size () =
  let results =
    Workload.Worstcase.run ~which:Baseline.Allocator.Newkma
      ~config:(Workload.Rig.paper_config ~ncpus:1 ~memory_words:(128 * 1024) ())
      ~sizes:[| 16; 4096 |] ()
  in
  match results with
  | [ small; big ] ->
      Alcotest.(check bool) "small blocks faster" true
        Workload.Worstcase.(small.pairs_per_sec > big.pairs_per_sec)
  | _ -> Alcotest.fail "expected two results"

let test_cyclic_no_night_failures () =
  let r =
    Workload.Cyclic.run_kmem
      ~config:(Workload.Rig.paper_config ~ncpus:1 ~memory_words:(512 * 1024) ())
      ~days:2 ~day_ops:800 ~night_blocks:20 ()
  in
  Alcotest.(check int) "no night failures" 0 r.Workload.Cyclic.night_failures;
  Alcotest.(check bool) "day work happened" true
    (r.Workload.Cyclic.day_allocs > 300)

let test_cyclic_dispatch () =
  Alcotest.(check bool) "newkma instrumented" true
    (Workload.Cyclic.run ~which:Baseline.Allocator.Newkma ~days:1
       ~day_ops:100 ~night_blocks:4 ()
    <> None);
  Alcotest.(check bool) "baselines uninstrumented" true
    (Workload.Cyclic.run ~which:Baseline.Allocator.Mk ~days:1 ~day_ops:100
       ~night_blocks:4 ()
    = None)

let test_crosscpu_completes_all () =
  List.iter
    (fun which ->
      let r = Workload.Crosscpu.run ~which ~pairs:1 ~blocks_per_pair:300 () in
      Alcotest.(check int)
        (Baseline.Allocator.name_of which ^ " transfers")
        300 r.Workload.Crosscpu.transfers)
    Baseline.Allocator.all

let test_crosscpu_rejects_bad_pairs () =
  match
    Workload.Crosscpu.run ~which:Baseline.Allocator.Cookie ~pairs:0
      ~blocks_per_pair:1 ()
  with
  | _ -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument _ -> ()

let test_mixed_balances () =
  let r =
    Workload.Mixed.run ~which:Baseline.Allocator.Newkma ~ncpus:2
      ~ops_per_cpu:800 ()
  in
  Alcotest.(check int) "no failures" 0 r.Workload.Mixed.failures;
  Alcotest.(check bool) "ops counted" true (r.Workload.Mixed.ops > 1600)

let suite =
  [
    Alcotest.test_case "prng determinism" `Quick test_prng_determinism;
    Alcotest.test_case "prng bounds" `Quick test_prng_bounds;
    Alcotest.test_case "prng split independence" `Quick
      test_prng_split_independent;
    Alcotest.test_case "prng weighted choice" `Quick test_prng_weighted;
    Alcotest.test_case "bestcase deterministic" `Quick
      test_bestcase_deterministic;
    Alcotest.test_case "bestcase scales linearly (cookie)" `Quick
      test_bestcase_scales;
    Alcotest.test_case "bestcase timed methodology" `Quick
      test_bestcase_timed_methodology;
    Alcotest.test_case "worstcase completes every size" `Quick
      test_worstcase_all_layers;
    Alcotest.test_case "worstcase slows with block size" `Quick
      test_worstcase_throughput_falls_with_size;
    Alcotest.test_case "cyclic nights never fail" `Quick
      test_cyclic_no_night_failures;
    Alcotest.test_case "cyclic dispatch by allocator" `Quick
      test_cyclic_dispatch;
    Alcotest.test_case "crosscpu completes on all allocators" `Quick
      test_crosscpu_completes_all;
    Alcotest.test_case "crosscpu validates pairs" `Quick
      test_crosscpu_rejects_bad_pairs;
    Alcotest.test_case "mixed workload balances" `Quick test_mixed_balances;
  ]
