test/experiments/test_experiments.mli:
