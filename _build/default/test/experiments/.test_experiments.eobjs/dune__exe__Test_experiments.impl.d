test/experiments/test_experiments.ml: Alcotest Test_figures Test_plot Test_trace Test_workloads
