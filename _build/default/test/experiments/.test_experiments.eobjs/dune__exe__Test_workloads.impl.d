test/experiments/test_workloads.ml: Alcotest Baseline Hashtbl List Option Printf Workload
