test/experiments/test_trace.ml: Alcotest Baseline List Option Sim Workload
