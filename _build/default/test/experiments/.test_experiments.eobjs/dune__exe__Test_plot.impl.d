test/experiments/test_plot.ml: Alcotest Baseline Experiments Filename In_channel String Sys Workload
