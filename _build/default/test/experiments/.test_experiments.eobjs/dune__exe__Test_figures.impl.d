test/experiments/test_figures.ml: Alcotest Baseline Experiments Lazy List Printf
