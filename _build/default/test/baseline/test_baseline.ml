let () =
  Alcotest.run "baseline"
    [
      ("mk", Test_mk.suite);
      ("oldkma", Test_oldkma.suite);
      ("lazybuddy", Test_lazybuddy.suite);
      ("allocator", Test_allocator.suite);
    ]
