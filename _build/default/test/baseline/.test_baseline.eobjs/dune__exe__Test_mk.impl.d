test/baseline/test_mk.ml: Alcotest Array Baseline List Option QCheck QCheck_alcotest Sim
