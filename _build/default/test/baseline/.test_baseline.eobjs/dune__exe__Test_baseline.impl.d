test/baseline/test_baseline.ml: Alcotest Test_allocator Test_lazybuddy Test_mk Test_oldkma
