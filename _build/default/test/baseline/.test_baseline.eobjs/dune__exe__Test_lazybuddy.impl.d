test/baseline/test_lazybuddy.ml: Alcotest Array Baseline List Option Printf QCheck QCheck_alcotest Sim
