test/baseline/test_oldkma.ml: Alcotest Array Baseline List Option Printf QCheck QCheck_alcotest Sim
