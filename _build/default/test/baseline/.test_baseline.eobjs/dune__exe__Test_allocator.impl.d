test/baseline/test_allocator.ml: Alcotest Baseline List Option Sim
