test/baseline/test_baseline.mli:
