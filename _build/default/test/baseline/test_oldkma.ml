let machine ?(ncpus = 4) ?(memory_words = 65536) ?(uncached_words = 512) () =
  Sim.Machine.create
    (Sim.Config.make ~ncpus ~memory_words ~cache_lines:0 ~uncached_words ())

let on_cpu m f =
  let r = ref None in
  Sim.Machine.run m [| (fun _ -> r := Some (f ())) |];
  Option.get !r

let test_roundtrip_and_coalesce () =
  let m = machine () in
  let o = Baseline.Oldkma.create m in
  let initial = Baseline.Oldkma.free_words_oracle o in
  on_cpu m (fun () ->
      let a = Baseline.Oldkma.alloc o ~bytes:100 in
      let b = Baseline.Oldkma.alloc o ~bytes:200 in
      let c = Baseline.Oldkma.alloc o ~bytes:300 in
      Alcotest.(check bool) "all allocated" true (a <> 0 && b <> 0 && c <> 0);
      Baseline.Oldkma.free o ~addr:a;
      Baseline.Oldkma.free o ~addr:c;
      Baseline.Oldkma.free o ~addr:b);
  Alcotest.(check int) "fully coalesced back" initial
    (Baseline.Oldkma.free_words_oracle o)

let test_first_fit_split () =
  let m = machine () in
  let o = Baseline.Oldkma.create m in
  on_cpu m (fun () ->
      let a = Baseline.Oldkma.alloc o ~bytes:64 in
      let b = Baseline.Oldkma.alloc o ~bytes:64 in
      (* Splitting from the front of one big block: consecutive
         addresses. *)
      Alcotest.(check int) "adjacent blocks" (a + 16 + 2) b)

let test_free_middle_then_refit () =
  let m = machine () in
  let o = Baseline.Oldkma.create m in
  on_cpu m (fun () ->
      let a = Baseline.Oldkma.alloc o ~bytes:64 in
      let b = Baseline.Oldkma.alloc o ~bytes:64 in
      let c = Baseline.Oldkma.alloc o ~bytes:64 in
      ignore c;
      Baseline.Oldkma.free o ~addr:b;
      (* A same-size request first-fits into the hole. *)
      let b' = Baseline.Oldkma.alloc o ~bytes:64 in
      Alcotest.(check int) "hole reused" b b';
      ignore a)

let test_worst_case_sweep_completes () =
  (* Unlike MK, oldkma coalesces: filling with 16-byte blocks, freeing,
     then asking for 4096-byte blocks works. *)
  let m = machine ~memory_words:32768 () in
  let o = Baseline.Oldkma.create m in
  let big = ref 0 in
  on_cpu m (fun () ->
      let rec fill acc =
        let a = Baseline.Oldkma.alloc o ~bytes:16 in
        if a = 0 then acc else fill (a :: acc)
      in
      let small = fill [] in
      Alcotest.(check bool) "arena filled" true (List.length small > 1000);
      List.iter (fun a -> Baseline.Oldkma.free o ~addr:a) small;
      big := Baseline.Oldkma.alloc o ~bytes:4096);
  Alcotest.(check bool) "large block after coalescing" true (!big <> 0)

let test_is_slow_and_serial () =
  (* Calibration guard: a single-CPU alloc/free pair costs an order of
     magnitude more cycles than the new allocator's cookie path (the
     paper reports 15x; see EXPERIMENTS.md for the measured ratio). *)
  let m = machine () in
  let o = Baseline.Oldkma.create m in
  on_cpu m (fun () ->
      let a = Baseline.Oldkma.alloc o ~bytes:256 in
      Baseline.Oldkma.free o ~addr:a);
  let t0 = Sim.Machine.elapsed m in
  on_cpu m (fun () ->
      for _ = 1 to 100 do
        let a = Baseline.Oldkma.alloc o ~bytes:256 in
        Baseline.Oldkma.free o ~addr:a
      done);
  let per_pair = (Sim.Machine.elapsed m - t0) / 100 in
  Alcotest.(check bool)
    (Printf.sprintf "pair costs %d cycles (>= 500)" per_pair)
    true (per_pair >= 500)

let test_multicpu_exclusion () =
  let m = machine ~ncpus:4 () in
  let o = Baseline.Oldkma.create m in
  let per_cpu = 50 in
  let results = Array.make 4 [] in
  Sim.Machine.run_symmetric m ~ncpus:4 (fun cpu ->
      let mine = ref [] in
      for _ = 1 to per_cpu do
        let a = Baseline.Oldkma.alloc o ~bytes:64 in
        assert (a <> 0);
        mine := a :: !mine
      done;
      results.(cpu) <- !mine);
  let all = Array.to_list results |> List.concat in
  Alcotest.(check int) "no block issued twice" (4 * per_cpu)
    (List.length (List.sort_uniq compare all))

let prop_conservation =
  QCheck.Test.make ~name:"oldkma conserves free words" ~count:40
    QCheck.(small_list (int_range 1 2000))
    (fun sizes ->
      let m = machine () in
      let o = Baseline.Oldkma.create m in
      let initial = Baseline.Oldkma.free_words_oracle o in
      on_cpu m (fun () ->
          let live =
            List.filter_map
              (fun bytes ->
                let a = Baseline.Oldkma.alloc o ~bytes in
                if a = 0 then None else Some a)
              sizes
          in
          List.iter (fun a -> Baseline.Oldkma.free o ~addr:a) live);
      Baseline.Oldkma.free_words_oracle o = initial)

let suite =
  [
    Alcotest.test_case "roundtrip and full coalescing" `Quick
      test_roundtrip_and_coalesce;
    Alcotest.test_case "first-fit splits from the front" `Quick
      test_first_fit_split;
    Alcotest.test_case "freed hole is refit" `Quick
      test_free_middle_then_refit;
    Alcotest.test_case "worst-case sweep completes (coalesces)" `Quick
      test_worst_case_sweep_completes;
    Alcotest.test_case "calibrated slow path" `Quick test_is_slow_and_serial;
    Alcotest.test_case "multi-CPU mutual exclusion" `Quick
      test_multicpu_exclusion;
    QCheck_alcotest.to_alcotest prop_conservation;
  ]
