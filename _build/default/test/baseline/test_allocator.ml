(* The uniform handle: each of the four allocators boots in a fresh
   machine and survives a mixed workload through the common
   interface. *)

let machine () =
  Sim.Machine.create
    (Sim.Config.make ~ncpus:2 ~memory_words:131072 ~uncached_words:512 ())

let test_names () =
  Alcotest.(check (list string))
    "legend order"
    [ "cookie"; "newkma"; "mk"; "oldkma" ]
    (List.map Baseline.Allocator.name_of Baseline.Allocator.all);
  List.iter
    (fun w ->
      Alcotest.(check bool) "roundtrip" true
        (Baseline.Allocator.of_name (Baseline.Allocator.name_of w) = Some w))
    Baseline.Allocator.all;
  Alcotest.(check bool) "unknown name" true
    (Baseline.Allocator.of_name "bogus" = None);
  Alcotest.(check (option string)) "lazybuddy named" (Some "lazybuddy")
    (Option.map Baseline.Allocator.name_of
       (Baseline.Allocator.of_name "lazybuddy"))

let exercise which =
  let m = machine () in
  let a = Baseline.Allocator.create which m in
  let ok = ref true in
  Sim.Machine.run m
    [|
      (fun _ ->
        let live = ref [] in
        for i = 1 to 200 do
          let bytes = 16 lsl (i mod 5) in
          if i mod 3 = 0 then (
            match !live with
            | (addr, b) :: rest ->
                live := rest;
                a.Baseline.Allocator.free ~addr ~bytes:b
            | [] -> ())
          else begin
            let addr = a.Baseline.Allocator.alloc ~bytes in
            if addr = 0 then ok := false else live := (addr, bytes) :: !live
          end
        done;
        List.iter
          (fun (addr, b) -> a.Baseline.Allocator.free ~addr ~bytes:b)
          !live);
    |];
  Alcotest.(check bool)
    (Baseline.Allocator.name_of which ^ " allocates throughout")
    true !ok

let suite =
  Alcotest.test_case "names and legend order" `Quick test_names
  :: List.map
       (fun w ->
         Alcotest.test_case
           ("mixed workload via handle: " ^ Baseline.Allocator.name_of w)
           `Quick
           (fun () -> exercise w))
       (Baseline.Allocator.all @ [ Baseline.Allocator.Lazybuddy ])
