let machine ?(ncpus = 4) ?(memory_words = 131072) () =
  Sim.Machine.create (Sim.Config.make ~ncpus ~memory_words ~cache_lines:0 ())

let on_cpu m f =
  let r = ref None in
  Sim.Machine.run m [| (fun _ -> r := Some (f ())) |];
  Option.get !r

let test_roundtrip () =
  let m = machine () in
  let mk = Baseline.Mk.create m in
  on_cpu m (fun () ->
      let a = Baseline.Mk.alloc mk ~bytes:100 in
      Alcotest.(check bool) "allocated" true (a <> 0);
      Baseline.Mk.free mk ~addr:a;
      let b = Baseline.Mk.alloc mk ~bytes:100 in
      Alcotest.(check int) "LIFO reuse" a b)

let test_free_recovers_size () =
  (* MK's free takes no size: blocks of different classes freed in any
     order land back on the right freelists. *)
  let m = machine () in
  let mk = Baseline.Mk.create m in
  on_cpu m (fun () ->
      let a16 = Baseline.Mk.alloc mk ~bytes:16 in
      let a256 = Baseline.Mk.alloc mk ~bytes:256 in
      Baseline.Mk.free mk ~addr:a16;
      Baseline.Mk.free mk ~addr:a256;
      let b256 = Baseline.Mk.alloc mk ~bytes:256 in
      let b16 = Baseline.Mk.alloc mk ~bytes:16 in
      Alcotest.(check int) "256 reused" a256 b256;
      Alcotest.(check int) "16 reused" a16 b16)

let test_page_carving () =
  let m = machine () in
  let mk = Baseline.Mk.create m in
  on_cpu m (fun () ->
      (* 256 blocks of 16B fit in one page; the 257th needs another. *)
      let blocks = List.init 257 (fun _ -> Baseline.Mk.alloc mk ~bytes:16) in
      Alcotest.(check int) "all allocated" 257
        (List.length (List.filter (fun a -> a <> 0) blocks));
      let pages =
        List.sort_uniq compare (List.map (fun a -> a lsr 10) blocks)
      in
      Alcotest.(check int) "two pages carved" 2 (List.length pages))

let test_oversize_rejected () =
  let m = machine () in
  let mk = Baseline.Mk.create m in
  let a = on_cpu m (fun () -> Baseline.Mk.alloc mk ~bytes:8192) in
  Alcotest.(check int) "larger than max class" 0 a

let test_no_coalescing_wedges_sweep () =
  (* The paper: "an allocator that does no coalescing would fail to
     complete this benchmark, having permanently fragmented all
     available memory into the smallest possible blocks." *)
  let m = machine ~memory_words:65536 () in
  let mk = Baseline.Mk.create m in
  let second_size = ref (-1) in
  on_cpu m (fun () ->
      let rec fill acc =
        let a = Baseline.Mk.alloc mk ~bytes:16 in
        if a = 0 then acc else fill (a :: acc)
      in
      let all16 = fill [] in
      List.iter (fun a -> Baseline.Mk.free mk ~addr:a) all16;
      (* Everything is free again, but fragmented into 16-byte lists:
         a 4096-byte request must fail. *)
      second_size := Baseline.Mk.alloc mk ~bytes:4096);
  Alcotest.(check int) "wedged after first size" 0 !second_size

let test_multicpu_exclusion () =
  let m = machine ~ncpus:4 () in
  let mk = Baseline.Mk.create m in
  let per_cpu = 100 in
  let results = Array.make 4 [] in
  Sim.Machine.run_symmetric m ~ncpus:4 (fun cpu ->
      let mine = ref [] in
      for _ = 1 to per_cpu do
        let a = Baseline.Mk.alloc mk ~bytes:64 in
        assert (a <> 0);
        mine := a :: !mine
      done;
      results.(cpu) <- !mine);
  let all = Array.to_list results |> List.concat in
  Alcotest.(check int) "no block issued twice" (4 * per_cpu)
    (List.length (List.sort_uniq compare all))

let prop_disjoint_blocks =
  QCheck.Test.make ~name:"mk live blocks disjoint" ~count:40
    QCheck.(small_list (pair bool (int_range 1 4096)))
    (fun ops ->
      let m = machine () in
      let mk = Baseline.Mk.create m in
      let ok = ref true in
      on_cpu m (fun () ->
          let live = ref [] in
          List.iter
            (fun (is_alloc, bytes) ->
              if is_alloc then begin
                let a = Baseline.Mk.alloc mk ~bytes in
                if a <> 0 then begin
                  let words = ((bytes + 15) / 16 * 16) / 4 in
                  let words =
                    (* round up to the actual power-of-two class *)
                    let rec p2 w = if w >= words then w else p2 (2 * w) in
                    p2 4
                  in
                  List.iter
                    (fun (lo, hi) ->
                      if not (a + words <= lo || hi <= a) then ok := false)
                    !live;
                  live := (a, a + words) :: !live
                end
              end
              else
                match !live with
                | (lo, _) :: rest ->
                    live := rest;
                    Baseline.Mk.free mk ~addr:lo
                | [] -> ())
            ops);
      !ok)

let suite =
  [
    Alcotest.test_case "alloc/free roundtrip (LIFO)" `Quick test_roundtrip;
    Alcotest.test_case "free recovers size from kmemsizes" `Quick
      test_free_recovers_size;
    Alcotest.test_case "page carving" `Quick test_page_carving;
    Alcotest.test_case "oversize rejected" `Quick test_oversize_rejected;
    Alcotest.test_case "no coalescing: sweep wedges" `Quick
      test_no_coalescing_wedges_sweep;
    Alcotest.test_case "multi-CPU mutual exclusion" `Quick
      test_multicpu_exclusion;
    QCheck_alcotest.to_alcotest prop_disjoint_blocks;
  ]
