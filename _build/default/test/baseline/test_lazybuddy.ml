let machine ?(ncpus = 4) ?(memory_words = 131072) () =
  Sim.Machine.create (Sim.Config.make ~ncpus ~memory_words ~cache_lines:0 ())

let on_cpu m f =
  let r = ref None in
  Sim.Machine.run m [| (fun _ -> r := Some (f ())) |];
  Option.get !r

let test_roundtrip () =
  let m = machine () in
  let b = Baseline.Lazybuddy.create m in
  on_cpu m (fun () ->
      (* With a healthy working set the class has slack, so a free is
         lazy and the block is reused immediately (LIFO head).  On a
         cold class slack is non-positive and the free coalesces — also
         correct, but not the hot path this test pins down. *)
      let ws = Array.init 8 (fun _ -> Baseline.Lazybuddy.alloc b ~bytes:100) in
      let a = ws.(7) in
      Alcotest.(check bool) "allocated" true (a <> 0);
      Baseline.Lazybuddy.free b ~addr:a ~bytes:100;
      let a2 = Baseline.Lazybuddy.alloc b ~bytes:100 in
      Alcotest.(check int) "hot reuse under slack" a a2;
      Array.iter (fun x -> Baseline.Lazybuddy.free b ~addr:x ~bytes:100) ws)

let test_split_produces_buddies () =
  let m = machine () in
  let b = Baseline.Lazybuddy.create m in
  on_cpu m (fun () ->
      (* First 16-byte allocation splits a 4 KiB chunk all the way
         down: one globally-free buddy appears at every level. *)
      let a = Baseline.Lazybuddy.alloc b ~bytes:16 in
      Alcotest.(check bool) "allocated" true (a <> 0);
      for si = 0 to 7 do
        let _, _, glob = Baseline.Lazybuddy.counters_oracle b ~si in
        Alcotest.(check int)
          (Printf.sprintf "one global buddy at class %d" si)
          1 glob
      done;
      Baseline.Lazybuddy.free b ~addr:a ~bytes:16)

let test_lazy_frees_defer_coalescing () =
  let m = machine () in
  let b = Baseline.Lazybuddy.create m in
  on_cpu m (fun () ->
      (* A working set of 64-byte blocks, then free a few: with healthy
         slack those frees must be lazy (no global-count growth at the
         freed class beyond the split residue). *)
      let blocks =
        Array.init 32 (fun _ -> Baseline.Lazybuddy.alloc b ~bytes:64)
      in
      let _, _, glob_before = Baseline.Lazybuddy.counters_oracle b ~si:2 in
      for i = 0 to 7 do
        Baseline.Lazybuddy.free b ~addr:blocks.(i) ~bytes:64
      done;
      let _, lzy, glob_after = Baseline.Lazybuddy.counters_oracle b ~si:2 in
      Alcotest.(check bool) "some lazy blocks" true (lzy > 0);
      Alcotest.(check int) "no new global blocks" glob_before glob_after;
      for i = 8 to 31 do
        Baseline.Lazybuddy.free b ~addr:blocks.(i) ~bytes:64
      done)

let test_full_free_recoalesces_chunks () =
  let m = machine () in
  let b = Baseline.Lazybuddy.create m in
  let initial = Baseline.Lazybuddy.total_free_words_oracle b in
  on_cpu m (fun () ->
      let blocks =
        Array.init 200 (fun i ->
            Baseline.Lazybuddy.alloc b ~bytes:(16 lsl (i mod 4)))
      in
      Array.iteri
        (fun i a -> Baseline.Lazybuddy.free b ~addr:a ~bytes:(16 lsl (i mod 4)))
        blocks);
  Alcotest.(check int) "all words free again" initial
    (Baseline.Lazybuddy.total_free_words_oracle b);
  (* As usage returns to zero, slack goes negative and coalescing
     reassembles maximal blocks. *)
  Alcotest.(check int) "4 KiB blocks available" 4096
    (Baseline.Lazybuddy.largest_free_oracle b)

let test_worst_case_sweep_completes () =
  (* Unlike MK, the lazy buddy coalesces: the paper's worst-case sweep
     finishes every size. *)
  let m = machine ~memory_words:65536 () in
  let b = Baseline.Lazybuddy.create m in
  on_cpu m (fun () ->
      List.iter
        (fun bytes ->
          let rec fill acc =
            let a = Baseline.Lazybuddy.alloc b ~bytes in
            if a = 0 then acc else fill (a :: acc)
          in
          let live = fill [] in
          Alcotest.(check bool)
            (Printf.sprintf "size %d allocates plenty" bytes)
            true
            (List.length live > 20);
          List.iter
            (fun a -> Baseline.Lazybuddy.free b ~addr:a ~bytes)
            live)
        [ 16; 512; 4096; 32 ])

let test_oversize_rejected () =
  let m = machine () in
  let b = Baseline.Lazybuddy.create m in
  let a = on_cpu m (fun () -> Baseline.Lazybuddy.alloc b ~bytes:8192) in
  Alcotest.(check int) "no class above 4096" 0 a

let test_multicpu_exclusion () =
  let m = machine ~ncpus:4 () in
  let b = Baseline.Lazybuddy.create m in
  let per_cpu = 80 in
  let results = Array.make 4 [] in
  Sim.Machine.run_symmetric m ~ncpus:4 (fun cpu ->
      let mine = ref [] in
      for _ = 1 to per_cpu do
        let a = Baseline.Lazybuddy.alloc b ~bytes:128 in
        assert (a <> 0);
        mine := a :: !mine
      done;
      results.(cpu) <- !mine);
  let all = Array.to_list results |> List.concat in
  Alcotest.(check int) "no block issued twice" (4 * per_cpu)
    (List.length (List.sort_uniq compare all));
  Sim.Machine.run_symmetric m ~ncpus:4 (fun cpu ->
      List.iter
        (fun a -> Baseline.Lazybuddy.free b ~addr:a ~bytes:128)
        results.(cpu))

let prop_disjoint_and_conserving =
  QCheck.Test.make ~name:"lazybuddy blocks disjoint; free-all restores"
    ~count:40
    QCheck.(small_list (pair bool (int_range 1 4096)))
    (fun ops ->
      let m = machine () in
      let b = Baseline.Lazybuddy.create m in
      let initial = Baseline.Lazybuddy.total_free_words_oracle b in
      let ok = ref true in
      on_cpu m (fun () ->
          let live = ref [] in
          let class_words bytes =
            let rec go w = if w * 4 >= bytes then w else go (2 * w) in
            go 4
          in
          List.iter
            (fun (is_alloc, bytes) ->
              if is_alloc then begin
                let a = Baseline.Lazybuddy.alloc b ~bytes in
                if a <> 0 then begin
                  let w = class_words bytes in
                  List.iter
                    (fun (lo, hi, _) ->
                      if not (a + w <= lo || hi <= a) then ok := false)
                    !live;
                  live := (a, a + w, bytes) :: !live
                end
              end
              else
                match !live with
                | (lo, _, bytes) :: rest ->
                    live := rest;
                    Baseline.Lazybuddy.free b ~addr:lo ~bytes
                | [] -> ())
            ops;
          List.iter
            (fun (lo, _, bytes) -> Baseline.Lazybuddy.free b ~addr:lo ~bytes)
            !live);
      !ok && Baseline.Lazybuddy.total_free_words_oracle b = initial)

let suite =
  [
    Alcotest.test_case "roundtrip with hot reuse" `Quick test_roundtrip;
    Alcotest.test_case "split leaves a buddy per level" `Quick
      test_split_produces_buddies;
    Alcotest.test_case "lazy frees defer coalescing" `Quick
      test_lazy_frees_defer_coalescing;
    Alcotest.test_case "free-all recoalesces to chunks" `Quick
      test_full_free_recoalesces_chunks;
    Alcotest.test_case "worst-case sweep completes" `Quick
      test_worst_case_sweep_completes;
    Alcotest.test_case "oversize rejected" `Quick test_oversize_rejected;
    Alcotest.test_case "multi-CPU mutual exclusion" `Quick
      test_multicpu_exclusion;
    QCheck_alcotest.to_alcotest prop_disjoint_and_conserving;
  ]
