(* The DEBUG-build allocator: freed blocks are poisoned and the poison
   is verified when the block is handed out again, catching the two
   classic kernel heap bugs — writes through dangling pointers and
   double frees — at the allocation site.

     dune exec examples/debug_kernel.exe *)

let () =
  let machine = Sim.Machine.create (Workload.Rig.paper_config ~ncpus:1 ()) in
  let params = Kma.Params.make ~vmblk_pages:64 ~debug:true () in
  let kmem = Kma.Kmem.create machine ~params () in
  Sim.Machine.run machine
    [|
      (fun _ ->
        (* A well-behaved driver: nothing to report. *)
        let a = Kma.Kmem.alloc kmem ~bytes:256 in
        Sim.Machine.write a 0x1234;
        Kma.Kmem.free kmem ~addr:a ~bytes:256;
        print_endline "clean alloc/free: no complaints";

        (* Bug 1: a write through a dangling pointer. *)
        let b = Kma.Kmem.alloc kmem ~bytes:256 in
        Kma.Kmem.free kmem ~addr:b ~bytes:256;
        Sim.Machine.write (b + 10) 0xBAD (* ...the driver kept the pointer *);
        (match Kma.Kmem.alloc kmem ~bytes:256 with
        | _ -> print_endline "MISSED a use-after-free write!"
        | exception Kma.Kmem.Corruption msg ->
            print_endline ("caught: " ^ msg));

        (* Fresh allocator for bug 2 (the heap above is now corrupt,
           as it would be in a real kernel). *)
        ());
    |];
  let machine2 = Sim.Machine.create (Workload.Rig.paper_config ~ncpus:1 ()) in
  let kmem2 = Kma.Kmem.create machine2 ~params () in
  Sim.Machine.run machine2
    [|
      (fun _ ->
        (* Bug 2: freeing the same block twice. *)
        let c = Kma.Kmem.alloc_zeroed kmem2 ~bytes:512 in
        Kma.Kmem.free kmem2 ~addr:c ~bytes:512;
        match Kma.Kmem.free kmem2 ~addr:c ~bytes:512 with
        | () -> print_endline "MISSED a double free!"
        | exception Kma.Kmem.Corruption msg ->
            print_endline ("caught: " ^ msg));
    |];
  print_endline
    "(release kernels skip these checks: the cookie fast path stays at \
     13 instructions)"
