(* The paper's realistic application: a distributed lock manager serving
   OLTP transactions on four CPUs, with every tracking structure
   allocated from the kernel allocator.  Prints the throughput and the
   per-layer miss rates the paper reports for this workload.

     dune exec examples/lock_manager.exe *)

let () =
  let ncpus = 4 in
  let cfg = Workload.Rig.paper_config ~ncpus () in
  let machine = Sim.Machine.create cfg in
  let kmem =
    Kma.Kmem.create machine
      ~params:(Kma.Params.auto ~memory_words:cfg.Sim.Config.memory_words)
      ()
  in
  let result =
    Dlm.Oltp.run ~kmem ~ncpus ~transactions_per_cpu:1500 ~resources:2048 ()
  in
  Printf.printf "OLTP run: %d transactions, %d lock grants, %d conflicts\n"
    result.Dlm.Oltp.transactions result.Dlm.Oltp.grants
    result.Dlm.Oltp.rejects;
  Printf.printf "%.0f transactions/s of simulated time\n\n"
    (float_of_int result.Dlm.Oltp.transactions
    /. Sim.Config.seconds_of_cycles cfg result.Dlm.Oltp.cycles);
  let stats = Kma.Kmem.stats kmem in
  let p = Kma.Kmem.params kmem in
  print_endline
    "size   allocs   pcpu-miss  gbl-miss   (fraction of ops needing the \
     next layer)";
  Array.iteri
    (fun si bytes ->
      let s = Kma.Kstats.size stats si in
      if s.Kma.Kstats.allocs > 500 then
        Printf.printf "%5d  %7d  %8.2f%%  %7.2f%%\n" bytes
          s.Kma.Kstats.allocs
          (100. *. Kma.Kstats.percpu_alloc_miss_rate stats ~si)
          (100.
          *.
          let r = Kma.Kstats.global_alloc_miss_rate stats ~si in
          if Float.is_nan r then 0. else r))
    p.Kma.Params.sizes_bytes;
  Printf.printf
    "\nworst-case bounds: per-CPU 1/target, global 1/gbltarget — the \
     paper's DLM measured 2.1-7.8%% and 1.2-3.0%%\n"
