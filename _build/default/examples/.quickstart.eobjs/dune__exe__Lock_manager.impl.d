examples/lock_manager.ml: Array Dlm Float Kma Printf Sim Workload
