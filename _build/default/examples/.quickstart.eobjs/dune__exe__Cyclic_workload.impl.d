examples/cyclic_workload.ml: Printf Workload
