examples/cyclic_workload.mli:
