examples/debug_kernel.mli:
