examples/quickstart.ml: Array Format Kma Printf Sim Workload
