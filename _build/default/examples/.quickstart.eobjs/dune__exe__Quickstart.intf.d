examples/quickstart.mli:
