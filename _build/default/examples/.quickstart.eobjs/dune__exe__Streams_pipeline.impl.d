examples/streams_pipeline.ml: Baseline Option Printf Sim Streams Workload
