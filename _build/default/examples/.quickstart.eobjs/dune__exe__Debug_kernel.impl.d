examples/debug_kernel.ml: Kma Sim Workload
