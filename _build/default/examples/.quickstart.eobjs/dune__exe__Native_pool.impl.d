examples/native_pool.ml: Bytes Domain List Objpool Printf Queue Unix
