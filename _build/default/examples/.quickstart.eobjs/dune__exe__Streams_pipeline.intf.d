examples/streams_pipeline.mli:
