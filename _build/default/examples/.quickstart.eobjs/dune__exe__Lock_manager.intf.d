examples/lock_manager.mli:
