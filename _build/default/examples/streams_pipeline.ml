(* A three-stage STREAMS pipeline across three simulated CPUs — the
   protocol-stack workload that motivated the paper's buffer allocator:
   a driver CPU allocates messages (allocb), a protocol CPU transforms
   them, and a consumer CPU frees them.  Every message crosses CPUs, so
   freed buffers flow home through the allocator's global layer.

     dune exec examples/streams_pipeline.exe *)

let npackets = 400

let () =
  let machine = Sim.Machine.create (Workload.Rig.paper_config ~ncpus:3 ()) in
  let alloc = Baseline.Allocator.create Baseline.Allocator.Cookie machine in
  let buf = Streams.Buf.create alloc in
  let q01 = ref None and q12 = ref None in
  let delivered = ref 0 and bytes_moved = ref 0 in
  Sim.Machine.run machine
    [|
      (fun _ ->
        (* Stage 0 — driver: receive "packets" and push them upstream.
           Builds the queues and signals readiness on a scratch word. *)
        q01 := Streams.Squeue.create buf;
        q12 := Streams.Squeue.create buf;
        Sim.Machine.write 16 1;
        let q = Option.get !q01 in
        for seq = 1 to npackets do
          let mb = Streams.Buf.allocb buf ~bytes:256 in
          assert (mb <> 0);
          Streams.Buf.put_byte_word buf mb seq;
          for _ = 1 to 16 do
            Streams.Buf.put_byte_word buf mb 0xDA7A
          done;
          Streams.Squeue.putq q mb
        done);
      (fun _ ->
        (* Stage 1 — protocol: prepend a header block (allocb + linkb)
           and forward.  Every other packet is also duplicated for
           "retransmission" and immediately dropped, exercising dupb's
           reference counting. *)
        while Sim.Machine.read 16 = 0 do
          Sim.Machine.spin_pause ()
        done;
        let qin = Option.get !q01 and qout = Option.get !q12 in
        let forwarded = ref 0 in
        while !forwarded < npackets do
          let mb = Streams.Squeue.getq qin in
          if mb = 0 then Sim.Machine.spin_pause ()
          else begin
            let hdr = Streams.Buf.allocb buf ~bytes:32 in
            assert (hdr <> 0);
            Streams.Buf.put_byte_word buf hdr 0x4EAD;
            Streams.Buf.linkb buf hdr mb;
            if !forwarded mod 2 = 0 then begin
              let dup = Streams.Buf.dupb buf mb in
              if dup <> 0 then Streams.Buf.freeb buf dup
            end;
            Streams.Squeue.putq qout hdr;
            incr forwarded
          end
        done);
      (fun _ ->
        (* Stage 2 — consumer: account the payload and free the whole
           message chain. *)
        while Sim.Machine.read 16 = 0 do
          Sim.Machine.spin_pause ()
        done;
        let qin = Option.get !q12 in
        while !delivered < npackets do
          let mb = Streams.Squeue.getq qin in
          if mb = 0 then Sim.Machine.spin_pause ()
          else begin
            bytes_moved := !bytes_moved + Streams.Buf.msgdsize buf mb;
            Streams.Buf.freemsg buf mb;
            incr delivered
          end
        done);
    |];
  let cfg = Sim.Machine.config machine in
  let cycles = Sim.Machine.elapsed machine in
  Printf.printf "pipeline delivered %d packets, %d payload bytes\n"
    !delivered !bytes_moved;
  Printf.printf "%.0f packets/s at %d MHz (%d cycles)\n"
    (float_of_int !delivered /. Sim.Config.seconds_of_cycles cfg cycles)
    cfg.Sim.Config.mhz cycles
