(* The adoptable artifact: the paper's per-CPU caching discipline as a
   native OCaml 5 object pool.  Real domains hammer a pool of 64 KiB
   scratch buffers; the per-domain magazines absorb almost all traffic
   so the depot mutex is touched once per [target] operations.

     dune exec examples/native_pool.exe *)

let buffer_size = 65536
let ops_per_domain = 50_000

let churn pool () =
  (* Hold a small working set, like a request handler reusing scratch
     buffers. *)
  let held = Queue.create () in
  for i = 1 to ops_per_domain do
    if i land 1 = 0 && Queue.length held > 0 then
      Objpool.Pool.release pool (Queue.pop held)
    else begin
      let b = Objpool.Pool.alloc pool in
      (* Touch the buffer so the work is real. *)
      Bytes.unsafe_set b 0 'x';
      Bytes.unsafe_set b (buffer_size - 1) 'y';
      Queue.add b held
    end
  done;
  while Queue.length held > 0 do
    Objpool.Pool.release pool (Queue.pop held)
  done;
  Objpool.Pool.flush_local pool

let run_domains n pool =
  let t0 = Unix.gettimeofday () in
  let domains = List.init (n - 1) (fun _ -> Domain.spawn (churn pool)) in
  churn pool ();
  List.iter Domain.join domains;
  Unix.gettimeofday () -. t0

let () =
  let ndomains = min 4 (Domain.recommended_domain_count ()) in
  let pool =
    Objpool.Pool.create
      ~ctor:(fun () -> Bytes.create buffer_size)
      ~target:16 ~depot_batches:64 ()
  in
  let dt = run_domains ndomains pool in
  let st = Objpool.Pool.stats pool in
  let total = Objpool.Pstats.allocs st in
  Printf.printf "%d domains, %d pooled allocations in %.3fs (%.1f M ops/s)\n"
    ndomains total dt
    (float_of_int total /. dt /. 1e6);
  Printf.printf "constructed only %d buffers (%.2f MB instead of %.2f MB)\n"
    (Objpool.Pstats.creates st)
    (float_of_int (Objpool.Pstats.creates st * buffer_size) /. 1e6)
    (float_of_int (total * buffer_size) /. 1e6);
  Printf.printf "magazine hit rate: %.2f%%; depot exchanges: %d get, %d put \
                 (%d dropped to GC)\n"
    (100. *. Objpool.Pstats.magazine_hit_rate st)
    (Objpool.Pstats.depot_gets st)
    (Objpool.Pstats.depot_puts st)
    (Objpool.Pstats.drops st)
