(* Quickstart: boot the allocator on a simulated 4-CPU machine, use the
   standard and cookie interfaces, and look at what the layers did.

     dune exec examples/quickstart.exe *)

let () =
  (* A machine loosely resembling the paper's Symmetry: bounded per-CPU
     caches, a slow shared bus, 50 MHz. *)
  let machine = Sim.Machine.create (Workload.Rig.paper_config ~ncpus:4 ()) in
  let kmem = Kma.Kmem.create machine ~params:Kma.Params.small () in

  (* All allocator calls run on simulated CPUs. *)
  Sim.Machine.run_symmetric machine ~ncpus:4 (fun cpu ->
      (* Standard System V interface: kmem_alloc / kmem_free. *)
      let a = Kma.Kmem.alloc kmem ~bytes:200 in
      Sim.Machine.write a (0xC0FFEE + cpu);
      Kma.Kmem.free kmem ~addr:a ~bytes:200;

      (* Cookie interface: translate the size once, then 13-instruction
         allocations. *)
      let cookie = Kma.Cookie.get kmem ~bytes:128 in
      let blocks = Array.init 32 (fun _ -> Kma.Cookie.alloc kmem cookie) in
      Array.iter (fun b -> Kma.Cookie.free kmem cookie b) blocks;

      (* Requests larger than a page go straight to the vmblk layer. *)
      let big = Kma.Kmem.alloc kmem ~bytes:(3 * 4096) in
      Kma.Kmem.free kmem ~addr:big ~bytes:(3 * 4096));

  let cycles = Sim.Machine.elapsed machine in
  Printf.printf "simulated %d cycles (%.1f us at 50 MHz)\n" cycles
    (1e6 *. Sim.Config.seconds_of_cycles (Sim.Machine.config machine) cycles);
  Printf.printf "physical pages still held: %d\n"
    (Kma.Kmem.granted_pages_oracle kmem);
  print_endline "per-size allocator activity:";
  Format.printf "%a@." Kma.Kstats.pp (Kma.Kmem.stats kmem);
  let cache = Sim.Cache.total_stats (Sim.Machine.cache machine) in
  Printf.printf
    "cache model: %d loads, %d stores, %d misses, %d cache-to-cache \
     transfers\n"
    cache.Sim.Cache.loads cache.Sim.Cache.stores cache.Sim.Cache.misses
    cache.Sim.Cache.c2c
