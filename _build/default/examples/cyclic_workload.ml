(* The paper's cyclic commercial workload: data entry and queries all
   day (floods of small tracking blocks), backups and reorganisation at
   night (large buffers).  Online coalescing must hand the day's memory
   back so the night's big allocations succeed — no offline pass, no
   reboot, no sleeps between phases.

     dune exec examples/cyclic_workload.exe *)

let () =
  let r = Workload.Cyclic.run_kmem ~days:4 ~day_ops:3000 ~night_blocks:60 () in
  Printf.printf "4 simulated day/night cycles\n";
  Printf.printf "  day phase:   %d small-block allocations\n"
    r.Workload.Cyclic.day_allocs;
  Printf.printf "  night phase: %d large allocations, %d failures\n"
    r.Workload.Cyclic.night_allocs r.Workload.Cyclic.night_failures;
  Printf.printf "  pages held after a day's churn: %d\n"
    r.Workload.Cyclic.day_peak_pages;
  Printf.printf "  pages held at night's peak:     %d\n"
    r.Workload.Cyclic.night_pages;
  if r.Workload.Cyclic.night_failures = 0 then
    print_endline
      "every nightly allocation succeeded: the coalesce-to-page and \
       coalesce-to-vmblk layers recycled the day's fragments online"
  else
    print_endline "some nightly allocations failed - coalescing fell short"
