type 'a t = {
  tgt : int;
  mutable main : 'a list;
  mutable main_n : int;
  mutable aux : 'a list;
  mutable aux_n : int;
}

let create ~target =
  if target < 1 then invalid_arg "Pool.Magazine.create: target < 1";
  { tgt = target; main = []; main_n = 0; aux = []; aux_n = 0 }

let target t = t.tgt
let size t = t.main_n + t.aux_n

let get t =
  match t.main with
  | x :: rest ->
      t.main <- rest;
      t.main_n <- t.main_n - 1;
      Some x
  | [] ->
      if t.aux_n = 0 then None
      else begin
        (* Slide aux into main: O(1), lists move whole. *)
        t.main <- t.aux;
        t.main_n <- t.aux_n;
        t.aux <- [];
        t.aux_n <- 0;
        match t.main with
        | x :: rest ->
            t.main <- rest;
            t.main_n <- t.main_n - 1;
            Some x
        | [] -> None
      end

let put t x =
  if t.main_n < t.tgt then begin
    t.main <- x :: t.main;
    t.main_n <- t.main_n + 1;
    `Ok
  end
  else begin
    let flushed = if t.aux_n > 0 then `Flush t.aux else `Ok in
    t.aux <- t.main;
    t.aux_n <- t.main_n;
    t.main <- [ x ];
    t.main_n <- 1;
    flushed
  end

let install t batch =
  if t.main_n <> 0 then invalid_arg "Pool.Magazine.install: main not empty";
  let n = List.length batch in
  if n > t.tgt then invalid_arg "Pool.Magazine.install: batch too long";
  t.main <- batch;
  t.main_n <- n

let drain t =
  let all = t.main @ t.aux in
  t.main <- [];
  t.main_n <- 0;
  t.aux <- [];
  t.aux_n <- 0;
  all

let check t =
  t.main_n = List.length t.main
  && t.aux_n = List.length t.aux
  && t.main_n <= t.tgt
  && (t.aux_n = 0 || t.aux_n = t.tgt)
