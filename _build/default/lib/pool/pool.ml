type 'a t = {
  ctor : unit -> 'a;
  reset : ('a -> unit) option;
  tgt : int;
  depot : 'a Depot.t;
  stats : Pstats.t;
  key : 'a Magazine.t Domain.DLS.key;
}

let create ~ctor ?reset ?(target = 16) ?(depot_batches = 32) () =
  if target < 1 then invalid_arg "Pool.create: target < 1";
  {
    ctor;
    reset;
    tgt = target;
    depot = Depot.create ~target ~max_batches:depot_batches;
    stats = Pstats.create ();
    key = Domain.DLS.new_key (fun () -> Magazine.create ~target);
  }

let magazine t = Domain.DLS.get t.key

let alloc t =
  Pstats.incr_alloc t.stats;
  let mag = magazine t in
  match Magazine.get mag with
  | Some x -> x
  | None -> (
      Pstats.incr_depot_get t.stats;
      match Depot.get t.depot with
      | Some batch -> (
          Magazine.install mag batch;
          match Magazine.get mag with
          | Some x -> x
          | None ->
              (* Depot batches are never empty, but fall back safely. *)
              Pstats.incr_create t.stats;
              t.ctor ())
      | None ->
          Pstats.incr_create t.stats;
          t.ctor ())

let release t x =
  Pstats.incr_free t.stats;
  (match t.reset with Some f -> f x | None -> ());
  let mag = magazine t in
  match Magazine.put mag x with
  | `Ok -> ()
  | `Flush batch -> (
      Pstats.incr_depot_put t.stats;
      match Depot.put t.depot batch with
      | `Kept -> ()
      | `Dropped -> Pstats.incr_drop t.stats)

let with_obj t f =
  let x = alloc t in
  match f x with
  | v ->
      release t x;
      v
  | exception e ->
      release t x;
      raise e

let flush_local t =
  let mag = magazine t in
  match Magazine.drain mag with
  | [] -> ()
  | items ->
      Pstats.incr_depot_put t.stats;
      Depot.put_partial t.depot items

let stats t = t.stats
let target t = t.tgt
let depot_batches t = Depot.batches t.depot
