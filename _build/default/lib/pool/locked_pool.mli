(** Baseline: the "simple global mutual-exclusion" pool the paper's
    allocator is designed to beat — one mutex around one free stack.
    Same interface shape as {!Pool}, no per-domain caching: every
    operation takes the lock. *)

type 'a t

val create : ctor:(unit -> 'a) -> ?reset:('a -> unit) -> unit -> 'a t
val alloc : 'a t -> 'a
val release : 'a t -> 'a -> unit
val with_obj : 'a t -> ('a -> 'b) -> 'b
val stats : 'a t -> Pstats.t
