type t = {
  allocs : int Atomic.t;
  frees : int Atomic.t;
  creates : int Atomic.t;
  depot_gets : int Atomic.t;
  depot_puts : int Atomic.t;
  drops : int Atomic.t;
}

let create () =
  {
    allocs = Atomic.make 0;
    frees = Atomic.make 0;
    creates = Atomic.make 0;
    depot_gets = Atomic.make 0;
    depot_puts = Atomic.make 0;
    drops = Atomic.make 0;
  }

let incr_alloc t = Atomic.incr t.allocs
let incr_free t = Atomic.incr t.frees
let incr_create t = Atomic.incr t.creates
let incr_depot_get t = Atomic.incr t.depot_gets
let incr_depot_put t = Atomic.incr t.depot_puts
let incr_drop t = Atomic.incr t.drops

let allocs t = Atomic.get t.allocs
let frees t = Atomic.get t.frees
let creates t = Atomic.get t.creates
let depot_gets t = Atomic.get t.depot_gets
let depot_puts t = Atomic.get t.depot_puts
let drops t = Atomic.get t.drops

let magazine_hit_rate t =
  let a = allocs t in
  if a = 0 then Float.nan
  else 1. -. (float_of_int (depot_gets t) /. float_of_int a)
