(** A per-domain object pool for OCaml 5, after McKenney & Slingwine's
    per-CPU kernel memory allocator (USENIX Winter 1993).

    Each domain keeps a {!Magazine} (the paper's per-CPU cache: a split
    freelist bounded by [2 * target]) it can use without any
    synchronisation; magazines exchange whole target-sized batches with
    a mutex-protected {!Depot} (the paper's global layer), so the lock
    is touched at most once per [target] operations.  The paper's
    coalescing layers have no analogue under a GC: objects dropped on
    depot overflow are simply collected (see DESIGN.md).

    Use it for expensive-to-build, resettable objects (buffers, large
    records, scratch tables):

    {[
      let pool = Pool.create ~ctor:(fun () -> Bytes.create 65536) ()
      let buf = Pool.alloc pool in
      (* ... use buf ... *)
      Pool.release pool buf
    ]}

    [alloc]/[release] are safe from any domain; each domain transparently
    gets its own magazine.  An object must be released at most once and
    not used after release (not checkable here; the test suite checks it
    for the pool's own traffic). *)

type 'a t

val create :
  ctor:(unit -> 'a) ->
  ?reset:('a -> unit) ->
  ?target:int ->
  ?depot_batches:int ->
  unit ->
  'a t
(** [create ~ctor ()] builds a pool.  [reset] is applied on release
    (e.g. zeroing); [target] (default 16) bounds each magazine half;
    [depot_batches] (default 32) bounds the depot, beyond which batches
    are dropped to the GC.

    @raise Invalid_argument if [target < 1] or [depot_batches < 0]. *)

val alloc : 'a t -> 'a
(** [alloc t] takes an object: magazine first, then a depot batch, then
    [ctor]. *)

val release : 'a t -> 'a -> unit
(** [release t x] resets and returns an object to the current domain's
    magazine, flushing a full batch to the depot as needed. *)

val with_obj : 'a t -> ('a -> 'b) -> 'b
(** [with_obj t f] allocates, runs [f], and releases (also on
    exceptions). *)

val flush_local : 'a t -> unit
(** [flush_local t] drains the calling domain's magazine to the depot
    (call before a domain exits to keep its stock usable by others). *)

val stats : 'a t -> Pstats.t
val target : 'a t -> int
val depot_batches : 'a t -> int
(** Current depot stock, in batches. *)
