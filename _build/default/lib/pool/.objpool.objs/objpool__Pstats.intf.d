lib/pool/pstats.mli:
