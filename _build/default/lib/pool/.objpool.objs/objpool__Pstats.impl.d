lib/pool/pstats.ml: Atomic Float
