lib/pool/magazine.mli:
