lib/pool/magazine.ml: List
