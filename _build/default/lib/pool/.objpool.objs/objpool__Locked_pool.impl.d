lib/pool/locked_pool.ml: Mutex Pstats
