lib/pool/depot.mli:
