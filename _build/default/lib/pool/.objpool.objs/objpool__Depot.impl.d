lib/pool/depot.ml: List Mutex
