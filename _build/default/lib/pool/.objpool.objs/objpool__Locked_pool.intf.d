lib/pool/locked_pool.mli: Pstats
