lib/pool/pool.ml: Depot Domain Magazine Pstats
