lib/pool/pool.mli: Pstats
