type 'a t = {
  ctor : unit -> 'a;
  reset : ('a -> unit) option;
  mutex : Mutex.t;
  mutable free : 'a list;
  stats : Pstats.t;
}

let create ~ctor ?reset () =
  { ctor; reset; mutex = Mutex.create (); free = []; stats = Pstats.create () }

let alloc t =
  Pstats.incr_alloc t.stats;
  Mutex.lock t.mutex;
  let x =
    match t.free with
    | x :: rest ->
        t.free <- rest;
        Some x
    | [] -> None
  in
  Mutex.unlock t.mutex;
  match x with
  | Some x -> x
  | None ->
      Pstats.incr_create t.stats;
      t.ctor ()

let release t x =
  Pstats.incr_free t.stats;
  (match t.reset with Some f -> f x | None -> ());
  Mutex.lock t.mutex;
  t.free <- x :: t.free;
  Mutex.unlock t.mutex

let with_obj t f =
  let x = alloc t in
  match f x with
  | v ->
      release t x;
      v
  | exception e ->
      release t x;
      raise e

let stats t = t.stats
