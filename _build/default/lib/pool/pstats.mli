(** Atomic counters for the native pool (safe to read from any
    domain; individually consistent, not mutually). *)

type t

val create : unit -> t
val incr_alloc : t -> unit
val incr_free : t -> unit
val incr_create : t -> unit
val incr_depot_get : t -> unit
val incr_depot_put : t -> unit
val incr_drop : t -> unit

val allocs : t -> int
val frees : t -> int
val creates : t -> int
(** Constructor calls: allocations no layer could satisfy. *)

val depot_gets : t -> int
val depot_puts : t -> int
val drops : t -> int
(** Batches released to the GC on depot overflow. *)

val magazine_hit_rate : t -> float
(** Fraction of allocations served without touching the depot. *)
