(** The global layer for OCaml domains: a mutex-protected stock of
    full target-sized batches, exchanged whole with per-domain
    magazines — one lock round-trip moves [target] objects.

    When the depot overflows its bound, the excess batch is simply
    dropped: under a garbage collector the "coalescing layers" are the
    GC itself, which is the per-design substitution documented in
    DESIGN.md. *)

type 'a t

val create : target:int -> max_batches:int -> 'a t
(** [target] is the batch size magazines exchange; odd-sized returns
    are regrouped into [target]-sized batches.
    @raise Invalid_argument if [target < 1] or [max_batches < 0]. *)

val get : 'a t -> 'a list option
(** [get t] takes one batch (at most [target] items), or [None] when
    empty. *)

val put : 'a t -> 'a list -> [ `Kept | `Dropped ]
(** [put t batch] stores a batch; [`Dropped] when the depot is full
    (the batch is released to the GC). *)

val put_partial : 'a t -> 'a list -> unit
(** [put_partial t items] accepts an odd-sized return (magazine drain at
    domain exit), regrouping into batches internally; overflow beyond
    the bound is dropped. *)

val batches : 'a t -> int
(** Current stock (for monitoring; momentarily stale by nature). *)

val drain : 'a t -> 'a list
(** [drain t] empties the depot (tests, shutdown). *)
