(** The split freelist of the paper's per-CPU caching layer, as a plain
    data structure over OCaml values: a [main] stack served first and an
    [aux] stack holding one full target-sized batch in reserve.

    Invariants (maintained by {!Pool}, checkable with {!check}):
    - [length main <= target] and [length aux] is [0] or [target];
    - a put onto a full [main] requires the caller to first hand off
      [aux] (if full) and slide [main] into [aux];
    - total occupancy never exceeds [2 * target].

    Not thread-safe: one magazine belongs to one domain. *)

type 'a t

val create : target:int -> 'a t
(** @raise Invalid_argument if [target < 1]. *)

val target : 'a t -> int
val size : 'a t -> int

val get : 'a t -> 'a option
(** [get t] pops from [main], sliding [aux] into [main] first if [main]
    is empty.  [None] when the magazine is empty. *)

val put : 'a t -> 'a -> [ `Ok | `Flush of 'a list ]
(** [put t x] pushes onto [main].  When [main] is full it slides [main]
    into [aux] and starts a fresh [main] with [x]; if [aux] was already
    full, its batch is returned as [`Flush batch] (exactly [target]
    elements) for the caller to hand to the depot. *)

val install : 'a t -> 'a list -> unit
(** [install t batch] loads a depot batch (at most [target] elements)
    into an empty [main].
    @raise Invalid_argument if [main] is non-empty or the batch is too
    long. *)

val drain : 'a t -> 'a list
(** [drain t] empties the magazine, returning everything it held. *)

val check : 'a t -> bool
(** Invariant oracle for tests. *)
