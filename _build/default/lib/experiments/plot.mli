(** Gnuplot output: render Figures 7, 8 and 9 as the paper printed
    them.

    [write_* ~prefix] writes [<prefix>.dat] (whitespace-separated
    columns with a [#] header) and [<prefix>.gp] (a self-contained
    script producing [<prefix>.png]); run [gnuplot <prefix>.gp]. *)

val write_fig7 : Fig7.point list -> prefix:string -> unit
(** Linear axes (Figure 7) — one series per allocator. *)

val write_fig8 : Fig7.point list -> prefix:string -> unit
(** The same data with a logarithmic y axis (Figure 8). *)

val write_fig9 : Workload.Worstcase.size_result list -> prefix:string -> unit
(** Pairs/s vs block size, logarithmic x axis (Figure 9). *)
