(** Experiment E5 — the paper's Figure 9: worst-case alloc/free pairs
    per second versus block size, on the new allocator.

    Also exposed: the same sweep on the baselines, demonstrating the
    paper's side claims that an allocator without coalescing (mk) fails
    to complete the benchmark, while oldkma completes it slowly. *)

val run :
  ?which:Baseline.Allocator.which ->
  ?memory_words:int ->
  ?cap:int ->
  unit ->
  Workload.Worstcase.size_result list

val print : Workload.Worstcase.size_result list -> unit
(** Rows: block size, blocks obtained, alloc/s, free/s, pairs/s. *)

val completed : Workload.Worstcase.size_result list -> bool
(** True when every size obtained a nontrivial number of blocks — the
    "no reboots, no delays" criterion. *)
