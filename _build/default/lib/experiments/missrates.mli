(** Experiment E6 — the paper's distributed-lock-manager miss rates.

    Runs the OLTP/DLM workload on the new allocator with the paper's
    parameters (target 10, gbltarget 15) and reports, per size class
    with traffic, the measured miss rates at the per-CPU and global
    layers against the analytic worst-case bounds:

    - per-CPU layer: at most [1/target] (10%);
    - global layer: at most [1/gbltarget] (6.7%);
    - combined: at most [1/(target * gbltarget)] (0.67%).

    The paper measured 2.1–7.8% (per-CPU), 1.2–3.0% (global) and
    0.02–0.14% (combined) — always inside the bounds, with the combined
    rate diluting coalescing overhead by 700–5000x. *)

type row = {
  bytes : int;
  allocs : int;  (** per-CPU layer allocations (traffic weight) *)
  gbl_ops : int;  (** global-layer operations (traffic weight) *)
  alloc_pcpu : float;
  free_pcpu : float;
  alloc_gbl : float;
  free_gbl : float;
  alloc_combined : float;
  free_combined : float;
}

type result = {
  oltp : Dlm.Oltp.result;
  rows : row list;
  target : int;
  gbltarget : int;
}

val run :
  ?ncpus:int -> ?transactions_per_cpu:int -> ?seed:int -> unit -> result

val print : result -> unit

val within_bounds : result -> bool
(** Every measured rate with enough traffic to amortise warm-up is
    below its worst-case bound (low-traffic layers are all warm-up and
    are skipped). *)
