(** Experiment E2 — the paper's instruction counts.

    Measures retired simulated instructions on the warm fast paths:
    cookie alloc/free (paper: 13 each on 80x86) and the standard
    functional interface (paper: 35 alloc, 32 free), plus the MK
    baseline for reference (paper: 9/16 VAX instructions, which carry
    more work per instruction than 80x86 ones). *)

type row = { interface : string; alloc_insns : int; free_insns : int }

val run : unit -> row list
val print : row list -> unit
