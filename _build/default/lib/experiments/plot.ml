let write_file path contents =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc contents)

let fig7_data points =
  let whichs =
    List.sort_uniq compare (List.map (fun p -> p.Fig7.which) points)
  in
  let cpus =
    List.sort_uniq compare (List.map (fun p -> p.Fig7.ncpus) points)
  in
  let b = Buffer.create 512 in
  Buffer.add_string b "# cpus";
  List.iter
    (fun w -> Buffer.add_string b ("\t" ^ Baseline.Allocator.name_of w))
    whichs;
  Buffer.add_char b '\n';
  List.iter
    (fun n ->
      Buffer.add_string b (string_of_int n);
      List.iter
        (fun w ->
          let v =
            match
              List.find_opt
                (fun p -> p.Fig7.which = w && p.Fig7.ncpus = n)
                points
            with
            | Some p -> p.Fig7.pairs_per_sec
            | None -> Float.nan
          in
          Buffer.add_string b (Printf.sprintf "\t%.6g" v))
        whichs;
      Buffer.add_char b '\n')
    cpus;
  (Buffer.contents b, whichs)

let series_plots ~dat whichs =
  String.concat ", \\\n     "
    (List.mapi
       (fun i w ->
         Printf.sprintf "%S using 1:%d with linespoints title %S" dat (i + 2)
           (Baseline.Allocator.name_of w))
       whichs)

let fig7_script ~prefix ~logscale whichs =
  let dat = prefix ^ ".dat" in
  Printf.sprintf
    {|set terminal pngcairo size 900,600
set output "%s.png"
set title "%s"
set xlabel "Number of CPUs"
set ylabel "alloc/free pairs per second"
%sset key top left
plot %s
|}
    prefix
    (if logscale then
       "Figure 8: allocations and frees per second (semilog)"
     else "Figure 7: allocations and frees per second")
    (if logscale then "set logscale y\n" else "")
    (series_plots ~dat whichs)

let write_fig7 points ~prefix =
  let data, whichs = fig7_data points in
  write_file (prefix ^ ".dat") data;
  write_file (prefix ^ ".gp") (fig7_script ~prefix ~logscale:false whichs)

let write_fig8 points ~prefix =
  let data, whichs = fig7_data points in
  write_file (prefix ^ ".dat") data;
  write_file (prefix ^ ".gp") (fig7_script ~prefix ~logscale:true whichs)

let write_fig9 results ~prefix =
  let b = Buffer.create 512 in
  Buffer.add_string b "# bytes\tallocs_per_sec\tfrees_per_sec\tpairs_per_sec\n";
  List.iter
    (fun r ->
      let open Workload.Worstcase in
      Buffer.add_string b
        (Printf.sprintf "%d\t%.6g\t%.6g\t%.6g\n" r.bytes r.allocs_per_sec
           r.frees_per_sec r.pairs_per_sec))
    results;
  write_file (prefix ^ ".dat") (Buffer.contents b);
  let dat = prefix ^ ".dat" in
  write_file (prefix ^ ".gp")
    (Printf.sprintf
       {|set terminal pngcairo size 900,600
set output "%s.png"
set title "Figure 9: worst-case performance"
set xlabel "Block size (bytes)"
set ylabel "operations per second"
set logscale x 2
set key top right
plot %S using 1:2 with linespoints title "allocations", \
     %S using 1:3 with linespoints title "frees", \
     %S using 1:4 with linespoints title "alloc/free pairs"
|}
       prefix dat dat dat)
