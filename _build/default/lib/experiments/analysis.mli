(** Experiment E1 — the paper's Analysis section: why the old
    allocator underperformed its instruction counts.

    Reproduces the logic-analyzer study of [allocb]/[freeb] on the old
    allocator: two CPUs run STREAMS buffer traffic over oldkma, and the
    cache model's trace hook records the cost of every memory access
    CPU 0 makes.  We report, for [allocb] and [freeb] separately:

    - the fixed (no-stall) instruction time of an operation;
    - min / mean / max measured times (stalls included);
    - the access-cost concentration: the smallest fraction of accesses
      accounting for over half the elapsed time.

    The paper measured [allocb] at 12.5 us fixed vs 28–198 us observed
    (mean 64.2), with the worst 6.3% of off-chip accesses accounting
    for 57.6% of the elapsed time; our shape criterion is that a small
    minority of accesses dominates. *)

type op_profile = {
  op : string;
  samples : int;
  fixed_cycles : int;  (** retired instructions only, no stalls *)
  min_cycles : int;
  mean_cycles : float;
  max_cycles : int;
  accesses : int;  (** traced accesses across samples *)
  stall_cycles : int;
  worst_share_accesses : float;
      (** fraction of accesses in the most expensive set that covers
          half of the total stall time *)
  worst_share_elapsed : float;
      (** the share of total elapsed time that set accounts for *)
}

val run : ?samples:int -> ?bytes:int -> unit -> op_profile list
(** [run ()] profiles [allocb] then [freeb] (two entries). *)

val print : op_profile list -> unit
