lib/experiments/fig9.ml: Baseline List Series Workload
