lib/experiments/opcounts.ml: Baseline Kma List Series Sim Workload
