lib/experiments/plot.mli: Fig7 Workload
