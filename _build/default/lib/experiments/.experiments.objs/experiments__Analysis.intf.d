lib/experiments/analysis.mli:
