lib/experiments/opcounts.mli:
