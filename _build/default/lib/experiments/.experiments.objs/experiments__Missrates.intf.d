lib/experiments/missrates.mli: Dlm
