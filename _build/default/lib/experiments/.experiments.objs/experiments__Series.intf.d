lib/experiments/series.mli:
