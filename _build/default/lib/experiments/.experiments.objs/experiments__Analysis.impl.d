lib/experiments/analysis.ml: Baseline List Series Sim Streams Workload
