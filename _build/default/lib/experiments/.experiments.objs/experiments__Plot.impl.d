lib/experiments/plot.ml: Baseline Buffer Fig7 Float Fun List Printf String Workload
