lib/experiments/series.ml: Array Float List Printf String
