lib/experiments/missrates.ml: Array Dlm Float Fun Kma List Printf Series Sim Workload
