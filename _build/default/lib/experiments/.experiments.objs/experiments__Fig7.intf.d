lib/experiments/fig7.mli: Baseline
