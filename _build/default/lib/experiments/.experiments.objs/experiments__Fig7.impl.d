lib/experiments/fig7.ml: Baseline Float List Series Workload
