lib/experiments/fig9.mli: Baseline Workload
