let run ?(which = Baseline.Allocator.Newkma)
    ?(memory_words = 1024 * 1024) ?(cap = 0) () =
  let config = Workload.Rig.paper_config ~memory_words ~ncpus:1 () in
  Workload.Worstcase.run ~which ~config ~cap ()

let print results =
  Series.heading
    "Figure 9: worst-case performance vs block size (alloc all, free all)";
  Series.table
    ~header:[ "bytes"; "blocks"; "allocs/s"; "frees/s"; "pairs/s" ]
    (List.map
       (fun r ->
         let open Workload.Worstcase in
         [
           string_of_int r.bytes;
           string_of_int r.blocks;
           Series.sci r.allocs_per_sec;
           Series.sci r.frees_per_sec;
           Series.sci r.pairs_per_sec;
         ])
       results)

let completed results =
  List.for_all
    (fun r -> r.Workload.Worstcase.blocks > 10)
    results
