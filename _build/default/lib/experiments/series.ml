let widths header rows =
  let all = header :: rows in
  let ncols = List.fold_left (fun acc r -> max acc (List.length r)) 0 all in
  let w = Array.make ncols 0 in
  List.iter
    (List.iteri (fun i cell -> w.(i) <- max w.(i) (String.length cell)))
    all;
  w

let print_row w row =
  List.iteri
    (fun i cell ->
      let pad = String.make (w.(i) - String.length cell) ' ' in
      if i = 0 then print_string (cell ^ pad)
      else print_string ("  " ^ pad ^ cell))
    row;
  print_newline ()

let table ~header rows =
  let w = widths header rows in
  print_row w header;
  print_row w
    (List.mapi (fun i _ -> String.make w.(i) '-') header);
  List.iter (print_row w) rows

let tsv ~header rows =
  print_endline (String.concat "\t" header);
  List.iter (fun r -> print_endline (String.concat "\t" r)) rows

let f1 v = Printf.sprintf "%.1f" v
let f3 v = Printf.sprintf "%.3f" v
let sci v = Printf.sprintf "%.2e" v

let pct v =
  if Float.is_nan v then "-" else Printf.sprintf "%.2f%%" (100. *. v)

let heading s =
  print_newline ();
  print_endline s;
  print_endline (String.make (String.length s) '=')
