type op_profile = {
  op : string;
  samples : int;
  fixed_cycles : int;
  min_cycles : int;
  mean_cycles : float;
  max_cycles : int;
  accesses : int;
  stall_cycles : int;
  worst_share_accesses : float;
  worst_share_elapsed : float;
}

type collector = {
  mutable active : bool;
  mutable costs : int list;  (* traced access costs, current op *)
  mutable op_elapsed : int list;  (* per-sample elapsed *)
  mutable op_stall : int list;  (* per-sample traced stall *)
  mutable all_costs : int list;  (* every access cost across samples *)
  mutable cur_stall : int;
  mutable cur_n : int;
  mutable op_accesses : int list;
}

let fresh_collector () =
  {
    active = false;
    costs = [];
    op_elapsed = [];
    op_stall = [];
    all_costs = [];
    cur_stall = 0;
    cur_n = 0;
    op_accesses = [];
  }

let begin_op c =
  c.active <- true;
  c.cur_stall <- 0;
  c.cur_n <- 0

let end_op c ~elapsed =
  c.active <- false;
  c.op_elapsed <- elapsed :: c.op_elapsed;
  c.op_stall <- c.cur_stall :: c.op_stall;
  c.op_accesses <- c.cur_n :: c.op_accesses

let profile_of name c =
  let samples = List.length c.op_elapsed in
  let total_elapsed = List.fold_left ( + ) 0 c.op_elapsed in
  let stall = List.fold_left ( + ) 0 c.op_stall in
  (* Concentration over every traced access, mirroring the paper's
     logic-analyzer counts (their 304 "off-chip accesses" per allocb
     included many cheap board-cache hits; our zero-cost hits play that
     role). *)
  let naccesses = List.length c.all_costs in
  let sorted = List.sort (fun a b -> compare b a) c.all_costs in
  let half = stall / 2 in
  let rec take k cum = function
    | v :: rest when cum < half -> take (k + 1) (cum + v) rest
    | _ -> (k, cum)
  in
  let k, cum = take 0 0 sorted in
  let fixed =
    List.fold_left2
      (fun acc e s -> min acc (e - s))
      max_int c.op_elapsed c.op_stall
  in
  {
    op = name;
    samples;
    fixed_cycles = fixed;
    min_cycles = List.fold_left min max_int c.op_elapsed;
    mean_cycles = float_of_int total_elapsed /. float_of_int samples;
    max_cycles = List.fold_left max 0 c.op_elapsed;
    accesses = naccesses;
    stall_cycles = stall;
    worst_share_accesses =
      (if naccesses = 0 then 0. else float_of_int k /. float_of_int naccesses);
    worst_share_elapsed =
      (if total_elapsed = 0 then 0.
       else float_of_int cum /. float_of_int total_elapsed);
  }

(* Harness scratch words (below every allocator's control region). *)
let w_done = 17

let run ?(samples = 200) ?(bytes = 512) () =
  let cfg = Workload.Rig.paper_config ~ncpus:2 () in
  let m = Sim.Machine.create cfg in
  let handle = Baseline.Allocator.create Baseline.Allocator.Oldkma m in
  let buf = Streams.Buf.create handle in
  let alloc_c = fresh_collector () in
  let free_c = fresh_collector () in
  Sim.Cache.set_trace (Sim.Machine.cache m)
    (Some
       (fun ~cpu ~addr:_ _kind ~cost ->
         if cpu = 0 then begin
           let c =
             if alloc_c.active then Some alloc_c
             else if free_c.active then Some free_c
             else None
           in
           match c with
           | Some c ->
               c.cur_stall <- c.cur_stall + cost;
               c.cur_n <- c.cur_n + 1;
               c.all_costs <- cost :: c.all_costs
           | None -> ()
         end));
  Sim.Machine.run m
    [|
      (fun _ ->
        for _ = 1 to samples do
          begin_op alloc_c;
          let t0 = Sim.Machine.now () in
          let mb = Streams.Buf.allocb buf ~bytes in
          end_op alloc_c ~elapsed:(Sim.Machine.now () - t0);
          assert (mb <> 0);
          (* Fill the message the way a driver would. *)
          for _ = 1 to bytes / 64 do
            Streams.Buf.put_byte_word buf mb 0xAB
          done;
          begin_op free_c;
          let t1 = Sim.Machine.now () in
          Streams.Buf.freeb buf mb;
          end_op free_c ~elapsed:(Sim.Machine.now () - t1)
        done;
        Sim.Machine.write w_done 1);
      (fun _ ->
        (* Competing STREAMS traffic on the other CPU: the source of
           cache-to-cache transfers and lock contention.  It works in
           bursts with protocol processing in between, as a real driver
           does — constant saturation would turn every access into a
           coherence transfer, which is not what the paper measured. *)
        let rec churn () =
          if Sim.Machine.read w_done = 0 then begin
            let mb = Streams.Buf.allocb buf ~bytes:256 in
            if mb <> 0 then begin
              Streams.Buf.put_byte_word buf mb 1;
              Streams.Buf.freeb buf mb
            end;
            Sim.Machine.work 2500 (* header processing, checksums *);
            churn ()
          end
        in
        churn ());
    |];
  Sim.Cache.set_trace (Sim.Machine.cache m) None;
  [ profile_of "allocb" alloc_c; profile_of "freeb" free_c ]

let print profiles =
  Series.heading
    "Analysis: allocb/freeb on the old allocator (cycles, 2 CPUs)";
  Series.table
    ~header:
      [ "op"; "samples"; "fixed"; "min"; "mean"; "max"; "accesses";
        "worst accesses"; "share of elapsed" ]
    (List.map
       (fun p ->
         [
           p.op;
           string_of_int p.samples;
           string_of_int p.fixed_cycles;
           string_of_int p.min_cycles;
           Series.f1 p.mean_cycles;
           string_of_int p.max_cycles;
           string_of_int p.accesses;
           Series.pct p.worst_share_accesses;
           Series.pct p.worst_share_elapsed;
         ])
       profiles);
  print_endline
    "paper: allocb 12.5us fixed vs 64.2us mean; worst 6.3% of accesses = \
     57.6% of elapsed time"
