type t = {
  ncpus : int;
  memory_words : int;
  line_words : int;
  cache_lines : int;
  insn_cost : int;
  miss_cost : int;
  c2c_cost : int;
  upgrade_cost : int;
  rmw_cost : int;
  irq_cost : int;
  spin_cost : int;
  uncached_words : int;
  uncached_cost : int;
  bus_model : bool;
  bus_occupancy_div : int;
  mhz : int;
}

let is_power_of_two n = n > 0 && n land (n - 1) = 0

let validate t =
  let check cond msg = if not cond then invalid_arg ("Sim.Config: " ^ msg) in
  check (t.ncpus >= 1 && t.ncpus <= 64) "ncpus must be in [1, 64]";
  check (is_power_of_two t.line_words) "line_words must be a power of two";
  check (t.memory_words > 0) "memory_words must be positive";
  check
    (t.memory_words mod t.line_words = 0)
    "memory_words must be a multiple of line_words";
  check (t.cache_lines >= 0) "cache_lines must be non-negative";
  check (t.insn_cost >= 0) "insn_cost must be non-negative";
  check (t.miss_cost >= 0) "miss_cost must be non-negative";
  check (t.c2c_cost >= 0) "c2c_cost must be non-negative";
  check (t.upgrade_cost >= 0) "upgrade_cost must be non-negative";
  check (t.rmw_cost >= 0) "rmw_cost must be non-negative";
  check (t.irq_cost >= 0) "irq_cost must be non-negative";
  check (t.spin_cost >= 1) "spin_cost must be at least 1";
  check
    (t.uncached_words >= 0 && t.uncached_words < t.memory_words)
    "uncached_words must fit below memory_words";
  check (t.uncached_cost >= 0) "uncached_cost must be non-negative";
  check (t.bus_occupancy_div >= 1) "bus_occupancy_div must be >= 1";
  check (t.mhz >= 1) "mhz must be positive"

let default =
  {
    ncpus = 4;
    memory_words = 4 * 1024 * 1024;
    line_words = 8;
    cache_lines = 256;
    insn_cost = 1;
    miss_cost = 30;
    c2c_cost = 50;
    upgrade_cost = 20;
    rmw_cost = 12;
    irq_cost = 4;
    spin_cost = 4;
    uncached_words = 0;
    uncached_cost = 40;
    bus_model = true;
    bus_occupancy_div = 4;
    mhz = 50;
  }

let make ?(ncpus = default.ncpus) ?(memory_words = default.memory_words)
    ?(line_words = default.line_words) ?(cache_lines = default.cache_lines)
    ?(insn_cost = default.insn_cost) ?(miss_cost = default.miss_cost)
    ?(c2c_cost = default.c2c_cost) ?(upgrade_cost = default.upgrade_cost)
    ?(rmw_cost = default.rmw_cost) ?(irq_cost = default.irq_cost)
    ?(spin_cost = default.spin_cost)
    ?(uncached_words = default.uncached_words)
    ?(uncached_cost = default.uncached_cost)
    ?(bus_model = default.bus_model)
    ?(bus_occupancy_div = default.bus_occupancy_div) ?(mhz = default.mhz) () =
  let t =
    {
      ncpus;
      memory_words;
      line_words;
      cache_lines;
      insn_cost;
      miss_cost;
      c2c_cost;
      upgrade_cost;
      rmw_cost;
      irq_cost;
      spin_cost;
      uncached_words;
      uncached_cost;
      bus_model;
      bus_occupancy_div;
      mhz;
    }
  in
  validate t;
  t

let seconds_of_cycles t cycles = float_of_int cycles /. (float_of_int t.mhz *. 1e6)
