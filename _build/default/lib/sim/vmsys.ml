type t = {
  total : int;
  grant_cost : int;
  reclaim_cost : int;
  mutable ngranted : int;
  mutable peak : int;
  mutable grants : int;
  mutable reclaims : int;
}

let create ~total_pages ~grant_cost ~reclaim_cost =
  if total_pages <= 0 then invalid_arg "Sim.Vmsys.create: total_pages";
  if grant_cost < 0 || reclaim_cost < 0 then
    invalid_arg "Sim.Vmsys.create: negative cost";
  {
    total = total_pages;
    grant_cost;
    reclaim_cost;
    ngranted = 0;
    peak = 0;
    grants = 0;
    reclaims = 0;
  }

let grant t =
  Machine.work t.grant_cost;
  if t.ngranted >= t.total then false
  else begin
    t.ngranted <- t.ngranted + 1;
    t.grants <- t.grants + 1;
    if t.ngranted > t.peak then t.peak <- t.ngranted;
    true
  end

let reclaim t =
  Machine.work t.reclaim_cost;
  if t.ngranted <= 0 then
    invalid_arg "Sim.Vmsys.reclaim: more reclaims than grants";
  t.ngranted <- t.ngranted - 1;
  t.reclaims <- t.reclaims + 1

let granted t = t.ngranted
let available t = t.total - t.ngranted
let total_pages t = t.total
let peak_granted t = t.peak
let grant_count t = t.grants
let reclaim_count t = t.reclaims

let reset_counters t =
  t.grants <- 0;
  t.reclaims <- 0;
  t.peak <- t.ngranted
