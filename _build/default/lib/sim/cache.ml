type kind = Load | Store | Rmw

type stats = {
  mutable loads : int;
  mutable stores : int;
  mutable rmws : int;
  mutable hits : int;
  mutable misses : int;
  mutable c2c : int;
  mutable upgrades : int;
  mutable invalidations : int;
  mutable evictions : int;
  mutable stall_cycles : int;
}

type entry = { mutable sharers : int; mutable dirty : int }
(* [sharers] is a bitmask of CPUs holding the line; [dirty] is the CPU
   holding it modified, or -1.  Invariant: dirty >= 0 implies sharers =
   just that CPU's bit. *)

type percpu = {
  st : stats;
  fifo : int Queue.t; (* line indices in insertion order; may contain
                         lines since stolen by another CPU (skipped
                         lazily at eviction time) *)
  mutable nresident : int;
}

type t = {
  cfg : Config.t;
  line_shift : int;
  uncached_base : int; (* addresses at or above this bypass the cache *)
  lines : (int, entry) Hashtbl.t;
  cpus : percpu array;
  mutable trace :
    (cpu:int -> addr:Memory.addr -> kind -> cost:int -> unit) option;
}

let fresh_stats () =
  {
    loads = 0;
    stores = 0;
    rmws = 0;
    hits = 0;
    misses = 0;
    c2c = 0;
    upgrades = 0;
    invalidations = 0;
    evictions = 0;
    stall_cycles = 0;
  }

let log2 n =
  let rec go acc n = if n <= 1 then acc else go (acc + 1) (n lsr 1) in
  go 0 n

let create (cfg : Config.t) =
  {
    cfg;
    line_shift = log2 cfg.line_words;
    uncached_base = cfg.memory_words - cfg.uncached_words;
    lines = Hashtbl.create 4096;
    cpus =
      Array.init cfg.ncpus (fun _ ->
          { st = fresh_stats (); fifo = Queue.create (); nresident = 0 });
    trace = None;
  }

let bit cpu = 1 lsl cpu
let popcount n =
  let rec go acc n = if n = 0 then acc else go (acc + 1) (n land (n - 1)) in
  go 0 n

(* Drop [cpu]'s copy of [line]; removes the entry entirely when the last
   copy disappears so the table stays proportional to resident lines. *)
let drop_copy t line entry cpu =
  entry.sharers <- entry.sharers land lnot (bit cpu);
  if entry.dirty = cpu then entry.dirty <- -1;
  t.cpus.(cpu).nresident <- t.cpus.(cpu).nresident - 1;
  if entry.sharers = 0 then Hashtbl.remove t.lines line

(* Make room in [cpu]'s cache if bounded and full, FIFO order. *)
let rec evict_if_full t cpu =
  let pc = t.cpus.(cpu) in
  if t.cfg.cache_lines > 0 && pc.nresident >= t.cfg.cache_lines then begin
    match Queue.take_opt pc.fifo with
    | None ->
        (* Resident count says full but the FIFO is empty: impossible by
           construction, but recover rather than loop forever. *)
        pc.nresident <- 0
    | Some line -> (
        match Hashtbl.find_opt t.lines line with
        | Some entry when entry.sharers land bit cpu <> 0 ->
            drop_copy t line entry cpu;
            pc.st.evictions <- pc.st.evictions + 1
        | Some _ | None ->
            (* Stale FIFO entry: the line was stolen by another CPU's
               write.  Skip it and keep looking. *)
            evict_if_full t cpu)
  end

let insert_copy t line entry cpu =
  if entry.sharers land bit cpu = 0 then begin
    evict_if_full t cpu;
    entry.sharers <- entry.sharers lor bit cpu;
    let pc = t.cpus.(cpu) in
    pc.nresident <- pc.nresident + 1;
    Queue.add line pc.fifo
  end

let find_or_add t line =
  match Hashtbl.find_opt t.lines line with
  | Some e -> e
  | None ->
      let e = { sharers = 0; dirty = -1 } in
      Hashtbl.add t.lines line e;
      e

(* Invalidate every copy other than [cpu]'s; returns how many were
   invalidated. *)
let invalidate_others t entry cpu =
  let others = entry.sharers land lnot (bit cpu) in
  if others = 0 then 0
  else begin
    let n = popcount others in
    for c = 0 to t.cfg.ncpus - 1 do
      if others land bit c <> 0 then begin
        entry.sharers <- entry.sharers land lnot (bit c);
        t.cpus.(c).nresident <- t.cpus.(c).nresident - 1
      end
    done;
    if entry.dirty >= 0 && entry.dirty <> cpu then entry.dirty <- -1;
    n
  end

let access t ~cpu a kind =
  let cfg = t.cfg in
  let line = a lsr t.line_shift in
  let pc = t.cpus.(cpu) in
  let st = pc.st in
  (match kind with
  | Load -> st.loads <- st.loads + 1
  | Store -> st.stores <- st.stores + 1
  | Rmw -> st.rmws <- st.rmws + 1);
  if a >= t.uncached_base then begin
    (* Uncacheable device-register space: every access goes to the bus. *)
    let cost = cfg.uncached_cost in
    st.misses <- st.misses + 1;
    st.stall_cycles <- st.stall_cycles + cost;
    (match t.trace with
    | Some f -> f ~cpu ~addr:a kind ~cost
    | None -> ());
    cost
  end
  else begin
  let entry = find_or_add t line in
  let mine = entry.sharers land bit cpu <> 0 in
  let dirty_elsewhere = entry.dirty >= 0 && entry.dirty <> cpu in
  let cost =
    match kind with
    | Load ->
        if mine then begin
          st.hits <- st.hits + 1;
          0
        end
        else if dirty_elsewhere then begin
          (* Cache-to-cache transfer: the owner writes back and both end
             up with shared copies. *)
          st.c2c <- st.c2c + 1;
          entry.dirty <- -1;
          insert_copy t line entry cpu;
          cfg.c2c_cost
        end
        else begin
          st.misses <- st.misses + 1;
          insert_copy t line entry cpu;
          cfg.miss_cost
        end
    | Store | Rmw ->
        if mine && entry.sharers = bit cpu then begin
          (* Exclusive or already modified: silent upgrade. *)
          st.hits <- st.hits + 1;
          entry.dirty <- cpu;
          0
        end
        else begin
          let fetch_cost =
            if mine then begin
              (* Shared here and elsewhere: invalidation round only. *)
              st.upgrades <- st.upgrades + 1;
              cfg.upgrade_cost
            end
            else if dirty_elsewhere then begin
              st.c2c <- st.c2c + 1;
              cfg.c2c_cost
            end
            else begin
              st.misses <- st.misses + 1;
              if entry.sharers <> 0 then cfg.upgrade_cost + cfg.miss_cost
              else cfg.miss_cost
            end
          in
          st.invalidations <-
            st.invalidations + invalidate_others t entry cpu;
          insert_copy t line entry cpu;
          entry.dirty <- cpu;
          fetch_cost
        end
  in
  st.stall_cycles <- st.stall_cycles + cost;
  (match t.trace with
  | Some f -> f ~cpu ~addr:a kind ~cost
  | None -> ());
  cost
  end

let stats t ~cpu = t.cpus.(cpu).st

let total_stats t =
  let acc = fresh_stats () in
  Array.iter
    (fun pc ->
      let s = pc.st in
      acc.loads <- acc.loads + s.loads;
      acc.stores <- acc.stores + s.stores;
      acc.rmws <- acc.rmws + s.rmws;
      acc.hits <- acc.hits + s.hits;
      acc.misses <- acc.misses + s.misses;
      acc.c2c <- acc.c2c + s.c2c;
      acc.upgrades <- acc.upgrades + s.upgrades;
      acc.invalidations <- acc.invalidations + s.invalidations;
      acc.evictions <- acc.evictions + s.evictions;
      acc.stall_cycles <- acc.stall_cycles + s.stall_cycles)
    t.cpus;
  acc

let reset_stats t =
  Array.iter
    (fun pc ->
      let s = pc.st in
      s.loads <- 0;
      s.stores <- 0;
      s.rmws <- 0;
      s.hits <- 0;
      s.misses <- 0;
      s.c2c <- 0;
      s.upgrades <- 0;
      s.invalidations <- 0;
      s.evictions <- 0;
      s.stall_cycles <- 0)
    t.cpus

let set_trace t f = t.trace <- f

let holders t a =
  let line = a lsr t.line_shift in
  match Hashtbl.find_opt t.lines line with
  | None -> []
  | Some e ->
      let rec go c acc =
        if c < 0 then acc
        else go (c - 1) (if e.sharers land bit c <> 0 then c :: acc else acc)
      in
      go (t.cfg.ncpus - 1) []

let dirty_owner t a =
  let line = a lsr t.line_shift in
  match Hashtbl.find_opt t.lines line with
  | None -> None
  | Some e -> if e.dirty >= 0 then Some e.dirty else None

let resident t ~cpu = t.cpus.(cpu).nresident
