lib/sim/machine.mli: Cache Config Memory
