lib/sim/config.mli:
