lib/sim/cache.ml: Array Config Hashtbl Memory Queue
