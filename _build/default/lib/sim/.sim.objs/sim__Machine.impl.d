lib/sim/machine.ml: Array Cache Config Effect Memory Printf
