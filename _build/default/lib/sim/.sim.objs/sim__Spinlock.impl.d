lib/sim/spinlock.ml: Machine Memory
