lib/sim/memory.mli:
