lib/sim/config.ml:
