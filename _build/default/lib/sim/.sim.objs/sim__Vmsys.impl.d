lib/sim/vmsys.ml: Machine
