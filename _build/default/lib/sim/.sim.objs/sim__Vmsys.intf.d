lib/sim/vmsys.mli:
