lib/sim/spinlock.mli: Memory
