lib/sim/cache.mli: Config Memory
