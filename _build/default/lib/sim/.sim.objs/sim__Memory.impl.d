lib/sim/memory.ml: Array Printf
