(** Physical-memory accountant standing in for the DYNIX VM system.

    The paper's coalesce-to-page layer returns a page's *physical* memory
    to the VM system the moment every block in the page is free, while
    retaining the virtual address range.  This module models the VM
    system's side of that contract: a bounded pool of physical pages with
    a cycle cost per grant and per reclaim.  The backing words live in
    {!Memory} regardless (we do not really unmap), so only the accounting
    and the cost are simulated — which is exactly what the benchmarks
    observe.

    Grant and reclaim must be called from inside a simulated program;
    they charge {!Machine.work}.  The VM system serialises internally, so
    callers need no extra locking (the simulated charge includes the VM
    system's own synchronisation). *)

type t

val create : total_pages:int -> grant_cost:int -> reclaim_cost:int -> t
(** @raise Invalid_argument if [total_pages <= 0] or a cost is
    negative. *)

val grant : t -> bool
(** [grant t] asks for one physical page; false when none remain. *)

val reclaim : t -> unit
(** [reclaim t] returns one physical page.
    @raise Invalid_argument if more pages are reclaimed than granted. *)

val granted : t -> int
val available : t -> int
val total_pages : t -> int
val peak_granted : t -> int
val grant_count : t -> int
val reclaim_count : t -> int
val reset_counters : t -> unit
