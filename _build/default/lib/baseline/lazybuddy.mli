(** A watermark-based lazy buddy system, after Lee & Barkley ("Design
    and evaluation of a watermark-based lazy buddy system", Performance
    Evaluation Review 17(1), 1989) — the allocator the paper's "Roads
    Not Taken" section considers and rejects for multiprocessors:

    "it requires global synchronization on each operation and fails to
    maintain good locality of reference (since each block is sent
    singly to be coalesced, rather than being sent in large groups)".

    Design (simplified but faithful in the properties the paper's
    comparison uses):

    - classic binary buddy over a power-of-two arena, classes 16 B to
      4 KiB, one global spinlock;
    - frees are {e lazy}: while a class has comfortable slack, a freed
      block is pushed {e locally free} — no buddy lookup, no bitmap
      traffic — giving buddy-quality coalescing at near-freelist speed
      on one CPU;
    - the slack rule ([slack = inuse - 2 * lazy - global], per class)
      triggers coalescing as a class's free population grows out of
      proportion: the block (and, at zero slack, one extra lazy block)
      is marked in the buddy bitmap and merged upward while its buddy
      is globally free;
    - every operation still takes the global lock and touches shared
      counters and bitmaps, which is precisely why it cannot scale —
      the property demonstrated in the benchmarks.

    Blocks are tracked in packed per-class bitmaps (set = globally
    free), so lazily-freed blocks are invisible to coalescing, as in
    the original design. *)

type t

val create : Sim.Machine.t -> t
(** Boots the buddy system owning the memory above its control
    structures (host-side). *)

val alloc : t -> bytes:int -> int
(** Simulated; 0 when no block (after splitting) can satisfy the
    request.  Requests above 4096 bytes return 0. *)

val free : t -> addr:int -> bytes:int -> unit
(** Simulated.  Lazy or coalescing per the slack rule. *)

(** {1 Host-side oracles} *)

val counters_oracle : t -> si:int -> int * int * int
(** [(inuse, lazy, global)] for a size class. *)

val largest_free_oracle : t -> int
(** Size in bytes of the largest globally-free block (what a new
    maximal allocation could get without lazy coalescing help). *)

val total_free_words_oracle : t -> int
(** Lazy + global free words across all classes. *)
