(** Uniform handle over the four allocators the paper benchmarks, so the
    experiment harness can drive any of them through one interface.

    Each [create_*] boots the corresponding allocator into a machine's
    memory (use a fresh machine per allocator — they each assume they
    own the address space). *)

type t = {
  name : string;
  alloc : bytes:int -> int;
      (** simulated; returns 0 on memory exhaustion *)
  free : addr:int -> bytes:int -> unit;  (** simulated *)
}

type which =
  | Cookie
  | Newkma
  | Mk
  | Oldkma
  | Lazybuddy
      (** the Lee–Barkley watermark lazy buddy from the paper's "Roads
          Not Taken" (an extension: not one of Figure 7's four traces) *)

val all : which list
(** The paper's four Figure 7 traces, in legend order ([Lazybuddy] is
    extra and not included). *)

val name_of : which -> string
val of_name : string -> which option

val create : which -> Sim.Machine.t -> t
(** [create which machine] boots allocator [which] in [machine].  For
    [Cookie] the returned [alloc]/[free] use a per-size cookie cache, so
    every size the benchmark touches pays the translation only once —
    the paper's compile-time-size usage. *)
