lib/baseline/mk.ml: Array Config Machine Memory Sim Spinlock
