lib/baseline/lazybuddy.ml: Array Config Machine Memory Sim Spinlock
