lib/baseline/oldkma.ml: Config Machine Memory Sim Spinlock
