lib/baseline/oldkma.mli: Sim
