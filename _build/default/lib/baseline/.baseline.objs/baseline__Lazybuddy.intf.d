lib/baseline/lazybuddy.mli: Sim
