lib/baseline/allocator.ml: Array Kma Lazybuddy Mk Oldkma Sim
