lib/baseline/allocator.mli: Sim
