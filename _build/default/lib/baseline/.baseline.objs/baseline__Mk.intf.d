lib/baseline/mk.mli: Sim
