type t = {
  name : string;
  alloc : bytes:int -> int;
  free : addr:int -> bytes:int -> unit;
}

type which = Cookie | Newkma | Mk | Oldkma | Lazybuddy

let all = [ Cookie; Newkma; Mk; Oldkma ]

let name_of = function
  | Cookie -> "cookie"
  | Newkma -> "newkma"
  | Mk -> "mk"
  | Oldkma -> "oldkma"
  | Lazybuddy -> "lazybuddy"

let of_name = function
  | "cookie" -> Some Cookie
  | "newkma" -> Some Newkma
  | "mk" -> Some Mk
  | "oldkma" -> Some Oldkma
  | "lazybuddy" -> Some Lazybuddy
  | _ -> None

let auto_params machine =
  Kma.Params.auto
    ~memory_words:(Sim.Machine.config machine).Sim.Config.memory_words

let create_cookie machine =
  let kmem = Kma.Kmem.create machine ~params:(auto_params machine) () in
  (* One cookie per size class, resolved host-side: the paper's
     compile-time-size usage. *)
  let p = Kma.Kmem.params kmem in
  let cookies =
    Array.map
      (fun bytes -> Kma.Cookie.of_bytes_host kmem ~bytes)
      p.Kma.Params.sizes_bytes
  in
  let cookie_for bytes =
    match Kma.Params.size_index_of_bytes p bytes with
    | Some si -> Some cookies.(si)
    | None -> None
  in
  {
    name = "cookie";
    alloc =
      (fun ~bytes ->
        match cookie_for bytes with
        | Some c -> ( match Kma.Cookie.try_alloc kmem c with Some a -> a | None -> 0)
        | None -> ( match Kma.Kmem.try_alloc kmem ~bytes with Some a -> a | None -> 0));
    free =
      (fun ~addr ~bytes ->
        match cookie_for bytes with
        | Some c -> Kma.Cookie.free kmem c addr
        | None -> Kma.Kmem.free kmem ~addr ~bytes);
  }

let create_newkma machine =
  let kmem = Kma.Kmem.create machine ~params:(auto_params machine) () in
  {
    name = "newkma";
    alloc =
      (fun ~bytes ->
        match Kma.Kmem.try_alloc kmem ~bytes with Some a -> a | None -> 0);
    free = (fun ~addr ~bytes -> Kma.Kmem.free kmem ~addr ~bytes);
  }

let create_mk machine =
  let mk = Mk.create machine in
  {
    name = "mk";
    alloc = (fun ~bytes -> Mk.alloc mk ~bytes);
    free = (fun ~addr ~bytes -> Mk.free_sized mk ~addr ~bytes);
  }

let create_oldkma machine =
  let o = Oldkma.create machine in
  {
    name = "oldkma";
    alloc = (fun ~bytes -> Oldkma.alloc o ~bytes);
    free = (fun ~addr ~bytes -> Oldkma.free_sized o ~addr ~bytes);
  }

let create_lazybuddy machine =
  let b = Lazybuddy.create machine in
  {
    name = "lazybuddy";
    alloc = (fun ~bytes -> Lazybuddy.alloc b ~bytes);
    free = (fun ~addr ~bytes -> Lazybuddy.free b ~addr ~bytes);
  }

let create which machine =
  match which with
  | Cookie -> create_cookie machine
  | Newkma -> create_newkma machine
  | Mk -> create_mk machine
  | Oldkma -> create_oldkma machine
  | Lazybuddy -> create_lazybuddy machine
