(** The previous-generation DYNIX general-purpose allocator ("oldkma"),
    which the paper describes as resembling Stephenson's Fast Fits
    (algorithm "S" in Korn & Vo's survey).

    We implement it as a first-fit boundary-tag allocator with immediate
    coalescing on free, under one global spinlock — the defining
    properties the paper's comparison rests on: every operation is
    globally serialized, touches shared boundary tags and freelist
    links, and performs split/merge work on each call.

    Two cost features reproduce the measured behaviour of the original
    (the paper's analysis of [allocb]/[freeb] found 300+ off-chip
    accesses per operation, some to uncacheable device registers, and a
    fixed code sequence of several hundred cycles):

    - each operation charges a fixed straight-line cost ([w_fixed])
      calibrated against the paper's no-miss timings;
    - each operation updates event counters in the machine's uncacheable
      region (when one is configured), as the historical allocator did.

    Unlike MK, oldkma {e does} coalesce, so it completes the worst-case
    benchmark — just slowly. *)

type t

val w_fixed : int
(** Fixed straight-line charge per operation (calibration constant; see
    EXPERIMENTS.md). *)

val stats_touches : int
(** Uncacheable counter updates per operation. *)

val create : Sim.Machine.t -> t
(** Boots the allocator owning the memory above its control words and
    below the uncacheable region (host-side). *)

val alloc : t -> bytes:int -> int
(** Simulated; 0 on exhaustion. *)

val free : t -> addr:int -> unit
(** Simulated; the size is recovered from the boundary tag. *)

val free_sized : t -> addr:int -> bytes:int -> unit

val free_words_oracle : t -> int
(** Total words in free blocks (host-side; test oracle). *)
