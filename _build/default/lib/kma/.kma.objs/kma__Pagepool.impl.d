lib/kma/pagepool.ml: Array Ctx Freelist Kstats Layout List Machine Memory Params Sim Vmblk
