lib/kma/kmem.mli: Ctx Kstats Layout Params Sim
