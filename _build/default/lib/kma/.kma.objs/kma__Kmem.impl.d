lib/kma/kmem.ml: Array Ctx Global Kstats Layout Machine Memory Pagepool Params Percpu Sim Spinlock Vmblk Vmsys
