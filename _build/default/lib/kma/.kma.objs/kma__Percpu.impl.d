lib/kma/percpu.ml: Array Ctx Freelist Global Kstats Layout Machine Memory Params Printf Sim
