lib/kma/vmblk.mli: Ctx
