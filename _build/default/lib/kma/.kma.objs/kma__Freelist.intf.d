lib/kma/freelist.mli: Sim
