lib/kma/ctx.mli: Kstats Layout Params Sim
