lib/kma/layout.mli: Params Sim
