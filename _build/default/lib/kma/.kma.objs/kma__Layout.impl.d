lib/kma/layout.ml: Array Params Printf Sim
