lib/kma/pagepool.mli: Ctx
