lib/kma/kstats.mli: Format
