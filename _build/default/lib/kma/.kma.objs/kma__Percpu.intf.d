lib/kma/percpu.mli: Ctx
