lib/kma/objcache.ml: Cookie Kmem Layout Machine Params Sim
