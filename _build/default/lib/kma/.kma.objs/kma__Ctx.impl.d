lib/kma/ctx.ml: Kstats Layout Sim
