lib/kma/cookie.mli: Kmem
