lib/kma/kstats.ml: Array Float Format
