lib/kma/global.mli: Ctx
