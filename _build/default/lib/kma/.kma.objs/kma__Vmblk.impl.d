lib/kma/vmblk.ml: Ctx Kstats Layout List Machine Memory Params Sim Vmsys
