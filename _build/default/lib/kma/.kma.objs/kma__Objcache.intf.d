lib/kma/objcache.mli: Kmem
