lib/kma/params.mli:
