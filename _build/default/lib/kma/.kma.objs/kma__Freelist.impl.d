lib/kma/freelist.ml: Machine Memory Sim
