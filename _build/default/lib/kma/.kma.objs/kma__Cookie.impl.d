lib/kma/cookie.ml: Array Ctx Kmem Machine Params Percpu Printf Sim
