lib/kma/params.ml: Array Option
