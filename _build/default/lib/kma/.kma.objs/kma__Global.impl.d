lib/kma/global.ml: Array Ctx Freelist Kstats Layout Machine Memory Pagepool Params Sim
