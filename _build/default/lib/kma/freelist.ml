open Sim

let link = 0
let next_list = 1
let count = 2

let push ~head a =
  Machine.write (a + link) (Machine.read head);
  Machine.write head a

let pop ~head =
  let a = Machine.read head in
  if a <> 0 then Machine.write head (Machine.read (a + link));
  a

let take_n ~head ~n =
  let rec go acc taken =
    if taken >= n then (acc, taken)
    else
      let a = pop ~head in
      if a = 0 then (acc, taken)
      else begin
        Machine.write (a + link) acc;
        go a (taken + 1)
      end
  in
  go 0 0

let iter_chain h f =
  let rec go a =
    if a <> 0 then begin
      let next = Machine.read (a + link) in
      f a ~next;
      go next
    end
  in
  go h

let length_oracle mem h =
  let rec go a n =
    if a = 0 then n
    else if n > 1_000_000 then
      invalid_arg "Kma.Freelist.length_oracle: probable cycle"
    else go (Memory.get mem (a + link)) (n + 1)
  in
  go h 0
