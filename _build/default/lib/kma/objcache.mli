(** Constructed-object caches over [kmem_alloc] — the paper's
    special-purpose-allocator story taken one step further.

    The paper notes that ad-hoc allocators remain useful "when the
    structures being allocated are subject to some complex but reusable
    initialization", and that such allocators should reuse the
    general-purpose allocator's code.  An object cache does exactly
    that: objects are obtained from {!Kmem} (through a pre-resolved
    {!Cookie}) and constructed once; on release they return to a small
    per-CPU cache of {e still-constructed} objects, so the constructor
    runs only when the cache is cold.  Overflow destructs and returns
    memory to [kmem], keeping the system's coalescing guarantees.
    (This is the design later popularised as the slab allocator's
    object cache, which cites this paper's per-CPU caching.)

    The per-CPU cache lives in simulated memory, allocated from [kmem]
    itself; constructors and destructors are simulated code (their
    writes are charged). *)

type t

val create :
  Kmem.t ->
  bytes:int ->
  ctor:(int -> unit) ->
  ?dtor:(int -> unit) ->
  ?target:int ->
  unit ->
  t option
(** [create kmem ~bytes ~ctor ()] builds an object cache (simulated;
    allocates its control block from [kmem]).  [ctor addr] must leave
    the object at [addr] fully constructed; [dtor] (default none) runs
    before memory goes back to [kmem].  [target] (default 8) bounds
    each per-CPU cache.  [None] if memory is exhausted.

    @raise Invalid_argument if [bytes] exceeds the largest size class
    or [target < 1]. *)

val alloc : t -> int
(** [alloc t] returns a constructed object: from the current CPU's
    cache without running the constructor, or freshly from [kmem] plus
    one [ctor] call.  0 on memory exhaustion. *)

val release : t -> int -> unit
(** [release t addr] returns an object.  The caller must have restored
    the constructed invariants ([ctor]'s contract); the object is NOT
    re-constructed on reuse.  Overflow runs [dtor] and frees to
    [kmem]. *)

val destroy : t -> unit
(** [destroy t] destructs and frees every cached object and the control
    block (simulated; run once, on one CPU, with no objects live). *)

(** {1 Host-side statistics} *)

val ctor_calls : t -> int
val reuses : t -> int
(** Allocations served without running the constructor. *)
