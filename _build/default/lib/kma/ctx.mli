(** Shared allocator context threaded through every layer.

    Created once at boot by {!Kmem.create}; the layer modules
    ({!Percpu}, {!Global}, {!Pagepool}, {!Vmblk}) keep all their mutable
    state in simulated memory and use this record only for the machine
    handle, the layout constants, the lock handles and the host-side
    instrumentation. *)

type t = {
  machine : Sim.Machine.t;
  layout : Layout.t;
  vmsys : Sim.Vmsys.t;
  stats : Kstats.t;
  glocks : Sim.Spinlock.t array;  (** per-size global-layer locks *)
  plocks : Sim.Spinlock.t array;  (** per-size coalesce-to-page locks *)
  vlock : Sim.Spinlock.t;  (** coalesce-to-vmblk lock *)
}

val memory : t -> Sim.Memory.t
val params : t -> Params.t
