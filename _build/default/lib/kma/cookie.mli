(** The cookie fast-path interface.

    [kmem_alloc_get_cookie] translates a request size into an opaque
    cookie once; the [KMEM_ALLOC_COOKIE] / [KMEM_FREE_COOKIE] macro
    expansions then reach the proper per-CPU cache directly, skipping
    the function call and the size-to-class table lookup of the standard
    interface.  A warm cookie allocation or free retires exactly 13
    simulated instructions (the paper's 80x86 count; experiment E2).

    Cookies are only valid for sizes up to the largest managed class —
    exactly the compile-time-size use case the paper describes. *)

type t
(** An opaque cookie: pre-resolved size-class information. *)

val get : Kmem.t -> bytes:int -> t
(** [get kmem ~bytes] is [kmem_alloc_get_cookie]: performs the charged
    size translation once (simulated).
    @raise Invalid_argument if [bytes] is not coverable by a size class. *)

val of_bytes_host : Kmem.t -> bytes:int -> t
(** Host-side cookie construction, for cookies a real kernel would have
    baked in at compile time. *)

val size_index : t -> int
val bytes : Kmem.t -> t -> int
(** Block size of the cookie's class. *)

val alloc : Kmem.t -> t -> int
(** [alloc kmem c] is [KMEM_ALLOC_COOKIE]: 13 instructions warm.
    @raise Kmem.Kmem_exhausted on exhaustion. *)

val try_alloc : Kmem.t -> t -> int option

val free : Kmem.t -> t -> int -> unit
(** [free kmem c a] is [KMEM_FREE_COOKIE]: 13 instructions warm. *)
