type t = {
  machine : Sim.Machine.t;
  layout : Layout.t;
  vmsys : Sim.Vmsys.t;
  stats : Kstats.t;
  glocks : Sim.Spinlock.t array;
  plocks : Sim.Spinlock.t array;
  vlock : Sim.Spinlock.t;
}

let memory t = Sim.Machine.memory t.machine
let params t = t.layout.Layout.params
