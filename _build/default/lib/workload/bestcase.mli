(** The paper's best-case benchmark: a per-CPU loop of
    [kmem_alloc]/[kmem_free] pairs on one block size, exercising only
    the per-CPU caching layer once warm.

    The paper implements this as a timed system call invoked from a
    user program pinned to each CPU; we run a fixed iteration count per
    CPU and divide by the elapsed virtual time.  The loop itself is
    charged [loop_overhead] cycles per iteration — the paper notes the
    measurement loop "amounts to as much as 40% for the faster
    algorithms". *)

val loop_overhead : int

type result = {
  ncpus : int;
  pairs : int;  (** total alloc/free pairs across CPUs *)
  cycles : int;  (** elapsed virtual cycles *)
  pairs_per_sec : float;
}

val run :
  which:Baseline.Allocator.which ->
  ncpus:int ->
  iters:int ->
  bytes:int ->
  ?config:Sim.Config.t ->
  unit ->
  result
(** [run ~which ~ncpus ~iters ~bytes ()] builds a fresh [ncpus]-CPU
    machine, boots the allocator, warms each CPU's caches with
    [iters/10 + 1] untimed pairs, then times [iters] pairs per CPU.  The
    provided [config]'s [ncpus] field is overridden. *)

val run_timed :
  which:Baseline.Allocator.which ->
  ncpus:int ->
  duration_cycles:int ->
  bytes:int ->
  ?config:Sim.Config.t ->
  unit ->
  result
(** [run_timed] follows the paper's methodology exactly: each CPU loops
    until [duration_cycles] of virtual time have passed and the pairs
    completed are counted — the shape of the original timed system
    call. *)
