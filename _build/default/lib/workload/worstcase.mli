(** The paper's worst-case benchmark (Figure 9).

    A script of [syscall_kma]/[syscall_kmf] equivalents: for each block
    size in turn, allocate blocks until memory is exhausted (keeping
    them on a linked list threaded through the blocks, as the paper's
    kernel system call does), then free them all, then move to the next
    size.  This exercises every layer on nearly every operation — the
    worst possible per-allocation overhead.

    An allocator that cannot coalesce wedges after the first size; the
    new allocator completes every size with neither reboots nor
    delays.  Frees of small blocks cost more than allocations because
    each free must eventually map its block address to a per-page
    freelist. *)

type size_result = {
  bytes : int;
  blocks : int;  (** blocks obtained before exhaustion *)
  alloc_cycles : int;
  free_cycles : int;
  allocs_per_sec : float;
  frees_per_sec : float;
  pairs_per_sec : float;
      (** harmonic combination: pairs completed per second *)
}

val run :
  which:Baseline.Allocator.which ->
  ?config:Sim.Config.t ->
  ?sizes:int array ->
  ?cap:int ->
  unit ->
  size_result list
(** [run ~which ()] sweeps the paper's nine sizes on one CPU of a fresh
    machine.  [cap] bounds the blocks per size (0 = none) to keep big
    simulations tractable.  A size that yields zero blocks reports
    zeroed rates — how MK's wedging shows up. *)
