(** The paper's cyclic commercial workload: data entry and queries by
    day (huge numbers of small blocks tracking database locking),
    backups and reorganisation by night (massive amounts of memory in
    large blocks).

    The design-goal test this drives: after the day phase frees its
    small blocks, the allocator's online coalescing must hand the
    memory back so the night phase's large allocations succeed — with
    no offline pass and no reboot. *)

type result = {
  day_allocs : int;
  night_allocs : int;  (** successful large allocations at night *)
  night_failures : int;
  day_peak_pages : int;  (** physical pages held at the end of the day *)
  night_pages : int;  (** physical pages held at night's peak *)
  cycles : int;
}

val run :
  which:Baseline.Allocator.which ->
  ?config:Sim.Config.t ->
  ?days:int ->
  ?day_ops:int ->
  ?night_blocks:int ->
  ?seed:int ->
  unit ->
  result option
(** [run ~which ()] simulates [days] day/night cycles on one CPU.
    Returns [None] for allocators without a physical-page oracle (the
    baselines), whose page accounting cannot be read — callers compare
    allocator completion instead. *)

val run_kmem :
  ?config:Sim.Config.t ->
  ?days:int ->
  ?day_ops:int ->
  ?night_blocks:int ->
  ?seed:int ->
  ?params:Kma.Params.t ->
  unit ->
  result
(** The instrumented run on the new allocator, with page accounting. *)
