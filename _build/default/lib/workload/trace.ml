type event = Alloc of { id : int; bytes : int } | Free of { id : int }
type t = event list

let default_mix =
  [|
    (30, 16); (25, 32); (15, 64); (10, 128); (8, 256); (6, 512); (4, 1024);
    (1, 2048); (1, 4096);
  |]

let synthesize ?(seed = 13) ?(live_window = 64) ?(size_mix = default_mix)
    ~ops () =
  let rng = Prng.create ~seed in
  let live = ref [] in
  let nlive = ref 0 in
  let next_id = ref 0 in
  let events = ref [] in
  for _ = 1 to ops do
    if
      !nlive >= live_window
      || (!nlive > 0 && Prng.int rng ~bound:100 < 40)
    then begin
      (* Free a pseudo-random live id (not always the newest, so the
         trace exercises out-of-order frees). *)
      let n = Prng.int rng ~bound:!nlive in
      let id = List.nth !live n in
      live := List.filter (fun x -> x <> id) !live;
      decr nlive;
      events := Free { id } :: !events
    end
    else begin
      let id = !next_id in
      incr next_id;
      let bytes = Prng.weighted rng size_mix in
      live := id :: !live;
      incr nlive;
      events := Alloc { id; bytes } :: !events
    end
  done;
  List.iter (fun id -> events := Free { id } :: !events) !live;
  List.rev !events

let validate t =
  let live = Hashtbl.create 64 in
  let seen = Hashtbl.create 64 in
  let rec go = function
    | [] ->
        if Hashtbl.length live = 0 then Ok ()
        else Error (Printf.sprintf "%d ids never freed" (Hashtbl.length live))
    | Alloc { id; bytes } :: rest ->
        if Hashtbl.mem seen id then
          Error (Printf.sprintf "id %d allocated twice" id)
        else if bytes <= 0 then Error (Printf.sprintf "id %d: bytes <= 0" id)
        else begin
          Hashtbl.add seen id ();
          Hashtbl.add live id ();
          go rest
        end
    | Free { id } :: rest ->
        if not (Hashtbl.mem live id) then
          Error (Printf.sprintf "id %d freed while not live" id)
        else begin
          Hashtbl.remove live id;
          go rest
        end
  in
  go t

let to_string t =
  let b = Buffer.create 1024 in
  List.iter
    (fun e ->
      match e with
      | Alloc { id; bytes } -> Buffer.add_string b (Printf.sprintf "a %d %d\n" id bytes)
      | Free { id } -> Buffer.add_string b (Printf.sprintf "f %d\n" id))
    t;
  Buffer.contents b

let of_string s =
  let lines = String.split_on_char '\n' s in
  let rec go acc n = function
    | [] -> Ok (List.rev acc)
    | "" :: rest -> go acc (n + 1) rest
    | line :: rest -> (
        match String.split_on_char ' ' line with
        | [ "a"; id; bytes ] -> (
            match (int_of_string_opt id, int_of_string_opt bytes) with
            | Some id, Some bytes -> go (Alloc { id; bytes } :: acc) (n + 1) rest
            | _ -> Error (Printf.sprintf "line %d: bad alloc" n))
        | [ "f"; id ] -> (
            match int_of_string_opt id with
            | Some id -> go (Free { id } :: acc) (n + 1) rest
            | None -> Error (Printf.sprintf "line %d: bad free" n))
        | _ -> Error (Printf.sprintf "line %d: unparseable %S" n line))
  in
  go [] 1 lines

type result = { ops : int; failures : int; cycles : int }

let replay t (a : Baseline.Allocator.t) =
  let addr_of = Hashtbl.create 256 in
  let bytes_of = Hashtbl.create 256 in
  let failures = ref 0 in
  let ops = ref 0 in
  let t0 = Sim.Machine.now () in
  List.iter
    (fun e ->
      incr ops;
      match e with
      | Alloc { id; bytes } ->
          let addr = a.Baseline.Allocator.alloc ~bytes in
          if addr = 0 then incr failures
          else begin
            Hashtbl.replace addr_of id addr;
            Hashtbl.replace bytes_of id bytes
          end
      | Free { id } -> (
          match Hashtbl.find_opt addr_of id with
          | Some addr ->
              a.Baseline.Allocator.free ~addr
                ~bytes:(Hashtbl.find bytes_of id);
              Hashtbl.remove addr_of id
          | None -> () (* its allocation failed: skip *)))
    t;
  { ops = !ops; failures = !failures; cycles = Sim.Machine.now () - t0 }

let record (a : Baseline.Allocator.t) f =
  let events = ref [] in
  let next_id = ref 0 in
  let id_of = Hashtbl.create 256 in
  let wrapped =
    {
      Baseline.Allocator.name = a.Baseline.Allocator.name ^ "+trace";
      alloc =
        (fun ~bytes ->
          let addr = a.Baseline.Allocator.alloc ~bytes in
          if addr <> 0 then begin
            let id = !next_id in
            incr next_id;
            Hashtbl.replace id_of addr id;
            events := Alloc { id; bytes } :: !events
          end;
          addr);
      free =
        (fun ~addr ~bytes ->
          (match Hashtbl.find_opt id_of addr with
          | Some id ->
              Hashtbl.remove id_of addr;
              events := Free { id } :: !events
          | None -> ());
          a.Baseline.Allocator.free ~addr ~bytes);
    }
  in
  f wrapped;
  List.rev !events
