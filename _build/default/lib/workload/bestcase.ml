let loop_overhead = 20

type result = {
  ncpus : int;
  pairs : int;
  cycles : int;
  pairs_per_sec : float;
}

let pair (a : Baseline.Allocator.t) ~bytes =
  Sim.Machine.work loop_overhead;
  let addr = a.Baseline.Allocator.alloc ~bytes in
  assert (addr <> 0);
  a.Baseline.Allocator.free ~addr ~bytes

(* The paper's methodology: a system call loops until a user-specified
   length of time has passed and reports how many pairs it completed.
   Warm-up runs untimed, then each CPU works until its virtual clock
   passes the deadline. *)
let run_timed ~which ~ncpus ~duration_cycles ~bytes ?config () =
  let m, a = Rig.fresh which ?config ~ncpus () in
  Sim.Machine.run_symmetric m ~ncpus (fun _ ->
      for _ = 1 to 50 do
        pair a ~bytes
      done);
  Sim.Machine.reset_clocks m;
  let counts = Array.make ncpus 0 in
  Sim.Machine.run_symmetric m ~ncpus (fun cpu ->
      while Sim.Machine.now () < duration_cycles do
        pair a ~bytes;
        counts.(cpu) <- counts.(cpu) + 1
      done);
  let cycles = Sim.Machine.elapsed m in
  let pairs = Array.fold_left ( + ) 0 counts in
  {
    ncpus;
    pairs;
    cycles;
    pairs_per_sec = Rig.pairs_per_sec (Sim.Machine.config m) ~pairs ~cycles;
  }

let run ~which ~ncpus ~iters ~bytes ?config () =
  let m, a = Rig.fresh which ?config ~ncpus () in
  let warmup = (iters / 10) + 1 in
  Sim.Machine.run_symmetric m ~ncpus (fun _ ->
      for _ = 1 to warmup do
        pair a ~bytes
      done);
  Sim.Machine.reset_clocks m;
  Sim.Machine.run_symmetric m ~ncpus (fun _ ->
      for _ = 1 to iters do
        pair a ~bytes
      done);
  let cycles = Sim.Machine.elapsed m in
  let pairs = ncpus * iters in
  {
    ncpus;
    pairs;
    cycles;
    pairs_per_sec =
      Rig.pairs_per_sec (Sim.Machine.config m) ~pairs ~cycles;
  }
