type size_result = {
  bytes : int;
  blocks : int;
  alloc_cycles : int;
  free_cycles : int;
  allocs_per_sec : float;
  frees_per_sec : float;
  pairs_per_sec : float;
}

let default_sizes = [| 16; 32; 64; 128; 256; 512; 1024; 2048; 4096 |]

let run ~which ?config ?(sizes = default_sizes) ?(cap = 0) () =
  let m, a = Rig.fresh which ?config ~ncpus:1 () in
  let cfg = Sim.Machine.config m in
  let results = ref [] in
  Sim.Machine.run m
    [|
      (fun _ ->
        Array.iter
          (fun bytes ->
            let t0 = Sim.Machine.now () in
            (* syscall_kma: allocate until exhaustion, threading the
               blocks into a list through their first word. *)
            let rec fill head n =
              if cap > 0 && n >= cap then (head, n)
              else
                let addr = a.Baseline.Allocator.alloc ~bytes in
                if addr = 0 then (head, n)
                else begin
                  Sim.Machine.write addr head;
                  fill addr (n + 1)
                end
            in
            let head, blocks = fill 0 0 in
            let t1 = Sim.Machine.now () in
            (* syscall_kmf: free the whole list. *)
            let rec drain addr =
              if addr <> 0 then begin
                let next = Sim.Machine.read addr in
                a.Baseline.Allocator.free ~addr ~bytes;
                drain next
              end
            in
            drain head;
            let t2 = Sim.Machine.now () in
            let alloc_cycles = t1 - t0 and free_cycles = t2 - t1 in
            let rate pairs cycles = Rig.pairs_per_sec cfg ~pairs ~cycles in
            results :=
              {
                bytes;
                blocks;
                alloc_cycles;
                free_cycles;
                allocs_per_sec = rate blocks alloc_cycles;
                frees_per_sec = rate blocks free_cycles;
                pairs_per_sec = rate blocks (alloc_cycles + free_cycles);
              }
              :: !results)
          sizes);
    |];
  List.rev !results
