type t = { mutable state : int }

(* A splitmix-style mixer adapted to OCaml's 63-bit native ints (the
   canonical 64-bit constants do not fit); multiplications wrap.  Good
   enough for workload generation, and fully deterministic. *)
let gamma = 0x2545F4914F6CDD1D
let m1 = 0x2F58476D1CE4E5B9
let m2 = 0x14D049BB133111EB

let create ~seed = { state = seed lxor gamma }

let next t =
  t.state <- t.state + gamma;
  let z = t.state in
  let z = (z lxor (z lsr 30)) * m1 in
  let z = (z lxor (z lsr 27)) * m2 in
  (z lxor (z lsr 31)) land max_int

let split t = { state = next t }

let int t ~bound =
  if bound <= 0 then invalid_arg "Workload.Prng.int: bound <= 0";
  next t mod bound

let bool t = next t land 1 = 1

let pick t arr =
  if Array.length arr = 0 then invalid_arg "Workload.Prng.pick: empty";
  arr.(int t ~bound:(Array.length arr))

let weighted t choices =
  let total =
    Array.fold_left
      (fun acc (w, _) ->
        if w < 0 then invalid_arg "Workload.Prng.weighted: negative weight";
        acc + w)
      0 choices
  in
  if total = 0 then invalid_arg "Workload.Prng.weighted: zero total weight";
  let r = int t ~bound:total in
  let rec go i acc =
    let w, v = choices.(i) in
    if r < acc + w then v else go (i + 1) (acc + w)
  in
  go 0 0
