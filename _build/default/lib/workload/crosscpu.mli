(** Producer/consumer workload: one set of CPUs allocates blocks and
    pushes them through a shared ring in simulated memory; the others
    pop and free them.

    This is the pattern the global layer exists for ("one CPU allocates
    buffers of a given size, which are then passed to other CPUs that
    free them") — freed buffers flow back to the allocating CPU through
    the global layer without coalescing overhead. *)

type result = {
  ncpus : int;
  transfers : int;  (** blocks produced, consumed and freed *)
  cycles : int;
  transfers_per_sec : float;
}

val run :
  which:Baseline.Allocator.which ->
  pairs:int ->
  blocks_per_pair:int ->
  ?bytes:int ->
  ?config:Sim.Config.t ->
  unit ->
  result
(** [run ~which ~pairs ~blocks_per_pair ()] uses [2 * pairs] CPUs: even
    CPUs produce, odd CPUs consume via a per-pair ring. *)
