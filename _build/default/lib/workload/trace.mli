(** Allocation traces: record, synthesise, serialise and replay
    alloc/free event streams against any allocator.

    The paper's evaluation ran live workloads; allocator research since
    has standardised on traces so that one workload can be replayed
    bit-for-bit against competing allocators.  A trace is a sequence of
    events over abstract object ids; replay maps ids to whatever
    addresses the allocator under test returns.

    Traces serialise to a plain text format (one event per line,
    [a <id> <bytes>] or [f <id>]) for storage and exchange. *)

type event = Alloc of { id : int; bytes : int } | Free of { id : int }
type t = event list

val synthesize :
  ?seed:int ->
  ?live_window:int ->
  ?size_mix:(int * int) array ->
  ops:int ->
  unit ->
  t
(** [synthesize ~ops ()] builds a well-formed trace: every [Free] names
    a live id, and everything left live is freed at the end (so
    replaying leaves the allocator empty).  [size_mix] weights request
    sizes (defaults to the kernel-ish mix of {!Mixed}). *)

val validate : t -> (unit, string) result
(** [validate t] checks trace well-formedness: no double allocation of
    an id, no free of a dead id, and every id freed by the end. *)

val to_string : t -> string
val of_string : string -> (t, string) result

type result = {
  ops : int;
  failures : int;  (** allocations the allocator could not satisfy *)
  cycles : int;
}

val replay : t -> Baseline.Allocator.t -> result
(** [replay t a] runs the trace on the current simulated CPU.  A failed
    allocation counts in [failures] and its id stays dead (its [Free]
    is skipped). *)

val record :
  Baseline.Allocator.t -> (Baseline.Allocator.t -> unit) -> t
(** [record a f] runs [f] with a wrapped allocator handle and returns
    the trace of what [f] did (in execution order, suitable for
    {!replay}).  Must run on a simulated CPU like any allocator
    traffic. *)
