type result = {
  ncpus : int;
  ops : int;
  cycles : int;
  ops_per_sec : float;
  failures : int;
}

(* Kernel-ish size mix: mostly small tracking structures, occasional
   page-sized buffers. *)
let size_mix =
  [|
    (30, 16); (25, 32); (15, 64); (10, 128); (8, 256); (6, 512); (4, 1024);
    (1, 2048); (1, 4096);
  |]

let run ~which ~ncpus ~ops_per_cpu ?config ?(seed = 7) ?(live_window = 64)
    () =
  let m, a = Rig.fresh which ?config ~ncpus () in
  let failures = Array.make ncpus 0 in
  let ops = Array.make ncpus 0 in
  let root = Prng.create ~seed in
  let rngs = Array.init ncpus (fun _ -> Prng.split root) in
  Sim.Machine.run_symmetric m ~ncpus (fun cpu ->
      let rng = rngs.(cpu) in
      let live = Queue.create () in
      let free_one () =
        match Queue.take_opt live with
        | Some (addr, bytes) ->
            a.Baseline.Allocator.free ~addr ~bytes;
            ops.(cpu) <- ops.(cpu) + 1
        | None -> ()
      in
      for _ = 1 to ops_per_cpu do
        if Queue.length live >= live_window || (Queue.length live > 0 && Prng.int rng ~bound:100 < 40)
        then free_one ()
        else begin
          let bytes = Prng.weighted rng size_mix in
          let addr = a.Baseline.Allocator.alloc ~bytes in
          ops.(cpu) <- ops.(cpu) + 1;
          if addr = 0 then failures.(cpu) <- failures.(cpu) + 1
          else Queue.add (addr, bytes) live
        end
      done;
      while Queue.length live > 0 do
        free_one ()
      done);
  let cycles = Sim.Machine.elapsed m in
  let total_ops = Array.fold_left ( + ) 0 ops in
  {
    ncpus;
    ops = total_ops;
    cycles;
    ops_per_sec =
      Rig.pairs_per_sec (Sim.Machine.config m) ~pairs:total_ops ~cycles;
    failures = Array.fold_left ( + ) 0 failures;
  }
