let paper_config ?(memory_words = 2 * 1024 * 1024) ~ncpus () =
  Sim.Config.make ~ncpus ~memory_words ~cache_lines:256 ~uncached_words:512
    ()

let fresh which ?config ~ncpus () =
  let cfg =
    match config with
    | Some c -> { c with Sim.Config.ncpus }
    | None -> paper_config ~ncpus ()
  in
  Sim.Config.validate cfg;
  let m = Sim.Machine.create cfg in
  (m, Baseline.Allocator.create which m)

let pairs_per_sec cfg ~pairs ~cycles =
  if cycles = 0 then 0.
  else float_of_int pairs /. Sim.Config.seconds_of_cycles cfg cycles
