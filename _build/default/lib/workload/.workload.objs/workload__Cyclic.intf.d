lib/workload/cyclic.mli: Baseline Kma Sim
