lib/workload/worstcase.mli: Baseline Sim
