lib/workload/cyclic.ml: Baseline Kma List Option Prng Rig Sim
