lib/workload/bestcase.mli: Baseline Sim
