lib/workload/prng.mli:
