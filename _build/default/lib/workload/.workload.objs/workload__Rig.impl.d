lib/workload/rig.ml: Baseline Sim
