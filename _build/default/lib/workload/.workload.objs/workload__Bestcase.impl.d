lib/workload/bestcase.ml: Array Baseline Rig Sim
