lib/workload/mixed.ml: Array Baseline Prng Queue Rig Sim
