lib/workload/crosscpu.ml: Baseline Machine Rig Sim
