lib/workload/rig.mli: Baseline Sim
