lib/workload/crosscpu.mli: Baseline Sim
