lib/workload/trace.ml: Baseline Buffer Hashtbl List Printf Prng Sim String
