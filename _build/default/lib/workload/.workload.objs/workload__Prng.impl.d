lib/workload/prng.ml: Array
