lib/workload/worstcase.ml: Array Baseline List Rig Sim
