lib/workload/trace.mli: Baseline
