lib/workload/mixed.mli: Baseline Sim
