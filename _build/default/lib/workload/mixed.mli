(** A mixed multi-CPU workload: random sizes (weighted toward small
    blocks, as kernel traffic is), random lifetimes, per-CPU random
    streams.  Sits between the best-case and worst-case benchmarks, as
    the paper says real applications do. *)

type result = {
  ncpus : int;
  ops : int;  (** total allocations plus frees *)
  cycles : int;
  ops_per_sec : float;
  failures : int;  (** allocation failures (memory pressure) *)
}

val run :
  which:Baseline.Allocator.which ->
  ncpus:int ->
  ops_per_cpu:int ->
  ?config:Sim.Config.t ->
  ?seed:int ->
  ?live_window:int ->
  unit ->
  result
(** [run ~which ~ncpus ~ops_per_cpu ()] drives each CPU through
    [ops_per_cpu] operations; at most [live_window] blocks are live per
    CPU (oldest freed first beyond that), and everything is freed at
    the end. *)
