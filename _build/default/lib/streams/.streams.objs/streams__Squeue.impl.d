lib/streams/squeue.ml: Baseline Buf Machine Msg Sim
