lib/streams/squeue.mli: Buf
