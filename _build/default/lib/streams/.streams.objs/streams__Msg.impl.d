lib/streams/msg.ml: Kma Sim
