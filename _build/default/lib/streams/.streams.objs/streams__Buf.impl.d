lib/streams/buf.ml: Baseline Kma Machine Msg Sim
