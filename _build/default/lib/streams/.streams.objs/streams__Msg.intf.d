lib/streams/msg.mli: Sim
