lib/streams/buf.mli: Baseline
