(** STREAMS message structures in simulated memory.

    A message is a chain of message blocks ([mblk]); each points at a
    data block ([dblk]) that owns a data buffer.  Several message blocks
    may reference one data block ([dupb]), with a reference count in the
    dblk — exactly the three-structure layout [allocb] must assemble,
    which the paper uses to motivate reusable special-purpose
    allocators.

    Field offsets are in words from the structure base.

    Message block (8 words, 32 bytes): [b_next]/[b_prev] link messages
    on a queue, [b_cont] links blocks of one message, [b_rptr]/[b_wptr]
    bound the valid data, [b_datap] points at the data block.

    Data block (8 words, 32 bytes): [db_base]/[db_lim] bound the buffer,
    [db_ref] is the reference count, [db_type] the message type
    ([m_data], [m_proto] or [m_ctl]). *)

val mblk_bytes : int
val b_next : int
val b_prev : int
val b_cont : int
val b_rptr : int
val b_wptr : int
val b_datap : int

val dblk_bytes : int
val db_base : int
val db_lim : int
val db_ref : int
val db_type : int

val m_data : int
val m_proto : int
val m_ctl : int

val buf_bytes_of_dblk_oracle : Sim.Memory.t -> int -> int
(** [buf_bytes_of_dblk_oracle mem dblk] recovers the buffer size in
    bytes from the dblk's base/limit words (host-side). *)
