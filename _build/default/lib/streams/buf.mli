(** STREAMS buffer allocation: [allocb], [freeb] and the message
    utilities, over any of the benchmarked allocators.

    This is the special-purpose allocator of the paper's analysis
    section, reusing the general-purpose allocator at the binary level
    exactly as the paper prescribes ("special-purpose allocators such as
    allocb invoke the same functions as does the general-purpose
    kmem_alloc allocator").

    All functions run on a simulated CPU.  Word addresses; a returned 0
    means allocation failure. *)

type t

val create : Baseline.Allocator.t -> t
(** [create a] builds the buffer subsystem over allocator [a]
    (host-side). *)

val allocator : t -> Baseline.Allocator.t

val allocb : t -> bytes:int -> int
(** [allocb t ~bytes] allocates a message capable of holding [bytes]
    data bytes: message block + data block + buffer, linked and
    initialised with read/write pointers at the buffer start.  Returns
    the mblk address, or 0 (releasing partial allocations). *)

val freeb : t -> int -> unit
(** [freeb t mblk] frees one message block; the data block and buffer go
    too when the reference count drops to zero. *)

val dupb : t -> int -> int
(** [dupb t mblk] allocates a second message block sharing the data
    block (reference count incremented); 0 on failure. *)

val linkb : t -> int -> int -> unit
(** [linkb t msg tail] appends [tail] to [msg]'s continuation chain. *)

val unlinkb : t -> int -> int
(** [unlinkb t msg] detaches and returns the continuation of [msg]
    (0 if none). *)

val freemsg : t -> int -> unit
(** [freemsg t msg] frees every block of the message chain. *)

val msgdsize : t -> int -> int
(** [msgdsize t msg] is the number of data bytes in the message
    (sum of wptr - rptr over the chain). *)

val copymsg : t -> int -> int
(** [copymsg t msg] deep-copies a message, buffers included; 0 on
    failure (partial copies released). *)

val pullupmsg : t -> int -> int
(** [pullupmsg t msg] concatenates the whole chain into one new
    single-block message and frees the original; returns the new mblk or
    0 on failure (original preserved). *)

(** {1 Data access (simulated)} *)

val put_byte_word : t -> int -> int -> unit
(** [put_byte_word t mblk v] appends one data word [v] at the write
    pointer (asserts capacity). *)

val get_byte_word : t -> int -> int
(** [get_byte_word t mblk] consumes one data word at the read pointer
    (asserts availability). *)
