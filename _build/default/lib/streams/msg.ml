let mblk_bytes = 32
let b_next = 0
let b_prev = 1
let b_cont = 2
let b_rptr = 3
let b_wptr = 4
let b_datap = 5

let dblk_bytes = 32
let db_base = 0
let db_lim = 1
let db_ref = 2
let db_type = 3

let m_data = 0
let m_proto = 1
let m_ctl = 2

let buf_bytes_of_dblk_oracle mem dblk =
  (Sim.Memory.get mem (dblk + db_lim) - Sim.Memory.get mem (dblk + db_base))
  * Kma.Params.bytes_per_word
