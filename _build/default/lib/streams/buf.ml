open Sim

type t = { a : Baseline.Allocator.t }

let create a = { a }
let allocator t = t.a

let bpw = Kma.Params.bytes_per_word

let round_buf_bytes bytes = max 16 ((bytes + bpw - 1) / bpw * bpw)

let alloc t ~bytes = t.a.Baseline.Allocator.alloc ~bytes
let dealloc t ~addr ~bytes = t.a.Baseline.Allocator.free ~addr ~bytes

let allocb t ~bytes =
  let buf_bytes = round_buf_bytes bytes in
  let mblk = alloc t ~bytes:Msg.mblk_bytes in
  if mblk = 0 then 0
  else begin
    let dblk = alloc t ~bytes:Msg.dblk_bytes in
    if dblk = 0 then begin
      dealloc t ~addr:mblk ~bytes:Msg.mblk_bytes;
      0
    end
    else begin
      let buf = alloc t ~bytes:buf_bytes in
      if buf = 0 then begin
        dealloc t ~addr:dblk ~bytes:Msg.dblk_bytes;
        dealloc t ~addr:mblk ~bytes:Msg.mblk_bytes;
        0
      end
      else begin
        Machine.write (mblk + Msg.b_next) 0;
        Machine.write (mblk + Msg.b_prev) 0;
        Machine.write (mblk + Msg.b_cont) 0;
        Machine.write (mblk + Msg.b_rptr) buf;
        Machine.write (mblk + Msg.b_wptr) buf;
        Machine.write (mblk + Msg.b_datap) dblk;
        Machine.write (dblk + Msg.db_base) buf;
        Machine.write (dblk + Msg.db_lim) (buf + (buf_bytes / bpw));
        Machine.write (dblk + Msg.db_ref) 1;
        Machine.write (dblk + Msg.db_type) Msg.m_data;
        mblk
      end
    end
  end

let freeb t mblk =
  let dblk = Machine.read (mblk + Msg.b_datap) in
  let refcnt = Machine.read (dblk + Msg.db_ref) in
  if refcnt > 1 then Machine.write (dblk + Msg.db_ref) (refcnt - 1)
  else begin
    let base = Machine.read (dblk + Msg.db_base) in
    let lim = Machine.read (dblk + Msg.db_lim) in
    dealloc t ~addr:base ~bytes:((lim - base) * bpw);
    dealloc t ~addr:dblk ~bytes:Msg.dblk_bytes
  end;
  dealloc t ~addr:mblk ~bytes:Msg.mblk_bytes

let dupb t mblk =
  let m2 = alloc t ~bytes:Msg.mblk_bytes in
  if m2 = 0 then 0
  else begin
    let dblk = Machine.read (mblk + Msg.b_datap) in
    Machine.write (m2 + Msg.b_next) 0;
    Machine.write (m2 + Msg.b_prev) 0;
    Machine.write (m2 + Msg.b_cont) 0;
    Machine.write (m2 + Msg.b_rptr) (Machine.read (mblk + Msg.b_rptr));
    Machine.write (m2 + Msg.b_wptr) (Machine.read (mblk + Msg.b_wptr));
    Machine.write (m2 + Msg.b_datap) dblk;
    Machine.write (dblk + Msg.db_ref) (Machine.read (dblk + Msg.db_ref) + 1);
    m2
  end

let rec last_block mblk =
  let cont = Machine.read (mblk + Msg.b_cont) in
  if cont = 0 then mblk else last_block cont

let linkb _t msg tail = Machine.write (last_block msg + Msg.b_cont) tail

let unlinkb _t msg =
  let cont = Machine.read (msg + Msg.b_cont) in
  Machine.write (msg + Msg.b_cont) 0;
  cont

let rec freemsg t msg =
  if msg <> 0 then begin
    let cont = Machine.read (msg + Msg.b_cont) in
    freeb t msg;
    freemsg t cont
  end

let msgdsize _t msg =
  let rec go mblk acc =
    if mblk = 0 then acc
    else
      let dblk = Machine.read (mblk + Msg.b_datap) in
      let acc =
        if Machine.read (dblk + Msg.db_type) = Msg.m_data then
          acc
          + (Machine.read (mblk + Msg.b_wptr)
             - Machine.read (mblk + Msg.b_rptr))
            * bpw
        else acc
      in
      go (Machine.read (mblk + Msg.b_cont)) acc
  in
  go msg 0

(* Copy the readable words of [src]'s buffer into a fresh block. *)
let copyb t src =
  let rptr = Machine.read (src + Msg.b_rptr) in
  let wptr = Machine.read (src + Msg.b_wptr) in
  let dblk = Machine.read (src + Msg.b_datap) in
  let base = Machine.read (dblk + Msg.db_base) in
  let lim = Machine.read (dblk + Msg.db_lim) in
  let dst = allocb t ~bytes:((lim - base) * bpw) in
  if dst = 0 then 0
  else begin
    let dbuf = Machine.read (dst + Msg.b_rptr) in
    for i = 0 to wptr - rptr - 1 do
      Machine.write (dbuf + i) (Machine.read (rptr + i))
    done;
    Machine.write (dst + Msg.b_wptr) (dbuf + (wptr - rptr));
    dst
  end

let copymsg t msg =
  let rec go src =
    if src = 0 then 0
    else
      let dst = copyb t src in
      if dst = 0 then 0 (* caller releases what was built *)
      else begin
        let rest = go (Machine.read (src + Msg.b_cont)) in
        if rest = 0 && Machine.read (src + Msg.b_cont) <> 0 then begin
          freeb t dst;
          0
        end
        else begin
          Machine.write (dst + Msg.b_cont) rest;
          dst
        end
      end
  in
  go msg

let pullupmsg t msg =
  let total = msgdsize t msg in
  let dst = allocb t ~bytes:total in
  if dst = 0 then 0
  else begin
    let dbuf = Machine.read (dst + Msg.b_rptr) in
    let cursor = ref dbuf in
    let rec copy mblk =
      if mblk <> 0 then begin
        let rptr = Machine.read (mblk + Msg.b_rptr) in
        let wptr = Machine.read (mblk + Msg.b_wptr) in
        for i = 0 to wptr - rptr - 1 do
          Machine.write (!cursor + i) (Machine.read (rptr + i))
        done;
        cursor := !cursor + (wptr - rptr);
        copy (Machine.read (mblk + Msg.b_cont))
      end
    in
    copy msg;
    Machine.write (dst + Msg.b_wptr) !cursor;
    freemsg t msg;
    dst
  end

let put_byte_word _t mblk v =
  let wptr = Machine.read (mblk + Msg.b_wptr) in
  let dblk = Machine.read (mblk + Msg.b_datap) in
  assert (wptr < Machine.read (dblk + Msg.db_lim));
  Machine.write wptr v;
  Machine.write (mblk + Msg.b_wptr) (wptr + 1)

let get_byte_word _t mblk =
  let rptr = Machine.read (mblk + Msg.b_rptr) in
  assert (rptr < Machine.read (mblk + Msg.b_wptr));
  let v = Machine.read rptr in
  Machine.write (mblk + Msg.b_rptr) (rptr + 1);
  v
