open Sim

(* Queue record (32 bytes): lock(0) head(1) tail(2) count(3). *)
let q_bytes = 32
let q_lock = 0
let q_head = 1
let q_tail = 2
let q_count = 3

type t = { buf : Buf.t; base : int }

let create buf =
  let a = Buf.allocator buf in
  let base = a.Baseline.Allocator.alloc ~bytes:q_bytes in
  if base = 0 then None
  else begin
    Machine.write (base + q_lock) 0;
    Machine.write (base + q_head) 0;
    Machine.write (base + q_tail) 0;
    Machine.write (base + q_count) 0;
    Some { buf; base }
  end

(* The spinlock word lives inside the allocated record; build a handle
   around it without re-initialising (init is boot-time only). *)
let with_q_lock t f =
  let lock_addr = t.base + q_lock in
  (* Jittered test-and-set; see Sim.Spinlock.acquire for why the
     simulation spins on the atomic itself. *)
  let rec acquire () =
    if not (Machine.cas lock_addr ~expected:0 ~desired:1) then begin
      Machine.spin_pause ();
      acquire ()
    end
  in
  acquire ();
  let v = f () in
  Machine.write lock_addr 0;
  v

let putq t msg =
  Machine.write (msg + Msg.b_next) 0;
  with_q_lock t (fun () ->
      let tail = Machine.read (t.base + q_tail) in
      if tail = 0 then Machine.write (t.base + q_head) msg
      else Machine.write (tail + Msg.b_next) msg;
      Machine.write (msg + Msg.b_prev) tail;
      Machine.write (t.base + q_tail) msg;
      Machine.write (t.base + q_count)
        (Machine.read (t.base + q_count) + 1))

let getq t =
  with_q_lock t (fun () ->
      let head = Machine.read (t.base + q_head) in
      if head = 0 then 0
      else begin
        let next = Machine.read (head + Msg.b_next) in
        Machine.write (t.base + q_head) next;
        if next = 0 then Machine.write (t.base + q_tail) 0
        else Machine.write (next + Msg.b_prev) 0;
        Machine.write (t.base + q_count)
          (Machine.read (t.base + q_count) - 1);
        Machine.write (head + Msg.b_next) 0;
        head
      end)

let length t = Machine.read (t.base + q_count)

let destroy t =
  let rec drain () =
    let m = getq t in
    if m <> 0 then begin
      Buf.freemsg t.buf m;
      drain ()
    end
  in
  drain ();
  let a = Buf.allocator t.buf in
  a.Baseline.Allocator.free ~addr:t.base ~bytes:q_bytes
