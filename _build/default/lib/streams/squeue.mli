(** A STREAMS message queue: the [putq]/[getq] pair that moves messages
    between stream modules, safe across simulated CPUs.

    The queue structure (lock, head, tail, count) lives in a block
    allocated from the underlying allocator, so queue traffic exercises
    the allocator's cross-CPU path exactly the way a protocol stack
    does. *)

type t

val create : Buf.t -> t option
(** [create buf] allocates and initialises a queue (simulated); [None]
    on allocation failure. *)

val putq : t -> int -> unit
(** [putq q msg] appends a message (by its first mblk) to the queue. *)

val getq : t -> int
(** [getq q] removes and returns the oldest message, or 0 if empty. *)

val length : t -> int
(** [length q] reads the queue's count (simulated). *)

val destroy : t -> unit
(** [destroy q] frees any queued messages and the queue structure. *)
