open Sim

type mode = NL | CR | CW | PR | PW | EX

let all_modes = [| NL; CR; CW; PR; PW; EX |]

let mode_index = function
  | NL -> 0
  | CR -> 1
  | CW -> 2
  | PR -> 3
  | PW -> 4
  | EX -> 5

let mode_of_index = function
  | 0 -> NL
  | 1 -> CR
  | 2 -> CW
  | 3 -> PR
  | 4 -> PW
  | 5 -> EX
  | i -> invalid_arg (Printf.sprintf "Dlm.mode_of_index: %d" i)

(* The standard DLM compatibility matrix, rows/columns in
   NL CR CW PR PW EX order. *)
let compat_matrix =
  [|
    [| true; true; true; true; true; true |];
    [| true; true; true; true; true; false |];
    [| true; true; true; false; false; false |];
    [| true; true; false; true; false; false |];
    [| true; true; false; false; false; false |];
    [| true; false; false; false; false; false |];
  |]

let compatible a b = compat_matrix.(mode_index a).(mode_index b)

type status = Granted | Waiting

(* Resource table: one 4096-byte block = 512 buckets x (lock, head).
   Resource block (64 bytes = 16 words):
     0 id  1 next  2 grant-list head  3 wait-queue head  4 wait tail
     5..10 granted count per mode  11 total locks
   Lock block (32 bytes = 8 words):
     0 resource  1 next  2 mode  3 status  4 client *)

let table_bytes = 4096
let nbuckets = 512
let rsb_bytes = 64
let lkb_bytes = 32

let r_id = 0
let r_next = 1
let r_grant = 2
let r_wait_head = 3
let r_wait_tail = 4
let r_counts = 5
let r_nlocks = 11

let l_resource = 0
let l_next = 1
let l_mode = 2
let l_status = 3
let l_client = 4

let st_granted = 1
let st_waiting = 2

type t = {
  a : Baseline.Allocator.t;
  table : int;
  mutable nresources : int;
  mutable nlocks : int;
}

let create a =
  let table = a.Baseline.Allocator.alloc ~bytes:table_bytes in
  if table = 0 then None
  else begin
    for i = 0 to (2 * nbuckets) - 1 do
      Machine.write (table + i) 0
    done;
    Some { a; table; nresources = 0; nlocks = 0 }
  end

let bucket_of t ~resource =
  (* Multiplicative hash; the bucket holds [lock, head]. *)
  let h = resource * 0x9E3779B1 land max_int in
  t.table + (h mod nbuckets * 2)

let with_bucket bucket f =
  let lock_addr = bucket in
  (* Jittered test-and-set; see Sim.Spinlock.acquire. *)
  let rec acquire () =
    if not (Machine.cas lock_addr ~expected:0 ~desired:1) then begin
      Machine.spin_pause ();
      acquire ()
    end
  in
  acquire ();
  let v = f () in
  Machine.write lock_addr 0;
  v

(* --- resource lookup/creation (bucket lock held) --- *)

let find_resource bucket ~resource =
  let rec go rsb =
    if rsb = 0 then 0
    else if Machine.read (rsb + r_id) = resource then rsb
    else go (Machine.read (rsb + r_next))
  in
  go (Machine.read (bucket + 1))

let make_resource t bucket ~resource =
  let rsb = t.a.Baseline.Allocator.alloc ~bytes:rsb_bytes in
  if rsb = 0 then 0
  else begin
    Machine.write (rsb + r_id) resource;
    Machine.write (rsb + r_next) (Machine.read (bucket + 1));
    Machine.write (rsb + r_grant) 0;
    Machine.write (rsb + r_wait_head) 0;
    Machine.write (rsb + r_wait_tail) 0;
    for i = 0 to 5 do
      Machine.write (rsb + r_counts + i) 0
    done;
    Machine.write (rsb + r_nlocks) 0;
    Machine.write (bucket + 1) rsb;
    t.nresources <- t.nresources + 1;
    rsb
  end

let drop_resource t bucket rsb =
  let rec unlink prev cur =
    if cur = rsb then
      if prev = 0 then Machine.write (bucket + 1) (Machine.read (cur + r_next))
      else Machine.write (prev + r_next) (Machine.read (cur + r_next))
    else unlink cur (Machine.read (cur + r_next))
  in
  unlink 0 (Machine.read (bucket + 1));
  t.a.Baseline.Allocator.free ~addr:rsb ~bytes:rsb_bytes;
  t.nresources <- t.nresources - 1

(* Is [mode] compatible with everything currently granted on [rsb]? *)
let grantable rsb ~mode =
  let rec go i =
    if i > 5 then true
    else if
      Machine.read (rsb + r_counts + i) > 0
      && not (compatible mode (mode_of_index i))
    then false
    else go (i + 1)
  in
  go 0

let add_granted rsb lkb ~mode =
  Machine.write (lkb + l_status) st_granted;
  Machine.write (lkb + l_next) (Machine.read (rsb + r_grant));
  Machine.write (rsb + r_grant) lkb;
  let c = rsb + r_counts + mode_index mode in
  Machine.write c (Machine.read c + 1)

let enqueue_waiter rsb lkb =
  Machine.write (lkb + l_status) st_waiting;
  Machine.write (lkb + l_next) 0;
  let tail = Machine.read (rsb + r_wait_tail) in
  if tail = 0 then Machine.write (rsb + r_wait_head) lkb
  else Machine.write (tail + l_next) lkb;
  Machine.write (rsb + r_wait_tail) lkb

let new_lkb t rsb ~mode ~client =
  let lkb = t.a.Baseline.Allocator.alloc ~bytes:lkb_bytes in
  if lkb = 0 then 0
  else begin
    Machine.write (lkb + l_resource) rsb;
    Machine.write (lkb + l_mode) (mode_index mode);
    Machine.write (lkb + l_client) client;
    Machine.write (rsb + r_nlocks) (Machine.read (rsb + r_nlocks) + 1);
    t.nlocks <- t.nlocks + 1;
    lkb
  end

let request t ~resource ~mode ~client ~enqueue =
  let bucket = bucket_of t ~resource in
  with_bucket bucket (fun () ->
      let rsb =
        match find_resource bucket ~resource with
        | 0 -> make_resource t bucket ~resource
        | rsb -> rsb
      in
      if rsb = 0 then 0
      else if grantable rsb ~mode then begin
        let lkb = new_lkb t rsb ~mode ~client in
        if lkb <> 0 then add_granted rsb lkb ~mode;
        lkb
      end
      else if enqueue then begin
        let lkb = new_lkb t rsb ~mode ~client in
        if lkb <> 0 then enqueue_waiter rsb lkb;
        lkb
      end
      else begin
        (* Resource may have been created just for this failed probe;
           drop it again if it carries no locks. *)
        if Machine.read (rsb + r_nlocks) = 0 then drop_resource t bucket rsb;
        0
      end)

let lock t ~resource ~mode ~client = request t ~resource ~mode ~client ~enqueue:true
let try_lock t ~resource ~mode ~client =
  request t ~resource ~mode ~client ~enqueue:false

let remove_from_list rsb ~head_off lkb =
  let rec unlink prev cur =
    assert (cur <> 0);
    if cur = lkb then
      if prev = 0 then
        Machine.write (rsb + head_off) (Machine.read (cur + l_next))
      else Machine.write (prev + l_next) (Machine.read (cur + l_next))
    else unlink cur (Machine.read (cur + l_next))
  in
  unlink 0 (Machine.read (rsb + head_off))

(* Promote FIFO waiters that have become grantable (bucket lock held). *)
let grant_waiters rsb =
  let rec go lkb prev_kept =
    if lkb <> 0 then begin
      let next = Machine.read (lkb + l_next) in
      let mode = mode_of_index (Machine.read (lkb + l_mode)) in
      if grantable rsb ~mode then begin
        (* Detach from the wait queue and grant. *)
        if prev_kept = 0 then Machine.write (rsb + r_wait_head) next
        else Machine.write (prev_kept + l_next) next;
        if Machine.read (rsb + r_wait_tail) = lkb then
          Machine.write (rsb + r_wait_tail) prev_kept;
        add_granted rsb lkb ~mode;
        go next prev_kept
      end
      else go next lkb
    end
  in
  go (Machine.read (rsb + r_wait_head)) 0

let release_lkb t rsb lkb ~was_granted =
  if was_granted then begin
    let mi = Machine.read (lkb + l_mode) in
    remove_from_list rsb ~head_off:r_grant lkb;
    let c = rsb + r_counts + mi in
    Machine.write c (Machine.read c - 1)
  end
  else begin
    (* Waiting: unlink from the wait queue, fixing the tail. *)
    let rec find_prev prev cur =
      if cur = lkb then prev else find_prev cur (Machine.read (cur + l_next))
    in
    let prev = find_prev 0 (Machine.read (rsb + r_wait_head)) in
    if prev = 0 then
      Machine.write (rsb + r_wait_head) (Machine.read (lkb + l_next))
    else Machine.write (prev + l_next) (Machine.read (lkb + l_next));
    if Machine.read (rsb + r_wait_tail) = lkb then
      Machine.write (rsb + r_wait_tail) prev
  end;
  t.a.Baseline.Allocator.free ~addr:lkb ~bytes:lkb_bytes;
  t.nlocks <- t.nlocks - 1;
  Machine.write (rsb + r_nlocks) (Machine.read (rsb + r_nlocks) - 1);
  grant_waiters rsb;
  if Machine.read (rsb + r_nlocks) = 0 then begin
    let bucket = bucket_of t ~resource:(Machine.read (rsb + r_id)) in
    drop_resource t bucket rsb
  end

let unlock t lkb =
  let rsb = Machine.read (lkb + l_resource) in
  let bucket = bucket_of t ~resource:(Machine.read (rsb + r_id)) in
  with_bucket bucket (fun () ->
      assert (Machine.read (lkb + l_status) = st_granted);
      release_lkb t rsb lkb ~was_granted:true)

let cancel t lkb =
  let rsb = Machine.read (lkb + l_resource) in
  let bucket = bucket_of t ~resource:(Machine.read (rsb + r_id)) in
  with_bucket bucket (fun () ->
      assert (Machine.read (lkb + l_status) = st_waiting);
      release_lkb t rsb lkb ~was_granted:false)

let status _t lkb =
  if Machine.read (lkb + l_status) = st_granted then Granted else Waiting

let convert t lkb ~mode =
  let rsb = Machine.read (lkb + l_resource) in
  let bucket = bucket_of t ~resource:(Machine.read (rsb + r_id)) in
  with_bucket bucket (fun () ->
      assert (Machine.read (lkb + l_status) = st_granted);
      let old_mi = Machine.read (lkb + l_mode) in
      (* Check compatibility against the *other* granted locks: remove
         our own count first. *)
      let c_old = rsb + r_counts + old_mi in
      Machine.write c_old (Machine.read c_old - 1);
      if grantable rsb ~mode then begin
        Machine.write (lkb + l_mode) (mode_index mode);
        let c_new = rsb + r_counts + mode_index mode in
        Machine.write c_new (Machine.read c_new + 1);
        (* A downconvert may unblock waiters. *)
        grant_waiters rsb;
        true
      end
      else begin
        Machine.write c_old (Machine.read c_old + 1);
        false
      end)

let resources_oracle t = t.nresources
let locks_oracle t = t.nlocks
