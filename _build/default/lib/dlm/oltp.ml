open Workload

type result = {
  ncpus : int;
  transactions : int;
  grants : int;
  rejects : int;
  cycles : int;
}

let mode_mix =
  [| (50, Lockmgr.PR); (20, Lockmgr.CR); (15, Lockmgr.PW); (10, Lockmgr.EX);
     (5, Lockmgr.CW) |]

(* Transaction scratch records, as the paper's lock manager tracks
   requests and ownership: a 512-byte request record, small per-lock
   annotations, and 256-byte lock-request messages passed to the
   resource-master CPU (the cross-CPU flow the global layer exists
   for). *)
let tx_record_bytes = 512
let note_bytes = 48
let msg_bytes = 256

(* Per-CPU incoming-message ring, allocated from the allocator itself:
   a lock (rings have multiple producers), head and tail counters, then
   slots. *)
let ring_slots = 32
let ring_bytes = 4096

let ring_lock ring = ring
let ring_head ring = ring + 1
let ring_tail ring = ring + 2
let ring_slot ring i = ring + 16 + (i mod ring_slots)

let with_ring ring f =
  (* Jittered test-and-set; see Sim.Spinlock.acquire. *)
  let rec acquire () =
    if not (Sim.Machine.cas (ring_lock ring) ~expected:0 ~desired:1) then begin
      Sim.Machine.spin_pause ();
      acquire ()
    end
  in
  acquire ();
  let v = f () in
  Sim.Machine.write (ring_lock ring) 0;
  v

let run ~kmem ~ncpus ~transactions_per_cpu ?(resources = 4096) ?(seed = 11)
    () =
  let m = Kma.Kmem.machine kmem in
  let a =
    {
      Baseline.Allocator.name = "newkma";
      alloc =
        (fun ~bytes ->
          match Kma.Kmem.try_alloc kmem ~bytes with
          | Some x -> x
          | None -> 0);
      free = (fun ~addr ~bytes -> Kma.Kmem.free kmem ~addr ~bytes);
    }
  in
  let grants = Array.make ncpus 0 in
  let rejects = Array.make ncpus 0 in
  let txs = Array.make ncpus 0 in
  let root = Prng.create ~seed in
  let rngs = Array.init ncpus (fun _ -> Prng.split root) in
  let dlm_cell = ref None in
  let rings = Array.make ncpus 0 in
  Sim.Machine.run m
    (Array.init ncpus (fun _ cpu ->
         (* CPU 0 builds the lock manager; everyone allocates their
            inbound ring, publishes it, and waits for the full set. *)
         if cpu = 0 then begin
           match Lockmgr.create a with
           | Some d -> dlm_cell := Some d
           | None -> raise Kma.Kmem.Kmem_exhausted
         end;
         let ring = a.Baseline.Allocator.alloc ~bytes:ring_bytes in
         if ring = 0 then raise Kma.Kmem.Kmem_exhausted;
         Sim.Machine.write (ring_lock ring) 0;
         Sim.Machine.write (ring_head ring) 0;
         Sim.Machine.write (ring_tail ring) 0;
         rings.(cpu) <- ring;
         (* Handshake: count ready CPUs in a scratch word. *)
         ignore (Sim.Machine.fetch_add 16 1);
         while Sim.Machine.read 16 < ncpus do
           Sim.Machine.spin_pause ()
         done;
         let d = Option.get !dlm_cell in
         let rng = rngs.(cpu) in
         (* Deferred frees: batches retired a few transactions later,
            so the live set oscillates past the per-CPU cache bound. *)
         let deferred = Queue.create () in
         let drain_deferred ~now =
           let rec go () =
             match Queue.peek_opt deferred with
             | Some (due, batch) when due <= now ->
                 ignore (Queue.pop deferred);
                 List.iter
                   (fun (addr, bytes) ->
                     a.Baseline.Allocator.free ~addr ~bytes)
                   batch;
                 go ()
             | Some _ | None -> ()
           in
           go ()
         in
         (* Consume lock-request messages sent by other CPUs: the
            cross-CPU free path. *)
         let my_ring = rings.(cpu) in
         let consume_messages () =
           let pending =
             with_ring my_ring (fun () ->
                 let head = Sim.Machine.read (ring_head my_ring) in
                 let tail = Sim.Machine.read (ring_tail my_ring) in
                 let msgs = ref [] in
                 for i = tail to head - 1 do
                   msgs := Sim.Machine.read (ring_slot my_ring i) :: !msgs
                 done;
                 if head > tail then
                   Sim.Machine.write (ring_tail my_ring) head;
                 !msgs)
           in
           List.iter
             (fun addr -> a.Baseline.Allocator.free ~addr ~bytes:msg_bytes)
             pending
         in
         let send_message ~dst =
           let msg = a.Baseline.Allocator.alloc ~bytes:msg_bytes in
           if msg <> 0 then begin
             Sim.Machine.write msg cpu;
             let ring = rings.(dst) in
             let accepted =
               with_ring ring (fun () ->
                   let head = Sim.Machine.read (ring_head ring) in
                   let tail = Sim.Machine.read (ring_tail ring) in
                   if head - tail >= ring_slots then false
                   else begin
                     Sim.Machine.write (ring_slot ring head) msg;
                     Sim.Machine.write (ring_head ring) (head + 1);
                     true
                   end)
             in
             (* Ring full: the request is serviced locally. *)
             if not accepted then
               a.Baseline.Allocator.free ~addr:msg ~bytes:msg_bytes
           end
         in
         for tx_i = 1 to transactions_per_cpu do
           drain_deferred ~now:tx_i;
           consume_messages ();
           (* A transaction journals 1-3 request records. *)
           let ntx = 1 + Prng.int rng ~bound:3 in
           let txrecs =
             List.init ntx (fun _ ->
                 a.Baseline.Allocator.alloc ~bytes:tx_record_bytes)
           in
           let nlocks = 2 + Prng.int rng ~bound:4 in
           let held = ref [] in
           let batch = ref [] in
           for _ = 1 to nlocks do
             let resource = Prng.int rng ~bound:resources in
             let mode = Prng.weighted rng mode_mix in
             (* A remote resource master gets a lock-request message. *)
             if ncpus > 1 && Prng.int rng ~bound:100 < 50 then begin
               let dst = Prng.int rng ~bound:ncpus in
               if dst <> cpu then send_message ~dst
             end;
             match Lockmgr.try_lock d ~resource ~mode ~client:cpu with
             | 0 -> rejects.(cpu) <- rejects.(cpu) + 1
             | lkb ->
                 grants.(cpu) <- grants.(cpu) + 1;
                 (* Annotate the grant, as a real DLM records
                    ownership. *)
                 let note = a.Baseline.Allocator.alloc ~bytes:note_bytes in
                 if note <> 0 then begin
                   Sim.Machine.write note lkb;
                   Sim.Machine.write (note + 1) resource;
                   batch := (note, note_bytes) :: !batch
                 end;
                 held := lkb :: !held
           done;
           (* The transaction body touches its records. *)
           List.iter
             (fun tx ->
               if tx <> 0 then begin
                 for w = 0 to 15 do
                   Sim.Machine.write (tx + (w * 8)) w
                 done;
                 batch := (tx, tx_record_bytes) :: !batch
               end)
             txrecs;
           List.iter (fun lkb -> Lockmgr.unlock d lkb) !held;
           (* Retire this transaction's records a few transactions from
              now: the live set breathes. *)
           Queue.add (tx_i + 1 + Prng.int rng ~bound:16, !batch) deferred;
           txs.(cpu) <- txs.(cpu) + 1
         done;
         (* Wind down.  Nobody may free a ring while another CPU might
            still send into it: wait for every CPU to leave its
            transaction loop (second barrier on scratch word 17), then
            take the final messages and release the ring. *)
         ignore (Sim.Machine.fetch_add 17 1);
         while Sim.Machine.read 17 < ncpus do
           Sim.Machine.spin_pause ()
         done;
         drain_deferred ~now:max_int;
         consume_messages ();
         a.Baseline.Allocator.free ~addr:my_ring ~bytes:ring_bytes));
  {
    ncpus;
    transactions = Array.fold_left ( + ) 0 txs;
    grants = Array.fold_left ( + ) 0 grants;
    rejects = Array.fold_left ( + ) 0 rejects;
    cycles = Sim.Machine.elapsed m;
  }
