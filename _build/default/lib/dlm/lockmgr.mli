(** A small distributed lock manager, the paper's realistic
    kmem_alloc-heavy application ("makes heavy use of kmem_alloc in
    order to build data structures needed to track lock requests and
    ownership", serving OLTP clusters).

    Every structure — the resource hash table, resource blocks, lock
    blocks — is allocated from the system allocator under test, so an
    OLTP trace through the DLM produces exactly the allocation mix the
    paper measured miss rates with: many small short-lived blocks, a
    block frequently freed on a different CPU than allocated it
    (the last unlocker frees the resource block).

    Locking model: the six VMS/DLM modes with the standard
    compatibility matrix; per-bucket spinlocks; FIFO wait queues with
    grant-on-unlock. *)

type t

type mode = NL | CR | CW | PR | PW | EX

val compatible : mode -> mode -> bool
(** The standard DLM compatibility matrix. *)

val mode_index : mode -> int
val all_modes : mode array

type status = Granted | Waiting

val create : Baseline.Allocator.t -> t option
(** [create a] allocates the resource table (simulated); [None] if even
    that fails. *)

val lock : t -> resource:int -> mode:mode -> client:int -> int
(** [lock t ~resource ~mode ~client] requests a lock, creating the
    resource block on first touch.  Returns the lock-block address
    (status {!Granted} or {!Waiting}), or 0 if allocation failed. *)

val try_lock : t -> resource:int -> mode:mode -> client:int -> int
(** Like {!lock} but never enqueues: returns 0 when the lock cannot be
    granted immediately (or allocation fails). *)

val unlock : t -> int -> unit
(** [unlock t lkb] releases a granted lock, grants newly-compatible
    waiters FIFO, frees the lock block, and frees the resource block
    when it was the last lock. *)

val cancel : t -> int -> unit
(** [cancel t lkb] abandons a {!Waiting} request. *)

val status : t -> int -> status
(** [status t lkb] reads a lock block's state (simulated). *)

val convert : t -> int -> mode:mode -> bool
(** [convert t lkb ~mode] atomically changes a granted lock's mode if
    the new mode is compatible with the other granted locks; returns
    false (mode unchanged) otherwise. *)

(** {1 Host-side oracles} *)

val resources_oracle : t -> int
(** Number of resource blocks currently materialised. *)

val locks_oracle : t -> int
(** Number of lock blocks currently live (granted + waiting). *)
