lib/dlm/oltp.ml: Array Baseline Kma List Lockmgr Option Prng Queue Sim Workload
