lib/dlm/oltp.mli: Kma Lockmgr
