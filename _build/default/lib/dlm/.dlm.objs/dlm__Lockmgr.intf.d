lib/dlm/lockmgr.mli: Baseline
