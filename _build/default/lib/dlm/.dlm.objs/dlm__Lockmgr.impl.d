lib/dlm/lockmgr.ml: Array Baseline Machine Printf Sim
