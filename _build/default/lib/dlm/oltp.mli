(** OLTP-like transaction driver over the {!Lockmgr}.

    Each simulated CPU plays a database engine thread: a transaction
    opens a handful of locks on a shared resource space (read-heavy mode
    mix), allocates transaction-tracking records from the allocator,
    touches them, then releases everything.  The allocation mix — many
    small, short-lived blocks, with resource blocks frequently freed on
    a different CPU than created them — matches the paper's
    distributed-lock-manager benchmark, whose published result is the
    per-layer allocator miss rates (experiment E6). *)

type result = {
  ncpus : int;
  transactions : int;
  grants : int;
  rejects : int;  (** try_lock conflicts (immediately retried elsewhere) *)
  cycles : int;
}

val mode_mix : (int * Lockmgr.mode) array
(** Read-heavy OLTP mode weights. *)

val run :
  kmem:Kma.Kmem.t ->
  ncpus:int ->
  transactions_per_cpu:int ->
  ?resources:int ->
  ?seed:int ->
  unit ->
  result
(** [run ~kmem ~ncpus ~transactions_per_cpu ()] drives the workload on
    the new allocator (the configuration the paper measured) and leaves
    the allocator's per-layer counters in [Kma.Kmem.stats kmem] for the
    caller to report.  The machine inside [kmem] must have at least
    [ncpus] CPUs.

    @raise Kma.Kmem.Kmem_exhausted if the machine is too small for the
    table plus working set. *)
