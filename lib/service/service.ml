module Hist = Hist
module Pool = Objpool.Pool
module Pstats = Objpool.Pstats

let now64 () = Monotonic_clock.now ()

(* ---------------------------------------------------------------- *)
(* Request shapes: the seven scenario names from lib/scenario, re-cut
   as per-request allocation graphs over a live Pool.t.              *)

type shape =
  | Steady
  | Rpc
  | Bursty
  | Long_tail
  | Producer_consumer
  | Frag_adversary
  | Recorded_dlm

let shape_of_name = function
  | "steady" -> Some Steady
  | "rpc" -> Some Rpc
  | "bursty" -> Some Bursty
  | "long_tail" -> Some Long_tail
  | "producer_consumer" -> Some Producer_consumer
  | "frag_adversary" -> Some Frag_adversary
  | "recorded_dlm" -> Some Recorded_dlm
  | _ -> None

let shape_of_scenario name =
  match Scenario.find name with
  | None -> None
  | Some _ -> shape_of_name name

type arrival = [ `Closed | `Open_ns of int ]

type config = {
  scenario : string;
  domains : int;
  requests : int;  (* per domain *)
  seed : int;
  mode : Pool.mode;
  refill : bool;
  target : int;
  depot_batches : int;
  arrival : arrival;
  obj_bytes : int;
}

let default ~scenario =
  {
    scenario;
    domains = 2;
    requests = 100_000;
    seed = 42;
    mode = `Fixed;
    refill = false;
    target = 16;
    depot_batches = 32;
    arrival = `Closed;
    obj_bytes = 256;
  }

type domain_stat = {
  d_index : int;
  d_requests : int;
  d_p50 : float;
  d_p99 : float;
  d_p999 : float;
  d_max_ns : int;
}

type outcome = {
  o_scenario : string;
  o_mode : Pool.mode;
  o_domains : int;
  o_requests : int;  (* total, all domains *)
  o_ops : int;  (* allocs + frees through the pool *)
  o_wall_s : float;
  o_ops_per_sec : float;
  o_p50 : float;
  o_p99 : float;
  o_p999 : float;
  o_mean_ns : float;
  o_max_ns : int;
  o_stats : Pstats.snapshot;
  o_contention : float;
  o_final_target : int;
  o_final_bound : int;
  o_trajectory : Pool.adapt_event list;
  o_per_domain : domain_stat list;
}

(* ---------------------------------------------------------------- *)
(* Cross-domain free mailboxes: one Treiber-style push list per
   domain.  A producer CAS-pushes a released object onto the
   consumer's list; the consumer takes the whole list with a single
   exchange.  All pushes a domain will ever do complete before it
   decrements [active], so a final take after observing [active = 0]
   misses nothing. *)

let mailbox_push mb x =
  let rec go () =
    let old = Atomic.get mb in
    if not (Atomic.compare_and_set mb old (x :: old)) then go ()
  in
  go ()

let mailbox_take mb = Atomic.exchange mb []

(* ---------------------------------------------------------------- *)

let touch obj = Bytes.unsafe_set obj 0 'x'

type wstate = {
  rng : Workload.Prng.t;
  longlived : Bytes.t Queue.t;
  window : Bytes.t Queue.t;
}

let long_cap = 256
let pin_cap = 512
let window_cap = 8

(* One request's allocation graph.  [send] hands an object to the next
   domain's mailbox (cross-domain free); with a single domain every
   shape degenerates to local release. *)
let do_request shape pool st ~send ~can_send =
  let open Workload in
  match shape with
  | Steady ->
      let o = Pool.alloc pool in
      touch o;
      Pool.release pool o
  | Rpc ->
      let req = Pool.alloc pool in
      let resp = Pool.alloc pool in
      touch req;
      touch resp;
      Pool.release pool req;
      if can_send && Prng.int st.rng ~bound:8 = 0 then send resp
      else Pool.release pool resp
  | Bursty ->
      let k = 1 + Prng.int st.rng ~bound:8 in
      let held = ref [] in
      for _ = 1 to k do
        let o = Pool.alloc pool in
        touch o;
        held := o :: !held
      done;
      List.iter (Pool.release pool) !held
  | Long_tail ->
      let o = Pool.alloc pool in
      touch o;
      if Prng.int st.rng ~bound:100 < 12 then begin
        Queue.push o st.longlived;
        if Queue.length st.longlived > long_cap then
          Pool.release pool (Queue.pop st.longlived)
      end
      else Pool.release pool o
  | Producer_consumer ->
      let o = Pool.alloc pool in
      touch o;
      if can_send then send o else Pool.release pool o
  | Frag_adversary ->
      let a = Pool.alloc pool in
      let b = Pool.alloc pool in
      let c = Pool.alloc pool in
      let d = Pool.alloc pool in
      touch a;
      touch b;
      touch c;
      touch d;
      Pool.release pool a;
      Pool.release pool b;
      Pool.release pool c;
      Queue.push d st.longlived;
      if Queue.length st.longlived > pin_cap then
        Pool.release pool (Queue.pop st.longlived)
  | Recorded_dlm ->
      let req = Pool.alloc pool in
      let resp = Pool.alloc pool in
      touch req;
      touch resp;
      Pool.release pool req;
      Queue.push resp st.window;
      if Queue.length st.window > window_cap then begin
        let oldest = Queue.pop st.window in
        if can_send && Prng.int st.rng ~bound:4 = 0 then send oldest
        else Pool.release pool oldest
      end

let validate cfg =
  if cfg.domains < 1 then invalid_arg "Service.run: domains < 1";
  if cfg.requests < 0 then invalid_arg "Service.run: requests < 0";
  if cfg.target < 1 then invalid_arg "Service.run: target < 1";
  if cfg.depot_batches < 0 then invalid_arg "Service.run: depot_batches < 0";
  if cfg.obj_bytes < 1 then invalid_arg "Service.run: obj_bytes < 1";
  (match cfg.arrival with
  | `Open_ns m when m < 1 -> invalid_arg "Service.run: open arrival mean < 1 ns"
  | _ -> ());
  match shape_of_scenario cfg.scenario with
  | Some s -> s
  | None ->
      invalid_arg
        (Printf.sprintf "Service.run: unknown scenario %S" cfg.scenario)

let run cfg =
  let shape = validate cfg in
  let pool =
    Pool.create
      ~ctor:(fun () -> Bytes.create cfg.obj_bytes)
      ~target:cfg.target ~depot_batches:cfg.depot_batches ~mode:cfg.mode ()
  in
  let n = cfg.domains in
  let mailboxes = Array.init n (fun _ -> Atomic.make []) in
  let active = Atomic.make n in
  let stop_refill = Atomic.make false in
  let hists = Array.init n (fun _ -> Hist.create ()) in
  let reqdone = Array.make n 0 in
  let drain_mailbox di =
    match mailbox_take mailboxes.(di) with
    | [] -> ()
    | objs -> List.iter (Pool.release pool) objs
  in
  let worker di () =
    let st =
      {
        rng = Workload.Prng.create ~seed:(cfg.seed + (di * 0x9e3779b9));
        longlived = Queue.create ();
        window = Queue.create ();
      }
    in
    let can_send = n > 1 in
    let send o = mailbox_push mailboxes.((di + 1) mod n) o in
    let h = hists.(di) in
    let mean = match cfg.arrival with `Open_ns m -> m | `Closed -> 0 in
    let deadline = ref (now64 ()) in
    for _ = 1 to cfg.requests do
      let t0 =
        match cfg.arrival with
        | `Closed -> now64 ()
        | `Open_ns _ ->
            (* Open loop: latency is measured from the request's
               scheduled arrival, so queueing delay when the service
               falls behind is charged to the tail (no coordinated
               omission). *)
            let gap = Workload.Prng.int st.rng ~bound:((2 * mean) + 1) in
            deadline := Int64.add !deadline (Int64.of_int gap);
            while Int64.compare (now64 ()) !deadline < 0 do
              Domain.cpu_relax ()
            done;
            !deadline
      in
      do_request shape pool st ~send ~can_send;
      drain_mailbox di;
      Hist.add h (Int64.to_int (Int64.sub (now64 ()) t0));
      reqdone.(di) <- reqdone.(di) + 1
    done;
    (* Retire request-held state, announce completion, then keep the
       mailbox drained until every producer has stopped sending. *)
    Queue.iter (Pool.release pool) st.longlived;
    Queue.clear st.longlived;
    Queue.iter (Pool.release pool) st.window;
    Queue.clear st.window;
    Atomic.decr active;
    while Atomic.get active > 0 do
      drain_mailbox di;
      Domain.cpu_relax ()
    done;
    drain_mailbox di;
    Pool.flush_local pool
  in
  let refiller () =
    let pass () =
      let stocked = Pool.depot_batches pool in
      let bound = Pool.depot_bound pool in
      if stocked < max 1 (bound / 2) then
        ignore (Pool.refill pool ~batches:(bound - stocked))
      else Domain.cpu_relax ()
    in
    (* One unconditional stocking pass before looking at the stop flag:
       even on a single-core host where the workers can finish before
       this domain ever gets a slice, [refill:true] always stocks the
       depot at least once. *)
    pass ();
    while not (Atomic.get stop_refill) do
      pass ()
    done
  in
  let t_start = now64 () in
  let refill_dom = if cfg.refill then Some (Domain.spawn refiller) else None in
  let doms = List.init n (fun di -> Domain.spawn (worker di)) in
  List.iter Domain.join doms;
  let wall_ns = Int64.to_int (Int64.sub (now64 ()) t_start) in
  Atomic.set stop_refill true;
  Option.iter Domain.join refill_dom;
  (* Belt and braces: workers leave every mailbox empty, but sweep so
     accounting cannot leak even if a shape changes. *)
  Array.iter (fun mb -> List.iter (Pool.release pool) (mailbox_take mb)) mailboxes;
  Pool.flush_local pool;
  let stats = Pstats.read (Pool.stats pool) in
  let all = Hist.create () in
  Array.iter (fun h -> Hist.merge ~into:all h) hists;
  let per_domain =
    List.init n (fun di ->
        let h = hists.(di) in
        {
          d_index = di;
          d_requests = reqdone.(di);
          d_p50 = Hist.p50 h;
          d_p99 = Hist.p99 h;
          d_p999 = Hist.p999 h;
          d_max_ns = Hist.max_ns h;
        })
  in
  let ops = stats.Pstats.s_allocs + stats.Pstats.s_frees in
  let wall_s = float_of_int wall_ns /. 1e9 in
  {
    o_scenario = cfg.scenario;
    o_mode = cfg.mode;
    o_domains = n;
    o_requests = Array.fold_left ( + ) 0 reqdone;
    o_ops = ops;
    o_wall_s = wall_s;
    o_ops_per_sec = (if wall_s > 0. then float_of_int ops /. wall_s else 0.);
    o_p50 = Hist.p50 all;
    o_p99 = Hist.p99 all;
    o_p999 = Hist.p999 all;
    o_mean_ns = Hist.mean_ns all;
    o_max_ns = Hist.max_ns all;
    o_stats = stats;
    o_contention = Pstats.contention_rate (Pool.stats pool);
    o_final_target = Pool.current_target pool;
    o_final_bound = Pool.depot_bound pool;
    o_trajectory = Pool.trajectory pool;
    o_per_domain = per_domain;
  }

(* ---------------------------------------------------------------- *)

let mode_name = function `Fixed -> "fixed" | `Adaptive -> "adaptive"

let ns v = if Float.is_nan v then "-" else Printf.sprintf "%.0f" v

let to_string o =
  let b = Buffer.create 1024 in
  let s = o.o_stats in
  Printf.bprintf b "service %s: %d domains, %s mode, %d requests, %d pool ops\n"
    o.o_scenario o.o_domains (mode_name o.o_mode) o.o_requests o.o_ops;
  Printf.bprintf b "  wall %.3f s   %.2e ops/s\n" o.o_wall_s o.o_ops_per_sec;
  Printf.bprintf b
    "  request latency ns: p50 %s  p99 %s  p999 %s  mean %s  max %d\n"
    (ns o.o_p50) (ns o.o_p99) (ns o.o_p999) (ns o.o_mean_ns) o.o_max_ns;
  Printf.bprintf b
    "  pool: allocs %d  frees %d  creates %d  hit-rate %.4f\n"
    s.Pstats.s_allocs s.Pstats.s_frees s.Pstats.s_creates
    (1.
    -.
    if s.Pstats.s_allocs = 0 then 0.
    else float_of_int s.Pstats.s_depot_gets /. float_of_int s.Pstats.s_allocs);
  Printf.bprintf b
    "  depot: acquires %d  contended %d (rate %s)  drops %d  prefills %d\n"
    s.Pstats.s_depot_acquires s.Pstats.s_depot_contended
    (if Float.is_nan o.o_contention then "-"
     else Printf.sprintf "%.4f" o.o_contention)
    s.Pstats.s_drops s.Pstats.s_prefills;
  Printf.bprintf b
    "  geometry: target %d  depot bound %d  grows %d  shrinks %d  (%d adaptation steps)\n"
    o.o_final_target o.o_final_bound s.Pstats.s_grows s.Pstats.s_shrinks
    (List.length o.o_trajectory);
  List.iter
    (fun d ->
      Printf.bprintf b
        "  domain %d: %d requests  p50 %s  p99 %s  p999 %s  max %d\n" d.d_index
        d.d_requests (ns d.d_p50) (ns d.d_p99) (ns d.d_p999) d.d_max_ns)
    o.o_per_domain;
  Buffer.contents b
