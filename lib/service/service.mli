(** A production-shaped service harness over {!Pool}: the paper's
    "serving millions of requests" claim replayed on real OCaml-5
    hardware.  [domains] worker domains each serve [requests] requests;
    a request runs one of the seven [lib/scenario] allocation graphs
    (steady, rpc, bursty, long_tail, producer_consumer, frag_adversary,
    recorded_dlm) against a shared pool — producer_consumer and the rpc
    family hand objects to the next domain's mailbox so frees land on a
    different domain than their allocs, the cross-CPU traffic the
    paper's global layer exists to absorb.

    Arrival is closed-loop (back-to-back) or open-loop with a seeded
    deterministic inter-arrival draw; open-loop latency is measured
    from the scheduled arrival, so queueing delay is charged to the
    tail (no coordinated omission).  Per-domain latency goes into
    {!Hist} histograms (p50/p99/p999); depot contention, drops, and
    adaptation steps come out of {!Pstats}.  The request *count* and
    every allocation decision are deterministic from [seed]; timings
    and contention are the machine's own.

    With [refill] a dedicated extra domain keeps the depot stocked
    between a low watermark and its bound (SpeedMalloc's dedicated
    allocation core, PAPERS.md), so workers never pay constructor
    cost in steady state. *)

module Hist = Hist
(** Re-exported: the latency histograms the harness fills. *)

module Pool = Objpool.Pool
module Pstats = Objpool.Pstats

type shape =
  | Steady
  | Rpc
  | Bursty
  | Long_tail
  | Producer_consumer
  | Frag_adversary
  | Recorded_dlm

val shape_of_scenario : string -> shape option
(** The request graph for a [lib/scenario] name; [None] when the name
    is not in {!Scenario.all}. *)

type arrival = [ `Closed | `Open_ns of int ]
(** [`Open_ns mean]: seeded uniform inter-arrival in [[0, 2*mean]]. *)

type config = {
  scenario : string;
  domains : int;  (** worker domains, >= 1 *)
  requests : int;  (** per domain *)
  seed : int;
  mode : Pool.mode;
  refill : bool;  (** dedicated depot-refill domain *)
  target : int;
  depot_batches : int;
  arrival : arrival;
  obj_bytes : int;  (** pooled object size *)
}

val default : scenario:string -> config
(** 2 domains, 100k requests each, seed 42, [`Fixed], no refill,
    target 16, 32 depot batches, closed loop, 256-byte objects. *)

type domain_stat = {
  d_index : int;
  d_requests : int;
  d_p50 : float;
  d_p99 : float;
  d_p999 : float;
  d_max_ns : int;
}

type outcome = {
  o_scenario : string;
  o_mode : Pool.mode;
  o_domains : int;
  o_requests : int;  (** total requests served, all domains *)
  o_ops : int;  (** pool operations: allocs + frees *)
  o_wall_s : float;
  o_ops_per_sec : float;
  o_p50 : float;  (** request latency, ns *)
  o_p99 : float;
  o_p999 : float;
  o_mean_ns : float;
  o_max_ns : int;
  o_stats : Pstats.snapshot;
  o_contention : float;  (** contended share of depot acquisitions *)
  o_final_target : int;
  o_final_bound : int;
  o_trajectory : Pool.adapt_event list;
  o_per_domain : domain_stat list;
}

val run : config -> outcome
(** Spawn the domains, serve every request, join, and account.  On
    return [o_stats.s_allocs = o_stats.s_frees]: every object the
    harness took from the pool went back (or to the depot via the
    domains' final [flush_local]).
    @raise Invalid_argument on a bad config or unknown scenario. *)

val to_string : outcome -> string
(** Multi-line human-readable report (the [kma_bench service] body). *)

val mode_name : Pool.mode -> string
