(* Log-scale latency histogram: exact buckets below 16 ns, then eight
   sub-buckets per octave (HDR-style), so any sample is placed within
   ~9 % of its true value with a fixed 488-slot array.  Single-writer;
   merge joins per-domain histograms for whole-service quantiles. *)

let sub = 8
let nbuckets = 488  (* 16 exact + (62 - 3) octaves * 8 sub-buckets *)

type t = {
  counts : int array;
  mutable n : int;
  mutable max_ns : int;
  mutable sum_ns : int;
}

let create () = { counts = Array.make nbuckets 0; n = 0; max_ns = 0; sum_ns = 0 }

let msb_index v =
  (* Position of the highest set bit; v > 0. *)
  let rec go v i = if v = 1 then i else go (v lsr 1) (i + 1) in
  go v 0

let bucket_of ns =
  if ns < 16 then ns
  else
    let m = msb_index ns in
    let shift = m - 3 in
    ((m - 3) * sub) + ((ns lsr shift) land (sub - 1)) + 8

(* Midpoint of the bucket's value range: inverse of [bucket_of] up to
   sub-bucket resolution. *)
let value_of idx =
  if idx < 16 then idx
  else
    let oct = ((idx - 8) / sub) + 3 in
    let s = (idx - 8) mod sub in
    let width = 1 lsl (oct - 3) in
    ((sub + s) * width) + (width / 2)

let add t ns =
  let ns = if ns < 0 then 0 else ns in
  let idx = bucket_of ns in
  let idx = if idx >= nbuckets then nbuckets - 1 else idx in
  t.counts.(idx) <- t.counts.(idx) + 1;
  t.n <- t.n + 1;
  t.sum_ns <- t.sum_ns + ns;
  if ns > t.max_ns then t.max_ns <- ns

let count t = t.n
let max_ns t = t.max_ns
let mean_ns t = if t.n = 0 then Float.nan else float_of_int t.sum_ns /. float_of_int t.n

let merge ~into src =
  for i = 0 to nbuckets - 1 do
    into.counts.(i) <- into.counts.(i) + src.counts.(i)
  done;
  into.n <- into.n + src.n;
  into.sum_ns <- into.sum_ns + src.sum_ns;
  if src.max_ns > into.max_ns then into.max_ns <- src.max_ns

let quantile t q =
  if t.n = 0 then Float.nan
  else begin
    let q = Float.max 0. (Float.min 1. q) in
    let rank = max 1 (int_of_float (ceil (q *. float_of_int t.n))) in
    let rec walk i seen =
      if i >= nbuckets then float_of_int t.max_ns
      else
        let seen = seen + t.counts.(i) in
        if seen >= rank then
          (* The highest occupied bucket holds the recorded maximum:
             report it exactly rather than the bucket midpoint. *)
          if seen = t.n then float_of_int t.max_ns
          else float_of_int (value_of i)
        else walk (i + 1) seen
    in
    walk 0 0
  end

let p50 t = quantile t 0.50
let p99 t = quantile t 0.99
let p999 t = quantile t 0.999
