(** Log-scale latency histogram for the service harness's tail
    accounting (p50/p99/p999), the host-side analogue of the paper's
    measured-latency tables: exact nanosecond buckets below 16 ns,
    then eight sub-buckets per power of two, so every recorded sample
    is placed within ~9 % of its true value in O(1) with a fixed
    488-slot array and no allocation on the record path.

    Single-writer: one histogram belongs to one domain; {!merge} joins
    per-domain histograms after the domains have been joined. *)

type t

val create : unit -> t

val add : t -> int -> unit
(** [add t ns] records one latency sample in nanoseconds (negative
    samples clamp to 0). *)

val count : t -> int
val max_ns : t -> int
val mean_ns : t -> float
(** [nan] when empty. *)

val merge : into:t -> t -> unit
(** [merge ~into src] adds [src]'s samples into [into]. *)

val quantile : t -> float -> float
(** [quantile t q] with [q] in [0, 1] (clamped): an estimate of the
    [q]-quantile in nanoseconds, within the bucket resolution; [nan]
    when empty.  A rank landing in the highest occupied bucket reports
    the exact recorded maximum. *)

val p50 : t -> float
val p99 : t -> float
val p999 : t -> float
