type t = {
  line_words : int;
  cache_lines : int;
  ways : int;
  insn_cost : int;
  miss_cost : int;
  c2c_cost : int;
  upgrade_cost : int;
  rmw_cost : int;
  nodes : int;
  node_miss_cost : int;
  node_c2c_cost : int;
}

let default =
  {
    line_words = 8;
    cache_lines = 256;
    ways = 0;
    insn_cost = 1;
    miss_cost = 30;
    c2c_cost = 50;
    upgrade_cost = 20;
    rmw_cost = 12;
    nodes = 1;
    node_miss_cost = 60;
    node_c2c_cost = 80;
  }

let is_power_of_two n = n > 0 && n land (n - 1) = 0

let validate t =
  let check cond msg =
    if not cond then invalid_arg ("Sim.Geometry: " ^ msg)
  in
  check (is_power_of_two t.line_words) "line_words must be a power of two";
  check (t.cache_lines >= 0) "cache_lines must be non-negative";
  check (t.ways >= 0) "ways must be non-negative (0 = fully associative)";
  if t.ways > 0 then begin
    check (t.cache_lines > 0) "ways > 0 needs a bounded cache (lines > 0)";
    check (t.cache_lines mod t.ways = 0) "ways must divide cache_lines";
    check
      (is_power_of_two (t.cache_lines / t.ways))
      "cache_lines / ways (the set count) must be a power of two"
  end;
  check (t.insn_cost >= 0) "insn_cost must be non-negative";
  check (t.miss_cost >= 0) "miss_cost must be non-negative";
  check (t.c2c_cost >= 0) "c2c_cost must be non-negative";
  check (t.upgrade_cost >= 0) "upgrade_cost must be non-negative";
  check (t.rmw_cost >= 0) "rmw_cost must be non-negative";
  check (t.nodes >= 1) "nodes must be at least 1";
  check (t.node_miss_cost >= 0) "node_miss_cost must be non-negative";
  check (t.node_c2c_cost >= 0) "node_c2c_cost must be non-negative"

let to_string t =
  Printf.sprintf
    "line=%d,lines=%d,assoc=%d,insn=%d,miss=%d,c2c=%d,upgrade=%d,rmw=%d,nodes=%d,node_miss=%d,node_c2c=%d"
    t.line_words t.cache_lines t.ways t.insn_cost t.miss_cost t.c2c_cost
    t.upgrade_cost t.rmw_cost t.nodes t.node_miss_cost t.node_c2c_cost

let of_string spec =
  let parse_pair acc pair =
    match acc with
    | Error _ -> acc
    | Ok g -> (
        match String.index_opt pair '=' with
        | None ->
            Error
              (Printf.sprintf "geometry: %S is not a key=value pair" pair)
        | Some i -> (
            let key = String.trim (String.sub pair 0 i) in
            let v =
              String.trim
                (String.sub pair (i + 1) (String.length pair - i - 1))
            in
            match int_of_string_opt v with
            | None ->
                Error
                  (Printf.sprintf "geometry: %s=%S is not an integer" key v)
            | Some n -> (
                match key with
                | "line" -> Ok { g with line_words = n }
                | "lines" -> Ok { g with cache_lines = n }
                | "assoc" -> Ok { g with ways = n }
                | "insn" -> Ok { g with insn_cost = n }
                | "miss" -> Ok { g with miss_cost = n }
                | "c2c" -> Ok { g with c2c_cost = n }
                | "upgrade" -> Ok { g with upgrade_cost = n }
                | "rmw" -> Ok { g with rmw_cost = n }
                | "nodes" -> Ok { g with nodes = n }
                | "node_miss" -> Ok { g with node_miss_cost = n }
                | "node_c2c" -> Ok { g with node_c2c_cost = n }
                | _ ->
                    Error
                      (Printf.sprintf
                         "geometry: unknown key %S (want line, lines, \
                          assoc, insn, miss, c2c, upgrade, rmw, nodes, \
                          node_miss or node_c2c)"
                         key))))
  in
  let parts =
    List.filter
      (fun s -> String.trim s <> "")
      (String.split_on_char ',' spec)
  in
  match List.fold_left parse_pair (Ok default) parts with
  | Error _ as e -> e
  | Ok g -> ( match validate g with () -> Ok g | exception Invalid_argument m -> Error m)

let env_var = "KMA_GEOMETRY"

let of_env () =
  match Sys.getenv_opt env_var with
  | None | Some "" -> Ok default
  | Some spec -> of_string spec

(* The ambient geometry is written once by a driver at startup (before
   any domain is spawned) and only read afterwards, so a plain ref is
   race-free: the Domain.spawn in lib/parallel publishes it. *)
let ambient_geometry = ref default

let set_ambient g =
  validate g;
  ambient_geometry := g

let ambient () = !ambient_geometry
