(** MESI-style cache-coherence cost model.

    This is the simulated stand-in for the Symmetry's hardware caches:
    the paper's cache-profile analysis (Design section, "Analysis of
    Memory-Allocator Cache Profile") attributes the allocators'
    performance gap almost entirely to which accesses miss and who
    services them, and this module is where those misses are decided
    and priced.  Geometry and costs come from {!Config} (ultimately
    {!Geometry}), so the paper's informal "what if the cache were
    shaped differently" arguments are runnable (experiment E12).

    The model tracks, for every cache line, which CPUs hold a copy and
    which CPU (if any) holds it modified.  Exclusive and Shared are
    collapsed into one state with the Exclusive optimisation preserved: a
    write to a line held by no other CPU is silent.  Each access returns
    the stall cost in cycles beyond the base instruction cost:

    - load hit, or store hit on an owned/exclusive line: 0;
    - load miss serviced from memory: [miss_cost];
    - load miss serviced from another CPU's modified line: [c2c_cost];
    - store to a line shared with other CPUs: [upgrade_cost] (bus
      invalidation round), plus [miss_cost] or [c2c_cost] if not resident;
    - atomic read-modify-write: as a store, plus [rmw_cost].

    When [cache_lines] is positive, each CPU's cache is bounded and lines
    are evicted FIFO, so capacity misses occur; with [0] the caches are
    unbounded and only coherence misses occur.  The model is fully
    deterministic.

    Sharer tracking is width-independent: each line's holder set is a
    flat array of bitset words (32 CPUs per word), so the model scales
    to {!Config.max_cpus} CPUs.  (A single native-int bitmask here
    silently overflowed at [ncpus = 63/64].)

    With [nodes > 1] the machine is NUMA: CPUs live on contiguous
    nodes, memory lines have an address-range home node, and misses,
    dirty transfers and invalidation rounds that cross the interconnect
    pay the [node_miss_cost]/[node_c2c_cost] surcharges from
    {!Geometry} (three-hop directory detour included).  At the default
    [nodes = 1] none of this code runs and costs are bit-identical to
    the flat model. *)

type t

type kind = Load | Store | Rmw

type stats = {
  mutable loads : int;
  mutable stores : int;
  mutable rmws : int;
  mutable hits : int;
  mutable misses : int;  (** misses serviced from memory *)
  mutable c2c : int;  (** misses serviced from another CPU's dirty line *)
  mutable upgrades : int;  (** shared-to-exclusive invalidation rounds *)
  mutable invalidations : int;  (** copies this CPU invalidated in others *)
  mutable evictions : int;  (** capacity evictions *)
  mutable remote : int;
      (** accesses that paid any cross-node NUMA surcharge (always [0]
          on the flat [nodes = 1] machine) *)
  mutable stall_cycles : int;  (** total stall cycles charged *)
}

val create : Config.t -> t

val access : t -> cpu:int -> Memory.addr -> kind -> int
(** [access t ~cpu a kind] records an access by [cpu] to the line holding
    word [a] and returns the stall cost in cycles (excluding the base
    instruction cost and excluding [rmw_cost]; {!Machine} adds those). *)

val stats : t -> cpu:int -> stats
(** [stats t ~cpu] is the live statistics record for [cpu] (mutated by
    subsequent accesses; copy it if you need a snapshot). *)

val total_stats : t -> stats
(** [total_stats t] sums the per-CPU statistics into a fresh record. *)

val reset_stats : t -> unit

val set_trace : t -> (cpu:int -> addr:Memory.addr -> kind -> cost:int -> unit) option -> unit
(** [set_trace t f] installs (or clears) a per-access hook, used by the
    analysis experiment to reconstruct the paper's logic-analyzer access
    profiles. *)

val holders : t -> Memory.addr -> int list
(** [holders t a] is the sorted list of CPUs holding the line of [a]
    (test oracle). *)

val dirty_owner : t -> Memory.addr -> int option
(** [dirty_owner t a] is the CPU holding the line of [a] modified, if
    any (test oracle). *)

val resident : t -> cpu:int -> int
(** [resident t ~cpu] is the number of lines currently held by [cpu]. *)

val node_of_cpu : t -> int -> int
(** [node_of_cpu t cpu] is [cpu]'s NUMA node ({!Config.node_of};
    always [0] on the flat machine).  Test oracle. *)

val home_of_addr : t -> Memory.addr -> int
(** [home_of_addr t a] is the home node of the memory holding [a]
    (address-range partition; always [0] on the flat machine).  Test
    oracle. *)
