exception Not_in_simulation
exception Deadlock of string
exception Watchdog of int

type op =
  | Read of Memory.addr
  | Write of Memory.addr * int
  | Cas of Memory.addr * int * int
  | Faa of Memory.addr * int
  | Swap of Memory.addr * int
  | Work of int
  | Spin
  | Cpu_id
  | Now
  | Irq of bool

type _ Effect.t += Op : op -> int Effect.t

(* A CPU's scheduling state IS the reified step: [Done] means idle,
   [Next (o, k)] means operation [o] is pending with continuation [k].
   Storing the step directly (rather than re-wrapping it in a separate
   state constructor) saves one allocation per simulated operation on
   the scheduler's hot path. *)
type step = Done | Next of op * (int, step) Effect.Deep.continuation

type cpu = {
  id : int;
  mutable time : int;
  mutable nretired : int;
  mutable irq_off : bool;
  mutable nspins : int;
  mutable state : step;
}

type t = {
  cfg : Config.t;
  memory : Memory.t;
  cache : Cache.t;
  cpus : cpu array;
  mutable bus_free : int;
      (* Virtual instant the shared bus becomes free.  Off-chip
         transfers queue behind it; because operations execute in
         global time order, grants are naturally first-come
         first-served. *)
}

let create (cfg : Config.t) =
  Config.validate cfg;
  {
    cfg;
    memory = Memory.create ~words:cfg.memory_words;
    cache = Cache.create cfg;
    cpus =
      Array.init cfg.ncpus (fun id ->
          {
            id;
            time = 0;
            nretired = 0;
            irq_off = false;
            nspins = 0;
            state = Done;
          });
    bus_free = 0;
  }

let config t = t.cfg
let memory t = t.memory
let cache t = t.cache
let cpu_time t ~cpu = t.cpus.(cpu).time
let retired t ~cpu = t.cpus.(cpu).nretired

let elapsed t =
  Array.fold_left (fun acc c -> max acc c.time) 0 t.cpus

let reset_clocks t =
  t.bus_free <- 0;
  Array.iter
    (fun c ->
      c.time <- 0;
      c.nretired <- 0)
    t.cpus

let irq_disabled t ~cpu = t.cpus.(cpu).irq_off

(* The CPU whose program (host code between two operations) is executing
   right now, if any.  Maintained by the scheduler around every
   continuation resume so that host-side observers — the flight
   recorder above all — can learn the current CPU and its clock WITHOUT
   performing a (zero-cost but scheduler-visible) operation.  An extra
   operation is an extra yield point: it splits the host code around it
   into separately scheduled slices, letting same-instant host code on
   other CPUs interleave where it otherwise could not.  That never
   perturbs the simulated memory order, but host-side state shared
   between programs (allocator adaptation state, fault PRNGs) would see
   a different interleaving — observable as recorder-on runs diverging
   from recorder-off runs.

   The slot is domain-local: lib/parallel shards experiment sweeps
   across domains, each driving its own machine, so a shared slot
   would let one domain's scheduler clobber another's executing-CPU
   record mid-resume.  [run] fetches the domain's slot once and
   threads it through the scheduling loop, keeping DLS lookups off the
   per-operation path. *)
let executing_key : cpu option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let running () =
  match !(Domain.DLS.get executing_key) with
  | Some c -> Some (c.id, c.time)
  | None -> None

let running_irq_off () =
  match !(Domain.DLS.get executing_key) with
  | Some c -> c.irq_off
  | None -> false

(* Typed operation fronts.  All operations funnel through a single
   int-valued effect so the scheduler needs no existential plumbing. *)
let perform_op o =
  try Effect.perform (Op o)
  with Effect.Unhandled _ -> raise Not_in_simulation
let read a = perform_op (Read a)
let write a v = ignore (perform_op (Write (a, v)))

let cas a ~expected ~desired = perform_op (Cas (a, expected, desired)) = 1
let fetch_add a n = perform_op (Faa (a, n))
let swap a v = perform_op (Swap (a, v))
let work n = if n > 0 then ignore (perform_op (Work n))
let spin_pause () = ignore (perform_op Spin)
let cpu_id () = perform_op Cpu_id
let now () = perform_op Now
let irq_disable () = ignore (perform_op (Irq true))
let irq_enable () = ignore (perform_op (Irq false))

(* Run a program until its first operation (or completion). *)
let reify (f : unit -> unit) : step =
  let open Effect.Deep in
  match_with f ()
    {
      retc = (fun () -> Done);
      exnc = raise;
      effc =
        (fun (type a) (eff : a Effect.t) ->
          match eff with
          | Op o ->
              Some (fun (k : (a, step) continuation) -> Next (o, k))
          | _ -> None);
    }

(* A cached memory access on behalf of [c]: cache stall plus bus
   arbitration.  Top-level (not a closure inside [exec]) so the hot
   path allocates nothing. *)
let mem_access t (c : cpu) a kind =
  let cfg = t.cfg in
  let stall = Cache.access t.cache ~cpu:c.id a kind in
  let stall =
    if stall > 0 && cfg.bus_model then begin
      (* The transfer waits for the bus, then holds it for its
         request/arbitration phases while the CPU stalls for the full
         transfer latency. *)
      let wait = max 0 (t.bus_free - c.time) in
      let occupancy = max 1 (stall / cfg.bus_occupancy_div) in
      t.bus_free <- c.time + wait + occupancy;
      wait + stall
    end
    else stall
  in
  cfg.insn_cost + stall

(* Execute [o] on behalf of [c] at its current virtual time, charging
   cycle cost and retired instructions directly onto [c] (no result
   tuple: this runs once per simulated operation).  Returns the
   operation's result value. *)
let exec t (c : cpu) (o : op) : int =
  let cfg = t.cfg in
  match o with
  | Read a ->
      c.time <- c.time + mem_access t c a Cache.Load;
      c.nretired <- c.nretired + 1;
      Memory.get t.memory a
  | Write (a, v) ->
      c.time <- c.time + mem_access t c a Cache.Store;
      c.nretired <- c.nretired + 1;
      Memory.set t.memory a v;
      0
  | Cas (a, expected, desired) ->
      c.time <- c.time + mem_access t c a Cache.Rmw + cfg.rmw_cost;
      c.nretired <- c.nretired + 1;
      let cur = Memory.get t.memory a in
      if cur = expected then begin
        Memory.set t.memory a desired;
        1
      end
      else 0
  | Faa (a, n) ->
      c.time <- c.time + mem_access t c a Cache.Rmw + cfg.rmw_cost;
      c.nretired <- c.nretired + 1;
      let old = Memory.get t.memory a in
      Memory.set t.memory a (old + n);
      old
  | Swap (a, v) ->
      c.time <- c.time + mem_access t c a Cache.Rmw + cfg.rmw_cost;
      c.nretired <- c.nretired + 1;
      let old = Memory.get t.memory a in
      Memory.set t.memory a v;
      old
  | Work n ->
      c.time <- c.time + (n * cfg.insn_cost);
      c.nretired <- c.nretired + n;
      0
  | Spin ->
      (* Deterministic pseudo-random jitter.  Without it, a spinning CPU
         can phase-lock with another CPU's periodic lock/unlock pattern
         and lose the race forever — an artifact of the discrete-event
         model that real bus arbitration and timing noise preclude. *)
      c.nspins <- c.nspins + 1;
      let mix = ((c.nspins * 2654435761) + (c.id * 40503)) land max_int in
      let jitter = mix mod ((3 * cfg.spin_cost) + 1) in
      c.time <- c.time + cfg.spin_cost + jitter;
      c.nretired <- c.nretired + 1;
      0
  | Cpu_id -> c.id
  | Now -> c.time
  | Irq on ->
      c.irq_off <- on;
      c.time <- c.time + cfg.irq_cost;
      c.nretired <- c.nretired + 1;
      0

(* Resume [c]'s continuation with the executing-CPU slot [ex] pointing
   at it; restore on the way out, exceptional or not. *)
let resume ex (c : cpu) k v : step =
  let saved = !ex in
  ex := Some c;
  match Effect.Deep.continue k v with
  | s ->
      ex := saved;
      s
  | exception e ->
      ex := saved;
      raise e

let step t ex (c : cpu) =
  match c.state with
  | Done -> ()
  | Next (o, k) ->
      let result = exec t c o in
      c.state <- Done;
      c.state <- resume ex c k result

let run ?(max_cycles = 0) t progs =
  let n = Array.length progs in
  if n < 1 || n > t.cfg.ncpus then
    invalid_arg
      (Printf.sprintf "Sim.Machine.run: %d programs for %d CPUs" n
         t.cfg.ncpus);
  let ex = Domain.DLS.get executing_key in
  (* Launch every program up to its first operation.  The launch itself
     consumes no virtual time. *)
  let live = ref 0 in
  for i = 0 to n - 1 do
    let c = t.cpus.(i) in
    let prog = progs.(i) in
    let saved = !ex in
    ex := Some c;
    let s =
      match reify (fun () -> prog i) with
      | s ->
          ex := saved;
          s
      | exception e ->
          ex := saved;
          raise e
    in
    match s with
    | Done -> ()
    | Next _ ->
        c.state <- s;
        incr live
  done;
  (* Discrete-event loop: always advance the pending CPU with the
     smallest clock (ties by id, giving determinism). *)
  let pick () =
    let best = ref (-1) in
    let best_time = ref max_int in
    for i = 0 to n - 1 do
      let c = t.cpus.(i) in
      match c.state with
      | Next _ when c.time < !best_time ->
          best := i;
          best_time := c.time
      | Next _ | Done -> ()
    done;
    !best
  in
  let rec loop () =
    let i = pick () in
    if i >= 0 then begin
      let c = t.cpus.(i) in
      if max_cycles > 0 && c.time > max_cycles then raise (Watchdog c.time);
      step t ex c;
      (match c.state with Done -> decr live | Next _ -> ());
      loop ()
    end
    else if !live > 0 then
      raise (Deadlock "unfinished CPUs but none runnable")
  in
  loop ()

let run_symmetric ?max_cycles t ~ncpus f =
  run ?max_cycles t (Array.init ncpus (fun _ -> f))
