exception Not_in_simulation
exception Deadlock of string
exception Watchdog of int

type op =
  | Read of Memory.addr
  | Write of Memory.addr * int
  | Cas of Memory.addr * int * int
  | Casv of Memory.addr * int * int
  | Faa of Memory.addr * int
  | For of Memory.addr * int
  | Fand of Memory.addr * int
  | Swap of Memory.addr * int
  | Work of int
  | Spin
  | Cpu_id
  | Now
  | Irq of bool

type _ Effect.t += Op : op -> int Effect.t

(* A CPU's scheduling state IS the reified step: [Done] means idle,
   [Next (o, k)] means operation [o] is pending with continuation [k].
   Storing the step directly (rather than re-wrapping it in a separate
   state constructor) saves one allocation per simulated operation on
   the scheduler's hot path. *)
type step = Done | Next of op * (int, step) Effect.Deep.continuation

type cpu = {
  id : int;
  mutable time : int;
  mutable nretired : int;
  mutable irq_off : bool;
  mutable nspins : int;
  mutable spin_mix : int; (* last spin-jitter hash value *)
  mutable spin_r : int; (* spin_mix mod the jitter modulus *)
  mutable state : step;
}

type t = {
  cfg : Config.t;
  memory : Memory.t;
  cache : Cache.t;
  cpus : cpu array;
  bus_shift : int;
      (* log2 of bus_occupancy_div when it is a power of two (the
         default), -1 otherwise: turns the per-transfer occupancy
         division — on the path of every off-chip access — into a
         shift. *)
  spin_d : int; (* jitter modulus: 3 * spin_cost + 1 *)
  spin_k1d : int; (* hash stride mod spin_d *)
  spin_wd : int; (* 2^62 mod spin_d, for hash wraparound *)
  node_of : int array; (* cpu -> NUMA node (all 0 on the flat machine) *)
  bus_free : int array;
      (* Virtual instant each node's bus becomes free.  The flat
         machine has one entry — the paper's single shared bus; a NUMA
         machine arbitrates per node, which is exactly why it scales
         past the bus-saturation ceiling.  Off-chip transfers queue
         behind the requester's node bus; because operations execute
         in global time order, grants are naturally first-come
         first-served. *)
}

(* Scheduler heap keys pack (time, id) into one int with [id_bits] bits
   of CPU id below the time; the static guard ties the packing to the
   Config cap so widening one without the other fails at module init
   instead of corrupting the schedule. *)
let id_bits = 10
let id_mask = (1 lsl id_bits) - 1
let () = assert (Config.max_cpus <= 1 lsl id_bits)

(* Multiplicative stride of the spin-jitter hash (see [exec_spin]). *)
let spin_k1 = 2654435761

let create (cfg : Config.t) =
  Config.validate cfg;
  let spin_d = (3 * cfg.spin_cost) + 1 in
  let bus_shift =
    let d = cfg.bus_occupancy_div in
    if d land (d - 1) = 0 then
      let rec go acc n = if n <= 1 then acc else go (acc + 1) (n lsr 1) in
      go 0 d
    else -1
  in
  {
    cfg;
    memory = Memory.create ~words:cfg.memory_words;
    cache = Cache.create cfg;
    cpus =
      Array.init cfg.ncpus (fun id ->
          let mix0 = (id * 40503) land max_int in
          {
            id;
            time = 0;
            nretired = 0;
            irq_off = false;
            nspins = 0;
            spin_mix = mix0;
            spin_r = mix0 mod spin_d;
            state = Done;
          });
    bus_shift;
    spin_d;
    spin_k1d = spin_k1 mod spin_d;
    spin_wd = ((max_int mod spin_d) + 1) mod spin_d;
    node_of = Array.init cfg.ncpus (fun cpu -> Config.node_of cfg cpu);
    bus_free = Array.make cfg.nodes 0;
  }

let config t = t.cfg
let memory t = t.memory
let cache t = t.cache
let cpu_time t ~cpu = t.cpus.(cpu).time
let retired t ~cpu = t.cpus.(cpu).nretired

let elapsed t =
  Array.fold_left (fun acc c -> max acc c.time) 0 t.cpus

let reset_clocks t =
  Array.fill t.bus_free 0 (Array.length t.bus_free) 0;
  Array.iter
    (fun c ->
      c.time <- 0;
      c.nretired <- 0)
    t.cpus

let irq_disabled t ~cpu = t.cpus.(cpu).irq_off

(* Per-domain execution context.  [cur] is the CPU whose program (host
   code between two operations) is executing right now, if any —
   maintained by the scheduler around every continuation resume so that
   host-side observers (the flight recorder above all) can learn the
   current CPU and its clock WITHOUT performing an operation.  An extra
   operation is an extra yield point: it splits the host code around it
   into separately scheduled slices, letting same-instant host code on
   other CPUs interleave where it otherwise could not.

   The remaining fields drive the same-CPU fast path.  [limit_time] /
   [limit_id] are the clock and id of the earliest OTHER pending CPU
   when [cur] was resumed: as long as [cur]'s clock stays below that
   bound (ties broken by id, mirroring the scheduler's pick), the
   scheduler would pick [cur] again immediately, so the operation can
   execute inline in host code — no effect performed, no continuation
   captured, no scheduler round trip.  Other CPUs' clocks and pending
   states are frozen while [cur]'s host code runs, so the bound
   computed at resume time stays exact for the whole slice.  This is
   why a batch of same-CPU operations (the exclusive-line hits of a
   per-CPU freelist above all) costs one scheduler event instead of
   one per operation, and why the batching is bit-identical by
   construction: an operation runs inline ONLY when the scheduler
   would have executed exactly that operation next anyway.

   The slot is domain-local: lib/parallel shards experiment sweeps
   across domains, each driving its own machine, so a shared slot
   would let one domain's scheduler clobber another's context
   mid-resume. *)
type ctx = {
  mutable mach : t option;
  mutable cur : int;
      (* index of the executing CPU in [mach]'s cpu array, -1 when no
         program is running.  An index rather than a [cpu option]: the
         slot is written twice per continuation resume on the hottest
         path in the simulator, and an immediate store neither
         allocates an option nor calls the GC write barrier. *)
  mutable limit_time : int; (* min_int disables the fast path *)
  mutable limit_id : int;
  mutable max_cycles : int; (* 0 = no watchdog *)
}

(* A never-inlining context: [fast_ctx] returns it when no program is
   executing or the fast path is off, so the fronts test one pointer
   instead of re-checking both conditions in every branch. *)
let null_ctx =
  { mach = None; cur = -1; limit_time = min_int; limit_id = max_int;
    max_cycles = 0 }

let executing_key : ctx Domain.DLS.key =
  Domain.DLS.new_key (fun () ->
      {
        mach = None;
        cur = -1;
        limit_time = min_int;
        limit_id = max_int;
        max_cycles = 0;
      })

(* Test-only kill switch (see {!set_fast_path}): the equivalence proofs
   in test/sim and test/experiments run every workload twice, fast path
   on and off, and require bit-identical cycles and state.  Written
   only from tests before any domain is spawned. *)
let fast_path_on = ref true
let set_fast_path b = fast_path_on := b
let fast_path_enabled () = !fast_path_on

(* Typed operation fronts.  All operations funnel through a single
   int-valued effect so the scheduler needs no existential plumbing. *)
let perform_op o =
  try Effect.perform (Op o)
  with Effect.Unhandled _ -> raise Not_in_simulation

(* A cached memory access on behalf of [c]: cache stall plus bus
   arbitration.  Top-level (not a closure inside [exec]) so the hot
   path allocates nothing. *)
let mem_access t (c : cpu) a kind =
  let cfg = t.cfg in
  let stall = Cache.access t.cache ~cpu:c.id a kind in
  let stall =
    if stall > 0 && cfg.bus_model then begin
      (* The transfer waits for the requester's node bus, then holds it
         for its request/arbitration phases while the CPU stalls for
         the full transfer latency.  (One bus total on the flat
         machine.) *)
      let node = Array.unsafe_get t.node_of c.id in
      let free = Array.unsafe_get t.bus_free node in
      let wait = max 0 (free - c.time) in
      let occ =
        if t.bus_shift >= 0 then stall lsr t.bus_shift
        else stall / cfg.bus_occupancy_div
      in
      let occupancy = max 1 occ in
      Array.unsafe_set t.bus_free node (c.time + wait + occupancy);
      wait + stall
    end
    else stall
  in
  cfg.insn_cost + stall

(* Per-operation executors.  Each charges cycle cost and retired
   instructions directly onto [c] and returns the operation's result
   value.  Both the scheduler (via [exec]) and the specialised
   fast-path fronts below call these SAME functions, so the two paths
   cannot charge differently. *)
let exec_read t (c : cpu) a =
  c.time <- c.time + mem_access t c a Cache.Load;
  c.nretired <- c.nretired + 1;
  Memory.get t.memory a

let exec_write t (c : cpu) a v =
  c.time <- c.time + mem_access t c a Cache.Store;
  c.nretired <- c.nretired + 1;
  Memory.set t.memory a v;
  0

let exec_cas t (c : cpu) a expected desired =
  c.time <- c.time + mem_access t c a Cache.Rmw + t.cfg.rmw_cost;
  c.nretired <- c.nretired + 1;
  let cur = Memory.get t.memory a in
  if cur = expected then begin
    Memory.set t.memory a desired;
    1
  end
  else 0

(* CAS returning the witnessed value: the lock-free allocators' retry
   loops re-CAS from the value that defeated them instead of paying a
   separate reload.  Same charge as [exec_cas] whether it wins or not. *)
let exec_casv t (c : cpu) a expected desired =
  c.time <- c.time + mem_access t c a Cache.Rmw + t.cfg.rmw_cost;
  c.nretired <- c.nretired + 1;
  let cur = Memory.get t.memory a in
  if cur = expected then Memory.set t.memory a desired;
  cur

let exec_faa t (c : cpu) a n =
  c.time <- c.time + mem_access t c a Cache.Rmw + t.cfg.rmw_cost;
  c.nretired <- c.nretired + 1;
  let old = Memory.get t.memory a in
  Memory.set t.memory a (old + n);
  old

let exec_for t (c : cpu) a n =
  c.time <- c.time + mem_access t c a Cache.Rmw + t.cfg.rmw_cost;
  c.nretired <- c.nretired + 1;
  let old = Memory.get t.memory a in
  Memory.set t.memory a (old lor n);
  old

let exec_fand t (c : cpu) a n =
  c.time <- c.time + mem_access t c a Cache.Rmw + t.cfg.rmw_cost;
  c.nretired <- c.nretired + 1;
  let old = Memory.get t.memory a in
  Memory.set t.memory a (old land n);
  old

let exec_swap t (c : cpu) a v =
  c.time <- c.time + mem_access t c a Cache.Rmw + t.cfg.rmw_cost;
  c.nretired <- c.nretired + 1;
  let old = Memory.get t.memory a in
  Memory.set t.memory a v;
  old

let exec_work t (c : cpu) n =
  c.time <- c.time + (n * t.cfg.insn_cost);
  c.nretired <- c.nretired + n;
  0

let exec_spin t (c : cpu) =
  (* Deterministic pseudo-random jitter.  Without it, a spinning CPU
     can phase-lock with another CPU's periodic lock/unlock pattern
     and lose the race forever — an artifact of the discrete-event
     model that real bus arbitration and timing noise preclude.

     The jitter is [mix mod d] where [mix] is a multiplicative hash of
     (nspins, id) and [d = 3 * spin_cost + 1] — but computed WITHOUT
     the division, which is the single most expensive instruction in
     the (very hot) spin path.  Successive [mix] values differ by the
     constant stride [spin_k1] mod 2^62, so the remainder advances by
     [spin_k1 mod d], minus [2^62 mod d] whenever the hash wraps
     (detected as [mix] decreasing), then folded back into [0, d) with
     two compares.  Bit-identical to the division by construction, and
     pinned by the equivalence suite. *)
  c.nspins <- c.nspins + 1;
  let mix = ((c.nspins * spin_k1) + (c.id * 40503)) land max_int in
  let r = c.spin_r + t.spin_k1d in
  let r = if mix < c.spin_mix then r - t.spin_wd else r in
  let r = if r < 0 then r + t.spin_d else r in
  let r = if r >= t.spin_d then r - t.spin_d else r in
  c.spin_mix <- mix;
  c.spin_r <- r;
  c.time <- c.time + t.cfg.spin_cost + r;
  c.nretired <- c.nretired + 1;
  0

let exec_irq t (c : cpu) on =
  c.irq_off <- on;
  c.time <- c.time + t.cfg.irq_cost;
  c.nretired <- c.nretired + 1;
  0

(* Scheduler-side dispatch over a reified operation. *)
let exec t (c : cpu) (o : op) : int =
  match o with
  | Read a -> exec_read t c a
  | Write (a, v) -> exec_write t c a v
  | Cas (a, expected, desired) -> exec_cas t c a expected desired
  | Casv (a, expected, desired) -> exec_casv t c a expected desired
  | Faa (a, n) -> exec_faa t c a n
  | For (a, n) -> exec_for t c a n
  | Fand (a, n) -> exec_fand t c a n
  | Swap (a, v) -> exec_swap t c a v
  | Work n -> exec_work t c n
  | Spin -> exec_spin t c
  | Cpu_id -> c.id
  | Now -> c.time
  | Irq on -> exec_irq t c on

(* Operation fronts.  Each is specialised rather than routed through
   one generic [dispatch o]: on the fast path (executing CPU would be
   the scheduler's next pick — its clock below every other pending
   CPU's, ties broken by id exactly like the pick; watchdog clear) the
   operation executes inline via the shared executor WITHOUT
   constructing an [op] value, performing an effect, or capturing a
   continuation.  Only the fallback reifies the operation and yields
   to the scheduler.  The watchdog guard matters: when the deadline
   has passed, falling back to the effect lets [Watchdog] propagate
   from the scheduler loop exactly as it always did, without unwinding
   the program's own stack.

   [Spin] alone uses a weaker guard (see [spin_pause]): a spin touches
   only the spinning CPU's private state, so it commutes with every
   other CPU's operations and may run inline even when this CPU is not
   the next pick, provided no watchdog is armed. *)

(* [Domain.DLS.get] is an out-of-line call whose cost is visible on
   every operation, so the fast path reads the domain-local slot
   directly through the [%dls_get] primitive the stdlib itself uses.
   Soundness: [run] initialises the key through the official API
   before any operation can execute on this domain, so by the time a
   front looks, the slot holds a real [ctx] — and if it does not (no
   [run] on this domain yet: slot missing, or holding the stdlib's
   uninitialised sentinel [ref 0]), the first field reads as the
   immediate 0, i.e. [mach = None], and every front falls through to
   [perform_op] exactly like the out-of-simulation case. *)
external get_dls_state : unit -> Obj.t array = "%dls_get"

let executing_key_idx : int = fst (Obj.magic executing_key : int * unit)

let[@inline] fast_ctx () =
  let st = get_dls_state () in
  if executing_key_idx < Array.length st then
    (Obj.magic (Array.unsafe_get st executing_key_idx) : ctx)
  else null_ctx

(* Host-side observers, on the same direct slot read as the fronts.
   [mach] is matched BEFORE [cur] is read: the uninitialised-sentinel
   block is a single word, so its first field is a safe read (and is
   the immediate 0 = [None]) while its second is not. *)
let running () =
  let ctx = fast_ctx () in
  match ctx.mach with
  | Some t when ctx.cur >= 0 ->
      let c = t.cpus.(ctx.cur) in
      Some (c.id, c.time)
  | _ -> None

let running_irq_off () =
  let ctx = fast_ctx () in
  match ctx.mach with
  | Some t when ctx.cur >= 0 -> t.cpus.(ctx.cur).irq_off
  | _ -> false

let[@inline] may_inline ctx =
  ctx.cur >= 0 && !fast_path_on
  &&
  match ctx.mach with
  | Some t ->
      let c = Array.unsafe_get t.cpus ctx.cur in
      (c.time < ctx.limit_time
      || (c.time = ctx.limit_time && c.id < ctx.limit_id))
      && (ctx.max_cycles = 0 || c.time <= ctx.max_cycles)
  | None -> false

let read a =
  let ctx = fast_ctx () in
  match ctx.mach with
  | Some t when may_inline ctx ->
      exec_read t (Array.unsafe_get t.cpus ctx.cur) a
  | _ -> perform_op (Read a)

let write a v =
  let ctx = fast_ctx () in
  match ctx.mach with
  | Some t when may_inline ctx ->
      ignore (exec_write t (Array.unsafe_get t.cpus ctx.cur) a v)
  | _ -> ignore (perform_op (Write (a, v)))

let cas a ~expected ~desired =
  let ctx = fast_ctx () in
  match ctx.mach with
  | Some t when may_inline ctx ->
      exec_cas t (Array.unsafe_get t.cpus ctx.cur) a expected desired = 1
  | _ -> perform_op (Cas (a, expected, desired)) = 1

let cas_val a ~expected ~desired =
  let ctx = fast_ctx () in
  match ctx.mach with
  | Some t when may_inline ctx ->
      exec_casv t (Array.unsafe_get t.cpus ctx.cur) a expected desired
  | _ -> perform_op (Casv (a, expected, desired))

let fetch_add a n =
  let ctx = fast_ctx () in
  match ctx.mach with
  | Some t when may_inline ctx ->
      exec_faa t (Array.unsafe_get t.cpus ctx.cur) a n
  | _ -> perform_op (Faa (a, n))

let fetch_or a n =
  let ctx = fast_ctx () in
  match ctx.mach with
  | Some t when may_inline ctx ->
      exec_for t (Array.unsafe_get t.cpus ctx.cur) a n
  | _ -> perform_op (For (a, n))

let fetch_and a n =
  let ctx = fast_ctx () in
  match ctx.mach with
  | Some t when may_inline ctx ->
      exec_fand t (Array.unsafe_get t.cpus ctx.cur) a n
  | _ -> perform_op (Fand (a, n))

let swap a v =
  let ctx = fast_ctx () in
  match ctx.mach with
  | Some t when may_inline ctx ->
      exec_swap t (Array.unsafe_get t.cpus ctx.cur) a v
  | _ -> perform_op (Swap (a, v))

let work n =
  if n > 0 then begin
    let ctx = fast_ctx () in
    match ctx.mach with
    | Some t when may_inline ctx ->
        ignore (exec_work t (Array.unsafe_get t.cpus ctx.cur) n)
    | _ -> ignore (perform_op (Work n))
  end

let spin_pause () =
  let ctx = fast_ctx () in
  match ctx.mach with
  | Some t when ctx.cur >= 0 && !fast_path_on && ctx.max_cycles = 0 ->
      ignore (exec_spin t (Array.unsafe_get t.cpus ctx.cur))
  | _ -> ignore (perform_op Spin)

(* Strict twin of [spin_pause] for host-state polling loops (the
   scenario replayer's cross-CPU free handoff): same operation, same
   cycle charges, but always routed through the scheduler so the host
   code that published the awaited state gets to run. *)
let spin_poll () = ignore (perform_op Spin)

let cpu_id () =
  let ctx = fast_ctx () in
  match ctx.mach with
  | Some t when may_inline ctx ->
      (Array.unsafe_get t.cpus ctx.cur).id
  | _ -> perform_op Cpu_id

let now () =
  let ctx = fast_ctx () in
  match ctx.mach with
  | Some t when may_inline ctx ->
      (Array.unsafe_get t.cpus ctx.cur).time
  | _ -> perform_op Now

let irq_disable () =
  let ctx = fast_ctx () in
  match ctx.mach with
  | Some t when may_inline ctx ->
      ignore (exec_irq t (Array.unsafe_get t.cpus ctx.cur) true)
  | _ -> ignore (perform_op (Irq true))

let irq_enable () =
  let ctx = fast_ctx () in
  match ctx.mach with
  | Some t when may_inline ctx ->
      ignore (exec_irq t (Array.unsafe_get t.cpus ctx.cur) false)
  | _ -> ignore (perform_op (Irq false))

(* Run a program until its first operation (or completion). *)
let reify (f : unit -> unit) : step =
  let open Effect.Deep in
  match_with f ()
    {
      retc = (fun () -> Done);
      exnc = raise;
      effc =
        (fun (type a) (eff : a Effect.t) ->
          match eff with
          | Op o ->
              Some (fun (k : (a, step) continuation) -> Next (o, k))
          | _ -> None);
    }

let run ?(max_cycles = 0) t progs =
  let n = Array.length progs in
  if n < 1 || n > t.cfg.ncpus then
    invalid_arg
      (Printf.sprintf "Sim.Machine.run: %d programs for %d CPUs" n
         t.cfg.ncpus);
  let ctx = Domain.DLS.get executing_key in
  (* Save the whole context so a (pathological) nested run restores the
     outer machine's fast-path bounds on the way out. *)
  let saved_mach = ctx.mach
  and saved_limit_time = ctx.limit_time
  and saved_limit_id = ctx.limit_id
  and saved_max_cycles = ctx.max_cycles in
  ctx.mach <- Some t;
  ctx.max_cycles <- max_cycles;
  let restore () =
    ctx.mach <- saved_mach;
    ctx.limit_time <- saved_limit_time;
    ctx.limit_id <- saved_limit_id;
    ctx.max_cycles <- saved_max_cycles
  in
  match
    (* Launch every program up to its first operation.  The launch
       itself consumes no virtual time, and the fast path stays
       disabled (limit_time = min_int): later programs have not
       launched yet, so "no other pending CPU" would be a lie. *)
    ctx.limit_time <- min_int;
    ctx.limit_id <- max_int;
    for i = 0 to n - 1 do
      let c = t.cpus.(i) in
      let prog = progs.(i) in
      let saved = ctx.cur in
      ctx.cur <- c.id;
      let s =
        match reify (fun () -> prog i) with
        | s ->
            ctx.cur <- saved;
            s
        | exception e ->
            ctx.cur <- saved;
            raise e
      in
      match s with
      | Done -> ()
      | Next _ -> c.state <- s
    done;
    (* Discrete-event loop: always advance the pending CPU with the
       smallest clock (ties by id, giving determinism).  The pending
       CPUs live in a binary min-heap ordered exactly like the old
       linear pick (time, then id), so the pick is the root, and the
       earliest instant any OTHER pending CPU could run — the
       fast-path bound published to the resumed program — is simply
       the smaller of the root's two children, for free.  Clocks only
       move forward, so re-keying the root after its operation is a
       single sift-down: O(log ncpus) per event where the scan-based
       loop paid O(ncpus) twice, which is most of the event cost on
       wide machines. *)
    let cpus = t.cpus in
    (* The heap stores packed keys [(time lsl id_bits) lor id], not cpu
       records: integer comparison of packed keys IS the scheduler's
       (time, id) lexicographic order (ncpus <= Config.max_cpus <=
       2^id_bits is a Config invariant, statically asserted above), so
       sifts compare registers instead of chasing two pointers per
       comparison, and the int array needs no GC write barrier.
       Virtual clocks would need to pass 2^52 cycles to overflow the
       packing; the longest figure-scale runs sit around 2^27. *)
    let key_of (c : cpu) = (c.time lsl id_bits) lor c.id in
    let heap = Array.make n 0 in
    let hn = ref 0 in
    let sift_down () =
      let x = Array.unsafe_get heap 0 in
      let i = ref 0 in
      let break = ref false in
      while not !break do
        let l = (2 * !i) + 1 in
        if l >= !hn then break := true
        else begin
          let m =
            if l + 1 < !hn && Array.unsafe_get heap (l + 1) < Array.unsafe_get heap l
            then l + 1
            else l
          in
          if Array.unsafe_get heap m < x then begin
            Array.unsafe_set heap !i (Array.unsafe_get heap m);
            i := m
          end
          else break := true
        end
      done;
      Array.unsafe_set heap !i x
    in
    let push k =
      let i = ref !hn in
      incr hn;
      while
        !i > 0
        &&
        let p = (!i - 1) / 2 in
        k < heap.(p)
      do
        let p = (!i - 1) / 2 in
        heap.(!i) <- heap.(p);
        i := p
      done;
      heap.(!i) <- k
    in
    for i = 0 to n - 1 do
      let c = cpus.(i) in
      match c.state with Next _ -> push (key_of c) | Done -> ()
    done;
    let rec loop () =
      if !hn > 0 then begin
        let c = Array.unsafe_get cpus (Array.unsafe_get heap 0 land id_mask) in
        if max_cycles > 0 && c.time > max_cycles then raise (Watchdog c.time);
        (* min over the other pending CPUs = min of the root's children *)
        if !hn > 1 then begin
          let m =
            if !hn > 2 && Array.unsafe_get heap 2 < Array.unsafe_get heap 1
            then Array.unsafe_get heap 2
            else Array.unsafe_get heap 1
          in
          ctx.limit_time <- m asr id_bits;
          ctx.limit_id <- m land id_mask
        end
        else begin
          ctx.limit_time <- max_int;
          ctx.limit_id <- max_int
        end;
        (* [step] inlined: at simulator event rates even the two call
           frames (step, resume) are measurable. *)
        (match c.state with
        | Done -> ()
        | Next (o, k) ->
            let result = exec t c o in
            c.state <- Done;
            let saved = ctx.cur in
            ctx.cur <- c.id;
            (match Effect.Deep.continue k result with
            | s ->
                ctx.cur <- saved;
                c.state <- s
            | exception e ->
                ctx.cur <- saved;
                raise e));
        (match c.state with
        | Done ->
            hn := !hn - 1;
            if !hn > 0 then begin
              Array.unsafe_set heap 0 (Array.unsafe_get heap !hn);
              sift_down ()
            end
        | Next _ ->
            Array.unsafe_set heap 0 (key_of c);
            sift_down ());
        loop ()
      end
    in
    loop ()
    with
  | () -> restore ()
  | exception e ->
      restore ();
      raise e

let run_symmetric ?max_cycles t ~ncpus f =
  run ?max_cycles t (Array.init ncpus (fun _ -> f))
