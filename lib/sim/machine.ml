exception Not_in_simulation
exception Deadlock of string
exception Watchdog of int

type op =
  | Read of Memory.addr
  | Write of Memory.addr * int
  | Cas of Memory.addr * int * int
  | Faa of Memory.addr * int
  | Swap of Memory.addr * int
  | Work of int
  | Spin
  | Cpu_id
  | Now
  | Irq of bool

type _ Effect.t += Op : op -> int Effect.t

type step = Done | Next of op * (int, step) Effect.Deep.continuation

type cpu = {
  id : int;
  mutable time : int;
  mutable nretired : int;
  mutable irq_off : bool;
  mutable nspins : int;
  mutable state : state;
}

and state =
  | Idle
  | Pending of op * (int, step) Effect.Deep.continuation

type t = {
  cfg : Config.t;
  memory : Memory.t;
  cache : Cache.t;
  cpus : cpu array;
  mutable bus_free : int;
      (* Virtual instant the shared bus becomes free.  Off-chip
         transfers queue behind it; because operations execute in
         global time order, grants are naturally first-come
         first-served. *)
}

let create (cfg : Config.t) =
  Config.validate cfg;
  {
    cfg;
    memory = Memory.create ~words:cfg.memory_words;
    cache = Cache.create cfg;
    cpus =
      Array.init cfg.ncpus (fun id ->
          {
            id;
            time = 0;
            nretired = 0;
            irq_off = false;
            nspins = 0;
            state = Idle;
          });
    bus_free = 0;
  }

let config t = t.cfg
let memory t = t.memory
let cache t = t.cache
let cpu_time t ~cpu = t.cpus.(cpu).time
let retired t ~cpu = t.cpus.(cpu).nretired

let elapsed t =
  Array.fold_left (fun acc c -> max acc c.time) 0 t.cpus

let reset_clocks t =
  t.bus_free <- 0;
  Array.iter
    (fun c ->
      c.time <- 0;
      c.nretired <- 0)
    t.cpus

let irq_disabled t ~cpu = t.cpus.(cpu).irq_off

(* The CPU whose program (host code between two operations) is executing
   right now, if any.  Maintained by the scheduler around every
   continuation resume so that host-side observers — the flight
   recorder above all — can learn the current CPU and its clock WITHOUT
   performing a (zero-cost but scheduler-visible) operation.  An extra
   operation is an extra yield point: it splits the host code around it
   into separately scheduled slices, letting same-instant host code on
   other CPUs interleave where it otherwise could not.  That never
   perturbs the simulated memory order, but host-side state shared
   between programs (allocator adaptation state, fault PRNGs) would see
   a different interleaving — observable as recorder-on runs diverging
   from recorder-off runs. *)
let executing : cpu option ref = ref None

let with_executing c f =
  let saved = !executing in
  executing := Some c;
  Fun.protect ~finally:(fun () -> executing := saved) f

let running () =
  match !executing with Some c -> Some (c.id, c.time) | None -> None

let running_irq_off () =
  match !executing with Some c -> c.irq_off | None -> false

(* Typed operation fronts.  All operations funnel through a single
   int-valued effect so the scheduler needs no existential plumbing. *)
let perform_op o =
  try Effect.perform (Op o)
  with Effect.Unhandled _ -> raise Not_in_simulation
let read a = perform_op (Read a)
let write a v = ignore (perform_op (Write (a, v)))

let cas a ~expected ~desired = perform_op (Cas (a, expected, desired)) = 1
let fetch_add a n = perform_op (Faa (a, n))
let swap a v = perform_op (Swap (a, v))
let work n = if n > 0 then ignore (perform_op (Work n))
let spin_pause () = ignore (perform_op Spin)
let cpu_id () = perform_op Cpu_id
let now () = perform_op Now
let irq_disable () = ignore (perform_op (Irq true))
let irq_enable () = ignore (perform_op (Irq false))

(* Run a program until its first operation (or completion). *)
let reify (f : unit -> unit) : step =
  let open Effect.Deep in
  match_with f ()
    {
      retc = (fun () -> Done);
      exnc = raise;
      effc =
        (fun (type a) (eff : a Effect.t) ->
          match eff with
          | Op o ->
              Some (fun (k : (a, step) continuation) -> Next (o, k))
          | _ -> None);
    }

(* Execute [o] on behalf of [c] at its current virtual time.  Returns
   (result, cost, insns). *)
let exec t (c : cpu) (o : op) : int * int * int =
  let cfg = t.cfg in
  let mem_access a kind =
    let stall = Cache.access t.cache ~cpu:c.id a kind in
    let stall =
      if stall > 0 && cfg.bus_model then begin
        (* The transfer waits for the bus, then holds it for its
           request/arbitration phases while the CPU stalls for the full
           transfer latency. *)
        let wait = max 0 (t.bus_free - c.time) in
        let occupancy = max 1 (stall / cfg.bus_occupancy_div) in
        t.bus_free <- c.time + wait + occupancy;
        wait + stall
      end
      else stall
    in
    cfg.insn_cost + stall
  in
  match o with
  | Read a -> (Memory.get t.memory a, mem_access a Cache.Load, 1)
  | Write (a, v) ->
      let cost = mem_access a Cache.Store in
      Memory.set t.memory a v;
      (0, cost, 1)
  | Cas (a, expected, desired) ->
      let cost = mem_access a Cache.Rmw + cfg.rmw_cost in
      let cur = Memory.get t.memory a in
      if cur = expected then begin
        Memory.set t.memory a desired;
        (1, cost, 1)
      end
      else (0, cost, 1)
  | Faa (a, n) ->
      let cost = mem_access a Cache.Rmw + cfg.rmw_cost in
      let old = Memory.get t.memory a in
      Memory.set t.memory a (old + n);
      (old, cost, 1)
  | Swap (a, v) ->
      let cost = mem_access a Cache.Rmw + cfg.rmw_cost in
      let old = Memory.get t.memory a in
      Memory.set t.memory a v;
      (old, cost, 1)
  | Work n -> (0, n * cfg.insn_cost, n)
  | Spin ->
      (* Deterministic pseudo-random jitter.  Without it, a spinning CPU
         can phase-lock with another CPU's periodic lock/unlock pattern
         and lose the race forever — an artifact of the discrete-event
         model that real bus arbitration and timing noise preclude. *)
      c.nspins <- c.nspins + 1;
      let mix = ((c.nspins * 2654435761) + (c.id * 40503)) land max_int in
      let jitter = mix mod ((3 * cfg.spin_cost) + 1) in
      (0, cfg.spin_cost + jitter, 1)
  | Cpu_id -> (c.id, 0, 0)
  | Now -> (c.time, 0, 0)
  | Irq on ->
      c.irq_off <- on;
      (0, cfg.irq_cost, 1)

let step t (c : cpu) =
  match c.state with
  | Idle -> ()
  | Pending (o, k) ->
      let result, cost, insns = exec t c o in
      c.time <- c.time + cost;
      c.nretired <- c.nretired + insns;
      c.state <- Idle;
      (match with_executing c (fun () -> Effect.Deep.continue k result) with
      | Done -> ()
      | Next (o', k') -> c.state <- Pending (o', k'))

let run ?(max_cycles = 0) t progs =
  let n = Array.length progs in
  if n < 1 || n > t.cfg.ncpus then
    invalid_arg
      (Printf.sprintf "Sim.Machine.run: %d programs for %d CPUs" n
         t.cfg.ncpus);
  (* Launch every program up to its first operation.  The launch itself
     consumes no virtual time. *)
  let live = ref 0 in
  for i = 0 to n - 1 do
    let c = t.cpus.(i) in
    match with_executing c (fun () -> reify (fun () -> progs.(i) i)) with
    | Done -> ()
    | Next (o, k) ->
        c.state <- Pending (o, k);
        incr live
  done;
  (* Discrete-event loop: always advance the pending CPU with the
     smallest clock (ties by id, giving determinism). *)
  let pick () =
    let best = ref (-1) in
    let best_time = ref max_int in
    for i = 0 to n - 1 do
      let c = t.cpus.(i) in
      match c.state with
      | Pending _ when c.time < !best_time ->
          best := i;
          best_time := c.time
      | Pending _ | Idle -> ()
    done;
    !best
  in
  let rec loop () =
    let i = pick () in
    if i >= 0 then begin
      let c = t.cpus.(i) in
      if max_cycles > 0 && c.time > max_cycles then raise (Watchdog c.time);
      let was_pending = match c.state with Pending _ -> true | Idle -> false in
      step t c;
      (match c.state with
      | Idle when was_pending -> decr live
      | Idle | Pending _ -> ());
      loop ()
    end
    else if !live > 0 then
      raise (Deadlock "unfinished CPUs but none runnable")
  in
  loop ()

let run_symmetric ?max_cycles t ~ncpus f =
  run ?max_cycles t (Array.init ncpus (fun _ -> f))
