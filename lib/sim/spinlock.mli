(** Test-and-test-and-set spinlock over a word of simulated memory.

    This is the synchronization primitive whose cost the paper's
    allocator is designed to avoid: acquiring it performs an atomic
    read-modify-write on a shared cache line, so under contention the
    lock line ping-pongs between CPUs and acquisition cost grows with the
    number of contenders.  All functions must run inside a simulated
    program (see {!Machine}).

    Invariants: locks are non-recursive and must be released by the
    acquiring CPU; nested acquisitions must follow one global class
    order (in this codebase: gbl -> pagepool -> vmblk, see DESIGN.md
    "Concurrency invariants"); every acquire/release flows through this
    module so the {!Lockcheck} order graph sees it. *)

type t

val locked_value : int
val unlocked_value : int

val init : Memory.t -> Memory.addr -> t
(** [init mem a] initialises the word at [a] to unlocked (boot-time,
    uncharged) and returns the lock handle. *)

val addr : t -> Memory.addr

val acquire : t -> unit
(** [acquire t] spins until the lock is taken: reads until the word looks
    free, then attempts a compare-and-swap, backing off with
    {!Machine.spin_pause} on failure.  When a {!Flightrec.Recorder} is
    installed, emits a [Lock_acquire] event carrying the failed-attempt
    (spin) count — host-side, at zero simulated cost. *)

val release : t -> unit
(** [release t] stores the unlocked value.  The caller must hold the
    lock (checked by assertion).  Emits [Lock_release] when a flight
    recorder is installed. *)

val try_acquire : t -> bool
(** [try_acquire t] makes a single attempt. *)

val with_lock : t -> (unit -> 'a) -> 'a
(** [with_lock t f] runs [f ()] with the lock held, releasing on return.
    [f] must not raise: simulated kernel code does not unwind across a
    critical section (enforced by re-raising after release). *)

val holder_oracle : Memory.t -> t -> bool
(** [holder_oracle mem t] is true when the lock word reads locked
    (host-side test oracle, uncharged). *)
