type t = { a : Memory.addr }

let locked_value = 1
let unlocked_value = 0

let init mem a =
  Memory.set mem a unlocked_value;
  { a }

let addr t = t.a

(* Lockcheck hooks share the flight recorder's zero-perturbation
   contract: [Machine.running] only, no operations (see [emit]). *)
let lc_acquire t =
  if Lockcheck.on () then
    match Machine.running () with
    | Some (cpu, time) -> Lockcheck.acquire ~cpu ~time ~addr:t.a
    | None -> ()

let lc_release t =
  if Lockcheck.on () then
    match Machine.running () with
    | Some (cpu, time) -> Lockcheck.release ~cpu ~time ~addr:t.a
    | None -> ()

let try_acquire t =
  let ok = Machine.cas t.a ~expected:unlocked_value ~desired:locked_value in
  if ok then lc_acquire t;
  ok

(* Test-and-set with jittered pauses.  A test-and-TEST-and-set spin
   reads first and only then attempts the atomic, but in the simulation
   the read-to-CAS latency is a whole coherence miss, so against a
   holder that releases and re-acquires quickly the spinner's CAS would
   always arrive late — a livelock the bus arbitration of real hardware
   prevents.  The atomic itself samples the lock word at its issue
   instant, so spinning directly on it (with {!Machine.spin_pause}'s
   deterministic jitter de-phasing the loop) guarantees progress and
   honestly charges the bus traffic that made these locks expensive. *)
(* Emits use the host-side [Machine.running] accessor, not the
   [cpu_id]/[now] operations: an operation — even a free one — is a
   scheduler yield point, and the recorder must not add any. *)
let emit kind =
  if Flightrec.Recorder.on () then
    match Machine.running () with
    | Some (cpu, time) -> Flightrec.Recorder.emit ~cpu ~time kind
    | None -> ()

let acquire t =
  let rec attempt spins =
    if not (try_acquire t) then begin
      Machine.spin_pause ();
      attempt (spins + 1)
    end
    else spins
  in
  let spins = attempt 0 in
  emit (Flightrec.Event.Lock_acquire { lock = t.a; spins })

let release t =
  assert (Machine.read t.a = locked_value);
  lc_release t;
  Machine.write t.a unlocked_value;
  emit (Flightrec.Event.Lock_release { lock = t.a })

let with_lock t f =
  acquire t;
  match f () with
  | v ->
      release t;
      v
  | exception e ->
      release t;
      raise e

let holder_oracle mem t = Memory.get mem t.a = locked_value
