type addr = int
type t = { words : int array }

let create ~words =
  if words <= 0 then invalid_arg "Sim.Memory.create: words must be positive";
  { words = Array.make words 0 }

let size t = Array.length t.words

let[@inline never] bad t a who =
  ignore (t : t);
  invalid_arg
    (Printf.sprintf "Sim.Memory.%s: address %d out of bounds [0, %d)" who a
       (Array.length t.words))

(* The bounds check is inlined at every call site (one compare and a
   cold branch); the error path stays out of line so [get]/[set] are
   small enough for the compiler to inline cross-module into the
   simulator's per-operation executors. *)
let[@inline] check t a who =
  if a < 0 || a >= Array.length t.words then bad t a who

let[@inline] get t a =
  check t a "get";
  Array.unsafe_get t.words a

let[@inline] set t a v =
  check t a "set";
  Array.unsafe_set t.words a v

let fill t a ~len v =
  check t a "fill";
  check t (a + len - 1) "fill";
  Array.fill t.words a len v

let blit_to_host t a ~len =
  check t a "blit_to_host";
  check t (a + len - 1) "blit_to_host";
  Array.sub t.words a len
