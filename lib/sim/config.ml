type t = {
  ncpus : int;
  memory_words : int;
  line_words : int;
  cache_lines : int;
  ways : int;
  insn_cost : int;
  miss_cost : int;
  c2c_cost : int;
  upgrade_cost : int;
  rmw_cost : int;
  irq_cost : int;
  spin_cost : int;
  uncached_words : int;
  uncached_cost : int;
  bus_model : bool;
  bus_occupancy_div : int;
  mhz : int;
}

let geometry t =
  {
    Geometry.line_words = t.line_words;
    cache_lines = t.cache_lines;
    ways = t.ways;
    insn_cost = t.insn_cost;
    miss_cost = t.miss_cost;
    c2c_cost = t.c2c_cost;
    upgrade_cost = t.upgrade_cost;
    rmw_cost = t.rmw_cost;
  }

let validate t =
  let check cond msg = if not cond then invalid_arg ("Sim.Config: " ^ msg) in
  check (t.ncpus >= 1 && t.ncpus <= 64) "ncpus must be in [1, 64]";
  Geometry.validate (geometry t);
  check (t.memory_words > 0) "memory_words must be positive";
  check
    (t.memory_words mod t.line_words = 0)
    "memory_words must be a multiple of line_words";
  check (t.irq_cost >= 0) "irq_cost must be non-negative";
  check (t.spin_cost >= 1) "spin_cost must be at least 1";
  check
    (t.uncached_words >= 0 && t.uncached_words < t.memory_words)
    "uncached_words must fit below memory_words";
  check (t.uncached_cost >= 0) "uncached_cost must be non-negative";
  check (t.bus_occupancy_div >= 1) "bus_occupancy_div must be >= 1";
  check (t.mhz >= 1) "mhz must be positive"

let default =
  {
    ncpus = 4;
    memory_words = 4 * 1024 * 1024;
    line_words = Geometry.default.Geometry.line_words;
    cache_lines = Geometry.default.Geometry.cache_lines;
    ways = Geometry.default.Geometry.ways;
    insn_cost = Geometry.default.Geometry.insn_cost;
    miss_cost = Geometry.default.Geometry.miss_cost;
    c2c_cost = Geometry.default.Geometry.c2c_cost;
    upgrade_cost = Geometry.default.Geometry.upgrade_cost;
    rmw_cost = Geometry.default.Geometry.rmw_cost;
    irq_cost = 4;
    spin_cost = 4;
    uncached_words = 0;
    uncached_cost = 40;
    bus_model = true;
    bus_occupancy_div = 4;
    mhz = 50;
  }

let make ?geometry:geom ?ncpus ?memory_words ?line_words ?cache_lines ?ways
    ?insn_cost ?miss_cost ?c2c_cost ?upgrade_cost ?rmw_cost ?irq_cost
    ?spin_cost ?uncached_words ?uncached_cost ?bus_model ?bus_occupancy_div
    ?mhz () =
  (* Three layers of defaults, outermost wins: the compiled-in
     [default], then the [?geometry] record, then any explicit
     per-field argument. *)
  let g =
    match geom with Some g -> g | None -> geometry default
  in
  let pick field fallback =
    match field with Some v -> v | None -> fallback
  in
  let dfl = pick in
  let t =
    {
      ncpus = dfl ncpus default.ncpus;
      memory_words = dfl memory_words default.memory_words;
      line_words = pick line_words g.Geometry.line_words;
      cache_lines = pick cache_lines g.Geometry.cache_lines;
      ways = pick ways g.Geometry.ways;
      insn_cost = pick insn_cost g.Geometry.insn_cost;
      miss_cost = pick miss_cost g.Geometry.miss_cost;
      c2c_cost = pick c2c_cost g.Geometry.c2c_cost;
      upgrade_cost = pick upgrade_cost g.Geometry.upgrade_cost;
      rmw_cost = pick rmw_cost g.Geometry.rmw_cost;
      irq_cost = dfl irq_cost default.irq_cost;
      spin_cost = dfl spin_cost default.spin_cost;
      uncached_words = dfl uncached_words default.uncached_words;
      uncached_cost = dfl uncached_cost default.uncached_cost;
      bus_model = dfl bus_model default.bus_model;
      bus_occupancy_div = dfl bus_occupancy_div default.bus_occupancy_div;
      mhz = dfl mhz default.mhz;
    }
  in
  validate t;
  t

let seconds_of_cycles t cycles = float_of_int cycles /. (float_of_int t.mhz *. 1e6)
