type t = {
  ncpus : int;
  memory_words : int;
  line_words : int;
  cache_lines : int;
  ways : int;
  insn_cost : int;
  miss_cost : int;
  c2c_cost : int;
  upgrade_cost : int;
  rmw_cost : int;
  nodes : int;
  node_miss_cost : int;
  node_c2c_cost : int;
  irq_cost : int;
  spin_cost : int;
  uncached_words : int;
  uncached_cost : int;
  bus_model : bool;
  bus_occupancy_div : int;
  mhz : int;
}

let geometry t =
  {
    Geometry.line_words = t.line_words;
    cache_lines = t.cache_lines;
    ways = t.ways;
    insn_cost = t.insn_cost;
    miss_cost = t.miss_cost;
    c2c_cost = t.c2c_cost;
    upgrade_cost = t.upgrade_cost;
    rmw_cost = t.rmw_cost;
    nodes = t.nodes;
    node_miss_cost = t.node_miss_cost;
    node_c2c_cost = t.node_c2c_cost;
  }

(* The only remaining width cap in the simulator: the scheduler heap
   packs (time, id) into one int with [Machine.id_bits] bits of id, and
   Machine statically asserts that [1 lsl id_bits >= max_cpus].  The
   cache sharer set is width-independent (an int-array word per 32 CPUs
   per line), so raising this cap only requires widening the heap
   packing — the assertion in machine.ml fails loudly if the two ever
   disagree. *)
let max_cpus = 1024

let validate t =
  let check cond msg = if not cond then invalid_arg ("Sim.Config: " ^ msg) in
  check
    (t.ncpus >= 1 && t.ncpus <= max_cpus)
    (Printf.sprintf "ncpus must be in [1, %d]" max_cpus);
  Geometry.validate (geometry t);
  check (t.nodes <= t.ncpus) "nodes must not exceed ncpus";
  check (t.memory_words > 0) "memory_words must be positive";
  check
    (t.memory_words mod t.line_words = 0)
    "memory_words must be a multiple of line_words";
  check (t.irq_cost >= 0) "irq_cost must be non-negative";
  check (t.spin_cost >= 1) "spin_cost must be at least 1";
  check
    (t.uncached_words >= 0 && t.uncached_words < t.memory_words)
    "uncached_words must fit below memory_words";
  check (t.uncached_cost >= 0) "uncached_cost must be non-negative";
  check (t.bus_occupancy_div >= 1) "bus_occupancy_div must be >= 1";
  check (t.mhz >= 1) "mhz must be positive"

let default =
  {
    ncpus = 4;
    memory_words = 4 * 1024 * 1024;
    line_words = Geometry.default.Geometry.line_words;
    cache_lines = Geometry.default.Geometry.cache_lines;
    ways = Geometry.default.Geometry.ways;
    insn_cost = Geometry.default.Geometry.insn_cost;
    miss_cost = Geometry.default.Geometry.miss_cost;
    c2c_cost = Geometry.default.Geometry.c2c_cost;
    upgrade_cost = Geometry.default.Geometry.upgrade_cost;
    rmw_cost = Geometry.default.Geometry.rmw_cost;
    nodes = Geometry.default.Geometry.nodes;
    node_miss_cost = Geometry.default.Geometry.node_miss_cost;
    node_c2c_cost = Geometry.default.Geometry.node_c2c_cost;
    irq_cost = 4;
    spin_cost = 4;
    uncached_words = 0;
    uncached_cost = 40;
    bus_model = true;
    bus_occupancy_div = 4;
    mhz = 50;
  }

let make ?geometry:geom ?ncpus ?memory_words ?line_words ?cache_lines ?ways
    ?insn_cost ?miss_cost ?c2c_cost ?upgrade_cost ?rmw_cost ?nodes
    ?node_miss_cost ?node_c2c_cost ?irq_cost ?spin_cost ?uncached_words
    ?uncached_cost ?bus_model ?bus_occupancy_div ?mhz () =
  (* Three layers of defaults, outermost wins: the compiled-in
     [default], then the [?geometry] record, then any explicit
     per-field argument. *)
  let g =
    match geom with Some g -> g | None -> geometry default
  in
  let pick field fallback =
    match field with Some v -> v | None -> fallback
  in
  let dfl = pick in
  let t =
    {
      ncpus = dfl ncpus default.ncpus;
      memory_words = dfl memory_words default.memory_words;
      line_words = pick line_words g.Geometry.line_words;
      cache_lines = pick cache_lines g.Geometry.cache_lines;
      ways = pick ways g.Geometry.ways;
      insn_cost = pick insn_cost g.Geometry.insn_cost;
      miss_cost = pick miss_cost g.Geometry.miss_cost;
      c2c_cost = pick c2c_cost g.Geometry.c2c_cost;
      upgrade_cost = pick upgrade_cost g.Geometry.upgrade_cost;
      rmw_cost = pick rmw_cost g.Geometry.rmw_cost;
      nodes = pick nodes g.Geometry.nodes;
      node_miss_cost = pick node_miss_cost g.Geometry.node_miss_cost;
      node_c2c_cost = pick node_c2c_cost g.Geometry.node_c2c_cost;
      irq_cost = dfl irq_cost default.irq_cost;
      spin_cost = dfl spin_cost default.spin_cost;
      uncached_words = dfl uncached_words default.uncached_words;
      uncached_cost = dfl uncached_cost default.uncached_cost;
      bus_model = dfl bus_model default.bus_model;
      bus_occupancy_div = dfl bus_occupancy_div default.bus_occupancy_div;
      mhz = dfl mhz default.mhz;
    }
  in
  validate t;
  t

let seconds_of_cycles t cycles = float_of_int cycles /. (float_of_int t.mhz *. 1e6)

(* CPU-to-node mapping, shared by the cache model, the machine's
   per-node buses, and the NUMA-aware kma global layer so they can
   never disagree about topology: contiguous blocks, last node possibly
   short when nodes does not divide ncpus. *)
let cpus_per_node t = (t.ncpus + t.nodes - 1) / t.nodes
let node_of t cpu = if t.nodes = 1 then 0 else cpu / cpus_per_node t
