type t = {
  total : int;
  grant_cost : int;
  reclaim_cost : int;
  mutable ngranted : int;
  mutable peak : int;
  mutable grants : int;
  mutable reclaims : int;
  mutable denials : int;
  mutable injected_denials : int;
  (* Fault injection: deny a grant when the next PRNG draw, reduced to
     16 bits, falls below [fault_threshold] (0 = off). *)
  mutable fault_threshold : int;
  mutable fault_state : int;
}

let create ~total_pages ~grant_cost ~reclaim_cost =
  if total_pages <= 0 then invalid_arg "Sim.Vmsys.create: total_pages";
  if grant_cost < 0 || reclaim_cost < 0 then
    invalid_arg "Sim.Vmsys.create: negative cost";
  {
    total = total_pages;
    grant_cost;
    reclaim_cost;
    ngranted = 0;
    peak = 0;
    grants = 0;
    reclaims = 0;
    denials = 0;
    injected_denials = 0;
    fault_threshold = 0;
    fault_state = 0;
  }

(* Same splitmix-style mixer as Workload.Prng, inlined so the simulator
   stays dependency-free; host-side state, so fault draws charge no
   simulated cycles and runs stay deterministic. *)
let fault_gamma = 0x2545F4914F6CDD1D
let fault_m1 = 0x2F58476D1CE4E5B9
let fault_m2 = 0x14D049BB133111EB

let fault_next t =
  t.fault_state <- t.fault_state + fault_gamma;
  let z = t.fault_state in
  let z = (z lxor (z lsr 30)) * fault_m1 in
  let z = (z lxor (z lsr 27)) * fault_m2 in
  (z lxor (z lsr 31)) land max_int

let set_fault_rate t ?(seed = 1) rate =
  if not (Float.is_finite rate) || rate < 0. || rate > 1. then
    invalid_arg "Sim.Vmsys.set_fault_rate: rate outside [0,1]";
  t.fault_threshold <- int_of_float (rate *. 65536.);
  t.fault_state <- seed lxor fault_gamma

let fault_rate t = float_of_int t.fault_threshold /. 65536.

(* Host-side [Machine.running], not the [cpu_id]/[now] operations: the
   recorder must add no yield points (see [Sim.Machine.running]). *)
let emit kind =
  if Flightrec.Recorder.on () then
    match Machine.running () with
    | Some (cpu, time) -> Flightrec.Recorder.emit ~cpu ~time kind
    | None -> ()

(* Entering the VM system with a (non-vm_safe) spinlock held is the
   discipline violation the paper warns about; same host-side contract
   as [emit]. *)
let lc_vm what =
  if Lockcheck.on () then
    match Machine.running () with
    | Some (cpu, time) -> Lockcheck.vm_call ~cpu ~time ~what
    | None -> ()

let grant t =
  lc_vm "grant";
  Machine.work t.grant_cost;
  let injected =
    t.fault_threshold > 0 && fault_next t land 0xFFFF < t.fault_threshold
  in
  if injected || t.ngranted >= t.total then begin
    t.denials <- t.denials + 1;
    if injected then t.injected_denials <- t.injected_denials + 1;
    emit (Flightrec.Event.Vm_denial { injected });
    false
  end
  else begin
    t.ngranted <- t.ngranted + 1;
    t.grants <- t.grants + 1;
    if t.ngranted > t.peak then t.peak <- t.ngranted;
    emit Flightrec.Event.Vm_grant;
    true
  end

let reclaim t =
  lc_vm "reclaim";
  Machine.work t.reclaim_cost;
  if t.ngranted <= 0 then
    invalid_arg "Sim.Vmsys.reclaim: more reclaims than grants";
  t.ngranted <- t.ngranted - 1;
  t.reclaims <- t.reclaims + 1;
  emit Flightrec.Event.Vm_reclaim

let granted t = t.ngranted
let available t = t.total - t.ngranted
let total_pages t = t.total
let peak_granted t = t.peak
let grant_count t = t.grants
let reclaim_count t = t.reclaims
let denial_count t = t.denials
let injected_denial_count t = t.injected_denials

let reset_counters t =
  t.grants <- 0;
  t.reclaims <- 0;
  t.denials <- 0;
  t.injected_denials <- 0;
  t.peak <- t.ngranted
