(** Cost model and machine parameters for the simulated shared-memory
    multiprocessor.

    All costs are in CPU cycles.  The defaults are loosely calibrated to a
    50 MHz 80486-based Sequent Symmetry: a fast pipeline relative to its
    bus, small per-CPU caches, and expensive atomic read-modify-write
    operations.  Absolute values are not meant to match the paper's
    microsecond numbers; they are chosen so that the *relative* behaviour
    (coherence-miss domination, lock-contention collapse) is realistic.

    The cache-shaped subset of these fields (line size, capacity,
    associativity, per-access costs) is a {!Geometry.t}: pass one to
    {!make} — typically parsed at run time from [--geometry] or the
    [KMA_GEOMETRY] environment — to sweep cache geometry without
    recompiling.  See the paper's Design section cache-profile analysis,
    which this turns into an experiment axis (E12). *)

type t = {
  ncpus : int;  (** number of simulated CPUs *)
  memory_words : int;  (** size of simulated physical memory, in words *)
  line_words : int;  (** cache-line size in words; must be a power of two *)
  cache_lines : int;
      (** per-CPU cache capacity in lines; [0] means unbounded *)
  ways : int;
      (** set associativity (lines per set); [0] means fully
          associative.  When positive it must divide [cache_lines] with
          a power-of-two set count; replacement is FIFO within a set. *)
  insn_cost : int;  (** base cost of any instruction *)
  miss_cost : int;  (** extra cycles for a miss serviced from memory *)
  c2c_cost : int;
      (** extra cycles for a miss serviced from another CPU's dirty line *)
  upgrade_cost : int;
      (** extra cycles to upgrade a shared line to exclusive (bus
          invalidation round) *)
  rmw_cost : int;  (** extra pipeline-stall cycles for an atomic RMW *)
  nodes : int;
      (** NUMA nodes (contiguous CPU blocks, address-range memory
          homes); [1] = the flat paper machine, bit-identical to the
          pre-NUMA model *)
  node_miss_cost : int;
      (** extra cycles for a miss serviced by remote-node memory (and
          the third directory hop of an off-node dirty transfer) *)
  node_c2c_cost : int;
      (** extra cycles when a dirty transfer or invalidation crosses
          the node interconnect *)
  irq_cost : int;  (** cost of disabling or enabling interrupts *)
  spin_cost : int;  (** cost of one spin-wait pause iteration *)
  uncached_words : int;
      (** size of the uncacheable region at the top of memory (device
          registers); accesses there always pay [uncached_cost] *)
  uncached_cost : int;  (** cycles per access to the uncacheable region *)
  bus_model : bool;
      (** model the shared system bus as a single queued resource: every
          off-chip transfer (miss, cache-to-cache, upgrade, uncached
          access) queues for the bus, so misses from many CPUs serialise
          — the global saturation that caps lock-based allocators on
          real shared-bus machines *)
  bus_occupancy_div : int;
      (** a transfer holds the bus for [stall / bus_occupancy_div]
          cycles (min 1): a split-transaction bus is busy for the
          request/arbitration phases, not the whole memory latency *)
  mhz : int;  (** simulated clock rate, used to convert cycles to seconds *)
}

val default : t
(** [default] is a 4-CPU machine with 4 MiW of memory and
    {!Geometry.default} caches: 8-word (32-byte) lines, 256-line (8 KiB)
    fully-associative per-CPU caches. *)

val make :
  ?geometry:Geometry.t ->
  ?ncpus:int ->
  ?memory_words:int ->
  ?line_words:int ->
  ?cache_lines:int ->
  ?ways:int ->
  ?insn_cost:int ->
  ?miss_cost:int ->
  ?c2c_cost:int ->
  ?upgrade_cost:int ->
  ?rmw_cost:int ->
  ?nodes:int ->
  ?node_miss_cost:int ->
  ?node_c2c_cost:int ->
  ?irq_cost:int ->
  ?spin_cost:int ->
  ?uncached_words:int ->
  ?uncached_cost:int ->
  ?bus_model:bool ->
  ?bus_occupancy_div:int ->
  ?mhz:int ->
  unit ->
  t
(** [make ()] is [default] with the given fields overridden.
    [?geometry] supplies the cache-shaped fields ([line_words],
    [cache_lines], [ways] and the access costs) in one validated
    bundle; an explicit per-field argument still wins over it.

    @raise Invalid_argument if a field is out of range (e.g. [ncpus < 1],
    [line_words] not a power of two, or [memory_words] not line-aligned). *)

val geometry : t -> Geometry.t
(** [geometry t] projects the cache-shaped subset back out of a config
    (the exact inverse of passing [?geometry] to {!make}). *)

val seconds_of_cycles : t -> int -> float
(** [seconds_of_cycles t c] converts a cycle count to seconds at [t.mhz]. *)

val validate : t -> unit
(** [validate t] checks the invariants documented in {!make}, including
    {!Geometry.validate} on the cache-shaped subset, [ncpus <=]
    {!max_cpus} and [nodes <= ncpus].
    @raise Invalid_argument on violation. *)

val max_cpus : int
(** Hard upper bound on [ncpus] (1024).  The cache sharer set is
    width-independent, so this cap exists only for the scheduler's
    packed heap keys; {!Machine} statically asserts its id field is
    wide enough, so a future mismatch fails at module init, not as
    silent bitmask corruption. *)

val cpus_per_node : t -> int
(** CPUs per NUMA node (last node possibly short), [ncpus] at
    [nodes = 1]. *)

val node_of : t -> int -> int
(** [node_of t cpu] is the NUMA node of [cpu]: contiguous blocks of
    {!cpus_per_node} CPUs.  Always [0] at [nodes = 1].  The single
    source of topology truth for the cache model, the per-node buses
    and the NUMA-aware global layer. *)
