(** Runtime-configurable cache geometry for the simulated machine.

    The paper's cache-profile analysis (Design section, "Analysis of
    Memory-Allocator Cache Profile") varies cache geometry informally —
    line size against block size, per-CPU cache capacity against working
    set — to argue where coherence misses come from.  This module makes
    that axis a first-class, {e runtime} experiment parameter instead of
    a recompile: the subset of {!Config} that describes the cache
    (geometry proper: line size, capacity, associativity) together with
    the per-access cost model (hit, memory miss, remote-dirty miss,
    invalidation round, atomic RMW), parsed from a [key=value] spec
    string or the [KMA_GEOMETRY] environment variable, validated before
    any machine is built.

    A geometry never changes what the simulator {e does}, only what it
    {e charges} (and, through capacity/associativity, which accesses
    miss): at {!default} the cycle counts of every experiment are
    bit-identical to the compiled-in constants they replace (proven by
    [test/sim] and the fig7/E8 regression pins). *)

type t = {
  line_words : int;  (** cache-line size in words; power of two *)
  cache_lines : int;
      (** per-CPU capacity in lines; [0] means unbounded (no capacity
          misses, coherence misses only) *)
  ways : int;
      (** set associativity: lines per set.  [0] means fully
          associative (the paper-era default: one FIFO over the whole
          cache).  When positive it must divide [cache_lines] and the
          resulting set count must be a power of two; replacement is
          FIFO within each set. *)
  insn_cost : int;  (** base cost of any instruction (per-access cost) *)
  miss_cost : int;  (** extra cycles for a miss serviced from memory *)
  c2c_cost : int;
      (** extra cycles for a miss serviced from another CPU's dirty
          line (the "remote" cost that dominates the paper's profiles) *)
  upgrade_cost : int;  (** shared-to-exclusive bus invalidation round *)
  rmw_cost : int;  (** extra pipeline-stall cycles for an atomic RMW *)
  nodes : int;
      (** NUMA nodes the CPUs are split across (contiguous blocks of
          [ncpus / nodes] CPUs, memory home nodes by address range).
          [1] — the default — is the paper's flat shared-bus machine:
          no NUMA surcharge is ever applied and cycle counts are
          bit-identical to the pre-NUMA model. *)
  node_miss_cost : int;
      (** extra cycles when a memory miss is serviced by a {e remote}
          node's memory (and for the third directory hop of a remote
          dirty transfer whose home is on neither endpoint's node);
          inert at [nodes = 1] *)
  node_c2c_cost : int;
      (** extra cycles when a dirty transfer or invalidation round
          crosses the node interconnect; inert at [nodes = 1] *)
}

val default : t
(** The compiled-in geometry every recorded result uses: 8-word
    (32-byte) lines, 256-line (8 KiB) fully-associative per-CPU caches,
    and the 50 MHz-Symmetry-calibrated costs (hit 0, miss 30, remote
    dirty 50, upgrade 20, RMW 12, 1 cycle per instruction).  NUMA is
    off ([nodes = 1]); the node surcharges (remote-memory miss 60,
    cross-node transfer 80) only bite once [nodes > 1]. *)

val validate : t -> unit
(** [validate t] checks the invariants documented on each field.
    @raise Invalid_argument naming the offending field. *)

val to_string : t -> string
(** Canonical spec string, e.g.
    ["line=8,lines=256,assoc=0,insn=1,miss=30,c2c=50,upgrade=20,rmw=12,nodes=1,node_miss=60,node_c2c=80"].
    [of_string (to_string t) = Ok t]. *)

val of_string : string -> (t, string) result
(** [of_string spec] parses a comma-separated [key=value] list over
    {!default}; keys are [line], [lines], [assoc], [insn], [miss],
    [c2c], [upgrade], [rmw], [nodes], [node_miss], [node_c2c] (each
    value a non-negative integer).  An unknown key, malformed pair, or
    invariant violation is [Error msg] — the drivers turn it into a
    usage error (non-zero exit), never an exception escaping mid-run. *)

val env_var : string
(** ["KMA_GEOMETRY"] — the environment variable both drivers consult
    before their [--geometry] flag (the flag wins). *)

val of_env : unit -> (t, string) result
(** [of_env ()] parses {!env_var} ([Ok default] when unset or empty). *)

val set_ambient : t -> unit
(** [set_ambient g] installs [g] as the process-wide geometry that
    {!Workload.Rig.paper_config} (and so every experiment that does not
    build its own {!Config}) picks up.  Drivers call this once at
    startup, before any domain is spawned; tests that need a specific
    geometry pass an explicit config instead. *)

val ambient : unit -> t
(** The installed geometry; {!default} until {!set_ambient} is called. *)
