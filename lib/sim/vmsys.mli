(** Physical-memory accountant standing in for the DYNIX VM system.

    The paper's coalesce-to-page layer returns a page's *physical* memory
    to the VM system the moment every block in the page is free, while
    retaining the virtual address range.  This module models the VM
    system's side of that contract: a bounded pool of physical pages with
    a cycle cost per grant and per reclaim.  The backing words live in
    {!Memory} regardless (we do not really unmap), so only the accounting
    and the cost are simulated — which is exactly what the benchmarks
    observe.

    Grant and reclaim must be called from inside a simulated program;
    they charge {!Machine.work}.  The VM system serialises internally, so
    callers need no extra locking (the simulated charge includes the VM
    system's own synchronisation). *)

type t

val create : total_pages:int -> grant_cost:int -> reclaim_cost:int -> t
(** @raise Invalid_argument if [total_pages <= 0] or a cost is
    negative. *)

val grant : t -> bool
(** [grant t] asks for one physical page; false when none remain or
    when fault injection denies the request.  Emits [Vm_grant] or
    [Vm_denial] when a {!Flightrec.Recorder} is installed. *)

val reclaim : t -> unit
(** [reclaim t] returns one physical page; emits [Vm_reclaim] when a
    flight recorder is installed.
    @raise Invalid_argument if more pages are reclaimed than granted. *)

(** {1 Fault injection (host-side)}

    Models a VM system under memory pressure refusing page grants.
    Denials are driven by a deterministic splitmix PRNG private to this
    instance, so simulations with fault injection remain reproducible;
    the draw is host-side and charges no simulated cycles. *)

val set_fault_rate : t -> ?seed:int -> float -> unit
(** [set_fault_rate t rate] makes each subsequent {!grant} fail with
    probability [rate] (in addition to genuine exhaustion), reseeding
    the fault PRNG.  [rate = 0.] turns injection off.
    @raise Invalid_argument if [rate] is outside [0, 1]. *)

val fault_rate : t -> float
(** Currently configured injection rate (quantised to 1/65536). *)

val granted : t -> int
val available : t -> int
val total_pages : t -> int
val peak_granted : t -> int
val grant_count : t -> int
val reclaim_count : t -> int

val denial_count : t -> int
(** Grants refused, for any reason, since the last counter reset. *)

val injected_denial_count : t -> int
(** The subset of {!denial_count} caused by fault injection. *)

val reset_counters : t -> unit
