type kind = Load | Store | Rmw

type stats = {
  mutable loads : int;
  mutable stores : int;
  mutable rmws : int;
  mutable hits : int;
  mutable misses : int;
  mutable c2c : int;
  mutable upgrades : int;
  mutable invalidations : int;
  mutable evictions : int;
  mutable stall_cycles : int;
}

(* Insertion-order queue of line indices, one per cache set, as a
   chunked deque.  Replaces the Queue.t (allocation per push) and the
   growable ring (unbounded doubling copies) of earlier revisions: a
   contended line is re-inserted on every steal while eviction may
   never run, so the queue grows with the steal count and any
   copy-on-grow scheme pays O(n) again and again.  Chunks are pushed
   at the tail and garbage-collected as the head drains; entries for
   lines since stolen by another CPU are skipped lazily at eviction
   time, which is why the queue can transiently hold more than [ways]
   entries. *)
type chunk = { data : int array; mutable next : chunk option }

let chunk_words = 4096

type fifo = {
  mutable head : chunk;
  mutable head_idx : int;
  mutable tail : chunk;
  mutable tail_idx : int;
  mutable len : int;
}

let fifo_create () =
  let c = { data = Array.make chunk_words 0; next = None } in
  { head = c; head_idx = 0; tail = c; tail_idx = 0; len = 0 }

let fifo_push f x =
  if f.tail_idx = chunk_words then begin
    let c = { data = Array.make chunk_words 0; next = None } in
    f.tail.next <- Some c;
    f.tail <- c;
    f.tail_idx <- 0
  end;
  Array.unsafe_set f.tail.data f.tail_idx x;
  f.tail_idx <- f.tail_idx + 1;
  f.len <- f.len + 1

(* Pop the oldest entry; the caller checks [len > 0]. *)
let fifo_pop f =
  if f.head_idx = chunk_words then begin
    (match f.head.next with
    | Some c -> f.head <- c
    | None -> assert false);
    f.head_idx <- 0
  end;
  let x = Array.unsafe_get f.head.data f.head_idx in
  f.head_idx <- f.head_idx + 1;
  f.len <- f.len - 1;
  x

type percpu = {
  st : stats;
  fifos : fifo array; (* one insertion-order ring per set *)
  set_nres : int array; (* resident lines per set *)
  mutable nresident : int;
}

(* Line directory as two flat arrays indexed by line number (the
   address space is small and dense, so a hash table on the
   per-operation path only added hashing and allocation):
   [sharers.(l)] is a bitmask of CPUs holding line [l]; [dirty.(l)] is
   the CPU holding it modified, or -1.  Invariant: dirty >= 0 implies
   sharers = just that CPU's bit. *)
type t = {
  cfg : Config.t;
  line_shift : int;
  set_mask : int; (* line land set_mask = the line's set index *)
  set_capacity : int; (* resident lines allowed per set (ways, or the
                         whole cache when fully associative) *)
  uncached_base : int; (* addresses at or above this bypass the cache *)
  sharers : int array;
  dirty : int array;
  cpus : percpu array;
  mutable trace :
    (cpu:int -> addr:Memory.addr -> kind -> cost:int -> unit) option;
}

let fresh_stats () =
  {
    loads = 0;
    stores = 0;
    rmws = 0;
    hits = 0;
    misses = 0;
    c2c = 0;
    upgrades = 0;
    invalidations = 0;
    evictions = 0;
    stall_cycles = 0;
  }

let log2 n =
  let rec go acc n = if n <= 1 then acc else go (acc + 1) (n lsr 1) in
  go 0 n

let create (cfg : Config.t) =
  let nlines = cfg.memory_words / cfg.line_words in
  (* ways = 0 is the fully-associative paper-era default: one set, one
     FIFO over the whole cache.  Geometry validation guarantees a
     power-of-two set count otherwise. *)
  let nsets = if cfg.ways = 0 then 1 else cfg.cache_lines / cfg.ways in
  let set_capacity = if cfg.ways = 0 then cfg.cache_lines else cfg.ways in
  {
    cfg;
    line_shift = log2 cfg.line_words;
    set_mask = nsets - 1;
    set_capacity;
    uncached_base = cfg.memory_words - cfg.uncached_words;
    sharers = Array.make nlines 0;
    dirty = Array.make nlines (-1);
    cpus =
      Array.init cfg.ncpus (fun _ ->
          {
            st = fresh_stats ();
            fifos = Array.init nsets (fun _ -> fifo_create ());
            set_nres = Array.make nsets 0;
            nresident = 0;
          });
    trace = None;
  }

let bit cpu = 1 lsl cpu
(* Index of the lowest set bit, by binary search (no ctz instruction
   from OCaml): 6 compares instead of a shift-and-test walk over all
   lower bit positions. *)
let[@inline] lsb_index b =
  let i = ref 0 and b = ref b in
  if !b land 0xFFFFFFFF = 0 then begin i := 32; b := !b lsr 32 end;
  if !b land 0xFFFF = 0 then begin i := !i + 16; b := !b lsr 16 end;
  if !b land 0xFF = 0 then begin i := !i + 8; b := !b lsr 8 end;
  if !b land 0xF = 0 then begin i := !i + 4; b := !b lsr 4 end;
  if !b land 0x3 = 0 then begin i := !i + 2; b := !b lsr 2 end;
  if !b land 0x1 = 0 then incr i;
  !i

(* Drop [cpu]'s copy of [line]. *)
(* [line] and the set index are in bounds by construction ([line] was
   derived from an address the caller has already accessed through
   [t.sharers]; sets are [line land set_mask]), so the per-access hot
   path below uses unchecked accesses throughout. *)
let drop_copy t line cpu =
  Array.unsafe_set t.sharers line
    (Array.unsafe_get t.sharers line land lnot (bit cpu));
  if Array.unsafe_get t.dirty line = cpu then Array.unsafe_set t.dirty line (-1);
  let pc = Array.unsafe_get t.cpus cpu in
  pc.nresident <- pc.nresident - 1;
  let s = line land t.set_mask in
  Array.unsafe_set pc.set_nres s (Array.unsafe_get pc.set_nres s - 1)

(* Make room in [cpu]'s target set if bounded and full, FIFO order. *)
let rec evict_if_full t cpu set =
  let pc = Array.unsafe_get t.cpus cpu in
  if t.cfg.cache_lines > 0 && Array.unsafe_get pc.set_nres set >= t.set_capacity
  then begin
    let f = Array.unsafe_get pc.fifos set in
    if f.len = 0 then
      (* Resident count says full but the FIFO is empty: impossible by
         construction, but recover rather than loop forever. *)
      Array.unsafe_set pc.set_nres set 0
    else begin
      let line = fifo_pop f in
      if Array.unsafe_get t.sharers line land bit cpu <> 0 then begin
        drop_copy t line cpu;
        pc.st.evictions <- pc.st.evictions + 1
      end
      else
        (* Stale FIFO entry: the line was stolen by another CPU's
           write.  Skip it and keep looking. *)
        evict_if_full t cpu set
    end
  end

let insert_copy t line cpu =
  if Array.unsafe_get t.sharers line land bit cpu = 0 then begin
    let set = line land t.set_mask in
    evict_if_full t cpu set;
    Array.unsafe_set t.sharers line
      (Array.unsafe_get t.sharers line lor bit cpu);
    let pc = Array.unsafe_get t.cpus cpu in
    pc.nresident <- pc.nresident + 1;
    Array.unsafe_set pc.set_nres set (Array.unsafe_get pc.set_nres set + 1);
    (* The FIFO only feeds eviction; an unbounded cache never evicts,
       so skip the ring entirely. *)
    if t.cfg.cache_lines > 0 then fifo_push (Array.unsafe_get pc.fifos set) line
  end

(* Invalidate every copy other than [cpu]'s; returns how many were
   invalidated. *)
let invalidate_others t line cpu =
  let others = t.sharers.(line) land lnot (bit cpu) in
  if others = 0 then 0
  else begin
    (* Iterate set bits directly: a contended line typically has one
       other holder, so this loops once where a position-by-position
       walk visits every lower bit. *)
    let set = line land t.set_mask in
    let n = ref 0 in
    let rem = ref others in
    while !rem <> 0 do
      let pc = Array.unsafe_get t.cpus (lsb_index (!rem land - !rem)) in
      pc.nresident <- pc.nresident - 1;
      Array.unsafe_set pc.set_nres set (Array.unsafe_get pc.set_nres set - 1);
      incr n;
      rem := !rem land (!rem - 1)
    done;
    Array.unsafe_set t.sharers line
      (Array.unsafe_get t.sharers line land lnot others);
    if Array.unsafe_get t.dirty line >= 0 && Array.unsafe_get t.dirty line <> cpu
    then Array.unsafe_set t.dirty line (-1);
    !n
  end

let access t ~cpu a kind =
  let cfg = t.cfg in
  let line = a lsr t.line_shift in
  let pc = t.cpus.(cpu) in
  let st = pc.st in
  (match kind with
  | Load -> st.loads <- st.loads + 1
  | Store -> st.stores <- st.stores + 1
  | Rmw -> st.rmws <- st.rmws + 1);
  if a >= t.uncached_base then begin
    (* Uncacheable device-register space: every access goes to the bus. *)
    let cost = cfg.uncached_cost in
    st.misses <- st.misses + 1;
    st.stall_cycles <- st.stall_cycles + cost;
    (match t.trace with
    | Some f -> f ~cpu ~addr:a kind ~cost
    | None -> ());
    cost
  end
  else begin
  let sharers = Array.unsafe_get t.sharers line in
  let dirty = Array.unsafe_get t.dirty line in
  let mine = sharers land bit cpu <> 0 in
  let dirty_elsewhere = dirty >= 0 && dirty <> cpu in
  let cost =
    match kind with
    | Load ->
        if mine then begin
          st.hits <- st.hits + 1;
          0
        end
        else if dirty_elsewhere then begin
          (* Cache-to-cache transfer: the owner writes back and both end
             up with shared copies. *)
          st.c2c <- st.c2c + 1;
          Array.unsafe_set t.dirty line (-1);
          insert_copy t line cpu;
          cfg.c2c_cost
        end
        else begin
          st.misses <- st.misses + 1;
          insert_copy t line cpu;
          cfg.miss_cost
        end
    | Store | Rmw ->
        if mine && sharers = bit cpu then begin
          (* Exclusive or already modified: silent upgrade. *)
          st.hits <- st.hits + 1;
          Array.unsafe_set t.dirty line cpu;
          0
        end
        else begin
          let fetch_cost =
            if mine then begin
              (* Shared here and elsewhere: invalidation round only. *)
              st.upgrades <- st.upgrades + 1;
              cfg.upgrade_cost
            end
            else if dirty_elsewhere then begin
              st.c2c <- st.c2c + 1;
              cfg.c2c_cost
            end
            else begin
              st.misses <- st.misses + 1;
              if sharers <> 0 then cfg.upgrade_cost + cfg.miss_cost
              else cfg.miss_cost
            end
          in
          st.invalidations <-
            st.invalidations + invalidate_others t line cpu;
          insert_copy t line cpu;
          Array.unsafe_set t.dirty line cpu;
          fetch_cost
        end
  in
  st.stall_cycles <- st.stall_cycles + cost;
  (match t.trace with
  | Some f -> f ~cpu ~addr:a kind ~cost
  | None -> ());
  cost
  end

let stats t ~cpu = t.cpus.(cpu).st

let total_stats t =
  let acc = fresh_stats () in
  Array.iter
    (fun pc ->
      let s = pc.st in
      acc.loads <- acc.loads + s.loads;
      acc.stores <- acc.stores + s.stores;
      acc.rmws <- acc.rmws + s.rmws;
      acc.hits <- acc.hits + s.hits;
      acc.misses <- acc.misses + s.misses;
      acc.c2c <- acc.c2c + s.c2c;
      acc.upgrades <- acc.upgrades + s.upgrades;
      acc.invalidations <- acc.invalidations + s.invalidations;
      acc.evictions <- acc.evictions + s.evictions;
      acc.stall_cycles <- acc.stall_cycles + s.stall_cycles)
    t.cpus;
  acc

let reset_stats t =
  Array.iter
    (fun pc ->
      let s = pc.st in
      s.loads <- 0;
      s.stores <- 0;
      s.rmws <- 0;
      s.hits <- 0;
      s.misses <- 0;
      s.c2c <- 0;
      s.upgrades <- 0;
      s.invalidations <- 0;
      s.evictions <- 0;
      s.stall_cycles <- 0)
    t.cpus

let set_trace t f = t.trace <- f

let holders t a =
  let line = a lsr t.line_shift in
  let sharers = t.sharers.(line) in
  let rec go c acc =
    if c < 0 then acc
    else go (c - 1) (if sharers land bit c <> 0 then c :: acc else acc)
  in
  go (t.cfg.ncpus - 1) []

let dirty_owner t a =
  let line = a lsr t.line_shift in
  let d = t.dirty.(line) in
  if d >= 0 then Some d else None

let resident t ~cpu = t.cpus.(cpu).nresident
