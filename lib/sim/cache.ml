type kind = Load | Store | Rmw

type stats = {
  mutable loads : int;
  mutable stores : int;
  mutable rmws : int;
  mutable hits : int;
  mutable misses : int;
  mutable c2c : int;
  mutable upgrades : int;
  mutable invalidations : int;
  mutable evictions : int;
  mutable stall_cycles : int;
}

type percpu = {
  st : stats;
  fifo : int Queue.t; (* line indices in insertion order; may contain
                         lines since stolen by another CPU (skipped
                         lazily at eviction time) *)
  mutable nresident : int;
}

(* Line directory as two flat arrays indexed by line number (the
   address space is small and dense, so a hash table on the
   per-operation path only added hashing and allocation):
   [sharers.(l)] is a bitmask of CPUs holding line [l]; [dirty.(l)] is
   the CPU holding it modified, or -1.  Invariant: dirty >= 0 implies
   sharers = just that CPU's bit. *)
type t = {
  cfg : Config.t;
  line_shift : int;
  uncached_base : int; (* addresses at or above this bypass the cache *)
  sharers : int array;
  dirty : int array;
  cpus : percpu array;
  mutable trace :
    (cpu:int -> addr:Memory.addr -> kind -> cost:int -> unit) option;
}

let fresh_stats () =
  {
    loads = 0;
    stores = 0;
    rmws = 0;
    hits = 0;
    misses = 0;
    c2c = 0;
    upgrades = 0;
    invalidations = 0;
    evictions = 0;
    stall_cycles = 0;
  }

let log2 n =
  let rec go acc n = if n <= 1 then acc else go (acc + 1) (n lsr 1) in
  go 0 n

let create (cfg : Config.t) =
  let nlines = cfg.memory_words / cfg.line_words in
  {
    cfg;
    line_shift = log2 cfg.line_words;
    uncached_base = cfg.memory_words - cfg.uncached_words;
    sharers = Array.make nlines 0;
    dirty = Array.make nlines (-1);
    cpus =
      Array.init cfg.ncpus (fun _ ->
          { st = fresh_stats (); fifo = Queue.create (); nresident = 0 });
    trace = None;
  }

let bit cpu = 1 lsl cpu
let popcount n =
  let rec go acc n = if n = 0 then acc else go (acc + 1) (n land (n - 1)) in
  go 0 n

(* Drop [cpu]'s copy of [line]. *)
let drop_copy t line cpu =
  t.sharers.(line) <- t.sharers.(line) land lnot (bit cpu);
  if t.dirty.(line) = cpu then t.dirty.(line) <- -1;
  t.cpus.(cpu).nresident <- t.cpus.(cpu).nresident - 1

(* Make room in [cpu]'s cache if bounded and full, FIFO order. *)
let rec evict_if_full t cpu =
  let pc = t.cpus.(cpu) in
  if t.cfg.cache_lines > 0 && pc.nresident >= t.cfg.cache_lines then begin
    match Queue.take_opt pc.fifo with
    | None ->
        (* Resident count says full but the FIFO is empty: impossible by
           construction, but recover rather than loop forever. *)
        pc.nresident <- 0
    | Some line ->
        if t.sharers.(line) land bit cpu <> 0 then begin
          drop_copy t line cpu;
          pc.st.evictions <- pc.st.evictions + 1
        end
        else
          (* Stale FIFO entry: the line was stolen by another CPU's
             write.  Skip it and keep looking. *)
          evict_if_full t cpu
  end

let insert_copy t line cpu =
  if t.sharers.(line) land bit cpu = 0 then begin
    evict_if_full t cpu;
    t.sharers.(line) <- t.sharers.(line) lor bit cpu;
    let pc = t.cpus.(cpu) in
    pc.nresident <- pc.nresident + 1;
    (* The FIFO only feeds eviction; an unbounded cache never evicts,
       so skip the queue (and its allocation) entirely. *)
    if t.cfg.cache_lines > 0 then Queue.add line pc.fifo
  end

(* Invalidate every copy other than [cpu]'s; returns how many were
   invalidated. *)
let invalidate_others t line cpu =
  let others = t.sharers.(line) land lnot (bit cpu) in
  if others = 0 then 0
  else begin
    let n = popcount others in
    let rem = ref others in
    let c = ref 0 in
    while !rem <> 0 do
      if !rem land 1 <> 0 then
        t.cpus.(!c).nresident <- t.cpus.(!c).nresident - 1;
      rem := !rem lsr 1;
      incr c
    done;
    t.sharers.(line) <- t.sharers.(line) land lnot others;
    if t.dirty.(line) >= 0 && t.dirty.(line) <> cpu then t.dirty.(line) <- -1;
    n
  end

let access t ~cpu a kind =
  let cfg = t.cfg in
  let line = a lsr t.line_shift in
  let pc = t.cpus.(cpu) in
  let st = pc.st in
  (match kind with
  | Load -> st.loads <- st.loads + 1
  | Store -> st.stores <- st.stores + 1
  | Rmw -> st.rmws <- st.rmws + 1);
  if a >= t.uncached_base then begin
    (* Uncacheable device-register space: every access goes to the bus. *)
    let cost = cfg.uncached_cost in
    st.misses <- st.misses + 1;
    st.stall_cycles <- st.stall_cycles + cost;
    (match t.trace with
    | Some f -> f ~cpu ~addr:a kind ~cost
    | None -> ());
    cost
  end
  else begin
  let sharers = Array.unsafe_get t.sharers line in
  let dirty = Array.unsafe_get t.dirty line in
  let mine = sharers land bit cpu <> 0 in
  let dirty_elsewhere = dirty >= 0 && dirty <> cpu in
  let cost =
    match kind with
    | Load ->
        if mine then begin
          st.hits <- st.hits + 1;
          0
        end
        else if dirty_elsewhere then begin
          (* Cache-to-cache transfer: the owner writes back and both end
             up with shared copies. *)
          st.c2c <- st.c2c + 1;
          t.dirty.(line) <- -1;
          insert_copy t line cpu;
          cfg.c2c_cost
        end
        else begin
          st.misses <- st.misses + 1;
          insert_copy t line cpu;
          cfg.miss_cost
        end
    | Store | Rmw ->
        if mine && sharers = bit cpu then begin
          (* Exclusive or already modified: silent upgrade. *)
          st.hits <- st.hits + 1;
          t.dirty.(line) <- cpu;
          0
        end
        else begin
          let fetch_cost =
            if mine then begin
              (* Shared here and elsewhere: invalidation round only. *)
              st.upgrades <- st.upgrades + 1;
              cfg.upgrade_cost
            end
            else if dirty_elsewhere then begin
              st.c2c <- st.c2c + 1;
              cfg.c2c_cost
            end
            else begin
              st.misses <- st.misses + 1;
              if sharers <> 0 then cfg.upgrade_cost + cfg.miss_cost
              else cfg.miss_cost
            end
          in
          st.invalidations <-
            st.invalidations + invalidate_others t line cpu;
          insert_copy t line cpu;
          t.dirty.(line) <- cpu;
          fetch_cost
        end
  in
  st.stall_cycles <- st.stall_cycles + cost;
  (match t.trace with
  | Some f -> f ~cpu ~addr:a kind ~cost
  | None -> ());
  cost
  end

let stats t ~cpu = t.cpus.(cpu).st

let total_stats t =
  let acc = fresh_stats () in
  Array.iter
    (fun pc ->
      let s = pc.st in
      acc.loads <- acc.loads + s.loads;
      acc.stores <- acc.stores + s.stores;
      acc.rmws <- acc.rmws + s.rmws;
      acc.hits <- acc.hits + s.hits;
      acc.misses <- acc.misses + s.misses;
      acc.c2c <- acc.c2c + s.c2c;
      acc.upgrades <- acc.upgrades + s.upgrades;
      acc.invalidations <- acc.invalidations + s.invalidations;
      acc.evictions <- acc.evictions + s.evictions;
      acc.stall_cycles <- acc.stall_cycles + s.stall_cycles)
    t.cpus;
  acc

let reset_stats t =
  Array.iter
    (fun pc ->
      let s = pc.st in
      s.loads <- 0;
      s.stores <- 0;
      s.rmws <- 0;
      s.hits <- 0;
      s.misses <- 0;
      s.c2c <- 0;
      s.upgrades <- 0;
      s.invalidations <- 0;
      s.evictions <- 0;
      s.stall_cycles <- 0)
    t.cpus

let set_trace t f = t.trace <- f

let holders t a =
  let line = a lsr t.line_shift in
  let sharers = t.sharers.(line) in
  let rec go c acc =
    if c < 0 then acc
    else go (c - 1) (if sharers land bit c <> 0 then c :: acc else acc)
  in
  go (t.cfg.ncpus - 1) []

let dirty_owner t a =
  let line = a lsr t.line_shift in
  let d = t.dirty.(line) in
  if d >= 0 then Some d else None

let resident t ~cpu = t.cpus.(cpu).nresident
