type kind = Load | Store | Rmw

type stats = {
  mutable loads : int;
  mutable stores : int;
  mutable rmws : int;
  mutable hits : int;
  mutable misses : int;
  mutable c2c : int;
  mutable upgrades : int;
  mutable invalidations : int;
  mutable evictions : int;
  mutable remote : int;
  mutable stall_cycles : int;
}

(* Insertion-order queue of line indices, one per cache set, as a
   chunked deque.  Replaces the Queue.t (allocation per push) and the
   growable ring (unbounded doubling copies) of earlier revisions: a
   contended line is re-inserted on every steal while eviction may
   never run, so the queue grows with the steal count and any
   copy-on-grow scheme pays O(n) again and again.  Chunks are pushed
   at the tail and garbage-collected as the head drains; entries for
   lines since stolen by another CPU are skipped lazily at eviction
   time, which is why the queue can transiently hold more than [ways]
   entries. *)
type chunk = { data : int array; mutable next : chunk option }

let chunk_words = 4096

type fifo = {
  mutable head : chunk;
  mutable head_idx : int;
  mutable tail : chunk;
  mutable tail_idx : int;
  mutable len : int;
}

let fifo_create () =
  let c = { data = Array.make chunk_words 0; next = None } in
  { head = c; head_idx = 0; tail = c; tail_idx = 0; len = 0 }

let fifo_push f x =
  if f.tail_idx = chunk_words then begin
    let c = { data = Array.make chunk_words 0; next = None } in
    f.tail.next <- Some c;
    f.tail <- c;
    f.tail_idx <- 0
  end;
  Array.unsafe_set f.tail.data f.tail_idx x;
  f.tail_idx <- f.tail_idx + 1;
  f.len <- f.len + 1

(* Pop the oldest entry; the caller checks [len > 0]. *)
let fifo_pop f =
  if f.head_idx = chunk_words then begin
    (match f.head.next with
    | Some c -> f.head <- c
    | None -> assert false);
    f.head_idx <- 0
  end;
  let x = Array.unsafe_get f.head.data f.head_idx in
  f.head_idx <- f.head_idx + 1;
  f.len <- f.len - 1;
  x

type percpu = {
  st : stats;
  fifos : fifo array; (* one insertion-order ring per set *)
  set_nres : int array; (* resident lines per set *)
  mutable nresident : int;
}

(* Line directory as flat arrays indexed by line number (the address
   space is small and dense, so a hash table on the per-operation path
   only added hashing and allocation).  The sharer set of line [l] is
   the [swords] words at [sharers.(l * swords) ..]: a width-independent
   bitset, 32 CPUs per word, so CPU [c]'s copy is bit [c land 31] of
   word [c lsr 5].  A single-int bitmask here overflowed 63-bit OCaml
   ints at ncpus = 63/64 (CPU 63's bit was silently 0); the word array
   keeps the flat hot path — one load and mask for the membership test
   that dominates — while scaling to any Config.max_cpus.  [dirty.(l)]
   is the CPU holding [l] modified, or -1.  Invariant: dirty >= 0
   implies the sharer set is exactly that CPU. *)
type t = {
  cfg : Config.t;
  line_shift : int;
  set_mask : int; (* line land set_mask = the line's set index *)
  set_capacity : int; (* resident lines allowed per set (ways, or the
                         whole cache when fully associative) *)
  uncached_base : int; (* addresses at or above this bypass the cache *)
  swords : int; (* sharer words per line: (ncpus + 31) / 32 *)
  sharers : int array;
  dirty : int array;
  cpus : percpu array;
  (* Two-level NUMA topology (inert at nnodes = 1, the flat default):
     [node_of.(cpu)] from Config.node_of, memory homes by address
     range — line [l] lives on node [l / lines_per_node]. *)
  nnodes : int;
  node_of : int array;
  lines_per_node : int;
  mutable trace :
    (cpu:int -> addr:Memory.addr -> kind -> cost:int -> unit) option;
}

let fresh_stats () =
  {
    loads = 0;
    stores = 0;
    rmws = 0;
    hits = 0;
    misses = 0;
    c2c = 0;
    upgrades = 0;
    invalidations = 0;
    evictions = 0;
    remote = 0;
    stall_cycles = 0;
  }

let log2 n =
  let rec go acc n = if n <= 1 then acc else go (acc + 1) (n lsr 1) in
  go 0 n

let create (cfg : Config.t) =
  let nlines = cfg.memory_words / cfg.line_words in
  (* ways = 0 is the fully-associative paper-era default: one set, one
     FIFO over the whole cache.  Geometry validation guarantees a
     power-of-two set count otherwise. *)
  let nsets = if cfg.ways = 0 then 1 else cfg.cache_lines / cfg.ways in
  let set_capacity = if cfg.ways = 0 then cfg.cache_lines else cfg.ways in
  let swords = (cfg.ncpus + 31) / 32 in
  {
    cfg;
    line_shift = log2 cfg.line_words;
    set_mask = nsets - 1;
    set_capacity;
    uncached_base = cfg.memory_words - cfg.uncached_words;
    swords;
    sharers = Array.make (nlines * swords) 0;
    dirty = Array.make nlines (-1);
    cpus =
      Array.init cfg.ncpus (fun _ ->
          {
            st = fresh_stats ();
            fifos = Array.init nsets (fun _ -> fifo_create ());
            set_nres = Array.make nsets 0;
            nresident = 0;
          });
    nnodes = cfg.nodes;
    node_of = Array.init cfg.ncpus (fun cpu -> Config.node_of cfg cpu);
    lines_per_node = (nlines + cfg.nodes - 1) / cfg.nodes;
    trace = None;
  }

(* Word index and in-word bit of a CPU in a sharer set. *)
let[@inline] sh_word cpu = cpu lsr 5
let[@inline] sh_bit cpu = 1 lsl (cpu land 31)

(* Index of the lowest set bit, by binary search (no ctz instruction
   from OCaml): 6 compares instead of a shift-and-test walk over all
   lower bit positions. *)
let[@inline] lsb_index b =
  let i = ref 0 and b = ref b in
  if !b land 0xFFFFFFFF = 0 then begin i := 32; b := !b lsr 32 end;
  if !b land 0xFFFF = 0 then begin i := !i + 16; b := !b lsr 16 end;
  if !b land 0xFF = 0 then begin i := !i + 8; b := !b lsr 8 end;
  if !b land 0xF = 0 then begin i := !i + 4; b := !b lsr 4 end;
  if !b land 0x3 = 0 then begin i := !i + 2; b := !b lsr 2 end;
  if !b land 0x1 = 0 then incr i;
  !i

(* [line] and the set index are in bounds by construction ([line] was
   derived from an address the caller has already accessed through
   [t.sharers]; sets are [line land set_mask]), so the per-access hot
   path below uses unchecked accesses throughout. *)
let[@inline] is_sharer t line cpu =
  Array.unsafe_get t.sharers ((line * t.swords) + sh_word cpu)
  land sh_bit cpu
  <> 0

(* [cpu] is the one and only holder of [line]. *)
let[@inline] only_sharer t line cpu =
  let base = line * t.swords in
  if t.swords = 1 then Array.unsafe_get t.sharers base = sh_bit cpu
  else begin
    let mw = sh_word cpu in
    let ok = ref true in
    for w = 0 to t.swords - 1 do
      let want = if w = mw then sh_bit cpu else 0 in
      if Array.unsafe_get t.sharers (base + w) <> want then ok := false
    done;
    !ok
  end

let[@inline] any_sharer t line =
  let base = line * t.swords in
  if t.swords = 1 then Array.unsafe_get t.sharers base <> 0
  else begin
    let any = ref false in
    for w = 0 to t.swords - 1 do
      if Array.unsafe_get t.sharers (base + w) <> 0 then any := true
    done;
    !any
  end

(* Drop [cpu]'s copy of [line]. *)
let drop_copy t line cpu =
  let i = (line * t.swords) + sh_word cpu in
  Array.unsafe_set t.sharers i
    (Array.unsafe_get t.sharers i land lnot (sh_bit cpu));
  if Array.unsafe_get t.dirty line = cpu then Array.unsafe_set t.dirty line (-1);
  let pc = Array.unsafe_get t.cpus cpu in
  pc.nresident <- pc.nresident - 1;
  let s = line land t.set_mask in
  Array.unsafe_set pc.set_nres s (Array.unsafe_get pc.set_nres s - 1)

(* Make room in [cpu]'s target set if bounded and full, FIFO order. *)
let rec evict_if_full t cpu set =
  let pc = Array.unsafe_get t.cpus cpu in
  if t.cfg.cache_lines > 0 && Array.unsafe_get pc.set_nres set >= t.set_capacity
  then begin
    let f = Array.unsafe_get pc.fifos set in
    if f.len = 0 then
      (* Resident count says full but the FIFO is empty: impossible by
         construction, but recover rather than loop forever. *)
      Array.unsafe_set pc.set_nres set 0
    else begin
      let line = fifo_pop f in
      if is_sharer t line cpu then begin
        drop_copy t line cpu;
        pc.st.evictions <- pc.st.evictions + 1
      end
      else
        (* Stale FIFO entry: the line was stolen by another CPU's
           write.  Skip it and keep looking. *)
        evict_if_full t cpu set
    end
  end

let insert_copy t line cpu =
  if not (is_sharer t line cpu) then begin
    let set = line land t.set_mask in
    evict_if_full t cpu set;
    let i = (line * t.swords) + sh_word cpu in
    Array.unsafe_set t.sharers i (Array.unsafe_get t.sharers i lor sh_bit cpu);
    let pc = Array.unsafe_get t.cpus cpu in
    pc.nresident <- pc.nresident + 1;
    Array.unsafe_set pc.set_nres set (Array.unsafe_get pc.set_nres set + 1);
    (* The FIFO only feeds eviction; an unbounded cache never evicts,
       so skip the ring entirely. *)
    if t.cfg.cache_lines > 0 then fifo_push (Array.unsafe_get pc.fifos set) line
  end

(* Invalidate every copy other than [cpu]'s; returns how many were
   invalidated.  Word by word, set bits lowest-CPU-first within each —
   the same order the single-word bitmask walked. *)
let invalidate_others t line cpu =
  let base = line * t.swords in
  let mw = sh_word cpu and mb = sh_bit cpu in
  let set = line land t.set_mask in
  let n = ref 0 in
  for w = 0 to t.swords - 1 do
    let v = Array.unsafe_get t.sharers (base + w) in
    let others = if w = mw then v land lnot mb else v in
    if others <> 0 then begin
      (* Iterate set bits directly: a contended line typically has one
         other holder, so this loops once where a position-by-position
         walk visits every lower bit. *)
      let rem = ref others in
      while !rem <> 0 do
        let c = (w lsl 5) + lsb_index (!rem land - !rem) in
        let pc = Array.unsafe_get t.cpus c in
        pc.nresident <- pc.nresident - 1;
        Array.unsafe_set pc.set_nres set (Array.unsafe_get pc.set_nres set - 1);
        incr n;
        rem := !rem land (!rem - 1)
      done;
      Array.unsafe_set t.sharers (base + w) (v land lnot others)
    end
  done;
  if !n > 0 then begin
    let d = Array.unsafe_get t.dirty line in
    if d >= 0 && d <> cpu then Array.unsafe_set t.dirty line (-1)
  end;
  !n

(* Home node of [line]'s memory: address-range partition, so node-local
   data structures really are serviced by local memory. *)
let[@inline] home_node t line = line / t.lines_per_node

(* Any copy of [line] held outside [node] (ignoring [cpu] itself):
   decides whether an invalidation round crosses the interconnect. *)
let[@inline never] remote_holder t line cpu node =
  let base = line * t.swords in
  let mw = sh_word cpu and mb = sh_bit cpu in
  let found = ref false in
  let w = ref 0 in
  while (not !found) && !w < t.swords do
    let v = Array.unsafe_get t.sharers (base + !w) in
    let v = if !w = mw then v land lnot mb else v in
    let rem = ref v in
    while (not !found) && !rem <> 0 do
      let c = (!w lsl 5) + lsb_index (!rem land - !rem) in
      if Array.unsafe_get t.node_of c <> node then found := true;
      rem := !rem land (!rem - 1)
    done;
    incr w
  done;
  !found

let access t ~cpu a kind =
  let cfg = t.cfg in
  let line = a lsr t.line_shift in
  let pc = t.cpus.(cpu) in
  let st = pc.st in
  (match kind with
  | Load -> st.loads <- st.loads + 1
  | Store -> st.stores <- st.stores + 1
  | Rmw -> st.rmws <- st.rmws + 1);
  if a >= t.uncached_base then begin
    (* Uncacheable device-register space: every access goes to the bus. *)
    let cost = cfg.uncached_cost in
    st.misses <- st.misses + 1;
    st.stall_cycles <- st.stall_cycles + cost;
    (match t.trace with
    | Some f -> f ~cpu ~addr:a kind ~cost
    | None -> ());
    cost
  end
  else begin
  let numa = t.nnodes > 1 in
  let mine = is_sharer t line cpu in
  let dirty = Array.unsafe_get t.dirty line in
  let dirty_elsewhere = dirty >= 0 && dirty <> cpu in
  (* NUMA surcharge of the current transition, 0 always on the flat
     machine (and on hits).  Computed inline — no closures, no ref —
     because this is the hottest function in the simulator:
     - a miss serviced by a remote node's memory pays [node_miss_cost];
     - a dirty transfer from a remote CPU pays [node_c2c_cost], plus
       [node_miss_cost] when the line's directory home is on a third
       node (the request detours requester -> home -> owner);
     - an invalidation round that must reach a remote node's copy pays
       [node_c2c_cost]. *)
  let miss_extra =
    if numa && home_node t line <> Array.unsafe_get t.node_of cpu then
      cfg.node_miss_cost
    else 0
  in
  let c2c_extra =
    if numa && dirty_elsewhere then begin
      let my = Array.unsafe_get t.node_of cpu in
      let own = Array.unsafe_get t.node_of dirty in
      let e = if own <> my then cfg.node_c2c_cost else 0 in
      let h = home_node t line in
      if h <> my && h <> own then e + cfg.node_miss_cost else e
    end
    else 0
  in
  let cost =
    match kind with
    | Load ->
        if mine then begin
          st.hits <- st.hits + 1;
          0
        end
        else if dirty_elsewhere then begin
          (* Cache-to-cache transfer: the owner writes back and both end
             up with shared copies. *)
          st.c2c <- st.c2c + 1;
          Array.unsafe_set t.dirty line (-1);
          insert_copy t line cpu;
          if c2c_extra > 0 then st.remote <- st.remote + 1;
          cfg.c2c_cost + c2c_extra
        end
        else begin
          st.misses <- st.misses + 1;
          insert_copy t line cpu;
          if miss_extra > 0 then st.remote <- st.remote + 1;
          cfg.miss_cost + miss_extra
        end
    | Store | Rmw ->
        if mine && only_sharer t line cpu then begin
          (* Exclusive or already modified: silent upgrade. *)
          st.hits <- st.hits + 1;
          Array.unsafe_set t.dirty line cpu;
          0
        end
        else begin
          let fetch_cost =
            if mine then begin
              (* Shared here and elsewhere: invalidation round only.
                 The sharer-set walk in [remote_holder] is gated behind
                 [numa] so the flat machine never pays it. *)
              st.upgrades <- st.upgrades + 1;
              let e =
                if
                  numa
                  && remote_holder t line cpu (Array.unsafe_get t.node_of cpu)
                then cfg.node_c2c_cost
                else 0
              in
              if e > 0 then st.remote <- st.remote + 1;
              cfg.upgrade_cost + e
            end
            else if dirty_elsewhere then begin
              st.c2c <- st.c2c + 1;
              if c2c_extra > 0 then st.remote <- st.remote + 1;
              cfg.c2c_cost + c2c_extra
            end
            else begin
              st.misses <- st.misses + 1;
              if any_sharer t line then begin
                let e =
                  miss_extra
                  +
                  if
                    numa
                    && remote_holder t line cpu
                         (Array.unsafe_get t.node_of cpu)
                  then cfg.node_c2c_cost
                  else 0
                in
                if e > 0 then st.remote <- st.remote + 1;
                cfg.upgrade_cost + cfg.miss_cost + e
              end
              else begin
                if miss_extra > 0 then st.remote <- st.remote + 1;
                cfg.miss_cost + miss_extra
              end
            end
          in
          st.invalidations <-
            st.invalidations + invalidate_others t line cpu;
          insert_copy t line cpu;
          Array.unsafe_set t.dirty line cpu;
          fetch_cost
        end
  in
  st.stall_cycles <- st.stall_cycles + cost;
  (match t.trace with
  | Some f -> f ~cpu ~addr:a kind ~cost
  | None -> ());
  cost
  end

let stats t ~cpu = t.cpus.(cpu).st

let total_stats t =
  let acc = fresh_stats () in
  Array.iter
    (fun pc ->
      let s = pc.st in
      acc.loads <- acc.loads + s.loads;
      acc.stores <- acc.stores + s.stores;
      acc.rmws <- acc.rmws + s.rmws;
      acc.hits <- acc.hits + s.hits;
      acc.misses <- acc.misses + s.misses;
      acc.c2c <- acc.c2c + s.c2c;
      acc.upgrades <- acc.upgrades + s.upgrades;
      acc.invalidations <- acc.invalidations + s.invalidations;
      acc.evictions <- acc.evictions + s.evictions;
      acc.remote <- acc.remote + s.remote;
      acc.stall_cycles <- acc.stall_cycles + s.stall_cycles)
    t.cpus;
  acc

let reset_stats t =
  Array.iter
    (fun pc ->
      let s = pc.st in
      s.loads <- 0;
      s.stores <- 0;
      s.rmws <- 0;
      s.hits <- 0;
      s.misses <- 0;
      s.c2c <- 0;
      s.upgrades <- 0;
      s.invalidations <- 0;
      s.evictions <- 0;
      s.remote <- 0;
      s.stall_cycles <- 0)
    t.cpus

let set_trace t f = t.trace <- f

let holders t a =
  let line = a lsr t.line_shift in
  let rec go c acc =
    if c < 0 then acc
    else go (c - 1) (if is_sharer t line c then c :: acc else acc)
  in
  go (t.cfg.ncpus - 1) []

let dirty_owner t a =
  let line = a lsr t.line_shift in
  let d = t.dirty.(line) in
  if d >= 0 then Some d else None

let resident t ~cpu = t.cpus.(cpu).nresident

let node_of_cpu t cpu = t.node_of.(cpu)
let home_of_addr t a = home_node t (a lsr t.line_shift)
