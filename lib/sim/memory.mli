(** Word-addressed simulated physical memory.

    Reproduction infrastructure with no direct counterpart in the
    paper: the backing store beneath the simulated Symmetry's caches,
    holding every structure the allocators lay out (the paper's
    freelists, page descriptors and blocks all live here as words).

    A word models a 32-bit machine word; addresses are word indices.
    Address [0] is reserved as the nil pointer: it is readable and
    writable like any other word, but allocators treat it as NULL, so
    nothing is ever placed there.

    This module performs no cost accounting; it is the raw backing store.
    Simulated CPUs must access memory through {!Machine} so that the cache
    model can charge cycles.  Direct access from the host is reserved for
    boot-time initialisation and for test oracles. *)

type t

type addr = int
(** A word address in [0, size)]. *)

val create : words:int -> t
(** [create ~words] is a zero-filled memory of [words] words.
    @raise Invalid_argument if [words <= 0]. *)

val size : t -> int
(** [size t] is the number of words in [t]. *)

val get : t -> addr -> int
(** [get t a] reads word [a].
    @raise Invalid_argument if [a] is out of bounds. *)

val set : t -> addr -> int -> unit
(** [set t a v] writes [v] to word [a].
    @raise Invalid_argument if [a] is out of bounds. *)

val fill : t -> addr -> len:int -> int -> unit
(** [fill t a ~len v] writes [v] to words [a .. a+len-1]. *)

val blit_to_host : t -> addr -> len:int -> int array
(** [blit_to_host t a ~len] copies a region out for inspection. *)
