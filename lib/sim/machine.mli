(** The simulated shared-memory multiprocessor.

    Each simulated CPU runs an ordinary OCaml function ("program") as an
    effect-handler coroutine.  Every memory access the program makes
    through this module's typed operations ({!read}, {!write}, {!cas},
    ...) is an effect; the discrete-event scheduler executes pending
    operations in virtual-time order (always the CPU with the smallest
    local clock, ties broken by CPU id), charges cycle costs from the
    {!Cache} model, and resumes the coroutine with the result.  The
    resulting global memory order is a legal sequentially-consistent
    interleaving, and runs are fully deterministic.

    Code between two operations executes atomically at a single virtual
    instant; all work a program does must therefore be accounted either
    by its memory operations or by explicit {!work} charges.  Simulated
    kernel code keeps its data structures in simulated memory so that its
    cache behaviour is emergent.

    {b Fast path.}  Performing an effect and resuming a continuation is
    the per-operation overhead that dominates simulator host time, so
    operations take a same-CPU fast path whenever the scheduler would
    pick the executing CPU next anyway: while its clock stays below
    every other pending CPU's (ties broken by id, mirroring the pick
    loop), the operation executes inline in host code and the whole
    batch of such operations costs one scheduler event.  Per-CPU
    freelist hits on exclusive lines — the common case the paper's
    allocator is built around — are exactly this shape.  The routing is
    an optimisation only: both paths funnel into one executor, so
    cycle counts, statistics and memory order are bit-identical with
    the fast path on or off (proven by the equivalence suite in
    [test/sim] and the fig7/E8 pins in [test/experiments]; see
    DESIGN.md "Simulator cost model").

    Operations may only be performed from inside a program run by {!run};
    calling them elsewhere raises [Not_in_simulation]. *)

type t

exception Not_in_simulation
exception Deadlock of string

exception Watchdog of int
(** Raised by {!run} when a CPU's virtual clock passes the [max_cycles]
    watchdog: the simulated kernel is spinning without global progress
    (e.g. waiting on a signal nobody will send).  The payload is the
    clock value at expiry. *)

val create : Config.t -> t
(** [create cfg] is a machine with zeroed memory and cold caches. *)

val config : t -> Config.t
val memory : t -> Memory.t
(** [memory t] gives direct, uncharged access to the backing store.
    Reserved for boot-time initialisation and test oracles. *)

val cache : t -> Cache.t

(** {1 Running programs} *)

val run : ?max_cycles:int -> t -> (int -> unit) array -> unit
(** [run t progs] runs [progs.(i)] on CPU [i] (each receives its CPU id)
    until every program returns.  [Array.length progs] must be between 1
    and [ncpus].  Virtual time continues from where the previous [run]
    left off; caches stay warm between runs.  [max_cycles] (absolute
    virtual time; 0 = no limit) arms a watchdog against livelocked
    simulations.

    @raise Invalid_argument on a bad program count.
    @raise Watchdog when [max_cycles] is exceeded.
    @raise Deadlock if every unfinished CPU is blocked (cannot currently
    happen: spinlocks always make progress in virtual time). *)

val run_symmetric : ?max_cycles:int -> t -> ncpus:int -> (int -> unit) -> unit
(** [run_symmetric t ~ncpus f] runs [f] on CPUs [0 .. ncpus-1]. *)

val elapsed : t -> int
(** [elapsed t] is the largest per-CPU virtual clock, in cycles. *)

val cpu_time : t -> cpu:int -> int
(** [cpu_time t ~cpu] is CPU [cpu]'s virtual clock. *)

val retired : t -> cpu:int -> int
(** [retired t ~cpu] counts instructions retired by [cpu]: one per memory
    or control operation, plus [n] per [work n]. *)

val reset_clocks : t -> unit
(** [reset_clocks t] zeroes all virtual clocks and retired-instruction
    counters (caches and memory keep their contents). *)

(** {1 Operations, usable only inside a running program} *)

val read : Memory.addr -> int
(** [read a] is a load. *)

val write : Memory.addr -> int -> unit
(** [write a v] is a store. *)

val cas : Memory.addr -> expected:int -> desired:int -> bool
(** [cas a ~expected ~desired] is an atomic compare-and-swap; true on
    success.  Charged as an atomic RMW whether or not it succeeds. *)

val cas_val : Memory.addr -> expected:int -> desired:int -> int
(** [cas_val a ~expected ~desired] is {!cas} returning the {e witnessed}
    value instead of a boolean (the swap happened iff the result equals
    [expected]) — the compare-exchange shape lock-free retry loops want,
    so a failed attempt does not pay a separate reload.  Identical
    charge to {!cas}. *)

val fetch_add : Memory.addr -> int -> int
(** [fetch_add a n] atomically adds [n] to word [a], returning the old
    value. *)

val fetch_or : Memory.addr -> int -> int
(** [fetch_or a n] atomically ORs [n] into word [a], returning the old
    value.  Costed exactly like {!fetch_add} (the [rmw] geometry knob);
    added for the non-blocking allocators' status-word marking. *)

val fetch_and : Memory.addr -> int -> int
(** [fetch_and a n] atomically ANDs [n] into word [a], returning the old
    value.  Costed exactly like {!fetch_add}. *)

val swap : Memory.addr -> int -> int
(** [swap a v] atomically exchanges word [a] with [v], returning the old
    value. *)

val work : int -> unit
(** [work n] charges [n] cycles of pure compute (models straight-line
    instructions that touch no shared memory). *)

val spin_pause : unit -> unit
(** [spin_pause ()] charges one spin-wait pause and yields the bus.  The
    pause costs between [spin_cost] and [4 * spin_cost] cycles, varied
    by a deterministic per-CPU hash: the jitter models real bus
    arbitration and keeps spin loops from phase-locking against another
    CPU's periodic critical section (a livelock artifact of purely
    deterministic discrete-event timing).

    Contract: the host code between a [spin_pause] and the program's
    next operation must be pure loop control over program-private data
    (every spin site in a test-and-set or barrier loop re-checks the
    condition through a memory operation).  A spin touches only the
    spinning CPU's private state, so under that contract the simulator
    may execute it inline without a scheduler round trip even when
    another CPU's clock is behind — the second leg of the fast path.
    A loop that instead polls host-side state published by another
    CPU's host code must use {!spin_poll}. *)

val spin_poll : unit -> unit
(** [spin_poll ()] is [spin_pause] for loops that re-check {e host-side}
    state another simulated CPU's host code will publish (the scenario
    replayer's cross-CPU free handoff).  Identical cycle charges, but it
    always yields to the scheduler so the publishing CPU's host code can
    run; inlining it would spin forever. *)

val cpu_id : unit -> int
(** [cpu_id ()] is the current CPU's id (free of charge; models reading a
    per-CPU register). *)

val now : unit -> int
(** [now ()] is the current CPU's virtual clock (free of charge; models a
    cycle counter read). *)

val irq_disable : unit -> unit
(** [irq_disable ()] models disabling interrupts on the current CPU. *)

val irq_enable : unit -> unit

val irq_disabled : t -> cpu:int -> bool
(** [irq_disabled t ~cpu] is a test oracle for the interrupt flag. *)

(** {1 Host-side observation} *)

val running : unit -> (int * int) option
(** [running ()] is [Some (cpu, now)] while a simulated program's host
    code is executing — the id and current virtual clock of that CPU —
    and [None] outside any simulation.  Unlike {!cpu_id} and {!now}
    this is NOT an operation: it performs no effect and so introduces no
    scheduler yield point.  Instrumentation that must not perturb the
    simulation (the flight recorder's emit paths) uses this; an
    operation, even a free one, splits the host code around it into
    separately scheduled slices and changes how same-instant host code
    on different CPUs interleaves. *)

val running_irq_off : unit -> bool
(** [running_irq_off ()] is the interrupt-disable flag of the currently
    executing CPU ([false] outside any simulation).  Same contract as
    {!running}: host-side, not an operation, no yield point — this is
    what the lockcheck interrupt-discipline probe reads. *)

(** {1 Fast-path control (test oracles)} *)

val set_fast_path : bool -> unit
(** [set_fast_path false] forces every operation through the effect
    handler and the scheduler loop — the pre-fast-path execution
    mode.  Process-wide, intended for the equivalence proofs only
    (run a workload both ways, require bit-identical cycles and
    state); call it before any domain is spawned. *)

val fast_path_enabled : unit -> bool
(** Whether the same-CPU inline fast path is active (the default). *)
