(* Host-side lockdep-style checker.  See lockcheck.mli for the three
   invariants and the zero-perturbation contract; everything here is
   ordinary OCaml state keyed by simulated lock addresses and CPU ids —
   no simulator operation is ever performed. *)

exception Violation of string

type rule = Lock_order | Irq_discipline | Vm_hold

let rule_name = function
  | Lock_order -> "lock-order"
  | Irq_discipline -> "irq-discipline"
  | Vm_hold -> "vm-hold"

type lock_info = {
  addr : int;
  mutable name : string;
  mutable cls : string;
  mutable vm_safe : bool;
  mutable acquires : int;
}

(* First-seen provenance of a class-order edge, kept so a cycle report
   can show where the opposite edge was established. *)
type edge = {
  e_src : string;
  e_dst : string;
  e_cpu : int;
  e_time : int;
  e_stack : string;
}

type held = {
  h_addr : int;
  h_cls : string;
  h_name : string;
  h_time : int;
  h_stack : string;
}

type t = {
  abort : bool;
  locks : (int, lock_info) Hashtbl.t; (* addr -> info *)
  edges : (string * string, edge) Hashtbl.t; (* (src cls, dst cls) *)
  succ : (string, string list) Hashtbl.t; (* cls -> successor classes *)
  held : (int, held list) Hashtbl.t; (* cpu -> innermost-first stack *)
  mutable max_depth : int;
  mutable n_order_checks : int;
  mutable n_irq_checks : int;
  mutable n_vm_checks : int;
  mutable viols : (rule * string) list; (* newest first *)
}

let state : t option ref = ref None
let on () = !state <> None

let enable ?(abort = true) () =
  state :=
    Some
      {
        abort;
        locks = Hashtbl.create 64;
        edges = Hashtbl.create 64;
        succ = Hashtbl.create 64;
        held = Hashtbl.create 8;
        max_depth = 0;
        n_order_checks = 0;
        n_irq_checks = 0;
        n_vm_checks = 0;
        viols = [];
      }

let disable () = state := None

let backtrace () =
  (* Skip the two innermost frames: this helper and the hook itself. *)
  let raw = Printexc.raw_backtrace_to_string (Printexc.get_callstack 16) in
  match String.split_on_char '\n' raw with
  | _ :: _ :: rest -> String.concat "\n" rest
  | _ -> raw

let lock_info t ~addr =
  match Hashtbl.find_opt t.locks addr with
  | Some i -> i
  | None ->
      let name = Printf.sprintf "lock@%d" addr in
      let i = { addr; name; cls = name; vm_safe = false; acquires = 0 } in
      Hashtbl.add t.locks addr i;
      i

let register_lock ~addr ~name ?cls ?(vm_safe = false) () =
  match !state with
  | None -> ()
  | Some t ->
      let i = lock_info t ~addr in
      i.name <- name;
      i.cls <- Option.value cls ~default:name;
      i.vm_safe <- vm_safe

let violate t ~rule ~cpu ~time msg =
  let msg =
    Printf.sprintf "lockcheck: %s violation (cpu %d, t=%d): %s"
      (rule_name rule) cpu time msg
  in
  t.viols <- (rule, msg) :: t.viols;
  if Flightrec.Recorder.on () then
    Flightrec.Recorder.emit ~cpu ~time
      (Flightrec.Event.Lockcheck_violation { rule = rule_name rule });
  if t.abort then raise (Violation msg)

(* Is [dst] reachable from [src] in the order graph?  Plain DFS over
   the class successor lists; graphs here are tiny (a handful of
   classes), so no need for anything cleverer. *)
let reachable t ~src ~dst =
  let visited = Hashtbl.create 8 in
  let rec go c =
    c = dst
    || (not (Hashtbl.mem visited c))
       && begin
            Hashtbl.add visited c ();
            List.exists go
              (Option.value (Hashtbl.find_opt t.succ c) ~default:[])
          end
  in
  go src

let path t ~src ~dst =
  let visited = Hashtbl.create 8 in
  let rec go c acc =
    if c = dst then Some (List.rev (c :: acc))
    else if Hashtbl.mem visited c then None
    else begin
      Hashtbl.add visited c ();
      List.find_map
        (fun n -> go n (c :: acc))
        (Option.value (Hashtbl.find_opt t.succ c) ~default:[])
    end
  in
  Option.value (go src []) ~default:[ src; dst ]

let add_edge t ~src ~dst ~cpu ~time ~stack =
  if not (Hashtbl.mem t.edges (src, dst)) then begin
    Hashtbl.add t.edges (src, dst)
      { e_src = src; e_dst = dst; e_cpu = cpu; e_time = time; e_stack = stack };
    Hashtbl.replace t.succ src
      (dst :: Option.value (Hashtbl.find_opt t.succ src) ~default:[])
  end

let acquire ~cpu ~time ~addr =
  match !state with
  | None -> ()
  | Some t ->
      t.n_order_checks <- t.n_order_checks + 1;
      let i = lock_info t ~addr in
      i.acquires <- i.acquires + 1;
      let stack = backtrace () in
      let held = Option.value (Hashtbl.find_opt t.held cpu) ~default:[] in
      (* Recursion / same-class nesting: lockdep treats both as errors
         (a second instance of the same class may be the same lock on
         another path). *)
      List.iter
        (fun h ->
          if h.h_addr = addr then
            violate t ~rule:Lock_order ~cpu ~time
              (Printf.sprintf "recursive acquisition of %s (first taken t=%d)"
                 i.name h.h_time)
          else if h.h_cls = i.cls then
            violate t ~rule:Lock_order ~cpu ~time
              (Printf.sprintf
                 "%s acquired while %s of the same class [%s] is held"
                 i.name h.h_name i.cls))
        held;
      (* Order edges: every held lock's class precedes the new class.
         A pre-existing path new-class ->* held-class means adding the
         edge held-class -> new-class would close a cycle: the classic
         ABBA, caught from one benign run. *)
      List.iter
        (fun h ->
          if h.h_cls <> i.cls then
            if reachable t ~src:i.cls ~dst:h.h_cls then begin
              let cyc =
                String.concat " -> "
                  (List.map
                     (Printf.sprintf "[%s]")
                     (path t ~src:i.cls ~dst:h.h_cls @ [ i.cls ]))
              in
              let prov =
                match Hashtbl.find_opt t.edges (i.cls, h.h_cls) with
                | Some e ->
                    Printf.sprintf
                      "\n  opposite order [%s] -> [%s] first recorded on \
                       cpu %d at t=%d, acquired at:\n\
                       %s"
                      e.e_src e.e_dst e.e_cpu e.e_time e.e_stack
                | None -> ""
              in
              violate t ~rule:Lock_order ~cpu ~time
                (Printf.sprintf
                   "%s acquired while %s held closes order cycle %s\n\
                   \  %s was acquired at t=%d at:\n\
                    %s\n\
                   \  %s acquired at:\n\
                    %s%s"
                   i.name h.h_name cyc h.h_name h.h_time h.h_stack i.name
                   stack prov)
            end
            else add_edge t ~src:h.h_cls ~dst:i.cls ~cpu ~time ~stack)
        held;
      let entry =
        { h_addr = addr; h_cls = i.cls; h_name = i.name; h_time = time;
          h_stack = stack }
      in
      let held = entry :: held in
      Hashtbl.replace t.held cpu held;
      if List.length held > t.max_depth then
        t.max_depth <- List.length held

let release ~cpu ~time:_ ~addr =
  match !state with
  | None -> ()
  | Some t -> (
      match Hashtbl.find_opt t.held cpu with
      | None -> ()
      | Some held ->
          (* Tolerate out-of-order release and releases of locks we
             never saw acquired (checker enabled mid-run). *)
          Hashtbl.replace t.held cpu
            (let rec drop_first = function
               | [] -> []
               | h :: rest when h.h_addr = addr -> rest
               | h :: rest -> h :: drop_first rest
             in
             drop_first held))

let percpu_access ~cpu ~time ~owner ~irq_off =
  match !state with
  | None -> ()
  | Some t ->
      t.n_irq_checks <- t.n_irq_checks + 1;
      if cpu <> owner then
        violate t ~rule:Irq_discipline ~cpu ~time
          (Printf.sprintf
             "cpu %d touched per-CPU cache state owned by cpu %d" cpu owner)
      else if not irq_off then
        violate t ~rule:Irq_discipline ~cpu ~time
          (Printf.sprintf
             "per-CPU cache state of cpu %d accessed with interrupts enabled"
             owner)

let vm_call ~cpu ~time ~what =
  match !state with
  | None -> ()
  | Some t ->
      t.n_vm_checks <- t.n_vm_checks + 1;
      let held = Option.value (Hashtbl.find_opt t.held cpu) ~default:[] in
      List.iter
        (fun h ->
          let i = lock_info t ~addr:h.h_addr in
          if not i.vm_safe then
            violate t ~rule:Vm_hold ~cpu ~time
              (Printf.sprintf
                 "Vmsys.%s entered with %s held (class [%s] is not vm_safe; \
                  acquired at t=%d at:\n\
                  %s)"
                 what h.h_name h.h_cls h.h_time h.h_stack))
        held

let viols_oldest_first t = List.rev t.viols

let violations () =
  match !state with None -> [] | Some t -> viols_oldest_first t

let violation_count () =
  match !state with None -> 0 | Some t -> List.length t.viols

let check_count rule =
  match !state with
  | None -> 0
  | Some t -> (
      match rule with
      | Lock_order -> t.n_order_checks
      | Irq_discipline -> t.n_irq_checks
      | Vm_hold -> t.n_vm_checks)

let order_edges () =
  match !state with
  | None -> []
  | Some t ->
      Hashtbl.fold (fun k _ acc -> k :: acc) t.edges []
      |> List.sort compare

let max_hold_depth () =
  match !state with None -> 0 | Some t -> t.max_depth

let locks_seen () =
  match !state with None -> 0 | Some t -> Hashtbl.length t.locks

let report () =
  match !state with
  | None -> "lockcheck: disabled\n"
  | Some t ->
      let b = Buffer.create 1024 in
      let pf fmt = Printf.ksprintf (Buffer.add_string b) fmt in
      pf "== lockcheck report ==\n";
      pf "-- locks seen --\n";
      let locks =
        Hashtbl.fold (fun _ i acc -> i :: acc) t.locks []
        |> List.sort (fun a b -> compare (a.cls, a.name, a.addr) (b.cls, b.name, b.addr))
      in
      if locks = [] then pf "  (none)\n";
      List.iter
        (fun i ->
          pf "  %-24s class [%s]%s  acquisitions %d\n" i.name i.cls
            (if i.vm_safe then " vm-safe" else "") i.acquires)
        locks;
      pf "-- lock-order edges --\n";
      let edges =
        Hashtbl.fold (fun _ e acc -> e :: acc) t.edges []
        |> List.sort (fun a b ->
               compare (a.e_src, a.e_dst) (b.e_src, b.e_dst))
      in
      if edges = [] then pf "  (none)\n";
      List.iter
        (fun e ->
          pf "  [%s] -> [%s]   first seen cpu %d t=%d\n" e.e_src e.e_dst
            e.e_cpu e.e_time)
        edges;
      pf "-- discipline --\n";
      pf "  max hold depth        %d\n" t.max_depth;
      pf "  lock-order checks     %d\n" t.n_order_checks;
      pf "  irq-discipline checks %d\n" t.n_irq_checks;
      pf "  vm-hold checks        %d\n" t.n_vm_checks;
      let viols = viols_oldest_first t in
      pf "-- violations: %d --\n" (List.length viols);
      List.iter (fun (_, msg) -> pf "  %s\n" msg) viols;
      Buffer.contents b
