(** Lockdep-style dynamic validator of the paper's synchronization
    discipline.

    The paper's allocator rests on three conventions: the per-CPU layer
    is protected {e only} by disabling interrupts on the owning CPU, the
    global and coalescing layers by spinlocks taken in a fixed order,
    and (in a real kernel) no ordinary lock may be held across a call
    into the VM system.  This module {e checks} those conventions at run
    time, in the spirit of Linux's lockdep:

    - a {b lock-order graph} over lock {e classes}: an edge A→B is
      recorded the first time a lock of class B is acquired while one of
      class A is held; completing a cycle (a potential ABBA deadlock) is
      a violation, reported with both acquisition backtraces — the
      deadlock is caught from a {e single} benign run, no unlucky
      interleaving needed;
    - an {b interrupt-discipline check}: every probe of per-CPU cache
      state asserts interrupts are disabled on the executing CPU and
      that the state belongs to that CPU;
    - a {b hold-across-blocking check}: entering the VM system with any
      spinlock held is a violation unless every held lock's class was
      registered [vm_safe] (see DESIGN.md "Concurrency invariants" for
      why this reproduction exempts the allocator's own locks).

    The checker is entirely host-side: hooks receive the executing CPU
    and its clock from [Sim.Machine.running] and perform no simulated
    operation, so simulated cycle counts are bit-identical with the
    checker on or off (the same zero-perturbation contract as the
    flight recorder; enforced by [test/lockcheck]).  This module
    deliberately depends only on [flightrec] (to emit violation
    events), so [sim] and [kma] can both call in without a cycle.

    Instrumentation contract: when {!on} is false every hook is a
    single host branch.  Enable the checker {e before} booting the
    structures under test so boot-time [register_lock] calls land in
    the live state. *)

exception Violation of string
(** Raised at the offending acquisition/access when a check fails and
    the checker was enabled with [abort = true] (the default).  The
    message names the rule, the locks/CPUs involved, and — for
    lock-order cycles — both acquisition backtraces. *)

(** The three invariants checked. *)
type rule = Lock_order | Irq_discipline | Vm_hold

val rule_name : rule -> string
(** ["lock-order"], ["irq-discipline"], ["vm-hold"]. *)

(** {1 Lifecycle} *)

val enable : ?abort:bool -> unit -> unit
(** [enable ()] installs a fresh checker state (any previous state is
    discarded).  With [abort = false], violations are recorded and
    emitted as flight-recorder events but do not raise — for drivers
    that want a post-run report rather than a crash. *)

val disable : unit -> unit
(** Drop the checker state; {!on} becomes false.  Idempotent. *)

val on : unit -> bool
(** The single branch every instrumentation site tests. *)

(** {1 Lock registry}

    Locks are identified by the address of their word of simulated
    memory and grouped into {e classes} (lockdep's key idea: order is a
    property of classes like "the per-size global-layer lock", not of
    the O(nsizes) instances).  Unregistered locks get a private
    per-instance class named ["lock@<addr>"] and are {e not} [vm_safe]. *)

val register_lock :
  addr:int -> name:string -> ?cls:string -> ?vm_safe:bool -> unit -> unit
(** [register_lock ~addr ~name ()] names the lock at [addr] and assigns
    it to class [cls] (default: [name]).  [vm_safe] (default [false])
    marks the class as legal to hold across a VM-system call.
    Re-registration updates in place; no-op while {!on} is false. *)

(** {1 Hooks (called by [Sim.Spinlock], [Sim.Vmsys], [Kma.Percpu])}

    All hooks take the executing CPU and its simulated clock explicitly
    — callers obtain them from [Sim.Machine.running] so this module
    never performs a simulated operation. *)

val acquire : cpu:int -> time:int -> addr:int -> unit
(** Record a successful acquisition: push onto [cpu]'s held stack,
    record order edges from every held class, and check for recursion,
    same-class nesting and order cycles. *)

val release : cpu:int -> time:int -> addr:int -> unit
(** Record a release (removes the lock from [cpu]'s held stack; a
    release of a lock the checker never saw acquired is ignored, so the
    checker may be enabled mid-run). *)

val percpu_access : cpu:int -> time:int -> owner:int -> irq_off:bool -> unit
(** Interrupt-discipline probe: simulated code on [cpu] is touching the
    per-CPU cache state owned by CPU [owner].  Violations: interrupts
    enabled, or [cpu <> owner]. *)

val vm_call : cpu:int -> time:int -> what:string -> unit
(** Hold-across-blocking probe: simulated code on [cpu] is entering the
    VM system ([what] is ["grant"] or ["reclaim"]).  Violation: any
    held lock whose class is not [vm_safe]. *)

(** {1 Results (host-side)} *)

val violations : unit -> (rule * string) list
(** All recorded violations, oldest first (empty list when disabled). *)

val violation_count : unit -> int

val check_count : rule -> int
(** How many times the given invariant was checked (acquisitions
    processed / per-CPU probes / VM-entry probes). *)

val order_edges : unit -> (string * string) list
(** The recorded class-order edges, sorted. *)

val max_hold_depth : unit -> int
(** The deepest simultaneous lock nesting seen on any CPU. *)

val locks_seen : unit -> int
(** Distinct lock addresses seen (registered or discovered). *)

val report : unit -> string
(** Text report: locks seen (name, class, vm-safe, acquisitions), the
    order edges with where each was first recorded, max hold depth,
    per-invariant check counts, and any violations in full. *)
