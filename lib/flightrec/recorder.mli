(** The flight recorder: per-CPU bounded rings of {!Event.t}.

    Observability for the reproduction of the paper's Measurements
    section: the experiments' cycle counts are the product under test,
    so recording must cost zero simulated cycles — the same constraint
    the paper's own lock-metering instrumentation faced on real
    hardware, solved here by keeping the recorder entirely host-side.

    Exactly one recorder can be *installed* at a time; instrumentation
    sites throughout [sim] and [kma] consult the global {!on} flag —
    a single host-side branch — and emit into the installed recorder.
    Recording happens entirely host-side: an enabled recorder charges
    **zero simulated cycles**, so cycle counts of an instrumented run
    are bit-identical with the recorder on or off (see the
    [test/flightrec] zero-cost test).

    Events are stored per emitting CPU in rings of [capacity] entries;
    when a ring wraps, the oldest events are dropped and counted
    (surface them with {!drops} / in {!Report}).

    Host-side API throughout: install/uninstall and queries are for the
    benchmark driver, never for simulated code. *)

type t

val create : ?capacity:int -> ncpus:int -> unit -> t
(** [create ~ncpus ()] makes a recorder with one ring per CPU
    ([capacity] entries each, default 65536).
    @raise Invalid_argument if [ncpus < 1] or [capacity < 1]. *)

val ncpus : t -> int
val capacity : t -> int

(** {1 Installation and the hot flag} *)

val install : t -> unit
(** [install t] makes [t] the destination of all emitted events and
    raises the global {!on} flag.  Replaces any previous recorder. *)

val uninstall : unit -> unit
(** Stop recording; {!on} becomes false.  Idempotent. *)

val installed : unit -> t option

val set_enabled : t -> bool -> unit
(** Pause/resume recording without losing the installation (only
    affects [t] when it is the installed recorder). *)

val on : unit -> bool
(** The single branch every instrumentation site tests.  True iff a
    recorder is installed and enabled. *)

val emit : cpu:int -> time:int -> Event.kind -> unit
(** Record one event (no-op when {!on} is false).  [time] is the
    emitting CPU's simulated clock.  Events from a [cpu] outside the
    recorder's range are counted in {!oob} rather than stored. *)

(** {1 Lock-name registry} *)

val note_lock : addr:int -> string -> unit
(** Give the spinlock at word [addr] a human-readable name in the
    installed recorder (no-op when none is installed).  Boot-time
    host-side call; {!Report} falls back to ["lock@<addr>"]. *)

val lock_name : t -> int -> string

(** {1 Queries (host-side)} *)

val recorded : t -> int
(** Events currently retained across all rings. *)

val total : t -> int
(** Events ever emitted into [t] (retained + dropped). *)

val drops : t -> cpu:int -> int
val total_drops : t -> int

val oob : t -> int
(** Events discarded because their CPU id was out of range. *)

val events :
  ?cpu:int ->
  ?si:int ->
  ?kind:(Event.kind -> bool) ->
  ?t_min:int ->
  ?t_max:int ->
  t ->
  Event.t list
(** [events t] is the retained events merged across CPUs in simulated
    time order (ties broken by CPU id), optionally filtered by emitting
    CPU, size class ({!Event.si_of}), kind predicate, and inclusive
    simulated-time window. *)

val iter_cpu : t -> cpu:int -> (Event.t -> unit) -> unit
(** Oldest-first iteration over one CPU's ring. *)

val clear : t -> unit
(** Drop all recorded events and zero drop counters (the lock-name
    registry survives). *)
