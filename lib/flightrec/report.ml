(* All analysis here is host-side post-processing of the recorded
   events; nothing in this module runs on a simulated CPU. *)

let pct num den =
  if den = 0 then "-"
  else Printf.sprintf "%.1f%%" (100. *. float_of_int num /. float_of_int den)

(* Left-justified fixed-width columns, like Experiments.Series but
   without the dependency. *)
let table ppf ~header rows =
  let all = header :: rows in
  let ncols = List.length header in
  let width c =
    List.fold_left (fun w row -> max w (String.length (List.nth row c))) 0 all
  in
  let widths = List.init ncols width in
  let line row =
    String.concat "  "
      (List.mapi
         (fun c cell -> Printf.sprintf "%-*s" (List.nth widths c) cell)
         row)
  in
  Format.fprintf ppf "%s@," (line header);
  Format.fprintf ppf "%s@,"
    (line (List.map (fun w -> String.make w '-') widths));
  List.iter (fun row -> Format.fprintf ppf "%s@," (line row)) rows

(* --- per-lock contention --- *)

type lock_stat = {
  mutable acquires : int;
  mutable contended : int;
  mutable spins : int;
  mutable spins_max : int;
  mutable holds : int;
  mutable hold_total : int;
  mutable hold_max : int;
}

let lock_stats_of_events events =
  let stats : (int, lock_stat) Hashtbl.t = Hashtbl.create 16 in
  (* Last unmatched acquire per (cpu, lock): spinlocks never nest on one
     CPU, so pairing the most recent acquire is exact (up to ring
     drops, which just lose a sample). *)
  let open_acq : (int * int, int) Hashtbl.t = Hashtbl.create 16 in
  let stat lock =
    match Hashtbl.find_opt stats lock with
    | Some s -> s
    | None ->
        let s =
          {
            acquires = 0;
            contended = 0;
            spins = 0;
            spins_max = 0;
            holds = 0;
            hold_total = 0;
            hold_max = 0;
          }
        in
        Hashtbl.add stats lock s;
        s
  in
  List.iter
    (fun (e : Event.t) ->
      match e.Event.kind with
      | Event.Lock_acquire { lock; spins } ->
          let s = stat lock in
          s.acquires <- s.acquires + 1;
          if spins > 0 then s.contended <- s.contended + 1;
          s.spins <- s.spins + spins;
          if spins > s.spins_max then s.spins_max <- spins;
          Hashtbl.replace open_acq (e.Event.cpu, lock) e.Event.time
      | Event.Lock_release { lock } -> (
          match Hashtbl.find_opt open_acq (e.Event.cpu, lock) with
          | None -> ()
          | Some t0 ->
              Hashtbl.remove open_acq (e.Event.cpu, lock);
              let s = stat lock in
              let held = e.Event.time - t0 in
              s.holds <- s.holds + 1;
              s.hold_total <- s.hold_total + held;
              if held > s.hold_max then s.hold_max <- held)
      | _ -> ())
    events;
  List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) stats [])

(* Public hook: the pathology analyzer in lib/scenario consumes the
   same per-lock accumulation the report renders, as plain values. *)
let lock_stats r = lock_stats_of_events (Recorder.events r)

let pp_locks ppf r events =
  Format.fprintf ppf "-- lock contention --@,";
  match lock_stats_of_events events with
  | [] -> Format.fprintf ppf "(no lock events recorded)@,"
  | stats ->
      table ppf
        ~header:
          [
            "lock"; "acquires"; "contended"; "cont%"; "spins"; "max-spin";
            "avg-hold"; "max-hold";
          ]
        (List.map
           (fun (lock, s) ->
             [
               Recorder.lock_name r lock;
               string_of_int s.acquires;
               string_of_int s.contended;
               pct s.contended s.acquires;
               string_of_int s.spins;
               string_of_int s.spins_max;
               (if s.holds = 0 then "-"
                else string_of_int (s.hold_total / s.holds));
               string_of_int s.hold_max;
             ])
           stats)

(* --- per-layer miss timeline --- *)

let pp_timeline ppf ~buckets events =
  let times = List.map (fun (e : Event.t) -> e.Event.time) events in
  match times with
  | [] ->
      Format.fprintf ppf "-- per-layer miss timeline --@,";
      Format.fprintf ppf "(no events recorded)@,"
  | t :: _ ->
      let t0 = List.fold_left min t times in
      let t1 = List.fold_left max t times in
      let width = max 1 ((t1 - t0 + buckets) / buckets) in
      let nb = ((t1 - t0) / width) + 1 in
      let allocs = Array.make nb 0
      and pcpu_miss = Array.make nb 0
      and gbl_miss = Array.make nb 0
      and grabs = Array.make nb 0
      and denials = Array.make nb 0 in
      List.iter
        (fun (e : Event.t) ->
          let b = (e.Event.time - t0) / width in
          match e.Event.kind with
          | Event.Alloc { layer; _ } ->
              allocs.(b) <- allocs.(b) + 1;
              if layer <> Event.Percpu then pcpu_miss.(b) <- pcpu_miss.(b) + 1
          | Event.Alloc_fail _ -> allocs.(b) <- allocs.(b) + 1
          | Event.Gbl_get { miss = true; _ } -> gbl_miss.(b) <- gbl_miss.(b) + 1
          | Event.Page_grab _ -> grabs.(b) <- grabs.(b) + 1
          | Event.Vm_denial _ -> denials.(b) <- denials.(b) + 1
          | _ -> ())
        events;
      Format.fprintf ppf "-- per-layer miss timeline (bucket = %d cycles) --@,"
        width;
      table ppf
        ~header:
          [ "t"; "allocs"; "pcpu-miss"; "gbl-miss"; "page-grab"; "vm-denial" ]
        (List.init nb (fun b ->
             [
               string_of_int (t0 + (b * width));
               string_of_int allocs.(b);
               string_of_int pcpu_miss.(b);
               string_of_int gbl_miss.(b);
               string_of_int grabs.(b);
               string_of_int denials.(b);
             ]))

(* --- page lifetimes --- *)

let pp_pages ppf events =
  let grab_at : (int, int) Hashtbl.t = Hashtbl.create 16 in
  let grabbed = ref 0
  and returned = ref 0
  and life_total = ref 0
  and life_min = ref max_int
  and life_max = ref 0 in
  List.iter
    (fun (e : Event.t) ->
      match e.Event.kind with
      | Event.Page_grab { page; _ } ->
          incr grabbed;
          Hashtbl.replace grab_at page e.Event.time
      | Event.Page_return { page; _ } -> (
          incr returned;
          match Hashtbl.find_opt grab_at page with
          | None -> ()
          | Some t0 ->
              Hashtbl.remove grab_at page;
              let l = e.Event.time - t0 in
              life_total := !life_total + l;
              if l < !life_min then life_min := l;
              if l > !life_max then life_max := l)
      | _ -> ())
    events;
  Format.fprintf ppf "-- page lifetimes --@,";
  Format.fprintf ppf "pages grabbed %d, returned %d, still split %d@,"
    !grabbed !returned (Hashtbl.length grab_at);
  if !returned > 0 then
    Format.fprintf ppf "lifetime cycles: avg %d  min %d  max %d@,"
      (!life_total / !returned) !life_min !life_max

(* --- counters --- *)

let pp_counters ppf events =
  let grants = ref 0
  and reclaims = ref 0
  and denials = ref 0
  and injected = ref 0
  and carves = ref 0
  and carve_pages = ref 0
  and coalesces = ref 0
  and coalesce_pages = ref 0
  and large_ok = ref 0
  and large_fail = ref 0
  and large_free = ref 0
  and obj_hit = ref 0
  and obj_miss = ref 0
  and obj_cached = ref 0
  and obj_released = ref 0
  and alloc_fail = ref 0 in
  List.iter
    (fun (e : Event.t) ->
      match e.Event.kind with
      | Event.Vm_grant -> incr grants
      | Event.Vm_reclaim -> incr reclaims
      | Event.Vm_denial { injected = i } ->
          incr denials;
          if i then incr injected
      | Event.Vmblk_carve { npages; _ } ->
          incr carves;
          carve_pages := !carve_pages + npages
      | Event.Vmblk_coalesce { npages; _ } ->
          incr coalesces;
          coalesce_pages := !coalesce_pages + npages
      | Event.Large_alloc { ok; _ } -> if ok then incr large_ok else incr large_fail
      | Event.Large_free _ -> incr large_free
      | Event.Obj_alloc { hit } -> if hit then incr obj_hit else incr obj_miss
      | Event.Obj_free { cached } ->
          if cached then incr obj_cached else incr obj_released
      | Event.Alloc_fail _ -> incr alloc_fail
      | _ -> ())
    events;
  Format.fprintf ppf "-- vm system --@,";
  Format.fprintf ppf "grants %d  reclaims %d  denials %d (injected %d)@,"
    !grants !reclaims !denials !injected;
  Format.fprintf ppf "-- vmblk spans --@,";
  Format.fprintf ppf "carves %d (%d pages)  coalesces %d (%d pages)@," !carves
    !carve_pages !coalesces !coalesce_pages;
  if !large_ok + !large_fail + !large_free > 0 then
    Format.fprintf ppf "large allocations: ok %d  failed %d  freed %d@,"
      !large_ok !large_fail !large_free;
  if !obj_hit + !obj_miss + !obj_cached + !obj_released > 0 then
    Format.fprintf ppf
      "object caches: alloc hits %d misses %d; frees cached %d released %d@,"
      !obj_hit !obj_miss !obj_cached !obj_released;
  if !alloc_fail > 0 then
    Format.fprintf ppf "exhaustion failures: %d@," !alloc_fail

(* --- memory pressure --- *)

(* Rendered only when the run emitted pressure events, so reports from
   pressure-free runs are unchanged. *)
let pp_pressure ppf events =
  let reaps = ref 0 and full = ref 0 in
  (* per class: shrinks, grows, lowest target seen, last target/gbltarget *)
  let adj : (int, int ref * int ref * int ref * int ref * int ref) Hashtbl.t =
    Hashtbl.create 8
  in
  List.iter
    (fun (e : Event.t) ->
      match e.Event.kind with
      | Event.Reap { full = f } ->
          incr reaps;
          if f then incr full
      | Event.Target_adjust { si; target; gbltarget; grow } ->
          let shrinks, grows, lowest, last_t, last_g =
            match Hashtbl.find_opt adj si with
            | Some v -> v
            | None ->
                let v = (ref 0, ref 0, ref max_int, ref 0, ref 0) in
                Hashtbl.add adj si v;
                v
          in
          if grow then incr grows else incr shrinks;
          if target < !lowest then lowest := target;
          last_t := target;
          last_g := gbltarget
      | _ -> ())
    events;
  if !reaps > 0 || Hashtbl.length adj > 0 then begin
    Format.fprintf ppf "-- memory pressure --@,";
    Format.fprintf ppf "reaps %d (full %d)@," !reaps !full;
    let classes =
      List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) adj [])
    in
    if classes <> [] then
      table ppf
        ~header:[ "class"; "shrinks"; "grows"; "lowest"; "target"; "gbltarget" ]
        (List.map
           (fun (si, (shrinks, grows, lowest, last_t, last_g)) ->
             [
               string_of_int si;
               string_of_int !shrinks;
               string_of_int !grows;
               string_of_int !lowest;
               string_of_int !last_t;
               string_of_int !last_g;
             ])
           classes)
  end

(* --- lockcheck violations --- *)

(* Rendered only when the run emitted violation events, so reports from
   clean runs are unchanged. *)
let pp_lockcheck ppf events =
  let by_rule : (string, int ref) Hashtbl.t = Hashtbl.create 4 in
  List.iter
    (fun (e : Event.t) ->
      match e.Event.kind with
      | Event.Lockcheck_violation { rule } -> (
          match Hashtbl.find_opt by_rule rule with
          | Some n -> incr n
          | None -> Hashtbl.add by_rule rule (ref 1))
      | _ -> ())
    events;
  if Hashtbl.length by_rule > 0 then begin
    Format.fprintf ppf "-- lockcheck violations --@,";
    List.iter
      (fun (rule, n) -> Format.fprintf ppf "%s: %d@," rule n)
      (List.sort compare
         (Hashtbl.fold (fun k v acc -> (k, !v) :: acc) by_rule []))
  end

(* --- heapcheck violations --- *)

(* Same contract as the lockcheck section: rendered only when the run
   emitted violation events. *)
let pp_heapcheck ppf events =
  let by_rule : (string, int ref) Hashtbl.t = Hashtbl.create 4 in
  List.iter
    (fun (e : Event.t) ->
      match e.Event.kind with
      | Event.Heapcheck_violation { rule } -> (
          match Hashtbl.find_opt by_rule rule with
          | Some n -> incr n
          | None -> Hashtbl.add by_rule rule (ref 1))
      | _ -> ())
    events;
  if Hashtbl.length by_rule > 0 then begin
    Format.fprintf ppf "-- heapcheck violations --@,";
    List.iter
      (fun (rule, n) -> Format.fprintf ppf "%s: %d@," rule n)
      (List.sort compare
         (Hashtbl.fold (fun k v acc -> (k, !v) :: acc) by_rule []))
  end

let pp ?(buckets = 10) ppf r =
  let events = Recorder.events r in
  Format.fprintf ppf "@[<v>=== flight recorder report ===@,";
  Format.fprintf ppf "events: retained %d of %d emitted (oob %d)@,"
    (Recorder.recorded r) (Recorder.total r) (Recorder.oob r);
  let drops =
    List.init (Recorder.ncpus r) (fun cpu ->
        Printf.sprintf "cpu%d=%d" cpu (Recorder.drops r ~cpu))
  in
  Format.fprintf ppf "ring drops: %s@," (String.concat " " drops);
  pp_locks ppf r events;
  pp_timeline ppf ~buckets events;
  pp_pages ppf events;
  pp_counters ppf events;
  pp_pressure ppf events;
  pp_lockcheck ppf events;
  pp_heapcheck ppf events;
  Format.fprintf ppf "@]"

let to_string ?buckets r = Format.asprintf "%a" (pp ?buckets) r
