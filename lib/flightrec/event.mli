(** Typed flight-recorder trace events.

    One constructor per instrumented action in the allocator and the
    simulator — the vocabulary tracks the source paper's anatomy: the
    per-CPU cache transitions of its Figure 2, the global-layer and
    coalesce-layer traffic of its Design section, the lock contention
    behind its Figures 7–9, and the reap / adaptive-target activity of
    the [Kma.Pressure] subsystem its Future Directions section
    proposes.  Events are plain host-side values: recording one never
    touches simulated memory and charges zero simulated cycles.  This
    module deliberately depends on nothing, so both [sim] and [kma] can
    emit events without a dependency cycle. *)

(** Which allocator layer satisfied (or was reached by) an operation.
    The per-CPU layer satisfying an allocation locally is the fast
    path; [Global] means the operation had to take a lock. *)
type layer = Percpu | Global | Pagepool | Vmblk | Kmem | Objcache

val layer_name : layer -> string

type kind =
  | Alloc of { si : int; layer : layer }
      (** Small allocation of class [si], satisfied at [layer]
          ([Percpu]: main or aux list; [Global]: required a global-layer
          list transfer). *)
  | Alloc_fail of { si : int }  (** exhaustion: no block at any layer *)
  | Free of { si : int; layer : layer }
      (** Small free ([Percpu]: cached locally; [Global]: an aux list
          was handed to the global layer). *)
  | Gbl_get of { si : int; miss : bool }
      (** Global layer handed out a list; [miss] when it had to refill
          from the coalesce-to-page layer. *)
  | Gbl_put of { si : int; drain : bool }
      (** Global layer accepted a list; [drain] when overflow hysteresis
          pushed lists down to the page layer. *)
  | Page_grab of { si : int; page : int }
      (** Page layer split a fresh page for class [si]. *)
  | Page_return of { si : int; page : int }
      (** A fully-free page went back to the vmblk layer / VM system. *)
  | Vmblk_carve of { npages : int; page : int }
      (** A span of [npages] was carved out of the virtual arena. *)
  | Vmblk_coalesce of { npages : int; page : int }
      (** A span of [npages] was freed back and coalesced. *)
  | Large_alloc of { npages : int; ok : bool }
  | Large_free of { npages : int }
  | Obj_alloc of { hit : bool }
      (** Object-cache allocation; [hit] when a constructed object was
          reused. *)
  | Obj_free of { cached : bool }
  | Lock_acquire of { lock : int; spins : int }
      (** Spinlock (identified by its word address) acquired after
          [spins] failed attempts; [spins > 0] is a contended acquire. *)
  | Lock_release of { lock : int }
  | Vm_grant  (** VM system granted a physical page *)
  | Vm_reclaim  (** a physical page was returned to the VM system *)
  | Vm_denial of { injected : bool }
      (** VM system refused a grant: pool exhausted, or [injected] by
          the fault-injection hook. *)
  | Reap of { full : bool }
      (** A [kmem_reap]-style pressure pass ran on this CPU: aux lists
          flushed and the global layer trimmed ([full] additionally
          flushes main lists and empties the global layer). *)
  | Target_adjust of { si : int; target : int; gbltarget : int; grow : bool }
      (** The pressure subsystem moved class [si]'s adaptive bounds to
          [target] / [gbltarget]; [grow] distinguishes additive recovery
          from multiplicative shrink under denial. *)
  | Lockcheck_violation of { rule : string }
      (** The lockcheck validator flagged a broken synchronization
          invariant ([rule] is its name, e.g. ["lock-order"]); the full
          diagnosis lives in the lockcheck report, the event marks where
          in the trace it happened. *)
  | Heapcheck_violation of { rule : string }
      (** The heapcheck consistency checker flagged a broken structural
          invariant ([rule] is its name, e.g. ["gbl-count"]); the full
          diagnosis lives in the heapcheck report, the event marks where
          in the trace it happened. *)

type t = {
  time : int;  (** simulated time (cycles) of the emitting CPU *)
  cpu : int;
  kind : kind;
}

val si_of : kind -> int option
(** [si_of k] is the size class an event concerns, when it has one. *)

val kind_name : kind -> string
(** Constructor name, for coarse filtering and rendering. *)

val pp : Format.formatter -> t -> unit
(** One-line rendering, ["[time] cpu<n> <kind> ..."]. *)
