(** Bounded ring buffer that overwrites its oldest entries.

    Pure infrastructure with no counterpart in the source paper: it
    bounds the memory cost of recording the paper's Measurements-section
    reproductions, trading history depth for a hard footprint.

    The flight recorder keeps one per CPU.  Pushing into a full ring
    evicts the oldest entry and counts it as dropped; the retained
    window is always the newest [capacity] entries, in insertion
    order. *)

type 'a t

val create : capacity:int -> dummy:'a -> 'a t
(** [create ~capacity ~dummy] is an empty ring.  [dummy] fills unused
    slots (never observable through the API).
    @raise Invalid_argument if [capacity < 1]. *)

val capacity : 'a t -> int

val push : 'a t -> 'a -> unit

val length : 'a t -> int
(** Entries currently retained, [<= capacity]. *)

val total : 'a t -> int
(** Entries ever pushed. *)

val dropped : 'a t -> int
(** Entries overwritten before they were read: [total - length]. *)

val iter : 'a t -> ('a -> unit) -> unit
(** Oldest retained entry first. *)

val fold : 'a t -> init:'b -> f:('b -> 'a -> 'b) -> 'b
val to_list : 'a t -> 'a list

val clear : 'a t -> unit
(** Forget all entries and zero the counters. *)
