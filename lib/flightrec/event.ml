type layer = Percpu | Global | Pagepool | Vmblk | Kmem | Objcache

let layer_name = function
  | Percpu -> "percpu"
  | Global -> "global"
  | Pagepool -> "pagepool"
  | Vmblk -> "vmblk"
  | Kmem -> "kmem"
  | Objcache -> "objcache"

type kind =
  | Alloc of { si : int; layer : layer }
  | Alloc_fail of { si : int }
  | Free of { si : int; layer : layer }
  | Gbl_get of { si : int; miss : bool }
  | Gbl_put of { si : int; drain : bool }
  | Page_grab of { si : int; page : int }
  | Page_return of { si : int; page : int }
  | Vmblk_carve of { npages : int; page : int }
  | Vmblk_coalesce of { npages : int; page : int }
  | Large_alloc of { npages : int; ok : bool }
  | Large_free of { npages : int }
  | Obj_alloc of { hit : bool }
  | Obj_free of { cached : bool }
  | Lock_acquire of { lock : int; spins : int }
  | Lock_release of { lock : int }
  | Vm_grant
  | Vm_reclaim
  | Vm_denial of { injected : bool }
  | Reap of { full : bool }
  | Target_adjust of { si : int; target : int; gbltarget : int; grow : bool }
  | Lockcheck_violation of { rule : string }
  | Heapcheck_violation of { rule : string }

type t = { time : int; cpu : int; kind : kind }

let si_of = function
  | Alloc { si; _ }
  | Alloc_fail { si }
  | Free { si; _ }
  | Gbl_get { si; _ }
  | Gbl_put { si; _ }
  | Page_grab { si; _ }
  | Page_return { si; _ }
  | Target_adjust { si; _ } ->
      Some si
  | Vmblk_carve _ | Vmblk_coalesce _ | Large_alloc _ | Large_free _
  | Obj_alloc _ | Obj_free _ | Lock_acquire _ | Lock_release _ | Vm_grant
  | Vm_reclaim | Vm_denial _ | Reap _ | Lockcheck_violation _
  | Heapcheck_violation _ ->
      None

let kind_name = function
  | Alloc _ -> "alloc"
  | Alloc_fail _ -> "alloc-fail"
  | Free _ -> "free"
  | Gbl_get _ -> "gbl-get"
  | Gbl_put _ -> "gbl-put"
  | Page_grab _ -> "page-grab"
  | Page_return _ -> "page-return"
  | Vmblk_carve _ -> "vmblk-carve"
  | Vmblk_coalesce _ -> "vmblk-coalesce"
  | Large_alloc _ -> "large-alloc"
  | Large_free _ -> "large-free"
  | Obj_alloc _ -> "obj-alloc"
  | Obj_free _ -> "obj-free"
  | Lock_acquire _ -> "lock-acquire"
  | Lock_release _ -> "lock-release"
  | Vm_grant -> "vm-grant"
  | Vm_reclaim -> "vm-reclaim"
  | Vm_denial _ -> "vm-denial"
  | Reap _ -> "reap"
  | Target_adjust _ -> "target-adjust"
  | Lockcheck_violation _ -> "lockcheck-violation"
  | Heapcheck_violation _ -> "heapcheck-violation"

let pp_kind ppf = function
  | Alloc { si; layer } ->
      Format.fprintf ppf "alloc si=%d layer=%s" si (layer_name layer)
  | Alloc_fail { si } -> Format.fprintf ppf "alloc-fail si=%d" si
  | Free { si; layer } ->
      Format.fprintf ppf "free si=%d layer=%s" si (layer_name layer)
  | Gbl_get { si; miss } -> Format.fprintf ppf "gbl-get si=%d miss=%b" si miss
  | Gbl_put { si; drain } ->
      Format.fprintf ppf "gbl-put si=%d drain=%b" si drain
  | Page_grab { si; page } ->
      Format.fprintf ppf "page-grab si=%d page=%d" si page
  | Page_return { si; page } ->
      Format.fprintf ppf "page-return si=%d page=%d" si page
  | Vmblk_carve { npages; page } ->
      Format.fprintf ppf "vmblk-carve npages=%d page=%d" npages page
  | Vmblk_coalesce { npages; page } ->
      Format.fprintf ppf "vmblk-coalesce npages=%d page=%d" npages page
  | Large_alloc { npages; ok } ->
      Format.fprintf ppf "large-alloc npages=%d ok=%b" npages ok
  | Large_free { npages } -> Format.fprintf ppf "large-free npages=%d" npages
  | Obj_alloc { hit } -> Format.fprintf ppf "obj-alloc hit=%b" hit
  | Obj_free { cached } -> Format.fprintf ppf "obj-free cached=%b" cached
  | Lock_acquire { lock; spins } ->
      Format.fprintf ppf "lock-acquire lock=%d spins=%d" lock spins
  | Lock_release { lock } -> Format.fprintf ppf "lock-release lock=%d" lock
  | Vm_grant -> Format.pp_print_string ppf "vm-grant"
  | Vm_reclaim -> Format.pp_print_string ppf "vm-reclaim"
  | Vm_denial { injected } -> Format.fprintf ppf "vm-denial injected=%b" injected
  | Reap { full } -> Format.fprintf ppf "reap full=%b" full
  | Target_adjust { si; target; gbltarget; grow } ->
      Format.fprintf ppf "target-adjust si=%d target=%d gbltarget=%d grow=%b"
        si target gbltarget grow
  | Lockcheck_violation { rule } ->
      Format.fprintf ppf "lockcheck-violation rule=%s" rule
  | Heapcheck_violation { rule } ->
      Format.fprintf ppf "heapcheck-violation rule=%s" rule

let pp ppf { time; cpu; kind } =
  Format.fprintf ppf "[%8d] cpu%d %a" time cpu pp_kind kind
