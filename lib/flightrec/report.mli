(** Render a recorded flight into a human-readable text report.

    The sections mirror the quantities the paper's Measurements section
    reasons about — lock contention (the serialisation behind Figures 7
    and 8), per-layer miss rates (the 1/target, 1/gbltarget bounds),
    page lifetimes (coalesce-to-page effectiveness, Figure 9's
    worst case) — plus, when pressure events are present, the reap and
    adaptive-target activity of the Future Directions subsystem.

    The report is computed host-side from a {!Recorder.t} snapshot:

    - recording coverage (events retained / emitted, per-CPU ring drops);
    - per-lock contention: acquires, contended acquires, spin counts and
      hold times, from paired acquire/release events;
    - per-layer miss timeline: the simulated-time range split into
      buckets, counting allocations, per-CPU misses, global-layer
      misses, page grabs and VM denials in each;
    - page-lifetime statistics from paired grab/return events;
    - VM-system grant/reclaim/denial counts;
    - vmblk carve/coalesce, large-allocation and object-cache totals.

    Rendering is deterministic for a deterministic simulation, so the
    output is suitable for golden tests. *)

val pp : ?buckets:int -> Format.formatter -> Recorder.t -> unit
(** [pp ppf r] renders the report; [buckets] (default 10) controls the
    timeline resolution. *)

val to_string : ?buckets:int -> Recorder.t -> string

(** {1 Analysis hooks}

    The same per-lock accumulation the report renders, exposed as
    values so downstream analyzers (the scenario pathology detector)
    reason over it instead of re-parsing report text. *)

type lock_stat = private {
  mutable acquires : int;
  mutable contended : int;  (** acquires that had to spin *)
  mutable spins : int;
  mutable spins_max : int;
  mutable holds : int;  (** paired acquire/release samples *)
  mutable hold_total : int;
  mutable hold_max : int;
}

val lock_stats : Recorder.t -> (int * lock_stat) list
(** [lock_stats r] is the contention accumulation per lock word
    address, ascending by address (deterministic for a deterministic
    run); resolve names with {!Recorder.lock_name}. *)
