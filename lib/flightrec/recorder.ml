type t = {
  rings : Event.t Ring.t array;
  capacity : int;
  lock_names : (int, string) Hashtbl.t;
  mutable enabled : bool;
  mutable oob : int;
}

let dummy_event = { Event.time = 0; cpu = 0; kind = Event.Vm_grant }

let create ?(capacity = 65536) ~ncpus () =
  if ncpus < 1 then invalid_arg "Flightrec.Recorder.create: ncpus < 1";
  if capacity < 1 then invalid_arg "Flightrec.Recorder.create: capacity < 1";
  {
    rings = Array.init ncpus (fun _ -> Ring.create ~capacity ~dummy:dummy_event);
    capacity;
    lock_names = Hashtbl.create 32;
    enabled = true;
    oob = 0;
  }

let ncpus t = Array.length t.rings
let capacity t = t.capacity

(* The globally-installed recorder and its hot flag.  [hot] mirrors
   "installed && enabled" so the disabled path at every instrumentation
   site is one branch on one mutable bool. *)
let current : t option ref = ref None
let hot = ref false

let refresh_hot () =
  hot := match !current with Some r -> r.enabled | None -> false

let install t =
  current := Some t;
  refresh_hot ()

let uninstall () =
  current := None;
  refresh_hot ()

let installed () = !current

let set_enabled t v =
  t.enabled <- v;
  refresh_hot ()

let on () = !hot

let emit ~cpu ~time kind =
  match !current with
  | None -> ()
  | Some r when not r.enabled -> ()
  | Some r ->
      if cpu < 0 || cpu >= Array.length r.rings then r.oob <- r.oob + 1
      else Ring.push r.rings.(cpu) { Event.time; cpu; kind }

let note_lock ~addr name =
  match !current with
  | None -> ()
  | Some r -> Hashtbl.replace r.lock_names addr name

let lock_name t addr =
  match Hashtbl.find_opt t.lock_names addr with
  | Some n -> n
  | None -> Printf.sprintf "lock@%d" addr

let recorded t =
  Array.fold_left (fun acc ring -> acc + Ring.length ring) 0 t.rings

let total t =
  Array.fold_left (fun acc ring -> acc + Ring.total ring) 0 t.rings

let drops t ~cpu = Ring.dropped t.rings.(cpu)

let total_drops t =
  Array.fold_left (fun acc ring -> acc + Ring.dropped ring) 0 t.rings

let oob t = t.oob

let events ?cpu ?si ?kind ?t_min ?t_max t =
  let keep (e : Event.t) =
    (match cpu with Some c -> e.Event.cpu = c | None -> true)
    && (match si with
       | Some s -> Event.si_of e.Event.kind = Some s
       | None -> true)
    && (match kind with Some p -> p e.Event.kind | None -> true)
    && (match t_min with Some lo -> e.Event.time >= lo | None -> true)
    && match t_max with Some hi -> e.Event.time <= hi | None -> true
  in
  let all =
    Array.fold_left
      (fun acc ring ->
        Ring.fold ring ~init:acc ~f:(fun acc e ->
            if keep e then e :: acc else acc))
      [] t.rings
  in
  (* Each ring is time-ordered already (per-CPU clocks are monotonic);
     a stable sort on (time, cpu) merges them deterministically. *)
  List.stable_sort
    (fun (a : Event.t) (b : Event.t) ->
      match compare a.Event.time b.Event.time with
      | 0 -> compare a.Event.cpu b.Event.cpu
      | c -> c)
    (List.rev all)

let iter_cpu t ~cpu f = Ring.iter t.rings.(cpu) f

let clear t =
  Array.iter Ring.clear t.rings;
  t.oob <- 0
