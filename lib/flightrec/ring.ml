type 'a t = {
  data : 'a array;
  cap : int;
  dummy : 'a;
  mutable head : int;  (* total entries ever pushed *)
}

let create ~capacity ~dummy =
  if capacity < 1 then invalid_arg "Flightrec.Ring.create: capacity < 1";
  { data = Array.make capacity dummy; cap = capacity; dummy; head = 0 }

let capacity t = t.cap

let push t x =
  t.data.(t.head mod t.cap) <- x;
  t.head <- t.head + 1

let length t = min t.head t.cap
let total t = t.head
let dropped t = max 0 (t.head - t.cap)

let iter t f =
  for i = dropped t to t.head - 1 do
    f t.data.(i mod t.cap)
  done

let fold t ~init ~f =
  let acc = ref init in
  iter t (fun x -> acc := f !acc x);
  !acc

let to_list t = List.rev (fold t ~init:[] ~f:(fun acc x -> x :: acc))

let clear t =
  Array.fill t.data 0 t.cap t.dummy;
  t.head <- 0
