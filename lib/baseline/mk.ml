open Sim

(* Control layout (word addresses; words 16..1023 are reserved for the
   benchmark harness by repo convention):
   1024       lock
   1032..+n   freelist heads, one word per size class — deliberately
              packed into as few cache lines as possible, as the
              historical allocator's static arrays were
   then       arena cursor (next uncarved page), arena end
   then       kmemsizes, one word per arena page (~size class + 1; 0 =
              never carved)
   then       the page arena, page-aligned. *)

let sizes_bytes = [| 16; 32; 64; 128; 256; 512; 1024; 2048; 4096 |]
let nsizes = Array.length sizes_bytes
let page_words = 1024
let page_shift = 10

(* Straight-line charges: the MK fast path is a few instructions (the
   paper credits it with a 9-VAX-instruction allocation); the inlined
   binary search and carve loop are charged explicitly. *)
let w_alloc = 6
let w_free = 8
let w_carve_setup = 60 (* page-grab bookkeeping in the VM system *)

type t = {
  machine : Machine.t;
  lock : Spinlock.t;
  heads : int; (* base address of the freelist-head array *)
  cursor : int;
  arena_end_w : int;
  kmemsizes : int;
  arena_base : int;
}

let create machine =
  let mem = Machine.memory machine in
  let cfg = Machine.config machine in
  let heads = 1032 in
  let cursor = heads + nsizes in
  let arena_end_w = cursor + 1 in
  let kmemsizes = arena_end_w + 1 in
  let mem_end = cfg.Config.memory_words - cfg.Config.uncached_words in
  (* Pages the arena could hold if kmemsizes were free; round up, the
     arena base then leaves enough room. *)
  let max_pages = (mem_end - kmemsizes) / page_words in
  let arena_base =
    (kmemsizes + max_pages + page_words - 1) / page_words * page_words
  in
  let arena_end = mem_end / page_words * page_words in
  if arena_end <= arena_base then
    invalid_arg "Baseline.Mk.create: memory too small";
  let lock = Spinlock.init mem 1024 in
  Lockcheck.register_lock ~addr:1024 ~name:"mk" ~cls:"baseline.mk" ();
  for si = 0 to nsizes - 1 do
    Memory.set mem (heads + si) 0
  done;
  Memory.set mem cursor arena_base;
  Memory.set mem arena_end_w arena_end;
  { machine; lock; heads; cursor; arena_end_w; kmemsizes; arena_base }

let size_index bytes =
  let rec go si = if sizes_bytes.(si) >= bytes then si else go (si + 1) in
  if bytes > sizes_bytes.(nsizes - 1) then None else Some (go 0)

(* Carve a fresh page into blocks of class [si]; lock held.  Returns the
   head of the new chain, or 0 when the arena is spent. *)
let carve t si =
  Machine.work w_carve_setup;
  let page = Machine.read t.cursor in
  if page >= Machine.read t.arena_end_w then 0
  else begin
    Machine.write t.cursor (page + page_words);
    Machine.write
      (t.kmemsizes + ((page - t.arena_base) lsr page_shift))
      (si + 1);
    let words = sizes_bytes.(si) / 4 in
    let n = page_words / words in
    let rec chain i acc =
      if i < 0 then acc
      else begin
        let blk = page + (i * words) in
        Machine.write blk acc;
        chain (i - 1) blk
      end
    in
    chain (n - 1) 0
  end

let alloc t ~bytes =
  match size_index bytes with
  | None -> 0
  | Some si ->
      Machine.work w_alloc;
      Spinlock.with_lock t.lock (fun () ->
          let head = t.heads + si in
          let a = Machine.read head in
          if a <> 0 then begin
            Machine.write head (Machine.read a);
            a
          end
          else
            let chain = carve t si in
            if chain = 0 then 0
            else begin
              Machine.write head (Machine.read chain);
              chain
            end)

let free t ~addr =
  Machine.work w_free;
  Spinlock.with_lock t.lock (fun () ->
      let si =
        Machine.read (t.kmemsizes + ((addr - t.arena_base) lsr page_shift))
        - 1
      in
      assert (si >= 0 && si < nsizes);
      let head = t.heads + si in
      Machine.write addr (Machine.read head);
      Machine.write head addr)

let free_sized t ~addr ~bytes:_ = free t ~addr

(* Host-side oracle: pages permanently carved out of the arena (mk
   never returns one). *)
let pages_carved_oracle t =
  let mem = Machine.memory t.machine in
  (Memory.get mem t.cursor - t.arena_base) / page_words
