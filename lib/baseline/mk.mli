(** Naive parallelization of the McKusick–Karels allocator.

    Power-of-two freelists with a per-page size record ([kmemsizes]), as
    in the 4.3BSD allocator, wrapped in a single global spinlock — the
    paper's "mk" baseline.  Faithful properties:

    - extremely cheap uniprocessor fast path (a handful of instructions
      plus the lock);
    - free recovers the size class from [kmemsizes], so callers need not
      pass a size;
    - {b no coalescing}: pages carved for one size class are never
      reusable for another, so the worst-case benchmark permanently
      fragments memory (the paper notes such an allocator "would fail to
      complete this benchmark");
    - all freelist heads share cache lines and every operation takes the
      same lock, so multiprocessor traffic collapses the throughput.

    Requests larger than the biggest class return 0. *)

type t

val create : Sim.Machine.t -> t
(** Boots the allocator owning all of [machine]'s memory above the
    control words (host-side). *)

val alloc : t -> bytes:int -> int
(** Simulated; 0 when the arena is exhausted (it never refills). *)

val free : t -> addr:int -> unit
(** Simulated.  The size class comes from [kmemsizes]. *)

val free_sized : t -> addr:int -> bytes:int -> unit
(** {!free} ignoring the redundant size, for the common interface. *)

val pages_carved_oracle : t -> int
(** Host-side: pages carved out of the arena so far.  mk never returns
    a page, so this is also its permanent physical footprint (the
    contrast measured by experiment E8). *)
