open Sim

(* Block format (sizes in words, including the tags):
     h          header: size*2 + used bit
     h+1        next free block (when free)
     h+2        prev free block (when free)
     ...        user data (user pointer is h+1)
     h+size-1   footer: same value as header
   Minimum block is 4 words (two words of user data).

   Control layout (words 16..1023 are reserved for the benchmark
   harness by repo convention):
     1024   lock
     1032   free-list head
     1033   stats cursor (rotates through the uncacheable counters) *)

let w_fixed = 220
let stats_touches = 2
let min_block = 4

type t = {
  machine : Machine.t;
  lock : Spinlock.t;
  flhead : int;
  stats_cursor : int;
  arena_base : int;
  arena_end : int;
  uncached_base : int;
  uncached_words : int;
}

let hdr_of ~size ~used = (size * 2) + if used then 1 else 0
let size_of_hdr h = h / 2
let used_of_hdr h = h land 1 = 1

let create machine =
  let mem = Machine.memory machine in
  let cfg = Machine.config machine in
  let lock = Spinlock.init mem 1024 in
  Lockcheck.register_lock ~addr:1024 ~name:"oldkma" ~cls:"baseline.oldkma" ();
  let flhead = 1032 in
  let stats_cursor = 1033 in
  let arena_base = 1040 in
  let arena_end = cfg.Config.memory_words - cfg.Config.uncached_words in
  if arena_end - arena_base < 2 * min_block then
    invalid_arg "Baseline.Oldkma.create: memory too small";
  let size = arena_end - arena_base in
  Memory.set mem arena_base (hdr_of ~size ~used:false);
  Memory.set mem (arena_base + size - 1) (hdr_of ~size ~used:false);
  Memory.set mem (arena_base + 1) 0;
  Memory.set mem (arena_base + 2) 0;
  Memory.set mem flhead arena_base;
  Memory.set mem stats_cursor 0;
  {
    machine;
    lock;
    flhead;
    stats_cursor;
    arena_base;
    arena_end;
    uncached_base = arena_end;
    uncached_words = cfg.Config.uncached_words;
  }

(* The historical allocator updated event counters living in
   uncacheable space on every operation.  Rotate through the region so
   the bus cost is paid on each of them. *)
let bump_stats t =
  if t.uncached_words > 0 then begin
    let c = Machine.read t.stats_cursor in
    Machine.write t.stats_cursor ((c + 1) mod 64);
    for i = 0 to stats_touches - 1 do
      let a = t.uncached_base + (((c * stats_touches) + i) mod t.uncached_words) in
      Machine.write a (Machine.read a + 1)
    done
  end
  else Machine.work (stats_touches * 2)

(* --- free-list management (lock held) --- *)

let fl_insert t h =
  let old = Machine.read t.flhead in
  Machine.write (h + 1) old;
  Machine.write (h + 2) 0;
  if old <> 0 then Machine.write (old + 2) h;
  Machine.write t.flhead h

let fl_remove t h =
  let next = Machine.read (h + 1) in
  let prev = Machine.read (h + 2) in
  if prev = 0 then Machine.write t.flhead next
  else Machine.write (prev + 1) next;
  if next <> 0 then Machine.write (next + 2) prev

let set_tags h ~size ~used =
  Machine.write h (hdr_of ~size ~used);
  Machine.write (h + size - 1) (hdr_of ~size ~used)

let alloc t ~bytes =
  if bytes <= 0 then invalid_arg "Baseline.Oldkma.alloc: bytes <= 0";
  let user_words = max 2 ((bytes + 3) / 4) in
  let need = user_words + 2 in
  Spinlock.with_lock t.lock (fun () ->
      (* The historical allocator's fixed code sequence and event
         counters all ran under the allocator lock. *)
      Machine.work w_fixed;
      bump_stats t;
      let rec fit h =
        if h = 0 then 0
        else
          let size = size_of_hdr (Machine.read h) in
          if size >= need then begin
            fl_remove t h;
            if size - need >= min_block then begin
              (* Split: remainder stays free. *)
              let rest = h + need in
              set_tags rest ~size:(size - need) ~used:false;
              fl_insert t rest;
              set_tags h ~size:need ~used:true
            end
            else set_tags h ~size ~used:true;
            h + 1
          end
          else fit (Machine.read (h + 1))
      in
      fit (Machine.read t.flhead))

let free t ~addr =
  Spinlock.with_lock t.lock (fun () ->
      Machine.work w_fixed;
      bump_stats t;
      let h = addr - 1 in
      let hdr = Machine.read h in
      assert (used_of_hdr hdr);
      let size = size_of_hdr hdr in
      (* Coalesce with the following block. *)
      let h, size =
        let n = h + size in
        if n < t.arena_end && not (used_of_hdr (Machine.read n)) then begin
          let nsize = size_of_hdr (Machine.read n) in
          fl_remove t n;
          (h, size + nsize)
        end
        else (h, size)
      in
      (* Coalesce with the preceding block. *)
      let h, size =
        if h > t.arena_base then begin
          let pftr = Machine.read (h - 1) in
          if not (used_of_hdr pftr) then begin
            let psize = size_of_hdr pftr in
            let p = h - psize in
            fl_remove t p;
            (p, size + psize)
          end
          else (h, size)
        end
        else (h, size)
      in
      set_tags h ~size ~used:false;
      fl_insert t h)

let free_sized t ~addr ~bytes:_ = free t ~addr

let free_words_oracle t =
  let mem = Machine.memory t.machine in
  let rec go h acc =
    if h = 0 then acc
    else
      go (Memory.get mem (h + 1)) (acc + size_of_hdr (Memory.get mem h))
  in
  go (Memory.get mem t.flhead) 0
