(** Uniform handle over every allocator arm the laboratory can race:
    the four the paper benchmarks plus the extension arms, so the
    experiment harness can drive any of them through one interface.

    Each [create_*] boots the corresponding allocator into a machine's
    memory (use a fresh machine per allocator — they each assume they
    own the address space). *)

type t = {
  name : string;
  alloc : bytes:int -> int;
      (** simulated; returns 0 on memory exhaustion *)
  free : addr:int -> bytes:int -> unit;  (** simulated *)
}

type which =
  | Cookie
  | Newkma
  | Numakma
      (** {!Newkma} with the per-node global layer enabled
          ([Kma.Kmem.create ~numa_global:true]): each NUMA node keeps a
          private gblfree pool, so cross-CPU frees stop ping-ponging
          one global lock line across the whole machine.  Identical to
          [Newkma] on a 1-node machine. *)
  | Mk
  | Oldkma
  | Lazybuddy
      (** the Lee–Barkley watermark lazy buddy from the paper's "Roads
          Not Taken" (an extension: not one of Figure 7's four traces) *)
  | Nbbuddy
      (** lock-free extension arm: the non-blocking buddy system after
          Marotta et al. — see {!Lockfree.Nbbuddy} and PAPERS.md *)
  | Bwfixed
      (** lock-free extension arm: Blelloch–Wei-style constant-time
          fixed-size allocation — see {!Lockfree.Bwfixed} and
          PAPERS.md *)

val all : which list
(** The paper's four Figure 7 traces, in legend order (the extension
    arms are not included). *)

val extras : which list
(** The extension arms beyond the paper's four: [Numakma] and
    [Lazybuddy] plus the lock-free pair. *)

val lockfree : which list
(** Just the lock-free arms ([Nbbuddy; Bwfixed]). *)

val roster : string list
(** Every recognised allocator name, [all] then [extras] — the list CLI
    error messages print. *)

val roster_string : string
(** [roster] joined with [", "]. *)

val name_of : which -> string
val of_name : string -> which option

val create : which -> Sim.Machine.t -> t
(** [create which machine] boots allocator [which] in [machine].  For
    [Cookie] the returned [alloc]/[free] use a per-size cookie cache, so
    every size the benchmark touches pays the translation only once —
    the paper's compile-time-size usage. *)

type probe = {
  stats : Lockfree.Stats.t option;
      (** retry/helping counters when [which] is a lock-free arm
          ([None] for the lock-based allocators — their contention
          shows up as lock hold and spin time instead; see
          [Lockcheck]) *)
  drained : unit -> string option;
      (** host-side full-drain check: with every block returned and the
          machine quiescent, [Some msg] describes a conservation or
          structural-invariant violation.  Trivially [None] for arms
          without a registered oracle. *)
}

val create_probed : which -> Sim.Machine.t -> t * probe
(** [create_probed which machine] is {!create} plus the instance's
    observation probe. *)
