open Sim

(* Classes 16 B .. 4096 B; the 4096-byte class is the buddy "chunk":
   all splitting happens inside a chunk, so buddy arithmetic only needs
   the arena aligned to the chunk size.

   Control layout (above the harness scratch region):
     1024                lock
     1032 + 8c           per-class record: fhead, inuse, lazy, glob
                         (free lists are doubly linked through the
                         blocks' first two words)
     then                per-class packed bitmaps (bit set = globally
                         free, i.e. visible to coalescing)
     then                the arena, chunk-aligned. *)

let sizes_bytes = [| 16; 32; 64; 128; 256; 512; 1024; 2048; 4096 |]
let nclasses = Array.length sizes_bytes
let max_class = nclasses - 1
let words_of c = sizes_bytes.(c) / 4
let chunk_words = words_of max_class

let w_alloc = 10
let w_free = 10

type t = {
  machine : Machine.t;
  lock : Spinlock.t;
  cls_base : int;
  bits_base : int array; (* per-class bitmap base *)
  arena : int;
  arena_end : int;
}

(* per-class record offsets.  The free list is doubly linked with both
   head and tail pointers: lazily-freed blocks go to the head (hot,
   and visible to the retire step), globally-free blocks to the tail —
   the dual insertion of the original design. *)
let f_head = 0
let f_tail = 1
let f_inuse = 2
let f_lazy = 3
let f_glob = 4

let cls t c = t.cls_base + (c * 8)

let create machine =
  let mem = Machine.memory machine in
  let cfg = Machine.config machine in
  let lock = Spinlock.init mem 1024 in
  Lockcheck.register_lock ~addr:1024 ~name:"lazybuddy"
    ~cls:"baseline.lazybuddy" ();
  let cls_base = 1032 in
  let cursor = ref (cls_base + (nclasses * 8)) in
  (* Bitmaps sized for the whole memory span (simpler than resolving
     the arena-size/bitmap-size circularity; the overestimate is
     ~memory/32 words). *)
  let bits_base =
    Array.init nclasses (fun c ->
        let base = !cursor in
        let nbits = cfg.Config.memory_words / words_of c in
        cursor := base + ((nbits + 31) / 32) + 1;
        base)
  in
  let mem_end = cfg.Config.memory_words - cfg.Config.uncached_words in
  let arena = (!cursor + chunk_words - 1) / chunk_words * chunk_words in
  let arena_end = mem_end / chunk_words * chunk_words in
  if arena_end - arena < chunk_words then
    invalid_arg "Baseline.Lazybuddy.create: memory too small";
  let t = { machine; lock; cls_base; bits_base; arena; arena_end } in
  (* Boot: zero control words, then enter every chunk as globally free
     in the top class (host-side). *)
  for c = 0 to nclasses - 1 do
    for f = 0 to 4 do
      Memory.set mem (cls t c + f) 0
    done
  done;
  let bit_word ~c blk =
    let i = (blk - arena) / words_of c in
    (bits_base.(c) + (i / 32), 1 lsl (i mod 32))
  in
  let rec boot_chunks blk prev =
    if blk >= arena_end then prev
    else begin
      let w, m = bit_word ~c:max_class blk in
      Memory.set mem w (Memory.get mem w lor m);
      Memory.set mem blk 0 (* next *);
      Memory.set mem (blk + 1) prev;
      if prev <> 0 then Memory.set mem prev blk;
      if prev = 0 then Memory.set mem (cls t max_class + f_head) blk;
      boot_chunks (blk + chunk_words) blk
    end
  in
  let last = boot_chunks arena 0 in
  Memory.set mem (cls t max_class + f_tail) last;
  Memory.set mem
    (cls t max_class + f_glob)
    ((arena_end - arena) / chunk_words);
  t

(* --- bitmap operations (simulated, lock held) --- *)

let bit_loc t ~c blk =
  let i = (blk - t.arena) / words_of c in
  (t.bits_base.(c) + (i / 32), 1 lsl (i mod 32))

let bit_test t ~c blk =
  let w, m = bit_loc t ~c blk in
  Machine.read w land m <> 0

let bit_set t ~c blk =
  let w, m = bit_loc t ~c blk in
  Machine.write w (Machine.read w lor m)

let bit_clear t ~c blk =
  let w, m = bit_loc t ~c blk in
  Machine.write w (Machine.read w land lnot m)

(* --- doubly-linked per-class free lists with tail (lock held) --- *)

let fl_push t ~c blk =
  (* Head insert: lazy blocks. *)
  let head = cls t c + f_head in
  let old = Machine.read head in
  Machine.write blk old;
  Machine.write (blk + 1) 0;
  if old <> 0 then Machine.write (old + 1) blk
  else Machine.write (cls t c + f_tail) blk;
  Machine.write head blk

let fl_append t ~c blk =
  (* Tail insert: globally-free blocks. *)
  let tail = cls t c + f_tail in
  let old = Machine.read tail in
  Machine.write blk 0;
  Machine.write (blk + 1) old;
  if old <> 0 then Machine.write old blk
  else Machine.write (cls t c + f_head) blk;
  Machine.write tail blk

let fl_pop t ~c =
  let head = cls t c + f_head in
  let blk = Machine.read head in
  if blk <> 0 then begin
    let next = Machine.read blk in
    Machine.write head next;
    if next <> 0 then Machine.write (next + 1) 0
    else Machine.write (cls t c + f_tail) 0
  end;
  blk

let fl_remove t ~c blk =
  let next = Machine.read blk in
  let prev = Machine.read (blk + 1) in
  if prev = 0 then Machine.write (cls t c + f_head) next
  else Machine.write prev next;
  if next = 0 then Machine.write (cls t c + f_tail) prev
  else Machine.write (next + 1) prev

let ctr_add t ~c f d =
  let a = cls t c + f in
  Machine.write a (Machine.read a + d)

let push_global t ~c blk =
  bit_set t ~c blk;
  fl_append t ~c blk;
  ctr_add t ~c f_glob 1

(* Pop any free block of class [c], fixing whichever counter it was
   under (a set bitmap bit means globally free). *)
let pop_any t ~c =
  let blk = fl_pop t ~c in
  if blk = 0 then 0
  else begin
    if bit_test t ~c blk then begin
      bit_clear t ~c blk;
      ctr_add t ~c f_glob (-1)
    end
    else ctr_add t ~c f_lazy (-1);
    blk
  end

(* Get a free block of class [c], splitting larger blocks as needed;
   the split-off half becomes globally free. *)
let rec get_block t ~c =
  if c >= nclasses then 0
  else
    match pop_any t ~c with
    | 0 ->
        let big = get_block t ~c:(c + 1) in
        if big = 0 then 0
        else begin
          push_global t ~c (big + words_of c);
          big
        end
    | blk -> blk

(* Mark [blk] globally free and merge with its buddy as long as the
   buddy is also globally free. *)
let rec coalesce t ~c blk =
  if c = max_class then push_global t ~c blk
  else begin
    let bud = t.arena + ((blk - t.arena) lxor words_of c) in
    if bit_test t ~c bud then begin
      bit_clear t ~c bud;
      ctr_add t ~c f_glob (-1);
      fl_remove t ~c bud;
      coalesce t ~c:(c + 1) (min blk bud)
    end
    else push_global t ~c blk
  end

let class_of bytes =
  let rec go c =
    if c >= nclasses then None
    else if sizes_bytes.(c) >= bytes then Some c
    else go (c + 1)
  in
  if bytes <= 0 then invalid_arg "Baseline.Lazybuddy.alloc: bytes <= 0"
  else go 0

let alloc t ~bytes =
  match class_of bytes with
  | None -> 0
  | Some c ->
      Machine.work w_alloc;
      Spinlock.with_lock t.lock (fun () ->
          let blk = get_block t ~c in
          if blk <> 0 then ctr_add t ~c f_inuse 1;
          blk)

let free t ~addr ~bytes =
  match class_of bytes with
  | None -> invalid_arg "Baseline.Lazybuddy.free: bad size"
  | Some c ->
      Machine.work w_free;
      Spinlock.with_lock t.lock (fun () ->
          ctr_add t ~c f_inuse (-1);
          let inuse = Machine.read (cls t c + f_inuse) in
          let lzy = Machine.read (cls t c + f_lazy) in
          let glob = Machine.read (cls t c + f_glob) in
          let slack = inuse - (2 * lzy) - glob in
          if slack >= 2 then begin
            (* Comfortable slack: lazy free, no coalescing traffic. *)
            fl_push t ~c addr;
            ctr_add t ~c f_lazy 1
          end
          else begin
            coalesce t ~c addr;
            if slack <= 0 then begin
              (* Deep deficit: also retire one pending lazy block. *)
              let head = Machine.read (cls t c + f_head) in
              if head <> 0 && not (bit_test t ~c head) then begin
                let blk = fl_pop t ~c in
                ctr_add t ~c f_lazy (-1);
                coalesce t ~c blk
              end
            end
          end)

(* --- host-side oracles --- *)

let counters_oracle t ~si =
  let mem = Machine.memory t.machine in
  ( Memory.get mem (cls t si + f_inuse),
    Memory.get mem (cls t si + f_lazy),
    Memory.get mem (cls t si + f_glob) )

let largest_free_oracle t =
  let mem = Machine.memory t.machine in
  let rec go c best =
    if c >= nclasses then best
    else
      go (c + 1)
        (if Memory.get mem (cls t c + f_glob) > 0 then sizes_bytes.(c)
         else best)
  in
  go 0 0

let total_free_words_oracle t =
  let mem = Machine.memory t.machine in
  let rec go c acc =
    if c >= nclasses then acc
    else
      go (c + 1)
        (acc
        + (Memory.get mem (cls t c + f_lazy)
          + Memory.get mem (cls t c + f_glob))
          * words_of c)
  in
  go 0 0
