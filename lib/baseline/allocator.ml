type t = {
  name : string;
  alloc : bytes:int -> int;
  free : addr:int -> bytes:int -> unit;
}

type which =
  | Cookie
  | Newkma
  | Numakma
  | Mk
  | Oldkma
  | Lazybuddy
  | Nbbuddy
  | Bwfixed

let all = [ Cookie; Newkma; Mk; Oldkma ]
let extras = [ Numakma; Lazybuddy; Nbbuddy; Bwfixed ]
let lockfree = [ Nbbuddy; Bwfixed ]

let name_of = function
  | Cookie -> "cookie"
  | Newkma -> "newkma"
  | Numakma -> "numakma"
  | Mk -> "mk"
  | Oldkma -> "oldkma"
  | Lazybuddy -> "lazybuddy"
  | Nbbuddy -> "nbbuddy"
  | Bwfixed -> "bwfixed"

let roster = List.map name_of (all @ extras)
let roster_string = String.concat ", " roster

let of_name = function
  | "cookie" -> Some Cookie
  | "newkma" -> Some Newkma
  | "numakma" -> Some Numakma
  | "mk" -> Some Mk
  | "oldkma" -> Some Oldkma
  | "lazybuddy" -> Some Lazybuddy
  | "nbbuddy" -> Some Nbbuddy
  | "bwfixed" -> Some Bwfixed
  | _ -> None

let auto_params machine =
  Kma.Params.auto
    ~memory_words:(Sim.Machine.config machine).Sim.Config.memory_words

let create_cookie machine =
  let kmem = Kma.Kmem.create machine ~params:(auto_params machine) () in
  (* One cookie per size class, resolved host-side: the paper's
     compile-time-size usage. *)
  let p = Kma.Kmem.params kmem in
  let cookies =
    Array.map
      (fun bytes -> Kma.Cookie.of_bytes_host kmem ~bytes)
      p.Kma.Params.sizes_bytes
  in
  let cookie_for bytes =
    match Kma.Params.size_index_of_bytes p bytes with
    | Some si -> Some cookies.(si)
    | None -> None
  in
  {
    name = "cookie";
    alloc =
      (fun ~bytes ->
        match cookie_for bytes with
        | Some c -> ( match Kma.Cookie.try_alloc kmem c with Some a -> a | None -> 0)
        | None -> ( match Kma.Kmem.try_alloc kmem ~bytes with Some a -> a | None -> 0));
    free =
      (fun ~addr ~bytes ->
        match cookie_for bytes with
        | Some c -> Kma.Cookie.free kmem c addr
        | None -> Kma.Kmem.free kmem ~addr ~bytes);
  }

let create_newkma machine =
  let kmem = Kma.Kmem.create machine ~params:(auto_params machine) () in
  {
    name = "newkma";
    alloc =
      (fun ~bytes ->
        match Kma.Kmem.try_alloc kmem ~bytes with Some a -> a | None -> 0);
    free = (fun ~addr ~bytes -> Kma.Kmem.free kmem ~addr ~bytes);
  }

(* The per-node-global variant of newkma: identical code, identical
   layout, but each NUMA node owns a private gblfree (see Global).  On
   a 1-node machine it degenerates to newkma exactly. *)
let create_numakma machine =
  let kmem =
    Kma.Kmem.create machine ~params:(auto_params machine) ~numa_global:true ()
  in
  {
    name = "numakma";
    alloc =
      (fun ~bytes ->
        match Kma.Kmem.try_alloc kmem ~bytes with Some a -> a | None -> 0);
    free = (fun ~addr ~bytes -> Kma.Kmem.free kmem ~addr ~bytes);
  }

let create_mk machine =
  let mk = Mk.create machine in
  {
    name = "mk";
    alloc = (fun ~bytes -> Mk.alloc mk ~bytes);
    free = (fun ~addr ~bytes -> Mk.free_sized mk ~addr ~bytes);
  }

let create_oldkma machine =
  let o = Oldkma.create machine in
  {
    name = "oldkma";
    alloc = (fun ~bytes -> Oldkma.alloc o ~bytes);
    free = (fun ~addr ~bytes -> Oldkma.free_sized o ~addr ~bytes);
  }

let create_lazybuddy machine =
  let b = Lazybuddy.create machine in
  {
    name = "lazybuddy";
    alloc = (fun ~bytes -> Lazybuddy.alloc b ~bytes);
    free = (fun ~addr ~bytes -> Lazybuddy.free b ~addr ~bytes);
  }

type probe = {
  stats : Lockfree.Stats.t option;
  drained : unit -> string option;
}

let unprobed = { stats = None; drained = (fun () -> None) }

let create_nbbuddy machine =
  let b = Lockfree.Nbbuddy.create machine in
  ( {
      name = "nbbuddy";
      alloc = (fun ~bytes -> Lockfree.Nbbuddy.alloc b ~bytes);
      free = (fun ~addr ~bytes -> Lockfree.Nbbuddy.free b ~addr ~bytes);
    },
    {
      stats = Some (Lockfree.Nbbuddy.stats b);
      drained =
        (fun () ->
          match Lockfree.Nbbuddy.invariant_oracle b with
          | Some _ as err -> err
          | None ->
              let words = Lockfree.Nbbuddy.allocated_words_oracle b in
              if words <> 0 then
                Some (Printf.sprintf "%d words still allocated" words)
              else None);
    } )

let create_bwfixed machine =
  let b = Lockfree.Bwfixed.create machine in
  ( {
      name = "bwfixed";
      alloc = (fun ~bytes -> Lockfree.Bwfixed.alloc b ~bytes);
      free = (fun ~addr ~bytes -> Lockfree.Bwfixed.free b ~addr ~bytes);
    },
    {
      stats = Some (Lockfree.Bwfixed.stats b);
      drained =
        (fun () ->
          let rec go c =
            if c > 8 then None
            else
              let total = Lockfree.Bwfixed.blocks_of_class b ~c in
              let free = Lockfree.Bwfixed.free_blocks_oracle b ~c in
              if free <> total then
                Some
                  (Printf.sprintf "class %d: %d of %d blocks free" c free
                     total)
              else go (c + 1)
          in
          go 0);
    } )

let create_probed which machine =
  match which with
  | Cookie -> (create_cookie machine, unprobed)
  | Newkma -> (create_newkma machine, unprobed)
  | Numakma -> (create_numakma machine, unprobed)
  | Mk -> (create_mk machine, unprobed)
  | Oldkma -> (create_oldkma machine, unprobed)
  | Lazybuddy -> (create_lazybuddy machine, unprobed)
  | Nbbuddy -> create_nbbuddy machine
  | Bwfixed -> create_bwfixed machine

let create which machine = fst (create_probed which machine)
