(** Host-side retry/helping counters for the lock-free allocator arms.

    Lock-free progress is paid for in retries: a failed CAS or a helping
    repair is invisible in a throughput number but very visible on the
    simulated bus.  Each allocator instance owns one of these records and
    bumps it from host code as its simulated protocol runs, so the counts
    cost zero simulated cycles (same discipline as the flight recorder)
    and are exactly reproducible run to run.  The E13 chapter's CAS-retry
    tables (see PAPERS.md: Marotta et al.'s non-blocking buddy system,
    and Blelloch & Wei's constant-time fixed-size allocator) are printed
    straight from these.

    Counters are per-instance, so domain-parallel sweeps (one machine and
    one allocator per domain) never share a record.

    Invariants: [cas_failures <= cas_attempts]; every counter is
    monotone between {!reset}s; identical seeded runs yield identical
    counts (asserted by the determinism test in [test/lockfree]). *)

type t = {
  mutable cas_attempts : int;  (** CAS operations issued *)
  mutable cas_failures : int;  (** CAS operations that lost a race *)
  mutable mark_rmws : int;
      (** ancestor-marking / unmarking atomic OR/AND operations
          (non-blocking buddy only) *)
  mutable conflicts : int;
      (** allocations rolled back after meeting an allocated ancestor
          (non-blocking buddy only) *)
  mutable helps : int;
      (** helping repairs: an occupancy bit re-set on behalf of a
          concurrent allocation observed during unmarking *)
  mutable refills : int;
      (** batch pops from a shared free stack (fixed-size arm only) *)
  mutable flushes : int;
      (** batch pushes to a shared free stack (fixed-size arm only) *)
  mutable steals : int;
      (** whole private stacks claimed from another CPU on the
          exhaustion path (fixed-size arm only) *)
}

val create : unit -> t
(** [create ()] is a zeroed record. *)

val copy : t -> t
(** Snapshot of the current counts, detached from the live record. *)

val reset : t -> unit
(** [reset t] zeroes every counter (e.g. after warmup, before the timed
    region — mirrors [Sim.Machine.reset_clocks]). *)

val to_string : t -> string
(** One-line rendering for tables and logs. *)
