(** Constant-time concurrent fixed-size allocation in the style of
    Blelloch & Wei (PAPERS.md: "Concurrent Fixed-Size Allocation and
    Free in Constant Time"); an extension arm beyond the paper's four
    lock-based allocators.

    Nine segregated size classes, each an equal share of the arena.
    Per CPU and class, a private stack of claimed blocks on the CPU's
    own cache lines serves the hot path; the shared per-class Treiber
    stack holds batches of [8] blocks behind a single tagged head word,
    so a refill or flush is one CAS per 8 blocks and the common
    alloc/free touches no shared word at all — the paper's per-CPU
    freelist shape rebuilt without the lock.  The head word packs a
    generation tag beside the address to defeat ABA.

    The private count words carry the same (tag, count) packing as the
    shared heads, and every pop/push of a non-empty private stack
    commits with a tagged CAS.  That makes the stacks stealable: a CPU
    whose class is exhausted (private stack and shared stack both
    empty) claims another CPU's whole private stack with one CAS on
    the victim's count word and flushes the claimed blocks through the
    shared tagged stack, so exhaustion is global, not per-CPU-visible.

    Linearization: an [alloc] served from the private stack linearizes
    at its successful count-word CAS; a refill linearizes at the
    successful head CAS that detaches a batch, a flush at the head CAS
    that publishes one, and a steal at the CAS that zeroes the
    victim's count word.  Every CAS failure is counted in {!stats}.

    Invariants: per class, blocks on the shared stack plus blocks in
    every CPU's private stack plus blocks held by callers equal
    {!blocks_of_class} (conservation — checked by the [test/lockfree]
    hammer); a block is on at most one stack at a time. *)

type t

val create : Sim.Machine.t -> t
(** [create machine] carves the machine's memory into per-class arenas,
    pre-batches every block onto the shared stacks, and zeroes the
    private stacks (all host-side).  Use a fresh machine per allocator.
    @raise Invalid_argument if memory is too small. *)

val alloc : t -> bytes:int -> int
(** [alloc t ~bytes] takes a block of the smallest class >= [bytes]
    (classes 16 B .. 4096 B); 0 for sizes above 4096 B, or when the
    class is empty machine-wide: before failing, the exhaustion path
    steals blocks parked on other CPUs' private stacks (routing them
    through the shared tagged stack), so a failure means no CPU's
    stack held a block at any point the scan witnessed.  Simulated;
    lock-free.
    @raise Invalid_argument if [bytes <= 0]. *)

val free : t -> addr:int -> bytes:int -> unit
(** [free t ~addr ~bytes] returns a block to this CPU's private stack,
    flushing a batch to the shared stack when it overfills.  Simulated;
    lock-free. *)

val stats : t -> Stats.t
(** CAS/refill/flush counters for this instance (host-side, zero
    simulated cost). *)

(** {1 Host-side oracles (uncharged, for tests and experiment checks)} *)

val blocks_of_class : t -> c:int -> int
(** Total blocks carved for class [c] (0..8). *)

val free_blocks_oracle : t -> c:int -> int
(** Blocks of class [c] currently free: shared batches plus every CPU's
    private stack.  Only meaningful at quiescence. *)

val total_free_words_oracle : t -> int
(** Free words across all classes (conservation partner of the blocks
    held by callers). *)
