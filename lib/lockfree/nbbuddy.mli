(** Non-blocking buddy allocator over a flat tree of per-block status
    words, after the non-blocking buddy system of Marotta et al.
    (PAPERS.md: "A Non-blocking Buddy System for Scalable Memory
    Allocation on Multi-core Machines"); an extension arm beyond the
    paper's four lock-based allocators.

    The arena is a power of two of 16-byte leaves; a heap-ordered binary
    tree over the leaves holds one status word per block (FULL plus two
    per-child occupancy bits).  Splitting and coalescing are implicit: a
    block is claimable iff its status word reads 0, so freeing the last
    piece of a subtree re-creates the bigger block with no merge pass
    and no lock anywhere.  All mutation goes through the simulator's
    atomic RMW operations ([cas_val], [fetch_or], [fetch_and]), each
    costed by the [rmw] geometry knob, so retry storms and helping
    traffic land on the simulated bus like any other coherence load.

    Linearization: a successful [alloc] linearizes at its CAS of the
    claimed node's status 0 -> FULL — every later CAS or occupancy-OR on
    an overlapping block observes that word and fails or conflicts; a
    claim that meets a FULL ancestor while marking rolls itself back and
    is never visible to the caller.  [free] linearizes at the
    [fetch_and] clearing FULL: from that instant the block (and, once
    the unmark ascent clears quiescent ancestors, each fully-free
    enclosing block) is claimable.  The occupancy bits are a
    cooperatively-repaired index, not the truth: claimers re-assert
    their whole path and clearers recheck-and-help, so at quiescence a
    bit is set iff the child subtree holds an allocation — the invariant
    {!invariant_oracle} checks.

    Invariants: at quiescence, no FULL node has a FULL ancestor or
    descendant (overlap freedom); occupancy bits equal subtree contents;
    allocated plus free words equal {!arena_words} (conservation —
    checked by the [test/lockfree] hammer). *)

type t

val create : Sim.Machine.t -> t
(** [create machine] sizes the largest power-of-two arena (plus its
    status tree and per-CPU scan hints) that fits the machine's memory
    and boots it host-side.  Use a fresh machine per allocator.
    @raise Invalid_argument if memory is too small for one 4096-byte
    chunk. *)

val alloc : t -> bytes:int -> int
(** [alloc t ~bytes] claims a block of the smallest class >= [bytes]
    (classes 16 B .. 4096 B); 0 on exhaustion or for sizes above 4096 B.
    Simulated; lock-free (a failed CAS or conflict rollback retries at
    the next candidate node, never waits).
    @raise Invalid_argument if [bytes <= 0]. *)

val free : t -> addr:int -> bytes:int -> unit
(** [free t ~addr ~bytes] releases a block obtained from [alloc] with
    the same size class.  Simulated; lock-free. *)

val stats : t -> Stats.t
(** CAS/mark/conflict/help counters for this instance (host-side,
    zero simulated cost). *)

(** {1 Host-side oracles (uncharged, for tests and experiment checks)} *)

val arena_words : t -> int
(** Total words under management. *)

val allocated_words_oracle : t -> int
(** Words currently claimed (sum of FULL block sizes). *)

val invariant_oracle : t -> string option
(** [invariant_oracle t] checks overlap freedom and bit/subtree
    agreement at quiescence; [Some msg] describes the first violation.
    Only meaningful while no simulated CPU is mid-operation. *)
