type t = {
  mutable cas_attempts : int;
  mutable cas_failures : int;
  mutable mark_rmws : int;
  mutable conflicts : int;
  mutable helps : int;
  mutable refills : int;
  mutable flushes : int;
  mutable steals : int;
}

let create () =
  {
    cas_attempts = 0;
    cas_failures = 0;
    mark_rmws = 0;
    conflicts = 0;
    helps = 0;
    refills = 0;
    flushes = 0;
    steals = 0;
  }

let reset t =
  t.cas_attempts <- 0;
  t.cas_failures <- 0;
  t.mark_rmws <- 0;
  t.conflicts <- 0;
  t.helps <- 0;
  t.refills <- 0;
  t.flushes <- 0;
  t.steals <- 0

let copy t = { t with cas_attempts = t.cas_attempts }

let to_string t =
  Printf.sprintf
    "cas=%d fail=%d mark=%d conflict=%d help=%d refill=%d flush=%d steal=%d"
    t.cas_attempts t.cas_failures t.mark_rmws t.conflicts t.helps t.refills
    t.flushes t.steals
