open Sim

(* Non-blocking buddy system over a flat tree of per-block status words,
   after Marotta et al. (PAPERS.md).

   The arena is 2^d leaves of 16 B (4 words).  A complete binary tree
   over the leaves is stored flat in heap order (root = 1, children of i
   at 2i and 2i+1); node i at level l covers a block of 4 * 2^(d-l)
   words.  Each node has one status word:

     bit 0  FULL   the block is allocated at exactly this node
     bit 1  LEFT   some allocation lives in the left child's subtree
     bit 2  RIGHT  some allocation lives in the right child's subtree

   A block is free as a whole iff its status word is 0, so splitting and
   coalescing are implicit: claiming a node IS the split, and freeing the
   last descendant of a node makes the whole bigger block claimable with
   no merge step.

   Allocation at a node CASes its status 0 -> FULL, then ascends to the
   4096-byte level (the chunk level; nothing larger is ever allocated,
   exactly like the lock-based arms) atomically ORing the per-child
   occupancy bit into each ancestor.  Meeting a FULL ancestor means the
   claim overlapped an allocated bigger block: the claim is rolled back
   (conflict) and the scan moves on.  Freeing ANDs FULL off and ascends
   clearing occupancy bits, but only while the child's subtree reads
   free, rechecking after each clear and re-setting the bit (helping) if
   an allocation slipped in.  Both ascents are self-repairing: a
   successful claim always re-asserts its whole path, and any clearer
   rechecks, so at quiescence a bit is set iff the child subtree holds an
   allocation (the invariant the host oracle checks).

   Per-CPU, per-class scan hints (private cache lines) give the
   hot-path locality: an alloc/free pair re-claims the node it just
   released, so the steady-state cost is one read, one CAS and a short
   RMW ascent over lines this CPU already owns. *)

let leaf_words = 4
let nclasses = 9 (* 16 B .. 4096 B *)
let sizes_bytes = Array.init nclasses (fun c -> 16 lsl c)
let words_of c = leaf_words lsl c
let chunk_words = words_of (nclasses - 1)

let full = 1
let w_alloc = 10
let w_free = 10

type t = {
  machine : Machine.t;
  stats : Stats.t;
  depth : int; (* leaves = 2^depth *)
  top_level : int; (* chunk (4096 B) level: depth - 8 *)
  hints_base : int;
  hint_stride : int; (* words per CPU *)
  tree_base : int;
  arena : int;
  arena_end : int;
}

let child_bit j = if j land 1 = 0 then 2 else 4

let node t i = t.tree_base + i

let level_of_class t c = t.depth - c

let addr_of t i ~level = t.arena + ((i - (1 lsl level)) * (leaf_words lsl (t.depth - level)))

let node_of t addr ~c =
  (1 lsl level_of_class t c) + ((addr - t.arena) / words_of c)

let hint_addr t ~cpu ~c = t.hints_base + (cpu * t.hint_stride) + c

let create machine =
  let cfg = Machine.config machine in
  let mem = Machine.memory machine in
  let line = cfg.Config.line_words in
  let round_line x = (x + line - 1) / line * line in
  let ncpus = cfg.Config.ncpus in
  let hints_base = round_line 1024 in
  let hint_stride = round_line nclasses in
  let tree_base = round_line (hints_base + (ncpus * hint_stride)) in
  let mem_end = cfg.Config.memory_words - cfg.Config.uncached_words in
  (* Largest power-of-two leaf count whose tree + arena fit. *)
  let rec pick d =
    if d < 8 then invalid_arg "Lockfree.Nbbuddy.create: memory too small"
    else
      let n = 1 lsl d in
      let arena =
        (tree_base + (2 * n) + chunk_words - 1) / chunk_words * chunk_words
      in
      if arena + (n * leaf_words) <= mem_end then (d, arena) else pick (d - 1)
  in
  let depth, arena = pick 24 in
  let n = 1 lsl depth in
  let t =
    {
      machine;
      stats = Stats.create ();
      depth;
      top_level = depth - 8;
      hints_base;
      hint_stride;
      tree_base;
      arena;
      arena_end = arena + (n * leaf_words);
    }
  in
  (* Boot host-side: zero the tree, spread each CPU's scan hints across
     its class row so concurrent CPUs don't fight over the same lines
     from the first allocation. *)
  for i = 1 to (2 * n) - 1 do
    Memory.set mem (node t i) 0
  done;
  for cpu = 0 to ncpus - 1 do
    for c = 0 to nclasses - 1 do
      let row_len = 1 lsl level_of_class t c in
      Memory.set mem (hint_addr t ~cpu ~c) (cpu * row_len / ncpus)
    done
  done;
  t

let class_of bytes =
  if bytes <= 0 then invalid_arg "Lockfree.Nbbuddy: bytes <= 0"
  else
    let rec go c =
      if c >= nclasses then None
      else if sizes_bytes.(c) >= bytes then Some c
      else go (c + 1)
    in
    go 0

(* Clear occupancy bits upward from [j] (whose subtree this op just made
   free, or tried to occupy and rolled back) towards the chunk level.
   At each step: only proceed while the child's subtree reads free;
   after clearing the bit, recheck and repair (help) if an allocation
   slipped into the window.  Used by both [free] and conflict rollback —
   a rolled-back claim keeps clearing upward past its conflict point so
   that a concurrent free which deferred to our transient marks is not
   left with a stale bit. *)
let unmark t j ~level =
  let st = t.stats in
  let j = ref j and lv = ref level in
  let stop = ref false in
  while (not !stop) && !lv > t.top_level do
    if Machine.read (node t !j) <> 0 then stop := true
    else begin
      let parent = !j lsr 1 in
      let bit = child_bit !j in
      st.Stats.mark_rmws <- st.Stats.mark_rmws + 1;
      ignore (Machine.fetch_and (node t parent) (lnot bit));
      if Machine.read (node t !j) <> 0 then begin
        (* someone occupied the subtree between the read and the clear:
           put the bit back on their behalf and stop *)
        st.Stats.helps <- st.Stats.helps + 1;
        st.Stats.mark_rmws <- st.Stats.mark_rmws + 1;
        ignore (Machine.fetch_or (node t parent) bit);
        stop := true
      end
      else begin
        j := parent;
        decr lv
      end
    end
  done

(* Mark the path from [i] up to the chunk level as occupied.  Returns
   false (after rolling the claim back) if an ancestor is FULL: the
   claim overlapped a live bigger block. *)
let mark t i ~level =
  let st = t.stats in
  let j = ref i and lv = ref level in
  let conflict = ref false in
  while (not !conflict) && !lv > t.top_level do
    let parent = !j lsr 1 in
    let bit = child_bit !j in
    st.Stats.mark_rmws <- st.Stats.mark_rmws + 1;
    let old = Machine.fetch_or (node t parent) bit in
    if old land full <> 0 then conflict := true
    else begin
      j := parent;
      decr lv
    end
  done;
  if !conflict then begin
    st.Stats.conflicts <- st.Stats.conflicts + 1;
    st.Stats.mark_rmws <- st.Stats.mark_rmws + 1;
    ignore (Machine.fetch_and (node t i) (lnot full));
    unmark t i ~level;
    false
  end
  else true

let alloc t ~bytes =
  match class_of bytes with
  | None -> 0
  | Some c ->
      Machine.work w_alloc;
      let st = t.stats in
      let level = level_of_class t c in
      let row_start = 1 lsl level in
      let row_len = 1 lsl level in
      let ha = hint_addr t ~cpu:(Machine.cpu_id ()) ~c in
      let h = Machine.read ha land (row_len - 1) in
      let result = ref 0 in
      let off = ref 0 in
      while !result = 0 && !off < row_len do
        let rel = (h + !off) land (row_len - 1) in
        let i = row_start + rel in
        if Machine.read (node t i) = 0 then begin
          st.Stats.cas_attempts <- st.Stats.cas_attempts + 1;
          let w = Machine.cas_val (node t i) ~expected:0 ~desired:full in
          if w <> 0 then st.Stats.cas_failures <- st.Stats.cas_failures + 1
          else if mark t i ~level then begin
            Machine.write ha rel;
            result := addr_of t i ~level
          end
        end;
        incr off
      done;
      !result

let free t ~addr ~bytes =
  match class_of bytes with
  | None -> invalid_arg "Lockfree.Nbbuddy.free: bad size"
  | Some c ->
      if addr < t.arena || addr >= t.arena_end then
        invalid_arg "Lockfree.Nbbuddy.free: bad address";
      Machine.work w_free;
      let st = t.stats in
      let level = level_of_class t c in
      let i = node_of t addr ~c in
      st.Stats.mark_rmws <- st.Stats.mark_rmws + 1;
      ignore (Machine.fetch_and (node t i) (lnot full));
      unmark t i ~level

let stats t = t.stats

(* --- host-side oracles (uncharged) --- *)

let arena_words t = t.arena_end - t.arena

let allocated_words_oracle t =
  let mem = Machine.memory t.machine in
  let total = ref 0 in
  for lv = t.top_level to t.depth do
    let w = leaf_words lsl (t.depth - lv) in
    for i = 1 lsl lv to (1 lsl (lv + 1)) - 1 do
      if Memory.get mem (node t i) land full <> 0 then total := !total + w
    done
  done;
  !total

let invariant_oracle t =
  let mem = Machine.memory t.machine in
  let status i = Memory.get mem (node t i) in
  (* subtree_full i lv: does the subtree rooted at i (level lv) contain
     a FULL node at an allocatable level? *)
  let rec subtree_full i lv =
    if lv > t.depth then false
    else if lv >= t.top_level && status i land full <> 0 then true
    else if lv = t.depth then false
    else subtree_full (2 * i) (lv + 1) || subtree_full ((2 * i) + 1) (lv + 1)
  in
  let err = ref None in
  let fail fmt = Printf.ksprintf (fun s -> if !err = None then err := Some s) fmt in
  (* 1. no FULL node below another FULL node (overlap freedom) *)
  let rec overlap i lv under =
    if lv <= t.depth then begin
      let f = lv >= t.top_level && status i land full <> 0 in
      if f && under then fail "node %d: FULL under a FULL ancestor" i;
      if lv < t.depth then begin
        overlap (2 * i) (lv + 1) (under || f);
        overlap ((2 * i) + 1) (lv + 1) (under || f)
      end
    end
  in
  for r = 1 lsl t.top_level to (1 lsl (t.top_level + 1)) - 1 do
    overlap r t.top_level false
  done;
  (* 2. occupancy bits match subtree contents at quiescence *)
  for lv = t.top_level to t.depth - 1 do
    for i = 1 lsl lv to (1 lsl (lv + 1)) - 1 do
      let s = status i in
      if s land full = 0 then begin
        let want_l = subtree_full (2 * i) (lv + 1) in
        let want_r = subtree_full ((2 * i) + 1) (lv + 1) in
        if s land 2 <> 0 <> want_l then
          fail "node %d (level %d): LEFT bit %b, subtree %b" i lv
            (s land 2 <> 0) want_l;
        if s land 4 <> 0 <> want_r then
          fail "node %d (level %d): RIGHT bit %b, subtree %b" i lv
            (s land 4 <> 0) want_r
      end
    done
  done;
  !err
