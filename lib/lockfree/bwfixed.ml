open Sim

(* Constant-time fixed-size allocation in the style of Blelloch & Wei
   (PAPERS.md): per-CPU claimed blocks over a CAS'd shared stack.

   Nine segregated size classes (16 B .. 4096 B), each owning an equal
   share of the arena.  Per CPU and class, a private stack of claimed
   blocks (a count word plus slots on the CPU's own cache lines) serves
   the hot path: alloc pops a slot, free pushes one — a handful of
   exclusive-line accesses, no shared word touched.  When the private
   stack runs dry the CPU pops one BATCH of k blocks from the class's
   shared Treiber stack with a single CAS; when it overfills it links k
   blocks into a batch and pushes it back with a single CAS.  Batching
   divides the shared-head CAS traffic by k — the moral equivalent of
   the paper's per-CPU freelists with target counts, rebuilt without
   the lock.

   The shared head word packs (tag, head-batch address); the tag is
   bumped on every successful CAS so a pop that raced with a concurrent
   pop/push of the same address cannot be fooled (ABA).  Blocks are at
   least 4 words, so word 0 chains blocks within a batch and word 1 of
   a batch's first block holds the next batch's address. *)

let nclasses = 9
let sizes_bytes = Array.init nclasses (fun c -> 16 lsl c)
let words_of c = sizes_bytes.(c) / 4
let batch = 8
let local_cap = 2 * batch

let w_alloc = 10
let w_free = 10

(* head word: (tag lsl tag_shift) lor addr.  Memory is well under
   2^26 words, and OCaml ints hold 63 bits, so the tag has 37 bits
   before wrapping — more CASes than any run performs.

   The per-CPU private count words carry the same (tag, value)
   packing, and every update of a non-empty stack's count word — the
   owner's pops and pushes included — commits with a tagged CAS.  That
   is the price of fixing per-CPU-visible exhaustion: a CPU that finds
   both its private stack and the shared stack empty may claim a
   victim's whole private stack with one CAS on the victim's count
   word (see [steal]), and the claim is only sound if the owner cannot
   blindly overwrite it — a plain owner read-modify-write spanning the
   thief's CAS would resurrect the stolen slots (double allocation).
   With CAS commits every successful update bumps the tag exactly
   once, so the count word's history is ABA-free: whoever's CAS lands
   owns the slots it certifies, and the loser retries against the
   witnessed value.  Slot words keep the single-owner write
   discipline: a thief reads the slots its witnessed count covers but
   never writes them; an owner only writes slots above the visible
   count (invisible to thieves) or below a count it has already
   claimed down from ([flush] commits the count word FIRST, then
   chains the now-private top blocks).  The only plain write left on a
   count word is [refill]'s commit, which runs while the visible count
   is 0 — and thieves skip empty stacks, so nothing can race it. *)
let tag_shift = 26
let addr_mask = (1 lsl tag_shift) - 1

let[@inline] count_of w = w land addr_mask
let[@inline] bump w v = (((w lsr tag_shift) + 1) lsl tag_shift) lor v

type t = {
  machine : Machine.t;
  stats : Stats.t;
  heads_base : int; (* per-class shared head, one line each *)
  head_stride : int;
  local_base : int; (* per-CPU, per-class private stacks *)
  local_stride : int; (* words per (cpu, class) *)
  class_arena : int array; (* per-class arena base *)
  class_blocks : int array; (* per-class block count *)
}

let head_addr t c = t.heads_base + (c * t.head_stride)

let local_addr t ~cpu ~c =
  t.local_base + (((cpu * nclasses) + c) * t.local_stride)

let create machine =
  let cfg = Machine.config machine in
  let mem = Machine.memory machine in
  let line = cfg.Config.line_words in
  let round_line x = (x + line - 1) / line * line in
  let ncpus = cfg.Config.ncpus in
  let heads_base = round_line 1024 in
  let head_stride = line in
  let local_base = round_line (heads_base + (nclasses * head_stride)) in
  let local_stride = round_line (1 + local_cap) in
  let arena_base =
    round_line (local_base + (ncpus * nclasses * local_stride))
  in
  let mem_end = cfg.Config.memory_words - cfg.Config.uncached_words in
  let span = mem_end - arena_base in
  if span < words_of (nclasses - 1) * nclasses then
    invalid_arg "Lockfree.Bwfixed.create: memory too small";
  let share = span / nclasses in
  let class_arena = Array.make nclasses 0 in
  let class_blocks = Array.make nclasses 0 in
  let cursor = ref arena_base in
  for c = 0 to nclasses - 1 do
    class_arena.(c) <- !cursor;
    class_blocks.(c) <- share / words_of c;
    cursor := !cursor + (class_blocks.(c) * words_of c)
  done;
  let t =
    {
      machine;
      stats = Stats.create ();
      heads_base;
      head_stride;
      local_base;
      local_stride;
      class_arena;
      class_blocks;
    }
  in
  (* Boot host-side: zero heads and local stacks, then chain every
     class's blocks into batches of [batch] and push them on the shared
     stack (newest batch first, so low addresses pop first). *)
  for c = 0 to nclasses - 1 do
    Memory.set mem (head_addr t c) 0
  done;
  for cpu = 0 to ncpus - 1 do
    for c = 0 to nclasses - 1 do
      Memory.set mem (local_addr t ~cpu ~c) 0
    done
  done;
  for c = 0 to nclasses - 1 do
    let w = words_of c in
    let nb = class_blocks.(c) in
    let head = ref 0 in
    (* walk blocks from the top so the stack ends with low addrs on top *)
    let i = ref (nb - 1) in
    while !i >= 0 do
      let first = !i - (!i mod batch) in
      (* batch covers blocks [first .. first + len - 1] *)
      let bh = class_arena.(c) + (first * w) in
      let last = min (first + batch - 1) (nb - 1) in
      for b = first to last do
        let a = class_arena.(c) + (b * w) in
        Memory.set mem a (if b < last then a + w else 0)
      done;
      Memory.set mem (bh + 1) (!head land addr_mask);
      head := bh;
      i := first - 1
    done;
    Memory.set mem (head_addr t c) !head
  done;
  t

let class_of bytes =
  if bytes <= 0 then invalid_arg "Lockfree.Bwfixed: bytes <= 0"
  else
    let rec go c =
      if c >= nclasses then None
      else if sizes_bytes.(c) >= bytes then Some c
      else go (c + 1)
    in
    go 0

(* Pop one batch from class [c]'s shared stack into this CPU's private
   slots; returns the new private count (0 on exhaustion).  [lw] is the
   current value of this CPU's count word (so the tag advances). *)
let refill t ~c ~la ~lw =
  let st = t.stats in
  let ha = head_addr t c in
  let got = ref (-1) in
  let old = ref (Machine.read ha) in
  while !got < 0 do
    let bh = !old land addr_mask in
    if bh = 0 then got := 0
    else begin
      let next = Machine.read (bh + 1) land addr_mask in
      let tag = (!old lsr tag_shift) + 1 in
      st.Stats.cas_attempts <- st.Stats.cas_attempts + 1;
      let w =
        Machine.cas_val ha ~expected:!old
          ~desired:((tag lsl tag_shift) lor next)
      in
      if w = !old then begin
        st.Stats.refills <- st.Stats.refills + 1;
        (* unpack the batch into the private slots *)
        let n = ref 0 in
        let b = ref bh in
        while !b <> 0 do
          Machine.write (la + 1 + !n) !b;
          incr n;
          b := Machine.read !b
        done;
        got := !n
      end
      else begin
        st.Stats.cas_failures <- st.Stats.cas_failures + 1;
        old := w
      end
    end
  done;
  Machine.write la (bump lw !got);
  !got

(* Push an already-linked chain of blocks (head [bh], terminated by 0
   in word 0 of the last block) onto class [c]'s shared stack. *)
let push_chain t ~c ~bh =
  let st = t.stats in
  let ha = head_addr t c in
  let done_ = ref false in
  let old = ref (Machine.read ha) in
  while not !done_ do
    Machine.write (bh + 1) (!old land addr_mask);
    let tag = (!old lsr tag_shift) + 1 in
    st.Stats.cas_attempts <- st.Stats.cas_attempts + 1;
    let w =
      Machine.cas_val ha ~expected:!old ~desired:((tag lsl tag_shift) lor bh)
    in
    if w = !old then begin
      st.Stats.flushes <- st.Stats.flushes + 1;
      done_ := true
    end
    else begin
      st.Stats.cas_failures <- st.Stats.cas_failures + 1;
      old := w
    end
  done

(* Link this CPU's top [batch] private blocks into a batch and push it
   on class [c]'s shared stack.  [lw] is the count word this free
   committed from; the count word must be claimed down BEFORE the
   blocks are chained, else a thief that witnessed the old count could
   chain the same blocks concurrently.  Returns false if a thief won
   the count word first (the caller retries its whole operation). *)
let flush t ~c ~la ~lw ~count =
  let st = t.stats in
  st.Stats.cas_attempts <- st.Stats.cas_attempts + 1;
  if Machine.cas_val la ~expected:lw ~desired:(bump lw (count - batch)) <> lw
  then begin
    st.Stats.cas_failures <- st.Stats.cas_failures + 1;
    false
  end
  else begin
    (* slots (count-batch, count] are now above the visible count:
       exclusively ours.  Chain them; the top slot is the batch head. *)
    let bh = Machine.read (la + count) in
    let prev = ref bh in
    for s = count - 1 downto count - batch + 1 do
      let a = Machine.read (la + s) in
      Machine.write !prev a;
      prev := a
    done;
    Machine.write !prev 0;
    push_chain t ~c ~bh;
    true
  end

(* Per-CPU-visible exhaustion: the shared stack is empty but other
   CPUs' private stacks may hold up to [local_cap] blocks each.  Scan
   the other CPUs; on finding a non-empty private stack, read its slot
   addresses, then claim the whole stack with one tagged CAS on the
   victim's count word (any owner operation in the window bumps the
   tag, failing the CAS and forfeiting nothing).  The stolen blocks are
   chained and flushed to the shared tagged stack — never written into
   the thief's slots directly — so the caller just refills normally.
   Returns true if a stack was flushed to the shared stack. *)
let steal t ~c ~me =
  let st = t.stats in
  let ncpus = (Machine.config t.machine).Config.ncpus in
  let stolen = ref false in
  let cpu = ref 0 in
  while (not !stolen) && !cpu < ncpus do
    if !cpu <> me then begin
      let va = local_addr t ~cpu:!cpu ~c in
      let w = Machine.read va in
      let n = count_of w in
      if n > 0 then begin
        let blocks = Array.make n 0 in
        for s = 1 to n do
          blocks.(s - 1) <- Machine.read (va + s)
        done;
        st.Stats.cas_attempts <- st.Stats.cas_attempts + 1;
        if Machine.cas_val va ~expected:w ~desired:(bump w 0) = w then begin
          for i = 0 to n - 2 do
            Machine.write blocks.(i) blocks.(i + 1)
          done;
          Machine.write blocks.(n - 1) 0;
          push_chain t ~c ~bh:blocks.(0);
          st.Stats.steals <- st.Stats.steals + 1;
          stolen := true
        end
        else st.Stats.cas_failures <- st.Stats.cas_failures + 1
      end
    end;
    incr cpu
  done;
  !stolen

let alloc t ~bytes =
  match class_of bytes with
  | None -> 0
  | Some c ->
      Machine.work w_alloc;
      let st = t.stats in
      let me = Machine.cpu_id () in
      let la = local_addr t ~cpu:me ~c in
      (* Pop with a tagged-CAS commit; a failure means a thief emptied
         our stack under us, so re-read and start over.  On exhaustion,
         alternate refill attempts with theft until the class is empty
         everywhere we can see (lock-free, not wait-free: a raced-away
         batch just means another CPU made progress). *)
      let rec obtain lw =
        let count = count_of lw in
        if count = 0 then begin
          let got = refill t ~c ~la ~lw in
          if got = 0 then
            if steal t ~c ~me then obtain (Machine.read la) else 0
          else pop (bump lw got) got
        end
        else pop lw count
      and pop lw count =
        let a = Machine.read (la + count) in
        st.Stats.cas_attempts <- st.Stats.cas_attempts + 1;
        let w = Machine.cas_val la ~expected:lw ~desired:(bump lw (count - 1)) in
        if w = lw then a
        else begin
          st.Stats.cas_failures <- st.Stats.cas_failures + 1;
          obtain w
        end
      in
      obtain (Machine.read la)

let free t ~addr ~bytes =
  match class_of bytes with
  | None -> invalid_arg "Lockfree.Bwfixed.free: bad size"
  | Some c ->
      Machine.work w_free;
      let st = t.stats in
      let la = local_addr t ~cpu:(Machine.cpu_id ()) ~c in
      (* Push with a tagged-CAS commit (the slot write lands above the
         visible count, so no thief can see it before the commit).  A
         failed commit means the stack was stolen; retry from the
         zeroed count word. *)
      let rec push () =
        let lw = Machine.read la in
        let count = count_of lw + 1 in
        Machine.write (la + count) addr;
        if count = local_cap then begin
          if not (flush t ~c ~la ~lw ~count) then push ()
        end
        else begin
          st.Stats.cas_attempts <- st.Stats.cas_attempts + 1;
          if Machine.cas_val la ~expected:lw ~desired:(bump lw count) <> lw
          then begin
            st.Stats.cas_failures <- st.Stats.cas_failures + 1;
            push ()
          end
        end
      in
      push ()

let stats t = t.stats

(* --- host-side oracles (uncharged) --- *)

let blocks_of_class t ~c = t.class_blocks.(c)

let free_blocks_oracle t ~c =
  let mem = Machine.memory t.machine in
  let ncpus = (Machine.config t.machine).Config.ncpus in
  let n = ref 0 in
  (* shared stack *)
  let bh = ref (Memory.get mem (head_addr t c) land addr_mask) in
  while !bh <> 0 do
    let b = ref !bh in
    while !b <> 0 do
      incr n;
      b := Memory.get mem !b
    done;
    bh := Memory.get mem (!bh + 1) land addr_mask
  done;
  (* private stacks (count words are tagged) *)
  for cpu = 0 to ncpus - 1 do
    n := !n + (Memory.get mem (local_addr t ~cpu ~c) land addr_mask)
  done;
  !n

let total_free_words_oracle t =
  let total = ref 0 in
  for c = 0 to nclasses - 1 do
    total := !total + (free_blocks_oracle t ~c * words_of c)
  done;
  !total
