open Sim

(* Page-descriptor field offsets (within the 8-word descriptor). *)
let pd_state = 0
let pd_arg = 1
let pd_sizeidx = 2
let pd_nfree = 3
let pd_blkhead = 4
let pd_next = 5
let pd_prev = 6

(* Descriptor states.  A zeroed descriptor reads as [st_free_mid], which
   is exactly right: interior pages of free spans are never consulted. *)
let st_free_mid = 0
let st_free_head = 1
let st_free_tail = 2
let st_split = 3
let st_span_alloc = 4
let st_span_mid = 5

(* vmctl control-word offsets (after the lock line).  The skip must
   track the configured line size: with a hardcoded 8 a narrower line
   (e.g. [--geometry line=4]) shrinks the 2-line vmctl region and these
   words would land on the dope vector, corrupting the first vmblk's
   dope entry.  At the default 8-word line this is byte-for-byte the
   historical layout. *)
let ctl_span_head (ly : Layout.t) = ly.Layout.vmctl_base + ly.Layout.line_words
let ctl_nvmblks (ly : Layout.t) = ctl_span_head ly + 1

let boot_init (ctx : Ctx.t) =
  let mem = Ctx.memory ctx in
  let ly = ctx.Ctx.layout in
  Memory.set mem (ctl_span_head ly) 0;
  Memory.set mem (ctl_nvmblks ly) 0;
  Memory.fill mem ly.Layout.dope_base ~len:ly.Layout.dope_len 0

(* --- free-span list (doubly linked through pd_next/pd_prev) --- *)

let span_insert ly pd =
  let head = ctl_span_head ly in
  let old = Machine.read head in
  Machine.write (pd + pd_next) old;
  Machine.write (pd + pd_prev) 0;
  if old <> 0 then Machine.write (old + pd_prev) pd;
  Machine.write head pd

let span_remove ly pd =
  let head = ctl_span_head ly in
  let prev = Machine.read (pd + pd_prev) in
  let next = Machine.read (pd + pd_next) in
  if prev = 0 then Machine.write head next
  else Machine.write (prev + pd_next) next;
  if next <> 0 then Machine.write (next + pd_prev) prev

(* Mark the descriptors of a free span: head carries the length, tail
   points back at the head; a one-page span is its own tail and stays in
   state [st_free_head]. *)
let mark_free_span ly ~head_pd ~len =
  Machine.write (head_pd + pd_state) st_free_head;
  Machine.write (head_pd + pd_arg) len;
  if len > 1 then begin
    let tail_pd = head_pd + ((len - 1) * ly.Layout.pd_words) in
    Machine.write (tail_pd + pd_state) st_free_tail;
    Machine.write (tail_pd + pd_arg) head_pd
  end

(* Grow the arena by one vmblk: reserve the next vmblk's virtual
   address range, publish it in the dope vector, and enter its data
   pages as a single free span.  Called with the vmblk lock held.
   Returns false when the virtual arena is exhausted. *)
let grow (ctx : Ctx.t) =
  let ly = ctx.Ctx.layout in
  let n = Machine.read (ctl_nvmblks ly) in
  if n >= ly.Layout.arena_vmblks then false
  else begin
    Machine.work 50 (* VM bookkeeping for a fresh address range *);
    let vb = Layout.vmblk_addr ly ~index:n in
    Machine.write (Layout.dope_entry ly vb) vb;
    let head_pd = Layout.pd_addr ly ~vmblk:vb ~data_page:0 in
    mark_free_span ly ~head_pd ~len:ly.Layout.data_pages;
    span_insert ly head_pd;
    Machine.write (ctl_nvmblks ly) (n + 1);
    true
  end

(* First-fit search of the free-span list.  Returns the head descriptor
   of a span with at least [npages] pages, or 0. *)
let find_span ly ~npages =
  let rec go pd =
    if pd = 0 then 0
    else if Machine.read (pd + pd_arg) >= npages then pd
    else go (Machine.read (pd + pd_next))
  in
  go (Machine.read (ctl_span_head ly))

let mark_allocated_span ly ~head_pd ~npages =
  Machine.write (head_pd + pd_state) st_span_alloc;
  Machine.write (head_pd + pd_arg) npages;
  for i = 1 to npages - 1 do
    Machine.write (head_pd + (i * ly.Layout.pd_words) + pd_state) st_span_mid
  done

(* Allocate [npages] from the front of span [pd]; requires the vmblk
   lock.  Fixes up the remainder (if any) and re-inserts it. *)
let carve ly pd ~npages =
  let len = Machine.read (pd + pd_arg) in
  span_remove ly pd;
  if len > npages then begin
    let rest_pd = pd + (npages * ly.Layout.pd_words) in
    let rest_len = len - npages in
    mark_free_span ly ~head_pd:rest_pd ~len:rest_len;
    span_insert ly rest_pd
  end;
  mark_allocated_span ly ~head_pd:pd ~npages

(* Merge a just-freed span (already on the list, marked free) with its
   free neighbours.  Shared by [free_pages] and the grant-failure path
   of [alloc_pages].  Boundary-tag check: the page before ours is the
   last page of a free span iff its descriptor reads [st_free_tail], or
   [st_free_head] with length 1. *)
let coalesce_back (ly : Layout.t) head_pd len =
  let pdw = ly.Layout.pd_words in
  let vb = Layout.vmblk_of_addr ly head_pd in
  let dp_of pd = (pd - vb) / pdw in
  (* Merge with a free span ending just before ours. *)
  let head_pd, len =
    if dp_of head_pd = 0 then (head_pd, len)
    else begin
      let before = head_pd - pdw in
      let st = Machine.read (before + pd_state) in
      let pred_head =
        if st = st_free_tail then Machine.read (before + pd_arg)
        else if st = st_free_head && Machine.read (before + pd_arg) = 1 then
          before
        else 0
      in
      if pred_head = 0 then (head_pd, len)
      else begin
        let pred_len = Machine.read (pred_head + pd_arg) in
        span_remove ly head_pd;
        span_remove ly pred_head;
        (* Old boundary descriptors become interior. *)
        Machine.write (before + pd_state) st_free_mid;
        Machine.write (head_pd + pd_state) st_free_mid;
        mark_free_span ly ~head_pd:pred_head ~len:(pred_len + len);
        span_insert ly pred_head;
        (pred_head, pred_len + len)
      end
    end
  in
  (* Merge with a free span starting just after ours. *)
  if dp_of head_pd + len < ly.Layout.data_pages then begin
    let after = head_pd + (len * pdw) in
    if Machine.read (after + pd_state) = st_free_head then begin
      let succ_len = Machine.read (after + pd_arg) in
      span_remove ly after;
      span_remove ly head_pd;
      (* Old boundary descriptors become interior. *)
      Machine.write (after + pd_state) st_free_mid;
      if len > 1 then
        Machine.write (head_pd + ((len - 1) * pdw) + pd_state) st_free_mid;
      mark_free_span ly ~head_pd ~len:(len + succ_len);
      span_insert ly head_pd
    end
  end

let alloc_pages (ctx : Ctx.t) ~npages =
  assert (npages >= 1);
  let ly = ctx.Ctx.layout in
  if npages > ly.Layout.data_pages then 0
  else
    Sim.Spinlock.with_lock ctx.Ctx.vlock (fun () ->
        let rec locate () =
          match find_span ly ~npages with
          | 0 -> if grow ctx then locate () else 0
          | pd -> pd
        in
        let pd = locate () in
        if pd = 0 then 0
        else begin
          (* Back the span with physical pages; on partial failure undo
             the grants and put the span back. *)
          let rec back i =
            if i >= npages then true
            else if Vmsys.grant ctx.Ctx.vmsys then back (i + 1)
            else begin
              for _ = 1 to i do
                Vmsys.reclaim ctx.Ctx.vmsys
              done;
              false
            end
          in
          carve ly pd ~npages;
          if back 0 then begin
            let page = Layout.page_of_pd ly ~pd in
            if Trace.on () then
              Trace.emit (Flightrec.Event.Vmblk_carve { npages; page });
            page
          end
          else begin
            (* Out of physical memory: release the span again (it will
               coalesce with whatever we just split it from).
               [mark_allocated_span] put the interior descriptors in
               [st_span_mid]; they must go back to [st_free_mid] or a
               later neighbour free would read a stale span interior
               where the boundary-tag encoding promises free-mid. *)
            for i = 1 to npages - 1 do
              Machine.write (pd + (i * ly.Layout.pd_words) + pd_state)
                st_free_mid
            done;
            mark_free_span ly ~head_pd:pd ~len:npages;
            span_insert ly pd;
            coalesce_back ly pd npages;
            0
          end
        end)

let free_pages (ctx : Ctx.t) ~page ~npages =
  assert (npages >= 1);
  let ly = ctx.Ctx.layout in
  Sim.Spinlock.with_lock ctx.Ctx.vlock (fun () ->
      for _ = 1 to npages do
        Vmsys.reclaim ctx.Ctx.vmsys
      done;
      let head_pd = Layout.pd_of_page ly ~page_addr:page in
      (* [mark_allocated_span] left the interior descriptors in
         [st_span_mid]; the boundary-tag tiling requires free-span
         interiors to read [st_free_mid] (a later carve of this span
         relies on zeroed interiors). *)
      for i = 1 to npages - 1 do
        Machine.write (head_pd + (i * ly.Layout.pd_words) + pd_state)
          st_free_mid
      done;
      mark_free_span ly ~head_pd ~len:npages;
      span_insert ly head_pd;
      coalesce_back ly head_pd npages;
      if Trace.on () then
        Trace.emit (Flightrec.Event.Vmblk_coalesce { npages; page }))

let pd_of_block (ctx : Ctx.t) a =
  let ly = ctx.Ctx.layout in
  let vb = Machine.read (Layout.dope_entry ly a) in
  assert (vb <> 0);
  let page_index = (a - vb) lsr ly.Layout.page_shift in
  let dp = page_index - ly.Layout.hdr_pages in
  assert (dp >= 0 && dp < ly.Layout.data_pages);
  Layout.pd_addr ly ~vmblk:vb ~data_page:dp

let pages_of_bytes (ly : Layout.t) bytes =
  let page_bytes = ly.Layout.page_words * Params.bytes_per_word in
  (bytes + page_bytes - 1) / page_bytes

let alloc_large (ctx : Ctx.t) ~bytes =
  let npages = pages_of_bytes ctx.Ctx.layout bytes in
  Machine.work 20 (* request validation and span-size arithmetic *);
  let a = alloc_pages ctx ~npages in
  if a <> 0 then ctx.Ctx.stats.Kstats.large_allocs <- ctx.Ctx.stats.Kstats.large_allocs + 1;
  if Trace.on () then
    Trace.emit (Flightrec.Event.Large_alloc { npages; ok = a <> 0 });
  a

let free_large (ctx : Ctx.t) ~addr ~bytes =
  let ly = ctx.Ctx.layout in
  let npages = pages_of_bytes ly bytes in
  Machine.work 20;
  let pd = pd_of_block ctx addr in
  assert (Machine.read (pd + pd_state) = st_span_alloc);
  assert (Machine.read (pd + pd_arg) = npages);
  free_pages ctx ~page:addr ~npages;
  ctx.Ctx.stats.Kstats.large_frees <- ctx.Ctx.stats.Kstats.large_frees + 1;
  if Trace.on () then Trace.emit (Flightrec.Event.Large_free { npages })

(* --- host-side oracles --- *)

let free_span_lengths_oracle (ctx : Ctx.t) =
  let mem = Ctx.memory ctx in
  let ly = ctx.Ctx.layout in
  let rec go pd acc =
    if pd = 0 then List.rev acc
    else
      go (Memory.get mem (pd + pd_next)) (Memory.get mem (pd + pd_arg) :: acc)
  in
  go (Memory.get mem (ctl_span_head ly)) []

let nvmblks_oracle (ctx : Ctx.t) =
  Memory.get (Ctx.memory ctx) (ctl_nvmblks ctx.Ctx.layout)

let free_spans_oracle (ctx : Ctx.t) =
  let mem = Ctx.memory ctx in
  let ly = ctx.Ctx.layout in
  let cap = Layout.total_data_pages ly + 1 in
  let rec go pd n acc =
    if pd = 0 then List.rev acc
    else if n > cap then
      invalid_arg "Kma.Vmblk.free_spans_oracle: span list exceeds the arena"
    else
      go
        (Memory.get mem (pd + pd_next))
        (n + 1)
        ((pd, Memory.get mem (pd + pd_arg)) :: acc)
  in
  go (Memory.get mem (ctl_span_head ly)) 0 []
