(** Per-CPU caching layer (layer 1) — the paper's fast path, whose
    split-freelist state machine is the paper's Figure 2 (walked
    through, state by state, in [test/kma/test_percpu.ml]).

    One cache per (CPU, size class), holding a split freelist: blocks are
    allocated from and freed to [main]; [aux] holds a full target-sized
    list in reserve.  CPUs never touch other CPUs' caches, so the only
    protection needed is disabling interrupts — no atomic operations, no
    shared cache lines on the fast path.

    Movement is always in target-sized groups:
    - freeing onto a full [main] first flushes [aux] (if any) to the
      global layer as one list, then slides [main] into [aux];
    - allocating from an empty [main] first slides [aux] into [main],
      and only when both are empty fetches one list from the global
      layer.

    A cache therefore holds at most [2 * target] blocks and visits the
    global layer at most once per [target] operations.

    The fast paths are instruction-calibrated: with a warm cache an
    allocation or free retires exactly 13 simulated instructions
    (experiment E2; the paper's cookie-interface count).

    Invariants: a CPU's cache state is touched only by that CPU and only
    with interrupts disabled (the paper's Section 3.2 discipline — no
    locks, no atomics on the fast path); dynamically enforced by the
    {!Lockcheck} probe on every entry. *)

exception Corruption of string
(** Raised by the debug kernel ([Params.debug]) on a detected
    use-after-free write or double free. *)

val poison : int
(** The debug-kernel poison pattern written over words 3+ of freed
    blocks. *)

val o_main_head : int
val o_main_cnt : int
val o_aux_head : int
val o_aux_cnt : int
val o_target : int

val boot_init : Ctx.t -> unit

val alloc : Ctx.t -> si:int -> int
(** [alloc ctx ~si] allocates a block of class [si] on the current
    simulated CPU; 0 when memory is exhausted. *)

val free : Ctx.t -> si:int -> int -> unit
(** [free ctx ~si a] frees block [a] of class [si] on the current
    simulated CPU. *)

val drain : Ctx.t -> si:int -> unit
(** [drain ctx ~si] flushes the current CPU's cache for [si] back to the
    global layer (administrative operation: CPU offline, low-memory
    shakeout, or the cyclic workload's phase change). *)

val drain_aux : Ctx.t -> si:int -> unit
(** [drain_aux ctx ~si] flushes only the reserve ([aux]) list, keeping
    the hot [main] list — the light half of a [kmem_reap] pass (see
    {!Pressure}). *)

val lockcheck_probe : owner:int -> unit
(** [lockcheck_probe ~owner] runs the {!Lockcheck} interrupt-discipline
    check for an access to CPU [owner]'s cache state (no-op while the
    checker is off).  Called internally on every entry; exported so
    seeded-violation tests can drive the probe directly. *)

(** {1 Host-side oracles} *)

val cached_blocks_oracle : Ctx.t -> cpu:int -> si:int -> int
(** Blocks currently held by a per-CPU cache (main + aux). *)

val cache_oracle : Ctx.t -> cpu:int -> si:int -> (int * int) * (int * int) * int
(** Raw cache words [((main_head, main_cnt), (aux_head, aux_cnt),
    target)] — the heapcheck checker walks the chains itself and
    compares against the count words. *)
