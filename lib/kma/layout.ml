type t = {
  params : Params.t;
  ncpus : int;
  nnodes : int;
  nsizes : int;
  line_words : int;
  page_words : int;
  page_shift : int;
  size_table_base : int;
  size_table_len : int;
  size_table_gran_shift : int;
  percpu_base : int;
  pcc_words : int;
  global_base : int;
  gbl_words : int;
  pagepool_bases : int array;
  vmctl_base : int;
  dope_base : int;
  dope_len : int;
  vmblk_base : int;
  vmblk_words : int;
  vmblk_shift : int;
  vmblk_pages : int;
  hdr_pages : int;
  data_pages : int;
  arena_vmblks : int;
  pd_words : int;
  control_words : int;
}

let log2 n =
  let rec go acc n = if n <= 1 then acc else go (acc + 1) (n lsr 1) in
  go 0 n

let round_up v align = (v + align - 1) / align * align

let make (cfg : Sim.Config.t) (p : Params.t) =
  Params.validate p;
  let nsizes = Params.nsizes p in
  let page_words = Params.page_words p in
  let page_shift = log2 page_words in
  let line = cfg.Sim.Config.line_words in
  let pd_words = 8 in
  let pcc_words = round_up 16 line in
  let gbl_words = round_up 24 line in
  let cursor = ref 1024 in
  let take words =
    let base = !cursor in
    cursor := base + words;
    base
  in
  let align_to a = cursor := round_up !cursor a in
  (* Size-to-index table: one entry per granule of the smallest size. *)
  let gran = p.Params.sizes_bytes.(0) in
  let size_table_gran_shift = log2 gran in
  let max_bytes = p.Params.sizes_bytes.(nsizes - 1) in
  let size_table_len = max_bytes / gran in
  align_to line;
  let size_table_base = take size_table_len in
  (* Per-CPU caches: cache-line isolated per (cpu, size). *)
  align_to line;
  let percpu_base = take (cfg.Sim.Config.ncpus * nsizes * pcc_words) in
  (* Global layer records: one per (node, size).  The flat machine has
     one node, so its layout is unchanged; on a NUMA machine the extra
     records exist whether or not the per-node global layer is enabled
     (the flat layer simply only ever touches node 0's). *)
  align_to line;
  let global_base = take (cfg.Sim.Config.nodes * nsizes * gbl_words) in
  (* Coalesce-to-page radix structures: lock line, minhint, then one list
     head per possible free count (1 .. blocks_per_page). *)
  let pagepool_bases =
    Array.init nsizes (fun si ->
        align_to line;
        let bpp = Params.blocks_per_page p si in
        take (round_up (line + 1 + bpp) line))
  in
  (* vmblk-layer control. *)
  align_to line;
  let vmctl_base = take (2 * line) in
  (* Dope vector: covers the entire address space. *)
  let vmblk_pages = p.Params.vmblk_pages in
  let vmblk_words = vmblk_pages * page_words in
  let vmblk_shift = page_shift + log2 vmblk_pages in
  let dope_len = (cfg.Sim.Config.memory_words + vmblk_words - 1) lsr vmblk_shift in
  align_to line;
  let dope_base = take dope_len in
  let control_words = !cursor in
  (* Arena: vmblk-aligned so dope indexing is a shift. *)
  let vmblk_base = round_up control_words vmblk_words in
  let arena_vmblks = (cfg.Sim.Config.memory_words - vmblk_base) / vmblk_words in
  if arena_vmblks < 1 then
    invalid_arg
      (Printf.sprintf
         "Kma.Layout: memory too small (%d words; control ends at %d, need \
          one %d-word vmblk)"
         cfg.Sim.Config.memory_words control_words vmblk_words);
  (* Page-descriptor header: descriptors for data pages live at the start
     of each vmblk. *)
  let hdr_pages =
    (vmblk_pages * pd_words + page_words - 1) / page_words
  in
  let data_pages = vmblk_pages - hdr_pages in
  if data_pages < 1 then invalid_arg "Kma.Layout: vmblk too small for header";
  {
    params = p;
    ncpus = cfg.Sim.Config.ncpus;
    nnodes = cfg.Sim.Config.nodes;
    nsizes;
    line_words = line;
    page_words;
    page_shift;
    size_table_base;
    size_table_len;
    size_table_gran_shift;
    percpu_base;
    pcc_words;
    global_base;
    gbl_words;
    pagepool_bases;
    vmctl_base;
    dope_base;
    dope_len;
    vmblk_base;
    vmblk_words;
    vmblk_shift;
    vmblk_pages;
    hdr_pages;
    data_pages;
    arena_vmblks;
    pd_words;
    control_words;
  }

let pcc_addr t ~cpu ~si =
  t.percpu_base + (((cpu * t.nsizes) + si) * t.pcc_words)

let gbl_node_addr t ~node ~si =
  t.global_base + (((node * t.nsizes) + si) * t.gbl_words)

let gbl_addr t ~si = gbl_node_addr t ~node:0 ~si
let pagepool_addr t ~si = t.pagepool_bases.(si)
let vmblk_addr t ~index = t.vmblk_base + (index * t.vmblk_words)
let vmblk_of_addr t a = a land lnot (t.vmblk_words - 1)
let dope_entry t a = t.dope_base + (a lsr t.vmblk_shift)
let pd_addr t ~vmblk ~data_page = vmblk + (data_page * t.pd_words)

let pd_of_page t ~page_addr =
  let vb = vmblk_of_addr t page_addr in
  let page_index = (page_addr - vb) lsr t.page_shift in
  pd_addr t ~vmblk:vb ~data_page:(page_index - t.hdr_pages)

let page_of_pd t ~pd =
  let vb = vmblk_of_addr t pd in
  let d = (pd - vb) / t.pd_words in
  vb + ((t.hdr_pages + d) lsl t.page_shift)

let data_page_addr t ~vmblk ~data_page =
  vmblk + ((t.hdr_pages + data_page) lsl t.page_shift)

let total_data_pages t = t.arena_vmblks * t.data_pages
