(** Global layer (layer 2) — the middle layer of the paper's Design
    section, whose list-of-lists hand-off gives the 1/target,
    1/gbltarget miss-rate bounds checked in experiment E6.

    One instance per (node, size class), each protected by its own
    spinlock.  Its only purpose is to let blocks allocated on one CPU
    and freed on another flow back cheaply, without the coalescing
    layer's overhead.  On a flat machine (or with [Ctx.numa_global]
    false) only node 0's instances exist in practice and the layer
    behaves exactly as the paper's single global layer; with
    [Ctx.numa_global] set, each CPU drains to and fills from its own
    node's pool, so the per-size lock and its data line ping-pong only
    within a node instead of across the whole machine.

    Free blocks are kept as a list of *target-sized lists* ([gblfree]):
    moving a whole per-CPU cache half costs O(1) linked-list operations.
    Odd-sized returns (low-memory operation, explicit per-CPU cache
    drains) go onto the *bucket list*, which regroups blocks into
    target-sized lists.

    [gbltarget] is interpreted in units of lists: the layer holds at most
    [2 * gbltarget] lists, drains [gbltarget] lists to the
    coalesce-to-page layer when it fills, and refills by up to
    [gbltarget] lists when it empties.  Consecutive coalesce-layer
    interactions are therefore at least [gbltarget] list operations
    apart, giving the paper's 1/gbltarget worst-case miss rate (6.7% for
    gbltarget = 15).

    Invariants: all list state is protected by the per-size [gbl] lock
    (class [kma.gbl]), the outermost lock of the allocator's
    gbl -> pagepool -> vmblk order; a refill/drain may therefore reach
    the VM system with it held (registered [vm_safe], see DESIGN.md
    "Concurrency invariants"). *)

val boot_init : Ctx.t -> unit

val get_list : Ctx.t -> si:int -> int * int
(** [get_list ctx ~si] hands out one block list (head, count), refilling
    from the coalesce-to-page layer when empty.  Returns [(0, 0)] when
    memory is exhausted.  Count is normally [target] but may be short
    when memory runs low (the last blocks are still handed out: any CPU
    can allocate the last buffer). *)

val put_list : Ctx.t -> si:int -> head:int -> count:int -> unit
(** [put_list ctx ~si ~head ~count] accepts a full target-sized list
    from a per-CPU cache flush, draining to the coalesce-to-page layer
    on overflow. *)

val put_partial : Ctx.t -> si:int -> head:int -> count:int -> unit
(** [put_partial ctx ~si ~head ~count] accepts an odd-sized chain onto
    the bucket list and regroups full lists out of it. *)

val drain : Ctx.t -> si:int -> unit
(** [drain ctx ~si] pushes up to [gbltarget] lists from the calling
    CPU's node down to the coalesce-to-page layer, stopping at the
    first empty pop (overflow hysteresis).  Exposed for the
    critical-section regression test; normal callers reach it through
    {!put_list} / {!put_partial} overflow.  Caller must hold that
    node's [gbl] lock for the class. *)

val trim : Ctx.t -> si:int -> keep:int -> unit
(** [trim ctx ~si ~keep] pushes lists down to the coalesce-to-page
    layer until at most [keep] remain per node (the buckets are emptied
    too when [keep = 0]), letting fully-free pages return to the VM
    system — the global-layer half of a {!Pressure} reap pass. *)

val drain_all : Ctx.t -> si:int -> unit
(** [drain_all ctx ~si] pushes everything the global layer holds — on
    every node — down to the coalesce-to-page layer (administrative
    shakeout; see [Kmem.reap_global]). *)

(** {1 Host-side oracles}

    All aggregate across nodes except {!bucket_head_oracle} (node 0)
    and the per-node {!buckets_oracle}. *)

val nlists_oracle : Ctx.t -> si:int -> int
val bucket_count_oracle : Ctx.t -> si:int -> int
val total_blocks_oracle : Ctx.t -> si:int -> int
(** Blocks held by the global layer (lists plus bucket, all nodes). *)

val lists_oracle : Ctx.t -> si:int -> (int * int) list
(** Every list on [gblfree] as [(head, count-word)] pairs, node by node
    in list order.  Count words are read back raw (not recomputed), so
    a checker can compare them against actual chain lengths. *)

val bucket_head_oracle : Ctx.t -> si:int -> int
(** Head block of node 0's bucket chain (0 when empty) — the whole
    bucket on a flat machine. *)

val buckets_oracle : Ctx.t -> si:int -> (int * int) list
(** Per-node [(bucket head, bucket count-word)] pairs, node order —
    lets a checker walk each node's bucket chain separately. *)
