open Sim

exception Corruption of string

let poison = Params.debug_poison

let o_main_head = 0
let o_main_cnt = 1
let o_aux_head = 2
let o_aux_cnt = 3
let o_target = 4

(* Straight-line instruction charges calibrating the warm fast paths to
   the paper's 13-instruction cookie interface (7 memory/interrupt
   operations + 6 ALU/branch instructions for alloc; 8 + 5 for free). *)
let w_alloc_fast = 6
let w_free_fast = 5
let w_slow_branch = 8

let boot_init (ctx : Ctx.t) =
  let mem = Ctx.memory ctx in
  let ly = ctx.Ctx.layout in
  for cpu = 0 to ly.Layout.ncpus - 1 do
    for si = 0 to ly.Layout.nsizes - 1 do
      let pcc = Layout.pcc_addr ly ~cpu ~si in
      Memory.set mem (pcc + o_main_head) 0;
      Memory.set mem (pcc + o_main_cnt) 0;
      Memory.set mem (pcc + o_aux_head) 0;
      Memory.set mem (pcc + o_aux_cnt) 0;
      Memory.set mem (pcc + o_target) ly.Layout.params.Params.targets.(si)
    done
  done

(* Interrupt-discipline probe for the lockcheck validator: simulated
   code is about to touch the per-CPU cache state owned by CPU [owner].
   Host-side only — [Machine.running] / [running_irq_off] perform no
   operation, so the probe adds no yield point and simulated cycles are
   bit-identical with the checker on or off. *)
let lockcheck_probe ~owner =
  if Lockcheck.on () then
    match Machine.running () with
    | Some (cpu, time) ->
        Lockcheck.percpu_access ~cpu ~time ~owner
          ~irq_off:(Machine.running_irq_off ())
    | None -> ()

(* Propagate an adaptively changed [target] into this CPU's cache
   word.  Called only from the slow paths, with interrupts disabled, by
   the owning CPU — the safe points at which the pressure subsystem may
   change layer-1 bounds, so layer 1 stays lock-free and the warm fast
   paths keep their calibrated instruction counts.  The host-side
   shadow makes the check free when nothing changed, and the whole
   thing is a single host branch while pressure is disabled. *)
let sync_target (ctx : Ctx.t) ~cpu ~si pcc =
  let pr = ctx.Ctx.pressure in
  if pr.Ctx.enabled then begin
    let idx = (cpu * ctx.Ctx.layout.Layout.nsizes) + si in
    let want = pr.Ctx.desired_targets.(si) in
    if pr.Ctx.pcc_targets.(idx) <> want then begin
      pr.Ctx.pcc_targets.(idx) <- want;
      Machine.write (pcc + o_target) want
    end
  end

(* The target the current CPU's cache is operating under: the adaptive
   value once pressure is enabled, the boot-time constant otherwise
   (host-side either way, like any [Params] read). *)
let live_target (ctx : Ctx.t) ~si =
  let pr = ctx.Ctx.pressure in
  if pr.Ctx.enabled then pr.Ctx.desired_targets.(si)
  else ctx.Ctx.layout.Layout.params.Params.targets.(si)

(* Interrupts are disabled throughout; returns 0 on exhaustion.  The
   second component is the layer of satisfaction for the flight
   recorder: [Percpu] when the block came off main or aux (still
   CPU-local), [Global] when a list transfer was needed. *)
let rec alloc_disabled (ctx : Ctx.t) st ~cpu ~si pcc =
  let h = Machine.read (pcc + o_main_head) in
  if h <> 0 then begin
    Machine.write (pcc + o_main_head) (Machine.read (h + Freelist.link));
    Machine.write (pcc + o_main_cnt) (Machine.read (pcc + o_main_cnt) - 1);
    Machine.work w_alloc_fast;
    (h, Flightrec.Event.Percpu)
  end
  else begin
    Machine.work w_slow_branch;
    sync_target ctx ~cpu ~si pcc;
    let ah = Machine.read (pcc + o_aux_head) in
    if ah <> 0 then begin
      (* Slide aux into main; still purely CPU-local. *)
      st.Kstats.alloc_aux_refills <- st.Kstats.alloc_aux_refills + 1;
      Machine.write (pcc + o_main_head) ah;
      Machine.write (pcc + o_main_cnt) (Machine.read (pcc + o_aux_cnt));
      Machine.write (pcc + o_aux_head) 0;
      Machine.write (pcc + o_aux_cnt) 0;
      alloc_disabled ctx st ~cpu ~si pcc
    end
    else begin
      st.Kstats.alloc_misses <- st.Kstats.alloc_misses + 1;
      let head, count = Global.get_list ctx ~si in
      if count = 0 then (0, Flightrec.Event.Global)
      else begin
        (* First block satisfies the request; the rest become main. *)
        Machine.write (pcc + o_main_head)
          (Machine.read (head + Freelist.link));
        Machine.write (pcc + o_main_cnt) (count - 1);
        (head, Flightrec.Event.Global)
      end
    end
  end

(* Debug checks: a freed block must still carry its poison when it is
   handed out again (use-after-free write detector), and a block being
   freed must not already be fully poisoned (double-free detector). *)
let check_poison_on_alloc (ctx : Ctx.t) ~si a =
  let words = Params.size_words (Ctx.params ctx) si in
  let rec go w =
    if w < words then
      if Machine.read (a + w) <> poison then
        raise
          (Corruption
             (Printf.sprintf
                "use-after-free write in block %d (class %d, word %d)" a si
                w))
      else go (w + 1)
  in
  go 3;
  (* Break the poison so the double-free heuristic cannot fire on the
     block's first legitimate free (kernels write an "allocated"
     pattern for the same reason). *)
  if words > 3 then Machine.write (a + 3) 0x0A110CED

let apply_poison_on_free (ctx : Ctx.t) ~si a =
  let words = Params.size_words (Ctx.params ctx) si in
  if words > 3 then begin
    let rec all_poisoned w =
      w >= words
      || (Machine.read (a + w) = poison && all_poisoned (w + 1))
    in
    if all_poisoned 3 then
      raise
        (Corruption
           (Printf.sprintf "probable double free of block %d (class %d)" a
              si));
    for w = 3 to words - 1 do
      Machine.write (a + w) poison
    done
  end

let alloc (ctx : Ctx.t) ~si =
  let cpu = Machine.cpu_id () in
  let pcc = Layout.pcc_addr ctx.Ctx.layout ~cpu ~si in
  let st = Kstats.size ctx.Ctx.stats si in
  st.Kstats.allocs <- st.Kstats.allocs + 1;
  Machine.irq_disable ();
  lockcheck_probe ~owner:cpu;
  let a, layer = alloc_disabled ctx st ~cpu ~si pcc in
  Machine.irq_enable ();
  if Trace.on () then
    Trace.emit
      (if a = 0 then Flightrec.Event.Alloc_fail { si }
       else Flightrec.Event.Alloc { si; layer });
  if a <> 0 && (Ctx.params ctx).Params.debug then
    check_poison_on_alloc ctx ~si a;
  a

let free (ctx : Ctx.t) ~si a =
  assert (a <> 0);
  if (Ctx.params ctx).Params.debug then apply_poison_on_free ctx ~si a;
  let cpu = Machine.cpu_id () in
  let pcc = Layout.pcc_addr ctx.Ctx.layout ~cpu ~si in
  let st = Kstats.size ctx.Ctx.stats si in
  st.Kstats.frees <- st.Kstats.frees + 1;
  Machine.irq_disable ();
  lockcheck_probe ~owner:cpu;
  let layer = ref Flightrec.Event.Percpu in
  let cnt = Machine.read (pcc + o_main_cnt) in
  let tgt = Machine.read (pcc + o_target) in
  if cnt < tgt then begin
    Machine.write (a + Freelist.link) (Machine.read (pcc + o_main_head));
    Machine.write (pcc + o_main_head) a;
    Machine.write (pcc + o_main_cnt) (cnt + 1);
    Machine.work w_free_fast
  end
  else begin
    Machine.work w_slow_branch;
    sync_target ctx ~cpu ~si pcc;
    (* [sync_target] may have just moved this CPU's target, in which
       case the aux list was filled under the *old* bound and is no
       longer target-sized; re-read the word it may have written (the
       host branch keeps pressure-off runs bit-identical — no extra
       charged read when the word cannot have changed). *)
    let tgt =
      if (ctx.Ctx.pressure).Ctx.enabled then Machine.read (pcc + o_target)
      else tgt
    in
    let acnt = Machine.read (pcc + o_aux_cnt) in
    if acnt <> 0 then begin
      st.Kstats.free_misses <- st.Kstats.free_misses + 1;
      layer := Flightrec.Event.Global;
      let head = Machine.read (pcc + o_aux_head) in
      if acnt = tgt then
        (* aux holds a full target-sized list: one O(1) hand-off to the
           global layer. *)
        Global.put_list ctx ~si ~head ~count:acnt
      else
        (* Stale-target remainder: gblfree carries only target-sized
           lists, so an odd-sized aux must go through the bucket. *)
        Global.put_partial ctx ~si ~head ~count:acnt
    end;
    (* Slide the full main into aux, start a fresh main with [a]. *)
    Machine.write (pcc + o_aux_head) (Machine.read (pcc + o_main_head));
    Machine.write (pcc + o_aux_cnt) cnt;
    Machine.write (a + Freelist.link) 0;
    Machine.write (pcc + o_main_head) a;
    Machine.write (pcc + o_main_cnt) 1
  end;
  Machine.irq_enable ();
  if Trace.on () then Trace.emit (Flightrec.Event.Free { si; layer = !layer })

let flush_half (ctx : Ctx.t) ~si ~tgt pcc head_off cnt_off =
  let h = Machine.read (pcc + head_off) in
  let c = Machine.read (pcc + cnt_off) in
  Machine.write (pcc + head_off) 0;
  Machine.write (pcc + cnt_off) 0;
  if c = tgt then Global.put_list ctx ~si ~head:h ~count:c
  else if c > 0 then Global.put_partial ctx ~si ~head:h ~count:c

let drain (ctx : Ctx.t) ~si =
  let cpu = Machine.cpu_id () in
  let ly = ctx.Ctx.layout in
  let pcc = Layout.pcc_addr ly ~cpu ~si in
  let tgt = live_target ctx ~si in
  Machine.irq_disable ();
  lockcheck_probe ~owner:cpu;
  sync_target ctx ~cpu ~si pcc;
  flush_half ctx ~si ~tgt pcc o_main_head o_main_cnt;
  flush_half ctx ~si ~tgt pcc o_aux_head o_aux_cnt;
  Machine.irq_enable ()

(* Light reap: hand only the reserve ([aux]) list back, keeping the hot
   [main] list so the CPU's fast path stays warm through a pressure
   pass. *)
let drain_aux (ctx : Ctx.t) ~si =
  let cpu = Machine.cpu_id () in
  let ly = ctx.Ctx.layout in
  let pcc = Layout.pcc_addr ly ~cpu ~si in
  let tgt = live_target ctx ~si in
  Machine.irq_disable ();
  lockcheck_probe ~owner:cpu;
  sync_target ctx ~cpu ~si pcc;
  flush_half ctx ~si ~tgt pcc o_aux_head o_aux_cnt;
  Machine.irq_enable ()

let cached_blocks_oracle (ctx : Ctx.t) ~cpu ~si =
  let mem = Ctx.memory ctx in
  let pcc = Layout.pcc_addr ctx.Ctx.layout ~cpu ~si in
  Memory.get mem (pcc + o_main_cnt) + Memory.get mem (pcc + o_aux_cnt)

let cache_oracle (ctx : Ctx.t) ~cpu ~si =
  let mem = Ctx.memory ctx in
  let pcc = Layout.pcc_addr ctx.Ctx.layout ~cpu ~si in
  ( (Memory.get mem (pcc + o_main_head), Memory.get mem (pcc + o_main_cnt)),
    (Memory.get mem (pcc + o_aux_head), Memory.get mem (pcc + o_aux_cnt)),
    Memory.get mem (pcc + o_target) )
