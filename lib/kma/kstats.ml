type per_size = {
  mutable allocs : int;
  mutable frees : int;
  mutable alloc_aux_refills : int;
  mutable alloc_misses : int;
  mutable free_misses : int;
  mutable gbl_gets : int;
  mutable gbl_puts : int;
  mutable gbl_get_misses : int;
  mutable gbl_put_misses : int;
  mutable page_block_gets : int;
  mutable page_block_puts : int;
  mutable pages_grabbed : int;
  mutable pages_returned : int;
}

type t = {
  sizes : per_size array;
  mutable large_allocs : int;
  mutable large_frees : int;
  mutable reaps : int;
  mutable reap_pages : int;
  mutable pressure_retries : int;
  mutable pressure_failures : int;
  mutable target_shrinks : int;
  mutable target_grows : int;
}

let fresh () =
  {
    allocs = 0;
    frees = 0;
    alloc_aux_refills = 0;
    alloc_misses = 0;
    free_misses = 0;
    gbl_gets = 0;
    gbl_puts = 0;
    gbl_get_misses = 0;
    gbl_put_misses = 0;
    page_block_gets = 0;
    page_block_puts = 0;
    pages_grabbed = 0;
    pages_returned = 0;
  }

let create ~nsizes =
  {
    sizes = Array.init nsizes (fun _ -> fresh ());
    large_allocs = 0;
    large_frees = 0;
    reaps = 0;
    reap_pages = 0;
    pressure_retries = 0;
    pressure_failures = 0;
    target_shrinks = 0;
    target_grows = 0;
  }

let size t si = t.sizes.(si)

let reset t =
  t.large_allocs <- 0;
  t.large_frees <- 0;
  t.reaps <- 0;
  t.reap_pages <- 0;
  t.pressure_retries <- 0;
  t.pressure_failures <- 0;
  t.target_shrinks <- 0;
  t.target_grows <- 0;
  Array.iteri (fun i _ -> t.sizes.(i) <- fresh ()) t.sizes

let ratio num den =
  if den = 0 then Float.nan else float_of_int num /. float_of_int den

let percpu_alloc_miss_rate t ~si =
  let s = t.sizes.(si) in
  ratio s.alloc_misses s.allocs

let percpu_free_miss_rate t ~si =
  let s = t.sizes.(si) in
  ratio s.free_misses s.frees

let global_alloc_miss_rate t ~si =
  let s = t.sizes.(si) in
  ratio s.gbl_get_misses s.gbl_gets

let global_free_miss_rate t ~si =
  let s = t.sizes.(si) in
  ratio s.gbl_put_misses s.gbl_puts

let combined_alloc_miss_rate t ~si =
  let s = t.sizes.(si) in
  ratio s.gbl_get_misses s.allocs

let combined_free_miss_rate t ~si =
  let s = t.sizes.(si) in
  ratio s.gbl_put_misses s.frees

let pp ppf t =
  Format.fprintf ppf "@[<v>";
  Array.iteri
    (fun si s ->
      if s.allocs + s.frees > 0 then
        Format.fprintf ppf
          "size[%d]: allocs=%d frees=%d pcpu-miss=%d/%d gbl-miss=%d/%d \
           page-blocks=%d/%d pages=%d/%d@,"
          si s.allocs s.frees s.alloc_misses s.free_misses s.gbl_get_misses
          s.gbl_put_misses s.page_block_gets s.page_block_puts s.pages_grabbed
          s.pages_returned)
    t.sizes;
  if t.large_allocs + t.large_frees > 0 then
    Format.fprintf ppf "large: allocs=%d frees=%d@," t.large_allocs
      t.large_frees;
  if t.reaps + t.pressure_retries + t.pressure_failures > 0 then
    Format.fprintf ppf
      "pressure: reaps=%d pages-reclaimed=%d retries=%d failures=%d \
       shrinks=%d grows=%d@,"
      t.reaps t.reap_pages t.pressure_retries t.pressure_failures
      t.target_shrinks t.target_grows;
  Format.fprintf ppf "@]"
