(** Address-space layout of the allocator inside simulated memory: the
    static kernel data structures the paper's Design section names —
    per-CPU caches (layer 1), per-class global pools (layer 2),
    coalesce-to-page radix structures (layer 3) and the vmblk arena
    with its dope vector (layer 4) — packed into one address map.

    {v
    +------------------------------------------------------------+
    | 0..1023      reserved (word 0 is the nil pointer; words    |
    |              16..1023 are benchmark-harness scratch space)  |
    | size table   request-bytes -> size-class index             |
    | per-CPU      ncpus x nsizes caches, 2 cache lines each     |
    | global       nnodes x nsizes pools, lock + data line + pad |
    | pagepool     nsizes radix structures (lock, hint, buckets) |
    | vmctl        vmblk-layer lock, span list, arena cursor     |
    | dope vector  (addr >> vmblk_shift) -> vmblk base           |
    | ...pad to vmblk alignment...                               |
    | vmblk arena  vmblks: pd header pages then data pages       |
    +------------------------------------------------------------+
    v}

    All layout arithmetic is host-side and free of simulated cost:
    compiled kernel code addresses its static structures with immediate
    operands.  Reading *through* the structures (e.g. the dope vector, or
    a size-table entry) is simulated and charged. *)

type t = {
  params : Params.t;
  ncpus : int;
  nnodes : int;  (** NUMA nodes of the underlying machine (1 = flat) *)
  nsizes : int;
  line_words : int;  (** cache-line size, for control-structure padding *)
  page_words : int;
  page_shift : int;
  (* size table *)
  size_table_base : int;
  size_table_len : int;
  size_table_gran_shift : int;  (** index = (bytes - 1) >> gran_shift *)
  (* per-CPU caches *)
  percpu_base : int;
  pcc_words : int;
  (* global layer *)
  global_base : int;
  gbl_words : int;
  (* coalesce-to-page layer *)
  pagepool_bases : int array;  (** per-size base address *)
  (* coalesce-to-vmblk layer *)
  vmctl_base : int;
  dope_base : int;
  dope_len : int;
  vmblk_base : int;
  vmblk_words : int;
  vmblk_shift : int;
  vmblk_pages : int;
  hdr_pages : int;
  data_pages : int;  (** data pages per vmblk *)
  arena_vmblks : int;  (** how many vmblks fit in simulated memory *)
  pd_words : int;
  control_words : int;  (** end of the control region *)
}

val make : Sim.Config.t -> Params.t -> t
(** @raise Invalid_argument if memory is too small for the layout (at
    least one whole vmblk must fit after the control region). *)

(** {1 Address helpers (host-side arithmetic, uncharged)} *)

val pcc_addr : t -> cpu:int -> si:int -> int
(** Base of the per-CPU cache record for [cpu] and size class [si]. *)

val gbl_addr : t -> si:int -> int
(** Base of node 0's global-layer record for [si] (the lock word) —
    the only record the flat global layer ever touches, and the whole
    global layer on a 1-node machine. *)

val gbl_node_addr : t -> node:int -> si:int -> int
(** Base of [node]'s global-layer record for [si]: the layout carries
    [nnodes * nsizes] records so the NUMA-aware global layer can keep a
    node-local gblfree per size class.  [gbl_node_addr ~node:0] =
    {!gbl_addr}. *)

val pagepool_addr : t -> si:int -> int
val vmblk_addr : t -> index:int -> int
val vmblk_of_addr : t -> int -> int
(** Aligned vmblk base containing a given address (pure mask). *)

val dope_entry : t -> int -> int
(** Address of the dope-vector entry covering a given address. *)

val pd_addr : t -> vmblk:int -> data_page:int -> int
(** Address of the page descriptor for the [data_page]-th data page. *)

val pd_of_page : t -> page_addr:int -> int
(** Page descriptor address for a data page (pure arithmetic; the vmblk
    base is recovered by masking). *)

val page_of_pd : t -> pd:int -> int
(** Word address of the data page described by [pd]. *)

val data_page_addr : t -> vmblk:int -> data_page:int -> int
val total_data_pages : t -> int
(** Capacity of the whole arena in data pages. *)
