open Sim

(* Record layout at [Layout.gbl_node_addr] (lock occupies the first
   line); one record per (node, size) — node 0's records are the whole
   layer on a flat machine:
   +line+0 gblfree head (first block of first list)
   +line+1 number of lists on gblfree
   +line+2 bucket head
   +line+3 bucket count *)

let fld (ly : Layout.t) ~node ~si i =
  Layout.gbl_node_addr ly ~node ~si + ly.Layout.line_words + i

let f_head ly ~node ~si = fld ly ~node ~si 0
let f_nlists ly ~node ~si = fld ly ~node ~si 1
let f_bucket ly ~node ~si = fld ly ~node ~si 2
let f_bucket_cnt ly ~node ~si = fld ly ~node ~si 3

(* Which node's pool the executing CPU works against.  [cpu_id] is an
   operation (a scheduler yield point, though free of charge), so the
   flat layer must not even ask — it pins node 0, keeping every
   pre-NUMA run bit-identical. *)
let cur_node (ctx : Ctx.t) =
  if ctx.Ctx.numa_global then
    Config.node_of (Machine.config ctx.Ctx.machine) (Machine.cpu_id ())
  else 0

let glock (ctx : Ctx.t) ~node ~si =
  ctx.Ctx.glocks.((node * ctx.Ctx.layout.Layout.nsizes) + si)

let boot_init (ctx : Ctx.t) =
  let mem = Ctx.memory ctx in
  let ly = ctx.Ctx.layout in
  for node = 0 to ly.Layout.nnodes - 1 do
    for si = 0 to ly.Layout.nsizes - 1 do
      Memory.set mem (f_head ly ~node ~si) 0;
      Memory.set mem (f_nlists ly ~node ~si) 0;
      Memory.set mem (f_bucket ly ~node ~si) 0;
      Memory.set mem (f_bucket_cnt ly ~node ~si) 0
    done
  done

(* Once pressure is enabled both bounds become the adaptive values
   (host-side reads either way, like any [Params] read; the global
   layer has no per-CPU copies to synchronise, and every use is under
   the per-size spinlock, so any point is a safe point here). *)
let target (ctx : Ctx.t) si =
  let pr = ctx.Ctx.pressure in
  if pr.Ctx.enabled then pr.Ctx.desired_targets.(si)
  else (Ctx.params ctx).Params.targets.(si)

let gbltarget (ctx : Ctx.t) si =
  let pr = ctx.Ctx.pressure in
  if pr.Ctx.enabled then pr.Ctx.desired_gbltargets.(si)
  else (Ctx.params ctx).Params.gbltargets.(si)

(* --- list-of-lists primitives (node's lock held) --- *)

let push_list ctx ~node ~si head ~count =
  let ly = ctx.Ctx.layout in
  Machine.write (head + Freelist.next_list)
    (Machine.read (f_head ly ~node ~si));
  Machine.write (head + Freelist.count) count;
  Machine.write (f_head ly ~node ~si) head;
  Machine.write (f_nlists ly ~node ~si)
    (Machine.read (f_nlists ly ~node ~si) + 1)

let pop_list ctx ~node ~si =
  let ly = ctx.Ctx.layout in
  let head = Machine.read (f_head ly ~node ~si) in
  if head = 0 then (0, 0)
  else begin
    Machine.write (f_head ly ~node ~si)
      (Machine.read (head + Freelist.next_list));
    Machine.write (f_nlists ly ~node ~si)
      (Machine.read (f_nlists ly ~node ~si) - 1);
    (head, Machine.read (head + Freelist.count))
  end

(* Move up to [n] blocks off the bucket into a fresh chain. *)
let take_from_bucket ctx ~node ~si ~n =
  let ly = ctx.Ctx.layout in
  let cnt = Machine.read (f_bucket_cnt ly ~node ~si) in
  if cnt = 0 then (0, 0)
  else begin
    let head, taken = Freelist.take_n ~head:(f_bucket ly ~node ~si) ~n in
    Machine.write (f_bucket_cnt ly ~node ~si) (cnt - taken);
    (head, taken)
  end

(* Drain up to [gbltarget] lists down to the coalesce-to-page layer
   (overflow hysteresis).  Stops at the first empty pop: once [f_head]
   reads 0 every further iteration would just re-read it while still
   holding the per-size spinlock, lengthening the critical section for
   nothing. *)
let drain_node ctx ~node ~si =
  let st = Kstats.size ctx.Ctx.stats si in
  st.Kstats.gbl_put_misses <- st.Kstats.gbl_put_misses + 1;
  let rec go n =
    if n > 0 then begin
      let head, count = pop_list ctx ~node ~si in
      if head <> 0 then begin
        Pagepool.put_blocks ctx ~si ~head ~count;
        go (n - 1)
      end
    end
  in
  go (gbltarget ctx si)

let drain ctx ~si = drain_node ctx ~node:(cur_node ctx) ~si

(* Refill up to [gbltarget] lists from the coalesce-to-page layer
   (underflow hysteresis).  Short lists go via the bucket so gblfree
   only ever carries full lists from this path. *)
let refill ctx ~node ~si =
  let ly = ctx.Ctx.layout in
  let st = Kstats.size ctx.Ctx.stats si in
  st.Kstats.gbl_get_misses <- st.Kstats.gbl_get_misses + 1;
  let tgt = target ctx si in
  let want_lists = gbltarget ctx si in
  let rec go n =
    if n < want_lists then begin
      let head, got = Pagepool.get_blocks ctx ~si ~want:tgt in
      if got = tgt then begin
        push_list ctx ~node ~si head ~count:tgt;
        go (n + 1)
      end
      else if got > 0 then begin
        (* Memory is running out: keep the stragglers on the bucket. *)
        let bcnt = Machine.read (f_bucket_cnt ly ~node ~si) in
        Freelist.iter_chain head (fun blk ~next:_ ->
            Freelist.push ~head:(f_bucket ly ~node ~si) blk);
        Machine.write (f_bucket_cnt ly ~node ~si) (bcnt + got)
      end
    end
  in
  go 0

let get_list (ctx : Ctx.t) ~si =
  let st = Kstats.size ctx.Ctx.stats si in
  let node = cur_node ctx in
  Sim.Spinlock.with_lock (glock ctx ~node ~si) (fun () ->
      st.Kstats.gbl_gets <- st.Kstats.gbl_gets + 1;
      let result =
        let head, count = pop_list ctx ~node ~si in
        if head <> 0 then (head, count, false)
        else begin
          let tgt = target ctx si in
          let bh, bc = take_from_bucket ctx ~node ~si ~n:tgt in
          if bc > 0 then (bh, bc, false)
          else begin
            refill ctx ~node ~si;
            let head, count = pop_list ctx ~node ~si in
            if head <> 0 then (head, count, true)
            else
              let bh, bc = take_from_bucket ctx ~node ~si ~n:tgt in
              (bh, bc, true)
          end
        end
      in
      let head, count, miss = result in
      if Trace.on () then Trace.emit (Flightrec.Event.Gbl_get { si; miss });
      (head, count))

let put_list (ctx : Ctx.t) ~si ~head ~count =
  let ly = ctx.Ctx.layout in
  let st = Kstats.size ctx.Ctx.stats si in
  let node = cur_node ctx in
  Sim.Spinlock.with_lock (glock ctx ~node ~si) (fun () ->
      st.Kstats.gbl_puts <- st.Kstats.gbl_puts + 1;
      push_list ctx ~node ~si head ~count;
      let overflow =
        Machine.read (f_nlists ly ~node ~si) >= 2 * gbltarget ctx si
      in
      if Trace.on () then
        Trace.emit (Flightrec.Event.Gbl_put { si; drain = overflow });
      if overflow then drain_node ctx ~node ~si)

let put_partial (ctx : Ctx.t) ~si ~head ~count =
  let ly = ctx.Ctx.layout in
  let st = Kstats.size ctx.Ctx.stats si in
  if head <> 0 then begin
    let node = cur_node ctx in
    Sim.Spinlock.with_lock (glock ctx ~node ~si) (fun () ->
        st.Kstats.gbl_puts <- st.Kstats.gbl_puts + 1;
        let bcnt = Machine.read (f_bucket_cnt ly ~node ~si) in
        Freelist.iter_chain head (fun blk ~next:_ ->
            Freelist.push ~head:(f_bucket ly ~node ~si) blk);
        Machine.write (f_bucket_cnt ly ~node ~si) (bcnt + count);
        (* Regroup full lists out of the bucket. *)
        let tgt = target ctx si in
        let rec regroup () =
          if Machine.read (f_bucket_cnt ly ~node ~si) >= tgt then begin
            let h, got = take_from_bucket ctx ~node ~si ~n:tgt in
            push_list ctx ~node ~si h ~count:got;
            regroup ()
          end
        in
        regroup ();
        let overflow =
          Machine.read (f_nlists ly ~node ~si) >= 2 * gbltarget ctx si
        in
        if Trace.on () then
          Trace.emit (Flightrec.Event.Gbl_put { si; drain = overflow });
        if overflow then drain_node ctx ~node ~si)
  end

(* Pressure trim: push lists down to the coalesce-to-page layer until
   at most [keep] remain, then regroup-and-push the bucket the same
   way.  Unlike [drain_all] this can leave the layer a working reserve
   (per node); the coalescing layer returns any page that becomes fully
   free to the VM system on the spot. *)
let trim (ctx : Ctx.t) ~si ~keep =
  let ly = ctx.Ctx.layout in
  for node = 0 to ly.Layout.nnodes - 1 do
    Sim.Spinlock.with_lock (glock ctx ~node ~si) (fun () ->
        let rec lists () =
          if Machine.read (f_nlists ly ~node ~si) > keep then begin
            let head, count = pop_list ctx ~node ~si in
            if head <> 0 then begin
              Pagepool.put_blocks ctx ~si ~head ~count;
              lists ()
            end
          end
        in
        lists ();
        let tgt = target ctx si in
        let rec bucket () =
          let head, count = take_from_bucket ctx ~node ~si ~n:tgt in
          if head <> 0 then begin
            Pagepool.put_blocks ctx ~si ~head ~count;
            bucket ()
          end
        in
        if keep = 0 then bucket ())
  done

let drain_all (ctx : Ctx.t) ~si =
  let ly = ctx.Ctx.layout in
  for node = 0 to ly.Layout.nnodes - 1 do
    Sim.Spinlock.with_lock (glock ctx ~node ~si) (fun () ->
        let rec lists () =
          let head, count = pop_list ctx ~node ~si in
          if head <> 0 then begin
            Pagepool.put_blocks ctx ~si ~head ~count;
            lists ()
          end
        in
        lists ();
        let tgt = target ctx si in
        let rec bucket () =
          let head, count = take_from_bucket ctx ~node ~si ~n:tgt in
          if head <> 0 then begin
            Pagepool.put_blocks ctx ~si ~head ~count;
            bucket ()
          end
        in
        bucket ())
  done

(* --- host-side oracles (aggregate across nodes unless noted) --- *)

let fold_nodes (ctx : Ctx.t) f init =
  let rec go node acc =
    if node >= ctx.Ctx.layout.Layout.nnodes then acc
    else go (node + 1) (f acc node)
  in
  go 0 init

let nlists_oracle (ctx : Ctx.t) ~si =
  let mem = Ctx.memory ctx in
  let ly = ctx.Ctx.layout in
  fold_nodes ctx (fun acc node -> acc + Memory.get mem (f_nlists ly ~node ~si)) 0

let bucket_count_oracle (ctx : Ctx.t) ~si =
  let mem = Ctx.memory ctx in
  let ly = ctx.Ctx.layout in
  fold_nodes ctx
    (fun acc node -> acc + Memory.get mem (f_bucket_cnt ly ~node ~si))
    0

let lists_node_oracle (ctx : Ctx.t) ~node ~si =
  let mem = Ctx.memory ctx in
  let ly = ctx.Ctx.layout in
  let rec go head n acc =
    if head = 0 then List.rev acc
    else if n > 1_000_000 then
      invalid_arg "Kma.Global.lists_oracle: next-list chain exceeds 1M nodes"
    else
      go
        (Memory.get mem (head + Freelist.next_list))
        (n + 1)
        ((head, Memory.get mem (head + Freelist.count)) :: acc)
  in
  go (Memory.get mem (f_head ly ~node ~si)) 0 []

let lists_oracle (ctx : Ctx.t) ~si =
  fold_nodes ctx
    (fun acc node -> acc @ lists_node_oracle ctx ~node ~si)
    []

let total_blocks_oracle (ctx : Ctx.t) ~si =
  List.fold_left
    (fun acc (_, cnt) -> acc + cnt)
    (bucket_count_oracle ctx ~si)
    (lists_oracle ctx ~si)

let bucket_head_oracle (ctx : Ctx.t) ~si =
  Memory.get (Ctx.memory ctx) (f_bucket ctx.Ctx.layout ~node:0 ~si)

let buckets_oracle (ctx : Ctx.t) ~si =
  let mem = Ctx.memory ctx in
  let ly = ctx.Ctx.layout in
  List.rev
    (fold_nodes ctx
       (fun acc node ->
         ( Memory.get mem (f_bucket ly ~node ~si),
           Memory.get mem (f_bucket_cnt ly ~node ~si) )
         :: acc)
       [])
