(** Tunable parameters of the allocator — the knobs named in the
    paper's Design section ([target], [gbltarget], sizes, page/vmblk
    geometry) plus the dynamic-[target] pressure policy proposed in its
    Future Directions section (realised by {!Pressure}).

    Terminology follows the paper: [target] bounds each half of a per-CPU
    cache's split freelist (so a per-CPU cache holds at most [2 * target]
    blocks, and the global layer is visited at most once per [target]
    operations); [gbltarget] bounds the global layer in units of
    target-sized lists (the global layer holds up to [2 * gbltarget]
    lists and exchanges [gbltarget] lists with the coalescing layer at a
    time, so the coalescing layer is visited at most once per [gbltarget]
    global-layer operations). *)

type page_policy =
  | Fullest_first
      (** the paper's radix-sorted order: carve from the page with the
          fewest free blocks, letting nearly-empty pages drain *)
  | Emptiest_first  (** ablation: carve from the emptiest page *)

(** Memory-pressure policy (see {!Pressure}): how the adaptive layer
    shrinks and regrows [target] / [gbltarget], and how hard the
    allocator tries before reporting exhaustion. *)
type pressure = {
  min_target : int;
      (** floor for adaptively shrunk targets (>= 1, so layer 1 keeps
          its split freelist even under the worst pressure) *)
  shrink_shift : int;
      (** multiplicative decrease: a denial halves targets
          [shrink_shift] times (right shift) *)
  grow_step : int;  (** additive increase per recovery step *)
  grow_grants : int;
      (** denial-free VM grants required before one recovery step *)
  grow_allocs : int;
      (** denial-free successful allocations that also buy one recovery
          step — the fallback clock for when the recovered workload is
          served entirely from the allocator's caches and stops needing
          VM grants at all *)
  max_retries : int;
      (** bound on the reap-and-retry loop in [Kmem.try_alloc] before
          the allocation degrades to [None] *)
}

type t = {
  sizes_bytes : int array;
      (** managed block sizes in bytes, ascending powers of two; the
          largest must equal the page size *)
  page_bytes : int;  (** page size in bytes (default 4096) *)
  vmblk_pages : int;  (** pages per vmblk, a power of two *)
  targets : int array;  (** per-size [target] *)
  gbltargets : int array;  (** per-size [gbltarget], in lists *)
  phys_pages : int option;
      (** physical-page budget granted by the VM system; [None] sizes it
          to the virtual arena *)
  vm_grant_cost : int;  (** cycles to obtain a physical page *)
  vm_reclaim_cost : int;  (** cycles to return a physical page *)
  page_policy : page_policy;  (** page-selection order in the page layer *)
  debug : bool;
      (** debug kernel: poison freed blocks and verify the poison on
          reallocation, catching use-after-free writes and double frees
          (at a realistic cycle cost, like a DEBUG kernel build) *)
  pressure : pressure;
      (** memory-pressure policy; only consulted once
          [Pressure.enable] has been called on the booted allocator *)
}

val bytes_per_word : int
(** The simulated machine has 4-byte words. *)

val debug_poison : int
(** The pattern debug kernels write over words 3+ of freed blocks
    (word 0 is the freelist link; words 1-2 are global-layer list
    metadata). *)

val default : t
(** The paper's configuration: nine power-of-two sizes 16–4096 bytes,
    4 KiB pages, [target] from 10 (16-byte blocks) down to 2 (4096-byte
    blocks) via the heuristic [max 2 (min 10 (4096 / bytes))], and
    [gbltarget = max 2 (3 * target / 2)] (15 for small blocks). *)

val small : t
(** A downsized configuration for unit tests: 64-page vmblks. *)

val auto : memory_words:int -> t
(** [auto ~memory_words] is {!default} with [vmblk_pages] shrunk (never
    below 8) until at least four vmblks fit in a machine of the given
    size — the paper's 1024-page vmblks when memory is plentiful. *)

val default_target : bytes:int -> int
(** The paper's heuristic limiting memory tied up in per-CPU caches. *)

val default_gbltarget : target:int -> int

val default_pressure : pressure
(** Halve targets on each denial (floor 1), regrow by 1 after every 4
    denial-free grants, and retry a denied allocation at most 8 times
    (each retry preceded by a reap). *)

val make :
  ?sizes_bytes:int array ->
  ?page_bytes:int ->
  ?vmblk_pages:int ->
  ?targets:int array ->
  ?gbltargets:int array ->
  ?phys_pages:int ->
  ?vm_grant_cost:int ->
  ?vm_reclaim_cost:int ->
  ?page_policy:page_policy ->
  ?debug:bool ->
  ?pressure:pressure ->
  unit ->
  t
(** [make ()] is {!default} with overrides; omitted [targets] /
    [gbltargets] are recomputed from the heuristics when [sizes_bytes]
    changes.

    @raise Invalid_argument if sizes are not ascending powers of two, if
    the largest size differs from [page_bytes], if a target is < 1, or if
    array lengths disagree. *)

val validate : t -> unit

val nsizes : t -> int
val page_words : t -> int
val size_words : t -> int -> int
(** [size_words t si] is the block size of class [si] in words. *)

val blocks_per_page : t -> int -> int
val size_index_of_bytes : t -> int -> int option
(** Host-side oracle: smallest class holding [bytes], or [None] if the
    request exceeds the largest class. *)
