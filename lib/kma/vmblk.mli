(** Coalesce-to-vmblk layer (layer 4).

    Manages large blocks of virtual memory ("vmblks", 4 MB in the
    paper's implementation).  Each vmblk starts with header pages holding
    one 8-word *page descriptor* per data page, followed by the data
    pages themselves.  The dope vector maps any block address to its
    vmblk in one read; the page descriptor is then found by subtracting
    the vmblk base, shifting off the page offset, and subtracting the
    header size — the paper's two-level sparse-array scheme.

    Adjacent free spans of pages are coalesced eagerly when freed, using
    a boundary-tag-like scheme over the page descriptors: the first page
    of a free span records the span length, the last records the span
    head.  Physical memory is granted/reclaimed through {!Sim.Vmsys} as
    spans are allocated/freed; virtual address space is retained.

    Requests larger than one page bypass layers 1–3 and come here
    directly ({!alloc_large}/{!free_large}).

    All functions except {!boot_init} and the oracles run on the
    simulated machine and take the vmblk lock internally.

    Invariants: the span maps and dope vector are protected by the
    single [vmblk] lock (class [kma.vmblk]), the innermost lock of the
    gbl -> pagepool -> vmblk order; this layer is the only caller of
    {!Sim.Vmsys}, necessarily with the lock held (registered [vm_safe],
    see DESIGN.md "Concurrency invariants"). *)

(** {1 Page-descriptor field offsets and states} *)

val pd_state : int
val pd_arg : int
(** Span length for a span head; head-descriptor address for a span
    tail. *)

val pd_sizeidx : int
(** Size class of a split page. *)

val pd_nfree : int
(** Free blocks within a split page. *)

val pd_blkhead : int
(** Freelist of blocks within a split page. *)

val pd_next : int
val pd_prev : int

val st_free_mid : int
(** Interior page of a free span (also the boot state). *)

val st_free_head : int
val st_free_tail : int

val st_split : int
(** Page carved into blocks by the page layer. *)

val st_span_alloc : int
(** Head page of an allocated multi-page span. *)

val st_span_mid : int
(** Interior page of an allocated span. *)

(** {1 Boot} *)

val boot_init : Ctx.t -> unit
(** Host-side: zeroes control words.  No vmblk is created until first
    use. *)

(** {1 Simulated operations} *)

val alloc_pages : Ctx.t -> npages:int -> int
(** [alloc_pages ctx ~npages] allocates a physically-backed span of
    [npages] contiguous pages and returns the address of its first page,
    or 0 if virtual or physical memory is exhausted.  The span's
    descriptors are marked allocated ([st_span_alloc] head,
    [st_span_mid] interior). *)

val free_pages : Ctx.t -> page:int -> npages:int -> unit
(** [free_pages ctx ~page ~npages] returns a span: physical pages go
    back to the VM system, and the virtual span is coalesced with free
    neighbours.  The caller warrants the span was allocated with this
    length (checked by assertion for spans allocated via
    [alloc_pages]). *)

val alloc_large : Ctx.t -> bytes:int -> int
(** Multi-page allocation for requests bigger than a page; 0 on
    exhaustion. *)

val free_large : Ctx.t -> addr:int -> bytes:int -> unit

val pd_of_block : Ctx.t -> int -> int
(** [pd_of_block ctx a] is the page-descriptor address for the page
    containing block [a], via a charged dope-vector read.
    @raise Assert_failure if [a] is not inside any grown vmblk. *)

(** {1 Host-side oracles} *)

val free_span_lengths_oracle : Ctx.t -> int list
(** Lengths of every span on the free-span list (in list order). *)

val nvmblks_oracle : Ctx.t -> int

val free_spans_oracle : Ctx.t -> (int * int) list
(** Every span on the free-span list as [(head descriptor address,
    recorded length)] pairs, in list order — the raw material for the
    heapcheck boundary-tag sweep. *)
