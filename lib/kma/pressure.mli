(** Memory-pressure subsystem: [kmem_reap]-style draining plus online
    adaptation of [target] / [gbltarget] — the dynamic-target idea the
    paper leaves as its Future Directions proposal, built from the
    administrative operations its Design section already requires
    (per-CPU drains, global-layer drains, coalesce-to-page returns).

    The subsystem is strictly opt-in: until {!enable} is called the
    allocator's behaviour, cycle counts and statistics are bit-for-bit
    those of the plain paper allocator (every hook is a single host
    branch), and the calibrated warm fast paths are never altered
    either way, because adaptive bounds reach layer 1 only at the
    slow-path safe points ({!Percpu} re-reads its target word while
    interrupts are disabled, so layer 1 stays lock-free).

    Policy, from {!Params.pressure}: on an allocation-visible denial
    every class's bounds shrink multiplicatively (halving by default,
    floored at [min_target]); after [grow_grants] consecutive
    denial-free VM grants — or [grow_allocs] denial-free successful
    allocations, for workloads the shrunk caches serve without any VM
    traffic — they grow back additively ([grow_step] per step) toward
    the {!Params} defaults.  A denied allocation is
    retried up to [max_retries] times, each retry preceded by a reap
    pass (light first, then full), before degrading to failure. *)

val enable : Ctx.t -> unit
(** [enable ctx] arms the subsystem (host-side switch): adaptive
    bounds start at the {!Params} defaults, and {!Kmem} / {!Cookie}
    allocation paths gain the reap-and-retry loop. *)

val disable : Ctx.t -> unit
(** [disable ctx] disarms the subsystem and restores every bound —
    including the per-CPU target words, rewritten host-side in the
    boot idiom — to the {!Params} defaults. *)

val enabled : Ctx.t -> bool

(** {1 Simulated operations} *)

val reap : Ctx.t -> full:bool -> int
(** [reap ctx ~full] runs one pressure pass on the current simulated
    CPU and returns the number of physical pages returned to the VM
    system.  [full = false]: flush this CPU's reserve ([aux]) lists
    and trim each global layer to one list.  [full = true]: flush both
    halves of this CPU's caches and empty the global layer, so every
    drainable page goes back.  Emits a [Reap] flight-recorder event. *)

val note_denial : Ctx.t -> unit
(** [note_denial ctx] records an allocation-visible denial:
    multiplicative shrink of every class's adaptive bounds (emitting
    [Target_adjust] events).  No-op while disabled. *)

val note_success : Ctx.t -> unit
(** [note_success ctx] gives the subsystem a chance to recover: after
    [grow_grants] denial-free VM grants or [grow_allocs] denial-free
    successful allocations, one additive step back toward the
    defaults.  A single host branch once fully recovered. *)

val with_retries : Ctx.t -> (unit -> int) -> int
(** [with_retries ctx attempt] is [attempt ()] with the bounded
    reap-and-retry path of {!Kmem.try_alloc} wrapped around it when
    the subsystem is enabled: on a 0 result, shrink ({!note_denial}),
    {!reap} (light first, full from the second retry on) and try
    again, up to [max_retries] times — stopping early once a full reap
    reclaims nothing while the VM system is empty.  Returns 0 only
    when the retries are exhausted or provably hopeless. *)

(** {1 Host-side oracles} *)

val desired_target : Ctx.t -> si:int -> int
val desired_gbltarget : Ctx.t -> si:int -> int

val at_defaults : Ctx.t -> bool
(** Every adaptive bound is back at its {!Params} default. *)

val denial_streak : Ctx.t -> int
(** Consecutive denials since the last completed recovery step. *)
