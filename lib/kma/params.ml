type page_policy = Fullest_first | Emptiest_first

type pressure = {
  min_target : int;
  shrink_shift : int;
  grow_step : int;
  grow_grants : int;
  grow_allocs : int;
  max_retries : int;
}

type t = {
  sizes_bytes : int array;
  page_bytes : int;
  vmblk_pages : int;
  targets : int array;
  gbltargets : int array;
  phys_pages : int option;
  vm_grant_cost : int;
  vm_reclaim_cost : int;
  page_policy : page_policy;
  debug : bool;
  pressure : pressure;
}

let bytes_per_word = 4

(* Debug-kernel poison pattern (see the [debug] field). *)
let debug_poison = 0x2EADBEEF
let is_power_of_two n = n > 0 && n land (n - 1) = 0

let default_target ~bytes = max 2 (min 10 (4096 / bytes))
let default_gbltarget ~target = max 2 (3 * target / 2)

let default_sizes = [| 16; 32; 64; 128; 256; 512; 1024; 2048; 4096 |]

let default_pressure =
  {
    min_target = 1;
    shrink_shift = 1;
    grow_step = 1;
    grow_grants = 4;
    grow_allocs = 64;
    max_retries = 8;
  }

let derive_targets sizes = Array.map (fun b -> default_target ~bytes:b) sizes

let derive_gbltargets targets =
  Array.map (fun t -> default_gbltarget ~target:t) targets

let validate t =
  let check cond msg = if not cond then invalid_arg ("Kma.Params: " ^ msg) in
  let n = Array.length t.sizes_bytes in
  check (n > 0) "sizes_bytes must be non-empty";
  Array.iter
    (fun s ->
      check (is_power_of_two s) "sizes must be powers of two";
      check (s >= 2 * bytes_per_word) "sizes must hold at least two words")
    t.sizes_bytes;
  for i = 1 to n - 1 do
    check (t.sizes_bytes.(i) > t.sizes_bytes.(i - 1)) "sizes must ascend"
  done;
  check (is_power_of_two t.page_bytes) "page_bytes must be a power of two";
  check
    (t.sizes_bytes.(n - 1) = t.page_bytes)
    "largest size must equal page_bytes";
  check (is_power_of_two t.vmblk_pages) "vmblk_pages must be a power of two";
  check (t.vmblk_pages >= 8) "vmblk_pages must be at least 8";
  check (Array.length t.targets = n) "targets length";
  check (Array.length t.gbltargets = n) "gbltargets length";
  Array.iter (fun x -> check (x >= 1) "targets must be >= 1") t.targets;
  Array.iter (fun x -> check (x >= 1) "gbltargets must be >= 1") t.gbltargets;
  (match t.phys_pages with
  | Some p -> check (p > 0) "phys_pages must be positive"
  | None -> ());
  check (t.vm_grant_cost >= 0 && t.vm_reclaim_cost >= 0) "vm costs";
  let pr = t.pressure in
  check (pr.min_target >= 1) "pressure.min_target must be >= 1";
  check (pr.shrink_shift >= 1) "pressure.shrink_shift must be >= 1";
  check (pr.grow_step >= 1) "pressure.grow_step must be >= 1";
  check (pr.grow_grants >= 1) "pressure.grow_grants must be >= 1";
  check (pr.grow_allocs >= 1) "pressure.grow_allocs must be >= 1";
  check (pr.max_retries >= 0) "pressure.max_retries must be >= 0"

let default =
  let targets = derive_targets default_sizes in
  {
    sizes_bytes = default_sizes;
    page_bytes = 4096;
    vmblk_pages = 1024;
    targets;
    gbltargets = derive_gbltargets targets;
    phys_pages = None;
    vm_grant_cost = 300;
    vm_reclaim_cost = 200;
    page_policy = Fullest_first;
    debug = false;
    pressure = default_pressure;
  }

let small = { default with vmblk_pages = 64 }

let auto ~memory_words =
  let page_words = default.page_bytes / bytes_per_word in
  let avail_pages = memory_words / page_words in
  (* Aim for at least four vmblks so growth and the dope vector are
     exercised; keep the paper's 4 MB (1024-page) vmblks when memory is
     plentiful. *)
  let rec fit p = if p * 4 <= avail_pages || p <= 8 then p else fit (p / 2) in
  { default with vmblk_pages = min 1024 (fit 1024) }

let make ?sizes_bytes ?page_bytes ?vmblk_pages ?targets ?gbltargets
    ?phys_pages ?vm_grant_cost ?vm_reclaim_cost
    ?(page_policy = Fullest_first) ?(debug = false)
    ?(pressure = default_pressure) () =
  let sizes_bytes = Option.value sizes_bytes ~default:default.sizes_bytes in
  let targets =
    match targets with Some t -> t | None -> derive_targets sizes_bytes
  in
  let gbltargets =
    match gbltargets with
    | Some g -> g
    | None -> derive_gbltargets targets
  in
  let t =
    {
      sizes_bytes;
      page_bytes = Option.value page_bytes ~default:default.page_bytes;
      vmblk_pages = Option.value vmblk_pages ~default:default.vmblk_pages;
      targets;
      gbltargets;
      phys_pages;
      vm_grant_cost =
        Option.value vm_grant_cost ~default:default.vm_grant_cost;
      vm_reclaim_cost =
        Option.value vm_reclaim_cost ~default:default.vm_reclaim_cost;
      page_policy;
      debug;
      pressure;
    }
  in
  validate t;
  t

let nsizes t = Array.length t.sizes_bytes
let page_words t = t.page_bytes / bytes_per_word
let size_words t si = t.sizes_bytes.(si) / bytes_per_word
let blocks_per_page t si = t.page_bytes / t.sizes_bytes.(si)

let size_index_of_bytes t bytes =
  if bytes <= 0 then None
  else
    let n = Array.length t.sizes_bytes in
    let rec go i =
      if i >= n then None
      else if bytes <= t.sizes_bytes.(i) then Some i
      else go (i + 1)
    in
    go 0
