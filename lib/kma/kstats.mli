(** Host-side instrumentation counters (measurement only, never charged
    simulated cycles).

    A *miss* at a layer is an access that required the services of the
    next layer up, following the paper's definition: the per-CPU layer
    misses to the global layer, the global layer misses to the
    coalesce-to-page layer.  Rates derived here reproduce the paper's
    distributed-lock-manager evaluation (experiment E6). *)

type per_size = {
  mutable allocs : int;  (** per-CPU layer allocation attempts *)
  mutable frees : int;  (** per-CPU layer frees *)
  mutable alloc_aux_refills : int;
      (** allocations satisfied by moving aux to main (still local) *)
  mutable alloc_misses : int;  (** allocations that visited the global layer *)
  mutable free_misses : int;  (** frees that flushed a list to the global layer *)
  mutable gbl_gets : int;  (** lists handed out by the global layer *)
  mutable gbl_puts : int;  (** lists accepted by the global layer *)
  mutable gbl_get_misses : int;  (** refills from the coalesce-to-page layer *)
  mutable gbl_put_misses : int;  (** drains to the coalesce-to-page layer *)
  mutable page_block_gets : int;  (** blocks carved out by the page layer *)
  mutable page_block_puts : int;  (** blocks examined back into pages *)
  mutable pages_grabbed : int;  (** pages obtained from the vmblk layer *)
  mutable pages_returned : int;  (** fully-free pages given back *)
}

type t = {
  sizes : per_size array;
  mutable large_allocs : int;
  mutable large_frees : int;
  mutable reaps : int;  (** pressure-triggered reap passes *)
  mutable reap_pages : int;
      (** physical pages returned to the VM system by reap passes *)
  mutable pressure_retries : int;
      (** allocations that succeeded only after reap-and-retry *)
  mutable pressure_failures : int;
      (** allocations that still failed after the bounded retry loop *)
  mutable target_shrinks : int;
      (** per-class multiplicative [target] decreases under denial *)
  mutable target_grows : int;
      (** per-class additive [target] recoveries toward the defaults *)
}

val create : nsizes:int -> t
val size : t -> int -> per_size
val reset : t -> unit

(** {1 Derived rates (fractions in [0,1]; [nan] when the denominator is
    zero)} *)

val percpu_alloc_miss_rate : t -> si:int -> float
val percpu_free_miss_rate : t -> si:int -> float
val global_alloc_miss_rate : t -> si:int -> float
val global_free_miss_rate : t -> si:int -> float

val combined_alloc_miss_rate : t -> si:int -> float
(** Fraction of per-CPU allocations that reached the coalescing layer. *)

val combined_free_miss_rate : t -> si:int -> float

val pp : Format.formatter -> t -> unit
