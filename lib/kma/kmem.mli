(** The general-purpose kernel memory allocator: standard System V
    interface ([kmem_alloc] / [kmem_free]).

    This is the paper's primary contribution assembled from its four
    layers.  Requests up to the largest managed size class go through
    the per-CPU caching layer (13 simulated instructions warm via the
    {!Cookie} interface, 35/32 via this standard interface, which pays a
    function call plus a size-to-class table lookup).  Larger requests
    bypass layers 1–3 and are served by the coalesce-to-vmblk layer.

    All allocation entry points must run on a simulated CPU (inside
    {!Sim.Machine.run}); {!create} and the oracles are host-side. *)

exception Kmem_exhausted
(** Raised when neither virtual nor physical memory can satisfy a
    request.  (Named to avoid clashing with [Stdlib.Out_of_memory].) *)

exception Corruption of string
(** Raised by the debug kernel ([Params.debug]): a freed block's poison
    was overwritten (use-after-free write) or a block was freed while
    fully poisoned (probable double free). *)

type t = Ctx.t

val create : Sim.Machine.t -> ?params:Params.t -> ?numa_global:bool -> unit -> t
(** [create machine ()] lays out and boot-initialises the allocator in
    [machine]'s memory (host-side, uncharged — this is boot).

    [numa_global] (default [false]) turns on the per-node global layer:
    each NUMA node gets its own gblfree pool and lock, and every CPU
    drains/fills against its node's pool (see {!Global}).  Off, the
    allocator is bit-identical to the pre-NUMA build on any machine.

    @raise Invalid_argument if the memory is too small for one vmblk. *)

(** {1 Simulated operations (standard interface)} *)

val alloc : t -> bytes:int -> int
(** [alloc t ~bytes] returns the address of a block of at least [bytes]
    bytes, running on the current simulated CPU.
    @raise Kmem_exhausted when memory is exhausted.
    @raise Invalid_argument if [bytes <= 0] (host-side check). *)

val try_alloc : t -> bytes:int -> int option
(** Like {!alloc} but returns [None] on exhaustion.  With the
    {!Pressure} subsystem enabled, a denied attempt first walks the
    bounded reap-and-retry path (shrink targets, reap, retry — light
    reap first, then full) and returns [None] only when the retries
    are exhausted or provably hopeless. *)

val alloc_class : t -> si:int -> int
(** [alloc_class t ~si] allocates straight from a resolved size class
    (the {!Cookie} path), 0 on exhaustion — same {!Pressure} retry
    semantics as {!try_alloc}, without the standard interface's
    size-to-class lookup charge. *)

val alloc_zeroed : t -> bytes:int -> int
(** [kmem_zalloc]: like {!alloc} with the block cleared (the zeroing
    writes are charged). *)

val free : t -> addr:int -> bytes:int -> unit
(** [free t ~addr ~bytes] frees a block previously allocated with the
    same size.  System V semantics: the caller supplies the size. *)

val size_index : t -> bytes:int -> int option
(** [size_index t ~bytes] performs the charged table lookup mapping a
    request size to its class; [None] for large requests. *)

(** {1 Administrative operations (simulated)} *)

val reap_local : t -> unit
(** [reap_local t] drains every per-CPU cache of the current CPU into
    the global layer. *)

val reap_global : t -> unit
(** [reap_global t] pushes everything in the global layer down through
    the coalescing layers, returning fully-free pages to the VM system.
    Run {!reap_local} on every CPU first for a full shakeout. *)

(** {1 Accessors and oracles (host-side)} *)

val machine : t -> Sim.Machine.t
val layout : t -> Layout.t
val params : t -> Params.t
val stats : t -> Kstats.t
val vmsys : t -> Sim.Vmsys.t

val granted_pages_oracle : t -> int
(** Physical pages currently held from the VM system. *)
