open Sim

(* Per-size radix structure, at [Layout.pagepool_addr]:
   - words [0, line): the pagepool lock (own cache line);
   - word [line]: minhint, a lower bound on the fullest non-empty
     bucket (blocks_per_page + 1 when everything is empty);
   - words [line + nfree], nfree in 1..blocks_per_page: bucket heads,
     doubly-linked lists of page descriptors with exactly [nfree] free
     blocks. *)

let minhint_addr (ly : Layout.t) ~si =
  Layout.pagepool_addr ly ~si + ly.Layout.line_words

let bucket_addr (ly : Layout.t) ~si ~nfree =
  Layout.pagepool_addr ly ~si + ly.Layout.line_words + nfree

let bpp (ly : Layout.t) si = Params.blocks_per_page ly.Layout.params si

let boot_init (ctx : Ctx.t) =
  let mem = Ctx.memory ctx in
  let ly = ctx.Ctx.layout in
  for si = 0 to ly.Layout.nsizes - 1 do
    Memory.set mem (minhint_addr ly ~si) (bpp ly si + 1);
    for nfree = 1 to bpp ly si do
      Memory.set mem (bucket_addr ly ~si ~nfree) 0
    done
  done

(* --- bucket list manipulation (lock held) --- *)

let bucket_insert ly ~si ~nfree pd =
  let head = bucket_addr ly ~si ~nfree in
  let old = Machine.read head in
  Machine.write (pd + Vmblk.pd_next) old;
  Machine.write (pd + Vmblk.pd_prev) 0;
  if old <> 0 then Machine.write (old + Vmblk.pd_prev) pd;
  Machine.write head pd;
  let hint = minhint_addr ly ~si in
  if Machine.read hint > nfree then Machine.write hint nfree

let bucket_remove ly ~si ~nfree pd =
  let head = bucket_addr ly ~si ~nfree in
  let prev = Machine.read (pd + Vmblk.pd_prev) in
  let next = Machine.read (pd + Vmblk.pd_next) in
  if prev = 0 then Machine.write head next
  else Machine.write (prev + Vmblk.pd_next) next;
  if next <> 0 then Machine.write (next + Vmblk.pd_prev) prev

(* Ablation policy: scan buckets from the emptiest page down (no hint
   maintenance; this path is for experiments, not production). *)
let find_emptiest ly ~si =
  let rec scan b =
    if b < 1 then 0
    else
      let pd = Machine.read (bucket_addr ly ~si ~nfree:b) in
      if pd <> 0 then pd else scan (b - 1)
  in
  scan (bpp ly si)

(* Find the non-empty bucket with the fewest free blocks, advancing the
   hint past exhausted buckets.  Returns its page descriptor or 0. *)
let find_fullest ly ~si =
  let hint = minhint_addr ly ~si in
  let limit = bpp ly si in
  let rec scan b =
    if b > limit then begin
      Machine.write hint (limit + 1);
      0
    end
    else
      let pd = Machine.read (bucket_addr ly ~si ~nfree:b) in
      if pd <> 0 then begin
        Machine.write hint b;
        pd
      end
      else scan (b + 1)
  in
  scan (Machine.read hint)

(* Split a fresh page into blocks: descriptor becomes [st_split] with a
   full intra-page freelist.  The block-link writes are the real cost of
   taking a page, on top of the VM grant. *)
let split_page (ctx : Ctx.t) ~si page =
  let ly = ctx.Ctx.layout in
  let words = Params.size_words ly.Layout.params si in
  let n = bpp ly si in
  let debug = ly.Layout.params.Params.debug in
  let pd = Layout.pd_of_page ly ~page_addr:page in
  Machine.write (pd + Vmblk.pd_state) Vmblk.st_split;
  Machine.write (pd + Vmblk.pd_sizeidx) si;
  Machine.write (pd + Vmblk.pd_nfree) n;
  let rec chain i acc =
    if i < 0 then acc
    else begin
      let blk = page + (i * words) in
      Machine.write (blk + Freelist.link) acc;
      (* Debug kernels hand out poisoned blocks from fresh pages too,
         so the alloc-side check holds uniformly. *)
      if debug then
        for w = 3 to words - 1 do
          Machine.write (blk + w) Params.debug_poison
        done;
      chain (i - 1) blk
    end
  in
  Machine.write (pd + Vmblk.pd_blkhead) (chain (n - 1) 0);
  bucket_insert ly ~si ~nfree:n pd

let get_blocks (ctx : Ctx.t) ~si ~want =
  assert (want >= 1);
  let ly = ctx.Ctx.layout in
  let st = Kstats.size ctx.Ctx.stats si in
  Sim.Spinlock.with_lock ctx.Ctx.plocks.(si) (fun () ->
      let rec gather acc got =
        if got >= want then (acc, got)
        else
          match
            (match (ly.Layout.params).Params.page_policy with
            | Params.Fullest_first -> find_fullest ly ~si
            | Params.Emptiest_first -> find_emptiest ly ~si)
          with
          | 0 ->
              (* No partially-free pages: split a fresh one. *)
              let page = Vmblk.alloc_pages ctx ~npages:1 in
              if page = 0 then (acc, got)
              else begin
                st.Kstats.pages_grabbed <- st.Kstats.pages_grabbed + 1;
                if Trace.on () then
                  Trace.emit (Flightrec.Event.Page_grab { si; page });
                split_page ctx ~si page;
                gather acc got
              end
          | pd ->
              let nfree = Machine.read (pd + Vmblk.pd_nfree) in
              let take = min nfree (want - got) in
              let rec pop acc k =
                if k = 0 then acc
                else begin
                  let blk = Machine.read (pd + Vmblk.pd_blkhead) in
                  Machine.write (pd + Vmblk.pd_blkhead)
                    (Machine.read (blk + Freelist.link));
                  Machine.write (blk + Freelist.link) acc;
                  pop blk (k - 1)
                end
              in
              let acc = pop acc take in
              let nfree' = nfree - take in
              Machine.write (pd + Vmblk.pd_nfree) nfree';
              bucket_remove ly ~si ~nfree pd;
              if nfree' > 0 then bucket_insert ly ~si ~nfree:nfree' pd;
              gather acc (got + take)
      in
      let head, got = gather 0 0 in
      st.Kstats.page_block_gets <- st.Kstats.page_block_gets + got;
      (head, got))

let put_chain (ctx : Ctx.t) ~si head =
  let ly = ctx.Ctx.layout in
  let st = Kstats.size ctx.Ctx.stats si in
  let full = bpp ly si in
  Freelist.iter_chain head (fun blk ~next:_ ->
      st.Kstats.page_block_puts <- st.Kstats.page_block_puts + 1;
      let pd = Vmblk.pd_of_block ctx blk in
      assert (Machine.read (pd + Vmblk.pd_state) = Vmblk.st_split);
      assert (Machine.read (pd + Vmblk.pd_sizeidx) = si);
      let nfree = Machine.read (pd + Vmblk.pd_nfree) in
      Machine.write (blk + Freelist.link)
        (Machine.read (pd + Vmblk.pd_blkhead));
      Machine.write (pd + Vmblk.pd_blkhead) blk;
      let nfree' = nfree + 1 in
      Machine.write (pd + Vmblk.pd_nfree) nfree';
      if nfree > 0 then bucket_remove ly ~si ~nfree pd;
      if nfree' = full then begin
        (* Page fully free: return it at once. *)
        st.Kstats.pages_returned <- st.Kstats.pages_returned + 1;
        let page = Layout.page_of_pd ly ~pd in
        if Trace.on () then
          Trace.emit (Flightrec.Event.Page_return { si; page });
        Vmblk.free_pages ctx ~page ~npages:1
      end
      else bucket_insert ly ~si ~nfree:nfree' pd)

let put_blocks (ctx : Ctx.t) ~si ~head ~count =
  assert (count >= 0);
  if head <> 0 then
    Sim.Spinlock.with_lock ctx.Ctx.plocks.(si) (fun () ->
        put_chain ctx ~si head)

let put_block (ctx : Ctx.t) ~si blk =
  Machine.write (blk + Freelist.link) 0;
  put_blocks ctx ~si ~head:blk ~count:1

(* --- host-side oracles --- *)

let bucket_pages_oracle (ctx : Ctx.t) ~si =
  let mem = Ctx.memory ctx in
  let ly = ctx.Ctx.layout in
  let rec walk pd acc =
    if pd = 0 then List.rev acc
    else walk (Memory.get mem (pd + Vmblk.pd_next)) (pd :: acc)
  in
  let rec buckets b acc =
    if b > bpp ly si then List.rev acc
    else
      let pages = walk (Memory.get mem (bucket_addr ly ~si ~nfree:b)) [] in
      buckets (b + 1) (if pages = [] then acc else (b, pages) :: acc)
  in
  buckets 1 []

let minhint_oracle (ctx : Ctx.t) ~si =
  Memory.get (Ctx.memory ctx) (minhint_addr ctx.Ctx.layout ~si)

let free_blocks_oracle (ctx : Ctx.t) ~si =
  List.fold_left
    (fun acc (nfree, pages) -> acc + (nfree * List.length pages))
    0
    (bucket_pages_oracle ctx ~si)
