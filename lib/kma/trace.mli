(** Flight-recorder emission helper shared by the allocator layers.

    Not part of the paper's design: this is the reproduction's
    observability seam, and it must not perturb what it observes — the
    cycle counts of the paper's Measurements section (experiments
    E1–E8) are bit-identical with tracing on or off.

    Wraps {!Flightrec.Recorder.emit} with the current simulated CPU and
    clock ({!Sim.Machine.cpu_id} / {!Sim.Machine.now} are free of
    charge), so an instrumentation site is

    {[ if Trace.on () then Trace.emit (Flightrec.Event.Alloc ...) ]}

    and the disabled path is the single branch of [Trace.on]. *)

val on : unit -> bool
(** True iff a flight recorder is installed and enabled. *)

val emit : Flightrec.Event.kind -> unit
(** Record one event stamped with the current CPU and simulated time.
    Must run inside a simulated program; always guard with {!on} so the
    event value is not even constructed when recording is off. *)
