(** Flight-recorder emission helper shared by the allocator layers.

    Wraps {!Flightrec.Recorder.emit} with the current simulated CPU and
    clock ({!Sim.Machine.cpu_id} / {!Sim.Machine.now} are free of
    charge), so an instrumentation site is

    {[ if Trace.on () then Trace.emit (Flightrec.Event.Alloc ...) ]}

    and the disabled path is the single branch of [Trace.on]. *)

val on : unit -> bool
(** True iff a flight recorder is installed and enabled. *)

val emit : Flightrec.Event.kind -> unit
(** Record one event stamped with the current CPU and simulated time.
    Must run inside a simulated program; always guard with {!on} so the
    event value is not even constructed when recording is off. *)
