(** Shared allocator context threaded through every layer: the
    per-engine allocator state the paper's Design section distributes
    across its four layers, minus the parts that live in simulated
    memory.

    Created once at boot by {!Kmem.create}; the layer modules
    ({!Percpu}, {!Global}, {!Pagepool}, {!Vmblk}) keep all their mutable
    state in simulated memory and use this record only for the machine
    handle, the layout constants, the lock handles and the host-side
    instrumentation. *)

(** Memory-pressure control block, owned and driven by {!Pressure} but
    stored here so layers 1–2 can consult it without a dependency
    cycle.  Like {!Params}, the desired targets stand in for the
    kernel's compiled-in tunables: reading one from simulated code is
    uncharged (an immediate operand); what *is* charged is propagating
    a changed target into a per-CPU cache's [o_target] word, which
    only the owning CPU does, at the {!Percpu} slow-path safe points
    ([pcc_targets] is the host-side shadow of those words that lets
    the safe-point check cost nothing when nothing changed). *)
type pressure_state = {
  mutable enabled : bool;
      (** when false (the default) every field is inert and the
          allocator behaves exactly as without this subsystem *)
  desired_targets : int array;  (** per-class adaptive [target] *)
  desired_gbltargets : int array;  (** per-class adaptive [gbltarget] *)
  pcc_targets : int array;
      (** shadow of each per-CPU cache's target word, indexed
          [cpu * nsizes + si] *)
  mutable below_default : int;
      (** number of classes currently below their {!Params} default —
          0 means fully recovered, making the grow check O(1) *)
  mutable denial_streak : int;
      (** consecutive allocation-visible denials with no recovery *)
  mutable grants_snapshot : int;  (** VM grant count at last adjustment *)
  mutable denials_snapshot : int;
      (** VM denial count at last adjustment *)
  mutable clean_allocs : int;
      (** denial-free successful allocations since the last adjustment —
          the recovery clock that still ticks when the workload is
          served entirely from the caches and needs no VM grants *)
}

type t = {
  machine : Sim.Machine.t;
  layout : Layout.t;
  vmsys : Sim.Vmsys.t;
  stats : Kstats.t;
  glocks : Sim.Spinlock.t array;
      (** global-layer locks, one per (node, size) indexed
          [node * nsizes + si] — length [nnodes * nsizes]; on a flat
          machine this is exactly the per-size array it always was *)
  plocks : Sim.Spinlock.t array;  (** per-size coalesce-to-page locks *)
  vlock : Sim.Spinlock.t;  (** coalesce-to-vmblk lock *)
  pressure : pressure_state;
  numa_global : bool;
      (** when true, {!Global} keeps a separate gblfree per NUMA node
          and each CPU drains/fills against its own node's pool; when
          false (the default) only node 0's records are ever touched
          and the layer is bit-identical to the pre-NUMA allocator *)
}

val memory : t -> Sim.Memory.t
val params : t -> Params.t

val make_pressure_state : ncpus:int -> params:Params.t -> pressure_state
(** A disabled pressure state with every target at its {!Params}
    default (boot-time, host-side). *)

val desired_target : t -> int -> int
(** [desired_target t si]: the adaptive [target] for class [si]
    (equals the {!Params} default until {!Pressure} shrinks it). *)

val desired_gbltarget : t -> int -> int
