(** Coalesce-to-page layer (layer 3) — the paper's Design-section
    answer to the fragmentation that defeats the mk baseline in its
    Figure 9 worst case: pages coalesce back to fully-free the moment
    their last block returns, so memory moves between size classes.

    Gathers blocks of a given size class back into pages.  Every split
    page's descriptor carries a freelist of its free blocks and a count;
    the instant the count reaches blocks-per-page the page's physical
    memory is returned to the VM system and its virtual page goes back to
    the vmblk layer — online coalescing with no mark-and-sweep pass.

    Partially-free pages sit on a radix-sorted freelist (one bucket per
    free count), so allocation always carves from the page with the
    *fewest* free blocks: nearly-empty pages get time to drain and be
    reclaimed for other sizes or for user processes.

    All simulated operations take the per-size pagepool lock internally.

    Invariants: per-size state is protected by the [pagepool] lock
    (class [kma.pagepool]), taken only under (or independently of) a
    [kma.gbl] lock and before the [kma.vmblk] lock — the middle rung of
    the gbl -> pagepool -> vmblk order checked by {!Lockcheck}. *)

val boot_init : Ctx.t -> unit
(** Host-side: marks every radix structure empty. *)

val get_blocks : Ctx.t -> si:int -> want:int -> int * int
(** [get_blocks ctx ~si ~want] carves up to [want] blocks of class [si],
    preferring the fullest partially-free pages and splitting fresh
    pages from the vmblk layer when none remain.  Returns a block chain
    (head, count); count may be short of [want] (0 on exhaustion). *)

val put_blocks : Ctx.t -> si:int -> head:int -> count:int -> unit
(** [put_blocks ctx ~si ~head ~count] examines each block of the chain
    individually back into its page (the paper's reason the global layer
    keeps whole lists: this walk is the expensive part). *)

val put_block : Ctx.t -> si:int -> int -> unit
(** Single-block convenience over {!put_blocks}. *)

(** {1 Host-side oracles} *)

val bucket_pages_oracle : Ctx.t -> si:int -> (int * int list) list
(** [(nfree, pages)] for every non-empty radix bucket, ascending. *)

val minhint_oracle : Ctx.t -> si:int -> int
(** Raw [minhint] word: the claimed lower bound on the fullest
    non-empty bucket ([blocks_per_page + 1] when all are empty). *)

val free_blocks_oracle : Ctx.t -> si:int -> int
(** Total free blocks held in partially-free pages of class [si]. *)
