type pressure_state = {
  mutable enabled : bool;
  desired_targets : int array;
  desired_gbltargets : int array;
  pcc_targets : int array;
  mutable below_default : int;
  mutable denial_streak : int;
  mutable grants_snapshot : int;
  mutable denials_snapshot : int;
  mutable clean_allocs : int;
}

type t = {
  machine : Sim.Machine.t;
  layout : Layout.t;
  vmsys : Sim.Vmsys.t;
  stats : Kstats.t;
  glocks : Sim.Spinlock.t array;
  plocks : Sim.Spinlock.t array;
  vlock : Sim.Spinlock.t;
  pressure : pressure_state;
  numa_global : bool;
}

let memory t = Sim.Machine.memory t.machine
let params t = t.layout.Layout.params

let make_pressure_state ~ncpus ~(params : Params.t) =
  let nsizes = Params.nsizes params in
  {
    enabled = false;
    desired_targets = Array.copy params.Params.targets;
    desired_gbltargets = Array.copy params.Params.gbltargets;
    pcc_targets =
      Array.init (ncpus * nsizes) (fun i ->
          params.Params.targets.(i mod nsizes));
    below_default = 0;
    denial_streak = 0;
    grants_snapshot = 0;
    denials_snapshot = 0;
    clean_allocs = 0;
  }

let desired_target t si = t.pressure.desired_targets.(si)
let desired_gbltarget t si = t.pressure.desired_gbltargets.(si)
