open Sim

(* Charged cost of one adaptation decision: the kernel would update a
   small tunable table under a short critical section. *)
let w_adjust = 6

let state (ctx : Ctx.t) = ctx.Ctx.pressure
let enabled (ctx : Ctx.t) = (state ctx).Ctx.enabled
let policy (ctx : Ctx.t) = (Ctx.params ctx).Params.pressure

(* Classes whose adaptive bounds sit below the boot-time defaults.
   Recomputed after every adjustment (host-side, O(nsizes)); the count
   lets [note_success] cost a single host branch once recovery is
   complete. *)
let recount (ctx : Ctx.t) =
  let pr = state ctx in
  let p = Ctx.params ctx in
  let below = ref 0 in
  for si = 0 to Params.nsizes p - 1 do
    if
      pr.Ctx.desired_targets.(si) < p.Params.targets.(si)
      || pr.Ctx.desired_gbltargets.(si) < p.Params.gbltargets.(si)
    then incr below
  done;
  pr.Ctx.below_default <- !below

let reset_desired (ctx : Ctx.t) =
  let pr = state ctx in
  let p = Ctx.params ctx in
  let n = Params.nsizes p in
  Array.blit p.Params.targets 0 pr.Ctx.desired_targets 0 n;
  Array.blit p.Params.gbltargets 0 pr.Ctx.desired_gbltargets 0 n;
  pr.Ctx.below_default <- 0;
  pr.Ctx.denial_streak <- 0;
  pr.Ctx.clean_allocs <- 0

let snapshot_vm (ctx : Ctx.t) =
  let pr = state ctx in
  pr.Ctx.grants_snapshot <- Vmsys.grant_count ctx.Ctx.vmsys;
  pr.Ctx.denials_snapshot <- Vmsys.denial_count ctx.Ctx.vmsys

let enable (ctx : Ctx.t) =
  reset_desired ctx;
  snapshot_vm ctx;
  (state ctx).Ctx.enabled <- true

(* Host-side administrative reset, boot idiom: put the defaults back
   into every per-CPU target word directly (uncharged, like
   [Percpu.boot_init]), since with the subsystem off the safe-point
   sync that would otherwise repair them never runs. *)
let disable (ctx : Ctx.t) =
  let pr = state ctx in
  pr.Ctx.enabled <- false;
  reset_desired ctx;
  let mem = Ctx.memory ctx in
  let ly = ctx.Ctx.layout in
  for cpu = 0 to ly.Layout.ncpus - 1 do
    for si = 0 to ly.Layout.nsizes - 1 do
      let tgt = ly.Layout.params.Params.targets.(si) in
      pr.Ctx.pcc_targets.((cpu * ly.Layout.nsizes) + si) <- tgt;
      Memory.set mem (Layout.pcc_addr ly ~cpu ~si + Percpu.o_target) tgt
    done
  done

(* Multiplicative decrease of every class's bounds (memory pressure is
   a machine-wide condition, so all classes give ground together). *)
let note_denial (ctx : Ctx.t) =
  let pr = state ctx in
  if pr.Ctx.enabled then begin
    let p = Ctx.params ctx in
    let pol = policy ctx in
    pr.Ctx.denial_streak <- pr.Ctx.denial_streak + 1;
    let changed = ref false in
    for si = 0 to Params.nsizes p - 1 do
      let nt =
        max pol.Params.min_target
          (pr.Ctx.desired_targets.(si) lsr pol.Params.shrink_shift)
      in
      let ng = max 1 (pr.Ctx.desired_gbltargets.(si) lsr pol.Params.shrink_shift) in
      if nt <> pr.Ctx.desired_targets.(si) || ng <> pr.Ctx.desired_gbltargets.(si)
      then begin
        changed := true;
        pr.Ctx.desired_targets.(si) <- nt;
        pr.Ctx.desired_gbltargets.(si) <- ng;
        ctx.Ctx.stats.Kstats.target_shrinks <-
          ctx.Ctx.stats.Kstats.target_shrinks + 1;
        if Trace.on () then
          Trace.emit
            (Flightrec.Event.Target_adjust
               { si; target = nt; gbltarget = ng; grow = false })
      end
    done;
    if !changed then begin
      recount ctx;
      Machine.work w_adjust
    end;
    pr.Ctx.clean_allocs <- 0;
    snapshot_vm ctx
  end

(* Additive recovery toward the defaults, one step per [grow_grants]
   denial-free VM grants — or per [grow_allocs] denial-free successful
   allocations, the fallback clock for when the shrunk allocator is
   served entirely from its own caches and stops asking the VM system
   for anything (no grants means no grant-based ticks, but it is just
   as much evidence that the pressure has passed).  Called from
   allocation success paths; a single host branch when nothing remains
   shrunk. *)
let note_success (ctx : Ctx.t) =
  let pr = state ctx in
  if pr.Ctx.enabled && pr.Ctx.below_default > 0 then begin
    let v = ctx.Ctx.vmsys in
    let g = Vmsys.grant_count v in
    let d = Vmsys.denial_count v in
    if d <> pr.Ctx.denials_snapshot then begin
      (* Denials are still arriving: restart the recovery clock. *)
      pr.Ctx.grants_snapshot <- g;
      pr.Ctx.denials_snapshot <- d;
      pr.Ctx.clean_allocs <- 0
    end
    else begin
      pr.Ctx.clean_allocs <- pr.Ctx.clean_allocs + 1;
      let pol = policy ctx in
      if
        g - pr.Ctx.grants_snapshot >= pol.Params.grow_grants
        || pr.Ctx.clean_allocs >= pol.Params.grow_allocs
      then begin
        let p = Ctx.params ctx in
        pr.Ctx.denial_streak <- 0;
        for si = 0 to Params.nsizes p - 1 do
          let nt =
            min p.Params.targets.(si)
              (pr.Ctx.desired_targets.(si) + pol.Params.grow_step)
          in
          let ng =
            min p.Params.gbltargets.(si)
              (pr.Ctx.desired_gbltargets.(si) + pol.Params.grow_step)
          in
          if
            nt <> pr.Ctx.desired_targets.(si)
            || ng <> pr.Ctx.desired_gbltargets.(si)
          then begin
            pr.Ctx.desired_targets.(si) <- nt;
            pr.Ctx.desired_gbltargets.(si) <- ng;
            ctx.Ctx.stats.Kstats.target_grows <-
              ctx.Ctx.stats.Kstats.target_grows + 1;
            if Trace.on () then
              Trace.emit
                (Flightrec.Event.Target_adjust
                   { si; target = nt; gbltarget = ng; grow = true })
          end
        done;
        recount ctx;
        Machine.work w_adjust;
        pr.Ctx.grants_snapshot <- g;
        pr.Ctx.denials_snapshot <- d;
        pr.Ctx.clean_allocs <- 0
      end
    end
  end

(* One kmem_reap pass on the current CPU.  Light: flush the reserve
   (aux) lists and trim the global layer to one list per class.  Full:
   flush both halves and empty the global layer.  Either way the
   coalesce-to-page layer returns every page that becomes fully free
   to the VM system immediately, which is what makes the retry after a
   genuine (non-injected) denial succeed.  Returns the number of
   physical pages that made it back. *)
let reap (ctx : Ctx.t) ~full =
  let v = ctx.Ctx.vmsys in
  let before = Vmsys.reclaim_count v in
  if Trace.on () then Trace.emit (Flightrec.Event.Reap { full });
  let nsizes = ctx.Ctx.layout.Layout.nsizes in
  for si = 0 to nsizes - 1 do
    if full then begin
      Percpu.drain ctx ~si;
      Global.drain_all ctx ~si
    end
    else begin
      Percpu.drain_aux ctx ~si;
      Global.trim ctx ~si ~keep:1
    end
  done;
  let pages = Vmsys.reclaim_count v - before in
  let st = ctx.Ctx.stats in
  st.Kstats.reaps <- st.Kstats.reaps + 1;
  st.Kstats.reap_pages <- st.Kstats.reap_pages + pages;
  pages

(* The bounded retry path wrapped around an allocation attempt:
   attempt, and on failure shrink + reap + retry, degrading to 0 after
   [max_retries] attempts or as soon as the situation is provably
   hopeless (nothing reclaimed and the VM system empty). *)
let with_retries (ctx : Ctx.t) (attempt : unit -> int) =
  if not (enabled ctx) then attempt ()
  else begin
    let st = ctx.Ctx.stats in
    let max_retries = (policy ctx).Params.max_retries in
    let rec go n =
      let a = attempt () in
      if a <> 0 then begin
        if n > 0 then
          st.Kstats.pressure_retries <- st.Kstats.pressure_retries + 1;
        note_success ctx;
        a
      end
      else if n >= max_retries then begin
        st.Kstats.pressure_failures <- st.Kstats.pressure_failures + 1;
        0
      end
      else begin
        note_denial ctx;
        let reclaimed = reap ctx ~full:(n > 0) in
        if reclaimed = 0 && Vmsys.available ctx.Ctx.vmsys = 0 && n > 0 then begin
          (* A full reap found nothing and the VM system is empty:
             every remaining block is live (or cached by another CPU,
             which we cannot touch) — retrying cannot help. *)
          st.Kstats.pressure_failures <- st.Kstats.pressure_failures + 1;
          0
        end
        else go (n + 1)
      end
    in
    go 0
  end

(* --- host-side oracles --- *)

let desired_target (ctx : Ctx.t) ~si = (state ctx).Ctx.desired_targets.(si)

let desired_gbltarget (ctx : Ctx.t) ~si =
  (state ctx).Ctx.desired_gbltargets.(si)

let at_defaults (ctx : Ctx.t) =
  recount ctx;
  (state ctx).Ctx.below_default = 0

let denial_streak (ctx : Ctx.t) = (state ctx).Ctx.denial_streak
