open Sim

(* Control block (one 4096-byte kmem allocation): per-CPU records of
   [line] words each, holding the head and count of a singly-linked
   list of constructed objects (linked through their first word, like
   every freelist here — constructors must therefore treat word 0 as
   scratch, which they do since they run before the object is handed
   out). *)

let ctl_bytes = 4096

type t = {
  kmem : Kmem.t;
  cookie : Cookie.t;
  bytes : int;
  ctor : int -> unit;
  dtor : (int -> unit) option;
  target : int;
  ctl : int;
  stride : int;
  mutable nctor : int;
  mutable nreuse : int;
}

let pcc t ~cpu = t.ctl + (cpu * t.stride)
let o_head = 0
let o_count = 1

let create kmem ~bytes ~ctor ?dtor ?(target = 8) () =
  if target < 1 then invalid_arg "Kma.Objcache.create: target < 1";
  let ly = Kmem.layout kmem in
  let stride = ly.Layout.line_words in
  if ly.Layout.ncpus * stride * Params.bytes_per_word > ctl_bytes then
    invalid_arg "Kma.Objcache.create: too many CPUs for the control block";
  let cookie = Cookie.of_bytes_host kmem ~bytes in
  match Kmem.try_alloc kmem ~bytes:ctl_bytes with
  | None -> None
  | Some ctl ->
      for cpu = 0 to ly.Layout.ncpus - 1 do
        Machine.write (ctl + (cpu * stride) + o_head) 0;
        Machine.write (ctl + (cpu * stride) + o_count) 0
      done;
      Some
        {
          kmem;
          cookie;
          bytes;
          ctor;
          dtor;
          target;
          ctl;
          stride;
          nctor = 0;
          nreuse = 0;
        }

let alloc t =
  let cpu = Machine.cpu_id () in
  let p = pcc t ~cpu in
  Machine.irq_disable ();
  let head = Machine.read (p + o_head) in
  let obj =
    if head <> 0 then begin
      Machine.write (p + o_head) (Machine.read head);
      Machine.write (p + o_count) (Machine.read (p + o_count) - 1);
      Machine.irq_enable ();
      t.nreuse <- t.nreuse + 1;
      if Trace.on () then
        Trace.emit (Flightrec.Event.Obj_alloc { hit = true });
      head
    end
    else begin
      Machine.irq_enable ();
      if Trace.on () then
        Trace.emit (Flightrec.Event.Obj_alloc { hit = false });
      match Cookie.try_alloc t.kmem t.cookie with
      | None -> 0
      | Some a ->
          t.nctor <- t.nctor + 1;
          t.ctor a;
          a
    end
  in
  obj

let release t addr =
  let cpu = Machine.cpu_id () in
  let p = pcc t ~cpu in
  Machine.irq_disable ();
  let count = Machine.read (p + o_count) in
  if count < t.target then begin
    Machine.write addr (Machine.read (p + o_head));
    Machine.write (p + o_head) addr;
    Machine.write (p + o_count) (count + 1);
    Machine.irq_enable ();
    if Trace.on () then
      Trace.emit (Flightrec.Event.Obj_free { cached = true })
  end
  else begin
    Machine.irq_enable ();
    if Trace.on () then
      Trace.emit (Flightrec.Event.Obj_free { cached = false });
    (match t.dtor with Some d -> d addr | None -> ());
    Cookie.free t.kmem t.cookie addr
  end

let destroy t =
  let ly = Kmem.layout t.kmem in
  for cpu = 0 to ly.Layout.ncpus - 1 do
    let p = pcc t ~cpu in
    let rec drain obj =
      if obj <> 0 then begin
        let next = Machine.read obj in
        (match t.dtor with Some d -> d obj | None -> ());
        Cookie.free t.kmem t.cookie obj;
        drain next
      end
    in
    drain (Machine.read (p + o_head));
    Machine.write (p + o_head) 0;
    Machine.write (p + o_count) 0
  done;
  Kmem.free t.kmem ~addr:t.ctl ~bytes:ctl_bytes

let ctor_calls t = t.nctor
let reuses t = t.nreuse
