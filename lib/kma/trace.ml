let on = Flightrec.Recorder.on

let emit kind =
  Flightrec.Recorder.emit
    ~cpu:(Sim.Machine.cpu_id ())
    ~time:(Sim.Machine.now ())
    kind
