let on = Flightrec.Recorder.on

(* Emits must not perform simulator operations: even a free operation is
   a yield point that changes how same-instant host code interleaves
   across CPUs (see [Sim.Machine.running]).  The host-side accessor
   keeps recorder-on runs bit-identical to recorder-off runs. *)
let emit kind =
  match Sim.Machine.running () with
  | Some (cpu, time) -> Flightrec.Recorder.emit ~cpu ~time kind
  | None -> ()
