open Sim

exception Kmem_exhausted

exception Corruption = Percpu.Corruption

type t = Ctx.t

(* Straight-line charges for the standard functional interface beyond
   the 13-instruction per-CPU fast path: a function call, argument
   marshalling and the size-to-class mapping.  Calibrated so a warm
   standard allocation retires 35 instructions and a warm free 32
   (experiment E2; one instruction of each is the charged table read). *)
let w_std_alloc = 21
let w_std_free = 18

let create machine ?(params = Params.default) ?(numa_global = false) () =
  let cfg = Machine.config machine in
  let layout = Layout.make cfg params in
  let mem = Machine.memory machine in
  let nsizes = layout.Layout.nsizes in
  let nnodes = layout.Layout.nnodes in
  (* Boot-time: size-to-class table. *)
  let gran = params.Params.sizes_bytes.(0) in
  for idx = 0 to layout.Layout.size_table_len - 1 do
    let bytes = (idx + 1) * gran in
    match Params.size_index_of_bytes params bytes with
    | Some si -> Memory.set mem (layout.Layout.size_table_base + idx) si
    | None -> assert false
  done;
  let total_pages =
    match params.Params.phys_pages with
    | Some p -> p
    | None -> Layout.total_data_pages layout
  in
  let vmsys =
    Vmsys.create ~total_pages ~grant_cost:params.Params.vm_grant_cost
      ~reclaim_cost:params.Params.vm_reclaim_cost
  in
  let ctx =
    {
      Ctx.machine;
      layout;
      vmsys;
      stats = Kstats.create ~nsizes;
      glocks =
        (* One lock per (node, size), node-major so node 0's slice keeps
           the historical per-size indices. *)
        Array.init (nnodes * nsizes) (fun i ->
            Spinlock.init mem
              (Layout.gbl_node_addr layout ~node:(i / nsizes)
                 ~si:(i mod nsizes)));
      plocks =
        Array.init nsizes (fun si ->
            Spinlock.init mem (Layout.pagepool_addr layout ~si));
      vlock = Spinlock.init mem layout.Layout.vmctl_base;
      pressure =
        Ctx.make_pressure_state ~ncpus:layout.Layout.ncpus ~params;
      numa_global;
    }
  in
  Percpu.boot_init ctx;
  Global.boot_init ctx;
  Pagepool.boot_init ctx;
  Vmblk.boot_init ctx;
  (* Name the allocator's locks for flight-recorder reports and declare
     their lockcheck classes (no-ops when neither is installed;
     boot-time, host-side).  Classes follow the legal nesting
     gbl -> pagepool -> vmblk; all three are [vm_safe] because the
     refill chain legitimately reaches [Sim.Vmsys] with them held — see
     DESIGN.md "Concurrency invariants" for why this deviates from the
     paper's rule. *)
  for si = 0 to nsizes - 1 do
    let bytes = params.Params.sizes_bytes.(si) in
    for node = 0 to nnodes - 1 do
      let gbl = Layout.gbl_node_addr layout ~node ~si in
      let name =
        if node = 0 then Printf.sprintf "gbl[%dB]" bytes
        else Printf.sprintf "gbl[n%d][%dB]" node bytes
      in
      Flightrec.Recorder.note_lock ~addr:gbl name;
      Lockcheck.register_lock ~addr:gbl ~name ~cls:"kma.gbl" ~vm_safe:true ()
    done;
    let pp = Layout.pagepool_addr layout ~si in
    Flightrec.Recorder.note_lock ~addr:pp
      (Printf.sprintf "pagepool[%dB]" bytes);
    Lockcheck.register_lock ~addr:pp
      ~name:(Printf.sprintf "pagepool[%dB]" bytes)
      ~cls:"kma.pagepool" ~vm_safe:true ()
  done;
  Flightrec.Recorder.note_lock ~addr:layout.Layout.vmctl_base "vmblk";
  Lockcheck.register_lock ~addr:layout.Layout.vmctl_base ~name:"vmblk"
    ~cls:"kma.vmblk" ~vm_safe:true ();
  ctx

let max_small_bytes (t : t) =
  let p = Ctx.params t in
  p.Params.sizes_bytes.(Array.length p.Params.sizes_bytes - 1)

(* Charged size-to-class mapping: one table read. *)
let lookup_si (t : t) ~bytes =
  let ly = t.Ctx.layout in
  Machine.read
    (ly.Layout.size_table_base
    + ((bytes - 1) lsr ly.Layout.size_table_gran_shift))

let size_index (t : t) ~bytes =
  if bytes <= 0 then invalid_arg "Kma.Kmem.size_index: bytes <= 0";
  if bytes > max_small_bytes t then None else Some (lookup_si t ~bytes)

(* Small and large attempts both go through [Pressure.with_retries]:
   one host branch when the pressure subsystem is disabled, the
   bounded reap-and-retry path when enabled. *)
let alloc_class (t : t) ~si = Pressure.with_retries t (fun () -> Percpu.alloc t ~si)

let alloc_small (t : t) ~bytes =
  Machine.work w_std_alloc;
  alloc_class t ~si:(lookup_si t ~bytes)

let alloc_large (t : t) ~bytes =
  Pressure.with_retries t (fun () -> Vmblk.alloc_large t ~bytes)

let try_alloc (t : t) ~bytes =
  if bytes <= 0 then invalid_arg "Kma.Kmem.try_alloc: bytes <= 0";
  let a =
    if bytes > max_small_bytes t then alloc_large t ~bytes
    else alloc_small t ~bytes
  in
  if a = 0 then None else Some a

let alloc (t : t) ~bytes =
  if bytes <= 0 then invalid_arg "Kma.Kmem.alloc: bytes <= 0";
  let a =
    if bytes > max_small_bytes t then alloc_large t ~bytes
    else alloc_small t ~bytes
  in
  if a = 0 then raise Kmem_exhausted;
  a

let alloc_zeroed (t : t) ~bytes =
  let a = alloc t ~bytes in
  (* System V kmem_zalloc: the caller gets cleared memory; the zeroing
     writes are honestly charged. *)
  let words =
    if bytes > max_small_bytes t then
      (bytes + Params.bytes_per_word - 1) / Params.bytes_per_word
    else
      match Params.size_index_of_bytes (Ctx.params t) bytes with
      | Some si -> Params.size_words (Ctx.params t) si
      | None -> assert false
  in
  for w = 0 to words - 1 do
    Machine.write (a + w) 0
  done;
  a

let free (t : t) ~addr ~bytes =
  if bytes <= 0 then invalid_arg "Kma.Kmem.free: bytes <= 0";
  if bytes > max_small_bytes t then Vmblk.free_large t ~addr ~bytes
  else begin
    Machine.work w_std_free;
    Percpu.free t ~si:(lookup_si t ~bytes) addr
  end

let reap_local (t : t) =
  for si = 0 to t.Ctx.layout.Layout.nsizes - 1 do
    Percpu.drain t ~si
  done

let reap_global (t : t) =
  for si = 0 to t.Ctx.layout.Layout.nsizes - 1 do
    Global.drain_all t ~si
  done

let machine (t : t) = t.Ctx.machine
let layout (t : t) = t.Ctx.layout
let params (t : t) = Ctx.params t
let stats (t : t) = t.Ctx.stats
let vmsys (t : t) = t.Ctx.vmsys
let granted_pages_oracle (t : t) = Vmsys.granted t.Ctx.vmsys
