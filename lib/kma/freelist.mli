(** Singly-linked freelists threaded through the free blocks themselves
    — the representation the paper's Design section assumes throughout:
    a free block's own memory holds all allocator metadata, so the
    per-CPU caches (Figure 2) and the global layer's list-of-lists
    hand-off move whole lists by exchanging a single head pointer.

    Word 0 of every free block is its link to the next free block (0 is
    nil).  When a block heads a *target-sized list* in the global layer's
    list-of-lists, word 1 links to the next list's head and word 2 holds
    the list's block count — every managed size class is at least four
    words, so the metadata always fits.

    All operations here run on the simulated machine and are charged. *)

val link : int
(** Offset of the next-block link within a block (word 0). *)

val next_list : int
(** Offset of the next-list link within a list head (word 1). *)

val count : int
(** Offset of the block count within a list head (word 2). *)

val push : head:int -> int -> unit
(** [push ~head a] pushes block [a] onto the list whose head pointer
    lives at address [head]. *)

val pop : head:int -> int
(** [pop ~head] pops a block, or returns 0 when the list is empty. *)

val take_n : head:int -> n:int -> int * int
(** [take_n ~head ~n] pops up to [n] blocks and chains them into a fresh
    list, returning its head (0 if none) and actual length. *)

val iter_chain : int -> (int -> next:int -> unit) -> unit
(** [iter_chain h f] walks a block chain starting at [h], reading each
    block's link word *before* calling [f blk ~next] so that [f] may
    repurpose the block's link word. *)

val length_oracle : Sim.Memory.t -> int -> int
(** Host-side chain length (uncharged; test oracle).  Raises
    [Invalid_argument] after 1_000_000 nodes (cycle guard). *)
