open Sim

type t = { si : int }

let of_bytes_host (kmem : Kmem.t) ~bytes =
  match Params.size_index_of_bytes (Ctx.params kmem) bytes with
  | Some si -> { si }
  | None ->
      invalid_arg
        (Printf.sprintf "Kma.Cookie: %d bytes exceeds the largest class"
           bytes)

let get (kmem : Kmem.t) ~bytes =
  Machine.work 8 (* the one-off translation call *);
  match Kmem.size_index kmem ~bytes with
  | Some si -> { si }
  | None ->
      invalid_arg
        (Printf.sprintf "Kma.Cookie: %d bytes exceeds the largest class"
           bytes)

let size_index c = c.si
let bytes (kmem : Kmem.t) c = (Ctx.params kmem).Params.sizes_bytes.(c.si)

let try_alloc (kmem : Kmem.t) c =
  let a = Kmem.alloc_class kmem ~si:c.si in
  if a = 0 then None else Some a

let alloc (kmem : Kmem.t) c =
  let a = Kmem.alloc_class kmem ~si:c.si in
  if a = 0 then raise Kmem.Kmem_exhausted;
  a

let free (kmem : Kmem.t) c a = Percpu.free kmem ~si:c.si a
