(* Physical cores per /proc/cpuinfo (Linux); 0 when unreadable.  Used
   only to clamp the default fan-out — [Domain.recommended_domain_count]
   can exceed the truth in containers with inflated cpusets, and
   spawning more simulator domains than cores just adds scheduler
   thrash to every cell's wall time. *)
let host_cores () =
  match open_in "/proc/cpuinfo" with
  | exception Sys_error _ -> 0
  | ic ->
      let n = ref 0 in
      (try
         while true do
           let line = input_line ic in
           if String.length line >= 9 && String.sub line 0 9 = "processor" then
             incr n
         done
       with End_of_file -> ());
      close_in ic;
      !n

let clamp_noted = ref false

let default_jobs () =
  let recommended = max 1 (Domain.recommended_domain_count ()) in
  match host_cores () with
  | 0 -> recommended
  | cores when cores < recommended ->
      if not !clamp_noted then begin
        clamp_noted := true;
        Printf.eprintf
          "note: clamping default --jobs to %d (host has %d cores; \
           recommended_domain_count says %d)\n\
           %!"
          cores cores recommended
      end;
      cores
  | _ -> recommended

(* One slot per input element.  Workers claim slots through a shared
   atomic index (dynamic scheduling: a long cell never makes a short
   one wait behind it on the same worker) and publish into [results]/
   [errors]; Domain.join gives the caller happens-before on every
   slot, so no further synchronization is needed to read them. *)
let map_parallel ~nworkers f items =
  let n = Array.length items in
  let results = Array.make n None in
  let errors = Array.make n None in
  let next = Atomic.make 0 in
  let worker () =
    let rec go () =
      let i = Atomic.fetch_and_add next 1 in
      if i < n then begin
        (match f (Array.unsafe_get items i) with
        | r -> results.(i) <- Some r
        | exception e -> errors.(i) <- Some (e, Printexc.get_raw_backtrace ()));
        go ()
      end
    in
    go ()
  in
  let helpers = List.init (nworkers - 1) (fun _ -> Domain.spawn worker) in
  worker ();
  List.iter Domain.join helpers;
  (* Deterministic error propagation: the smallest failing index wins,
     regardless of which domain ran it or when it finished. *)
  Array.iter
    (function
      | Some (e, bt) -> Printexc.raise_with_backtrace e bt
      | None -> ())
    errors;
  Array.to_list
    (Array.map
       (function Some r -> r | None -> assert false (* every slot ran *))
       results)

let map ~jobs f xs =
  if jobs < 1 then
    invalid_arg (Printf.sprintf "Parallel.map: jobs %d < 1" jobs);
  let n = List.length xs in
  (* The sequential path is literally List.map: same evaluation order,
     same domain, no pool — the bit-identicality baseline. *)
  if jobs = 1 || n <= 1 then List.map f xs
  else map_parallel ~nworkers:(min jobs n) f (Array.of_list xs)
