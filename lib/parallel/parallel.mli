(** Host-side domain-parallel job pool for the experiment harness.

    Reproduction infrastructure with no direct counterpart in the
    paper: every figure, sweep and fuzz matrix in this repository is a
    list of {e independent} deterministic simulations (each cell builds
    its own [Sim.Machine] and allocator), so the harness fans them out
    across OCaml 5 domains and merges results in canonical input
    order.  Parallelism changes only host wall-clock time, never a
    simulated result: a [jobs:1] run and a [jobs:N] run of the same
    sweep are bit-identical (enforced by [test/parallel]).

    Scheduling is dynamic (a shared atomic work index, so long cells do
    not convoy behind short ones) but the {e results} are deterministic:
    slot [i] of the output always holds [f] applied to element [i] of
    the input, and when several cells raise, the exception of the
    smallest input index is the one re-raised.

    Global checker state is the caller's problem, by contract: the
    flight recorder and {!Lockcheck} keep host-global state, so
    sections running with those checkers enabled must pass [jobs:1]
    (the benchmark drivers force this); {!Heapcheck} supports sharding
    via its [shard]/[absorb] API.  See DESIGN.md "Concurrency
    invariants". *)

val host_cores : unit -> int
(** Number of logical processors per [/proc/cpuinfo], or [0] when that
    file is unreadable (non-Linux hosts).  Informational; used by the
    drivers' host records and by {!default_jobs}. *)

val default_jobs : unit -> int
(** The drivers' default for [--jobs]:
    [min (Domain.recommended_domain_count ()) (host_cores ())], clamped
    to at least 1, falling back to the recommended count alone when
    {!host_cores} is unknown.  The first time the clamp actually
    lowers the value a one-line note is printed to stderr, so a run
    whose parallelism surprised you is self-explaining.  An explicit
    [--jobs N] bypasses this entirely. *)

val map : jobs:int -> ('a -> 'b) -> 'a list -> 'b list
(** [map ~jobs f xs] is [List.map f xs], computed by at most [jobs]
    domains (the calling domain participates; [min jobs (length xs) - 1]
    helper domains are spawned for the call and joined before it
    returns).  [jobs:1] degenerates to exactly [List.map f xs] on the
    calling domain — same evaluation order, no domains spawned.

    [f] must be safe to call from another domain: cells that mutate
    host-global state (checker installs, global tables) need [jobs:1]
    or domain-local state.  If any application of [f] raises, the
    exception (with its backtrace) of the smallest input index is
    re-raised after all domains are joined.

    @raise Invalid_argument if [jobs < 1]. *)
