(** Allocation traces: record, synthesise, serialise, transform and
    replay multi-CPU alloc/free event streams against any allocator.

    The paper's evaluation ran live kernel workloads; allocator research
    since has standardised on traces so that one workload can be
    replayed bit-for-bit against competing allocators and mined for
    pathologies.  A trace is a sequence of events over abstract object
    ids; every event names the CPU it runs on and the inter-arrival
    {e gap} (cycles of think time since that CPU's previous event), so a
    recorded workload replays with its timing and its cross-CPU free
    traffic intact.  Replay maps ids to whatever addresses the
    allocator under test returns.

    Traces serialise to a versioned plain-text format: a [kma-trace v2]
    header, then one event per line, [a <cpu> <gap> <id> <bytes>] or
    [f <cpu> <gap> <id>].  Headerless input is parsed as the legacy
    single-CPU v1 format ([a <id> <bytes>] / [f <id>], zero gaps). *)

type event =
  | Alloc of { cpu : int; gap : int; id : int; bytes : int }
  | Free of { cpu : int; gap : int; id : int }

type t = event list

val cpu_of : event -> int
val gap_of : event -> int
val id_of : event -> int

val ncpus : t -> int
(** [ncpus t] is [1 + ] the largest CPU id in [t] (1 for the empty
    trace): the machine width a replay needs. *)

val synthesize :
  ?seed:int ->
  ?live_window:int ->
  ?size_mix:(int * int) array ->
  ?ncpus:int ->
  ?mean_gap:int ->
  ops:int ->
  unit ->
  t
(** [synthesize ~ops ()] builds a well-formed trace: every [Free] names
    a live id, and everything left live is freed at the end (so
    replaying leaves the allocator empty).  [size_mix] weights request
    sizes (defaults to the kernel-ish mix of {!Mixed}); [ncpus]
    (default 1) spreads events over CPUs with naturally-occurring
    cross-CPU frees; [mean_gap] (default 0) draws each event's
    inter-arrival gap uniformly from [[0, 2*mean_gap]]. *)

val validate : t -> (unit, string) result
(** [validate t] checks trace well-formedness: no double allocation of
    an id, no free of a dead id, every id freed by the end, and no
    negative CPU, gap or size field. *)

val to_string : t -> string
(** Serialise in the v2 format (header line included). *)

val of_string : string -> (t, string) result
(** Strict parse of either format; every error is line-numbered.
    Rejects trailing garbage on a line, non-integer fields, negative
    CPUs/gaps, non-positive sizes, duplicate-id allocations, and
    unknown [kma-trace] versions. *)

(** {1 Scaling transforms}

    Replay one recording at production scale: each transform is pure
    and deterministic, so a transformed trace is as reproducible as the
    original. *)

val scale_rate : factor:float -> t -> t
(** [scale_rate ~factor t] divides every inter-arrival gap by [factor]:
    [factor > 1.] replays the same workload at a higher arrival rate.
    @raise Invalid_argument if [factor <= 0]. *)

val fan_out : copies:int -> t -> t
(** [fan_out ~copies t] replays [copies] independent clones of the
    workload side by side: copy [c] of an event runs on
    [cpu + c * ncpus t] with its id deterministically remapped to
    [id * copies + c] (so clones never collide).  [copies = 1] is the
    identity.  @raise Invalid_argument if [copies < 1]. *)

val skew_frees : ?seed:int -> fraction:float -> t -> t
(** [skew_frees ~fraction t] moves that fraction of the [Free] events
    to a different (deterministically drawn) CPU, turning a same-CPU
    workload into a producer/consumer remote-free one.  No-op on
    single-CPU traces.  @raise Invalid_argument if [fraction] is
    outside [[0, 1]]. *)

(** {1 Replay} *)

type result = {
  ops : int;
  failures : int;  (** allocations the allocator could not satisfy *)
  skipped_frees : int;
      (** frees with nothing to release because their allocation was
          denied (or the trace was malformed): a denial run is not
          mistaken for a leak-free run *)
  cycles : int;
}

val replay :
  ?on_op:(cpu:int -> alloc:bool -> latency:int -> unit) ->
  Sim.Machine.t ->
  t ->
  Baseline.Allocator.t ->
  result
(** [replay m t a] replays the whole trace across CPUs
    [0 .. ncpus t - 1] of [m] (host-side call: it runs the machine
    itself).  Each CPU executes its events in trace order, charging the
    event's gap as think time first; a cross-CPU free spin-waits until
    the allocating CPU has published the address, like a real consumer
    polling for work.  [on_op], if given, observes every completed
    operation host-side with its simulated latency (gap and handoff
    wait excluded).
    @raise Invalid_argument if [m] has fewer than [ncpus t] CPUs. *)

(** {2 Windowed replay}

    A pathology analyzer wants quiescent points mid-trace (to sample
    fragmentation, run heap checks).  A session replays the trace in
    windows of global trace order; between [step]s no simulated CPU is
    mid-operation, so host-side sampling is sound. *)

type session

val start : Sim.Machine.t -> Baseline.Allocator.t -> t -> session
(** [start m a t] prepares a replay; nothing runs yet. *)

val step :
  ?on_op:(cpu:int -> alloc:bool -> latency:int -> unit) ->
  session ->
  int ->
  bool
(** [step s n] replays the next [n] events (in global trace order,
    partitioned per CPU) and returns whether events remain.
    @raise Invalid_argument if [n < 1]. *)

val live_bytes : session -> int
(** Bytes currently allocated-and-not-freed by the replay: the honest
    live set a fragmentation ratio compares pages held against. *)

val finish : session -> result

val record : Baseline.Allocator.t -> (Baseline.Allocator.t -> unit) -> t
(** [record a f] runs [f] with a wrapped allocator handle and returns
    the trace of what [f] did, in execution order with per-CPU
    inter-arrival gaps measured from the simulated clocks — replaying
    the result on a fresh identical machine reproduces the recorded
    run's cycle count exactly (single-CPU; proven in [test/scenario]).
    The wrapper observes CPU and time via the host-side
    [Sim.Machine.running] accessor, so recording perturbs nothing.
    [f] (or the caller) must run the allocator traffic on simulated
    CPUs like any other workload. *)
