(** Deterministic pseudo-random numbers (splitmix-style) for workload
    generation.  Host-side state: drawing numbers costs the simulation
    nothing (a benchmark driver's randomness is not the system under
    test), but sequences are reproducible from the seed.  Reproduction
    infrastructure with no paper counterpart. *)

type t

val create : seed:int -> t
val split : t -> t
(** [split t] derives an independent stream (e.g. one per CPU). *)

val int : t -> bound:int -> int
(** [int t ~bound] is uniform in [0, bound). @raise Invalid_argument if
    [bound <= 0]. *)

val bool : t -> bool
val pick : t -> 'a array -> 'a
(** Uniform choice. @raise Invalid_argument on an empty array. *)

val weighted : t -> (int * 'a) array -> 'a
(** [weighted t choices] picks proportionally to the integer weights.
    @raise Invalid_argument if all weights are zero or any is
    negative. *)
