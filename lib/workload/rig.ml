let paper_config ?(memory_words = 2 * 1024 * 1024) ~ncpus () =
  (* Cache shape and costs come from the ambient geometry (the
     drivers' --geometry / KMA_GEOMETRY), which defaults to the
     paper-era 256-line fully-associative caches. *)
  Sim.Config.make ~geometry:(Sim.Geometry.ambient ()) ~ncpus ~memory_words
    ~uncached_words:512 ()

let fresh_probed which ?config ~ncpus () =
  let cfg =
    match config with
    | Some c -> { c with Sim.Config.ncpus }
    | None -> paper_config ~ncpus ()
  in
  Sim.Config.validate cfg;
  let m = Sim.Machine.create cfg in
  let a, probe = Baseline.Allocator.create_probed which m in
  (m, a, probe)

let fresh which ?config ~ncpus () =
  let m, a, _ = fresh_probed which ?config ~ncpus () in
  (m, a)

let pairs_per_sec cfg ~pairs ~cycles =
  if cycles = 0 then 0.
  else float_of_int pairs /. Sim.Config.seconds_of_cycles cfg cycles
