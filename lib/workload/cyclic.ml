type result = {
  day_allocs : int;
  night_allocs : int;
  night_failures : int;
  day_peak_pages : int;
  night_pages : int;
  cycles : int;
}

let day_sizes = [| 16; 32; 64; 96; 128; 256 |]
let night_bytes = 4096

(* One day: churn small blocks with random lifetimes, ending with
   everything freed.  One night: allocate big blocks, touch them, free
   them. *)
let simulate (a : Baseline.Allocator.t) ~granted_pages ~days ~day_ops
    ~night_blocks ~seed =
  let rng = Prng.create ~seed in
  let day_allocs = ref 0 in
  let night_allocs = ref 0 in
  let night_failures = ref 0 in
  let day_peak = ref 0 in
  let night_peak = ref 0 in
  for _day = 1 to days do
    (* Day phase. *)
    let live = ref [] in
    let nlive = ref 0 in
    for _ = 1 to day_ops do
      if !nlive > 0 && Prng.int rng ~bound:100 < 45 then begin
        match !live with
        | (addr, bytes) :: rest ->
            live := rest;
            decr nlive;
            a.Baseline.Allocator.free ~addr ~bytes
        | [] -> ()
      end
      else begin
        let bytes = Prng.pick rng day_sizes in
        let addr = a.Baseline.Allocator.alloc ~bytes in
        if addr <> 0 then begin
          incr day_allocs;
          live := (addr, bytes) :: !live;
          incr nlive
        end
      end
    done;
    day_peak := max !day_peak (granted_pages ());
    List.iter
      (fun (addr, bytes) -> a.Baseline.Allocator.free ~addr ~bytes)
      !live;
    (* Night phase: the freed day memory must be reusable as large
       blocks thanks to online coalescing. *)
    let night_live = ref [] in
    for _ = 1 to night_blocks do
      let addr = a.Baseline.Allocator.alloc ~bytes:night_bytes in
      if addr = 0 then incr night_failures
      else begin
        incr night_allocs;
        (* Touch the block the way a backup buffer is streamed. *)
        for w = 0 to 31 do
          Sim.Machine.write (addr + (w * 32)) w
        done;
        night_live := addr :: !night_live
      end
    done;
    night_peak := max !night_peak (granted_pages ());
    List.iter
      (fun addr -> a.Baseline.Allocator.free ~addr ~bytes:night_bytes)
      !night_live
  done;
  (!day_allocs, !night_allocs, !night_failures, !day_peak, !night_peak)

let run_kmem ?config ?(days = 3) ?(day_ops = 2000) ?(night_blocks = 40)
    ?(seed = 42) ?params () =
  let cfg =
    match config with Some c -> c | None -> Rig.paper_config ~ncpus:1 ()
  in
  let m = Sim.Machine.create cfg in
  let params =
    match params with
    | Some p -> p
    | None -> Kma.Params.auto ~memory_words:cfg.Sim.Config.memory_words
  in
  let kmem = Kma.Kmem.create m ~params () in
  let a =
    {
      Baseline.Allocator.name = "newkma";
      alloc =
        (fun ~bytes ->
          match Kma.Kmem.try_alloc kmem ~bytes with
          | Some x -> x
          | None -> 0);
      free = (fun ~addr ~bytes -> Kma.Kmem.free kmem ~addr ~bytes);
    }
  in
  let out = ref None in
  Sim.Machine.run m
    [|
      (fun _ ->
        out :=
          Some
            (simulate a
               ~granted_pages:(fun () -> Kma.Kmem.granted_pages_oracle kmem)
               ~days ~day_ops ~night_blocks ~seed));
    |];
  let day_allocs, night_allocs, night_failures, day_peak_pages, night_pages =
    Option.get !out
  in
  {
    day_allocs;
    night_allocs;
    night_failures;
    day_peak_pages;
    night_pages;
    cycles = Sim.Machine.elapsed m;
  }

let run ~which ?config ?(days = 3) ?(day_ops = 2000) ?(night_blocks = 40)
    ?(seed = 42) () =
  match which with
  | Baseline.Allocator.Newkma ->
      Some (run_kmem ?config ~days ~day_ops ~night_blocks ~seed ())
  | Baseline.Allocator.Cookie | Baseline.Allocator.Numakma
  | Baseline.Allocator.Mk | Baseline.Allocator.Oldkma
  | Baseline.Allocator.Lazybuddy | Baseline.Allocator.Nbbuddy
  | Baseline.Allocator.Bwfixed ->
      None
