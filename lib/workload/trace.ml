type event =
  | Alloc of { cpu : int; gap : int; id : int; bytes : int }
  | Free of { cpu : int; gap : int; id : int }

type t = event list

let v2_header = "kma-trace v2"
let cpu_of = function Alloc { cpu; _ } | Free { cpu; _ } -> cpu
let gap_of = function Alloc { gap; _ } | Free { gap; _ } -> gap
let id_of = function Alloc { id; _ } | Free { id; _ } -> id

let ncpus t = 1 + List.fold_left (fun m e -> max m (cpu_of e)) 0 t

let default_mix =
  [|
    (30, 16); (25, 32); (15, 64); (10, 128); (8, 256); (6, 512); (4, 1024);
    (1, 2048); (1, 4096);
  |]

let synthesize ?(seed = 13) ?(live_window = 64) ?(size_mix = default_mix)
    ?(ncpus = 1) ?(mean_gap = 0) ~ops () =
  if ncpus < 1 then invalid_arg "Workload.Trace.synthesize: ncpus < 1";
  if mean_gap < 0 then invalid_arg "Workload.Trace.synthesize: mean_gap < 0";
  let rng = Prng.create ~seed in
  let live = ref [] in
  let nlive = ref 0 in
  let next_id = ref 0 in
  let events = ref [] in
  let cpu () = if ncpus = 1 then 0 else Prng.int rng ~bound:ncpus in
  let gap () = if mean_gap = 0 then 0 else Prng.int rng ~bound:((2 * mean_gap) + 1) in
  for _ = 1 to ops do
    if
      !nlive >= live_window
      || (!nlive > 0 && Prng.int rng ~bound:100 < 40)
    then begin
      (* Free a pseudo-random live id (not always the newest, so the
         trace exercises out-of-order frees); the freeing CPU is drawn
         independently of the allocating one, so multi-CPU traces
         naturally contain cross-CPU frees. *)
      let n = Prng.int rng ~bound:!nlive in
      let id = List.nth !live n in
      live := List.filter (fun x -> x <> id) !live;
      decr nlive;
      events := Free { cpu = cpu (); gap = gap (); id } :: !events
    end
    else begin
      let id = !next_id in
      incr next_id;
      let bytes = Prng.weighted rng size_mix in
      live := id :: !live;
      incr nlive;
      events := Alloc { cpu = cpu (); gap = gap (); id; bytes } :: !events
    end
  done;
  List.iter
    (fun id -> events := Free { cpu = cpu (); gap = 0; id } :: !events)
    !live;
  List.rev !events

let validate t =
  let live = Hashtbl.create 64 in
  let seen = Hashtbl.create 64 in
  let rec go = function
    | [] ->
        if Hashtbl.length live = 0 then Ok ()
        else Error (Printf.sprintf "%d ids never freed" (Hashtbl.length live))
    | Alloc { cpu; gap; id; bytes } :: rest ->
        if Hashtbl.mem seen id then
          Error (Printf.sprintf "id %d allocated twice" id)
        else if bytes <= 0 then Error (Printf.sprintf "id %d: bytes <= 0" id)
        else if cpu < 0 then Error (Printf.sprintf "id %d: cpu < 0" id)
        else if gap < 0 then Error (Printf.sprintf "id %d: gap < 0" id)
        else begin
          Hashtbl.add seen id ();
          Hashtbl.add live id ();
          go rest
        end
    | Free { cpu; gap; id } :: rest ->
        if not (Hashtbl.mem live id) then
          Error (Printf.sprintf "id %d freed while not live" id)
        else if cpu < 0 then Error (Printf.sprintf "free of id %d: cpu < 0" id)
        else if gap < 0 then Error (Printf.sprintf "free of id %d: gap < 0" id)
        else begin
          Hashtbl.remove live id;
          go rest
        end
  in
  go t

let to_string t =
  let b = Buffer.create 1024 in
  Buffer.add_string b v2_header;
  Buffer.add_char b '\n';
  List.iter
    (fun e ->
      match e with
      | Alloc { cpu; gap; id; bytes } ->
          Buffer.add_string b (Printf.sprintf "a %d %d %d %d\n" cpu gap id bytes)
      | Free { cpu; gap; id } ->
          Buffer.add_string b (Printf.sprintf "f %d %d %d\n" cpu gap id))
    t;
  Buffer.contents b

(* Strict parser: exact token arity per line (anything extra is
   trailing garbage), integer fields only, sizes must be positive, and
   an id may be allocated only once in the whole trace.  Every error
   names its line. *)
let of_string s =
  let lines = String.split_on_char '\n' s in
  let seen = Hashtbl.create 64 in
  let err n fmt = Printf.ksprintf (fun m -> Error (Printf.sprintf "line %d: %s" n m)) fmt in
  let int_field n what tok k =
    match int_of_string_opt tok with
    | Some v -> k v
    | None -> err n "%s %S is not an integer" what tok
  in
  let nonneg n what v k =
    if v < 0 then err n "%s %d is negative" what v else k ()
  in
  let parse_alloc n ~cpu ~gap ~id ~bytes acc rest go =
    int_field n "cpu" cpu @@ fun cpu ->
    int_field n "gap" gap @@ fun gap ->
    int_field n "id" id @@ fun id ->
    int_field n "bytes" bytes @@ fun bytes ->
    nonneg n "cpu" cpu @@ fun () ->
    nonneg n "gap" gap @@ fun () ->
    if bytes <= 0 then err n "non-positive size %d for id %d" bytes id
    else if Hashtbl.mem seen id then err n "id %d allocated twice" id
    else begin
      Hashtbl.add seen id ();
      go (Alloc { cpu; gap; id; bytes } :: acc) (n + 1) rest
    end
  in
  let parse_free n ~cpu ~gap ~id acc rest go =
    int_field n "cpu" cpu @@ fun cpu ->
    int_field n "gap" gap @@ fun gap ->
    int_field n "id" id @@ fun id ->
    nonneg n "cpu" cpu @@ fun () ->
    nonneg n "gap" gap @@ fun () ->
    go (Free { cpu; gap; id } :: acc) (n + 1) rest
  in
  let rec go_v2 acc n = function
    | [] -> Ok (List.rev acc)
    | "" :: rest -> go_v2 acc (n + 1) rest
    | line :: rest -> (
        match String.split_on_char ' ' line with
        | [ "a"; cpu; gap; id; bytes ] ->
            parse_alloc n ~cpu ~gap ~id ~bytes acc rest go_v2
        | [ "f"; cpu; gap; id ] -> parse_free n ~cpu ~gap ~id acc rest go_v2
        | ("a" | "f") :: _ :: _ :: _ :: _ :: _ ->
            err n "trailing garbage in %S" line
        | _ -> err n "unparseable %S" line)
  in
  (* Legacy v1 lines ([a <id> <bytes>] / [f <id>], no header): parsed as
     single-CPU events with zero gaps, same strictness otherwise. *)
  let rec go_v1 acc n = function
    | [] -> Ok (List.rev acc)
    | "" :: rest -> go_v1 acc (n + 1) rest
    | line :: rest -> (
        match String.split_on_char ' ' line with
        | [ "a"; id; bytes ] ->
            parse_alloc n ~cpu:"0" ~gap:"0" ~id ~bytes acc rest go_v1
        | [ "f"; id ] -> parse_free n ~cpu:"0" ~gap:"0" ~id acc rest go_v1
        | ("a" | "f") :: _ :: _ :: _ -> err n "trailing garbage in %S" line
        | _ -> err n "unparseable %S" line)
  in
  let rec dispatch n = function
    | [] -> Ok []
    | "" :: rest -> dispatch (n + 1) rest
    | first :: rest when first = v2_header -> go_v2 [] (n + 1) rest
    | first :: _ when String.length first >= 9 && String.sub first 0 9 = "kma-trace"
      ->
        err n "unknown trace version %S (want %S)" first v2_header
    | lines -> go_v1 [] n lines
  in
  dispatch 1 lines

(* --- scaling transforms --- *)

let scale_rate ~factor t =
  if not (factor > 0.) then
    invalid_arg "Workload.Trace.scale_rate: factor must be > 0";
  let scale gap =
    if gap = 0 then 0 else max 0 (int_of_float (float_of_int gap /. factor))
  in
  List.map
    (function
      | Alloc a -> Alloc { a with gap = scale a.gap }
      | Free f -> Free { f with gap = scale f.gap })
    t

let fan_out ~copies t =
  if copies < 1 then invalid_arg "Workload.Trace.fan_out: copies < 1";
  if copies = 1 then t
  else begin
    let base = ncpus t in
    List.concat_map
      (fun e ->
        List.init copies (fun c ->
            match e with
            | Alloc { cpu; gap; id; bytes } ->
                Alloc
                  { cpu = cpu + (c * base); gap; id = (id * copies) + c; bytes }
            | Free { cpu; gap; id } ->
                Free { cpu = cpu + (c * base); gap; id = (id * copies) + c }))
      t
  end

let skew_frees ?(seed = 7) ~fraction t =
  if fraction < 0. || fraction > 1. then
    invalid_arg "Workload.Trace.skew_frees: fraction must be in [0, 1]";
  let n = ncpus t in
  if n < 2 || fraction = 0. then t
  else begin
    let rng = Prng.create ~seed in
    let threshold = int_of_float (fraction *. 10_000.) in
    List.map
      (function
        | Alloc _ as e -> e
        | Free f as e ->
            (* Draw in a fixed order so the transform is deterministic
               regardless of which frees end up moved. *)
            let roll = Prng.int rng ~bound:10_000 in
            let hop = 1 + Prng.int rng ~bound:(n - 1) in
            if roll < threshold then Free { f with cpu = (f.cpu + hop) mod n }
            else e)
      t
  end

(* --- replay --- *)

type result = { ops : int; failures : int; skipped_frees : int; cycles : int }

type session = {
  machine : Sim.Machine.t;
  a : Baseline.Allocator.t;
  s_ncpus : int;
  mutable rest : t;
  addr_of : (int, int) Hashtbl.t;
  bytes_of : (int, int) Hashtbl.t;
  failed : (int, unit) Hashtbl.t;
  freed : (int, unit) Hashtbl.t;
  scheduled : (int, unit) Hashtbl.t;
      (* alloc ids issued to some already-run (or running) window: a
         free may legitimately wait only for these *)
  mutable s_ops : int;
  mutable s_failures : int;
  mutable s_skipped : int;
  mutable s_live_bytes : int;
  t0 : int;
}

let start machine a t =
  let n = ncpus t in
  let avail = (Sim.Machine.config machine).Sim.Config.ncpus in
  if n > avail then
    invalid_arg
      (Printf.sprintf
         "Workload.Trace.start: trace uses %d CPUs but the machine has %d" n
         avail);
  {
    machine;
    a;
    s_ncpus = n;
    rest = t;
    addr_of = Hashtbl.create 256;
    bytes_of = Hashtbl.create 256;
    failed = Hashtbl.create 16;
    freed = Hashtbl.create 256;
    scheduled = Hashtbl.create 256;
    s_ops = 0;
    s_failures = 0;
    s_skipped = 0;
    s_live_bytes = 0;
    t0 = Sim.Machine.elapsed machine;
  }

let live_bytes s = s.s_live_bytes

let exec s ~on_op e =
  let open Sim in
  (match gap_of e with 0 -> () | gap -> Machine.work gap);
  match e with
  | Alloc { cpu; id; bytes; _ } ->
      let t0 = Machine.now () in
      let addr = s.a.Baseline.Allocator.alloc ~bytes in
      let t1 = Machine.now () in
      if addr = 0 then begin
        s.s_failures <- s.s_failures + 1;
        Hashtbl.replace s.failed id ()
      end
      else begin
        Hashtbl.replace s.addr_of id addr;
        Hashtbl.replace s.bytes_of id bytes;
        s.s_live_bytes <- s.s_live_bytes + bytes
      end;
      s.s_ops <- s.s_ops + 1;
      on_op ~cpu ~alloc:true ~latency:(t1 - t0)
  | Free { cpu; id; _ } ->
      (* Wait for the allocating CPU to publish the address: the
         replayed handoff of a cross-CPU free.  Spin-waiting charges
         cycles the same way a real consumer polling for work would. *)
      let rec wait () =
        match Hashtbl.find_opt s.addr_of id with
        | Some addr ->
            let t0 = Machine.now () in
            s.a.Baseline.Allocator.free ~addr
              ~bytes:(Hashtbl.find s.bytes_of id);
            let t1 = Machine.now () in
            s.s_live_bytes <- s.s_live_bytes - Hashtbl.find s.bytes_of id;
            Hashtbl.remove s.addr_of id;
            Hashtbl.remove s.bytes_of id;
            Hashtbl.replace s.freed id ();
            s.s_ops <- s.s_ops + 1;
            on_op ~cpu ~alloc:false ~latency:(t1 - t0)
        | None ->
            if
              Hashtbl.mem s.failed id
              || Hashtbl.mem s.freed id
              || not (Hashtbl.mem s.scheduled id)
            then begin
              (* Denied allocation (or a malformed trace): the free has
                 nothing to release.  Counted, never silent. *)
              s.s_ops <- s.s_ops + 1;
              s.s_skipped <- s.s_skipped + 1
            end
            else begin
              (* Polls host state published by the allocating CPU's
                 host code: must always yield (see [Machine.spin_poll]). *)
              Machine.spin_poll ();
              wait ()
            end
      in
      wait ()

let no_op ~cpu:_ ~alloc:_ ~latency:_ = ()

let rec take_window n acc = function
  | rest when n = 0 -> (List.rev acc, rest)
  | [] -> (List.rev acc, [])
  | e :: rest -> take_window (n - 1) (e :: acc) rest

let step ?(on_op = no_op) s n =
  if n < 1 then invalid_arg "Workload.Trace.step: window < 1";
  match s.rest with
  | [] -> false
  | _ ->
      let window, rest = take_window n [] s.rest in
      s.rest <- rest;
      List.iter
        (function
          | Alloc { id; _ } -> Hashtbl.replace s.scheduled id ()
          | Free _ -> ())
        window;
      let per_cpu = Array.make s.s_ncpus [] in
      List.iter
        (fun e ->
          let c = cpu_of e in
          per_cpu.(c) <- e :: per_cpu.(c))
        window;
      let per_cpu = Array.map List.rev per_cpu in
      Sim.Machine.run s.machine
        (Array.init s.s_ncpus (fun c _ ->
             List.iter (exec s ~on_op) per_cpu.(c)));
      s.rest <> []

let finish s =
  {
    ops = s.s_ops;
    failures = s.s_failures;
    skipped_frees = s.s_skipped;
    cycles = Sim.Machine.elapsed s.machine - s.t0;
  }

let replay ?on_op machine t (a : Baseline.Allocator.t) =
  match t with
  | [] ->
      ignore (start machine a t);
      { ops = 0; failures = 0; skipped_frees = 0; cycles = 0 }
  | _ ->
      let s = start machine a t in
      let all = List.length t in
      ignore (step ?on_op s all);
      finish s

(* --- recording --- *)

let record (a : Baseline.Allocator.t) f =
  let events = ref [] in
  let next_id = ref 0 in
  let id_of = Hashtbl.create 256 in
  let last_end : (int, int) Hashtbl.t = Hashtbl.create 8 in
  (* Anchor the calling CPU's clock so its first recorded gap measures
     think time from the start of recording rather than zero — without
     it a replay would drop any work charged before the first op and
     the bit-identical-cycles property (test/scenario) would not hold. *)
  (match Sim.Machine.running () with
  | Some (cpu, t) -> Hashtbl.replace last_end cpu t
  | None -> ());
  (* Host-side observation via [Machine.running]: reading the emitting
     CPU and its clock this way adds no operation and so cannot perturb
     the recorded run (the flight-recorder idiom). *)
  let here () =
    match Sim.Machine.running () with Some (cpu, t) -> (cpu, t) | None -> (0, 0)
  in
  let gap_at cpu t =
    match Hashtbl.find_opt last_end cpu with
    | Some e -> max 0 (t - e)
    | None -> 0
  in
  let wrapped =
    {
      Baseline.Allocator.name = a.Baseline.Allocator.name ^ "+trace";
      alloc =
        (fun ~bytes ->
          let cpu, t = here () in
          let gap = gap_at cpu t in
          let addr = a.Baseline.Allocator.alloc ~bytes in
          let cpu', t' = here () in
          Hashtbl.replace last_end cpu' t';
          if addr <> 0 then begin
            let id = !next_id in
            incr next_id;
            Hashtbl.replace id_of addr id;
            events := Alloc { cpu; gap; id; bytes } :: !events
          end;
          addr);
      free =
        (fun ~addr ~bytes ->
          let cpu, t = here () in
          let gap = gap_at cpu t in
          (match Hashtbl.find_opt id_of addr with
          | Some id ->
              Hashtbl.remove id_of addr;
              events := Free { cpu; gap; id } :: !events
          | None -> ());
          a.Baseline.Allocator.free ~addr ~bytes;
          let cpu', t' = here () in
          Hashtbl.replace last_end cpu' t');
    }
  in
  f wrapped;
  List.rev !events
