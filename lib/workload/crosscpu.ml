open Sim

type result = {
  ncpus : int;
  transfers : int;
  cycles : int;
  transfers_per_sec : float;
  stats : Lockfree.Stats.t option;
}

(* Per-pair ring in the harness scratch region (words 16..1023 by repo
   convention — every allocator's control structures start at 1024): a
   cache-line-aligned record of [head, tail] plus a slot array.  Single
   producer, single consumer: plain reads and writes suffice. *)
let ring_slots = 16

let ring_base ~pair = 32 + (pair * (ring_slots + 16))
let ring_head ~pair = ring_base ~pair (* produced count *)
let ring_tail ~pair = ring_base ~pair + 8 (* consumed count, own line *)
let ring_slot ~pair i = ring_base ~pair + 16 + (i mod ring_slots)

let run ~which ~pairs ~blocks_per_pair ?(bytes = 256) ?config () =
  if pairs < 1 || pairs > 20 then
    invalid_arg "Workload.Crosscpu.run: pairs must be in [1, 20]";
  let ncpus = 2 * pairs in
  let m, a, probe = Rig.fresh_probed which ?config ~ncpus () in
  Machine.run_symmetric m ~ncpus (fun cpu ->
      let pair = cpu / 2 in
      if cpu land 1 = 0 then
        (* Producer. *)
        for i = 0 to blocks_per_pair - 1 do
          let addr = a.Baseline.Allocator.alloc ~bytes in
          assert (addr <> 0);
          (* Wait for a free slot. *)
          while Machine.read (ring_head ~pair) - Machine.read (ring_tail ~pair)
                >= ring_slots do
            Machine.spin_pause ()
          done;
          Machine.write (ring_slot ~pair i) addr;
          Machine.write (ring_head ~pair) (i + 1)
        done
      else
        (* Consumer. *)
        for i = 0 to blocks_per_pair - 1 do
          while Machine.read (ring_head ~pair) <= i do
            Machine.spin_pause ()
          done;
          let addr = Machine.read (ring_slot ~pair i) in
          a.Baseline.Allocator.free ~addr ~bytes;
          Machine.write (ring_tail ~pair) (i + 1)
        done);
  let cycles = Machine.elapsed m in
  let transfers = pairs * blocks_per_pair in
  {
    ncpus;
    transfers;
    cycles;
    transfers_per_sec =
      Rig.pairs_per_sec (Machine.config m) ~pairs:transfers ~cycles;
    stats = Option.map Lockfree.Stats.copy probe.Baseline.Allocator.stats;
  }
