(** Producer/consumer workload: one set of CPUs allocates blocks and
    pushes them through a shared ring in simulated memory; the others
    pop and free them.

    This is the pattern the paper's global layer exists for ("one CPU
    allocates buffers of a given size, which are then passed to other
    CPUs that free them") — freed buffers flow back to the allocating
    CPU through the global layer without coalescing overhead.  For the
    lock-free arms it is the remote-free pressure test: every free
    lands on a CPU that never allocated the block. *)

type result = {
  ncpus : int;
  transfers : int;  (** blocks produced, consumed and freed *)
  cycles : int;
  transfers_per_sec : float;
  stats : Lockfree.Stats.t option;
      (** retry/helping counters when [which] is a lock-free arm — the
          remote-free flow is what makes them non-trivial *)
}

val run :
  which:Baseline.Allocator.which ->
  pairs:int ->
  blocks_per_pair:int ->
  ?bytes:int ->
  ?config:Sim.Config.t ->
  unit ->
  result
(** [run ~which ~pairs ~blocks_per_pair ()] uses [2 * pairs] CPUs: even
    CPUs produce, odd CPUs consume via a per-pair ring. *)
