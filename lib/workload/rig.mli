(** Shared benchmark rig: the simulated-machine configuration standing
    in for the paper's Symmetry 2000 (50 MHz 80486s, small per-CPU
    caches, a slow shared bus, a patch of uncacheable register space),
    and fresh machine/allocator pairs for experiments. *)

val paper_config : ?memory_words:int -> ncpus:int -> unit -> Sim.Config.t
(** The {!Sim.Geometry.ambient} cache geometry (by default the paper-era
    256-line (8 KiB) bounded caches), 512 uncacheable words at the top
    of memory, default bus costs, 50 MHz.  Because every experiment that
    does not build its own config comes through here, a driver's
    [--geometry] / [KMA_GEOMETRY] spec reshapes the whole suite. *)

val fresh :
  Baseline.Allocator.which ->
  ?config:Sim.Config.t ->
  ncpus:int ->
  unit ->
  Sim.Machine.t * Baseline.Allocator.t
(** [fresh which ~ncpus ()] is a booted allocator on a new machine.  A
    given [config] has its [ncpus] overridden. *)

val fresh_probed :
  Baseline.Allocator.which ->
  ?config:Sim.Config.t ->
  ncpus:int ->
  unit ->
  Sim.Machine.t * Baseline.Allocator.t * Baseline.Allocator.probe
(** {!fresh} plus the allocator's observation probe (retry counters and
    drain oracle for the lock-free arms). *)

val pairs_per_sec : Sim.Config.t -> pairs:int -> cycles:int -> float
