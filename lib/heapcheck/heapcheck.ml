include Check
module Fuzz = Fuzz
