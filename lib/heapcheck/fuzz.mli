(** Deterministic model-based differential fuzzer for the allocator.

    Drives [Kma.Kmem] on a simulated machine with a seeded
    splitmix-style PRNG over a weighted op mix — small allocs/frees,
    large (multi-page) allocs/frees, reap passes, per-CPU drains and
    VM-system fault-injection toggles — against a trivial host-side
    reference model (the live set), cross-checking {!Heapcheck.check}
    after every op (paranoid) or every [check_every] ops (sweep).
    This is correctness tooling for the reproduction of the paper's
    Design section, with no direct paper counterpart; the invariants
    it enforces are the checker's.

    Ops are abstract and self-relocating ([Free k] frees the [k mod
    nlive]-th live block of the replaying model), so {!minimize} can
    greedily delete ops from a failing trace and every remaining op
    stays meaningful.  Everything is deterministic: same config in,
    same trace, same outcome, same minimized counterexample. *)

(** One abstract operation.  [Corrupt] deliberately smashes an
    invariant host-side (self-test for the checker and minimizer;
    generated only when [config.corrupt] is set). *)
type op =
  | Alloc of int  (** small alloc; class = selector mod nsizes *)
  | Free of int  (** free the (selector mod nlive)-th live block *)
  | Alloc_large of int  (** multi-page alloc (2+ pages) *)
  | Free_large of int  (** free a live large allocation *)
  | Reap of bool  (** pressure reap pass; [true] = full *)
  | Drain of int  (** per-CPU cache drain for one class *)
  | Fault_on of int  (** arm VM fault injection (selector seeds it) *)
  | Fault_off  (** disarm VM fault injection *)
  | Corrupt of int  (** self-test: deliberately corrupt the heap *)

type config = {
  seed : int;
  ops : int;  (** trace length to generate *)
  check_every : int;  (** 1 = paranoid, n = sweep every n ops *)
  pressure : bool;  (** enable the {!Kma.Pressure} subsystem *)
  debug : bool;  (** debug kernel (poisoned frees) *)
  fault_rate : float;
      (** rate armed by [Fault_on] ops; 0 removes fault ops from the
          generated mix *)
  corrupt : bool;  (** generate [Corrupt] ops (self-test only) *)
  ncpus : int;
  memory_words : int;
  vmblk_pages : int;
}

val config :
  ?ops:int ->
  ?check_every:int ->
  ?pressure:bool ->
  ?debug:bool ->
  ?fault_rate:float ->
  ?corrupt:bool ->
  ?ncpus:int ->
  ?memory_words:int ->
  ?vmblk_pages:int ->
  seed:int ->
  unit ->
  config
(** Defaults: 10k ops, paranoid, pressure/debug/faults off, 1 CPU,
    256 Ki words of simulated memory, 16-page vmblks.
    @raise Invalid_argument on [ops < 0] or [check_every < 1]. *)

type failure = {
  index : int;  (** index of the op after which the check failed *)
  op : op;
  problems : string list;  (** violation details, checker rule first *)
}

type outcome = {
  checks : int;  (** consistency checks run *)
  allocs : int;  (** successful small allocations *)
  frees : int;
  cycles : int;  (** simulated cycles at the end of the run *)
  failure : failure option;  (** [None] = every check passed *)
}

val gen : config -> op list
(** Generate the seeded trace (pure; no machine involved). *)

val execute : config -> op list -> outcome
(** [execute cfg trace] builds a fresh machine + allocator and replays
    [trace] on simulated CPU 0, checking per [cfg.check_every];
    stops at the first failing check.  When {!Heapcheck.on}, each
    violation is also {!Heapcheck.note}d (flight-recorder events,
    report, abort mode). *)

val run : config -> outcome
(** [run cfg] is [execute cfg (gen cfg)]. *)

val minimize : config -> op list -> op list
(** [minimize cfg trace] greedily shrinks a failing trace: truncate at
    the failure, then delete chunks (halving down to single ops) while
    the failure reproduces.  Returns [trace] unchanged if it does not
    fail.  Deterministic. *)

val pp_op : Format.formatter -> op -> unit
val pp_trace : Format.formatter -> op list -> unit
(** Numbered one-op-per-line rendering of a (minimized) trace. *)

val run_matrix : ?jobs:int -> config list -> outcome list
(** [run_matrix ~jobs cfgs] is [List.map run cfgs] fanned out over
    [jobs] domains with [Parallel.map], each cell wrapped in
    {!Check.shard} and its harvest absorbed in input order — so the
    outcomes AND the checker report are bit-identical to a sequential
    run (the paper-reproduction fuzz matrices are embarrassingly
    parallel).  Default [jobs:1]. *)
