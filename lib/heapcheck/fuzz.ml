open Sim

(* Splitmix-style PRNG, the repo's workload idiom replicated here so
   this library depends only on sim + kma (see Workload.Prng for the
   constant provenance). *)
module Rng = struct
  type t = { mutable s : int }

  let gamma = 0x2545F4914F6CDD1D
  let m1 = 0x2F58476D1CE4E5B9
  let m2 = 0x14D049BB133111EB
  let create seed = { s = seed lxor gamma }

  let next t =
    t.s <- t.s + gamma;
    let z = t.s in
    let z = (z lxor (z lsr 30)) * m1 in
    let z = (z lxor (z lsr 27)) * m2 in
    (z lxor (z lsr 31)) land max_int

  let int t bound = next t mod bound
end

(* Ops are abstract and self-relocating: [Free k] frees the (k mod
   nlive)-th live block of the *replaying* model, so removing earlier
   ops during minimization leaves every remaining op meaningful. *)
type op =
  | Alloc of int
  | Free of int
  | Alloc_large of int
  | Free_large of int
  | Reap of bool
  | Drain of int
  | Fault_on of int
  | Fault_off
  | Corrupt of int

type config = {
  seed : int;
  ops : int;
  check_every : int;
  pressure : bool;
  debug : bool;
  fault_rate : float;
  corrupt : bool;
  ncpus : int;
  memory_words : int;
  vmblk_pages : int;
}

let config ?(ops = 10_000) ?(check_every = 1) ?(pressure = false)
    ?(debug = false) ?(fault_rate = 0.) ?(corrupt = false) ?(ncpus = 1)
    ?(memory_words = 262_144) ?(vmblk_pages = 16) ~seed () =
  if ops < 0 then invalid_arg "Heapcheck.Fuzz.config: ops < 0";
  if check_every < 1 then invalid_arg "Heapcheck.Fuzz.config: check_every < 1";
  {
    seed;
    ops;
    check_every;
    pressure;
    debug;
    fault_rate;
    corrupt;
    ncpus;
    memory_words;
    vmblk_pages;
  }

type failure = { index : int; op : op; problems : string list }

type outcome = {
  checks : int;
  allocs : int;
  frees : int;
  cycles : int;
  failure : failure option;
}

let pp_op ppf = function
  | Alloc n -> Format.fprintf ppf "alloc %d" n
  | Free n -> Format.fprintf ppf "free %d" n
  | Alloc_large n -> Format.fprintf ppf "alloc-large %d" n
  | Free_large n -> Format.fprintf ppf "free-large %d" n
  | Reap full -> Format.fprintf ppf "reap %s" (if full then "full" else "light")
  | Drain n -> Format.fprintf ppf "drain %d" n
  | Fault_on n -> Format.fprintf ppf "fault-on %d" n
  | Fault_off -> Format.pp_print_string ppf "fault-off"
  | Corrupt n -> Format.fprintf ppf "corrupt %d" n

let pp_trace ppf ops =
  List.iteri (fun i op -> Format.fprintf ppf "%4d  %a@." i pp_op op) ops

(* --- generation --- *)

let gen cfg =
  let rng = Rng.create cfg.seed in
  let weighted choices =
    let total = Array.fold_left (fun a (w, _) -> a + w) 0 choices in
    let r = Rng.int rng total in
    let rec go i acc =
      let w, v = choices.(i) in
      if r < acc + w then v else go (i + 1) (acc + w)
    in
    go 0 0
  in
  let fault_w = if cfg.fault_rate > 0. then 2 else 0 in
  let corrupt_w = if cfg.corrupt then 1 else 0 in
  let choices =
    [|
      (40, `Alloc);
      (32, `Free);
      (4, `Alloc_large);
      (3, `Free_large);
      (2, `Reap_light);
      (1, `Reap_full);
      (2, `Drain);
      (fault_w, `Fault_on);
      (fault_w, `Fault_off);
      (corrupt_w, `Corrupt);
    |]
  in
  List.init cfg.ops (fun _ ->
      match weighted choices with
      | `Alloc -> Alloc (Rng.int rng 1024)
      | `Free -> Free (Rng.int rng 1024)
      | `Alloc_large -> Alloc_large (Rng.int rng 1024)
      | `Free_large -> Free_large (Rng.int rng 1024)
      | `Reap_light -> Reap false
      | `Reap_full -> Reap true
      | `Drain -> Drain (Rng.int rng 1024)
      | `Fault_on -> Fault_on (Rng.int rng 1024)
      | `Fault_off -> Fault_off
      | `Corrupt -> Corrupt (Rng.int rng 4))

(* --- execution against the reference model --- *)

(* Growable (value, swap-remove) pool for the live sets. *)
module Pool = struct
  type 'a t = { mutable arr : 'a array; mutable n : int; dummy : 'a }

  let create dummy = { arr = Array.make 64 dummy; n = 0; dummy }

  let push t v =
    if t.n = Array.length t.arr then begin
      let bigger = Array.make (2 * t.n) t.dummy in
      Array.blit t.arr 0 bigger 0 t.n;
      t.arr <- bigger
    end;
    t.arr.(t.n) <- v;
    t.n <- t.n + 1

  let take t i =
    let v = t.arr.(i) in
    t.arr.(i) <- t.arr.(t.n - 1);
    t.n <- t.n - 1;
    v
end

(* Deliberate host-side corruptions, for testing the checker and the
   minimizer against a known-broken heap (never generated unless
   [cfg.corrupt]).  Each kind falls back to a per-CPU count-word lie,
   which is always possible. *)
let corrupt (k : Kma.Kmem.t) kind =
  let ctx : Kma.Ctx.t = k in
  let mem = Kma.Ctx.memory ctx in
  let ly = ctx.Kma.Ctx.layout in
  let bump_percpu_count () =
    let pcc = Kma.Layout.pcc_addr ly ~cpu:0 ~si:0 in
    let a = pcc + Kma.Percpu.o_main_cnt in
    Memory.set mem a (Memory.get mem a + 1)
  in
  let first_gbl_list () =
    let rec go si =
      if si >= ly.Kma.Layout.nsizes then None
      else
        match Kma.Global.lists_oracle ctx ~si with
        | (head, cnt) :: _ -> Some (head, cnt)
        | [] -> go (si + 1)
    in
    go 0
  in
  match kind mod 4 with
  | 0 -> (
      (* Lie in a gblfree count word. *)
      match first_gbl_list () with
      | Some (head, cnt) -> Memory.set mem (head + Kma.Freelist.count) (cnt + 1)
      | None -> bump_percpu_count ())
  | 1 -> (
      (* Lie in a split page's pd_nfree. *)
      let rec go si =
        if si >= ly.Kma.Layout.nsizes then None
        else
          match Kma.Pagepool.bucket_pages_oracle ctx ~si with
          | (_, pd :: _) :: _ -> Some pd
          | _ -> go (si + 1)
      in
      match go 0 with
      | Some pd ->
          let a = pd + Kma.Vmblk.pd_nfree in
          Memory.set mem a (Memory.get mem a + 1)
      | None -> bump_percpu_count ())
  | 2 -> (
      (* Orphan a free span's head state. *)
      match Kma.Vmblk.free_spans_oracle ctx with
      | (pd, _) :: _ ->
          Memory.set mem (pd + Kma.Vmblk.pd_state) Kma.Vmblk.st_span_mid
      | [] -> bump_percpu_count ())
  | _ -> (
      (* Tie a per-CPU main chain into a cycle (double insertion). *)
      let rec go cpu si =
        if cpu >= ly.Kma.Layout.ncpus then None
        else if si >= ly.Kma.Layout.nsizes then go (cpu + 1) 0
        else
          let (mh, _), _, _ = Kma.Percpu.cache_oracle ctx ~cpu ~si in
          if mh <> 0 then Some mh else go cpu (si + 1)
      in
      match go 0 0 with
      | Some head -> Memory.set mem (head + Kma.Freelist.link) head
      | None -> bump_percpu_count ())

let execute cfg trace =
  let m =
    Machine.create
      (Config.make ~ncpus:cfg.ncpus ~memory_words:cfg.memory_words
         ~cache_lines:0 ())
  in
  let params = Kma.Params.make ~vmblk_pages:cfg.vmblk_pages ~debug:cfg.debug () in
  let k = Kma.Kmem.create m ~params () in
  if cfg.pressure then Kma.Pressure.enable k;
  let p = Kma.Kmem.params k in
  let nsizes = Kma.Params.nsizes p in
  let page_bytes = p.Kma.Params.page_bytes in
  let max_span = max 3 (min 8 (cfg.vmblk_pages / 2)) in
  (* Reference model: the live sets and per-class outstanding counts. *)
  let live = Pool.create (0, 0) in
  let live_set : (int, unit) Hashtbl.t = Hashtbl.create 256 in
  let counts = Array.make nsizes 0 in
  let larges = Pool.create (0, 0) in
  let checks = ref 0 and allocs = ref 0 and frees = ref 0 in
  let failure = ref None in
  let fail idx op problems = failure := Some { index = idx; op; problems } in
  let do_check idx op =
    incr checks;
    let vs = Check.check ~live:counts k in
    if Check.on () then List.iter Check.note vs;
    if vs <> [] then
      fail idx op
        (List.map
           (fun (v : Check.violation) ->
             Check.rule_name v.Check.rule ^ ": " ^ v.Check.detail)
           vs)
  in
  let step idx op =
    match op with
    | Alloc sel ->
        let si = sel mod nsizes in
        let a = Kma.Kmem.alloc_class k ~si in
        if a <> 0 then begin
          if Hashtbl.mem live_set a then
            fail idx op
              [ Printf.sprintf "model: allocator handed out live block %d" a ]
          else begin
            Pool.push live (a, si);
            Hashtbl.add live_set a ();
            counts.(si) <- counts.(si) + 1;
            incr allocs
          end
        end
    | Free sel ->
        if live.Pool.n > 0 then begin
          let a, si = Pool.take live (sel mod live.Pool.n) in
          Hashtbl.remove live_set a;
          counts.(si) <- counts.(si) - 1;
          Kma.Percpu.free k ~si a;
          incr frees
        end
    | Alloc_large sel -> (
        let npages = 2 + (sel mod (max_span - 1)) in
        let bytes = npages * page_bytes in
        match Kma.Kmem.try_alloc k ~bytes with
        | Some a -> Pool.push larges (a, bytes)
        | None -> ())
    | Free_large sel ->
        if larges.Pool.n > 0 then begin
          let a, bytes = Pool.take larges (sel mod larges.Pool.n) in
          Kma.Kmem.free k ~addr:a ~bytes
        end
    | Reap full -> ignore (Kma.Pressure.reap k ~full : int)
    | Drain sel -> Kma.Percpu.drain k ~si:(sel mod nsizes)
    | Fault_on sel ->
        Vmsys.set_fault_rate (Kma.Kmem.vmsys k) ~seed:(cfg.seed lxor sel)
          cfg.fault_rate
    | Fault_off -> Vmsys.set_fault_rate (Kma.Kmem.vmsys k) 0.
    | Corrupt kind -> corrupt k kind
  in
  (* One simulated CPU executes the whole trace; the host code between
     its operations (where the checks run) is atomic, so every check
     lands at a quiescent point. *)
  Machine.run m
    [|
      (fun _ ->
        let rec go idx last = function
          | [] ->
              (* In sweep mode, always close with a final check so a
                 violation planted after the last multiple of
                 [check_every] cannot escape. *)
              if cfg.check_every > 1 && !failure = None then (
                match last with
                | Some op -> do_check (idx - 1) op
                | None -> ())
          | op :: rest ->
              step idx op;
              if
                !failure = None
                && (idx + 1) mod cfg.check_every = 0
              then do_check idx op;
              if !failure = None then go (idx + 1) (Some op) rest
        in
        go 0 None trace);
    |];
  {
    checks = !checks;
    allocs = !allocs;
    frees = !frees;
    cycles = Machine.elapsed m;
    failure = !failure;
  }

let run cfg = execute cfg (gen cfg)

(* --- greedy trace minimization --- *)

let fails cfg trace = (execute cfg trace).failure <> None

(* Truncate to the failure point, then greedily delete chunks (halving
   the chunk size down to 1) as long as the trace still fails.  Purely
   deterministic: same config + trace in, same minimized trace out. *)
let minimize cfg trace =
  match (execute cfg trace).failure with
  | None -> trace
  | Some f ->
      let trace = List.filteri (fun i _ -> i <= f.index) trace in
      let rec shrink chunk trace =
        if chunk < 1 then trace
        else begin
          let rec pass pos trace =
            if pos >= List.length trace then trace
            else
              let cand =
                List.filteri (fun i _ -> i < pos || i >= pos + chunk) trace
              in
              if List.length cand < List.length trace && fails cfg cand then
                pass pos cand
              else pass (pos + chunk) trace
          in
          shrink (chunk / 2) (pass 0 trace)
        end
      in
      shrink (max 1 ((List.length trace + 1) / 2)) trace

(* --- sharded seed matrices --- *)

let run_matrix ?(jobs = 1) cfgs =
  let cells =
    Parallel.map ~jobs (fun cfg -> Check.shard (fun () -> run cfg)) cfgs
  in
  List.map
    (fun (outcome, harvest) ->
      Check.absorb harvest;
      outcome)
    cells
