(** Heap-consistency checking for the allocator: {!Check} makes the
    structural invariants of the paper's Design section executable, and
    {!Fuzz} drives the allocator against a reference model to enforce
    them over randomized histories.  This root module re-exports
    {!Check} flat — [Heapcheck.check], [Heapcheck.enable],
    [Heapcheck.report] — alongside [Heapcheck.Fuzz].

    Invariants: everything here is host-side and zero-perturbation
    (uncharged reads only, no locks, no simulated writes); checks are
    sound only at quiescent points — see {!Check}. *)

include module type of struct
  include Check
end

module Fuzz = Fuzz
