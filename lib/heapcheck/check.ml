open Sim

type rule =
  | Gbl_count
  | Percpu_count
  | Page_nfree
  | Minhint
  | Span_state
  | Conservation
  | Dup_block

let rule_name = function
  | Gbl_count -> "gbl-count"
  | Percpu_count -> "percpu-count"
  | Page_nfree -> "page-nfree"
  | Minhint -> "minhint"
  | Span_state -> "span-state"
  | Conservation -> "conservation"
  | Dup_block -> "dup-block"

type violation = { rule : rule; detail : string }

(* --- the pure structural check --- *)

(* Bounded walk of a block chain (word-0 links): calls [f] per block
   and returns [Some length], or [None] if the chain exceeds [limit]
   nodes (corrupt link or cycle).  Never raises: a checker that crashes
   on the corruption it exists to diagnose is useless. *)
let walk_chain mem ~limit head f =
  let rec go a n =
    if a = 0 then Some n
    else if n >= limit then None
    else begin
      f a;
      go (Memory.get mem (a + Kma.Freelist.link)) (n + 1)
    end
  in
  go head 0

let check ?live (k : Kma.Kmem.t) =
  let ctx : Kma.Ctx.t = k in
  let mem = Kma.Ctx.memory ctx in
  let ly = ctx.Kma.Ctx.layout in
  let p = Kma.Ctx.params ctx in
  let nsizes = ly.Kma.Layout.nsizes in
  let ncpus = ly.Kma.Layout.ncpus in
  let pdw = ly.Kma.Layout.pd_words in
  let pressure_on = (ctx.Kma.Ctx.pressure).Kma.Ctx.enabled in
  let viols = ref [] in
  let add rule fmt =
    Printf.ksprintf (fun detail -> viols := { rule; detail } :: !viols) fmt
  in
  (* Oracles guard their walks with a node cap; a corrupt next pointer
     must surface as a violation, not an exception. *)
  let guard rule what f ~fallback =
    try f ()
    with Invalid_argument msg ->
      add rule "%s walk aborted: %s" what msg;
      fallback
  in
  let bpp si = Kma.Params.blocks_per_page p si in
  let max_bpp = ref 1 in
  for si = 0 to nsizes - 1 do
    if bpp si > !max_bpp then max_bpp := bpp si
  done;
  let limit = (Kma.Layout.total_data_pages ly * !max_bpp) + 8 in

  (* (3) Boundary-tag tiling of every vmblk's page descriptors.  Also
     collects the split pages per class and the page totals that the
     conservation check needs. *)
  let nvmblks = Kma.Vmblk.nvmblks_oracle ctx in
  let split_pages = Array.make nsizes [] in
  let total_split = ref 0 in
  let span_pages = ref 0 in
  let tiled_free = Hashtbl.create 16 in
  for v = 0 to nvmblks - 1 do
    let vb = Kma.Layout.vmblk_addr ly ~index:v in
    let dp = ref 0 in
    while !dp < ly.Kma.Layout.data_pages do
      let pd = Kma.Layout.pd_addr ly ~vmblk:vb ~data_page:!dp in
      let st = Memory.get mem (pd + Kma.Vmblk.pd_state) in
      let adv =
        if st = Kma.Vmblk.st_free_head then begin
          let len = Memory.get mem (pd + Kma.Vmblk.pd_arg) in
          if len < 1 || !dp + len > ly.Kma.Layout.data_pages then begin
            add Span_state "free span at pd %d has impossible length %d" pd
              len;
            1
          end
          else begin
            for i = 1 to len - 2 do
              let ipd = pd + (i * pdw) in
              let ist = Memory.get mem (ipd + Kma.Vmblk.pd_state) in
              if ist <> Kma.Vmblk.st_free_mid then
                add Span_state
                  "interior pd %d of free span %d (len %d) in state %d, \
                   want free-mid"
                  ipd pd len ist
            done;
            if len > 1 then begin
              let tpd = pd + ((len - 1) * pdw) in
              if Memory.get mem (tpd + Kma.Vmblk.pd_state)
                 <> Kma.Vmblk.st_free_tail
              then
                add Span_state
                  "tail pd %d of free span %d (len %d) in state %d, want \
                   free-tail"
                  tpd pd len
                  (Memory.get mem (tpd + Kma.Vmblk.pd_state))
              else if Memory.get mem (tpd + Kma.Vmblk.pd_arg) <> pd then
                add Span_state
                  "tail pd %d back-pointer %d does not name its head %d" tpd
                  (Memory.get mem (tpd + Kma.Vmblk.pd_arg))
                  pd
            end;
            Hashtbl.replace tiled_free pd len;
            len
          end
        end
        else if st = Kma.Vmblk.st_split then begin
          let si = Memory.get mem (pd + Kma.Vmblk.pd_sizeidx) in
          if si < 0 || si >= nsizes then
            add Span_state "split pd %d carries bad size class %d" pd si
          else begin
            split_pages.(si) <- pd :: split_pages.(si);
            incr total_split
          end;
          1
        end
        else if st = Kma.Vmblk.st_span_alloc then begin
          let n = Memory.get mem (pd + Kma.Vmblk.pd_arg) in
          if n < 1 || !dp + n > ly.Kma.Layout.data_pages then begin
            add Span_state "allocated span at pd %d has impossible length %d"
              pd n;
            1
          end
          else begin
            for i = 1 to n - 1 do
              let ipd = pd + (i * pdw) in
              let ist = Memory.get mem (ipd + Kma.Vmblk.pd_state) in
              if ist <> Kma.Vmblk.st_span_mid then
                add Span_state
                  "interior pd %d of allocated span %d (len %d) in state \
                   %d, want span-mid"
                  ipd pd n ist
            done;
            span_pages := !span_pages + n;
            n
          end
        end
        else begin
          add Span_state
            "pd %d at a span boundary reads orphaned state %d (%s)" pd st
            (if st = Kma.Vmblk.st_free_mid then "free-mid"
             else if st = Kma.Vmblk.st_free_tail then "free-tail"
             else if st = Kma.Vmblk.st_span_mid then "span-mid"
             else "unknown");
          1
        end
      in
      dp := !dp + adv
    done
  done;
  (* The free spans the tiling found must be exactly the spans on the
     free-span list, with matching recorded lengths. *)
  guard Span_state "free-span list"
    (fun () ->
      List.iter
        (fun (pd, len) ->
          match Hashtbl.find_opt tiled_free pd with
          | None ->
              add Span_state
                "span-list entry pd %d (len %d) is not a free-span boundary"
                pd len
          | Some l ->
              if l <> len then
                add Span_state
                  "span-list entry pd %d records len %d but tiles as %d" pd
                  len l;
              Hashtbl.remove tiled_free pd)
        (Kma.Vmblk.free_spans_oracle ctx))
    ~fallback:();
  Hashtbl.iter
    (fun pd len ->
      add Span_state "free span pd %d (len %d) missing from the span list"
        pd len)
    tiled_free;

  (* Double-insertion sweep state, shared by every freelist walk below:
     each free block may appear on exactly one list, and must be backed
     by a split page of its own class (checked through the dope
     vector — the same lookup [Vmblk.pd_of_block] performs charged). *)
  let seen : (int, string) Hashtbl.t = Hashtbl.create 1024 in
  let arena_end =
    ly.Kma.Layout.vmblk_base
    + (ly.Kma.Layout.arena_vmblks * ly.Kma.Layout.vmblk_words)
  in
  let note_block ~what ~si a =
    (match Hashtbl.find_opt seen a with
    | Some prior ->
        add Dup_block "block %d is on both %s and %s" a prior what
    | None -> Hashtbl.add seen a what);
    if a < ly.Kma.Layout.vmblk_base || a >= arena_end then
      add Conservation "block %d on %s lies outside the vmblk arena" a what
    else begin
      let vb = Memory.get mem (Kma.Layout.dope_entry ly a) in
      if vb = 0 then
        add Conservation "block %d on %s has no dope-vector entry" a what
      else begin
        let dpg =
          ((a - vb) lsr ly.Kma.Layout.page_shift) - ly.Kma.Layout.hdr_pages
        in
        if dpg < 0 || dpg >= ly.Kma.Layout.data_pages then
          add Conservation "block %d on %s falls in vmblk header pages" a
            what
        else begin
          let pd = Kma.Layout.pd_addr ly ~vmblk:vb ~data_page:dpg in
          if Memory.get mem (pd + Kma.Vmblk.pd_state) <> Kma.Vmblk.st_split
          then
            add Conservation
              "block %d on %s sits in a page whose descriptor is not split \
               (state %d)"
              a what
              (Memory.get mem (pd + Kma.Vmblk.pd_state))
          else if Memory.get mem (pd + Kma.Vmblk.pd_sizeidx) <> si then
            add Conservation
              "block %d on %s (class %d) sits in a class-%d page" a what si
              (Memory.get mem (pd + Kma.Vmblk.pd_sizeidx))
        end
      end
    end
  in
  let free_counts = Array.make nsizes 0 in

  (* (2) Coalesce-to-page layer: pd_nfree vs the intra-page chain, radix
     bucket membership, and the minhint lower bound. *)
  let bucket_of : (int, int * int) Hashtbl.t = Hashtbl.create 64 in
  for si = 0 to nsizes - 1 do
    let buckets =
      guard Page_nfree
        (Printf.sprintf "class %d radix buckets" si)
        (fun () -> Kma.Pagepool.bucket_pages_oracle ctx ~si)
        ~fallback:[]
    in
    List.iter
      (fun (b, pages) ->
        List.iter
          (fun pd ->
            match Hashtbl.find_opt bucket_of pd with
            | Some _ -> add Page_nfree "pd %d sits on two radix buckets" pd
            | None -> Hashtbl.add bucket_of pd (si, b))
          pages)
      buckets;
    let hint = Kma.Pagepool.minhint_oracle ctx ~si in
    if hint < 1 || hint > bpp si + 1 then
      add Minhint "class %d minhint %d outside [1, %d]" si hint (bpp si + 1)
    else
      List.iter
        (fun (b, pages) ->
          if pages <> [] && hint > b then
            add Minhint
              "class %d minhint %d is above non-empty bucket %d (not a \
               lower bound)"
              si hint b)
        buckets
  done;
  for si = 0 to nsizes - 1 do
    List.iter
      (fun pd ->
        let page = Kma.Layout.page_of_pd ly ~pd in
        let nfree = Memory.get mem (pd + Kma.Vmblk.pd_nfree) in
        let words = Kma.Params.size_words p si in
        let what = Printf.sprintf "page %d intra-page list" page in
        let len =
          walk_chain mem ~limit (Memory.get mem (pd + Kma.Vmblk.pd_blkhead))
            (fun a ->
              note_block ~what ~si a;
              if a < page || a >= page + ly.Kma.Layout.page_words then
                add Page_nfree
                  "block %d on page %d's intra-page list is outside the \
                   page"
                  a page
              else if (a - page) mod words <> 0 then
                add Page_nfree
                  "block %d on page %d's intra-page list is misaligned for \
                   class %d"
                  a page si)
        in
        (match len with
        | None ->
            add Page_nfree "page %d intra-page list does not terminate" page
        | Some n ->
            free_counts.(si) <- free_counts.(si) + n;
            if n <> nfree then
              add Page_nfree
                "page %d pd_nfree says %d but the intra-page list holds %d"
                page nfree n);
        if nfree < 0 || nfree >= bpp si then
          add Page_nfree
            "page %d pd_nfree %d outside [0, %d) (full pages return to the \
             vmblk layer immediately)"
            page nfree (bpp si);
        match Hashtbl.find_opt bucket_of pd with
        | Some (bsi, b) ->
            if bsi <> si then
              add Page_nfree "page %d (class %d) sits on class %d's buckets"
                page si bsi
            else if b <> nfree then
              add Page_nfree
                "page %d holds %d free blocks but sits on bucket %d" page
                nfree b;
            Hashtbl.remove bucket_of pd
        | None ->
            if nfree > 0 then
              add Page_nfree
                "page %d holds %d free blocks but is on no radix bucket"
                page nfree)
      split_pages.(si)
  done;
  Hashtbl.iter
    (fun pd (si, b) ->
      add Page_nfree
        "pd %d on class %d bucket %d does not describe a split page" pd si b)
    bucket_of;

  (* (1) per-CPU caches: count words vs chain lengths, plus the
     target-discipline bounds. *)
  for cpu = 0 to ncpus - 1 do
    for si = 0 to nsizes - 1 do
      let (mh, mc), (ah, ac), tgt = Kma.Percpu.cache_oracle ctx ~cpu ~si in
      let deflt = p.Kma.Params.targets.(si) in
      let half name head cword =
        let what = Printf.sprintf "cpu%d %s[%d]" cpu name si in
        match
          walk_chain mem ~limit head (fun a -> note_block ~what ~si a)
        with
        | None ->
            add Percpu_count "%s chain does not terminate" what;
            0
        | Some n ->
            if n <> cword then
              add Percpu_count "%s count word says %d but the chain holds %d"
                what cword n;
            if n > deflt then
              add Percpu_count "%s holds %d blocks, above the target bound %d"
                what n deflt;
            n
      in
      let nm = half "main" mh mc in
      let na = half "aux" ah ac in
      free_counts.(si) <- free_counts.(si) + nm + na;
      if not pressure_on then begin
        if tgt <> deflt then
          add Percpu_count
            "cpu%d class %d target word %d differs from the boot target %d \
             with pressure disabled"
            cpu si tgt deflt;
        if ac <> 0 && ac <> tgt then
          add Percpu_count
            "cpu%d class %d aux holds %d blocks, want 0 or a full target \
             list of %d"
            cpu si ac tgt
      end
    done
  done;

  (* (1) global layer: every gblfree count word is the true chain
     length, the list-of-lists never carries a non-target list (bounded
     by the boot target while adaptive targets move), and the bucket
     count is honest. *)
  for si = 0 to nsizes - 1 do
    let deflt = p.Kma.Params.targets.(si) in
    guard Gbl_count
      (Printf.sprintf "class %d gblfree" si)
      (fun () ->
        let lists = Kma.Global.lists_oracle ctx ~si in
        let nl = Kma.Global.nlists_oracle ctx ~si in
        if List.length lists <> nl then
          add Gbl_count
            "class %d nlists word says %d but gblfree carries %d lists" si
            nl (List.length lists);
        List.iteri
          (fun i (head, cnt) ->
            let what = Printf.sprintf "gblfree[%d] list %d" si i in
            match
              walk_chain mem ~limit head (fun a -> note_block ~what ~si a)
            with
            | None -> add Gbl_count "%s chain does not terminate" what
            | Some n ->
                free_counts.(si) <- free_counts.(si) + n;
                if n <> cnt then
                  add Gbl_count
                    "%s count word says %d but the chain holds %d" what cnt
                    n;
                if pressure_on then begin
                  if cnt < 1 || cnt > deflt then
                    add Gbl_count
                      "%s carries %d blocks, outside [1, %d] (boot target)"
                      what cnt deflt
                end
                else if cnt <> deflt then
                  add Gbl_count
                    "%s carries %d blocks, not a full target list of %d"
                    what cnt deflt)
          lists)
      ~fallback:();
    List.iteri
      (fun node (bh, bc) ->
        let what =
          if node = 0 then Printf.sprintf "gbl bucket[%d]" si
          else Printf.sprintf "gbl bucket[n%d][%d]" node si
        in
        match walk_chain mem ~limit bh (fun a -> note_block ~what ~si a) with
        | None -> add Gbl_count "%s chain does not terminate" what
        | Some n ->
            free_counts.(si) <- free_counts.(si) + n;
            if n <> bc then
              add Gbl_count "%s count word says %d but the chain holds %d"
                what bc n)
      (Kma.Global.buckets_oracle ctx ~si)
  done;

  (* (4) conservation: free + outstanding = split capacity per class,
     and every granted physical page is accounted to exactly one split
     page or allocated span. *)
  for si = 0 to nsizes - 1 do
    let capacity = List.length split_pages.(si) * bpp si in
    match live with
    | Some lv ->
        if free_counts.(si) + lv.(si) <> capacity then
          add Conservation
            "class %d: free %d + live %d <> capacity %d (%d split pages x \
             %d blocks)"
            si free_counts.(si) lv.(si) capacity
            (List.length split_pages.(si))
            (bpp si)
    | None ->
        if free_counts.(si) > capacity then
          add Conservation "class %d: free %d exceeds split capacity %d" si
            free_counts.(si) capacity
  done;
  let granted = Vmsys.granted ctx.Kma.Ctx.vmsys in
  if granted <> !total_split + !span_pages then
    add Conservation
      "VM system has %d pages granted but descriptors account for %d \
       (split %d + span-allocated %d)"
      granted
      (!total_split + !span_pages)
      !total_split !span_pages;
  List.rev !viols

(* --- lifecycle (lockcheck's enable/on/report idiom) --- *)

exception Violation of string

type mode = Paranoid | Sweep of int

type state = {
  abort : bool;
  mode_v : mode;
  mutable checks : int;
  mutable nviol : int;
  mutable viols : violation list; (* newest first *)
}

(* The checker state is domain-local so that lib/parallel can run
   checker-enabled cells in worker domains without sharing mutable
   state: each domain sees its own slot.  [armed] is the cross-domain
   face of [enable]: it publishes the (abort, mode) configuration so
   {!shard} can install an identically-configured fresh state inside
   whichever domain runs the cell. *)
let state_key : state option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let armed : (bool * mode) option Atomic.t = Atomic.make None

let enable ?(abort = true) ?(mode = Paranoid) () =
  (match mode with
  | Sweep n when n < 1 -> invalid_arg "Heapcheck.enable: sweep period < 1"
  | _ -> ());
  Atomic.set armed (Some (abort, mode));
  Domain.DLS.get state_key
  := Some { abort; mode_v = mode; checks = 0; nviol = 0; viols = [] }

let disable () =
  Atomic.set armed None;
  Domain.DLS.get state_key := None

let state () = !(Domain.DLS.get state_key)
let on () = match state () with Some _ -> true | None -> false
let mode () = match state () with Some st -> Some st.mode_v | None -> None

let note (v : violation) =
  match state () with
  | None -> ()
  | Some st ->
      st.nviol <- st.nviol + 1;
      st.viols <- v :: st.viols;
      (* Host-side accessor only: recording a violation must not add a
         yield point (the flight recorder's zero-perturbation rule). *)
      (match Machine.running () with
      | Some (cpu, time) ->
          Flightrec.Recorder.emit ~cpu ~time
            (Flightrec.Event.Heapcheck_violation { rule = rule_name v.rule })
      | None -> ());
      if st.abort then raise (Violation (rule_name v.rule ^ ": " ^ v.detail))

let checkpoint ?live k =
  match state () with
  | None -> ()
  | Some st ->
      st.checks <- st.checks + 1;
      List.iter note (check ?live k)

(* --- sharding: checker-enabled cells in worker domains --- *)

type harvest = { hchecks : int; hviols : violation list (* oldest first *) }

let shard f =
  match Atomic.get armed with
  | None -> (f (), None)
  | Some (abort, mode) ->
      (* Install a fresh, identically-configured state for this cell in
         the current domain (saving whatever was there: on the calling
         domain that is the [enable]d state itself).  Both the jobs:1
         and the jobs:N path run THIS code, so a cell's checkpoints and
         violations are gathered identically either way — determinism
         of the merged report is by construction, not by luck. *)
      let slot = Domain.DLS.get state_key in
      let saved = !slot in
      slot :=
        Some { abort; mode_v = mode; checks = 0; nviol = 0; viols = [] };
      let finish () =
        let st =
          match !slot with Some st -> st | None -> assert false
        in
        slot := saved;
        { hchecks = st.checks; hviols = List.rev st.viols }
      in
      (match f () with
      | r -> (r, Some (finish ()))
      | exception e ->
          let bt = Printexc.get_raw_backtrace () in
          ignore (finish ());
          Printexc.raise_with_backtrace e bt)

let absorb = function
  | None -> ()
  | Some h -> (
      match state () with
      | None -> ()
      | Some st ->
          st.checks <- st.checks + h.hchecks;
          List.iter
            (fun v ->
              st.nviol <- st.nviol + 1;
              st.viols <- v :: st.viols)
            h.hviols)

let violations () =
  match state () with
  | None -> []
  | Some st -> List.rev_map (fun v -> (v.rule, v.detail)) st.viols

let violation_count () = match state () with None -> 0 | Some st -> st.nviol
let check_count () = match state () with None -> 0 | Some st -> st.checks

let report () =
  match state () with
  | None -> "heapcheck: disabled\n"
  | Some st ->
      let b = Buffer.create 256 in
      Printf.bprintf b "heapcheck: %d checkpoint(s), %d violation(s)\n"
        st.checks st.nviol;
      let by_rule = Hashtbl.create 8 in
      List.iter
        (fun v ->
          let n =
            match Hashtbl.find_opt by_rule v.rule with
            | Some n -> n
            | None -> 0
          in
          Hashtbl.replace by_rule v.rule (n + 1))
        st.viols;
      List.iter
        (fun r ->
          match Hashtbl.find_opt by_rule r with
          | Some n -> Printf.bprintf b "  %-12s %d\n" (rule_name r) n
          | None -> ())
        [
          Gbl_count;
          Percpu_count;
          Page_nfree;
          Minhint;
          Span_state;
          Conservation;
          Dup_block;
        ];
      List.iter
        (fun v ->
          Printf.bprintf b "  [%s] %s\n" (rule_name v.rule) v.detail)
        (List.rev st.viols);
      Buffer.contents b

(* --- fragmentation sampling --- *)

(* The same page-descriptor walk the span-state rule performs, reduced
   to the counts a fragmentation curve needs.  Defensive like the
   checker proper: an impossible span length degrades to a one-page
   step instead of raising, so sampling a corrupt heap still returns. *)

type frag = {
  granted_pages : int;
  split_pages : int;
  span_pages : int;
  free_span_pages : int;
  free_blocks : int;
  free_bytes : int;
}

let fragmentation (k : Kma.Kmem.t) =
  let ctx : Kma.Ctx.t = k in
  let mem = Kma.Ctx.memory ctx in
  let ly = ctx.Kma.Ctx.layout in
  let p = Kma.Ctx.params ctx in
  let nsizes = ly.Kma.Layout.nsizes in
  let ncpus = ly.Kma.Layout.ncpus in
  let split = ref 0 and span = ref 0 and free_span = ref 0 in
  for v = 0 to Kma.Vmblk.nvmblks_oracle ctx - 1 do
    let vb = Kma.Layout.vmblk_addr ly ~index:v in
    let dp = ref 0 in
    while !dp < ly.Kma.Layout.data_pages do
      let pd = Kma.Layout.pd_addr ly ~vmblk:vb ~data_page:!dp in
      let st = Memory.get mem (pd + Kma.Vmblk.pd_state) in
      let adv =
        if st = Kma.Vmblk.st_free_head then begin
          let len = Memory.get mem (pd + Kma.Vmblk.pd_arg) in
          let len =
            if len < 1 || !dp + len > ly.Kma.Layout.data_pages then 1 else len
          in
          free_span := !free_span + len;
          len
        end
        else if st = Kma.Vmblk.st_split then begin
          incr split;
          1
        end
        else if st = Kma.Vmblk.st_span_alloc then begin
          let n = Memory.get mem (pd + Kma.Vmblk.pd_arg) in
          let n =
            if n < 1 || !dp + n > ly.Kma.Layout.data_pages then 1 else n
          in
          span := !span + n;
          n
        end
        else 1
      in
      dp := !dp + adv
    done
  done;
  let free_blocks = ref 0 and free_bytes = ref 0 in
  for si = 0 to nsizes - 1 do
    let n = ref 0 in
    for cpu = 0 to ncpus - 1 do
      n := !n + Kma.Percpu.cached_blocks_oracle ctx ~cpu ~si
    done;
    n := !n + Kma.Global.total_blocks_oracle ctx ~si;
    n := !n + Kma.Pagepool.free_blocks_oracle ctx ~si;
    free_blocks := !free_blocks + !n;
    free_bytes := !free_bytes + (!n * p.Kma.Params.sizes_bytes.(si))
  done;
  {
    granted_pages = Kma.Kmem.granted_pages_oracle k;
    split_pages = !split;
    span_pages = !span;
    free_span_pages = !free_span;
    free_blocks = !free_blocks;
    free_bytes = !free_bytes;
  }
