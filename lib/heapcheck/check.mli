(** Deterministic heap-consistency checker for the allocator: the
    structural invariants the paper's Design section relies on but
    never states, made executable.

    The paper's four-layer design only works because a handful of
    representation invariants hold at every quiescent point: the global
    layer's list-of-lists carries honest count words and (by its own
    stated contract) only target-sized lists; a split page's [pd_nfree]
    equals its intra-page chain length and names the radix bucket the
    descriptor sits on, with [minhint] a true lower bound; the page
    descriptors of every vmblk tile into a legal boundary-tag encoding
    (free spans bounded by [st_free_head]/[st_free_tail] with
    consistent back-pointers, no orphaned interior states readable as a
    boundary); blocks are conserved across the layers (per-CPU + global
    + page-layer free + outstanding = split capacity, and every granted
    physical page is a split page or part of an allocated span); and no
    address sits on two freelists.  {!check} verifies all of that
    host-side in one pass over simulated memory.

    Like the flight recorder and {!Lockcheck}, the checker is
    zero-perturbation: it reads memory with uncharged [Memory.get],
    identifies the emitting CPU with the host-side
    [Sim.Machine.running] accessor, and performs no simulated
    operation, so simulated cycle counts are bit-identical with the
    checker on or off (enforced by [test/heapcheck]).

    Soundness caveat: a global check is only meaningful at a quiescent
    point — between operations of a single-CPU program (host code
    between operations runs atomically), or after [Machine.run]
    returns.  Mid-run, other CPUs may be suspended inside a critical
    section and the structures legitimately inconsistent.

    Invariants: {!check} and {!checkpoint} must run only at quiescent
    points (no simulated CPU inside an allocator critical section); the
    checker itself takes no locks, charges no cycles, and never writes
    simulated memory. *)

(** The invariant families checked. *)
type rule =
  | Gbl_count
      (** a gblfree/bucket count word disagrees with its chain, or a
          list is not target-sized *)
  | Percpu_count
      (** a per-CPU count word disagrees with its chain, or the
          main/aux target discipline is broken *)
  | Page_nfree
      (** [pd_nfree] disagrees with the intra-page chain or the radix
          bucket the descriptor sits on *)
  | Minhint  (** [minhint] is not a lower bound on the occupied buckets *)
  | Span_state
      (** the page descriptors do not tile into a legal boundary-tag
          encoding, or disagree with the free-span list *)
  | Conservation
      (** blocks or pages are not conserved across the four layers *)
  | Dup_block  (** one address sits on two freelists *)

val rule_name : rule -> string
(** ["gbl-count"], ["percpu-count"], ["page-nfree"], ["minhint"],
    ["span-state"], ["conservation"], ["dup-block"]. *)

type violation = { rule : rule; detail : string }

val check : ?live:int array -> Kma.Kmem.t -> violation list
(** [check k] walks the allocator's structures in [k]'s simulated
    memory and returns every broken invariant (empty list = consistent).
    [live], when given, is the caller's count of outstanding small
    blocks per size class (a differential fuzzer's reference model);
    it upgrades the per-class conservation check from an inequality
    ([free <= capacity]) to an exact equation.  Pure and host-side:
    no simulated cycles, no writes, never raises on corrupt data. *)

(** {1 Fragmentation sampling} *)

(** One fragmentation sample: how the pages granted by the VM system
    are spent at a quiescent point.  [split_pages] are carved into
    small blocks for some size class, [span_pages] sit inside
    allocated large spans, [free_span_pages] are coalesced and ready to
    return; [free_blocks]/[free_bytes] total the small blocks cached on
    any freelist (per-CPU, global, or page layer).  A fragmentation
    curve compares [granted_pages] against the workload's live bytes
    over time: pages held while the live set shrinks is the
    fragmentation blow-up the paper's coalesce-to-page layer exists to
    prevent. *)
type frag = {
  granted_pages : int;
  split_pages : int;
  span_pages : int;
  free_span_pages : int;
  free_blocks : int;
  free_bytes : int;
}

val fragmentation : Kma.Kmem.t -> frag
(** [fragmentation k] is one sample, taken with the same host-side
    page-descriptor walk as {!check} (uncharged reads, no writes, no
    simulated cycles; quiescent points only, like {!check}).  Never
    raises on corrupt data. *)

(** {1 Lifecycle (the {!Lockcheck} enable/on/report idiom)} *)

exception Violation of string
(** Raised by {!note} / {!checkpoint} on the first recorded violation
    when the checker was enabled with [abort = true] (the default). *)

(** How often a driver should check: after every operation, or every
    [n] operations (the fuzzer's cheap sweep). *)
type mode = Paranoid | Sweep of int

val enable : ?abort:bool -> ?mode:mode -> unit -> unit
(** [enable ()] installs a fresh checker state (any previous state is
    discarded).  With [abort = false], violations are recorded and
    emitted as flight-recorder events but do not raise — for drivers
    that want a post-run report rather than a crash.

    The state itself is domain-local (installed in the calling domain);
    the (abort, mode) configuration is additionally published
    cross-domain so that {!shard} can arm identically-configured fresh
    states inside [Parallel.map] worker domains.
    @raise Invalid_argument if [mode] is [Sweep n] with [n < 1]. *)

val disable : unit -> unit
(** Drop the checker state; {!on} becomes false.  Idempotent. *)

val on : unit -> bool
(** The single branch instrumentation sites test. *)

val mode : unit -> mode option
(** The enabled mode, for drivers choosing a checking cadence. *)

val note : violation -> unit
(** [note v] records a violation found by an external caller (the
    fuzzer): appends it, emits a [Heapcheck_violation] flight-recorder
    event via the host-side [Machine.running] accessor, and raises
    {!Violation} when enabled with [abort = true].  No-op while {!on}
    is false. *)

val checkpoint : ?live:int array -> Kma.Kmem.t -> unit
(** [checkpoint k] runs {!check} and {!note}s every violation — the
    one-call hook experiment drivers place at quiescent points.  No-op
    while {!on} is false. *)

(** {1 Sharding (checker-enabled cells under [Parallel.map])} *)

type harvest
(** What one sharded cell's checker saw: its checkpoint count and its
    violations in the order found. *)

val shard : (unit -> 'a) -> 'a * harvest option
(** [shard f] runs one experiment cell with a private, fresh checker
    state in the {e current} domain — safe from any [Parallel.map]
    worker.  If the checker is enabled (in the driving domain), the
    fresh state copies its (abort, mode) configuration, [f]'s
    checkpoints and violations land in it, and the harvest is returned
    for the driver to {!absorb}; the domain's previous state is
    restored on the way out, exceptional or not.  If the checker is
    disabled, [shard f] is just [(f (), None)].

    Because the jobs:1 and jobs:N paths run the same code, absorbing
    every cell's harvest in input order yields a report bit-identical
    to a sequential run — the checker analogue of [Parallel.map]'s
    determinism contract.  With [abort = true] a violation still
    raises {!Violation} inside the cell; [Parallel.map] re-raises the
    smallest input index's exception, matching the sequential run. *)

val absorb : harvest option -> unit
(** [absorb h] merges a {!shard} harvest into the calling domain's
    enabled state, preserving the cell's violation order.  Drivers call
    it once per cell, in input order.  No-op on [None] or while {!on}
    is false. *)

(** {1 Results (host-side)} *)

val violations : unit -> (rule * string) list
(** All recorded violations, oldest first (empty when disabled). *)

val violation_count : unit -> int
val check_count : unit -> int
(** Checkpoints run since {!enable}. *)

val report : unit -> string
(** Text report: checkpoints run, per-rule violation counts, and every
    recorded violation in full. *)
