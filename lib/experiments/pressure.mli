(** Experiment E8 — memory pressure: throughput and pages held vs VM
    grant-denial rate, cookie/newkma (with the {!Kma.Pressure}
    subsystem enabled) against the mk baseline.

    The paper's Future Directions section proposes adapting [target]
    dynamically under memory pressure; E8 measures that implemented
    proposal: graceful degradation (bounded throughput loss, zero
    permanent failures, pages actually returned to the VM system by
    reap) versus mk's permanent page hoarding.  Deterministic: the
    denial stream comes from the VM system's seeded fault PRNG. *)

type row = {
  rate : float;  (** injected grant-denial probability *)
  pairs_per_sec : float;
  failures : int;  (** allocations that failed permanently *)
  pages_held : int;  (** physical pages still held at end of run *)
  reclaims : int;  (** total pages returned to the VM system *)
  reaps : int;  (** pressure reap passes *)
  reap_pages : int;  (** pages returned by reap passes specifically *)
  retries : int;  (** allocations rescued by reap-and-retry *)
  shrinks : int;  (** multiplicative target decreases *)
  grows : int;  (** additive target recoveries *)
}

type series = { name : string; rows : row list }

type result = {
  ncpus : int;
  rounds : int;
  batch : int;
  rates : float list;
  series : series list;  (** cookie, newkma, mk *)
}

val default_rates : float list
(** 0 %, 5 %, 10 %, 20 %, 35 %. *)

val run :
  ?jobs:int ->
  ?ncpus:int ->
  ?rounds:int ->
  ?batch:int ->
  ?rates:float list ->
  ?seed:int ->
  unit ->
  result
(** [run ()] measures every (allocator, rate) cell on a fresh machine
    (4 CPUs, 30 rounds of 120 alloc/free pairs per CPU by default).
    [jobs] (default 1) fans the independent cells out with
    [Parallel.map]; each cell runs under [Heapcheck.shard] and its
    harvest is absorbed in input order, so both the rows and the
    checker report are bit-identical at any job count. *)

val print : result -> unit

val graceful : ?at:float -> result -> bool
(** [graceful r] checks the E8 acceptance shape at denial rate [at]
    (default 0.2): cookie and newkma keep >= 50 % of their fault-free
    throughput with zero failures and reap-returned pages, while mk
    fails allocations or holds strictly more pages than cookie. *)
