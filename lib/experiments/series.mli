(** Row/series printing for the experiment harness: aligned tables on
    stdout and machine-readable TSV.  Reproduction infrastructure with
    no paper counterpart — the formatting idiom every experiment's
    tables share. *)

val table : header:string list -> string list list -> unit
(** [table ~header rows] prints an aligned table. *)

val tsv : header:string list -> string list list -> unit

val f1 : float -> string
(** One decimal. *)

val f3 : float -> string
val sci : float -> string
(** Scientific, three significant digits (e.g. ["1.23e+06"]). *)

val pct : float -> string
(** Percentage with two decimals; ["-"] for NaN. *)

val heading : string -> unit
(** Print an underlined section heading. *)
