(** Bench section over the scenario library: replay every scenario on
    the new allocator and tabulate throughput, the trace-driven
    complement to the paper's synthetic best/worst-case figures.

    Replays are independent cells and fan out over {!Parallel.map};
    everything printed is simulated-machine data, so the output is
    bit-identical at any job count.  Host wall time per scenario is
    returned separately (via the caller's clock) for BENCH_host.json,
    never printed in the table. *)

type row = {
  name : string;
  ncpus : int;
  events : int;
  result : Workload.Trace.result;
  ops_per_sec : float;  (** simulated ops per simulated second *)
  wall_s : float;  (** host seconds, 0 when no clock was given *)
}

val run : ?jobs:int -> ?now:(unit -> float) -> unit -> row list
(** [run ()] replays {!Scenario.all} (default seeds), [jobs]-wide.
    [now] is the caller's monotonic clock (host seconds); omitted, all
    [wall_s] are 0. *)

val print : row list -> unit
(** Deterministic table of the simulated columns. *)

val print_highlights : unit -> unit
(** For each scenario with a target pathology, run the (serial, flight
    recorder) {!Scenario.Pathology} analysis and print one line saying
    whether the target was detected — the bench-level proof that the
    detectors fire where they should. *)
