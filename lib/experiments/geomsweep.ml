type row = {
  line_words : int;
  ways : int;
  which : Baseline.Allocator.which;
  cycles_per_pair : float;
  miss_pct : float;
  c2c_pct : float;
  pairs_per_sec : float;
}

(* The two interesting axes from the paper's cache-profile analysis:
   line size against block/descriptor layout (false sharing), and
   associativity against the allocators' working sets (conflict
   misses).  Costs stay at the defaults so cycle deltas are geometry
   effects, not price changes. *)
let default_points =
  [
    (4, 0); (8, 0); (16, 0); (32, 0); (* line sweep, fully associative *)
    (8, 1); (8, 2); (8, 4); (* associativity sweep at the default line *)
  ]

let default_whichs = [ Baseline.Allocator.Newkma; Baseline.Allocator.Cookie ]

let cell ~line_words ~ways ~which ~ncpus ~iters ~depth ~bytes =
  (* Vary geometry around the ambient base (identical to [default]
     unless the driver installed one), so [--geometry miss=60 …] asks
     "the same sweep under a doubled memory-miss cost". *)
  let geometry =
    { (Sim.Geometry.ambient ()) with Sim.Geometry.line_words; ways }
  in
  let config =
    Sim.Config.make ~geometry ~memory_words:(2 * 1024 * 1024)
      ~uncached_words:512 ()
  in
  let m, a = Workload.Rig.fresh which ~config ~ncpus () in
  let words = bytes / 4 in
  (* One iteration: allocate a burst of [depth] blocks, write every
     word of each (a consumer actually using its memory — this is what
     makes line size and capacity bite: the burst's working set,
     [depth * bytes] per CPU plus allocator metadata, overflows the
     smaller geometries), then free the burst.  The stash is per-CPU
     host state: sharing it across the simulated CPUs would corrupt
     the heap with cross-CPU double frees. *)
  let burst addrs =
    for i = 0 to depth - 1 do
      Sim.Machine.work Workload.Bestcase.loop_overhead;
      let addr = a.Baseline.Allocator.alloc ~bytes in
      assert (addr <> 0);
      addrs.(i) <- addr;
      for w = 0 to words - 1 do
        Sim.Machine.write (addr + w) i
      done
    done;
    for i = 0 to depth - 1 do
      a.Baseline.Allocator.free ~addr:addrs.(i) ~bytes
    done
  in
  let warmup = (iters / 10) + 1 in
  Sim.Machine.run_symmetric m ~ncpus (fun _ ->
      let addrs = Array.make depth 0 in
      for _ = 1 to warmup do
        burst addrs
      done);
  (* Measure the steady state only: drop warm-up cycles AND warm-up
     cache traffic, so miss rates are not diluted by cold fills. *)
  Sim.Machine.reset_clocks m;
  Sim.Cache.reset_stats (Sim.Machine.cache m);
  Sim.Machine.run_symmetric m ~ncpus (fun _ ->
      let addrs = Array.make depth 0 in
      for _ = 1 to iters do
        burst addrs
      done);
  let cycles = Sim.Machine.elapsed m in
  let st = Sim.Cache.total_stats (Sim.Machine.cache m) in
  let accesses = st.Sim.Cache.loads + st.Sim.Cache.stores + st.Sim.Cache.rmws in
  let rate n = if accesses = 0 then 0. else 100. *. float_of_int n /. float_of_int accesses in
  {
    line_words;
    ways;
    which;
    (* Per-CPU rate: the CPUs run concurrently, so the elapsed clock
       over per-CPU pairs is the cost of one alloc/write/free pair. *)
    cycles_per_pair = float_of_int cycles /. float_of_int (iters * depth);
    miss_pct = rate (st.Sim.Cache.misses + st.Sim.Cache.c2c);
    c2c_pct = rate st.Sim.Cache.c2c;
    pairs_per_sec =
      Workload.Rig.pairs_per_sec (Sim.Machine.config m)
        ~pairs:(ncpus * iters * depth) ~cycles;
  }

let run ?(jobs = 1) ?(points = default_points) ?(whichs = default_whichs)
    ?(ncpus = 8) ?(iters = 50) ?(depth = 96) ?(bytes = 256) () =
  let cells =
    List.concat_map
      (fun which -> List.map (fun (lw, w) -> (which, lw, w)) points)
      whichs
  in
  Parallel.map ~jobs
    (fun (which, line_words, ways) ->
      cell ~line_words ~ways ~which ~ncpus ~iters ~depth ~bytes)
    cells

let assoc_label ways = if ways = 0 then "full" else string_of_int ways

let print ?(ncpus = 8) ?(depth = 96) rows =
  Series.heading
    (Printf.sprintf
       "E12: cache-geometry sweep (%d-deep alloc/write/free bursts, %d CPUs)"
       depth ncpus);
  Series.table
    ~header:
      [ "alloc"; "line"; "assoc"; "cyc/pair"; "miss%"; "c2c%"; "pairs/s" ]
    (List.map
       (fun r ->
         [
           Baseline.Allocator.name_of r.which;
           string_of_int r.line_words;
           assoc_label r.ways;
           Series.f1 r.cycles_per_pair;
           Series.pct (r.miss_pct /. 100.);
           Series.pct (r.c2c_pct /. 100.);
           Series.sci r.pairs_per_sec;
         ])
       rows)
