(** Experiments E3/E4 — the paper's Figures 7 and 8: best-case
    alloc/free pairs per second versus number of CPUs for the four
    allocators (cookie, newkma, mk, oldkma).  Figure 8 is the same data
    on a semilog scale, so one run serves both.

    Shape criteria (see EXPERIMENTS.md): cookie and newkma scale
    near-linearly, cookie about twice newkma; mk and oldkma peak at one
    CPU and decline; single-CPU cookie is an order of magnitude
    (paper: ~15x) above oldkma. *)

type point = {
  which : Baseline.Allocator.which;
  ncpus : int;
  pairs_per_sec : float;
}

val default_cpus : int list
(** [1; 2; 4; 8; 12; 16; 20; 25] — up to the paper's 25 measurable
    CPUs. *)

val run :
  ?jobs:int ->
  ?whichs:Baseline.Allocator.which list ->
  ?cpus:int list ->
  ?iters:int ->
  ?bytes:int ->
  unit ->
  point list
(** [run ()] sweeps every allocator over [cpus], [iters] timed pairs
    per CPU of [bytes]-byte blocks (default 256).  Each
    (allocator, ncpus) cell is an independent simulation; [jobs]
    (default 1) fans them out with [Parallel.map] — results are
    bit-identical at any job count. *)

val print_linear : point list -> unit
(** Figure 7: rows of pairs/s per CPU count, one column per
    allocator. *)

val print_semilog : point list -> unit
(** Figure 8: same series as log10(pairs/s). *)

val speedup : point list -> which:Baseline.Allocator.which -> (int * float) list
(** [(ncpus, throughput_ncpus / throughput_1)] for one allocator. *)

val single_cpu_ratio :
  point list ->
  num:Baseline.Allocator.which ->
  den:Baseline.Allocator.which ->
  float
(** Throughput ratio at 1 CPU (e.g. cookie/oldkma: the paper's 15x). *)
