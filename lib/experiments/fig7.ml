type point = {
  which : Baseline.Allocator.which;
  ncpus : int;
  pairs_per_sec : float;
}

let default_cpus = [ 1; 2; 4; 8; 12; 16; 20; 25 ]

let run ?(jobs = 1) ?(whichs = Baseline.Allocator.all) ?(cpus = default_cpus)
    ?(iters = 2000) ?(bytes = 256) () =
  (* Each cell builds its own machine, so the sweep fans out across
     domains; input order is preserved by Parallel.map, keeping the
     point list bit-identical to a sequential run. *)
  Parallel.map ~jobs
    (fun (which, ncpus) ->
      let r = Workload.Bestcase.run ~which ~ncpus ~iters ~bytes () in
      { which; ncpus; pairs_per_sec = r.Workload.Bestcase.pairs_per_sec })
    (List.concat_map
       (fun which -> List.map (fun ncpus -> (which, ncpus)) cpus)
       whichs)

let columns points =
  List.sort_uniq compare (List.map (fun p -> p.which) points)

let rows points fmt =
  let cols = columns points in
  let cpus = List.sort_uniq compare (List.map (fun p -> p.ncpus) points) in
  List.map
    (fun n ->
      string_of_int n
      :: List.map
           (fun w ->
             match
               List.find_opt (fun p -> p.which = w && p.ncpus = n) points
             with
             | Some p -> fmt p.pairs_per_sec
             | None -> "-")
           cols)
    cpus

let header points =
  "cpus" :: List.map Baseline.Allocator.name_of (columns points)

let print_linear points =
  Series.heading "Figure 7: best-case alloc/free pairs per second vs CPUs";
  Series.table ~header:(header points) (rows points Series.sci)

let print_semilog points =
  Series.heading "Figure 8: same data, log10(pairs per second)";
  Series.table ~header:(header points)
    (rows points (fun v -> Series.f3 (Float.log10 (max v 1.))))

let speedup points ~which =
  let base =
    match
      List.find_opt (fun p -> p.which = which && p.ncpus = 1) points
    with
    | Some p -> p.pairs_per_sec
    | None -> invalid_arg "Fig7.speedup: no 1-CPU point"
  in
  List.filter_map
    (fun p ->
      if p.which = which then Some (p.ncpus, p.pairs_per_sec /. base)
      else None)
    points

let single_cpu_ratio points ~num ~den =
  let at1 w =
    match List.find_opt (fun p -> p.which = w && p.ncpus = 1) points with
    | Some p -> p.pairs_per_sec
    | None -> invalid_arg "Fig7.single_cpu_ratio: missing 1-CPU point"
  in
  at1 num /. at1 den
