(* E8 — memory pressure: throughput and pages held vs VM grant-denial
   rate.  The paper's Future Directions section proposes adjusting
   [target] dynamically in response to memory pressure; this experiment
   measures the implemented subsystem (Kma.Pressure) the way the paper
   measures everything else: against the mk baseline, on the simulated
   machine.

   Workload: each CPU runs [rounds] rounds; a round allocates [batch]
   blocks (sizes rotating 64/256/1024 bytes) and then frees them all.
   Freeing a whole batch pushes lists through the global layer and
   returns fully-free pages, so every round regenerates VM traffic and
   every grant is a fresh chance to be denied.  The VM system injects
   denials at the configured rate (deterministic seeded PRNG); mk has
   no VM system — it carves its arena directly and never gives a page
   back — so its rows show the two failure modes the pressure subsystem
   avoids: permanent page hoarding, or allocation failure. *)

type row = {
  rate : float;  (* injected grant-denial probability *)
  pairs_per_sec : float;
  failures : int;  (* allocations that failed permanently *)
  pages_held : int;  (* physical pages held at end of run *)
  reclaims : int;  (* pages returned to the VM system, total *)
  reaps : int;
  reap_pages : int;  (* pages returned by reap passes specifically *)
  retries : int;  (* allocations rescued by reap-and-retry *)
  shrinks : int;
  grows : int;
}

type series = { name : string; rows : row list }

type result = {
  ncpus : int;
  rounds : int;
  batch : int;
  rates : float list;
  series : series list;
}

let sizes = [| 64; 256; 1024 |]

let run_cell ~ncpus ~rounds ~batch ~alloc ~free ~finish m =
  let slots = Array.init ncpus (fun _ -> Array.make batch 0) in
  let pairs = Array.make ncpus 0 in
  let failures = Array.make ncpus 0 in
  Sim.Machine.run_symmetric m ~ncpus (fun cpu ->
      let mine = slots.(cpu) in
      for _round = 1 to rounds do
        for i = 0 to batch - 1 do
          let a = alloc ~slot:i in
          mine.(i) <- a;
          if a = 0 then failures.(cpu) <- failures.(cpu) + 1
        done;
        for i = batch - 1 downto 0 do
          if mine.(i) <> 0 then begin
            free ~slot:i mine.(i);
            pairs.(cpu) <- pairs.(cpu) + 1
          end
        done
      done);
  let cycles = Sim.Machine.elapsed m in
  let total_pairs = Array.fold_left ( + ) 0 pairs in
  let total_failures = Array.fold_left ( + ) 0 failures in
  let pps =
    Workload.Rig.pairs_per_sec (Sim.Machine.config m) ~pairs:total_pairs
      ~cycles
  in
  finish ~pairs_per_sec:pps ~failures:total_failures

let kma_cell ~cookie ~ncpus ~rounds ~batch ~seed rate =
  let cfg = Workload.Rig.paper_config ~ncpus () in
  let m = Sim.Machine.create cfg in
  let params = Kma.Params.auto ~memory_words:cfg.Sim.Config.memory_words in
  let kmem = Kma.Kmem.create m ~params () in
  Kma.Pressure.enable kmem;
  let vmsys = Kma.Kmem.vmsys kmem in
  Sim.Vmsys.set_fault_rate vmsys ~seed rate;
  let cookies =
    Array.map (fun b -> Kma.Cookie.of_bytes_host kmem ~bytes:b) sizes
  in
  let alloc ~slot =
    let k = slot mod Array.length sizes in
    if cookie then
      match Kma.Cookie.try_alloc kmem cookies.(k) with
      | Some a -> a
      | None -> 0
    else
      match Kma.Kmem.try_alloc kmem ~bytes:sizes.(k) with
      | Some a -> a
      | None -> 0
  in
  let free ~slot a =
    let k = slot mod Array.length sizes in
    if cookie then Kma.Cookie.free kmem cookies.(k) a
    else Kma.Kmem.free kmem ~addr:a ~bytes:sizes.(k)
  in
  run_cell ~ncpus ~rounds ~batch ~alloc ~free m
    ~finish:(fun ~pairs_per_sec ~failures ->
      (* Quiescent point: the simulation has drained, so the heap
         checker (when armed) may sweep the whole allocator. *)
      if Heapcheck.on () then Heapcheck.checkpoint kmem;
      let st = Kma.Kmem.stats kmem in
      {
        rate;
        pairs_per_sec;
        failures;
        pages_held = Kma.Kmem.granted_pages_oracle kmem;
        reclaims = Sim.Vmsys.reclaim_count vmsys;
        reaps = st.Kma.Kstats.reaps;
        reap_pages = st.Kma.Kstats.reap_pages;
        retries = st.Kma.Kstats.pressure_retries;
        shrinks = st.Kma.Kstats.target_shrinks;
        grows = st.Kma.Kstats.target_grows;
      })

(* mk has no VM system to deny grants, so its row is rate-independent;
   it is still run per rate to keep the table aligned (and to show the
   contrast at a glance). *)
let mk_cell ~ncpus ~rounds ~batch rate =
  let cfg = Workload.Rig.paper_config ~ncpus () in
  let m = Sim.Machine.create cfg in
  let mk = Baseline.Mk.create m in
  let alloc ~slot =
    Baseline.Mk.alloc mk ~bytes:sizes.(slot mod Array.length sizes)
  in
  let free ~slot:_ a = Baseline.Mk.free mk ~addr:a in
  run_cell ~ncpus ~rounds ~batch ~alloc ~free m
    ~finish:(fun ~pairs_per_sec ~failures ->
      {
        rate;
        pairs_per_sec;
        failures;
        pages_held = Baseline.Mk.pages_carved_oracle mk;
        reclaims = 0;
        reaps = 0;
        reap_pages = 0;
        retries = 0;
        shrinks = 0;
        grows = 0;
      })

let default_rates = [ 0.0; 0.05; 0.1; 0.2; 0.35 ]

let run ?(jobs = 1) ?(ncpus = 4) ?(rounds = 30) ?(batch = 120)
    ?(rates = default_rates) ?(seed = 42) () =
  (* Flatten the (series x rate) grid in series-major order, fan the
     independent cells out, then regroup.  Each cell runs under
     Heapcheck.shard — its end-of-run checkpoint lands in a private
     domain-local state — and the harvests are absorbed in input
     order, so the checker report (and of course the rows) are
     bit-identical at any job count. *)
  let names = [ "cookie"; "newkma"; "mk" ] in
  let cell name rate =
    match name with
    | "cookie" -> kma_cell ~cookie:true ~ncpus ~rounds ~batch ~seed rate
    | "newkma" -> kma_cell ~cookie:false ~ncpus ~rounds ~batch ~seed rate
    | _ -> mk_cell ~ncpus ~rounds ~batch rate
  in
  let grid =
    List.concat_map (fun name -> List.map (fun r -> (name, r)) rates) names
  in
  let cells =
    Parallel.map ~jobs
      (fun (name, rate) -> Heapcheck.shard (fun () -> cell name rate))
      grid
  in
  let rows = List.map (fun (row, h) -> Heapcheck.absorb h; row) cells in
  let nrates = List.length rates in
  let series =
    List.mapi
      (fun i name ->
        {
          name;
          rows =
            List.filteri
              (fun j _ -> j >= i * nrates && j < (i + 1) * nrates)
              rows;
        })
      names
  in
  { ncpus; rounds; batch; rates; series }

let print r =
  Series.heading
    (Printf.sprintf
       "E8: memory pressure — throughput and pages held vs denial rate (%d \
        CPUs, %d rounds x %d blocks)"
       r.ncpus r.rounds r.batch);
  List.iter
    (fun s ->
      print_newline ();
      print_endline (s.name ^ ":");
      Series.table
        ~header:
          [
            "fault%"; "pairs/s"; "fail"; "pages-held"; "reclaims"; "reaps";
            "reap-pages"; "retries"; "shrink"; "grow";
          ]
        (List.map
           (fun row ->
             [
               Printf.sprintf "%.0f%%" (100. *. row.rate);
               Printf.sprintf "%.2e" row.pairs_per_sec;
               string_of_int row.failures;
               string_of_int row.pages_held;
               string_of_int row.reclaims;
               string_of_int row.reaps;
               string_of_int row.reap_pages;
               string_of_int row.retries;
               string_of_int row.shrinks;
               string_of_int row.grows;
             ])
           s.rows))
    r.series

let find_series r name = List.find (fun s -> s.name = name) r.series

let row_at s rate =
  List.find (fun (row : row) -> Float.equal row.rate rate) s.rows

(* The acceptance shape: at a 20 % denial rate the pressure-enabled
   allocator keeps >= half its fault-free throughput with zero
   permanent failures, its reaps provably return pages to the VM
   system, and mk — which cannot shed memory — either fails or holds
   strictly more pages. *)
let graceful ?(at = 0.2) r =
  let check name =
    let s = find_series r name in
    let base = row_at s 0.0 in
    let hit = row_at s at in
    hit.failures = 0
    && hit.pairs_per_sec >= 0.5 *. base.pairs_per_sec
    && hit.reap_pages > 0
    && hit.reclaims > 0
  in
  let mk_collapses =
    let mk = row_at (find_series r "mk") at in
    let ck = row_at (find_series r "cookie") at in
    mk.failures > 0 || mk.pages_held > ck.pages_held
  in
  check "cookie" && check "newkma" && mk_collapses
