type row = { interface : string; alloc_insns : int; free_insns : int }

let measure_pair m f_alloc f_free =
  (* Warm the caches and the per-CPU freelists, then measure single
     operations by the retired-instruction delta. *)
  let a = f_alloc () in
  f_free a;
  let a = f_alloc () in
  f_free a;
  let r0 = Sim.Machine.retired m ~cpu:0 in
  let a = f_alloc () in
  let r1 = Sim.Machine.retired m ~cpu:0 in
  f_free a;
  let r2 = Sim.Machine.retired m ~cpu:0 in
  (r1 - r0, r2 - r1)

(* New allocator: cookie and standard interfaces share a machine (the
   warm state carries from one measurement to the next, as in the
   paper's warm-path counts). *)
let kma_rows () =
  let bytes = 256 in
  let rows = ref [] in
  let m = Sim.Machine.create (Workload.Rig.paper_config ~ncpus:1 ()) in
  let kmem =
    Kma.Kmem.create m
      ~params:
        (Kma.Params.auto
           ~memory_words:(Sim.Machine.config m).Sim.Config.memory_words)
      ()
  in
  Sim.Machine.run m
    [|
      (fun _ ->
        let c = Kma.Cookie.of_bytes_host kmem ~bytes in
        let ca, cf =
          measure_pair m
            (fun () -> Kma.Cookie.alloc kmem c)
            (fun a -> Kma.Cookie.free kmem c a)
        in
        rows :=
          { interface = "cookie macros"; alloc_insns = ca; free_insns = cf }
          :: !rows;
        let sa, sf =
          measure_pair m
            (fun () -> Kma.Kmem.alloc kmem ~bytes)
            (fun a -> Kma.Kmem.free kmem ~addr:a ~bytes)
        in
        rows :=
          {
            interface = "standard kmem_alloc";
            alloc_insns = sa;
            free_insns = sf;
          }
          :: !rows);
    |];
  List.rev !rows

(* MK baseline on its own machine. *)
let mk_rows () =
  let bytes = 256 in
  let m2 = Sim.Machine.create (Workload.Rig.paper_config ~ncpus:1 ()) in
  let mk = Baseline.Mk.create m2 in
  let rows = ref [] in
  Sim.Machine.run m2
    [|
      (fun _ ->
        let ma, mf =
          measure_pair m2
            (fun () -> Baseline.Mk.alloc mk ~bytes)
            (fun a -> Baseline.Mk.free mk ~addr:a)
        in
        rows :=
          {
            interface = "mk (plus global lock)";
            alloc_insns = ma;
            free_insns = mf;
          }
          :: !rows);
    |];
  List.rev !rows

let run ?(jobs = 1) () =
  (* Two independent machines — a two-cell sweep; order is preserved
     by Parallel.map, so the row list is identical at any job count. *)
  List.concat (Parallel.map ~jobs (fun f -> f ()) [ kma_rows; mk_rows ])

let print rows =
  Series.heading "Instruction counts (warm fast paths, simulated insns)";
  Series.table
    ~header:[ "interface"; "alloc"; "free"; "paper" ]
    (List.map
       (fun r ->
         let paper =
           match r.interface with
           | "cookie macros" -> "13 / 13 (80x86)"
           | "standard kmem_alloc" -> "35 / 32 (80x86)"
           | _ -> "9 / 16 (VAX)"
         in
         [
           r.interface;
           string_of_int r.alloc_insns;
           string_of_int r.free_insns;
           paper;
         ])
       rows)
