(** Experiment E12 — cache-geometry sweep.

    The paper's cache-profile analysis (Design section) reasons about
    line size against block layout and per-CPU cache capacity against
    working set, but on fixed hardware; with {!Sim.Geometry} those are
    runtime knobs, so this experiment turns the argument into data.
    For each geometry point it runs a burst workload — each CPU
    repeatedly allocates a burst of blocks, writes every word of each
    (a consumer actually using its memory), then frees the burst — on
    the new allocator and on the cookie allocator, and reports cycles
    per alloc/write/free pair and the cache miss mix.  The burst's
    working set is sized to overflow the smaller geometries, so line
    size (which at fixed line count is also capacity) and
    associativity both move the numbers.

    Two axes, costs held at the defaults so every delta is a geometry
    effect: the line-size sweep (4–32 words, fully associative) shows
    how larger lines change sharing behaviour; the associativity sweep
    (direct-mapped to 4-way at the default 8-word line, against the
    fully-associative paper default) shows the conflict misses a real
    set-indexed cache would add on top. *)

type row = {
  line_words : int;
  ways : int;  (** 0 = fully associative (the recorded-results default) *)
  which : Baseline.Allocator.which;
  cycles_per_pair : float;
      (** elapsed virtual cycles over per-CPU pairs: the CPUs run
          concurrently, so this is the per-CPU cost of one
          alloc/write/free pair *)
  miss_pct : float;  (** (memory misses + remote-dirty) / all accesses *)
  c2c_pct : float;  (** remote-dirty (cache-to-cache) share alone *)
  pairs_per_sec : float;
}

val default_points : (int * int) list
(** [(line_words, ways)] grid: line sweep at full associativity, then
    associativity sweep at the default line size. *)

val run :
  ?jobs:int ->
  ?points:(int * int) list ->
  ?whichs:Baseline.Allocator.which list ->
  ?ncpus:int ->
  ?iters:int ->
  ?depth:int ->
  ?bytes:int ->
  unit ->
  row list
(** [run ()] sweeps {!default_points} for newkma and cookie on a fresh
    8-CPU machine per cell ([jobs] fans cells across domains; results
    are in canonical order regardless).  [depth] is the burst size —
    blocks held live at once per CPU. *)

val print : ?ncpus:int -> ?depth:int -> row list -> unit
(** [print rows] renders the E12 table.  [ncpus]/[depth] only label the
    heading (defaults match {!run}); pass the values the rows were run
    with. *)
