type row = {
  name : string;
  ncpus : int;
  events : int;
  result : Workload.Trace.result;
  ops_per_sec : float;
  wall_s : float;
}

let run_one ~now (sc : Scenario.t) =
  let t0 = now () in
  let t = sc.Scenario.generate ~seed:sc.Scenario.default_seed in
  let ncpus = max 1 (Workload.Trace.ncpus t) in
  let m = Sim.Machine.create (Workload.Rig.paper_config ~ncpus ()) in
  let a = Baseline.Allocator.create Baseline.Allocator.Newkma m in
  let r = Workload.Trace.replay m t a in
  let cfg = Sim.Machine.config m in
  {
    name = sc.Scenario.name;
    ncpus;
    events = List.length t;
    result = r;
    ops_per_sec =
      (if r.Workload.Trace.cycles = 0 then 0.
       else
         float_of_int r.Workload.Trace.ops
         /. Sim.Config.seconds_of_cycles cfg r.Workload.Trace.cycles);
    wall_s = now () -. t0;
  }

let run ?(jobs = 1) ?(now = fun () -> 0.) () =
  Parallel.map ~jobs (run_one ~now) Scenario.all

let print rows =
  Series.table
    ~header:[ "scenario"; "cpus"; "events"; "failures"; "skipped"; "ops/s" ]
    (List.map
       (fun r ->
         [
           r.name;
           string_of_int r.ncpus;
           string_of_int r.events;
           string_of_int r.result.Workload.Trace.failures;
           string_of_int r.result.Workload.Trace.skipped_frees;
           Series.sci r.ops_per_sec;
         ])
       rows)

let print_highlights () =
  List.iter
    (fun (sc : Scenario.t) ->
      match sc.Scenario.target with
      | None -> ()
      | Some target ->
          let t = sc.Scenario.generate ~seed:sc.Scenario.default_seed in
          let report =
            Scenario.Pathology.analyze ~name:sc.Scenario.name t
          in
          let hit =
            List.exists
              (fun (f : Scenario.Pathology.finding) ->
                f.Scenario.Pathology.pathology = target)
              report.Scenario.Pathology.findings
          in
          Printf.printf "%-18s target %-22s -> %s (%d finding(s))\n"
            sc.Scenario.name target
            (if hit then "detected" else "NOT DETECTED")
            (List.length report.Scenario.Pathology.findings))
    Scenario.all
