type row = {
  which : Baseline.Allocator.which;
  ncpus : int;
  nodes : int;
  cycles_per_pair : float;
  remote_pct : float;
  c2c_pct : float;
  pairs_per_sec : float;
}

let default_whichs = Baseline.Allocator.[ Newkma; Numakma ]
let default_cpus = [ 32; 64; 128; 256 ]
let default_nodes = [ 1; 4 ]

(* Enough arena for the live bursts plus every per-CPU cache reserve at
   the big CPU counts (the sweep's whole point is 128-512 CPUs). *)
let memory_words_for ~ncpus = max (2 * 1024 * 1024) (ncpus * 16 * 1024)

let cell ~which ~ncpus ~nodes ~iters ~depth ~bytes =
  let geometry = { (Sim.Geometry.ambient ()) with Sim.Geometry.nodes } in
  let config =
    Sim.Config.make ~geometry ~ncpus
      ~memory_words:(memory_words_for ~ncpus)
      ~uncached_words:512 ()
  in
  let m, a = Workload.Rig.fresh which ~config ~ncpus () in
  (* One iteration: allocate a burst deeper than the per-CPU cache can
     hold (target = 10 lists of 256 B blocks, so depth 64 overflows it
     several times over), touch each block once, free the burst.  Every
     burst therefore makes several global-layer round trips per CPU —
     the traffic whose lock and data lines convoy machine-wide on the
     flat layer and stay node-local with [numakma]. *)
  let burst addrs =
    for i = 0 to depth - 1 do
      Sim.Machine.work Workload.Bestcase.loop_overhead;
      let addr = a.Baseline.Allocator.alloc ~bytes in
      assert (addr <> 0);
      addrs.(i) <- addr;
      Sim.Machine.write addr i
    done;
    for i = 0 to depth - 1 do
      a.Baseline.Allocator.free ~addr:addrs.(i) ~bytes
    done
  in
  let warmup = (iters / 10) + 1 in
  Sim.Machine.run_symmetric m ~ncpus (fun _ ->
      let addrs = Array.make depth 0 in
      for _ = 1 to warmup do
        burst addrs
      done);
  Sim.Machine.reset_clocks m;
  Sim.Cache.reset_stats (Sim.Machine.cache m);
  Sim.Machine.run_symmetric m ~ncpus (fun _ ->
      let addrs = Array.make depth 0 in
      for _ = 1 to iters do
        burst addrs
      done);
  let cycles = Sim.Machine.elapsed m in
  let st = Sim.Cache.total_stats (Sim.Machine.cache m) in
  let accesses =
    st.Sim.Cache.loads + st.Sim.Cache.stores + st.Sim.Cache.rmws
  in
  let rate n =
    if accesses = 0 then 0.
    else 100. *. float_of_int n /. float_of_int accesses
  in
  {
    which;
    ncpus;
    nodes;
    cycles_per_pair = float_of_int cycles /. float_of_int (iters * depth);
    remote_pct = rate st.Sim.Cache.remote;
    c2c_pct = rate st.Sim.Cache.c2c;
    pairs_per_sec =
      Workload.Rig.pairs_per_sec (Sim.Machine.config m)
        ~pairs:(ncpus * iters * depth) ~cycles;
  }

let run ?(jobs = 1) ?(whichs = default_whichs) ?(cpus = default_cpus)
    ?(nodes = default_nodes) ?(iters = 12) ?(depth = 64) ?(bytes = 256) () =
  let cells =
    List.concat_map
      (fun which ->
        List.concat_map
          (fun ncpus ->
            List.filter_map
              (fun nd -> if nd <= ncpus then Some (which, ncpus, nd) else None)
              nodes)
          cpus)
      whichs
  in
  Parallel.map ~jobs
    (fun (which, ncpus, nodes) -> cell ~which ~ncpus ~nodes ~iters ~depth ~bytes)
    cells

let print ?(depth = 64) rows =
  Series.heading
    (Printf.sprintf
       "E14: NUMA scaling, global-layer churn (%d-deep bursts, per-node vs \
        flat gblfree)"
       depth);
  Series.table
    ~header:
      [ "alloc"; "cpus"; "nodes"; "cyc/pair"; "remote%"; "c2c%"; "pairs/s" ]
    (List.map
       (fun r ->
         [
           Baseline.Allocator.name_of r.which;
           string_of_int r.ncpus;
           string_of_int r.nodes;
           Series.f1 r.cycles_per_pair;
           Series.pct (r.remote_pct /. 100.);
           Series.pct (r.c2c_pct /. 100.);
           Series.sci r.pairs_per_sec;
         ])
       rows)
