(** Experiment E13 — the allocator laboratory's lock-based vs lock-free
    head-to-head: the paper's best-case alloc/free sweep (the Figure 7
    methodology, same loop overhead) run over the lock-free extension
    arms from PAPERS.md (Marotta et al.'s non-blocking buddy, Blelloch &
    Wei's constant-time fixed-size allocator) beside the paper's own
    allocators, with CAS-retry and helping counters collected per cell
    and conservation checked after every cell's drain.

    Shape criteria (see EXPERIMENTS.md E13): bwfixed tracks the
    per-CPU-freelist allocators' near-linear scaling (its hot path is
    private); nbbuddy pays ~9 tree RMWs per pair, so it runs at a
    constant fraction of cookie's throughput but still scales linearly
    when claims do not collide.  Contention shows up where the workload
    puts it: the best-case sweep's steady state is private (all retry
    counters ~0 — the boot-spread scan hints doing their job), the
    remote-free flow drives bwfixed's shared stacks (CAS failure rates
    grow with pairs, well below 100%), and the mixed-size storm drives
    nbbuddy's conflict/rollback path (overlapping subtree claims). *)

type point = {
  which : Baseline.Allocator.which;
  ncpus : int;
  pairs : int;  (** alloc/free pairs completed in the timed region *)
  pairs_per_sec : float;
  stats : Lockfree.Stats.t option;
      (** timed-region retry counters; [None] for lock-based arms *)
}

val default_cpus : int list
(** [1; 2; 4; 8; 12; 16; 20; 26] — through the paper's full 26-CPU
    machine (Figure 7 stops at 25 measurable CPUs; the lock-free arms
    need no spare CPU for measurement). *)

val default_whichs : Baseline.Allocator.which list
(** Two lock-based reference arms (cookie, newkma) and the two
    lock-free arms. *)

exception Conservation of string
(** Raised when a cell's post-drain check fails — a lost or duplicated
    block in a lock-free arm. *)

val run :
  ?jobs:int ->
  ?whichs:Baseline.Allocator.which list ->
  ?cpus:int list ->
  ?iters:int ->
  ?bytes:int ->
  unit ->
  point list
(** [run ()] sweeps every arm over [cpus] with [iters] timed pairs per
    CPU of [bytes]-byte blocks (default 256).  Each cell is an
    independent machine; [jobs] fans cells across domains with
    results bit-identical at any job count.
    @raise Conservation on a failed drain check. *)

val print_throughput : point list -> unit
(** Pairs/s table, one column per arm. *)

val print_retries : point list -> unit
(** CAS attempts/failures/fail-rate, mark RMWs, conflicts, helps,
    refills and flushes per (arm, ncpus) cell. *)

type remote_point = {
  rwhich : Baseline.Allocator.which;
  rpairs : int;  (** producer/consumer CPU pairs ([2 * rpairs] CPUs) *)
  transfers : int;
  transfers_per_sec : float;
  rstats : Lockfree.Stats.t option;
}
(** One cell of the remote-free companion sweep: the
    {!Workload.Crosscpu} producer/consumer workload, where every free
    happens on a different CPU than its alloc.  The best-case sweep's
    steady state is CPU-local for both lock-free arms (zero CAS
    failures); this flow is what makes the retry counters earn their
    keep — bwfixed is forced through its shared Treiber stacks
    (refills/flushes), nbbuddy through cross-CPU unmark traffic. *)

val default_pairs : int list
(** [1; 2; 4; 8; 13] — up to the full 26-CPU machine. *)

val run_crosscpu :
  ?jobs:int ->
  ?whichs:Baseline.Allocator.which list ->
  ?pairs:int list ->
  ?blocks_per_pair:int ->
  ?bytes:int ->
  unit ->
  remote_point list
(** [run_crosscpu ()] sweeps every arm over the pair counts, each cell
    an independent machine; [jobs] fans cells across domains with
    results bit-identical at any job count. *)

val print_crosscpu : remote_point list -> unit
(** Transfers/s table plus, when any arm carried counters, the
    remote-free CAS-retry table. *)

type storm_point = {
  swhich : Baseline.Allocator.which;
  sncpus : int;
  sops : int;  (** successful allocs + frees across all CPUs *)
  sops_per_sec : float;
  sstats : Lockfree.Stats.t option;
}
(** One cell of the mixed-size storm: every CPU randomly allocs and
    frees blocks of 16..512 bytes on one shared arena.  Overlapping
    subtree claims are what provoke nbbuddy's conflict/rollback path —
    the best-case sweep's steady state is private and the remote-free
    flow keeps each pair in a disjoint region, so this is the sweep
    where [conflicts] is non-zero. *)

val run_storm :
  ?jobs:int ->
  ?whichs:Baseline.Allocator.which list ->
  ?cpus:int list ->
  ?iters:int ->
  ?seed:int ->
  unit ->
  storm_point list
(** [run_storm ()] sweeps the lock-free arms (by default just those —
    lock-based arms carry no counters) over the CPU counts; cells are
    independent machines, deterministic at any [jobs].
    @raise Conservation on a failed drain check. *)

val print_storm : storm_point list -> unit
(** Ops/s plus the full counter set per (arm, ncpus) cell. *)
