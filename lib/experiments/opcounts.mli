(** Experiment E2 — the paper's instruction counts.

    Measures retired simulated instructions on the warm fast paths:
    cookie alloc/free (paper: 13 each on 80x86) and the standard
    functional interface (paper: 35 alloc, 32 free), plus the MK
    baseline for reference (paper: 9/16 VAX instructions, which carry
    more work per instruction than 80x86 ones). *)

type row = { interface : string; alloc_insns : int; free_insns : int }

val run : ?jobs:int -> unit -> row list
(** The new-allocator machine and the MK-baseline machine are
    independent cells; [jobs] (default 1) runs them via [Parallel.map]
    with bit-identical rows at any job count. *)

val print : row list -> unit
