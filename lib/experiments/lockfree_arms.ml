type point = {
  which : Baseline.Allocator.which;
  ncpus : int;
  pairs : int;
  pairs_per_sec : float;
  stats : Lockfree.Stats.t option;
}

let default_cpus = [ 1; 2; 4; 8; 12; 16; 20; 26 ]
let default_whichs =
  Baseline.Allocator.[ Cookie; Newkma; Nbbuddy; Bwfixed ]

exception Conservation of string

let cell ~which ~ncpus ~iters ~bytes =
  let m = Sim.Machine.create (Workload.Rig.paper_config ~ncpus ()) in
  let a, probe = Baseline.Allocator.create_probed which m in
  let pair () =
    (* the Bestcase shape (same loop overhead) so throughput is
       directly comparable with the Fig 7 numbers *)
    Sim.Machine.work Workload.Bestcase.loop_overhead;
    let addr = a.Baseline.Allocator.alloc ~bytes in
    assert (addr <> 0);
    a.Baseline.Allocator.free ~addr ~bytes
  in
  let warmup = (iters / 10) + 1 in
  Sim.Machine.run_symmetric m ~ncpus (fun _ ->
      for _ = 1 to warmup do
        pair ()
      done);
  Sim.Machine.reset_clocks m;
  Option.iter Lockfree.Stats.reset probe.Baseline.Allocator.stats;
  Sim.Machine.run_symmetric m ~ncpus (fun _ ->
      for _ = 1 to iters do
        pair ()
      done);
  (match probe.Baseline.Allocator.drained () with
  | None -> ()
  | Some msg ->
      raise
        (Conservation
           (Printf.sprintf "%s at %d CPUs: %s"
              (Baseline.Allocator.name_of which)
              ncpus msg)));
  let cycles = Sim.Machine.elapsed m in
  let pairs = ncpus * iters in
  {
    which;
    ncpus;
    pairs;
    pairs_per_sec =
      Workload.Rig.pairs_per_sec (Sim.Machine.config m) ~pairs ~cycles;
    stats =
      (* copy the counters out: the instance dies with this cell *)
      Option.map Lockfree.Stats.copy probe.Baseline.Allocator.stats;
  }

let run ?(jobs = 1) ?(whichs = default_whichs) ?(cpus = default_cpus)
    ?(iters = 2000) ?(bytes = 256) () =
  Parallel.map ~jobs
    (fun (which, ncpus) -> cell ~which ~ncpus ~iters ~bytes)
    (List.concat_map
       (fun which -> List.map (fun ncpus -> (which, ncpus)) cpus)
       whichs)

let print_throughput points =
  Series.heading
    "E13: lock-based vs lock-free, best-case alloc/free pairs per second";
  let cols = List.sort_uniq compare (List.map (fun p -> p.which) points) in
  let cpus = List.sort_uniq compare (List.map (fun p -> p.ncpus) points) in
  Series.table
    ~header:("cpus" :: List.map Baseline.Allocator.name_of cols)
    (List.map
       (fun n ->
         string_of_int n
         :: List.map
              (fun w ->
                match
                  List.find_opt (fun p -> p.which = w && p.ncpus = n) points
                with
                | Some p -> Series.sci p.pairs_per_sec
                | None -> "-")
              cols)
       cpus)

type storm_point = {
  swhich : Baseline.Allocator.which;
  sncpus : int;
  sops : int;
  sops_per_sec : float;
  sstats : Lockfree.Stats.t option;
}

let storm_cell ~which ~ncpus ~iters ~seed =
  let m =
    Sim.Machine.create
      (Workload.Rig.paper_config ~memory_words:(256 * 1024) ~ncpus ())
  in
  let a, probe = Baseline.Allocator.create_probed which m in
  let ops = ref 0 in
  Sim.Machine.run_symmetric m ~ncpus (fun cpu ->
      (* Mixed sizes, random alloc/free order, everything on one shared
         arena: the shape that makes nbbuddy's overlapping subtree
         marks collide (conflict -> rollback), which neither the
         best-case sweep (private steady state) nor the remote-free
         flow (disjoint per-pair regions) can provoke. *)
      let seed = ref ((cpu * 7919) + seed) in
      let next () =
        seed := ((!seed * 25214903917) + 11) land ((1 lsl 48) - 1);
        !seed
      in
      let live = Array.make 8 (0, 0) in
      let mine = ref 0 in
      for _ = 1 to iters do
        let slot = next () mod 8 in
        let addr, bytes = live.(slot) in
        if addr <> 0 then begin
          a.Baseline.Allocator.free ~addr ~bytes;
          live.(slot) <- (0, 0);
          incr mine
        end
        else begin
          let bytes = 16 lsl (next () mod 6) in
          let addr = a.Baseline.Allocator.alloc ~bytes in
          if addr <> 0 then begin
            live.(slot) <- (addr, bytes);
            incr mine
          end
        end
      done;
      Array.iteri
        (fun i (addr, bytes) ->
          if addr <> 0 then begin
            a.Baseline.Allocator.free ~addr ~bytes;
            live.(i) <- (0, 0)
          end)
        live;
      ops := !ops + !mine);
  (match probe.Baseline.Allocator.drained () with
  | None -> ()
  | Some msg ->
      raise
        (Conservation
           (Printf.sprintf "storm: %s at %d CPUs: %s"
              (Baseline.Allocator.name_of which)
              ncpus msg)));
  let cycles = Sim.Machine.elapsed m in
  {
    swhich = which;
    sncpus = ncpus;
    sops = !ops;
    sops_per_sec =
      Workload.Rig.pairs_per_sec (Sim.Machine.config m) ~pairs:!ops ~cycles;
    sstats = Option.map Lockfree.Stats.copy probe.Baseline.Allocator.stats;
  }

let run_storm ?(jobs = 1) ?(whichs = Baseline.Allocator.lockfree)
    ?(cpus = default_cpus) ?(iters = 600) ?(seed = 13) () =
  Parallel.map ~jobs
    (fun (which, ncpus) -> storm_cell ~which ~ncpus ~iters ~seed)
    (List.concat_map
       (fun which -> List.map (fun ncpus -> (which, ncpus)) cpus)
       whichs)

let print_storm points =
  Series.heading
    "E13: mixed-size storm (overlapping claims), CAS-retry counters";
  let rows =
    List.filter_map
      (fun p ->
        match p.sstats with
        | None -> None
        | Some s ->
            let fail_rate =
              if s.Lockfree.Stats.cas_attempts = 0 then nan
              else
                float_of_int s.Lockfree.Stats.cas_failures
                /. float_of_int s.Lockfree.Stats.cas_attempts
            in
            Some
              [
                Baseline.Allocator.name_of p.swhich;
                string_of_int p.sncpus;
                string_of_int p.sops;
                Series.sci p.sops_per_sec;
                string_of_int s.Lockfree.Stats.cas_attempts;
                string_of_int s.Lockfree.Stats.cas_failures;
                Series.pct fail_rate;
                string_of_int s.Lockfree.Stats.mark_rmws;
                string_of_int s.Lockfree.Stats.conflicts;
                string_of_int s.Lockfree.Stats.helps;
                string_of_int s.Lockfree.Stats.refills;
                string_of_int s.Lockfree.Stats.flushes;
              ])
      points
  in
  Series.table
    ~header:
      [
        "alloc"; "cpus"; "ops"; "ops/s"; "cas"; "fail"; "fail%"; "marks";
        "conflicts"; "helps"; "refills"; "flushes";
      ]
    rows

type remote_point = {
  rwhich : Baseline.Allocator.which;
  rpairs : int;
  transfers : int;
  transfers_per_sec : float;
  rstats : Lockfree.Stats.t option;
}

let default_pairs = [ 1; 2; 4; 8; 13 ]

let run_crosscpu ?(jobs = 1) ?(whichs = default_whichs)
    ?(pairs = default_pairs) ?(blocks_per_pair = 400) ?(bytes = 256) () =
  Parallel.map ~jobs
    (fun (rwhich, p) ->
      let r =
        Workload.Crosscpu.run ~which:rwhich ~pairs:p ~blocks_per_pair ~bytes
          ()
      in
      {
        rwhich;
        rpairs = p;
        transfers = r.Workload.Crosscpu.transfers;
        transfers_per_sec = r.Workload.Crosscpu.transfers_per_sec;
        rstats = r.Workload.Crosscpu.stats;
      })
    (List.concat_map
       (fun w -> List.map (fun p -> (w, p)) pairs)
       whichs)

let print_crosscpu points =
  Series.heading
    "E13: cross-CPU producer/consumer (remote frees), transfers per second";
  let cols = List.sort_uniq compare (List.map (fun p -> p.rwhich) points) in
  let pairs = List.sort_uniq compare (List.map (fun p -> p.rpairs) points) in
  Series.table
    ~header:("pairs" :: List.map Baseline.Allocator.name_of cols)
    (List.map
       (fun n ->
         string_of_int n
         :: List.map
              (fun w ->
                match
                  List.find_opt
                    (fun p -> p.rwhich = w && p.rpairs = n)
                    points
                with
                | Some p -> Series.sci p.transfers_per_sec
                | None -> "-")
              cols)
       pairs);
  let rows =
    List.filter_map
      (fun p ->
        match p.rstats with
        | None -> None
        | Some s ->
            let fail_rate =
              if s.Lockfree.Stats.cas_attempts = 0 then nan
              else
                float_of_int s.Lockfree.Stats.cas_failures
                /. float_of_int s.Lockfree.Stats.cas_attempts
            in
            Some
              [
                Baseline.Allocator.name_of p.rwhich;
                string_of_int p.rpairs;
                string_of_int p.transfers;
                string_of_int s.Lockfree.Stats.cas_attempts;
                string_of_int s.Lockfree.Stats.cas_failures;
                Series.pct fail_rate;
                string_of_int s.Lockfree.Stats.mark_rmws;
                string_of_int s.Lockfree.Stats.conflicts;
                string_of_int s.Lockfree.Stats.helps;
                string_of_int s.Lockfree.Stats.refills;
                string_of_int s.Lockfree.Stats.flushes;
              ])
      points
  in
  if rows <> [] then (
    Series.heading "E13: remote-free CAS-retry and helping counters";
    Series.table
      ~header:
        [
          "alloc"; "pairs"; "xfers"; "cas"; "fail"; "fail%"; "marks";
          "conflicts"; "helps"; "refills"; "flushes";
        ]
      rows)

let print_retries points =
  Series.heading "E13: CAS-retry and helping counters (whole timed region)";
  let rows =
    List.filter_map
      (fun p ->
        match p.stats with
        | None -> None
        | Some s ->
            let fail_rate =
              if s.Lockfree.Stats.cas_attempts = 0 then nan
              else
                float_of_int s.Lockfree.Stats.cas_failures
                /. float_of_int s.Lockfree.Stats.cas_attempts
            in
            Some
              [
                Baseline.Allocator.name_of p.which;
                string_of_int p.ncpus;
                string_of_int p.pairs;
                string_of_int s.Lockfree.Stats.cas_attempts;
                string_of_int s.Lockfree.Stats.cas_failures;
                Series.pct fail_rate;
                string_of_int s.Lockfree.Stats.mark_rmws;
                string_of_int s.Lockfree.Stats.conflicts;
                string_of_int s.Lockfree.Stats.helps;
                string_of_int s.Lockfree.Stats.refills;
                string_of_int s.Lockfree.Stats.flushes;
              ])
      points
  in
  Series.table
    ~header:
      [
        "alloc"; "cpus"; "pairs"; "cas"; "fail"; "fail%"; "marks";
        "conflicts"; "helps"; "refills"; "flushes";
      ]
    rows
