(** Experiment E14 — NUMA scaling past the paper's 25 CPUs.

    The paper measures up to 25 CPUs on a flat Symmetry; with the
    width-independent sharer sets and the two-level {!Sim.Geometry}
    NUMA cost model the same rig runs 128-512 CPUs across 2-8 nodes.
    This experiment drives the global layer hard — each CPU repeatedly
    allocates a burst deeper than its per-CPU cache can absorb, touches
    each block, and frees it, so every burst makes several
    global-layer round trips — and races the stock allocator
    ([newkma], one gblfree pool per size class) against the per-node
    variant ([numakma], one pool per (node, size)).

    What the table shows: on the flat layer the per-size gbl lock and
    its data line ping-pong across the whole machine, so past ~128
    CPUs the remote-transfer share climbs and cycles per pair cliff;
    the per-node layer keeps that traffic inside a node and recovers
    near-flat scaling.  [nodes = 1] rows are the no-NUMA baseline
    (where [numakma] degenerates to [newkma] exactly). *)

type row = {
  which : Baseline.Allocator.which;
  ncpus : int;
  nodes : int;  (** NUMA nodes of the machine (1 = flat baseline) *)
  cycles_per_pair : float;
      (** elapsed virtual cycles over per-CPU alloc/touch/free pairs *)
  remote_pct : float;
      (** share of accesses that paid any cross-node surcharge *)
  c2c_pct : float;  (** remote-dirty (cache-to-cache) share *)
  pairs_per_sec : float;
}

val default_whichs : Baseline.Allocator.which list
(** [[Newkma; Numakma]] — the flat and per-node global layers. *)

val default_cpus : int list
(** [[32; 64; 128; 256]]; pass [~cpus:[512]] explicitly for the top
    end (one such machine costs real host memory). *)

val default_nodes : int list
(** [[1; 4]] — flat baseline plus a 4-node machine. *)

val run :
  ?jobs:int ->
  ?whichs:Baseline.Allocator.which list ->
  ?cpus:int list ->
  ?nodes:int list ->
  ?iters:int ->
  ?depth:int ->
  ?bytes:int ->
  unit ->
  row list
(** [run ()] sweeps [whichs x cpus x nodes] (node counts exceeding the
    CPU count are skipped), one fresh machine per cell, warmup dropped
    from clocks and cache stats.  [depth] is the burst size — keep it
    above twice the 256 B class target (20 blocks) or the global layer
    goes quiet and the sweep measures nothing. *)

val print : ?depth:int -> row list -> unit
(** [print rows] renders the E14 table ([depth] only labels the
    heading; pass the value the rows were run with). *)
