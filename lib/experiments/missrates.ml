type row = {
  bytes : int;
  allocs : int;
  gbl_ops : int;
  alloc_pcpu : float;
  free_pcpu : float;
  alloc_gbl : float;
  free_gbl : float;
  alloc_combined : float;
  free_combined : float;
}

type result = {
  oltp : Dlm.Oltp.result;
  rows : row list;
  target : int;
  gbltarget : int;
}

let target = 10
let gbltarget = 15

let run ?(ncpus = 4) ?(transactions_per_cpu = 3000) ?(seed = 11) () =
  let cfg = Workload.Rig.paper_config ~ncpus () in
  let m = Sim.Machine.create cfg in
  let params =
    let base = Kma.Params.auto ~memory_words:cfg.Sim.Config.memory_words in
    Kma.Params.make ~vmblk_pages:base.Kma.Params.vmblk_pages
      ~targets:(Array.make 9 target)
      ~gbltargets:(Array.make 9 gbltarget)
      ()
  in
  let kmem = Kma.Kmem.create m ~params () in
  let oltp = Dlm.Oltp.run ~kmem ~ncpus ~transactions_per_cpu ~seed () in
  (* Quiescent point: the OLTP run has drained, so the heap checker
     (when armed) may sweep the whole allocator. *)
  if Heapcheck.on () then Heapcheck.checkpoint kmem;
  let stats = Kma.Kmem.stats kmem in
  let p = Kma.Kmem.params kmem in
  let rows =
    List.filter_map
      (fun si ->
        let s = Kma.Kstats.size stats si in
        if s.Kma.Kstats.allocs < 100 then None
        else
          Some
            {
              bytes = p.Kma.Params.sizes_bytes.(si);
              allocs = s.Kma.Kstats.allocs;
              gbl_ops = s.Kma.Kstats.gbl_gets + s.Kma.Kstats.gbl_puts;
              alloc_pcpu = Kma.Kstats.percpu_alloc_miss_rate stats ~si;
              free_pcpu = Kma.Kstats.percpu_free_miss_rate stats ~si;
              alloc_gbl = Kma.Kstats.global_alloc_miss_rate stats ~si;
              free_gbl = Kma.Kstats.global_free_miss_rate stats ~si;
              alloc_combined = Kma.Kstats.combined_alloc_miss_rate stats ~si;
              free_combined = Kma.Kstats.combined_free_miss_rate stats ~si;
            })
      (List.init (Kma.Params.nsizes p) Fun.id)
  in
  { oltp; rows; target; gbltarget }

let print r =
  Series.heading
    (Printf.sprintf
       "DLM miss rates (%d CPUs, %d transactions, target=%d gbltarget=%d)"
       r.oltp.Dlm.Oltp.ncpus r.oltp.Dlm.Oltp.transactions r.target r.gbltarget);
  Series.table
    ~header:
      [
        "bytes"; "pcpu alloc"; "pcpu free"; "gbl alloc"; "gbl free";
        "comb alloc"; "comb free";
      ]
    (List.map
       (fun row ->
         [
           string_of_int row.bytes;
           Series.pct row.alloc_pcpu;
           Series.pct row.free_pcpu;
           Series.pct row.alloc_gbl;
           Series.pct row.free_gbl;
           Series.pct row.alloc_combined;
           Series.pct row.free_combined;
         ])
       r.rows);
  Printf.printf "bounds: pcpu <= %s, global <= %s, combined <= %s\n"
    (Series.pct (1. /. float_of_int r.target))
    (Series.pct (1. /. float_of_int r.gbltarget))
    (Series.pct (1. /. float_of_int (r.target * r.gbltarget)))

(* The analytic bounds are steady-state; a layer that was touched only
   a handful of times is all warm-up, so rate checks apply only where
   there is enough traffic to amortise the first refill. *)
let within_bounds r =
  let ok v bound = Float.is_nan v || v <= bound in
  let pb = 1. /. float_of_int r.target in
  let gb = 1. /. float_of_int r.gbltarget in
  let cb = 1. /. float_of_int (r.target * r.gbltarget) in
  List.for_all
    (fun row ->
      (row.allocs < 1000
      || ok row.alloc_pcpu pb && ok row.free_pcpu pb
         && ok row.alloc_combined cb && ok row.free_combined cb)
      && (row.gbl_ops < 200 || (ok row.alloc_gbl gb && ok row.free_gbl gb)))
    r.rows
