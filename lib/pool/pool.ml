type mode = [ `Fixed | `Adaptive ]

type adapt_event = {
  ev_seq : int;
  ev_grow : bool;
  ev_target : int;
  ev_bound : int;
}

(* Per-domain state: the magazine plus the contention signal latched
   since this domain's last depot safe point.  [saw_contended] is set
   by any depot acquisition that found the lock held. *)
type 'a slot = {
  mutable mag : 'a Magazine.t;
  mutable saw_contended : bool;
}

type 'a t = {
  ctor : unit -> 'a;
  reset : ('a -> unit) option;
  base_target : int;
  max_target : int;
  base_bound : int;
  max_bound : int;
  grow_step : int;
  bound_step : int;
  mode : mode;
  desired_target : int Atomic.t;
  desired_bound : int Atomic.t;
  depot : 'a Depot.t;
  stats : Pstats.t;
  key : 'a slot Domain.DLS.key;
  flushes : int Atomic.t;
  oversupply_run : int Atomic.t;  (* consecutive oversupply signals *)
  last_create_seq : int Atomic.t;
      (* flush sequence number current when any domain last paid
         constructor cost; a drop landing within [churn_window]
         flushes of it is churn, not oversupply *)
  events : adapt_event list Atomic.t;  (* newest first, capped *)
}

let max_trajectory = 512
let churn_window = 128

(* Hysteresis, after Pressure's clean-streak rule: one churn signal is
   enough to grow, but shrinking needs this many consecutive
   oversupply signals — otherwise a workload that alternates overflow
   and miss phases (scheduler slices) rides a grow/shrink limit cycle
   instead of settling at the larger geometry it needs. *)
let shrink_streak = 32

let create ~ctor ?reset ?(target = 16) ?(depot_batches = 32) ?(mode = `Fixed)
    ?max_target ?max_depot_batches ?grow_step () =
  if target < 1 then invalid_arg "Pool.create: target < 1";
  if depot_batches < 0 then invalid_arg "Pool.create: depot_batches < 0";
  let max_target = Option.value max_target ~default:(8 * target) in
  let max_bound =
    Option.value max_depot_batches ~default:(max 1 (8 * depot_batches))
  in
  if max_target < target then invalid_arg "Pool.create: max_target < target";
  if max_bound < depot_batches then
    invalid_arg "Pool.create: max_depot_batches < depot_batches";
  let grow_step = Option.value grow_step ~default:target in
  if grow_step < 1 then invalid_arg "Pool.create: grow_step < 1";
  let desired_target = Atomic.make target in
  {
    ctor;
    reset;
    base_target = target;
    max_target;
    base_bound = depot_batches;
    max_bound;
    grow_step;
    bound_step = max 1 depot_batches;
    mode;
    desired_target;
    desired_bound = Atomic.make depot_batches;
    depot = Depot.create ~target ~max_batches:depot_batches;
    stats = Pstats.create ();
    key =
      Domain.DLS.new_key (fun () ->
          {
            mag = Magazine.create ~target:(Atomic.get desired_target);
            saw_contended = false;
          });
    flushes = Atomic.make 0;
    oversupply_run = Atomic.make 0;
    last_create_seq = Atomic.make (-(churn_window + 1));
    events = Atomic.make [];
  }

let slot t = Domain.DLS.get t.key

let note_acquire t sl ~contended =
  Pstats.note_depot_acquire t.stats ~contended;
  if contended then sl.saw_contended <- true

(* Load a depot batch into an empty magazine.  Under adaptation the
   batch may exceed the magazine's (possibly stale, possibly shrunk)
   target; the excess goes back as loose items rather than violating
   the magazine's install contract. *)
let install_clamped t sl batch =
  let tgt = Magazine.target sl.mag in
  let rec split n acc rest =
    if n = 0 then (List.rev acc, rest)
    else
      match rest with
      | x :: tl -> split (n - 1) (x :: acc) tl
      | [] -> (List.rev acc, [])
  in
  let keep, excess = split tgt [] batch in
  Magazine.install sl.mag keep;
  match excess with
  | [] -> ()
  | excess ->
      Pstats.incr_depot_put t.stats;
      let contended = Depot.put_partial_observed t.depot excess in
      note_acquire t sl ~contended

let note_create t =
  Pstats.incr_create t.stats;
  if t.mode = `Adaptive then
    Atomic.set t.last_create_seq (Atomic.get t.flushes)

let alloc t =
  Pstats.incr_alloc t.stats;
  let sl = slot t in
  match Magazine.get sl.mag with
  | Some x -> x
  | None -> (
      Pstats.incr_depot_get t.stats;
      let batch, contended = Depot.get_observed t.depot in
      note_acquire t sl ~contended;
      match batch with
      | Some batch -> (
          install_clamped t sl batch;
          match Magazine.get sl.mag with
          | Some x -> x
          | None ->
              (* Depot batches are never empty, but fall back safely. *)
              note_create t;
              t.ctor ())
      | None ->
          note_create t;
          t.ctor ())

(* --- adaptation: the Kma.Pressure discipline transplanted -----------

   Like Pressure, the knobs move only at slow-path safe points (a
   magazine flush hitting the depot), never on the magazine hit path,
   with floors and ceilings pinning the geometry to
   [base <= current <= 8 * base] by default.  Growth is additive
   ([grow_step] per signal), shrink is multiplicative (halving the
   excess over the base).

   The raw signals entering [adapt]:
   - [contended]: depot churn.  The flushing put found the lock held,
     or any depot acquisition by this domain since its last safe point
     did, or the flush was dropped within [churn_window] flushes of a
     constructor miss somewhere in the pool — overflow and miss at
     once, the drain/refill oscillation shape (on a single-core host,
     domains alternate in scheduler slices, so the domain paying the
     misses is never the one at a flush safe point: the miss evidence
     must be pool-global).  Bigger magazines visit the depot less and
     a bigger depot absorbs more phase skew, so grow both.
   - [dropped]: pure oversupply.  The flush was dropped with no miss
     anywhere near: the pool holds more than the workload circulates,
     so decay back toward the configured base and let the GC have the
     excess. *)

let record_event t ev =
  let rec push () =
    let old = Atomic.get t.events in
    if List.length old >= max_trajectory then ()
    else if not (Atomic.compare_and_set t.events old (ev :: old)) then push ()
  in
  push ()

let rec step_toward a ~limit ~step =
  let cur = Atomic.get a in
  let nxt = min limit (cur + step) in
  if nxt = cur then None
  else if Atomic.compare_and_set a cur nxt then Some nxt
  else step_toward a ~limit ~step

let rec halve_toward a ~base =
  let cur = Atomic.get a in
  let nxt = base + ((cur - base) / 2) in
  if nxt = cur then None
  else if Atomic.compare_and_set a cur nxt then Some nxt
  else halve_toward a ~base

let adapt t ~seq ~contended ~dropped =
  let changed, grow =
    if contended then
      let nt = step_toward t.desired_target ~limit:t.max_target ~step:t.grow_step in
      let nb = step_toward t.desired_bound ~limit:t.max_bound ~step:t.bound_step in
      ((nt, nb) <> (None, None), true)
    else if dropped then
      let nt = halve_toward t.desired_target ~base:t.base_target in
      let nb = halve_toward t.desired_bound ~base:t.base_bound in
      ((nt, nb) <> (None, None), false)
    else (false, false)
  in
  if changed then begin
    Depot.set_geometry t.depot
      ~target:(Atomic.get t.desired_target)
      ~max_batches:(Atomic.get t.desired_bound);
    if grow then Pstats.incr_grow t.stats else Pstats.incr_shrink t.stats;
    record_event t
      {
        ev_seq = seq;
        ev_grow = grow;
        ev_target = Atomic.get t.desired_target;
        ev_bound = Atomic.get t.desired_bound;
      }
  end

(* Re-cut the calling domain's magazine to the current desired target.
   The magazine geometry is immutable (its invariants depend on it), so
   adaptation swaps in a fresh magazine and re-feeds the old contents;
   any flush this produces goes to the depot as usual. *)
let sync_magazine t sl =
  let want = Atomic.get t.desired_target in
  if Magazine.target sl.mag <> want then begin
    let held = Magazine.drain sl.mag in
    sl.mag <- Magazine.create ~target:want;
    List.iter
      (fun x ->
        match Magazine.put sl.mag x with
        | `Ok -> ()
        | `Flush batch -> (
            Pstats.incr_depot_put t.stats;
            let r, contended = Depot.put_observed t.depot batch in
            note_acquire t sl ~contended;
            match r with
            | `Kept -> ()
            | `Dropped -> Pstats.incr_drop t.stats))
      held
  end

let release t x =
  (match t.reset with Some f -> f x | None -> ());
  Pstats.incr_free t.stats;
  let sl = slot t in
  match Magazine.put sl.mag x with
  | `Ok -> ()
  | `Flush batch ->
      let seq = Atomic.fetch_and_add t.flushes 1 in
      Pstats.incr_depot_put t.stats;
      let r, contended = Depot.put_observed t.depot batch in
      note_acquire t sl ~contended;
      let dropped = r = `Dropped in
      if dropped then Pstats.incr_drop t.stats;
      if t.mode = `Adaptive then begin
        let churn =
          sl.saw_contended
          || (dropped && seq - Atomic.get t.last_create_seq <= churn_window)
        in
        sl.saw_contended <- false;
        if churn then begin
          Atomic.set t.oversupply_run 0;
          adapt t ~seq ~contended:true ~dropped:false
        end
        else if dropped then begin
          if Atomic.fetch_and_add t.oversupply_run 1 + 1 >= shrink_streak
          then begin
            Atomic.set t.oversupply_run 0;
            adapt t ~seq ~contended:false ~dropped:true
          end
        end;
        sync_magazine t sl
      end

let adapt_now t ~contended ~dropped =
  if t.mode = `Adaptive then begin
    adapt t ~seq:(Atomic.get t.flushes) ~contended ~dropped;
    sync_magazine t (slot t)
  end

let with_obj t f =
  let x = alloc t in
  match f x with
  | v ->
      release t x;
      v
  | exception e ->
      release t x;
      raise e

let flush_local t =
  let sl = slot t in
  match Magazine.drain sl.mag with
  | [] -> ()
  | items ->
      Pstats.incr_depot_put t.stats;
      let contended = Depot.put_partial_observed t.depot items in
      note_acquire t sl ~contended

let refill t ~batches =
  if batches < 0 then invalid_arg "Pool.refill: batches < 0";
  let sl = slot t in
  let kept = ref 0 in
  (try
     for _ = 1 to batches do
       (* Stop constructing as soon as the depot reports full: one
          speculative batch at most goes to the GC. *)
       let tgt = Atomic.get t.desired_target in
       let batch = List.init tgt (fun _ -> t.ctor ()) in
       Pstats.incr_depot_put t.stats;
       let r, contended = Depot.put_observed t.depot batch in
       note_acquire t sl ~contended;
       match r with
       | `Kept ->
           incr kept;
           Pstats.incr_prefill t.stats
       | `Dropped ->
           Pstats.incr_drop t.stats;
           raise Exit
     done
   with Exit -> ());
  !kept

let stats t = t.stats
let mode t = t.mode
let target t = t.base_target
let current_target t = Atomic.get t.desired_target
let depot_bound t = Atomic.get t.desired_bound
let depot_batches t = Depot.batches t.depot
let trajectory t = List.rev (Atomic.get t.events)
