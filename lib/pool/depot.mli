(** The global layer for OCaml domains, after the paper's global
    freelist: a mutex-protected stock of full target-sized batches,
    exchanged whole with per-domain magazines — one lock round-trip
    moves [target] objects.

    When the depot overflows its bound, the excess batch is simply
    dropped: under a garbage collector the "coalescing layers" are the
    GC itself, which is the per-design substitution documented in
    DESIGN.md.

    Invariants: [nbatches] equals [length stock]; every stocked batch
    has at most [target] items at the time it was grouped; the loose
    bucket holds fewer than [target] items outside of a [put_partial]
    regroup; [nbatches <= max_batches] except transiently inside a
    geometry shrink, which the next put corrects by dropping.

    The [_observed] variants additionally report whether the depot
    mutex was held by another domain at acquire time ([try_lock]
    failed) — the contention signal {!Pool}'s adaptive mode feeds on. *)

type 'a t

val create : target:int -> max_batches:int -> 'a t
(** [target] is the batch size magazines exchange; odd-sized returns
    are regrouped into [target]-sized batches.
    @raise Invalid_argument if [target < 1] or [max_batches < 0]. *)

val get : 'a t -> 'a list option
(** [get t] takes one batch (at most [target] items), or [None] when
    empty. *)

val get_observed : 'a t -> 'a list option * bool
(** [get] plus the contended flag. *)

val put : 'a t -> 'a list -> [ `Kept | `Dropped ]
(** [put t batch] stores a batch; [`Dropped] when the depot is full
    (the batch is released to the GC). *)

val put_observed : 'a t -> 'a list -> [ `Kept | `Dropped ] * bool
(** [put] plus the contended flag. *)

val put_partial : 'a t -> 'a list -> unit
(** [put_partial t items] accepts an odd-sized return (magazine drain at
    domain exit), regrouping into batches internally; overflow beyond
    the bound is dropped. *)

val put_partial_observed : 'a t -> 'a list -> bool
(** [put_partial] plus the contended flag. *)

val set_geometry : 'a t -> target:int -> max_batches:int -> unit
(** Adjust the regroup batch size and the stock bound under the lock.
    Already-stocked batches keep their old size (magazines split
    overlong batches on install); a lowered bound takes effect at the
    next put.
    @raise Invalid_argument if [target < 1] or [max_batches < 0]. *)

val bound : 'a t -> int
(** Current [max_batches] (monitoring; may be adapted at runtime). *)

val batches : 'a t -> int
(** Current stock (for monitoring; momentarily stale by nature). *)

val drain : 'a t -> 'a list
(** [drain t] empties the depot (tests, shutdown). *)
