(** A per-domain object pool for OCaml 5, after McKenney & Slingwine's
    per-CPU kernel memory allocator (USENIX Winter 1993).

    Each domain keeps a {!Magazine} (the paper's per-CPU cache: a split
    freelist bounded by [2 * target]) it can use without any
    synchronisation; magazines exchange whole target-sized batches with
    a mutex-protected {!Depot} (the paper's global layer), so the lock
    is touched at most once per [target] operations.  The paper's
    coalescing layers have no analogue under a GC: objects dropped on
    depot overflow are simply collected (see DESIGN.md).

    Use it for expensive-to-build, resettable objects (buffers, large
    records, scratch tables):

    {[
      let pool = Pool.create ~ctor:(fun () -> Bytes.create 65536) ()
      let buf = Pool.alloc pool in
      (* ... use buf ... *)
      Pool.release pool buf
    ]}

    [alloc]/[release] are safe from any domain; each domain transparently
    gets its own magazine.  An object must be released at most once and
    not used after release (not checkable here; the test suite checks it
    for the pool's own traffic).

    In [`Adaptive] mode the pool retunes its own geometry with the
    [Kma.Pressure] discipline (DESIGN.md §14).  At each flush safe
    point it reads two signals: {e churn} — the depot lock was observed
    contended by this domain since its last safe point, or the flushed
    batch was dropped while the domain was also paying constructor
    cost (overflow and miss at once, the drain/refill oscillation
    shape) — grows [target] and the depot bound additively, one
    [grow_step] per signal up to the ceilings; {e oversupply} — a drop
    with no miss in sight — shrinks the excess multiplicatively,
    halving the distance back to the base.  Knobs move only at depot
    safe points, never on the magazine hit path. *)

type 'a t

type mode = [ `Fixed | `Adaptive ]

type adapt_event = {
  ev_seq : int;  (** depot-flush sequence number when the step fired *)
  ev_grow : bool;
  ev_target : int;  (** desired magazine target after the step *)
  ev_bound : int;  (** desired depot bound after the step *)
}

val create :
  ctor:(unit -> 'a) ->
  ?reset:('a -> unit) ->
  ?target:int ->
  ?depot_batches:int ->
  ?mode:mode ->
  ?max_target:int ->
  ?max_depot_batches:int ->
  ?grow_step:int ->
  unit ->
  'a t
(** [create ~ctor ()] builds a pool.  [reset] is applied on release
    (e.g. zeroing); [target] (default 16) bounds each magazine half;
    [depot_batches] (default 32) bounds the depot, beyond which batches
    are dropped to the GC.  [mode] (default [`Fixed]) enables
    contention-adaptive geometry; [max_target] / [max_depot_batches]
    (defaults [8 * target] and [8 * depot_batches], at least 1) are the
    adaptation ceilings, and [grow_step] (default [target]) the
    additive growth per signal.

    @raise Invalid_argument if [target < 1], [depot_batches < 0],
    [grow_step < 1], or a ceiling is below its base. *)

val alloc : 'a t -> 'a
(** [alloc t] takes an object: magazine first, then a depot batch, then
    [ctor]. *)

val release : 'a t -> 'a -> unit
(** [release t x] resets and returns an object to the current domain's
    magazine, flushing a full batch to the depot as needed.  If [reset]
    raises, the exception propagates and [x] is abandoned to the GC:
    it re-enters neither magazine nor depot and is not counted as a
    free. *)

val with_obj : 'a t -> ('a -> 'b) -> 'b
(** [with_obj t f] allocates, runs [f], and releases (also on
    exceptions). *)

val flush_local : 'a t -> unit
(** [flush_local t] drains the calling domain's magazine to the depot
    (call before a domain exits to keep its stock usable by others). *)

val refill : 'a t -> batches:int -> int
(** [refill t ~batches] constructs up to [batches] full target-sized
    batches with [ctor] and deposits them, stopping early once the
    depot is full; returns the number kept.  This is the SpeedMalloc
    dedicated-allocation-core hook (PAPERS.md): a domain that loops on
    [refill] keeps worker domains from ever paying constructor cost.
    @raise Invalid_argument if [batches < 0]. *)

val adapt_now : 'a t -> contended:bool -> dropped:bool -> unit
(** Feed one raw adaptation signal at an explicit safe point:
    [contended] takes one additive grow step, otherwise [dropped] one
    multiplicative shrink step, then the calling domain's magazine is
    re-cut to the new target.  No-op in [`Fixed] mode.  Exists so
    tests and harnesses can drive a deterministic signal sequence and
    pin the resulting {!trajectory} exactly. *)

val stats : 'a t -> Pstats.t
val mode : 'a t -> mode

val target : 'a t -> int
(** The configured (base) magazine target. *)

val current_target : 'a t -> int
(** The adapted magazine target ([= target] in [`Fixed] mode). *)

val depot_bound : 'a t -> int
(** The adapted depot bound, in batches. *)

val depot_batches : 'a t -> int
(** Current depot stock, in batches. *)

val trajectory : 'a t -> adapt_event list
(** Adaptation steps in order taken (first 512 kept).  With a
    deterministic signal sequence — single domain, or {!adapt_now} —
    the trajectory is reproducible exactly. *)
