type 'a t = {
  mutex : Mutex.t;
  mutable target : int;
  mutable max_batches : int;
  mutable stock : 'a list list;
  mutable nbatches : int;
  mutable loose : 'a list;  (* the bucket list: odd-sized returns *)
  mutable nloose : int;
}

let create ~target ~max_batches =
  if target < 1 then invalid_arg "Pool.Depot.create: target < 1";
  if max_batches < 0 then invalid_arg "Pool.Depot.create: max_batches < 0";
  {
    mutex = Mutex.create ();
    target;
    max_batches;
    stock = [];
    nbatches = 0;
    loose = [];
    nloose = 0;
  }

(* [with_lock] reports whether the lock was observed held at acquire
   time: a failed [try_lock] is exactly one other domain inside the
   depot, which is the contention signal the adaptive pool feeds on. *)
let with_lock t f =
  let contended = not (Mutex.try_lock t.mutex) in
  if contended then Mutex.lock t.mutex;
  match f () with
  | v ->
      Mutex.unlock t.mutex;
      (v, contended)
  | exception e ->
      Mutex.unlock t.mutex;
      raise e

let get_observed t =
  with_lock t (fun () ->
      match t.stock with
      | b :: rest ->
          t.stock <- rest;
          t.nbatches <- t.nbatches - 1;
          Some b
      | [] ->
          if t.nloose = 0 then None
          else begin
            (* Fewer than [target] items: fits any magazine. *)
            let b = t.loose in
            t.loose <- [];
            t.nloose <- 0;
            Some b
          end)

let get t = fst (get_observed t)

let put_observed t batch =
  with_lock t (fun () ->
      if t.nbatches >= t.max_batches then `Dropped
      else begin
        t.stock <- batch :: t.stock;
        t.nbatches <- t.nbatches + 1;
        `Kept
      end)

let put t batch = fst (put_observed t batch)

(* Regroup odd-sized returns into full target-sized batches — the
   paper's bucket list.  Overflow beyond the bound goes to the GC. *)
let put_partial_observed t items =
  snd
    (with_lock t (fun () ->
         t.loose <- items @ t.loose;
         t.nloose <- t.nloose + List.length items;
         while t.nloose >= t.target do
           let rec take n acc rest =
             if n = 0 then (acc, rest)
             else
               match rest with
               | x :: tl -> take (n - 1) (x :: acc) tl
               | [] -> (acc, [])
           in
           let batch, rest = take t.target [] t.loose in
           t.loose <- rest;
           t.nloose <- t.nloose - t.target;
           if t.nbatches < t.max_batches then begin
             t.stock <- batch :: t.stock;
             t.nbatches <- t.nbatches + 1
           end
           (* else: dropped to the GC *)
         done))

let put_partial t items = ignore (put_partial_observed t items)

let set_geometry t ~target ~max_batches =
  if target < 1 then invalid_arg "Pool.Depot.set_geometry: target < 1";
  if max_batches < 0 then invalid_arg "Pool.Depot.set_geometry: max_batches < 0";
  ignore
    (with_lock t (fun () ->
         t.target <- target;
         t.max_batches <- max_batches))

let bound t = fst (with_lock t (fun () -> t.max_batches))
let batches t = fst (with_lock t (fun () -> t.nbatches))

let drain t =
  fst
    (with_lock t (fun () ->
         let all = List.concat t.stock @ t.loose in
         t.stock <- [];
         t.nbatches <- 0;
         t.loose <- [];
         t.nloose <- 0;
         all))
