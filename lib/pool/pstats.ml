(* Per-domain counter cells, aggregated on read.  Each domain gets its
   own cell through DLS, so the hot-path increments never contend on a
   shared cache line; the read accessors fold over the registered
   cells.  Registration is a CAS push onto an immutable list, so a
   racing reader sees either the old or the new list — both safe. *)

type cell = {
  allocs : int Atomic.t;
  frees : int Atomic.t;
  creates : int Atomic.t;
  depot_gets : int Atomic.t;
  depot_puts : int Atomic.t;
  drops : int Atomic.t;
  depot_acquires : int Atomic.t;
  depot_contended : int Atomic.t;
  grows : int Atomic.t;
  shrinks : int Atomic.t;
  prefills : int Atomic.t;
}

type t = { cells : cell list Atomic.t; key : cell Domain.DLS.key }

let new_cell () =
  {
    allocs = Atomic.make 0;
    frees = Atomic.make 0;
    creates = Atomic.make 0;
    depot_gets = Atomic.make 0;
    depot_puts = Atomic.make 0;
    drops = Atomic.make 0;
    depot_acquires = Atomic.make 0;
    depot_contended = Atomic.make 0;
    grows = Atomic.make 0;
    shrinks = Atomic.make 0;
    prefills = Atomic.make 0;
  }

let create () =
  let cells = Atomic.make [] in
  let key =
    Domain.DLS.new_key (fun () ->
        let c = new_cell () in
        let rec register () =
          let old = Atomic.get cells in
          if not (Atomic.compare_and_set cells old (c :: old)) then register ()
        in
        register ();
        c)
  in
  { cells; key }

let cell t = Domain.DLS.get t.key

let incr_alloc t = Atomic.incr (cell t).allocs
let incr_free t = Atomic.incr (cell t).frees
let incr_create t = Atomic.incr (cell t).creates
let incr_depot_get t = Atomic.incr (cell t).depot_gets
let incr_depot_put t = Atomic.incr (cell t).depot_puts
let incr_drop t = Atomic.incr (cell t).drops

let note_depot_acquire t ~contended =
  let c = cell t in
  Atomic.incr c.depot_acquires;
  if contended then Atomic.incr c.depot_contended

let incr_grow t = Atomic.incr (cell t).grows
let incr_shrink t = Atomic.incr (cell t).shrinks
let incr_prefill t = Atomic.incr (cell t).prefills

let sum t field =
  List.fold_left (fun acc c -> acc + Atomic.get (field c)) 0 (Atomic.get t.cells)

let allocs t = sum t (fun c -> c.allocs)
let frees t = sum t (fun c -> c.frees)
let creates t = sum t (fun c -> c.creates)
let depot_gets t = sum t (fun c -> c.depot_gets)
let depot_puts t = sum t (fun c -> c.depot_puts)
let drops t = sum t (fun c -> c.drops)
let depot_acquires t = sum t (fun c -> c.depot_acquires)
let depot_contended t = sum t (fun c -> c.depot_contended)
let grows t = sum t (fun c -> c.grows)
let shrinks t = sum t (fun c -> c.shrinks)
let prefills t = sum t (fun c -> c.prefills)

type snapshot = {
  s_allocs : int;
  s_frees : int;
  s_creates : int;
  s_depot_gets : int;
  s_depot_puts : int;
  s_drops : int;
  s_depot_acquires : int;
  s_depot_contended : int;
  s_grows : int;
  s_shrinks : int;
  s_prefills : int;
}

let read t =
  {
    s_allocs = allocs t;
    s_frees = frees t;
    s_creates = creates t;
    s_depot_gets = depot_gets t;
    s_depot_puts = depot_puts t;
    s_drops = drops t;
    s_depot_acquires = depot_acquires t;
    s_depot_contended = depot_contended t;
    s_grows = grows t;
    s_shrinks = shrinks t;
    s_prefills = prefills t;
  }

let magazine_hit_rate t =
  let a = allocs t in
  if a = 0 then Float.nan
  else 1. -. (float_of_int (depot_gets t) /. float_of_int a)

let contention_rate t =
  let a = depot_acquires t in
  if a = 0 then Float.nan
  else float_of_int (depot_contended t) /. float_of_int a
