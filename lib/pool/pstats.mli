(** Counters for the native pool, after the paper's measurement
    discipline: statistics live with the layer that produces them, per
    CPU, and are summed only when somebody asks.  Each domain mutates
    its own atomic cell (no shared-line ping-pong on the hot path); the
    read accessors aggregate over all cells and are safe to call from
    any domain while workers race.  Individual counters are exact and
    monotone; a snapshot taken mid-run is internally skewed by whatever
    landed between field reads, the same caveat the paper accepts for
    its own per-CPU counters. *)

type t

val create : unit -> t

val incr_alloc : t -> unit
val incr_free : t -> unit
val incr_create : t -> unit
val incr_depot_get : t -> unit
val incr_depot_put : t -> unit
val incr_drop : t -> unit

val note_depot_acquire : t -> contended:bool -> unit
(** Record one depot-lock acquisition on the data path; [contended]
    means the lock was observed held by another domain at acquire
    time. *)

val incr_grow : t -> unit
val incr_shrink : t -> unit

val incr_prefill : t -> unit
(** Batches constructed and deposited by a dedicated refill domain. *)

val allocs : t -> int
val frees : t -> int

val creates : t -> int
(** Constructor calls: allocations no layer could satisfy. *)

val depot_gets : t -> int
val depot_puts : t -> int

val drops : t -> int
(** Batches released to the GC on depot overflow. *)

val depot_acquires : t -> int
(** Data-path depot-lock acquisitions (get/put/partial exchanges). *)

val depot_contended : t -> int
(** The subset of {!depot_acquires} that found the lock held. *)

val grows : t -> int

val shrinks : t -> int
(** Adaptive geometry steps taken by {!Pool} in [`Adaptive] mode. *)

val prefills : t -> int

type snapshot = {
  s_allocs : int;
  s_frees : int;
  s_creates : int;
  s_depot_gets : int;
  s_depot_puts : int;
  s_drops : int;
  s_depot_acquires : int;
  s_depot_contended : int;
  s_grows : int;
  s_shrinks : int;
  s_prefills : int;
}

val read : t -> snapshot
(** One aggregated pass over every counter. *)

val magazine_hit_rate : t -> float
(** Fraction of allocations served without touching the depot. *)

val contention_rate : t -> float
(** [depot_contended / depot_acquires]; [nan] before any acquisition. *)
