(** Scenario library: named, seeded, production-shaped workloads as
    multi-CPU traces, plus {!Pathology} to replay them under the flight
    recorder and diagnose what went wrong.

    The paper evaluates its allocator with synthetic best/worst-case
    loops and one real trace (its Figure 7 measurements); this library
    fills the space in between with reproducible traffic shapes a
    kernel allocator actually meets — bursty diurnal traffic, RPC
    request/response churn, producer/consumer remote-free storms, a
    fragmentation adversary, long-tail object lifetimes, and a recorded
    run of a DLM-shaped workload.  Every scenario is a pure function
    from a seed to a {!Workload.Trace.t}, so results are deterministic
    and scale with the trace transforms ([scale_rate] / [fan_out] /
    [skew_frees]).

    Drivers: [kma_bench scenario] replays one scenario (optionally
    scaled) and prints the {!Pathology} report; [bench/main] replays
    the whole library into [BENCH_host.json]. *)

module Pathology = Pathology

type t = {
  name : string;  (** unique key, e.g. ["producer_consumer"] *)
  summary : string;  (** one line for listings *)
  target : string option;
      (** the {!Pathology} catalogue entry this scenario is built to
          trigger, if any ([None] = expected to stay clean) *)
  ncpus : int;  (** CPUs the generated trace uses *)
  default_seed : int;
  generate : seed:int -> Workload.Trace.t;
      (** deterministic: same seed, same trace *)
}

val all : t list
(** The library, in presentation order; names are unique. *)

val find : string -> t option
val names : unit -> string list
