(** Pathology analysis of a trace replay: replay under the flight
    recorder, sample fragmentation at quiescent points, and mine the
    evidence for the failure shapes the paper's design exists to
    prevent.

    The paper's Measurements section argues from aggregate figures
    (throughput, miss rates); production allocator work also needs to
    answer {e why} a run was slow.  This module replays a scenario's
    trace on the new allocator with the flight recorder installed and
    emits a structured report: latency-tail percentiles per operation,
    a fragmentation-over-time curve from heapcheck walks, and a list of
    detected pathologies — each finding citing the flight-recorder
    event evidence that triggered it.

    The catalogue (see DESIGN.md "Pathology catalogue"):
    - [latency-tail]: alloc p99 far above p50, with the slow-path
      events (global-layer transfers, page grabs) that explain it;
    - [fragmentation]: pages held from the VM system out of proportion
      to the live bytes, from the heapcheck fragmentation samples plus
      page grab/return event totals;
    - [drain-refill-oscillation]: a size class repeatedly draining
      lists to the page layer only to refill from it (the global
      layer's overflow hysteresis thrashing);
    - [lock-convoy]: a spinlock (the gbl per-size locks, in practice)
      with a high contended-acquire fraction, from paired
      acquire/release events.

    Analysis is host-side and deterministic: the same trace and
    configuration produce a byte-identical report. *)

type percentiles = { count : int; p50 : int; p99 : int; pmax : int }
(** Latency percentiles in simulated cycles per operation. *)

type frag_point = {
  at_ops : int;  (** trace events consumed when the sample was taken *)
  granted_pages : int;
  live_bytes : int;  (** the replay's allocated-and-not-freed bytes *)
  held_over_live : float;
      (** granted bytes / live bytes ([nan] when nothing is live) *)
}

type finding = {
  pathology : string;  (** catalogue name, e.g. ["lock-convoy"] *)
  detail : string;  (** one-line diagnosis with the numbers *)
  evidence : string list;
      (** flight-recorder evidence: event totals and rendered example
          events (via {!Flightrec.Event.pp}) *)
}

type report = {
  scenario : string;
  ncpus : int;
  events : int;  (** trace length *)
  result : Workload.Trace.result;
  ops_per_sec : float;
  alloc_lat : percentiles;
  free_lat : percentiles;
  frag_curve : frag_point list;
  findings : finding list;  (** empty = no pathology detected *)
  probe : string list;
      (** allocator-arm observations with no flightrec counterpart:
          lock-free retry counters and the drain oracle (empty for the
          new allocator) *)
}

val analyze :
  ?windows:int ->
  ?memory_words:int ->
  ?which:Baseline.Allocator.which ->
  name:string ->
  Workload.Trace.t ->
  report
(** [analyze ~name t] boots allocator [which] (default [Newkma], the
    new allocator) on a fresh machine with [Workload.Trace.ncpus t]
    CPUs, replays [t] in [windows] (default 16) windows with the
    flight recorder installed, samples fragmentation between windows
    (also running a [Heapcheck.checkpoint] there, so a driver's
    [--heapcheck] composes), and returns the report.  Any previously
    installed flight recorder is restored on return.

    Non-[Newkma] arms boot through [Baseline.Allocator.create_probed]:
    there is no [Kma.Kmem.t] handle, so the fragmentation samples carry
    no page counts (live bytes still tracked, the [fragmentation]
    finding cannot fire), while lock-free arms contribute retry-counter
    [probe] lines and — when the trace ends with nothing live — the
    drain-oracle verdict. *)

val to_string : report -> string
(** Deterministic text rendering (suitable for golden tests). *)
