module Pathology = Pathology

type t = {
  name : string;
  summary : string;
  target : string option;
  ncpus : int;
  default_seed : int;
  generate : seed:int -> Workload.Trace.t;
}

(* Small imperative trace builder: ids are dense and allocated in event
   order, so every generator is deterministic given its seed. *)
module B = struct
  type b = { mutable evs : Workload.Trace.event list; mutable next : int }

  let make () = { evs = []; next = 0 }

  let alloc b ~cpu ~gap ~bytes =
    let id = b.next in
    b.next <- id + 1;
    b.evs <- Workload.Trace.Alloc { cpu; gap; id; bytes } :: b.evs;
    id

  let free b ~cpu ~gap id =
    b.evs <- Workload.Trace.Free { cpu; gap; id } :: b.evs

  let trace b = List.rev b.evs
end

(* Best case: each CPU allocates and immediately frees one block, over
   and over.  After boot every operation is a per-CPU cache hit. *)
let gen_steady ~seed:_ =
  let b = B.make () in
  for _ = 1 to 1200 do
    let ids = Array.init 2 (fun cpu -> B.alloc b ~cpu ~gap:8 ~bytes:256) in
    Array.iteri (fun cpu id -> B.free b ~cpu ~gap:8 id) ids
  done;
  B.trace b

(* RPC churn: request/response pairs with short lifetimes; an eighth of
   the responses are freed by the next CPU over (the handoff a reply
   queue produces). *)
let gen_rpc ~seed =
  let rng = Workload.Prng.create ~seed in
  let b = B.make () in
  for _round = 1 to 400 do
    for cpu = 0 to 3 do
      let req = B.alloc b ~cpu ~gap:(4 + Workload.Prng.int rng ~bound:8) ~bytes:128 in
      let resp = B.alloc b ~cpu ~gap:2 ~bytes:512 in
      B.free b ~cpu ~gap:(6 + Workload.Prng.int rng ~bound:10) req;
      let fcpu = if Workload.Prng.int rng ~bound:8 = 0 then (cpu + 1) mod 4 else cpu in
      B.free b ~cpu:fcpu ~gap:2 resp
    done
  done;
  B.trace b

(* Diurnal traffic: three day-bursts of fast mixed-size allocation, each
   drained at a relaxed pace and followed by a long quiet night. *)
let gen_bursty ~seed =
  let rng = Workload.Prng.create ~seed in
  let b = B.make () in
  let sizes = [| 64; 128; 256; 512; 1024 |] in
  for _day = 1 to 3 do
    let live = ref [] in
    for _ = 1 to 280 do
      for cpu = 0 to 1 do
        let bytes = sizes.(Workload.Prng.int rng ~bound:(Array.length sizes)) in
        let id = B.alloc b ~cpu ~gap:(Workload.Prng.int rng ~bound:3) ~bytes in
        live := (cpu, id) :: !live
      done
    done;
    List.iter
      (fun (cpu, id) -> B.free b ~cpu ~gap:(20 + Workload.Prng.int rng ~bound:20) id)
      !live;
    let idle = B.alloc b ~cpu:0 ~gap:40_000 ~bytes:64 in
    B.free b ~cpu:0 ~gap:40_000 idle
  done;
  B.trace b

(* Long-tail lifetimes: most blocks die immediately, a seeded 12% live
   to the end of the run. *)
let gen_long_tail ~seed =
  let rng = Workload.Prng.create ~seed in
  let b = B.make () in
  let sizes = [| 32; 64; 128; 256 |] in
  let old = ref [] in
  for i = 1 to 1400 do
    let cpu = i land 1 in
    let bytes = sizes.(Workload.Prng.int rng ~bound:(Array.length sizes)) in
    let id = B.alloc b ~cpu ~gap:(Workload.Prng.int rng ~bound:6) ~bytes in
    if Workload.Prng.int rng ~bound:100 < 12 then old := (cpu, id) :: !old
    else B.free b ~cpu ~gap:(Workload.Prng.int rng ~bound:6) id
  done;
  List.iter (fun (cpu, id) -> B.free b ~cpu ~gap:2 id) (List.rev !old);
  B.trace b

(* Remote-free storm: two producer/consumer CPU pairs hammer one size
   class with zero think time; every block allocated on one CPU is freed
   on the other, so both pairs meet at the class's global-layer lock. *)
let gen_producer_consumer ~seed:_ =
  let b = B.make () in
  for _ = 1 to 1200 do
    List.iter
      (fun (p, c) ->
        let id = B.alloc b ~cpu:p ~gap:0 ~bytes:1024 in
        B.free b ~cpu:c ~gap:0 id)
      [ (0, 1); (2, 3) ]
  done;
  B.trace b

(* Fragmentation adversary: fill pages with small blocks, free all but
   one pinned survivor per page (id stride 13 < blocks per page), then
   keep a thin trickle of traffic running so the pinned pages are held
   across many analysis windows before the final release. *)
let gen_frag_adversary ~seed:_ =
  let b = B.make () in
  let n = 3000 in
  let ids = Array.init n (fun _ -> B.alloc b ~cpu:0 ~gap:0 ~bytes:256) in
  Array.iter (fun id -> if id mod 13 <> 0 then B.free b ~cpu:0 ~gap:0 id) ids;
  for _ = 1 to 120 do
    let x = B.alloc b ~cpu:0 ~gap:200 ~bytes:1024 in
    B.free b ~cpu:0 ~gap:200 x
  done;
  Array.iter (fun id -> if id mod 13 = 0 then B.free b ~cpu:0 ~gap:0 id) ids;
  B.trace b

(* Recorded scenario: run a distributed-lock-manager-shaped workload
   (transient request records plus a bounded window of longer-lived
   resource blocks per CPU) against a live newkma and record it through
   [Workload.Trace.record]; then skew a quarter of the frees to a
   different CPU, the DLM's remote-release pattern. *)
let gen_recorded_dlm ~seed =
  let cfg = Workload.Rig.paper_config ~ncpus:4 () in
  let m = Sim.Machine.create cfg in
  let a = Baseline.Allocator.create Baseline.Allocator.Newkma m in
  let trace =
    Workload.Trace.record a (fun wrapped ->
        Sim.Machine.run_symmetric m ~ncpus:4 (fun cpu ->
            let rng = Workload.Prng.create ~seed:(seed + (31 * cpu)) in
            let live = Queue.create () in
            for _tx = 1 to 160 do
              let req = wrapped.Baseline.Allocator.alloc ~bytes:64 in
              let res = wrapped.Baseline.Allocator.alloc ~bytes:128 in
              Sim.Machine.work (30 + Workload.Prng.int rng ~bound:50);
              if req <> 0 then
                wrapped.Baseline.Allocator.free ~addr:req ~bytes:64;
              if res <> 0 then Queue.add res live;
              if Queue.length live > 8 then begin
                let oldest = Queue.pop live in
                wrapped.Baseline.Allocator.free ~addr:oldest ~bytes:128
              end
            done;
            Queue.iter
              (fun addr -> wrapped.Baseline.Allocator.free ~addr ~bytes:128)
              live))
  in
  Workload.Trace.skew_frees ~seed ~fraction:0.25 trace

let all =
  [
    {
      name = "steady";
      summary = "best case: per-CPU alloc/free pairs, all cache hits";
      target = None;
      ncpus = 2;
      default_seed = 1;
      generate = gen_steady;
    };
    {
      name = "rpc";
      summary = "request/response churn with occasional cross-CPU frees";
      target = None;
      ncpus = 4;
      default_seed = 2;
      generate = gen_rpc;
    };
    {
      name = "bursty";
      summary = "diurnal bursts: fast mixed-size pileups, slow drains";
      target = Some "latency-tail";
      ncpus = 2;
      default_seed = 3;
      generate = gen_bursty;
    };
    {
      name = "long_tail";
      summary = "mostly-transient blocks with a 12% long-lived tail";
      target = None;
      ncpus = 2;
      default_seed = 4;
      generate = gen_long_tail;
    };
    {
      name = "producer_consumer";
      summary = "remote-free storm: two CPU pairs, every free cross-CPU";
      target = Some "lock-convoy";
      ncpus = 4;
      default_seed = 5;
      generate = gen_producer_consumer;
    };
    {
      name = "frag_adversary";
      summary = "pin one block per page, hold the pages across the run";
      target = Some "fragmentation";
      ncpus = 1;
      default_seed = 6;
      generate = gen_frag_adversary;
    };
    {
      name = "recorded_dlm";
      summary = "recorded DLM-shaped run with 25% of frees skewed remote";
      target = None;
      ncpus = 4;
      default_seed = 7;
      generate = gen_recorded_dlm;
    };
  ]

let find name = List.find_opt (fun s -> s.name = name) all
let names () = List.map (fun s -> s.name) all
