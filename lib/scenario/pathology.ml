type percentiles = { count : int; p50 : int; p99 : int; pmax : int }

type frag_point = {
  at_ops : int;
  granted_pages : int;
  live_bytes : int;
  held_over_live : float;
}

type finding = { pathology : string; detail : string; evidence : string list }

type report = {
  scenario : string;
  ncpus : int;
  events : int;
  result : Workload.Trace.result;
  ops_per_sec : float;
  alloc_lat : percentiles;
  free_lat : percentiles;
  frag_curve : frag_point list;
  findings : finding list;
  probe : string list;
}

let percentiles_of lats =
  let a = Array.of_list lats in
  Array.sort compare a;
  let n = Array.length a in
  if n = 0 then { count = 0; p50 = 0; p99 = 0; pmax = 0 }
  else
    {
      count = n;
      p50 = a.((n - 1) / 2);
      p99 = a.(99 * (n - 1) / 100);
      pmax = a.(n - 1);
    }

let ev_str e = Format.asprintf "%a" Flightrec.Event.pp e

let rec take n = function
  | [] -> []
  | _ when n = 0 -> []
  | x :: rest -> x :: take (n - 1) rest

(* Detection thresholds.  Deliberately coarse: a finding should mean
   "this run is visibly sick", not "this run is imperfect", so the
   best-case scenarios stay clean (asserted by test/scenario). *)
let convoy_min_acquires = 50
let convoy_contended_pct = 25
let frag_min_pages = 16
let frag_min_ratio = 4.0
let frag_min_live = 4096
let osc_min_alternations = 6
let tail_min_ops = 200
let tail_p99_over_p50 = 8

let convoy_findings fr =
  Flightrec.Report.lock_stats fr
  |> List.filter_map (fun (addr, (st : Flightrec.Report.lock_stat)) ->
         if
           st.acquires >= convoy_min_acquires
           && st.contended * 100 >= convoy_contended_pct * st.acquires
         then begin
           let name = Flightrec.Recorder.lock_name fr addr in
           let contended =
             Flightrec.Recorder.events fr
               ~kind:(function
                 | Flightrec.Event.Lock_acquire { lock; spins } ->
                     lock = addr && spins > 0
                 | _ -> false)
               |> List.rev
           in
           let examples = take 3 contended in
           Some
             {
               pathology = "lock-convoy";
               detail =
                 Printf.sprintf
                   "%s: %d of %d acquires contended (%d%%), %d spins total, \
                    worst acquire spun %d times"
                   name st.contended st.acquires
                   (100 * st.contended / st.acquires)
                   st.spins st.spins_max;
               evidence =
                 Printf.sprintf
                   "%d contended Lock_acquire events recorded on %s; latest:"
                   (List.length contended) name
                 :: List.map ev_str examples;
             }
         end
         else None)

(* Fragmentation is retention, not warmup: only samples strictly after
   the live-set peak count, so a cache filling up while the workload
   ramps is never reported — pages still held once the workload has let
   most of its memory go are. *)
let frag_findings ~page_bytes fr curve =
  let arr = Array.of_list curve in
  let peak = ref (-1) and peak_live = ref 0 in
  Array.iteri
    (fun i p ->
      if p.live_bytes > !peak_live then begin
        peak_live := p.live_bytes;
        peak := i
      end)
    arr;
  let worst = ref None in
  Array.iteri
    (fun i p ->
      if
        i > !peak
        && p.live_bytes >= frag_min_live
        && p.granted_pages >= frag_min_pages
      then
        match !worst with
        | Some w when w.held_over_live >= p.held_over_live -> ()
        | _ -> worst := Some p)
    arr;
  match !worst with
  | Some p when p.held_over_live >= frag_min_ratio ->
      let count k =
        List.length
          (Flightrec.Recorder.events fr
             ~kind:(function e -> k e))
      in
      let grabs =
        count (function Flightrec.Event.Page_grab _ -> true | _ -> false)
      in
      let returns =
        count (function Flightrec.Event.Page_return _ -> true | _ -> false)
      in
      let example =
        Flightrec.Recorder.events fr
          ~kind:(function Flightrec.Event.Page_grab _ -> true | _ -> false)
        |> take 1 |> List.map ev_str
      in
      [
        {
          pathology = "fragmentation";
          detail =
            Printf.sprintf
              "%d pages (%d bytes) held against %d live bytes (%.1fx) at op %d"
              p.granted_pages
              (p.granted_pages * page_bytes)
              p.live_bytes p.held_over_live p.at_ops;
          evidence =
            Printf.sprintf "%d Page_grab events vs %d Page_return events" grabs
              returns
            :: example;
        };
      ]
  | _ -> []

(* Drain/refill oscillation: per size class, count direction changes in
   the sequence of overflow drains ([Gbl_put { drain = true }]) and
   refills from the page layer ([Gbl_get { miss = true }]). *)
let oscillation_findings fr =
  let per_si = Hashtbl.create 8 in
  List.iter
    (fun (e : Flightrec.Event.t) ->
      let dir =
        match e.Flightrec.Event.kind with
        | Flightrec.Event.Gbl_put { si; drain = true } -> Some (si, `Down)
        | Flightrec.Event.Gbl_get { si; miss = true } -> Some (si, `Up)
        | _ -> None
      in
      match dir with
      | None -> ()
      | Some (si, d) ->
          let last, alts, downs, ups, examples =
            match Hashtbl.find_opt per_si si with
            | Some x -> x
            | None -> (None, 0, 0, 0, [])
          in
          let alts =
            match last with Some l when l <> d -> alts + 1 | _ -> alts
          in
          let downs = if d = `Down then downs + 1 else downs in
          let ups = if d = `Up then ups + 1 else ups in
          let examples =
            if List.length examples < 4 && Some d <> last then e :: examples
            else examples
          in
          Hashtbl.replace per_si si (Some d, alts, downs, ups, examples))
    (Flightrec.Recorder.events fr);
  Hashtbl.fold (fun si x acc -> (si, x) :: acc) per_si []
  |> List.sort (fun (a, _) (b, _) -> compare a b)
  |> List.filter_map (fun (si, (_, alts, downs, ups, examples)) ->
         if alts >= osc_min_alternations then
           Some
             {
               pathology = "drain-refill-oscillation";
               detail =
                 Printf.sprintf
                   "size class %d: global layer drained overflow %d times and \
                    refilled from the page layer %d times (%d alternations)"
                   si downs ups alts;
               evidence =
                 Printf.sprintf
                   "alternating Gbl_put(drain)/Gbl_get(miss) events on class \
                    %d; first turns:"
                   si
                 :: List.map ev_str (List.rev examples);
             }
         else None)

let tail_findings fr (alloc_lat : percentiles) =
  if
    alloc_lat.count >= tail_min_ops
    && alloc_lat.p50 > 0
    && alloc_lat.p99 >= tail_p99_over_p50 * alloc_lat.p50
  then begin
    let allocs =
      Flightrec.Recorder.events fr
        ~kind:(function Flightrec.Event.Alloc _ -> true | _ -> false)
    in
    let slow =
      List.filter
        (fun (e : Flightrec.Event.t) ->
          match e.Flightrec.Event.kind with
          | Flightrec.Event.Alloc { layer; _ } ->
              layer <> Flightrec.Event.Percpu
          | _ -> false)
        allocs
    in
    let grabs =
      Flightrec.Recorder.events fr
        ~kind:(function Flightrec.Event.Page_grab _ -> true | _ -> false)
    in
    [
      {
        pathology = "latency-tail";
        detail =
          Printf.sprintf
            "alloc p99 = %d cycles vs p50 = %d (%dx), max %d over %d allocs"
            alloc_lat.p99 alloc_lat.p50
            (alloc_lat.p99 / max 1 alloc_lat.p50)
            alloc_lat.pmax alloc_lat.count;
        evidence =
          Printf.sprintf
            "%d of %d recorded allocations left the per-CPU layer; %d \
             Page_grab events"
            (List.length slow) (List.length allocs) (List.length grabs)
          :: List.map ev_str (take 2 slow);
      };
    ]
  end
  else []

let analyze ?(windows = 16) ?memory_words ?(which = Baseline.Allocator.Newkma)
    ~name t =
  if windows < 1 then invalid_arg "Scenario.Pathology.analyze: windows < 1";
  let ncpus = max 1 (Workload.Trace.ncpus t) in
  let cfg = Workload.Rig.paper_config ?memory_words ~ncpus () in
  let m = Sim.Machine.create cfg in
  let params = Kma.Params.auto ~memory_words:cfg.Sim.Config.memory_words in
  let prev = Flightrec.Recorder.installed () in
  let fr = Flightrec.Recorder.create ~ncpus () in
  (* Install before boot so [Kmem.create]'s lock-name registrations land
     in this recorder and findings name locks symbolically. *)
  Flightrec.Recorder.install fr;
  Fun.protect
    ~finally:(fun () ->
      match prev with
      | Some r -> Flightrec.Recorder.install r
      | None -> Flightrec.Recorder.uninstall ())
  @@ fun () ->
  (* For the new allocator, boot newkma by hand (not
     [Baseline.Allocator.create]) so we keep the [Kma.Kmem.t] handle
     the heapcheck fragmentation walk needs.  Any other roster arm
     boots through [create_probed]; without a kmem handle the
     fragmentation samples carry no page counts (the curve still
     tracks live bytes), and lock-free arms report their retry
     counters instead. *)
  let booted =
    match which with
    | Baseline.Allocator.Newkma ->
        let kmem = Kma.Kmem.create m ~params () in
        let a =
          {
            Baseline.Allocator.name = "newkma";
            alloc =
              (fun ~bytes ->
                match Kma.Kmem.try_alloc kmem ~bytes with
                | Some a -> a
                | None -> 0);
            free = (fun ~addr ~bytes -> Kma.Kmem.free kmem ~addr ~bytes);
          }
        in
        `Newkma (kmem, a)
    | w -> `Probed (Baseline.Allocator.create_probed w m)
  in
  let a = match booted with `Newkma (_, a) -> a | `Probed (a, _) -> a in
  let page_bytes = params.Kma.Params.page_bytes in
  let alloc_lats = ref [] and free_lats = ref [] in
  let on_op ~cpu:_ ~alloc ~latency =
    if alloc then alloc_lats := latency :: !alloc_lats
    else free_lats := latency :: !free_lats
  in
  let s = Workload.Trace.start m a t in
  let total = List.length t in
  let window = max 1 ((total + windows - 1) / windows) in
  let curve = ref [] in
  let consumed = ref 0 in
  let sample () =
    let live = Workload.Trace.live_bytes s in
    let point =
      match booted with
      | `Newkma (kmem, _) ->
          (* Between [step] windows every simulated CPU is parked
             between operations: a quiescent point, so the heapcheck
             walk is sound. *)
          let f = Heapcheck.fragmentation kmem in
          Heapcheck.checkpoint kmem;
          {
            at_ops = !consumed;
            granted_pages = f.Heapcheck.granted_pages;
            live_bytes = live;
            held_over_live =
              (if live = 0 then Float.nan
               else
                 float_of_int (f.Heapcheck.granted_pages * page_bytes)
                 /. float_of_int live);
          }
      | `Probed _ ->
          {
            at_ops = !consumed;
            granted_pages = 0;
            live_bytes = live;
            held_over_live = Float.nan;
          }
    in
    curve := point :: !curve
  in
  let continue = ref (total > 0) in
  while !continue do
    continue := Workload.Trace.step ~on_op s window;
    consumed := min total (!consumed + window);
    sample ()
  done;
  let final_live = Workload.Trace.live_bytes s in
  let result = Workload.Trace.finish s in
  let probe =
    match booted with
    | `Newkma _ -> []
    | `Probed (_, p) ->
        let lines =
          match p.Baseline.Allocator.stats with
          | Some st ->
              [ Printf.sprintf "probe: %s" (Lockfree.Stats.to_string st) ]
          | None -> []
        in
        (* The drain oracle is only meaningful with every block
           returned; skip it when the trace leaves memory live. *)
        if final_live = 0 then
          match p.Baseline.Allocator.drained () with
          | Some msg -> lines @ [ "probe: drain-oracle: " ^ msg ]
          | None -> lines @ [ "probe: drain-oracle: clean" ]
        else lines
  in
  let frag_curve = List.rev !curve in
  let alloc_lat = percentiles_of !alloc_lats in
  let free_lat = percentiles_of !free_lats in
  let findings =
    tail_findings fr alloc_lat
    @ frag_findings ~page_bytes fr frag_curve
    @ oscillation_findings fr
    @ convoy_findings fr
  in
  let ops_per_sec =
    if result.Workload.Trace.cycles = 0 then 0.
    else
      float_of_int result.Workload.Trace.ops
      /. Sim.Config.seconds_of_cycles cfg result.Workload.Trace.cycles
  in
  {
    scenario = name;
    ncpus;
    events = total;
    result;
    ops_per_sec;
    alloc_lat;
    free_lat;
    frag_curve;
    findings;
    probe;
  }

let to_string r =
  let b = Buffer.create 1024 in
  let pf fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  pf "scenario %s: %d CPUs, %d trace events\n" r.scenario r.ncpus r.events;
  pf "result: %d ops (%d failed allocs, %d skipped frees) in %d cycles (%.0f ops/s)\n"
    r.result.Workload.Trace.ops r.result.Workload.Trace.failures
    r.result.Workload.Trace.skipped_frees r.result.Workload.Trace.cycles
    r.ops_per_sec;
  let pp_lat what (p : percentiles) =
    pf "%s latency (cycles): n=%d p50=%d p99=%d max=%d\n" what p.count p.p50
      p.p99 p.pmax
  in
  pp_lat "alloc" r.alloc_lat;
  pp_lat "free " r.free_lat;
  pf "fragmentation curve (at-ops granted-pages live-bytes held/live):\n";
  List.iter
    (fun p ->
      let ratio =
        if Float.is_nan p.held_over_live then "-"
        else Printf.sprintf "%.2f" p.held_over_live
      in
      pf "  %6d %5d %8d %s\n" p.at_ops p.granted_pages p.live_bytes ratio)
    r.frag_curve;
  (match r.findings with
  | [] -> pf "findings: none\n"
  | fs ->
      pf "findings (%d):\n" (List.length fs);
      List.iter
        (fun f ->
          pf "  [%s] %s\n" f.pathology f.detail;
          List.iter (fun e -> pf "      evidence: %s\n" e) f.evidence)
        fs);
  List.iter (fun l -> pf "%s\n" l) r.probe;
  Buffer.contents b
