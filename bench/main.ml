(* The full benchmark harness: regenerates every table and figure of
   McKenney & Slingwine (USENIX Winter 1993) at a scale that completes
   in a few minutes, runs the ablations called out in DESIGN.md, and
   finishes with a Bechamel microbenchmark suite for the native
   per-domain pool.

     dune exec bench/main.exe              # everything
     dune exec bench/main.exe -- fig7 ...  # only the named sections

   Larger, slower runs of individual experiments: bin/kma_bench.exe. *)

let section name = Experiments.Series.heading name

(* Host-side wall clock for section timing: monotonic, so NTP steps or
   host clock slews can never produce negative or skewed section times
   (Unix.gettimeofday is wall time and can move backwards). *)
let now_s () = Int64.to_float (Monotonic_clock.now ()) /. 1e9

let wall f =
  let t0 = now_s () in
  let r = f () in
  Printf.printf "(section took %.1fs of host time)\n" (now_s () -. t0);
  r

(* --- the domain-parallel job pool (--jobs) --- *)

let jobs = ref (Parallel.default_jobs ())

(* Set by the --lockcheck command-line flag: sections that exercise the
   allocators validate the synchronization discipline (lock order, irq
   discipline, locks across VM calls) and print the lockcheck report.
   Host-side, zero simulated-cycle cost, like the flight recorder. *)
let lockcheck_enabled = ref false

(* Set by the --flight-recorder command-line flag: sections that run the
   DLM workload record a per-CPU event trace and print the
   flight-recorder report (host-side, zero simulated-cycle cost). *)
let flightrec_enabled = ref false

let with_lockcheck f =
  if not !lockcheck_enabled then f ()
  else begin
    Lockcheck.enable ();
    Fun.protect
      ~finally:(fun () -> Lockcheck.disable ())
      (fun () ->
        let r = f () in
        print_newline ();
        print_string (Lockcheck.report ());
        r)
  end

(* Set by the --heapcheck command-line flag: sections with a quiescent
   point sweep the allocator's heap invariants (freelist counts,
   page-descriptor tiling, conservation) and print the heapcheck
   report.  Host-side, zero simulated-cycle cost; any violation fails
   the run. *)
let heapcheck_enabled = ref false

(* The flight recorder and lockcheck keep host-GLOBAL state (one
   installed recorder, one lock graph), so sections running with those
   checkers enabled are serialized onto the calling domain; heapcheck
   state is domain-local with a shard/absorb merge, so it composes
   with any job count.  See DESIGN.md "Concurrency invariants". *)
let effective_jobs () =
  if !flightrec_enabled || !lockcheck_enabled then 1 else !jobs

let with_heapcheck f =
  if not !heapcheck_enabled then f ()
  else begin
    Heapcheck.enable ~abort:false ();
    Fun.protect
      ~finally:(fun () -> Heapcheck.disable ())
      (fun () ->
        let r = f () in
        print_newline ();
        print_string (Heapcheck.report ());
        if Heapcheck.violation_count () > 0 then exit 1;
        r)
  end

(* --- E1: the Analysis section's allocb/freeb profile --- *)

let bench_analysis () =
  wall (fun () ->
      with_lockcheck (fun () ->
          Experiments.Analysis.print
            (Experiments.Analysis.run ~samples:150 ())))

(* --- E2: instruction counts --- *)

let bench_opcounts () =
  wall (fun () ->
      Experiments.Opcounts.print
        (Experiments.Opcounts.run ~jobs:(effective_jobs ()) ()))

(* --- E3/E4: Figures 7 and 8 --- *)

let bench_fig7 () =
  wall (fun () ->
      let points =
        Experiments.Fig7.run ~jobs:(effective_jobs ())
          ~cpus:[ 1; 2; 4; 8; 12; 16; 20; 25 ] ~iters:400 ()
      in
      Experiments.Fig7.print_linear points;
      Experiments.Fig7.print_semilog points;
      let open Baseline.Allocator in
      Printf.printf "\ncookie speedup: %s\n"
        (String.concat ", "
           (List.map
              (fun (n, s) -> Printf.sprintf "%dcpu=%.1fx" n s)
              (Experiments.Fig7.speedup points ~which:Cookie)));
      Printf.printf "single-CPU cookie/oldkma: %.1fx (paper: 15x)\n"
        (Experiments.Fig7.single_cpu_ratio points ~num:Cookie ~den:Oldkma);
      let at n w =
        match
          List.find_opt
            (fun p ->
              p.Experiments.Fig7.which = w && p.Experiments.Fig7.ncpus = n)
            points
        with
        | Some p -> p.Experiments.Fig7.pairs_per_sec
        | None -> Float.nan
      in
      Printf.printf "25-CPU cookie/oldkma: %.0fx (paper: >1000x)\n"
        (at 25 Cookie /. at 25 Oldkma))

(* --- E5: Figure 9 --- *)

let bench_fig9 () =
  wall (fun () ->
      (* Each Fig9 sweep runs every size on ONE machine (cache warmth
         carries from size to size), so the per-size cells are not
         independent; the two allocator sweeps are, and fan out. *)
      let results, mk =
        match
          Parallel.map ~jobs:(effective_jobs ())
            (fun which ->
              Experiments.Fig9.run ?which ~memory_words:(256 * 1024) ())
            [ None; Some Baseline.Allocator.Mk ]
        with
        | [ results; mk ] -> (results, mk)
        | _ -> assert false
      in
      Experiments.Fig9.print results;
      Printf.printf "sweep completed without wedging: %b\n"
        (Experiments.Fig9.completed results);
      (* The paper's side claim: an allocator without coalescing cannot
         complete this benchmark. *)
      let wedged =
        List.filter (fun r -> r.Workload.Worstcase.blocks <= 10) mk
      in
      Printf.printf
        "mk (no coalescing) wedged on %d of %d sizes, as the paper \
         predicts\n"
        (List.length wedged) (List.length mk))

(* --- E6: DLM miss rates --- *)

let with_flightrec ~ncpus f =
  if not !flightrec_enabled then f ()
  else begin
    let fr = Flightrec.Recorder.create ~ncpus () in
    Flightrec.Recorder.install fr;
    Fun.protect
      ~finally:(fun () -> Flightrec.Recorder.uninstall ())
      (fun () ->
        let r = f () in
        print_newline ();
        print_string (Flightrec.Report.to_string fr);
        r)
  end

let bench_missrates () =
  wall (fun () ->
      with_heapcheck (fun () ->
      with_lockcheck (fun () ->
          with_flightrec ~ncpus:4 (fun () ->
              let r =
                Experiments.Missrates.run ~transactions_per_cpu:2000 ()
              in
              Experiments.Missrates.print r;
              Printf.printf "all rates within analytic bounds: %b\n"
                (Experiments.Missrates.within_bounds r)))))

(* --- E8: memory pressure --- *)

let bench_pressure () =
  wall (fun () ->
      with_heapcheck (fun () ->
      with_lockcheck (fun () ->
          with_flightrec ~ncpus:4 (fun () ->
              let r = Experiments.Pressure.run ~jobs:(effective_jobs ()) () in
              Experiments.Pressure.print r;
              Printf.printf "\ngraceful degradation at 20%% denials: %b\n"
                (Experiments.Pressure.graceful r)))))

(* --- Fuzz: differential fuzz of the new allocator (lib/heapcheck) --- *)

let bench_fuzz () =
  wall (fun () ->
      section "Differential fuzz vs reference model (heap invariants)";
      let matrix =
        [
          ("paranoid", Heapcheck.Fuzz.config ~ops:1500 ~seed:21 ());
          ( "pressure + faults",
            Heapcheck.Fuzz.config ~ops:1500 ~seed:22 ~pressure:true
              ~fault_rate:0.3 () );
          ( "debug kernel, sweep",
            Heapcheck.Fuzz.config ~ops:1500 ~seed:23 ~debug:true
              ~check_every:32 () );
        ]
      in
      let outcomes =
        Heapcheck.Fuzz.run_matrix ~jobs:(effective_jobs ())
          (List.map snd matrix)
      in
      let failed = ref false in
      List.iter2
        (fun (name, _) (o : Heapcheck.Fuzz.outcome) ->
          Printf.printf "%-28s %5d checks  %5d allocs  %5d frees  %s\n" name
            o.Heapcheck.Fuzz.checks o.Heapcheck.Fuzz.allocs
            o.Heapcheck.Fuzz.frees
            (match o.Heapcheck.Fuzz.failure with
            | None -> "ok"
            | Some f ->
                Printf.sprintf "FAILED at op %d" f.Heapcheck.Fuzz.index);
          if o.Heapcheck.Fuzz.failure <> None then failed := true)
        matrix outcomes;
      if !failed then exit 1)

(* --- Smoke: a tiny recorded DLM run for dune's @runtest-smoke --- *)

let bench_smoke () =
  wall (fun () ->
      section "Smoke: DLM workload with the flight recorder and lockcheck";
      let saved_fr = !flightrec_enabled and saved_lc = !lockcheck_enabled in
      flightrec_enabled := true;
      lockcheck_enabled := true;
      Fun.protect
        ~finally:(fun () ->
          flightrec_enabled := saved_fr;
          lockcheck_enabled := saved_lc)
        (fun () ->
          with_lockcheck (fun () ->
              with_flightrec ~ncpus:2 (fun () ->
                  let r =
                    Experiments.Missrates.run ~ncpus:2
                      ~transactions_per_cpu:150 ()
                  in
                  Experiments.Missrates.print r))))

(* --- Ablation A: the target parameter --- *)

let bench_ablation_target () =
  wall (fun () ->
      section
        "Ablation: per-CPU target (1 = no batching, the paper's \
         free-singly strawman)";
      let rows =
        Parallel.map ~jobs:(effective_jobs ())
          (fun target ->
            let cfg = Workload.Rig.paper_config ~ncpus:4 () in
            let m = Sim.Machine.create cfg in
            let params =
              let base =
                Kma.Params.auto
                  ~memory_words:cfg.Sim.Config.memory_words
              in
              Kma.Params.make ~vmblk_pages:base.Kma.Params.vmblk_pages
                ~targets:(Array.make 9 target)
                ~gbltargets:
                  (Array.make 9 (Kma.Params.default_gbltarget ~target))
                ()
            in
            let kmem = Kma.Kmem.create m ~params () in
            let r =
              Dlm.Oltp.run ~kmem ~ncpus:4 ~transactions_per_cpu:800 ()
            in
            let stats = Kma.Kmem.stats kmem in
            (* 64-byte class carries the note + resource traffic. *)
            let si = 2 in
            [
              string_of_int target;
              Experiments.Series.pct
                (Kma.Kstats.percpu_alloc_miss_rate stats ~si);
              Experiments.Series.pct
                (Kma.Kstats.combined_alloc_miss_rate stats ~si);
              Experiments.Series.sci
                (float_of_int r.Dlm.Oltp.transactions
                /. Sim.Config.seconds_of_cycles cfg r.Dlm.Oltp.cycles);
            ])
          [ 1; 2; 5; 10; 20 ]
      in
      Experiments.Series.table
        ~header:[ "target"; "pcpu miss (64B)"; "combined miss"; "tx/s" ]
        rows;
      print_endline
        "expected: miss rates fall roughly as 1/target; throughput rises \
         then flattens")

(* --- Ablation B: radix page order vs emptiest-first --- *)

let bench_ablation_page_policy () =
  wall (fun () ->
      section "Ablation: coalesce-to-page selection policy";
      (* Steady churn on one size class: repeatedly free a random
         fraction of the live set and allocate back a bit less, with a
         tiny per-CPU cache so traffic reaches the page layer.  The
         radix order (fullest-first) concentrates allocations in full
         pages, letting sparse pages drain to the VM system; the
         emptiest-first strawman keeps refilling the sparse pages. *)
      let churn policy =
        let cfg =
          Workload.Rig.paper_config ~ncpus:1 ~memory_words:(1024 * 1024) ()
        in
        let m = Sim.Machine.create cfg in
        let params =
          let base =
            Kma.Params.auto ~memory_words:cfg.Sim.Config.memory_words
          in
          Kma.Params.make ~vmblk_pages:base.Kma.Params.vmblk_pages
            ~targets:(Array.make 9 2) ~gbltargets:(Array.make 9 2)
            ~page_policy:policy ()
        in
        let kmem = Kma.Kmem.create m ~params () in
        let rng = Workload.Prng.create ~seed:3 in
        let bytes = 256 in
        let final = ref (0, 0, 0) in
        Sim.Machine.run m
          [|
            (fun _ ->
              let live = ref [] in
              let nlive = ref 0 in
              let alloc_n n =
                for _ = 1 to n do
                  match Kma.Kmem.try_alloc kmem ~bytes with
                  | Some a ->
                      live := a :: !live;
                      incr nlive
                  | None -> ()
                done
              in
              let free_frac pct =
                let keep = ref [] in
                let freed = ref 0 in
                List.iter
                  (fun a ->
                    if Workload.Prng.int rng ~bound:100 < pct then begin
                      Kma.Kmem.free kmem ~addr:a ~bytes;
                      decr nlive;
                      incr freed
                    end
                    else keep := a :: !keep)
                  !live;
                live := !keep;
                !freed
              in
              alloc_n 600;
              for _round = 1 to 30 do
                let freed = free_frac 30 in
                (* Allocate back slightly less, so sparse pages have a
                   chance to drain while the live set stays large. *)
                alloc_n (freed * 5 / 6)
              done;
              let st = Kma.Kmem.stats kmem in
              let si = 4 in
              final :=
                ( Kma.Kmem.granted_pages_oracle kmem,
                  (Kma.Kstats.size st si).Kma.Kstats.pages_returned,
                  !nlive ));
          |];
        !final
      in
      let (f_pages, f_ret, f_live), (e_pages, e_ret, e_live) =
        match
          Parallel.map ~jobs:(effective_jobs ()) churn
            [ Kma.Params.Fullest_first; Kma.Params.Emptiest_first ]
        with
        | [ f; e ] -> (f, e)
        | _ -> assert false
      in
      Experiments.Series.table
        ~header:
          [ "policy"; "live blocks"; "pages held"; "pages recycled" ]
        [
          [ "fullest-first (paper)"; string_of_int f_live;
            string_of_int f_pages; string_of_int f_ret ];
          [ "emptiest-first"; string_of_int e_live; string_of_int e_pages;
            string_of_int e_ret ];
        ];
      print_endline
        "expected: same live data, but fullest-first holds it in fewer \
         pages and recycles more")

(* --- Cross-CPU flow: what the global layer buys --- *)

let bench_crosscpu () =
  wall (fun () ->
      section "Producer/consumer flow through the global layer";
      let rows =
        Parallel.map ~jobs:(effective_jobs ())
          (fun which ->
            let r =
              Workload.Crosscpu.run ~which ~pairs:2 ~blocks_per_pair:2000 ()
            in
            [
              Baseline.Allocator.name_of which;
              Experiments.Series.sci r.Workload.Crosscpu.transfers_per_sec;
            ])
          Baseline.Allocator.[ Cookie; Newkma; Mk; Oldkma ]
      in
      Experiments.Series.table ~header:[ "allocator"; "transfers/s" ] rows)

(* --- Roads not taken: the watermark lazy buddy --- *)

let bench_roads_not_taken () =
  wall (fun () ->
      section
        "Roads not taken: Lee-Barkley lazy buddy (global lock, per-op \
         shared-state traffic)";
      let open Baseline.Allocator in
      let points =
        Experiments.Fig7.run ~jobs:(effective_jobs ())
          ~whichs:[ Cookie; Newkma; Lazybuddy ]
          ~cpus:[ 1; 2; 4; 8 ] ~iters:400 ()
      in
      Experiments.Fig7.print_linear points;
      print_endline
        "the lazy buddy is fast on one CPU (lazy frees skip the bitmap) \
         but, as the paper argues, its global synchronization keeps it \
         from scaling";
      (* It does coalesce, though: the worst-case sweep completes. *)
      let sweep =
        Experiments.Fig9.run ~which:Lazybuddy ~memory_words:(256 * 1024) ()
      in
      Printf.printf "lazy buddy completes the worst-case sweep: %b\n"
        (Experiments.Fig9.completed sweep))

(* --- Native pool: Bechamel microbenchmarks --- *)

let bechamel_suite () =
  section "Native OCaml 5 pool (Bechamel, ns/op, single domain)";
  let open Bechamel in
  let pooled =
    Objpool.Pool.create ~ctor:(fun () -> Bytes.create 4096) ~target:16 ()
  in
  let locked =
    Objpool.Locked_pool.create ~ctor:(fun () -> Bytes.create 4096) ()
  in
  (* Warm both so steady state is measured. *)
  Objpool.Pool.release pooled (Objpool.Pool.alloc pooled);
  Objpool.Locked_pool.release locked (Objpool.Locked_pool.alloc locked);
  let tests =
    Test.make_grouped ~name:"pool"
      [
        Test.make ~name:"per-domain magazine pair"
          (Staged.stage (fun () ->
               let b = Objpool.Pool.alloc pooled in
               Objpool.Pool.release pooled b));
        Test.make ~name:"global locked pool pair"
          (Staged.stage (fun () ->
               let b = Objpool.Locked_pool.alloc locked in
               Objpool.Locked_pool.release locked b));
        Test.make ~name:"fresh Bytes.create 4096"
          (Staged.stage (fun () -> ignore (Sys.opaque_identity (Bytes.create 4096))));
      ]
  in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:None ()
  in
  let raw = Benchmark.all cfg [ Toolkit.Instance.monotonic_clock ] tests in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  let rows =
    Hashtbl.fold
      (fun name o acc ->
        let est =
          match Analyze.OLS.estimates o with
          | Some [ e ] -> Printf.sprintf "%.1f" e
          | Some _ | None -> "-"
        in
        let r2 =
          match Analyze.OLS.r_square o with
          | Some r -> Printf.sprintf "%.4f" r
          | None -> "-"
        in
        [ name; est; r2 ] :: acc)
      results []
  in
  Experiments.Series.table
    ~header:[ "benchmark"; "ns/op"; "r^2" ]
    (List.sort compare rows)

(* --- Native pool: domain scaling (informational on 1-core hosts) --- *)

let bench_pool_domains () =
  wall (fun () ->
      section "Native pool vs locked pool under domain contention";
      let ndomains = max 2 (min 4 (Domain.recommended_domain_count ())) in
      let ops = 100_000 in
      let run_pooled () =
        let p =
          Objpool.Pool.create ~ctor:(fun () -> Bytes.create 512) ~target:32 ()
        in
        let worker () =
          for _ = 1 to ops do
            let b = Objpool.Pool.alloc p in
            Objpool.Pool.release p b
          done;
          Objpool.Pool.flush_local p
        in
        let t0 = Unix.gettimeofday () in
        let ds = List.init (ndomains - 1) (fun _ -> Domain.spawn worker) in
        worker ();
        List.iter Domain.join ds;
        Unix.gettimeofday () -. t0
      in
      let run_locked () =
        let p =
          Objpool.Locked_pool.create ~ctor:(fun () -> Bytes.create 512) ()
        in
        let worker () =
          for _ = 1 to ops do
            let b = Objpool.Locked_pool.alloc p in
            Objpool.Locked_pool.release p b
          done
        in
        let t0 = Unix.gettimeofday () in
        let ds = List.init (ndomains - 1) (fun _ -> Domain.spawn worker) in
        worker ();
        List.iter Domain.join ds;
        Unix.gettimeofday () -. t0
      in
      let tp = run_pooled () and tl = run_locked () in
      let rate t = float_of_int (ndomains * ops) /. t /. 1e6 in
      Experiments.Series.table
        ~header:[ "pool"; "domains"; "M ops/s" ]
        [
          [ "per-domain magazines"; string_of_int ndomains;
            Experiments.Series.f1 (rate tp) ];
          [ "single mutex"; string_of_int ndomains;
            Experiments.Series.f1 (rate tl) ];
        ];
      if Domain.recommended_domain_count () < 2 then
        print_endline
          "note: this host has one core, so contention effects are muted \
           (the simulated-machine figures above are the scaling result)")

(* --- Scenario library: trace replays + pathology highlights --- *)

(* Host wall time per scenario replay, recorded into BENCH_host.json's
   "scenarios" array (never printed in the table: the table is
   simulated data and must stay bit-identical across runs). *)
let scenario_times : (string * float) list ref = ref []

let bench_scenarios () =
  wall (fun () ->
      section "Scenario library (trace replays on the new allocator)";
      let rows =
        Experiments.Scenarios.run ~jobs:(effective_jobs ()) ~now:now_s ()
      in
      Experiments.Scenarios.print rows;
      scenario_times :=
        List.map
          (fun (r : Experiments.Scenarios.row) ->
            (r.Experiments.Scenarios.name, r.Experiments.Scenarios.wall_s))
          rows;
      (* Pathology analysis replays under the one installed flight
         recorder, so it runs serially; it is the bench-level proof
         that each scenario's target detector fires. *)
      print_newline ();
      Experiments.Scenarios.print_highlights ())

(* --- E15: serving traffic through the pool (lib/service) --- *)

(* Outcomes recorded into BENCH_host.json's "service" array: unlike the
   simulated tables, everything here is real hardware timing. *)
let service_outcomes : (string * Service.outcome) list ref = ref []

let bench_service () =
  wall (fun () ->
      section
        "Serving traffic through the native pool (E15: fixed vs adaptive)";
      let serve label scenario ~domains ~requests ?(refill = false) mode =
        let cfg =
          {
            (Service.default ~scenario) with
            Service.domains;
            requests;
            mode;
            refill;
          }
        in
        let o = Service.run cfg in
        service_outcomes := !service_outcomes @ [ (label, o) ];
        print_string (Service.to_string o);
        print_newline ();
        o
      in
      (* A steady closed loop, plus the SpeedMalloc dedicated-refill-domain
         arm on the same load (prefills > 0 proves the stocker ran). *)
      let _ =
        serve "steady/fixed" "steady" ~domains:2 ~requests:125_000 `Fixed
      in
      let _ =
        serve "steady/fixed+refill" "steady" ~domains:2 ~requests:125_000
          ~refill:true `Fixed
      in
      (* The E15 headline: cross-domain producer/consumer flow, where
         every object is freed on a different domain than its alloc. *)
      let fx =
        serve "producer_consumer/fixed" "producer_consumer" ~domains:4
          ~requests:150_000 `Fixed
      in
      let ad =
        serve "producer_consumer/adaptive" "producer_consumer" ~domains:4
          ~requests:150_000 `Adaptive
      in
      let st m = m.Service.o_stats in
      Printf.printf
        "fixed vs adaptive (producer_consumer): ops/s %.2e -> %.2e, \
         creates %d -> %d, depot acquires %d -> %d, contended %d -> %d, \
         drops %d -> %d\n"
        fx.Service.o_ops_per_sec ad.Service.o_ops_per_sec
        (st fx).Service.Pstats.s_creates (st ad).Service.Pstats.s_creates
        (st fx).Service.Pstats.s_depot_acquires
        (st ad).Service.Pstats.s_depot_acquires
        (st fx).Service.Pstats.s_depot_contended
        (st ad).Service.Pstats.s_depot_contended
        (st fx).Service.Pstats.s_drops (st ad).Service.Pstats.s_drops)

(* --- E13: lock-free allocator arms --- *)

(* Set by --allocs: restricts the lockfree section's arms.  An unknown
   name is a usage error (exit 2, roster listed) before any section
   runs, matching kma_bench's converter behaviour. *)
let lockfree_whichs = ref Experiments.Lockfree_arms.default_whichs

let set_allocs spec =
  let names = String.split_on_char ',' spec in
  lockfree_whichs :=
    List.map
      (fun n ->
        match Baseline.Allocator.of_name (String.trim n) with
        | Some w -> w
        | None ->
            Printf.eprintf "bench: unknown allocator %S (valid: %s)\n"
              (String.trim n) Baseline.Allocator.roster_string;
            exit 2)
      names

let bench_lockfree () =
  wall (fun () ->
      let whichs = !lockfree_whichs in
      match
        Experiments.Lockfree_arms.run ~jobs:(effective_jobs ()) ~whichs
          ~cpus:[ 1; 2; 4; 8; 16; 26 ] ~iters:400 ()
      with
      | points ->
          Experiments.Lockfree_arms.print_throughput points;
          Experiments.Lockfree_arms.print_retries points;
          let remote =
            Experiments.Lockfree_arms.run_crosscpu
              ~jobs:(effective_jobs ()) ~whichs ~pairs:[ 1; 2; 4; 8 ]
              ~blocks_per_pair:300 ()
          in
          Experiments.Lockfree_arms.print_crosscpu remote;
          let storm =
            Experiments.Lockfree_arms.run_storm ~jobs:(effective_jobs ())
              ~whichs:
                (List.filter
                   (fun w -> List.mem w Baseline.Allocator.lockfree)
                   whichs)
              ~cpus:[ 1; 2; 4; 8; 16; 26 ] ()
          in
          Experiments.Lockfree_arms.print_storm storm
      | exception Experiments.Lockfree_arms.Conservation msg ->
          Printf.eprintf "bench: lockfree conservation violated: %s\n" msg;
          exit 1)

(* --- E14: NUMA scaling past the paper --- *)

let bench_numa () =
  wall (fun () ->
      let rows =
        Experiments.Numa.run ~jobs:(effective_jobs ())
          ~cpus:[ 32; 64; 128 ] ~nodes:[ 1; 4 ] ~iters:8 ()
      in
      Experiments.Numa.print rows)

(* --- E12: cache-geometry sweep --- *)

let bench_geometry () =
  wall (fun () ->
      let rows = Experiments.Geomsweep.run ~jobs:(effective_jobs ()) () in
      Experiments.Geomsweep.print rows)

let sections =
  [
    ("analysis", bench_analysis);
    ("opcounts", bench_opcounts);
    ("fig7", bench_fig7);
    ("fig9", bench_fig9);
    ("missrates", bench_missrates);
    ("geometry", bench_geometry);
    ("ablation-target", bench_ablation_target);
    ("ablation-pagepolicy", bench_ablation_page_policy);
    ("crosscpu", bench_crosscpu);
    ("lockfree", bench_lockfree);
    ("numa", bench_numa);
    ("scenarios", bench_scenarios);
    ("roads-not-taken", bench_roads_not_taken);
    ("bechamel", bechamel_suite);
    ("pool-domains", bench_pool_domains);
    ("service", bench_service);
    ("pressure", bench_pressure);
    ("fuzz", bench_fuzz);
    ("smoke", bench_smoke);
  ]

(* "smoke" is for dune's @runtest-smoke alias; it is not part of the
   run-everything default. *)
let default_sections =
  List.filter (fun (n, _) -> n <> "smoke") sections

(* Sections whose sweeps fan out over the job pool (analysis and
   missrates each drive a single machine; bechamel and pool-domains are
   host microbenchmarks) — the only ones --compare-jobs1 re-times. *)
let parallel_sections =
  [
    "opcounts"; "fig7"; "fig9"; "geometry"; "ablation-target";
    "ablation-pagepolicy"; "crosscpu"; "lockfree"; "numa"; "scenarios";
    "roads-not-taken"; "pressure"; "fuzz";
  ]

let host_json = ref (Some "BENCH_host.json")
let compare_jobs1 = ref false

(* Run [f] with stdout sent to /dev/null: --compare-jobs1 re-runs
   sections purely for their host time, and their (identical) output
   must not appear twice. *)
let silenced f =
  flush stdout;
  let saved = Unix.dup Unix.stdout in
  let devnull = Unix.openfile "/dev/null" [ Unix.O_WRONLY ] 0 in
  Unix.dup2 devnull Unix.stdout;
  Unix.close devnull;
  Fun.protect
    ~finally:(fun () ->
      flush stdout;
      Unix.dup2 saved Unix.stdout;
      Unix.close saved)
    f

type record = {
  rname : string;
  seconds : float;
  rjobs : int;
  seconds_jobs1 : float option;
}

let json_escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (function
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let write_host_json path records =
  let oc = open_out path in
  let total = List.fold_left (fun a r -> a +. r.seconds) 0. records in
  Printf.fprintf oc
    "{\n\
    \  \"host_cores\": %d,\n\
    \  \"recommended_domains\": %d,\n\
    \  \"jobs\": %d,\n\
    \  \"geometry\": \"%s\",\n"
    (Parallel.host_cores ())
    (Domain.recommended_domain_count ())
    !jobs
    (json_escape (Sim.Geometry.to_string (Sim.Geometry.ambient ())));
  Printf.fprintf oc "  \"total_seconds\": %.3f,\n  \"sections\": [\n" total;
  List.iteri
    (fun i r ->
      let speedup =
        match r.seconds_jobs1 with
        | Some t1 when r.seconds > 0. -> Printf.sprintf "%.2f" (t1 /. r.seconds)
        | _ -> "null"
      in
      Printf.fprintf oc
        "    {\"name\": \"%s\", \"seconds\": %.3f, \"jobs\": %d, \
         \"seconds_jobs1\": %s, \"speedup_vs_jobs1\": %s}%s\n"
        (json_escape r.rname) r.seconds r.rjobs
        (match r.seconds_jobs1 with
        | Some t1 -> Printf.sprintf "%.3f" t1
        | None -> "null")
        speedup
        (if i = List.length records - 1 then "" else ","))
    records;
  Printf.fprintf oc "  ],\n  \"scenarios\": [\n";
  let sts = !scenario_times in
  List.iteri
    (fun i (name, seconds) ->
      Printf.fprintf oc "    {\"name\": \"%s\", \"seconds\": %.3f}%s\n"
        (json_escape name) seconds
        (if i = List.length sts - 1 then "" else ","))
    sts;
  Printf.fprintf oc "  ],\n  \"service\": [\n";
  let svc = !service_outcomes in
  List.iteri
    (fun i (label, (o : Service.outcome)) ->
      let s = o.Service.o_stats in
      Printf.fprintf oc
        "    {\"name\": \"%s\", \"domains\": %d, \"requests\": %d, \
         \"ops\": %d, \"seconds\": %.3f, \"ops_per_sec\": %.0f, \
         \"p50_ns\": %.0f, \"p99_ns\": %.0f, \"p999_ns\": %.0f, \
         \"creates\": %d, \"depot_acquires\": %d, \"contended\": %d, \
         \"contention_rate\": %.6f, \"drops\": %d, \"prefills\": %d, \
         \"grows\": %d, \"shrinks\": %d, \"final_target\": %d, \
         \"final_bound\": %d}%s\n"
        (json_escape label) o.Service.o_domains o.Service.o_requests
        o.Service.o_ops o.Service.o_wall_s o.Service.o_ops_per_sec
        o.Service.o_p50 o.Service.o_p99 o.Service.o_p999
        s.Service.Pstats.s_creates s.Service.Pstats.s_depot_acquires
        s.Service.Pstats.s_depot_contended
        (if Float.is_nan o.Service.o_contention then 0.
         else o.Service.o_contention)
        s.Service.Pstats.s_drops s.Service.Pstats.s_prefills
        s.Service.Pstats.s_grows s.Service.Pstats.s_shrinks
        o.Service.o_final_target o.Service.o_final_bound
        (if i = List.length svc - 1 then "" else ","))
    svc;
  Printf.fprintf oc "  ]\n}\n";
  close_out oc

let set_jobs v =
  match int_of_string_opt v with
  | Some n when n >= 1 -> jobs := n
  | Some _ | None ->
      Printf.eprintf "bench: invalid --jobs value %S (want an integer >= 1)\n"
        v;
      exit 2

(* A bad spec is a usage error: report and exit 2 before any section
   runs, so a typo cannot silently benchmark the default geometry. *)
let set_geometry spec =
  match Sim.Geometry.of_string spec with
  | Ok g -> Sim.Geometry.set_ambient g
  | Error msg ->
      Printf.eprintf "bench: bad --geometry: %s\n" msg;
      exit 2

let () =
  (* KMA_GEOMETRY first, so an explicit --geometry flag wins. *)
  (match Sim.Geometry.of_env () with
  | Ok g -> Sim.Geometry.set_ambient g
  | Error msg ->
      Printf.eprintf "bench: bad %s: %s\n" Sim.Geometry.env_var msg;
      exit 2);
  let rec parse args names =
    match args with
    | [] -> List.rev names
    | "--flight-recorder" :: rest ->
        flightrec_enabled := true;
        parse rest names
    | "--lockcheck" :: rest ->
        lockcheck_enabled := true;
        parse rest names
    | "--heapcheck" :: rest ->
        heapcheck_enabled := true;
        parse rest names
    | "--jobs" :: v :: rest ->
        set_jobs v;
        parse rest names
    | [ "--jobs" ] ->
        prerr_endline "bench: --jobs needs a value";
        exit 2
    | "--no-host-json" :: rest ->
        host_json := None;
        parse rest names
    | "--host-json" :: path :: rest ->
        host_json := Some path;
        parse rest names
    | [ "--host-json" ] ->
        prerr_endline "bench: --host-json needs a path";
        exit 2
    | "--compare-jobs1" :: rest ->
        compare_jobs1 := true;
        parse rest names
    | "--geometry" :: spec :: rest ->
        set_geometry spec;
        parse rest names
    | [ "--geometry" ] ->
        prerr_endline "bench: --geometry needs a spec (key=value,...)";
        exit 2
    | "--allocs" :: spec :: rest ->
        set_allocs spec;
        parse rest names
    | [ "--allocs" ] ->
        prerr_endline "bench: --allocs needs a comma-separated list of names";
        exit 2
    | arg :: rest
      when String.length arg > 9 && String.sub arg 0 9 = "--allocs=" ->
        set_allocs (String.sub arg 9 (String.length arg - 9));
        parse rest names
    | arg :: rest
      when String.length arg > 11 && String.sub arg 0 11 = "--geometry=" ->
        set_geometry (String.sub arg 11 (String.length arg - 11));
        parse rest names
    | arg :: rest
      when String.length arg > 7 && String.sub arg 0 7 = "--jobs=" ->
        set_jobs (String.sub arg 7 (String.length arg - 7));
        parse rest names
    | name :: rest -> parse rest (name :: names)
  in
  let names = parse (List.tl (Array.to_list Sys.argv)) [] in
  if !jobs > 1 && (!flightrec_enabled || !lockcheck_enabled) then
    prerr_endline
      "bench: note: --flight-recorder/--lockcheck keep host-global state; \
       their sections run with jobs=1";
  let requested =
    match names with [] -> List.map fst default_sections | names -> names
  in
  let records = ref [] in
  List.iter
    (fun name ->
      match List.assoc_opt name sections with
      | Some f ->
          let rjobs =
            if List.mem name parallel_sections then effective_jobs () else 1
          in
          let t0 = now_s () in
          f ();
          let seconds = now_s () -. t0 in
          let seconds_jobs1 =
            if
              !compare_jobs1 && rjobs > 1
              && List.mem name parallel_sections
            then begin
              let saved = !jobs in
              let t1 = now_s () in
              Fun.protect
                ~finally:(fun () -> jobs := saved)
                (fun () ->
                  jobs := 1;
                  silenced f);
              Some (now_s () -. t1)
            end
            else None
          in
          records := { rname = name; seconds; rjobs; seconds_jobs1 } :: !records
      | None ->
          Printf.eprintf "unknown section %s (have: %s)\n" name
            (String.concat ", " (List.map fst sections));
          exit 1)
    requested;
  (match !host_json with
  | Some path -> write_host_json path (List.rev !records)
  | None -> ());
  print_newline ();
  print_endline "bench: all requested sections completed"
