open Kma

(* Unit tests for the checker proper: a warmed allocator passes clean,
   and each hand-planted corruption trips exactly the rule family that
   owns it.  All corruptions are host-side [Memory.set] pokes — the
   checker must catch them from the memory image alone. *)

let si = 4 (* 256-byte class: target 10, gbltarget 15 *)

let kmem () =
  let m =
    Sim.Machine.create
      (Sim.Config.make ~ncpus:4 ~memory_words:131072 ~cache_lines:0 ())
  in
  let k = Kmem.create m ~params:(Params.make ~vmblk_pages:16 ()) () in
  (m, k)

let on_cpu m f =
  let r = ref None in
  Sim.Machine.run m [| (fun _ -> r := Some (f ())) |];
  match !r with Some v -> v | None -> assert false

(* Allocate [n] blocks of class [si] and free [back] of them: populates
   the per-CPU cache, stocks gblfree via the refill hysteresis, and
   leaves split pages behind.  Returns the ctx and the live count. *)
let warmed ?(n = 25) ?(back = 12) () =
  let m, k = kmem () in
  let ctx : Ctx.t = k in
  on_cpu m (fun () ->
      let blocks = Array.init n (fun _ -> Kmem.alloc_class k ~si) in
      Array.iter (fun a -> assert (a <> 0)) blocks;
      for i = 0 to back - 1 do
        Percpu.free ctx ~si blocks.(i)
      done);
  (ctx, n - back)

let live_counts (ctx : Ctx.t) nlive =
  let a = Array.make ctx.Ctx.layout.Layout.nsizes 0 in
  a.(si) <- nlive;
  a

let rules vs = List.map (fun v -> v.Heapcheck.rule) vs

let check_has rule name vs =
  Alcotest.(check bool)
    (Printf.sprintf "%s trips %s" name (Heapcheck.rule_name rule))
    true
    (List.mem rule (rules vs))

let test_clean_heap () =
  let ctx, nlive = warmed () in
  let vs = Heapcheck.check ~live:(live_counts ctx nlive) ctx in
  Alcotest.(check int)
    (String.concat "; "
       (List.map (fun v -> v.Heapcheck.detail) vs))
    0 (List.length vs)

let test_gbl_count () =
  let ctx, _ = warmed () in
  let mem = Ctx.memory ctx in
  (match Global.lists_oracle ctx ~si with
  | (head, count) :: _ ->
      Sim.Memory.set mem (head + Freelist.count) (count + 1)
  | [] -> Alcotest.fail "warm-up left gblfree empty");
  check_has Heapcheck.Gbl_count "count-word skew" (Heapcheck.check ctx)

let test_percpu_count () =
  let ctx, _ = warmed () in
  let mem = Ctx.memory ctx in
  let pcc = Layout.pcc_addr ctx.Ctx.layout ~cpu:0 ~si in
  let c = Sim.Memory.get mem (pcc + Percpu.o_main_cnt) in
  Alcotest.(check bool) "warm-up left main nonempty" true (c > 0);
  Sim.Memory.set mem (pcc + Percpu.o_main_cnt) (c + 1);
  check_has Heapcheck.Percpu_count "main-count skew" (Heapcheck.check ctx)

let test_page_nfree () =
  let ctx, _ = warmed () in
  let mem = Ctx.memory ctx in
  (match Pagepool.bucket_pages_oracle ctx ~si with
  | (_, pd :: _) :: _ ->
      let n = Sim.Memory.get mem (pd + Vmblk.pd_nfree) in
      Sim.Memory.set mem (pd + Vmblk.pd_nfree) (n + 1)
  | _ -> Alcotest.fail "warm-up left no partially-free page");
  check_has Heapcheck.Page_nfree "pd_nfree skew" (Heapcheck.check ctx)

let test_minhint () =
  let ctx, _ = warmed () in
  (* Claim a tighter bound than the lowest occupied bucket allows. *)
  let lowest =
    match Pagepool.bucket_pages_oracle ctx ~si with
    | (nfree, _) :: _ -> nfree
    | [] -> Alcotest.fail "warm-up left no occupied bucket"
  in
  let ly = ctx.Ctx.layout in
  (* minhint is the word after the lock line at pagepool_addr. *)
  let addr = Layout.pagepool_addr ly ~si + ly.Layout.line_words in
  Alcotest.(check int) "minhint word located"
    (Pagepool.minhint_oracle ctx ~si)
    (Sim.Memory.get (Ctx.memory ctx) addr);
  Sim.Memory.set (Ctx.memory ctx) addr (lowest + 1);
  check_has Heapcheck.Minhint "minhint overclaim" (Heapcheck.check ctx)

let test_span_state () =
  let ctx, _ = warmed () in
  let mem = Ctx.memory ctx in
  (match Vmblk.free_spans_oracle ctx with
  | (head_pd, _) :: _ ->
      Sim.Memory.set mem (head_pd + Vmblk.pd_state) Vmblk.st_span_mid
  | [] -> Alcotest.fail "warm-up left no free span");
  check_has Heapcheck.Span_state "orphaned span head" (Heapcheck.check ctx)

let test_dup_block () =
  let ctx, _ = warmed () in
  let mem = Ctx.memory ctx in
  let pcc = Layout.pcc_addr ctx.Ctx.layout ~cpu:0 ~si in
  let h = Sim.Memory.get mem (pcc + Percpu.o_main_head) in
  let c = Sim.Memory.get mem (pcc + Percpu.o_main_cnt) in
  Alcotest.(check bool) "warm-up left main nonempty" true (h <> 0 && c > 0);
  (* Alias the whole main chain as this CPU's aux: every block is now
     on two freelists, with count words that agree with the chains. *)
  Sim.Memory.set mem (pcc + Percpu.o_aux_head) h;
  Sim.Memory.set mem (pcc + Percpu.o_aux_cnt) c;
  check_has Heapcheck.Dup_block "aliased chain" (Heapcheck.check ctx)

let test_conservation_exact () =
  let ctx, nlive = warmed () in
  (* Correct live counts: clean.  Claim one fewer outstanding block and
     the per-class equation must break. *)
  Alcotest.(check int) "exact equation holds" 0
    (List.length (Heapcheck.check ~live:(live_counts ctx nlive) ctx));
  check_has Heapcheck.Conservation "wrong live count"
    (Heapcheck.check ~live:(live_counts ctx (nlive - 1)) ctx)

(* --- lifecycle: the enable/on/note/report idiom --- *)

let with_disabled f = Fun.protect ~finally:Heapcheck.disable f

let test_abort_mode_raises () =
  with_disabled (fun () ->
      Heapcheck.enable ~abort:true ();
      Alcotest.check_raises "note raises in abort mode"
        (Heapcheck.Violation "gbl-count: planted")
        (fun () ->
          Heapcheck.note { Heapcheck.rule = Heapcheck.Gbl_count; detail = "planted" }))

let test_record_mode_accumulates () =
  with_disabled (fun () ->
      Heapcheck.enable ~abort:false ~mode:(Heapcheck.Sweep 64) ();
      Alcotest.(check bool) "on" true (Heapcheck.on ());
      Alcotest.(check bool) "mode readable" true
        (Heapcheck.mode () = Some (Heapcheck.Sweep 64));
      Heapcheck.note { Heapcheck.rule = Heapcheck.Gbl_count; detail = "a" };
      Heapcheck.note { Heapcheck.rule = Heapcheck.Span_state; detail = "b" };
      Alcotest.(check int) "two recorded" 2 (Heapcheck.violation_count ());
      let report = Heapcheck.report () in
      let contains s =
        let n = String.length s and m = String.length report in
        let rec go i = i + n <= m && (String.sub report i n = s || go (i + 1)) in
        go 0
      in
      Alcotest.(check bool) "report names the rules" true
        (contains "gbl-count" && contains "span-state"))

let test_checkpoint_counts () =
  with_disabled (fun () ->
      Heapcheck.enable ~abort:true ();
      let ctx, _ = warmed () in
      Heapcheck.checkpoint ctx;
      Heapcheck.checkpoint ctx;
      Alcotest.(check int) "two checkpoints" 2 (Heapcheck.check_count ());
      Alcotest.(check int) "no violations on a clean heap" 0
        (Heapcheck.violation_count ()));
  Alcotest.(check bool) "disable drops the state" false (Heapcheck.on ())

let test_sweep_zero_rejected () =
  Alcotest.check_raises "Sweep 0 rejected"
    (Invalid_argument "Heapcheck.enable: sweep period < 1")
    (fun () -> Heapcheck.enable ~mode:(Heapcheck.Sweep 0) ())

let suite =
  [
    Alcotest.test_case "warmed heap checks clean" `Quick test_clean_heap;
    Alcotest.test_case "gblfree count skew trips gbl-count" `Quick
      test_gbl_count;
    Alcotest.test_case "per-CPU count skew trips percpu-count" `Quick
      test_percpu_count;
    Alcotest.test_case "pd_nfree skew trips page-nfree" `Quick
      test_page_nfree;
    Alcotest.test_case "minhint overclaim trips minhint" `Quick test_minhint;
    Alcotest.test_case "orphaned span head trips span-state" `Quick
      test_span_state;
    Alcotest.test_case "aliased chain trips dup-block" `Quick test_dup_block;
    Alcotest.test_case "live counts make conservation exact" `Quick
      test_conservation_exact;
    Alcotest.test_case "abort mode raises on first violation" `Quick
      test_abort_mode_raises;
    Alcotest.test_case "record mode accumulates and reports" `Quick
      test_record_mode_accumulates;
    Alcotest.test_case "checkpoints counted, clean heap silent" `Quick
      test_checkpoint_counts;
    Alcotest.test_case "Sweep 0 rejected" `Quick test_sweep_zero_rejected;
  ]
