(* The differential fuzzer: determinism, the full config matrix at
   moderate depth, the ISSUE's acceptance run (10k ops with pressure
   and fault injection live), the corruption self-test (every planted
   corruption kind is caught), and trace minimization. *)

module Fuzz = Heapcheck.Fuzz

let no_failure name (o : Fuzz.outcome) =
  (match o.Fuzz.failure with
  | None -> ()
  | Some f ->
      Alcotest.failf "%s: check failed after op %d (%s): %s" name f.Fuzz.index
        (Format.asprintf "%a" Fuzz.pp_op f.Fuzz.op)
        (String.concat "; " f.Fuzz.problems));
  Alcotest.(check bool)
    (Printf.sprintf "%s did real work (%d allocs, %d checks)" name o.Fuzz.allocs
       o.Fuzz.checks)
    true
    (o.Fuzz.allocs > 0 && o.Fuzz.checks > 0)

(* One paranoid run per corner of the pressure x debug matrix. *)
let test_matrix () =
  List.iter
    (fun (pressure, debug, seed) ->
      let name =
        Printf.sprintf "pressure:%b debug:%b seed:%d" pressure debug seed
      in
      no_failure name
        (Fuzz.run (Fuzz.config ~ops:1500 ~pressure ~debug ~seed ())))
    [ (false, false, 1); (true, false, 2); (false, true, 3); (true, true, 4) ]

(* The acceptance run: 10k ops, pressure subsystem live, VM fault
   injection armed, multiple CPUs laid out (the trace runs on CPU 0 but
   the full per-CPU structure is walked by every check). *)
let test_acceptance_10k () =
  no_failure "10k pressure+faults"
    (Fuzz.run
       (Fuzz.config ~ops:10_000 ~pressure:true ~fault_rate:0.2 ~ncpus:2
          ~seed:11 ()))

(* Sweep mode covers the same ground with cheaper checking. *)
let test_sweep_mode () =
  let o =
    Fuzz.run
      (Fuzz.config ~ops:4000 ~check_every:64 ~pressure:true ~fault_rate:0.3
         ~seed:12 ())
  in
  no_failure "sweep 64" o;
  Alcotest.(check bool) "sweep checks are sparse" true
    (o.Fuzz.checks <= (4000 / 64) + 2)

let test_gen_deterministic () =
  let cfg = Fuzz.config ~ops:2000 ~pressure:true ~fault_rate:0.1 ~seed:7 () in
  Alcotest.(check bool) "same config, same trace" true
    (Fuzz.gen cfg = Fuzz.gen cfg);
  let a = Fuzz.run cfg and b = Fuzz.run cfg in
  Alcotest.(check bool) "same config, same outcome" true (a = b)

(* Self-test: each planted corruption kind must be caught by the very
   next check.  The warm-up prefix builds enough structure (split
   pages, stocked gblfree, live per-CPU chains) for every kind to have
   a target to smash. *)
let test_corrupt_kinds_caught () =
  let cfg = Fuzz.config ~ops:300 ~seed:5 () in
  let prefix = Fuzz.gen cfg in
  List.iter
    (fun kind ->
      let trace = prefix @ [ Fuzz.Corrupt kind ] in
      match (Fuzz.execute cfg trace).Fuzz.failure with
      | Some f ->
          Alcotest.(check bool)
            (Printf.sprintf "kind %d caught at the corrupt op" kind)
            true
            (f.Fuzz.index = List.length trace - 1
            && f.Fuzz.problems <> [])
      | None -> Alcotest.failf "corruption kind %d went undetected" kind)
    [ 0; 1; 2; 3 ]

let test_minimize_deterministic () =
  let cfg = Fuzz.config ~ops:800 ~corrupt:true ~seed:9 () in
  let trace = Fuzz.gen cfg in
  (match (Fuzz.execute cfg trace).Fuzz.failure with
  | None -> Alcotest.fail "corrupt trace should fail (pick another seed)"
  | Some _ -> ());
  let m1 = Fuzz.minimize cfg trace in
  let m2 = Fuzz.minimize cfg trace in
  Alcotest.(check bool) "minimize is deterministic" true (m1 = m2);
  Alcotest.(check bool)
    (Printf.sprintf "minimized %d -> %d ops" (List.length trace)
       (List.length m1))
    true
    (List.length m1 < List.length trace);
  match (Fuzz.execute cfg m1).Fuzz.failure with
  | Some _ -> ()
  | None -> Alcotest.fail "minimized trace no longer fails"

let test_minimize_passing_trace_unchanged () =
  let cfg = Fuzz.config ~ops:200 ~seed:13 () in
  let trace = Fuzz.gen cfg in
  Alcotest.(check bool) "passing trace returned unchanged" true
    (Fuzz.minimize cfg trace == trace || Fuzz.minimize cfg trace = trace)

(* Matrix sharding: run_matrix must equal the sequential List.map at
   any job count — outcomes and, when the lifecycle checker is armed,
   the absorbed report (the Check.shard/absorb harvest contract). *)
let test_run_matrix_sharding_deterministic () =
  let cfgs =
    [
      Fuzz.config ~ops:800 ~seed:31 ();
      Fuzz.config ~ops:800 ~seed:32 ~pressure:true ~fault_rate:0.2 ();
      Fuzz.config ~ops:800 ~seed:33 ~debug:true ~check_every:16 ();
      Fuzz.config ~ops:800 ~seed:34 ~pressure:true ~debug:true ();
    ]
  in
  let reference = List.map Fuzz.run cfgs in
  Alcotest.(check bool) "jobs=1 equals List.map run" true
    (Fuzz.run_matrix ~jobs:1 cfgs = reference);
  Alcotest.(check bool) "jobs=3 equals List.map run" true
    (Fuzz.run_matrix ~jobs:3 cfgs = reference);
  (* Under the armed checker (non-abort, with a self-corrupting cell in
     the matrix), real violations flow through the shard harvests; the
     absorbed report must match the sequential one byte for byte. *)
  let cfgs = cfgs @ [ Fuzz.config ~ops:400 ~seed:35 ~corrupt:true () ] in
  let with_checker jobs =
    Heapcheck.enable ~abort:false ();
    Fun.protect ~finally:Heapcheck.disable (fun () ->
        let os = Fuzz.run_matrix ~jobs cfgs in
        (os, Heapcheck.report (), Heapcheck.violation_count ()))
  in
  let o1, rep1, n1 = with_checker 1 in
  let o3, rep3, n3 = with_checker 3 in
  Alcotest.(check bool) "armed outcomes identical" true (o1 = o3);
  Alcotest.(check string) "armed report identical" rep1 rep3;
  Alcotest.(check int) "armed violation counts identical" n1 n3;
  Alcotest.(check bool) "the planted corruption was absorbed" true (n1 > 0)

let suite =
  [
    Alcotest.test_case "pressure x debug matrix passes" `Quick test_matrix;
    Alcotest.test_case "run_matrix sharding deterministic" `Quick
      test_run_matrix_sharding_deterministic;
    Alcotest.test_case "10k ops with pressure and faults" `Slow
      test_acceptance_10k;
    Alcotest.test_case "sweep mode passes with sparse checks" `Quick
      test_sweep_mode;
    Alcotest.test_case "generation and outcome deterministic" `Quick
      test_gen_deterministic;
    Alcotest.test_case "every corruption kind is caught" `Quick
      test_corrupt_kinds_caught;
    Alcotest.test_case "minimization deterministic and sound" `Quick
      test_minimize_deterministic;
    Alcotest.test_case "minimize leaves passing traces alone" `Quick
      test_minimize_passing_trace_unchanged;
  ]
