let () =
  Alcotest.run "heapcheck"
    [
      ("unit", Test_unit.suite);
      ("fuzz", Test_fuzz.suite);
      ("identical", Test_identical.suite);
    ]
