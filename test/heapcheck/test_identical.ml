(* The checker's zero-perturbation contract, at experiment scale (the
   [test/lockcheck] pattern): checking is host-side and uncharged, so
   simulated results must be bit-identical however often the heap is
   checked — and with the checker on or off entirely. *)

module Fuzz = Heapcheck.Fuzz

let with_checker_if enabled f =
  if not enabled then f ()
  else begin
    Heapcheck.enable ~abort:true ();
    Fun.protect ~finally:Heapcheck.disable f
  end

(* Same trace, checked after every op vs. essentially never: the
   simulated cycle count (and the whole outcome modulo check counts)
   must not move. *)
let test_check_cadence_uncharged () =
  let run every =
    Fuzz.run
      (Fuzz.config ~ops:2000 ~check_every:every ~pressure:true ~seed:17 ())
  in
  let paranoid = run 1 and sparse = run 1999 in
  Alcotest.(check int) "same simulated cycles" sparse.Fuzz.cycles
    paranoid.Fuzz.cycles;
  Alcotest.(check (pair int int))
    "same alloc/free history"
    (sparse.Fuzz.allocs, sparse.Fuzz.frees)
    (paranoid.Fuzz.allocs, paranoid.Fuzz.frees)

(* Enabling the lifecycle layer (note/report/flight-recorder hooks)
   must not move the cycle count either. *)
let test_enable_uncharged () =
  let cfg = Fuzz.config ~ops:1500 ~pressure:true ~seed:18 () in
  let bare = Fuzz.run cfg in
  let hooked = with_checker_if true (fun () -> Fuzz.run cfg) in
  Alcotest.(check int) "same simulated cycles with Heapcheck enabled"
    bare.Fuzz.cycles hooked.Fuzz.cycles

(* E6 (miss rates) and E8 (pressure sweep) carry [checkpoint] hooks at
   their quiescent points; both are deterministic, so equality of the
   result records is the strongest possible check.  E6 compares
   marshalled bytes rather than with [(=)]: zero-traffic classes yield
   NaN rates, and [nan <> nan] structurally. *)
let missrates_run ~check =
  with_checker_if check (fun () ->
      Experiments.Missrates.run ~ncpus:2 ~transactions_per_cpu:400 ())

let test_e6_bit_identical () =
  let bare = missrates_run ~check:false in
  let checked = missrates_run ~check:true in
  Alcotest.(check bool) "E6 results identical with heapcheck on" true
    (Marshal.to_string bare [] = Marshal.to_string checked [])

let pressure_run ~check =
  with_checker_if check (fun () ->
      Experiments.Pressure.run ~ncpus:2 ~rounds:6 ~batch:40
        ~rates:[ 0.0; 0.2 ] ~seed:42 ())

let test_e8_bit_identical () =
  let bare = pressure_run ~check:false in
  let checked = pressure_run ~check:true in
  Alcotest.(check bool) "E8 results identical with heapcheck on" true
    (bare = checked)

(* ... and the checkpoints actually ran (abort mode: a violation in the
   production allocator would have failed the runs above loudly). *)
let test_checkpoints_fired () =
  Heapcheck.enable ~abort:true ();
  Fun.protect ~finally:Heapcheck.disable (fun () ->
      ignore
        (Experiments.Pressure.run ~ncpus:2 ~rounds:3 ~batch:20 ~rates:[ 0.0 ]
           ~seed:42 ());
      Alcotest.(check bool) "checkpoints ran during E8" true
        (Heapcheck.check_count () > 0);
      Alcotest.(check int) "and found nothing" 0
        (Heapcheck.violation_count ()))

let suite =
  [
    Alcotest.test_case "check cadence does not move cycles" `Quick
      test_check_cadence_uncharged;
    Alcotest.test_case "enabling the checker does not move cycles" `Quick
      test_enable_uncharged;
    Alcotest.test_case "E6 simulated results bit-identical" `Quick
      test_e6_bit_identical;
    Alcotest.test_case "E8 simulated results bit-identical" `Quick
      test_e8_bit_identical;
    Alcotest.test_case "checkpoints actually fired during E8" `Quick
      test_checkpoints_fired;
  ]
