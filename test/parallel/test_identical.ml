(* The tentpole contract, proven at experiment scale: a parallel run of
   a sweep is bit-identical to the sequential run — same result
   records, same printed bytes, and (for checker-enabled runs) the same
   heapcheck report.  Every simulation cell is a deterministic closed
   system, so any divergence would be a pool bug (ordering, sharing,
   lost cells), not noise. *)

(* Run [f] with stdout captured to a temp file and return (result,
   captured bytes) — the printed tables are part of the contract. *)
let capture_stdout f =
  flush stdout;
  let path = Filename.temp_file "parallel_capture" ".txt" in
  let fd = Unix.openfile path [ Unix.O_WRONLY; Unix.O_TRUNC ] 0o600 in
  let saved = Unix.dup Unix.stdout in
  Unix.dup2 fd Unix.stdout;
  Unix.close fd;
  let restore () =
    flush stdout;
    Unix.dup2 saved Unix.stdout;
    Unix.close saved
  in
  match f () with
  | r ->
      restore ();
      let ic = open_in_bin path in
      let s = really_input_string ic (in_channel_length ic) in
      close_in ic;
      Sys.remove path;
      (r, s)
  | exception e ->
      restore ();
      Sys.remove path;
      raise e

(* Fig7: the PR's flagship sweep (16 independent machines here).
   Compare the point records structurally and the rendered figure
   byte-for-byte. *)
let test_fig7_identical () =
  let sweep jobs =
    capture_stdout (fun () ->
        let points =
          Experiments.Fig7.run ~jobs ~cpus:[ 1; 2; 4; 8 ] ~iters:120 ()
        in
        Experiments.Fig7.print_linear points;
        Experiments.Fig7.print_semilog points;
        points)
  in
  let seq_points, seq_out = sweep 1 in
  let par_points, par_out = sweep 3 in
  Alcotest.(check bool)
    "fig7 point records identical (jobs=1 vs jobs=3)" true
    (seq_points = par_points);
  Alcotest.(check string)
    "fig7 printed output identical (jobs=1 vs jobs=3)" seq_out par_out

(* Missrates drives a single machine, so its sweep cannot shard — but
   the simulator itself must be domain-agnostic: the same run in a
   worker domain must reproduce the main-domain result bit-for-bit
   (this is what makes every other sweep shardable at all).  Marshal
   compare: zero-traffic classes yield NaN rates and [nan <> nan]. *)
let test_missrates_domain_agnostic () =
  let run () = Experiments.Missrates.run ~ncpus:2 ~transactions_per_cpu:200 () in
  let here = run () in
  let there = Domain.join (Domain.spawn run) in
  Alcotest.(check string)
    "missrates result identical on a worker domain"
    (Marshal.to_string here [])
    (Marshal.to_string there [])

(* Pressure under the heap checker: rows AND the merged checker report
   (checkpoint counts, violation order) must match the sequential run —
   the shard/absorb harvest contract. *)
let test_pressure_heapcheck_identical () =
  let sweep jobs =
    Heapcheck.enable ~abort:true ();
    Fun.protect ~finally:Heapcheck.disable (fun () ->
        let r =
          Experiments.Pressure.run ~jobs ~ncpus:2 ~rounds:6 ~batch:40
            ~rates:[ 0.0; 0.2 ] ()
        in
        (r, Heapcheck.report (), Heapcheck.check_count ()))
  in
  let seq_r, seq_rep, seq_checks = sweep 1 in
  let par_r, par_rep, par_checks = sweep 4 in
  Alcotest.(check bool)
    "pressure results identical (jobs=1 vs jobs=4)" true (seq_r = par_r);
  Alcotest.(check string)
    "heapcheck report identical (jobs=1 vs jobs=4)" seq_rep par_rep;
  Alcotest.(check int)
    "checkpoints were actually taken" seq_checks par_checks;
  Alcotest.(check bool) "some checkpoints ran" true (seq_checks > 0)

let suite =
  [
    Alcotest.test_case "fig7: parallel run bit-identical" `Quick
      test_fig7_identical;
    Alcotest.test_case "missrates: domain-agnostic simulator" `Quick
      test_missrates_domain_agnostic;
    Alcotest.test_case "pressure+heapcheck: sharded report identical" `Quick
      test_pressure_heapcheck_identical;
  ]
