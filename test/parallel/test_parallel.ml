let () =
  Alcotest.run "parallel"
    [ ("pool", Test_pool.suite); ("identical", Test_identical.suite) ]
