(* Unit tests for the Parallel.map pool: deterministic result ordering,
   deterministic exception propagation, and the jobs:1 sequential
   degeneration the bit-identicality proofs of the paper-reproduction
   sweeps rest on. *)

exception Boom of int

let test_ordering () =
  (* Uneven per-cell work so a dynamic scheduler would finish cells out
     of order; the results must come back in input order regardless. *)
  let xs = List.init 50 (fun i -> i) in
  let f i =
    let spin = if i mod 7 = 0 then 20_000 else 10 in
    let acc = ref 0 in
    for k = 1 to spin do
      acc := !acc + ((i * k) mod 13)
    done;
    ignore (Sys.opaque_identity !acc);
    i * i
  in
  let expect = List.map f xs in
  List.iter
    (fun jobs ->
      Alcotest.(check (list int))
        (Printf.sprintf "jobs=%d preserves input order" jobs)
        expect
        (Parallel.map ~jobs f xs))
    [ 1; 2; 3; 8; 64 ]

let test_exception_smallest_index () =
  (* Several cells raise; whichever domain gets there first, the
     exception of the smallest input index must win. *)
  let xs = [ 0; 1; 2; 3; 4; 5; 6; 7 ] in
  let f i = if i mod 3 = 1 then raise (Boom i) else i in
  List.iter
    (fun jobs ->
      match Parallel.map ~jobs f xs with
      | _ -> Alcotest.failf "jobs=%d: expected Boom" jobs
      | exception Boom i ->
          Alcotest.(check int)
            (Printf.sprintf "jobs=%d raises the smallest failing index" jobs)
            1 i)
    [ 1; 2; 4 ]

let test_jobs1_sequential () =
  (* jobs:1 must degenerate to List.map on the calling domain: same
     evaluation order, no helper domains. *)
  let self = Domain.self () in
  let order = ref [] in
  let out =
    Parallel.map ~jobs:1
      (fun i ->
        order := i :: !order;
        Alcotest.(check bool)
          "jobs=1 runs on the calling domain" true
          (Domain.self () = self);
        i + 100)
      [ 3; 1; 2 ]
  in
  Alcotest.(check (list int)) "results" [ 103; 101; 102 ] out;
  Alcotest.(check (list int))
    "left-to-right evaluation" [ 3; 1; 2 ] (List.rev !order)

let test_invalid_jobs () =
  List.iter
    (fun jobs ->
      Alcotest.check_raises
        (Printf.sprintf "jobs=%d rejected" jobs)
        (Invalid_argument (Printf.sprintf "Parallel.map: jobs %d < 1" jobs))
        (fun () -> ignore (Parallel.map ~jobs (fun x -> x) [ 1 ])))
    [ 0; -1 ]

let test_edges () =
  Alcotest.(check (list int))
    "empty input" []
    (Parallel.map ~jobs:4 (fun x -> x) []);
  Alcotest.(check (list int))
    "singleton" [ 10 ]
    (Parallel.map ~jobs:4 (fun x -> x * 10) [ 1 ]);
  Alcotest.(check (list int))
    "more jobs than items" [ 2; 4; 6 ]
    (Parallel.map ~jobs:64 (fun x -> 2 * x) [ 1; 2; 3 ])

let test_default_jobs () =
  Alcotest.(check bool) "default_jobs >= 1" true (Parallel.default_jobs () >= 1)

let suite =
  [
    Alcotest.test_case "input-order results at any job count" `Quick
      test_ordering;
    Alcotest.test_case "smallest-index exception wins" `Quick
      test_exception_smallest_index;
    Alcotest.test_case "jobs=1 is sequential List.map" `Quick
      test_jobs1_sequential;
    Alcotest.test_case "jobs < 1 rejected" `Quick test_invalid_jobs;
    Alcotest.test_case "edge cases" `Quick test_edges;
    Alcotest.test_case "default_jobs" `Quick test_default_jobs;
  ]
