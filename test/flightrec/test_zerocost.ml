(* The flight recorder's core contract: recording is host-side only, so
   an enabled recorder changes NO simulated observable — cycle counts,
   retired instructions and allocator statistics are bit-identical with
   the recorder on or off.  We run the same deterministic DLM/OLTP
   workload twice on fresh machines and compare. *)

let dlm_run ~record =
  let ncpus = 2 in
  let fr =
    if record then begin
      let fr = Flightrec.Recorder.create ~ncpus () in
      Flightrec.Recorder.install fr;
      Some fr
    end
    else None
  in
  Fun.protect
    ~finally:(fun () -> if record then Flightrec.Recorder.uninstall ())
    (fun () ->
      let cfg = Workload.Rig.paper_config ~ncpus () in
      let m = Sim.Machine.create cfg in
      let kmem = Kma.Kmem.create m () in
      let r = Dlm.Oltp.run ~kmem ~ncpus ~transactions_per_cpu:120 () in
      let per_cpu =
        List.init ncpus (fun cpu ->
            (Sim.Machine.cpu_time m ~cpu, Sim.Machine.retired m ~cpu))
      in
      let stats = Format.asprintf "%a" Kma.Kstats.pp (Kma.Kmem.stats kmem) in
      ((r.Dlm.Oltp.transactions, r.Dlm.Oltp.grants, r.Dlm.Oltp.cycles,
        per_cpu, stats),
       fr))

let test_cycles_bit_identical () =
  let bare, _ = dlm_run ~record:false in
  let recorded, fr = dlm_run ~record:true in
  Alcotest.(check bool)
    "cycle counts, retired instructions and stats identical" true
    (bare = recorded);
  (* ... and the recorder did actually see the run. *)
  let fr = Option.get fr in
  Alcotest.(check bool) "events were recorded" true
    (Flightrec.Recorder.total fr > 1000)

(* The hardest case for the contract: injected grant denials with the
   pressure subsystem enabled.  Emits then fire in the middle of host
   code that reads and writes state shared across simulated CPUs
   (adaptation bounds, the fault PRNG), where even a free simulator
   operation — an extra yield point — reorders the interleaving of
   same-instant host code and changes the outcome.  This is exactly the
   divergence [Sim.Machine.running] exists to prevent. *)
let pressured_run ~record =
  let ncpus = 4 in
  if record then
    Flightrec.Recorder.install (Flightrec.Recorder.create ~ncpus ());
  Fun.protect
    ~finally:(fun () -> if record then Flightrec.Recorder.uninstall ())
    (fun () ->
      let cfg = Workload.Rig.paper_config ~ncpus () in
      let m = Sim.Machine.create cfg in
      let params =
        Kma.Params.auto ~memory_words:cfg.Sim.Config.memory_words
      in
      let kmem = Kma.Kmem.create m ~params () in
      Kma.Pressure.enable kmem;
      let vmsys = Kma.Kmem.vmsys kmem in
      Sim.Vmsys.set_fault_rate vmsys ~seed:42 0.05;
      let sizes = [| 64; 256; 1024 |] in
      let batch = 120 in
      let slots = Array.init ncpus (fun _ -> Array.make batch 0) in
      Sim.Machine.run_symmetric m ~ncpus (fun cpu ->
          let mine = slots.(cpu) in
          for _ = 1 to 10 do
            for i = 0 to batch - 1 do
              mine.(i) <-
                (match Kma.Kmem.try_alloc kmem ~bytes:sizes.(i mod 3) with
                | Some a -> a
                | None -> 0)
            done;
            for i = batch - 1 downto 0 do
              if mine.(i) <> 0 then
                Kma.Kmem.free kmem ~addr:mine.(i) ~bytes:sizes.(i mod 3)
            done
          done);
      ( Sim.Machine.elapsed m,
        Sim.Vmsys.grant_count vmsys,
        Sim.Vmsys.denial_count vmsys,
        Sim.Vmsys.reclaim_count vmsys,
        Format.asprintf "%a" Kma.Kstats.pp (Kma.Kmem.stats kmem) ))

let test_pressure_faults_bit_identical () =
  Alcotest.(check bool)
    "pressure + fault injection identical with recorder on" true
    (pressured_run ~record:false = pressured_run ~record:true)

let test_report_renders_on_real_run () =
  let _, fr = dlm_run ~record:true in
  let s = Flightrec.Report.to_string (Option.get fr) in
  let contains sub =
    let n = String.length s and m = String.length sub in
    let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
    go 0
  in
  List.iter
    (fun section ->
      Alcotest.(check bool) section true (contains section))
    [
      "-- lock contention --"; "gbl["; "vmblk";
      "-- per-layer miss timeline"; "-- page lifetimes --";
      "-- vm system --";
    ]

let suite =
  [
    Alcotest.test_case "recorder charges zero simulated cycles" `Quick
      test_cycles_bit_identical;
    Alcotest.test_case "bit-identical under pressure + fault injection"
      `Quick test_pressure_faults_bit_identical;
    Alcotest.test_case "report renders on a real DLM run" `Quick
      test_report_renders_on_real_run;
  ]
