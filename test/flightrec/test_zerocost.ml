(* The flight recorder's core contract: recording is host-side only, so
   an enabled recorder changes NO simulated observable — cycle counts,
   retired instructions and allocator statistics are bit-identical with
   the recorder on or off.  We run the same deterministic DLM/OLTP
   workload twice on fresh machines and compare. *)

let dlm_run ~record =
  let ncpus = 2 in
  let fr =
    if record then begin
      let fr = Flightrec.Recorder.create ~ncpus () in
      Flightrec.Recorder.install fr;
      Some fr
    end
    else None
  in
  Fun.protect
    ~finally:(fun () -> if record then Flightrec.Recorder.uninstall ())
    (fun () ->
      let cfg = Workload.Rig.paper_config ~ncpus () in
      let m = Sim.Machine.create cfg in
      let kmem = Kma.Kmem.create m () in
      let r = Dlm.Oltp.run ~kmem ~ncpus ~transactions_per_cpu:120 () in
      let per_cpu =
        List.init ncpus (fun cpu ->
            (Sim.Machine.cpu_time m ~cpu, Sim.Machine.retired m ~cpu))
      in
      let stats = Format.asprintf "%a" Kma.Kstats.pp (Kma.Kmem.stats kmem) in
      ((r.Dlm.Oltp.transactions, r.Dlm.Oltp.grants, r.Dlm.Oltp.cycles,
        per_cpu, stats),
       fr))

let test_cycles_bit_identical () =
  let bare, _ = dlm_run ~record:false in
  let recorded, fr = dlm_run ~record:true in
  Alcotest.(check bool)
    "cycle counts, retired instructions and stats identical" true
    (bare = recorded);
  (* ... and the recorder did actually see the run. *)
  let fr = Option.get fr in
  Alcotest.(check bool) "events were recorded" true
    (Flightrec.Recorder.total fr > 1000)

let test_report_renders_on_real_run () =
  let _, fr = dlm_run ~record:true in
  let s = Flightrec.Report.to_string (Option.get fr) in
  let contains sub =
    let n = String.length s and m = String.length sub in
    let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
    go 0
  in
  List.iter
    (fun section ->
      Alcotest.(check bool) section true (contains section))
    [
      "-- lock contention --"; "gbl["; "vmblk";
      "-- per-layer miss timeline"; "-- page lifetimes --";
      "-- vm system --";
    ]

let suite =
  [
    Alcotest.test_case "recorder charges zero simulated cycles" `Quick
      test_cycles_bit_identical;
    Alcotest.test_case "report renders on a real DLM run" `Quick
      test_report_renders_on_real_run;
  ]
