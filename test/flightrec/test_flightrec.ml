let () =
  Alcotest.run "flightrec"
    [
      ("ring", Test_ring.suite);
      ("recorder", Test_recorder.suite);
      ("report", Test_report.suite);
      ("zerocost", Test_zerocost.suite);
      ("faults", Test_faults.suite);
    ]
