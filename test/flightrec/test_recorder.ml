open Flightrec

(* Every test installs its own recorder; uninstall on the way out so
   suites stay independent. *)
let with_recorder ?capacity ~ncpus f =
  let r = Recorder.create ?capacity ~ncpus () in
  Recorder.install r;
  Fun.protect ~finally:(fun () -> Recorder.uninstall ()) (fun () -> f r)

let ev ~cpu ~time kind = Recorder.emit ~cpu ~time kind

let count = List.length

let test_on_flag () =
  Alcotest.(check bool) "off before install" false (Recorder.on ());
  with_recorder ~ncpus:1 (fun r ->
      Alcotest.(check bool) "on after install" true (Recorder.on ());
      Recorder.set_enabled r false;
      Alcotest.(check bool) "paused" false (Recorder.on ());
      ev ~cpu:0 ~time:1 Event.Vm_grant;
      Alcotest.(check int) "paused emit dropped" 0 (Recorder.total r);
      Recorder.set_enabled r true;
      ev ~cpu:0 ~time:2 Event.Vm_grant;
      Alcotest.(check int) "recording again" 1 (Recorder.total r));
  Alcotest.(check bool) "off after uninstall" false (Recorder.on ())

let test_percpu_isolation () =
  with_recorder ~ncpus:3 (fun r ->
      ev ~cpu:0 ~time:10 (Event.Alloc { si = 1; layer = Event.Percpu });
      ev ~cpu:1 ~time:11 (Event.Alloc { si = 2; layer = Event.Global });
      ev ~cpu:1 ~time:12 (Event.Free { si = 2; layer = Event.Percpu });
      ev ~cpu:2 ~time:13 Event.Vm_grant;
      Alcotest.(check int) "cpu0 sees its own" 1
        (count (Recorder.events ~cpu:0 r));
      Alcotest.(check int) "cpu1 sees its own" 2
        (count (Recorder.events ~cpu:1 r));
      Alcotest.(check int) "cpu2 sees its own" 1
        (count (Recorder.events ~cpu:2 r));
      Alcotest.(check int) "merged view has all" 4
        (count (Recorder.events r));
      (* Wrap cpu0's ring only: other CPUs lose nothing. *)
      let r2 = Recorder.create ~capacity:2 ~ncpus:2 () in
      Recorder.install r2;
      for i = 1 to 5 do
        Recorder.emit ~cpu:0 ~time:i Event.Vm_grant
      done;
      Recorder.emit ~cpu:1 ~time:99 Event.Vm_reclaim;
      Alcotest.(check int) "cpu0 dropped" 3 (Recorder.drops r2 ~cpu:0);
      Alcotest.(check int) "cpu1 intact" 0 (Recorder.drops r2 ~cpu:1);
      Alcotest.(check int) "cpu1 retained" 1
        (count (Recorder.events ~cpu:1 r2)))

let test_time_window () =
  with_recorder ~ncpus:2 (fun r ->
      List.iter
        (fun (cpu, time) -> ev ~cpu ~time Event.Vm_grant)
        [ (0, 5); (0, 10); (0, 20); (1, 7); (1, 15) ];
      Alcotest.(check int) "inclusive window" 3
        (count (Recorder.events ~t_min:7 ~t_max:15 r));
      Alcotest.(check int) "open below" 4
        (count (Recorder.events ~t_max:15 r));
      Alcotest.(check int) "open above" 3
        (count (Recorder.events ~t_min:10 r));
      Alcotest.(check int) "window and cpu compose" 1
        (count (Recorder.events ~cpu:1 ~t_min:7 ~t_max:14 r));
      let times =
        List.map (fun e -> e.Event.time) (Recorder.events r)
      in
      Alcotest.(check (list int))
        "merged in time order" [ 5; 7; 10; 15; 20 ] times)

let test_filters () =
  with_recorder ~ncpus:1 (fun r ->
      ev ~cpu:0 ~time:1 (Event.Alloc { si = 3; layer = Event.Percpu });
      ev ~cpu:0 ~time:2 (Event.Alloc { si = 4; layer = Event.Global });
      ev ~cpu:0 ~time:3 (Event.Gbl_get { si = 3; miss = true });
      ev ~cpu:0 ~time:4 (Event.Lock_acquire { lock = 77; spins = 2 });
      Alcotest.(check int) "si filter" 2 (count (Recorder.events ~si:3 r));
      Alcotest.(check int) "kind filter" 1
        (count
           (Recorder.events
              ~kind:(fun k ->
                match k with Event.Lock_acquire _ -> true | _ -> false)
              r)))

let test_oob () =
  with_recorder ~ncpus:2 (fun r ->
      ev ~cpu:5 ~time:1 Event.Vm_grant;
      ev ~cpu:(-1) ~time:1 Event.Vm_grant;
      Alcotest.(check int) "oob counted" 2 (Recorder.oob r);
      Alcotest.(check int) "nothing stored" 0 (Recorder.recorded r))

let test_lock_names () =
  with_recorder ~ncpus:1 (fun r ->
      Recorder.note_lock ~addr:123 "gbl[64B]";
      Alcotest.(check string) "named" "gbl[64B]" (Recorder.lock_name r 123);
      Alcotest.(check string) "fallback" "lock@9" (Recorder.lock_name r 9));
  (* No recorder installed: note_lock is a no-op, not an error. *)
  Recorder.note_lock ~addr:1 "ignored"

let suite =
  [
    Alcotest.test_case "on flag tracks install/enable" `Quick test_on_flag;
    Alcotest.test_case "per-CPU isolation" `Quick test_percpu_isolation;
    Alcotest.test_case "time-window filtering" `Quick test_time_window;
    Alcotest.test_case "si and kind filters" `Quick test_filters;
    Alcotest.test_case "out-of-range CPUs counted" `Quick test_oob;
    Alcotest.test_case "lock-name registry" `Quick test_lock_names;
  ]
