(* VM-system fault injection: Kmem degrades to [try_alloc = None] while
   grants are denied, recovers when the fault clears, and the denials
   surface as flight-recorder events. *)

let on_cpu m f =
  let r = ref None in
  Sim.Machine.run m [| (fun _ -> r := Some (f ())) |];
  Option.get !r

let fresh_kmem () =
  let m = Sim.Machine.create (Sim.Config.make ~ncpus:2 ~memory_words:131072 ()) in
  let kmem = Kma.Kmem.create m ~params:(Kma.Params.make ~vmblk_pages:16 ()) () in
  (m, kmem)

let test_degrade_and_recover () =
  let m, kmem = fresh_kmem () in
  let vm = Kma.Kmem.vmsys kmem in
  (* Total denial: a fresh allocator has no cached blocks, so both the
     small path (needs a page split) and the large path (needs a span
     backed) must fail... *)
  Sim.Vmsys.set_fault_rate vm ~seed:7 1.0;
  let small, large =
    on_cpu m (fun () ->
        ( Kma.Kmem.try_alloc kmem ~bytes:64,
          Kma.Kmem.try_alloc kmem ~bytes:32768 ))
  in
  Alcotest.(check bool) "small alloc degrades to None" true (small = None);
  Alcotest.(check bool) "large alloc degrades to None" true (large = None);
  Alcotest.(check bool) "denials counted" true
    (Sim.Vmsys.denial_count vm > 0);
  Alcotest.(check int) "all denials injected"
    (Sim.Vmsys.denial_count vm)
    (Sim.Vmsys.injected_denial_count vm);
  Alcotest.(check int) "no pages leaked by failed backing" 0
    (Sim.Vmsys.granted vm);
  (* ...and the same allocator recovers the moment the fault clears. *)
  Sim.Vmsys.set_fault_rate vm 0.0;
  let small2, large2 =
    on_cpu m (fun () ->
        ( Kma.Kmem.try_alloc kmem ~bytes:64,
          Kma.Kmem.try_alloc kmem ~bytes:32768 ))
  in
  Alcotest.(check bool) "small alloc recovers" true (small2 <> None);
  Alcotest.(check bool) "large alloc recovers" true (large2 <> None)

let test_partial_fault_rate () =
  let m, kmem = fresh_kmem () in
  let vm = Kma.Kmem.vmsys kmem in
  Sim.Vmsys.set_fault_rate vm ~seed:3 0.5;
  (* Under a 50% grant-denial rate some allocations still succeed (the
     per-CPU cache amortises page grabs) and the machine makes
     progress. *)
  let got =
    on_cpu m (fun () ->
        let got = ref 0 in
        for _ = 1 to 200 do
          match Kma.Kmem.try_alloc kmem ~bytes:64 with
          | Some a ->
              incr got;
              Kma.Kmem.free kmem ~addr:a ~bytes:64
          | None -> ()
        done;
        !got)
  in
  Alcotest.(check bool) "some allocations survive" true (got > 0);
  (* The draw sequence is deterministic: the same seed and rate deny
     the same grants. *)
  let rerun () =
    let m, kmem = fresh_kmem () in
    let vm = Kma.Kmem.vmsys kmem in
    Sim.Vmsys.set_fault_rate vm ~seed:3 0.5;
    let r =
      on_cpu m (fun () ->
          let got = ref 0 in
          for _ = 1 to 200 do
            match Kma.Kmem.try_alloc kmem ~bytes:64 with
            | Some a ->
                incr got;
                Kma.Kmem.free kmem ~addr:a ~bytes:64
            | None -> ()
          done;
          !got)
    in
    (r, Sim.Vmsys.denial_count vm)
  in
  let a = rerun () and b = rerun () in
  Alcotest.(check bool) "deterministic" true (a = b)

let test_denials_surface_as_events () =
  let m, kmem = fresh_kmem () in
  let vm = Kma.Kmem.vmsys kmem in
  let fr = Flightrec.Recorder.create ~ncpus:2 () in
  Flightrec.Recorder.install fr;
  Fun.protect
    ~finally:(fun () -> Flightrec.Recorder.uninstall ())
    (fun () ->
      Sim.Vmsys.set_fault_rate vm ~seed:7 1.0;
      ignore (on_cpu m (fun () -> Kma.Kmem.try_alloc kmem ~bytes:64));
      let denials =
        Flightrec.Recorder.events fr
          ~kind:(fun k ->
            match k with
            | Flightrec.Event.Vm_denial { injected = true } -> true
            | _ -> false)
      in
      Alcotest.(check bool) "injected denials recorded" true
        (List.length denials > 0);
      Alcotest.(check int) "event count matches the counter"
        (Sim.Vmsys.injected_denial_count vm)
        (List.length denials);
      (* The allocation attempt itself is also visible as a failure. *)
      let fails =
        Flightrec.Recorder.events fr
          ~kind:(fun k ->
            match k with Flightrec.Event.Alloc_fail _ -> true | _ -> false)
      in
      Alcotest.(check int) "alloc failure recorded" 1 (List.length fails))

let test_bad_rate_rejected () =
  let vm = Sim.Vmsys.create ~total_pages:1 ~grant_cost:0 ~reclaim_cost:0 in
  Alcotest.check_raises "rate > 1"
    (Invalid_argument "Sim.Vmsys.set_fault_rate: rate outside [0,1]")
    (fun () -> Sim.Vmsys.set_fault_rate vm 1.5)

let suite =
  [
    Alcotest.test_case "degrade to None and recover" `Quick
      test_degrade_and_recover;
    Alcotest.test_case "partial fault rate, deterministic" `Quick
      test_partial_fault_rate;
    Alcotest.test_case "denials surface as events" `Quick
      test_denials_surface_as_events;
    Alcotest.test_case "bad rate rejected" `Quick test_bad_rate_rejected;
  ]
