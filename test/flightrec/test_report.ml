open Flightrec

(* A small hand-built flight: two CPUs contending on one lock, a
   global-layer miss, one page grabbed and returned, one VM denial of
   each flavour.  The report over it is deterministic, so we pin the
   whole rendering (golden test). *)
let build () =
  let r = Recorder.create ~ncpus:2 () in
  Recorder.install r;
  Recorder.note_lock ~addr:100 "gbl[32B]";
  let e cpu time kind = Recorder.emit ~cpu ~time kind in
  e 0 10 (Event.Lock_acquire { lock = 100; spins = 0 });
  e 0 20 (Event.Lock_release { lock = 100 });
  e 1 15 (Event.Lock_acquire { lock = 100; spins = 3 });
  e 1 40 (Event.Lock_release { lock = 100 });
  e 0 25 (Event.Alloc { si = 0; layer = Event.Percpu });
  e 0 30 (Event.Alloc { si = 0; layer = Event.Global });
  e 0 30 (Event.Gbl_get { si = 0; miss = true });
  e 0 34 (Event.Vmblk_carve { npages = 1; page = 500 });
  e 0 35 (Event.Page_grab { si = 0; page = 500 });
  e 1 35 Event.Vm_grant;
  e 1 45 (Event.Vm_denial { injected = false });
  e 1 55 (Event.Vm_denial { injected = true });
  e 0 85 (Event.Page_return { si = 0; page = 500 });
  e 1 85 Event.Vm_reclaim;
  e 0 86 (Event.Vmblk_coalesce { npages = 1; page = 500 });
  Recorder.uninstall ();
  r

let golden =
  String.concat "\n"
    [
      "=== flight recorder report ===";
      "events: retained 15 of 15 emitted (oob 0)";
      "ring drops: cpu0=0 cpu1=0";
      "-- lock contention --";
      "lock      acquires  contended  cont%  spins  max-spin  avg-hold  max-hold";
      "--------  --------  ---------  -----  -----  --------  --------  --------";
      "gbl[32B]  2         1          50.0%  3      3         17        25      ";
      "-- per-layer miss timeline (bucket = 20 cycles) --";
      "t   allocs  pcpu-miss  gbl-miss  page-grab  vm-denial";
      "--  ------  ---------  --------  ---------  ---------";
      "10  1       0          0         0          0        ";
      "30  1       1          1         1          1        ";
      "50  0       0          0         0          1        ";
      "70  0       0          0         0          0        ";
      "-- page lifetimes --";
      "pages grabbed 1, returned 1, still split 0";
      "lifetime cycles: avg 50  min 50  max 50";
      "-- vm system --";
      "grants 1  reclaims 1  denials 2 (injected 1)";
      "-- vmblk spans --";
      "carves 1 (1 pages)  coalesces 1 (1 pages)";
      "";
    ]

let test_golden () =
  let r = build () in
  Alcotest.(check string) "report" golden (Report.to_string ~buckets:4 r)

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

let test_empty_recorder () =
  let r = Recorder.create ~ncpus:1 () in
  let s = Report.to_string r in
  Alcotest.(check bool) "says so" true (contains s "no events recorded");
  Alcotest.(check bool) "still shows counters" true (contains s "-- vm system --")

let suite =
  [
    Alcotest.test_case "golden rendering" `Quick test_golden;
    Alcotest.test_case "empty recorder renders" `Quick test_empty_recorder;
  ]
