open Flightrec

let test_fill_without_wrap () =
  let r = Ring.create ~capacity:8 ~dummy:0 in
  for i = 1 to 5 do
    Ring.push r i
  done;
  Alcotest.(check int) "length" 5 (Ring.length r);
  Alcotest.(check int) "total" 5 (Ring.total r);
  Alcotest.(check int) "no drops" 0 (Ring.dropped r);
  Alcotest.(check (list int)) "in order" [ 1; 2; 3; 4; 5 ] (Ring.to_list r)

let test_wraparound_drops_oldest () =
  let r = Ring.create ~capacity:4 ~dummy:0 in
  for i = 1 to 10 do
    Ring.push r i
  done;
  Alcotest.(check int) "length capped" 4 (Ring.length r);
  Alcotest.(check int) "total counts everything" 10 (Ring.total r);
  Alcotest.(check int) "dropped = total - capacity" 6 (Ring.dropped r);
  Alcotest.(check (list int))
    "newest window, oldest first" [ 7; 8; 9; 10 ] (Ring.to_list r)

let test_clear () =
  let r = Ring.create ~capacity:3 ~dummy:0 in
  for i = 1 to 7 do
    Ring.push r i
  done;
  Ring.clear r;
  Alcotest.(check int) "empty" 0 (Ring.length r);
  Alcotest.(check int) "drops zeroed" 0 (Ring.dropped r);
  Ring.push r 42;
  Alcotest.(check (list int)) "usable after clear" [ 42 ] (Ring.to_list r)

let test_capacity_one () =
  let r = Ring.create ~capacity:1 ~dummy:0 in
  Ring.push r 1;
  Ring.push r 2;
  Alcotest.(check (list int)) "keeps only newest" [ 2 ] (Ring.to_list r);
  Alcotest.(check int) "one drop" 1 (Ring.dropped r)

let test_bad_capacity () =
  Alcotest.check_raises "capacity 0"
    (Invalid_argument "Flightrec.Ring.create: capacity < 1") (fun () ->
      ignore (Ring.create ~capacity:0 ~dummy:0))

let suite =
  [
    Alcotest.test_case "fill without wrap" `Quick test_fill_without_wrap;
    Alcotest.test_case "wraparound drops oldest" `Quick
      test_wraparound_drops_oldest;
    Alcotest.test_case "clear" `Quick test_clear;
    Alcotest.test_case "capacity one" `Quick test_capacity_one;
    Alcotest.test_case "bad capacity rejected" `Quick test_bad_capacity;
  ]
