let () =
  Alcotest.run "experiments"
    [
      ("workloads", Test_workloads.suite);
      ("figures", Test_figures.suite);
      ("trace", Test_trace.suite);
      ("plot", Test_plot.suite);
      ("equivalence", Test_equivalence.suite);
      ("geomsweep", Test_geomsweep.suite);
      ("numa-exp", Test_numa_exp.suite);
    ]
