(* E14 (NUMA scaling) at smoke scale: the sweep must be bit-identical
   at any --jobs fan-out, and the per-node global layer must degenerate
   to exactly the flat allocator on a 1-node machine (the tentpole's
   bit-identicality contract, seen from the allocator side). *)

let small ~jobs =
  Experiments.Numa.run ~jobs ~cpus:[ 8 ] ~nodes:[ 1; 2 ] ~iters:4 ~depth:24 ()

let test_jobs_determinism () =
  let a = small ~jobs:1 in
  let b = small ~jobs:3 in
  Alcotest.(check bool) "rows identical across --jobs" true (a = b)

let test_flat_identity () =
  let rows =
    Experiments.Numa.run ~cpus:[ 8 ] ~nodes:[ 1 ] ~iters:4 ~depth:24 ()
  in
  let cycles which =
    (List.find (fun r -> r.Experiments.Numa.which = which) rows)
      .Experiments.Numa.cycles_per_pair
  in
  Alcotest.(check (float 0.))
    "numakma = newkma on a flat machine"
    (cycles Baseline.Allocator.Newkma)
    (cycles Baseline.Allocator.Numakma)

let test_numa_splits_traffic () =
  (* On a real NUMA machine the per-node layer must beat the flat one
     and pay a lower remote share — the E14 headline at smoke scale. *)
  let rows =
    Experiments.Numa.run ~cpus:[ 16 ] ~nodes:[ 4 ] ~iters:4 ~depth:24 ()
  in
  let row which =
    List.find (fun r -> r.Experiments.Numa.which = which) rows
  in
  let flat = row Baseline.Allocator.Newkma in
  let pernode = row Baseline.Allocator.Numakma in
  Alcotest.(check bool) "per-node gblfree is faster" true
    (pernode.Experiments.Numa.cycles_per_pair
    < flat.Experiments.Numa.cycles_per_pair);
  Alcotest.(check bool) "per-node gblfree pays fewer remote transfers" true
    (pernode.Experiments.Numa.remote_pct < flat.Experiments.Numa.remote_pct)

let suite =
  [
    Alcotest.test_case "E14 deterministic across jobs" `Quick
      test_jobs_determinism;
    Alcotest.test_case "numakma = newkma at nodes=1" `Quick test_flat_identity;
    Alcotest.test_case "per-node layer wins on NUMA" `Quick
      test_numa_splits_traffic;
  ]
