(* Trace record / synthesise / serialise / replay. *)

let machine () =
  Sim.Machine.create
    (Sim.Config.make ~ncpus:1 ~memory_words:131072 ~cache_lines:0 ())

let on_cpu m f =
  let r = ref None in
  Sim.Machine.run m [| (fun _ -> r := Some (f ())) |];
  Option.get !r

let test_synthesize_valid () =
  let t = Workload.Trace.synthesize ~ops:500 () in
  (match Workload.Trace.validate t with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  Alcotest.(check bool) "has frees beyond ops (drain)" true
    (List.length t >= 500)

let test_synthesize_deterministic () =
  let a = Workload.Trace.synthesize ~ops:200 ~seed:5 () in
  let b = Workload.Trace.synthesize ~ops:200 ~seed:5 () in
  let c = Workload.Trace.synthesize ~ops:200 ~seed:6 () in
  Alcotest.(check bool) "same seed" true (a = b);
  Alcotest.(check bool) "different seed" true (a <> c)

let test_synthesize_multicpu () =
  let t = Workload.Trace.synthesize ~ops:400 ~ncpus:4 ~mean_gap:6 () in
  (match Workload.Trace.validate t with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  Alcotest.(check bool) "uses several CPUs" true (Workload.Trace.ncpus t > 1);
  Alcotest.(check bool) "has nonzero gaps" true
    (List.exists (fun e -> Workload.Trace.gap_of e > 0) t)

let test_serialise_roundtrip () =
  let t = Workload.Trace.synthesize ~ops:300 ~ncpus:3 ~mean_gap:4 () in
  match Workload.Trace.of_string (Workload.Trace.to_string t) with
  | Ok t' -> Alcotest.(check bool) "roundtrip" true (t = t')
  | Error e -> Alcotest.fail e

let test_of_string_rejects_garbage () =
  (match Workload.Trace.of_string "a 1 64\nnonsense\n" with
  | Ok _ -> Alcotest.fail "accepted garbage"
  | Error _ -> ());
  match Workload.Trace.of_string "a 1 sixty\n" with
  | Ok _ -> Alcotest.fail "accepted bad int"
  | Error _ -> ()

let test_validate_catches () =
  let open Workload.Trace in
  (match validate [ Free { cpu = 0; gap = 0; id = 0 } ] with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "free of dead id accepted");
  (match validate [ Alloc { cpu = 0; gap = 0; id = 0; bytes = 16 } ] with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "leak accepted");
  match
    validate
      [
        Alloc { cpu = 0; gap = 0; id = 0; bytes = 16 };
        Alloc { cpu = 0; gap = 0; id = 0; bytes = 16 };
        Free { cpu = 0; gap = 0; id = 0 };
        Free { cpu = 0; gap = 0; id = 0 };
      ]
  with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "double id accepted"

let test_replay_all_allocators () =
  let t = Workload.Trace.synthesize ~ops:400 () in
  List.iter
    (fun which ->
      let m = machine () in
      let a = Baseline.Allocator.create which m in
      let r = Workload.Trace.replay m t a in
      Alcotest.(check int)
        (Baseline.Allocator.name_of which ^ ": no failures")
        0 r.Workload.Trace.failures;
      Alcotest.(check int)
        (Baseline.Allocator.name_of which ^ ": no skipped frees")
        0 r.Workload.Trace.skipped_frees;
      Alcotest.(check bool) "cycles advanced" true (r.Workload.Trace.cycles > 0))
    (Baseline.Allocator.all @ [ Baseline.Allocator.Lazybuddy ])

let test_record_then_replay () =
  (* Record a workload on one allocator, replay it on another: the
     recorded trace is well-formed and replays cleanly. *)
  let m = machine () in
  let a = Baseline.Allocator.create Baseline.Allocator.Cookie m in
  let trace =
    on_cpu m (fun () ->
        Workload.Trace.record a (fun wrapped ->
            let live = ref [] in
            for i = 1 to 200 do
              if i mod 3 = 0 then (
                match !live with
                | (addr, bytes) :: rest ->
                    live := rest;
                    wrapped.Baseline.Allocator.free ~addr ~bytes
                | [] -> ())
              else begin
                let bytes = 16 lsl (i mod 4) in
                let addr = wrapped.Baseline.Allocator.alloc ~bytes in
                live := (addr, bytes) :: !live
              end
            done;
            List.iter
              (fun (addr, bytes) ->
                wrapped.Baseline.Allocator.free ~addr ~bytes)
              !live))
  in
  (match Workload.Trace.validate trace with
  | Ok () -> ()
  | Error e -> Alcotest.fail ("recorded trace invalid: " ^ e));
  let m2 = machine () in
  let oldkma = Baseline.Allocator.create Baseline.Allocator.Oldkma m2 in
  let r = Workload.Trace.replay m2 trace oldkma in
  Alcotest.(check int) "replays on oldkma" 0 r.Workload.Trace.failures

let test_replay_determinism () =
  let t = Workload.Trace.synthesize ~ops:300 () in
  let run () =
    let m = machine () in
    let a = Baseline.Allocator.create Baseline.Allocator.Newkma m in
    (Workload.Trace.replay m t a).Workload.Trace.cycles
  in
  Alcotest.(check int) "cycle-exact reruns" (run ()) (run ())

let suite =
  [
    Alcotest.test_case "synthesized traces are valid" `Quick
      test_synthesize_valid;
    Alcotest.test_case "synthesis deterministic by seed" `Quick
      test_synthesize_deterministic;
    Alcotest.test_case "multi-CPU synthesis with gaps" `Quick
      test_synthesize_multicpu;
    Alcotest.test_case "serialise roundtrip" `Quick test_serialise_roundtrip;
    Alcotest.test_case "parser rejects garbage" `Quick
      test_of_string_rejects_garbage;
    Alcotest.test_case "validate catches malformed traces" `Quick
      test_validate_catches;
    Alcotest.test_case "replays on every allocator" `Quick
      test_replay_all_allocators;
    Alcotest.test_case "record then replay elsewhere" `Quick
      test_record_then_replay;
    Alcotest.test_case "replay is cycle-deterministic" `Quick
      test_replay_determinism;
  ]
