(* The tentpole's bit-identicality contract at experiment scale, the
   PR-5 way: run fig7 and E8 (pressure) slices under the default
   geometry with the same-CPU fast path disabled (every operation
   through the scheduler — the pre-fast-path execution mode) and
   enabled, and require the results to match byte for byte.  Every
   reported number is a pure function of integer cycle counts, so
   structural equality of the records IS cycle-count equality.

   The pinned constants below are the default-geometry regression
   anchor: if any simulator or allocator change moves them, the
   recorded results in EXPERIMENTS.md and BENCH_host.json no longer
   describe the code.  Deliberate cost-model changes must update the
   pins (and the recorded results) explicitly. *)

let both f =
  Sim.Machine.set_fast_path false;
  let slow =
    Fun.protect ~finally:(fun () -> Sim.Machine.set_fast_path true) f
  in
  let fast = f () in
  (slow, fast)

let test_fig7_slice_identical () =
  let slice () =
    Experiments.Fig7.run ~cpus:[ 1; 2; 4 ] ~iters:120 ()
  in
  let slow, fast = both slice in
  Alcotest.(check int) "same cardinality" (List.length slow) (List.length fast);
  List.iter2
    (fun (s : Experiments.Fig7.point) (f : Experiments.Fig7.point) ->
      Alcotest.(check bool)
        (Printf.sprintf "%s@%d identical"
           (Baseline.Allocator.name_of s.Experiments.Fig7.which)
           s.Experiments.Fig7.ncpus)
        true (s = f))
    slow fast

let test_pressure_slice_identical () =
  let slice () =
    Experiments.Pressure.run ~ncpus:2 ~rounds:4 ~batch:30
      ~rates:[ 0.0; 0.2 ] ()
  in
  let slow, fast = both slice in
  Alcotest.(check bool) "E8 slice identical" true (slow = fast)

(* Default-geometry cycle pins for the fig7 best-case cells (300 timed
   pairs of 256-byte blocks).  These are exact virtual-cycle counts,
   not tolerances. *)
let pins =
  Baseline.Allocator.
    [
      (Cookie, 1, 17_400);
      (Newkma, 4, 29_700);
      (Mk, 2, 283_301);
      (Oldkma, 2, 879_620);
    ]

let cell which ncpus =
  (Workload.Bestcase.run ~which ~ncpus ~iters:300 ~bytes:256 ())
    .Workload.Bestcase.cycles

let test_fig7_default_geometry_pins () =
  List.iter
    (fun (which, ncpus, cycles) ->
      Alcotest.(check int)
        (Printf.sprintf "%s@%d" (Baseline.Allocator.name_of which) ncpus)
        cycles (cell which ncpus))
    pins

(* The same cells with the fast path off — the pre-fast-path simulator
   must still hit the very same pins. *)
let test_fig7_pins_slow_path () =
  Sim.Machine.set_fast_path false;
  Fun.protect
    ~finally:(fun () -> Sim.Machine.set_fast_path true)
    (fun () ->
      List.iter
        (fun (which, ncpus, cycles) ->
          Alcotest.(check int)
            (Printf.sprintf "%s@%d (scheduled)"
               (Baseline.Allocator.name_of which)
               ncpus)
            cycles (cell which ncpus))
        pins)

(* E13 cycle pins: the lock-free arms' best-case cells at the default
   flat geometry, fast and scheduled.  The bwfixed value reflects the
   ISSUE-9 exhaustion fix (private count words commit by tagged CAS, so
   every pop/push pays the rmw surcharge); nbbuddy is untouched. *)
let e13_pins =
  Baseline.Allocator.[ (Nbbuddy, 2, 54_300); (Bwfixed, 2, 21_000) ]

let test_e13_default_geometry_pins () =
  List.iter
    (fun (which, ncpus, cycles) ->
      Alcotest.(check int)
        (Printf.sprintf "%s@%d" (Baseline.Allocator.name_of which) ncpus)
        cycles (cell which ncpus))
    e13_pins

let test_e13_pins_slow_path () =
  Sim.Machine.set_fast_path false;
  Fun.protect
    ~finally:(fun () -> Sim.Machine.set_fast_path true)
    (fun () ->
      List.iter
        (fun (which, ncpus, cycles) ->
          Alcotest.(check int)
            (Printf.sprintf "%s@%d (scheduled)"
               (Baseline.Allocator.name_of which)
               ncpus)
            cycles (cell which ncpus))
        e13_pins)

(* E8 pin: one pressure cell's throughput at the default geometry.
   [pairs_per_sec] is a pure function of the cell's integer cycle
   count, so exact float equality IS a cycle pin. *)
let e8_pin = 327841.98016556021

let e8_cell () =
  let r = Experiments.Pressure.run ~ncpus:2 ~rounds:4 ~batch:30 ~rates:[ 0.0 ] () in
  let s =
    List.find (fun s -> s.Experiments.Pressure.name = "newkma")
      r.Experiments.Pressure.series
  in
  (List.hd s.Experiments.Pressure.rows).Experiments.Pressure.pairs_per_sec

let test_e8_default_geometry_pin () =
  let check_exact () =
    Alcotest.(check (float 0.)) "newkma@rate0 pairs/s" e8_pin (e8_cell ())
  in
  check_exact ();
  Sim.Machine.set_fast_path false;
  Fun.protect ~finally:(fun () -> Sim.Machine.set_fast_path true) check_exact

let suite =
  [
    Alcotest.test_case "fig7 slice: fast = slow" `Quick
      test_fig7_slice_identical;
    Alcotest.test_case "E8 slice: fast = slow" `Quick
      test_pressure_slice_identical;
    Alcotest.test_case "fig7 default-geometry cycle pins" `Quick
      test_fig7_default_geometry_pins;
    Alcotest.test_case "fig7 pins on the scheduled path" `Quick
      test_fig7_pins_slow_path;
    Alcotest.test_case "E13 default-geometry cycle pins" `Quick
      test_e13_default_geometry_pins;
    Alcotest.test_case "E13 pins on the scheduled path" `Quick
      test_e13_pins_slow_path;
    Alcotest.test_case "E8 default-geometry pin" `Quick
      test_e8_default_geometry_pin;
  ]
