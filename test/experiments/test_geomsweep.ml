(* E12 at miniature scale: the shape criteria the full-scale table in
   EXPERIMENTS.md records.  Two claims from the paper's cache-profile
   analysis, checked as data: widening lines at a fixed line count
   (more capacity per CPU) lowers the miss rate on the burst workload,
   and a direct-mapped cache pays conflict misses a fully-associative
   one of the same capacity does not. *)

let rows =
  lazy
    (Experiments.Geomsweep.run
       ~points:[ (4, 0); (32, 0); (8, 0); (8, 1) ]
       ~iters:10 ~depth:48 ())

let at which line ways =
  match
    List.find_opt
      (fun (r : Experiments.Geomsweep.row) ->
        r.Experiments.Geomsweep.which = which
        && r.Experiments.Geomsweep.line_words = line
        && r.Experiments.Geomsweep.ways = ways)
      (Lazy.force rows)
  with
  | Some r -> r
  | None -> Alcotest.fail "missing cell"

let test_line_size_moves_miss_rate () =
  List.iter
    (fun which ->
      let narrow = at which 4 0 and wide = at which 32 0 in
      Alcotest.(check bool)
        (Baseline.Allocator.name_of which ^ ": 32-word lines miss less")
        true
        (wide.Experiments.Geomsweep.miss_pct
        < narrow.Experiments.Geomsweep.miss_pct))
    Baseline.Allocator.[ Newkma; Cookie ]

let test_direct_mapped_pays () =
  List.iter
    (fun which ->
      let full = at which 8 0 and dm = at which 8 1 in
      Alcotest.(check bool)
        (Baseline.Allocator.name_of which
        ^ ": direct-mapped cycles/pair >= fully associative")
        true
        (dm.Experiments.Geomsweep.cycles_per_pair
        >= full.Experiments.Geomsweep.cycles_per_pair))
    Baseline.Allocator.[ Newkma; Cookie ]

let test_deterministic_and_parallel_identical () =
  let run jobs =
    Experiments.Geomsweep.run ~jobs ~points:[ (8, 0); (8, 2) ] ~iters:5
      ~depth:24 ~ncpus:4 ()
  in
  Alcotest.(check bool) "jobs=1 = jobs=3" true (run 1 = run 3)

let suite =
  [
    Alcotest.test_case "line size moves the miss rate" `Quick
      test_line_size_moves_miss_rate;
    Alcotest.test_case "direct-mapped pays conflicts" `Quick
      test_direct_mapped_pays;
    Alcotest.test_case "sweep deterministic across jobs" `Quick
      test_deterministic_and_parallel_identical;
  ]
