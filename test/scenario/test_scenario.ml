let () =
  Alcotest.run "scenario"
    [
      ("tracefmt", Test_tracefmt.suite);
      ("library", Test_library.suite);
      ("pathology", Test_pathology.suite);
      ("identical", Test_identical.suite);
    ]
