(* Pathology detection: the target scenarios provably trigger their
   pathology with flight-recorder evidence, best-case traffic stays
   clean, and reports are byte-identical across reruns. *)

let analyze name =
  let s = Option.get (Scenario.find name) in
  Scenario.Pathology.analyze ~name
    (s.Scenario.generate ~seed:s.Scenario.default_seed)

let has_pathology (r : Scenario.Pathology.report) p =
  List.exists
    (fun (f : Scenario.Pathology.finding) -> f.Scenario.Pathology.pathology = p)
    r.Scenario.Pathology.findings

let test_steady_clean () =
  let r = analyze "steady" in
  Alcotest.(check int) "no findings" 0
    (List.length r.Scenario.Pathology.findings);
  Alcotest.(check bool) "latency percentiles measured" true
    (r.Scenario.Pathology.alloc_lat.Scenario.Pathology.count > 0)

let test_rpc_clean () =
  let r = analyze "rpc" in
  Alcotest.(check int) "no findings" 0
    (List.length r.Scenario.Pathology.findings)

let test_producer_consumer_convoy () =
  let r = analyze "producer_consumer" in
  Alcotest.(check bool) "lock-convoy detected" true
    (has_pathology r "lock-convoy");
  let f =
    List.find
      (fun (f : Scenario.Pathology.finding) ->
        f.Scenario.Pathology.pathology = "lock-convoy")
      r.Scenario.Pathology.findings
  in
  Alcotest.(check bool) "finding cites flightrec events" true
    (List.exists
       (fun e ->
         (* rendered Event.pp lines start with "[<time>] cpu<n>" *)
         String.length e > 0 && e.[0] = '[')
       f.Scenario.Pathology.evidence)

let test_frag_adversary_fragmentation () =
  let r = analyze "frag_adversary" in
  Alcotest.(check bool) "fragmentation detected" true
    (has_pathology r "fragmentation");
  (* The curve must show the blow-up: some post-warmup sample holding
     at least 4x more page bytes than live bytes. *)
  Alcotest.(check bool) "curve records the blow-up" true
    (List.exists
       (fun (p : Scenario.Pathology.frag_point) ->
         p.Scenario.Pathology.live_bytes > 0
         && p.Scenario.Pathology.held_over_live >= 4.)
       r.Scenario.Pathology.frag_curve)

let test_bursty_latency_tail () =
  let r = analyze "bursty" in
  Alcotest.(check bool) "latency-tail detected" true
    (has_pathology r "latency-tail")

let test_report_byte_identical () =
  let a = Scenario.Pathology.to_string (analyze "producer_consumer") in
  let b = Scenario.Pathology.to_string (analyze "producer_consumer") in
  Alcotest.(check string) "same seed, byte-identical report" a b

let test_windows_validated () =
  match Scenario.Pathology.analyze ~windows:0 ~name:"x" [] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "windows=0 accepted"

let suite =
  [
    Alcotest.test_case "steady stays clean" `Quick test_steady_clean;
    Alcotest.test_case "rpc stays clean" `Quick test_rpc_clean;
    Alcotest.test_case "producer_consumer triggers lock-convoy" `Quick
      test_producer_consumer_convoy;
    Alcotest.test_case "frag_adversary triggers fragmentation" `Quick
      test_frag_adversary_fragmentation;
    Alcotest.test_case "bursty triggers latency-tail" `Quick
      test_bursty_latency_tail;
    Alcotest.test_case "reports are byte-identical" `Quick
      test_report_byte_identical;
    Alcotest.test_case "windows argument validated" `Quick
      test_windows_validated;
  ]
