(* v2 trace format: parser error paths, round-trip property, scaling
   transforms, and the skipped-frees accounting of replay. *)

let expect_error ~line what s =
  match Workload.Trace.of_string s with
  | Ok _ -> Alcotest.failf "%s: accepted" what
  | Error e ->
      let prefix = Printf.sprintf "line %d:" line in
      Alcotest.(check bool)
        (Printf.sprintf "%s: error %S names line %d" what e line)
        true
        (String.length e >= String.length prefix
        && String.sub e 0 (String.length prefix) = prefix)

let test_error_paths () =
  expect_error ~line:2 "trailing garbage (v2 alloc)"
    "kma-trace v2\na 0 0 1 64 junk\n";
  expect_error ~line:2 "trailing garbage (v2 free)" "kma-trace v2\nf 0 0 1 junk\n";
  expect_error ~line:1 "trailing garbage (v1)" "a 1 64 junk\n";
  expect_error ~line:2 "non-positive size" "kma-trace v2\na 0 0 1 0\n";
  expect_error ~line:2 "negative size" "kma-trace v2\na 0 0 1 -64\n";
  expect_error ~line:4 "duplicate-id alloc"
    "kma-trace v2\na 0 0 1 64\nf 0 0 1\na 0 0 1 64\n";
  expect_error ~line:2 "negative gap" "kma-trace v2\na 0 -1 1 64\n";
  expect_error ~line:2 "negative cpu" "kma-trace v2\na -1 0 1 64\n";
  expect_error ~line:2 "bad integer" "kma-trace v2\na 0 0 one 64\n";
  expect_error ~line:1 "unknown version" "kma-trace v3\na 0 0 1 64\n"

let test_v1_legacy_accepted () =
  match Workload.Trace.of_string "a 0 64\nf 0\n" with
  | Error e -> Alcotest.fail e
  | Ok t ->
      Alcotest.(check bool)
        "v1 lines become cpu-0, gap-0 events" true
        (t
        = [
            Workload.Trace.Alloc { cpu = 0; gap = 0; id = 0; bytes = 64 };
            Workload.Trace.Free { cpu = 0; gap = 0; id = 0 };
          ])

let test_header_roundtrip () =
  let t = Workload.Trace.synthesize ~ops:250 ~ncpus:4 ~mean_gap:9 ~seed:3 () in
  let s = Workload.Trace.to_string t in
  Alcotest.(check bool) "v2 header present" true
    (String.length s > 12 && String.sub s 0 12 = "kma-trace v2");
  match Workload.Trace.of_string s with
  | Ok t' -> Alcotest.(check bool) "identical events" true (t = t')
  | Error e -> Alcotest.fail e

(* The round-trip property with replay: serialising and re-parsing a
   trace cannot change what a replay of it does. *)
let test_roundtrip_identical_replay () =
  let t = Workload.Trace.synthesize ~ops:300 ~ncpus:2 ~mean_gap:5 ~seed:11 () in
  let t' =
    match Workload.Trace.of_string (Workload.Trace.to_string t) with
    | Ok t' -> t'
    | Error e -> Alcotest.fail e
  in
  let run trace =
    let m =
      Sim.Machine.create
        (Workload.Rig.paper_config ~ncpus:(Workload.Trace.ncpus trace) ())
    in
    let a = Baseline.Allocator.create Baseline.Allocator.Newkma m in
    (Workload.Trace.replay m trace a).Workload.Trace.cycles
  in
  Alcotest.(check int) "same replay cycles" (run t) (run t')

let test_scale_rate () =
  let t =
    [
      Workload.Trace.Alloc { cpu = 0; gap = 100; id = 0; bytes = 64 };
      Workload.Trace.Free { cpu = 0; gap = 7; id = 0 };
    ]
  in
  (match Workload.Trace.scale_rate ~factor:10. t with
  | [ Workload.Trace.Alloc { gap = 10; _ }; Workload.Trace.Free { gap = 0; _ } ]
    ->
      ()
  | _ -> Alcotest.fail "gaps not divided by 10");
  match Workload.Trace.scale_rate ~factor:0. t with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "factor 0 accepted"

let test_fan_out () =
  let t = Workload.Trace.synthesize ~ops:120 ~ncpus:2 ~seed:4 () in
  Alcotest.(check bool) "copies=1 is identity" true
    (Workload.Trace.fan_out ~copies:1 t == t);
  let f = Workload.Trace.fan_out ~copies:3 t in
  Alcotest.(check int) "3x the events" (3 * List.length t) (List.length f);
  Alcotest.(check int) "3x the CPUs" (3 * Workload.Trace.ncpus t)
    (Workload.Trace.ncpus f);
  (match Workload.Trace.validate f with
  | Ok () -> ()
  | Error e -> Alcotest.fail ("fanned trace invalid: " ^ e));
  (* id remapping is deterministic and collision-free *)
  let ids = List.map Workload.Trace.id_of (List.filter (function Workload.Trace.Alloc _ -> true | _ -> false) f) in
  let distinct = List.sort_uniq compare ids in
  Alcotest.(check int) "no id collisions" (List.length ids)
    (List.length distinct)

let test_skew_frees () =
  let t = Workload.Trace.synthesize ~ops:200 ~ncpus:2 ~seed:8 () in
  let all_moved = Workload.Trace.skew_frees ~seed:1 ~fraction:1. t in
  List.iter2
    (fun e e' ->
      match (e, e') with
      | Workload.Trace.Alloc _, _ ->
          Alcotest.(check bool) "allocs untouched" true (e = e')
      | ( Workload.Trace.Free { cpu; _ },
          Workload.Trace.Free { cpu = cpu'; _ } ) ->
          Alcotest.(check bool) "every free moved CPUs" true (cpu <> cpu')
      | _ -> Alcotest.fail "event kind changed")
    t all_moved;
  (match Workload.Trace.validate all_moved with
  | Ok () -> ()
  | Error e -> Alcotest.fail ("skewed trace invalid: " ^ e));
  Alcotest.(check bool) "deterministic by seed" true
    (Workload.Trace.skew_frees ~seed:5 ~fraction:0.5 t
    = Workload.Trace.skew_frees ~seed:5 ~fraction:0.5 t);
  let one_cpu = Workload.Trace.synthesize ~ops:100 ~seed:2 () in
  Alcotest.(check bool) "single-CPU trace unchanged" true
    (Workload.Trace.skew_frees ~fraction:1. one_cpu = one_cpu)

(* Satellite: a free whose allocation never happened (or failed) is
   counted as a skipped free, never replayed and never spun on. *)
let test_skipped_frees_counted () =
  let t =
    [
      Workload.Trace.Alloc { cpu = 0; gap = 0; id = 0; bytes = 64 };
      Workload.Trace.Free { cpu = 0; gap = 0; id = 0 };
      Workload.Trace.Free { cpu = 0; gap = 0; id = 7 };
      Workload.Trace.Free { cpu = 0; gap = 0; id = 8 };
    ]
  in
  let m = Sim.Machine.create (Workload.Rig.paper_config ~ncpus:1 ()) in
  let a = Baseline.Allocator.create Baseline.Allocator.Newkma m in
  let r = Workload.Trace.replay m t a in
  Alcotest.(check int) "two skipped frees" 2 r.Workload.Trace.skipped_frees;
  Alcotest.(check int) "all events counted as ops" 4 r.Workload.Trace.ops;
  Alcotest.(check int) "no alloc failures" 0 r.Workload.Trace.failures

let suite =
  [
    Alcotest.test_case "parser error paths name their line" `Quick
      test_error_paths;
    Alcotest.test_case "legacy v1 lines still parse" `Quick
      test_v1_legacy_accepted;
    Alcotest.test_case "v2 header round-trip" `Quick test_header_roundtrip;
    Alcotest.test_case "round-trip preserves replay cycles" `Quick
      test_roundtrip_identical_replay;
    Alcotest.test_case "scale_rate divides gaps" `Quick test_scale_rate;
    Alcotest.test_case "fan_out remaps ids deterministically" `Quick
      test_fan_out;
    Alcotest.test_case "skew_frees moves only frees" `Quick test_skew_frees;
    Alcotest.test_case "skipped frees are counted" `Quick
      test_skipped_frees_counted;
  ]
