(* The bit-identical proof: replaying a recorded trace on a fresh,
   identically configured machine reproduces the recorded run's cycle
   count exactly.  Gaps capture per-CPU think time, operations are
   deterministic, so nothing else is possible — this test is what keeps
   the record/replay contract honest. *)

let mk () = Sim.Machine.create (Workload.Rig.paper_config ~ncpus:1 ())

let recorded_program (w : Baseline.Allocator.t) =
  let live = Queue.create () in
  for i = 1 to 300 do
    Sim.Machine.work (5 + (i mod 7));
    let bytes = 32 lsl (i mod 3) in
    let addr = w.Baseline.Allocator.alloc ~bytes in
    if addr <> 0 then Queue.add (addr, bytes) live;
    if Queue.length live > 10 then begin
      Sim.Machine.work 3;
      let addr, bytes = Queue.pop live in
      w.Baseline.Allocator.free ~addr ~bytes
    end
  done;
  Queue.iter
    (fun (addr, bytes) ->
      Sim.Machine.work 2;
      w.Baseline.Allocator.free ~addr ~bytes)
    live

let test_bit_identical_cycles () =
  let m1 = mk () in
  let a1 = Baseline.Allocator.create Baseline.Allocator.Newkma m1 in
  let trace = ref [] in
  Sim.Machine.run m1
    [| (fun _ -> trace := Workload.Trace.record a1 recorded_program) |];
  let recorded_cycles = Sim.Machine.elapsed m1 in
  let trace = !trace in
  (match Workload.Trace.validate trace with
  | Ok () -> ()
  | Error e -> Alcotest.fail ("recorded trace invalid: " ^ e));
  Alcotest.(check bool) "trace has think-time gaps" true
    (List.exists (fun e -> Workload.Trace.gap_of e > 0) trace);
  let m2 = mk () in
  let a2 = Baseline.Allocator.create Baseline.Allocator.Newkma m2 in
  let r = Workload.Trace.replay m2 trace a2 in
  Alcotest.(check int) "replay reproduces the recorded cycle count"
    recorded_cycles r.Workload.Trace.cycles;
  Alcotest.(check int) "no failures" 0 r.Workload.Trace.failures;
  Alcotest.(check int) "no skipped frees" 0 r.Workload.Trace.skipped_frees

(* Same property through the serialised form: synthesize -> to_string ->
   of_string -> the replay is cycle-identical to the original's. *)
let test_bit_identical_through_text () =
  let m1 = mk () in
  let a1 = Baseline.Allocator.create Baseline.Allocator.Newkma m1 in
  let trace = ref [] in
  Sim.Machine.run m1
    [| (fun _ -> trace := Workload.Trace.record a1 recorded_program) |];
  let recorded_cycles = Sim.Machine.elapsed m1 in
  let parsed =
    match Workload.Trace.of_string (Workload.Trace.to_string !trace) with
    | Ok t -> t
    | Error e -> Alcotest.fail e
  in
  let m2 = mk () in
  let a2 = Baseline.Allocator.create Baseline.Allocator.Newkma m2 in
  let r = Workload.Trace.replay m2 parsed a2 in
  Alcotest.(check int) "cycle count survives serialisation" recorded_cycles
    r.Workload.Trace.cycles

let suite =
  [
    Alcotest.test_case "replay reproduces recorded cycles" `Quick
      test_bit_identical_cycles;
    Alcotest.test_case "cycles survive the text round-trip" `Quick
      test_bit_identical_through_text;
  ]
