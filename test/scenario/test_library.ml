(* The scenario library: well-formed, deterministic, replayable, and
   scalable past the recorded CPU count. *)

let replay_newkma t =
  let ncpus = max 1 (Workload.Trace.ncpus t) in
  let m = Sim.Machine.create (Workload.Rig.paper_config ~ncpus ()) in
  let a = Baseline.Allocator.create Baseline.Allocator.Newkma m in
  Workload.Trace.replay m t a

let test_names_unique () =
  let names = Scenario.names () in
  Alcotest.(check int) "no duplicate names" (List.length names)
    (List.length (List.sort_uniq compare names));
  List.iter
    (fun n ->
      match Scenario.find n with
      | Some s -> Alcotest.(check string) "find returns the scenario" n
          s.Scenario.name
      | None -> Alcotest.failf "find %S failed" n)
    names;
  Alcotest.(check bool) "unknown name" true (Scenario.find "nosuch" = None)

let test_generators_valid_and_deterministic () =
  List.iter
    (fun (s : Scenario.t) ->
      let seed = s.Scenario.default_seed in
      let t = s.Scenario.generate ~seed in
      (match Workload.Trace.validate t with
      | Ok () -> ()
      | Error e -> Alcotest.failf "%s: invalid trace: %s" s.Scenario.name e);
      Alcotest.(check int)
        (s.Scenario.name ^ ": declared CPU count")
        s.Scenario.ncpus (Workload.Trace.ncpus t);
      Alcotest.(check bool)
        (s.Scenario.name ^ ": deterministic by seed")
        true
        (t = s.Scenario.generate ~seed);
      Alcotest.(check bool)
        (s.Scenario.name ^ ": non-empty")
        true (t <> []))
    Scenario.all

let test_all_replay_cleanly () =
  List.iter
    (fun (s : Scenario.t) ->
      let t = s.Scenario.generate ~seed:s.Scenario.default_seed in
      let r = replay_newkma t in
      Alcotest.(check int)
        (s.Scenario.name ^ ": no failures")
        0 r.Workload.Trace.failures;
      Alcotest.(check int)
        (s.Scenario.name ^ ": no skipped frees")
        0 r.Workload.Trace.skipped_frees;
      Alcotest.(check int)
        (s.Scenario.name ^ ": every event replayed")
        (List.length t) r.Workload.Trace.ops)
    Scenario.all

let test_replay_deterministic () =
  let s = Option.get (Scenario.find "rpc") in
  let t = s.Scenario.generate ~seed:s.Scenario.default_seed in
  Alcotest.(check int) "cycle-exact reruns"
    (replay_newkma t).Workload.Trace.cycles
    (replay_newkma t).Workload.Trace.cycles

(* Acceptance: a 10x-scaled replay across more CPUs than the recording
   runs and completes. *)
let test_scaled_fan_out_replay () =
  let s = Option.get (Scenario.find "recorded_dlm") in
  let t = s.Scenario.generate ~seed:s.Scenario.default_seed in
  let base = Workload.Trace.ncpus t in
  let scaled =
    Workload.Trace.fan_out ~copies:3
      (Workload.Trace.scale_rate ~factor:10. t)
  in
  Alcotest.(check int) "more CPUs than the recording" (3 * base)
    (Workload.Trace.ncpus scaled);
  (match Workload.Trace.validate scaled with
  | Ok () -> ()
  | Error e -> Alcotest.fail ("scaled trace invalid: " ^ e));
  let r = replay_newkma scaled in
  Alcotest.(check int) "completes every event" (List.length scaled)
    r.Workload.Trace.ops;
  Alcotest.(check int) "no skipped frees" 0 r.Workload.Trace.skipped_frees

let suite =
  [
    Alcotest.test_case "names unique, find works" `Quick test_names_unique;
    Alcotest.test_case "generators valid and deterministic" `Quick
      test_generators_valid_and_deterministic;
    Alcotest.test_case "every scenario replays cleanly" `Quick
      test_all_replay_cleanly;
    Alcotest.test_case "replay is cycle-deterministic" `Quick
      test_replay_deterministic;
    Alcotest.test_case "10x-scaled fan-out replay completes" `Quick
      test_scaled_fan_out_replay;
  ]
