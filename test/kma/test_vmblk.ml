open Kma

(* The vmblk layer is driven directly here (no upper layers), using the
   full Kmem boot for the context.  Small config: 16-page vmblks with a
   1-page descriptor header, so 15 data pages per vmblk. *)

let fixture () = Util.kmem ()

let test_alloc_one_page () =
  let m, k = fixture () in
  let ctx = Util.ctx_of k in
  let page = Util.on_cpu m (fun () -> Vmblk.alloc_pages ctx ~npages:1) in
  Alcotest.(check bool) "page allocated" true (page <> 0);
  Alcotest.(check int) "page aligned" 0
    (page mod (Kmem.layout k).Layout.page_words);
  Alcotest.(check int) "one physical page" 1 (Kmem.granted_pages_oracle k);
  Alcotest.(check int) "one vmblk grown" 1 (Vmblk.nvmblks_oracle ctx);
  Alcotest.(check (list int)) "remainder span" [ 14 ]
    (Vmblk.free_span_lengths_oracle ctx)

let test_free_restores_span () =
  let m, k = fixture () in
  let ctx = Util.ctx_of k in
  Util.on_cpu m (fun () ->
      let p = Vmblk.alloc_pages ctx ~npages:3 in
      Vmblk.free_pages ctx ~page:p ~npages:3);
  Alcotest.(check (list int)) "coalesced back to full vmblk" [ 15 ]
    (Vmblk.free_span_lengths_oracle ctx);
  Alcotest.(check int) "physical returned" 0 (Kmem.granted_pages_oracle k)

let test_coalesce_middle () =
  let m, k = fixture () in
  let ctx = Util.ctx_of k in
  (* Allocate three adjacent spans; free outer two, then the middle:
     everything must merge into one span again. *)
  Util.on_cpu m (fun () ->
      let a = Vmblk.alloc_pages ctx ~npages:2 in
      let b = Vmblk.alloc_pages ctx ~npages:3 in
      let c = Vmblk.alloc_pages ctx ~npages:4 in
      Vmblk.free_pages ctx ~page:a ~npages:2;
      Vmblk.free_pages ctx ~page:c ~npages:4;
      (* c coalesces with the trailing remainder: [a:2] and [c+rest:10]. *)
      Alcotest.(check (list int))
        "two spans while fragmented" [ 2; 10 ]
        (List.sort compare (Vmblk.free_span_lengths_oracle ctx));
      Vmblk.free_pages ctx ~page:b ~npages:3);
  Alcotest.(check (list int)) "single full span" [ 15 ]
    (Vmblk.free_span_lengths_oracle ctx)

let test_first_fit_reuses_address () =
  let m, k = fixture () in
  let ctx = Util.ctx_of k in
  let a1, a2 =
    Util.on_cpu m (fun () ->
        let a = Vmblk.alloc_pages ctx ~npages:2 in
        Vmblk.free_pages ctx ~page:a ~npages:2;
        let a' = Vmblk.alloc_pages ctx ~npages:2 in
        (a, a'))
  in
  Alcotest.(check int) "address reused after coalesce" a1 a2

let test_grow_second_vmblk () =
  let m, k = fixture () in
  let ctx = Util.ctx_of k in
  (* 15 data pages per vmblk: a 15-page and then a 10-page allocation
     forces a second vmblk. *)
  Util.on_cpu m (fun () ->
      let a = Vmblk.alloc_pages ctx ~npages:15 in
      let b = Vmblk.alloc_pages ctx ~npages:10 in
      Alcotest.(check bool) "both allocated" true (a <> 0 && b <> 0));
  Alcotest.(check int) "two vmblks" 2 (Vmblk.nvmblks_oracle ctx)

let test_oversize_rejected () =
  let m, k = fixture () in
  let ctx = Util.ctx_of k in
  let a = Util.on_cpu m (fun () -> Vmblk.alloc_pages ctx ~npages:16) in
  Alcotest.(check int) "larger than a vmblk's data" 0 a

let test_virtual_exhaustion () =
  let m, k = fixture () in
  let ctx = Util.ctx_of k in
  let ly = Kmem.layout k in
  let total = Layout.total_data_pages ly in
  let count =
    Util.on_cpu m (fun () ->
        let rec go n =
          if Vmblk.alloc_pages ctx ~npages:1 = 0 then n else go (n + 1)
        in
        go 0)
  in
  Alcotest.(check int) "every data page allocatable" total count

let test_physical_exhaustion_unwinds () =
  (* Physical budget of 4 pages: a 3-page span succeeds, the next 3-page
     span fails cleanly and releases any partial grants. *)
  let m, k = Util.kmem ~phys_pages:4 () in
  let ctx = Util.ctx_of k in
  Util.on_cpu m (fun () ->
      let a = Vmblk.alloc_pages ctx ~npages:3 in
      Alcotest.(check bool) "first fits" true (a <> 0);
      let b = Vmblk.alloc_pages ctx ~npages:3 in
      Alcotest.(check int) "second fails" 0 b);
  Alcotest.(check int) "no leaked grants" 3 (Kmem.granted_pages_oracle k)

let test_large_alloc_free () =
  let m, k = fixture () in
  let ctx = Util.ctx_of k in
  Util.on_cpu m (fun () ->
      let a = Vmblk.alloc_large ctx ~bytes:10000 in
      Alcotest.(check bool) "large allocated" true (a <> 0);
      (* 10000 bytes = 3 pages *)
      Vmblk.free_large ctx ~addr:a ~bytes:10000);
  Alcotest.(check int) "physical returned" 0 (Kmem.granted_pages_oracle k);
  Alcotest.(check int) "stats" 1 (Kmem.stats k).Kstats.large_allocs;
  Alcotest.(check int) "stats free" 1 (Kmem.stats k).Kstats.large_frees

let test_pd_of_block_lookup () =
  let m, k = fixture () in
  let ctx = Util.ctx_of k in
  let ly = Kmem.layout k in
  Util.on_cpu m (fun () ->
      let page = Vmblk.alloc_pages ctx ~npages:1 in
      let pd = Vmblk.pd_of_block ctx (page + 37) in
      Alcotest.(check int) "descriptor matches page"
        (Layout.pd_of_page ly ~page_addr:page)
        pd;
      Alcotest.(check int) "state allocated" Vmblk.st_span_alloc
        (Sim.Machine.read (pd + Vmblk.pd_state)))

(* Every free span must read as a legal boundary-tag encoding:
   st_free_head at the head, st_free_tail at the tail (spans of 2+),
   st_free_mid everywhere in between.  A stale st_span_mid interior is
   the latent descriptor bug the two regression tests below pin. *)
let free_span_states_legal ctx =
  let mem = Ctx.memory ctx in
  let ly = ctx.Ctx.layout in
  let pdw = ly.Layout.pd_words in
  List.for_all
    (fun (pd, len) ->
      let st i = Sim.Memory.get mem (pd + (i * pdw) + Vmblk.pd_state) in
      st 0 = Vmblk.st_free_head
      && (len = 1 || st (len - 1) = Vmblk.st_free_tail)
      &&
      let ok = ref true in
      for i = 1 to len - 2 do
        if st i <> Vmblk.st_free_mid then ok := false
      done;
      !ok)
    (Vmblk.free_spans_oracle ctx)

(* Regression: the grant-failure undo in [alloc_pages] used to leave
   the interior descriptors that [mark_allocated_span] had put in
   [st_span_mid], handing a corrupt encoding back to the free list. *)
let test_grant_failure_undo_resets_interiors () =
  let m, k = fixture () in
  let ctx = Util.ctx_of k in
  let vmsys = Kmem.vmsys k in
  Util.on_cpu m (fun () ->
      let a = Vmblk.alloc_pages ctx ~npages:3 in
      Alcotest.(check bool) "warm alloc fits" true (a <> 0);
      (* Deny every further grant: a 4-page carve must undo itself. *)
      Sim.Vmsys.set_fault_rate vmsys ~seed:1 1.0;
      let b = Vmblk.alloc_pages ctx ~npages:4 in
      Alcotest.(check int) "alloc fails under denial" 0 b;
      Sim.Vmsys.set_fault_rate vmsys ~seed:1 0.0;
      Vmblk.free_pages ctx ~page:a ~npages:3);
  Alcotest.(check bool) "free spans form a legal boundary-tag tiling" true
    (free_span_states_legal ctx);
  Alcotest.(check (list int)) "fully coalesced" [ 15 ]
    (Vmblk.free_span_lengths_oracle ctx)

(* Regression: [free_pages] (the ordinary span free) had the same
   latent bug — interiors stayed [st_span_mid] inside the freed span.
   Found by the lib/heapcheck fuzzer (2-op reproducer: alloc-large,
   free-large). *)
let test_free_pages_resets_interiors () =
  let m, k = fixture () in
  let ctx = Util.ctx_of k in
  Util.on_cpu m (fun () ->
      let a = Vmblk.alloc_pages ctx ~npages:4 in
      Alcotest.(check bool) "span allocated" true (a <> 0);
      Vmblk.free_pages ctx ~page:a ~npages:4);
  Alcotest.(check bool) "free spans form a legal boundary-tag tiling" true
    (free_span_states_legal ctx)

(* Property: any sequence of span allocs and frees keeps spans disjoint
   and conserves pages; freeing everything restores one full span per
   touched vmblk. *)
let prop_span_conservation =
  let gen = QCheck.(small_list (int_range 1 5)) in
  QCheck.Test.make ~name:"span alloc/free conserves pages" ~count:60 gen
    (fun sizes ->
      let m, k = fixture () in
      let ctx = Util.ctx_of k in
      let ok = ref true in
      Util.on_cpu m (fun () ->
          let live =
            List.filter_map
              (fun n ->
                let a = Vmblk.alloc_pages ctx ~npages:n in
                if a = 0 then None else Some (a, n))
              sizes
          in
          (* Spans must be pairwise disjoint. *)
          let ly = Kmem.layout k in
          let ranges =
            List.map
              (fun (a, n) -> (a, a + (n * ly.Layout.page_words)))
              live
          in
          List.iteri
            (fun i (lo1, hi1) ->
              List.iteri
                (fun j (lo2, hi2) ->
                  if i < j && not (hi1 <= lo2 || hi2 <= lo1) then ok := false)
                ranges)
            ranges;
          List.iter (fun (a, n) -> Vmblk.free_pages ctx ~page:a ~npages:n) live);
      !ok
      && Kmem.granted_pages_oracle k = 0
      && List.for_all
           (fun len -> len = 15)
           (Vmblk.free_span_lengths_oracle ctx))

let suite =
  [
    Alcotest.test_case "alloc one page" `Quick test_alloc_one_page;
    Alcotest.test_case "free restores full span" `Quick
      test_free_restores_span;
    Alcotest.test_case "middle free coalesces both sides" `Quick
      test_coalesce_middle;
    Alcotest.test_case "first-fit reuses addresses" `Quick
      test_first_fit_reuses_address;
    Alcotest.test_case "grows a second vmblk" `Quick test_grow_second_vmblk;
    Alcotest.test_case "oversize span rejected" `Quick test_oversize_rejected;
    Alcotest.test_case "virtual arena fully allocatable" `Quick
      test_virtual_exhaustion;
    Alcotest.test_case "physical exhaustion unwinds grants" `Quick
      test_physical_exhaustion_unwinds;
    Alcotest.test_case "large alloc/free via byte interface" `Quick
      test_large_alloc_free;
    Alcotest.test_case "pd_of_block dope lookup" `Quick
      test_pd_of_block_lookup;
    Alcotest.test_case "grant-failure undo resets interior descriptors"
      `Quick test_grant_failure_undo_resets_interiors;
    Alcotest.test_case "free_pages resets interior descriptors" `Quick
      test_free_pages_resets_interiors;
    QCheck_alcotest.to_alcotest prop_span_conservation;
  ]
