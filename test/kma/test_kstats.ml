(* Derived-rate arithmetic on the host-side counters: nan on empty
   denominators, reset semantics, and the combined rate measuring how
   deep allocation traffic actually reached. *)

let check_nan name v = Alcotest.(check bool) name true (Float.is_nan v)

let check_rate name expect v =
  Alcotest.(check (float 1e-9)) name expect v

let test_nan_on_zero_denominators () =
  let t = Kma.Kstats.create ~nsizes:2 in
  check_nan "percpu alloc rate" (Kma.Kstats.percpu_alloc_miss_rate t ~si:0);
  check_nan "percpu free rate" (Kma.Kstats.percpu_free_miss_rate t ~si:0);
  check_nan "global alloc rate" (Kma.Kstats.global_alloc_miss_rate t ~si:1);
  check_nan "global free rate" (Kma.Kstats.global_free_miss_rate t ~si:1);
  check_nan "combined alloc rate" (Kma.Kstats.combined_alloc_miss_rate t ~si:0);
  check_nan "combined free rate" (Kma.Kstats.combined_free_miss_rate t ~si:0);
  (* Misses without traffic in the denominator still yield nan, not inf. *)
  let s = Kma.Kstats.size t 0 in
  s.Kma.Kstats.gbl_get_misses <- 3;
  check_nan "miss count alone is not a rate"
    (Kma.Kstats.global_alloc_miss_rate t ~si:0)

let test_rates () =
  let t = Kma.Kstats.create ~nsizes:3 in
  let s = Kma.Kstats.size t 1 in
  s.Kma.Kstats.allocs <- 100;
  s.Kma.Kstats.alloc_misses <- 10;
  s.Kma.Kstats.gbl_gets <- 10;
  s.Kma.Kstats.gbl_get_misses <- 2;
  s.Kma.Kstats.frees <- 50;
  s.Kma.Kstats.free_misses <- 5;
  s.Kma.Kstats.gbl_puts <- 5;
  s.Kma.Kstats.gbl_put_misses <- 1;
  check_rate "percpu alloc" 0.1 (Kma.Kstats.percpu_alloc_miss_rate t ~si:1);
  check_rate "global alloc" 0.2 (Kma.Kstats.global_alloc_miss_rate t ~si:1);
  (* Combined rate = global-layer refills per per-CPU allocation; with
     these counters it equals the product of the two layer rates
     (0.1 * 0.2), the composition the paper's E6 analysis relies on. *)
  check_rate "combined alloc" 0.02 (Kma.Kstats.combined_alloc_miss_rate t ~si:1);
  check_rate "percpu free" 0.1 (Kma.Kstats.percpu_free_miss_rate t ~si:1);
  check_rate "global free" 0.2 (Kma.Kstats.global_free_miss_rate t ~si:1);
  check_rate "combined free" 0.02 (Kma.Kstats.combined_free_miss_rate t ~si:1);
  (* Other size classes are untouched. *)
  check_nan "si 0 untouched" (Kma.Kstats.percpu_alloc_miss_rate t ~si:0)

let test_reset () =
  let t = Kma.Kstats.create ~nsizes:2 in
  let s = Kma.Kstats.size t 0 in
  s.Kma.Kstats.allocs <- 7;
  s.Kma.Kstats.alloc_misses <- 7;
  t.Kma.Kstats.large_allocs <- 4;
  t.Kma.Kstats.large_frees <- 4;
  check_rate "before reset" 1.0 (Kma.Kstats.percpu_alloc_miss_rate t ~si:0);
  Kma.Kstats.reset t;
  Alcotest.(check int) "allocs zeroed" 0 (Kma.Kstats.size t 0).Kma.Kstats.allocs;
  Alcotest.(check int) "large allocs zeroed" 0 t.Kma.Kstats.large_allocs;
  Alcotest.(check int) "large frees zeroed" 0 t.Kma.Kstats.large_frees;
  check_nan "rates back to nan" (Kma.Kstats.percpu_alloc_miss_rate t ~si:0)

let suite =
  [
    Alcotest.test_case "nan on zero denominators" `Quick
      test_nan_on_zero_denominators;
    Alcotest.test_case "layer and combined rates" `Quick test_rates;
    Alcotest.test_case "reset" `Quick test_reset;
  ]
